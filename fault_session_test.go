package repro

import (
	"context"
	"encoding/json"
	"errors"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/tpcd"
)

// TestSessionFaultErrorContract: an injected worker panic inside Optimize
// surfaces as a *FaultError (process intact), contributes only to the
// Faults stat, and — when the run had committed state — carries a
// checkpoint that a FRESH session resumes to the uninterrupted result.
func TestSessionFaultErrorContract(t *testing.T) {
	ref, err := newTestSession(t).Optimize(context.Background(), tpcd.BQ(2),
		WithStrategy(MarginalGreedy))
	if err != nil {
		t.Fatal(err)
	}
	resumed := 0
	for hit := int64(1); hit <= 60; hit += 7 {
		sess := newTestSession(t)
		restore := faultinject.Enable(faultinject.NewSchedule(hit,
			faultinject.Rule{Point: faultinject.OracleEval, N: hit, Panic: true}))
		r, err := sess.Optimize(context.Background(), tpcd.BQ(2),
			WithStrategy(MarginalGreedy), WithParallelism(4))
		restore()
		if err == nil {
			if hit < 40 {
				t.Fatalf("hit %d: no error from faulted run", hit)
			}
			continue // run finished before the scheduled hit
		}
		if r != nil {
			t.Fatalf("hit %d: faulted call returned a result and an error", hit)
		}
		var fe *FaultError
		if !errors.As(err, &fe) {
			t.Fatalf("hit %d: error %#v is not a *FaultError", hit, err)
		}
		var pe *faultinject.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("hit %d: FaultError does not unwrap to the panic: %v", hit, err)
		}
		if fe.Telemetry.Stopped != StopPanic {
			t.Errorf("hit %d: telemetry stopped %v", hit, fe.Telemetry.Stopped)
		}
		st := sess.Stats()
		if st.Faults != 1 || st.Batches != 0 || st.OracleCalls != 0 {
			t.Errorf("hit %d: faulted run leaked into stats: %+v", hit, st)
		}
		if fe.Checkpoint == nil {
			continue
		}
		// The checkpoint must survive its wire form and resume elsewhere.
		b, err := json.Marshal(fe.Checkpoint)
		if err != nil {
			t.Fatalf("hit %d: marshal checkpoint: %v", hit, err)
		}
		var cp Checkpoint
		if err := json.Unmarshal(b, &cp); err != nil {
			t.Fatalf("hit %d: unmarshal checkpoint: %v", hit, err)
		}
		got, err := newTestSession(t).Optimize(context.Background(), tpcd.BQ(2), WithResume(&cp))
		if err != nil {
			t.Fatalf("hit %d: resume on fresh session: %v", hit, err)
		}
		resumed++
		if got.Cost != ref.Cost || len(got.Materialized) != len(ref.Materialized) {
			t.Fatalf("hit %d: resumed cost %v != uninterrupted %v", hit, got.Cost, ref.Cost)
		}
		for i := range got.Materialized {
			if got.Materialized[i] != ref.Materialized[i] {
				t.Fatalf("hit %d: resumed set %v != %v", hit, got.Materialized, ref.Materialized)
			}
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("hit %d: resumed plan invalid: %v", hit, err)
		}
	}
	if resumed == 0 {
		t.Error("no injection produced a resumable session checkpoint")
	}
}

// TestSessionResumeAfterCallBudget: a budget-stopped Optimize returns a
// checkpoint token; resuming it completes to the exact uninterrupted
// result, and the budget applies to the continuation too.
func TestSessionResumeAfterCallBudget(t *testing.T) {
	ref, err := newTestSession(t).Optimize(context.Background(), tpcd.BQ(3))
	if err != nil {
		t.Fatal(err)
	}
	sess := newTestSession(t)
	r, err := sess.Optimize(context.Background(), tpcd.BQ(3),
		WithOracleCallBudget(ref.Telemetry.OracleCalls/2))
	if err != nil {
		t.Fatal(err)
	}
	if r.Telemetry.Stopped != StopCallBudget {
		t.Fatalf("half budget did not stop the run: %v", r.Telemetry.Stopped)
	}
	if r.Checkpoint == nil {
		t.Fatal("budget-stopped run has no checkpoint")
	}
	got, err := sess.Optimize(context.Background(), tpcd.BQ(3), WithResume(r.Checkpoint))
	if err != nil {
		t.Fatal(err)
	}
	if got.Telemetry.Stopped != StopNone || got.Checkpoint != nil {
		t.Fatalf("unbudgeted resume did not finish: %v", got.Telemetry.Stopped)
	}
	if got.Cost != ref.Cost {
		t.Fatalf("resumed cost %v != uninterrupted %v", got.Cost, ref.Cost)
	}
	for i := range got.Materialized {
		if got.Materialized[i] != ref.Materialized[i] {
			t.Fatalf("resumed set %v != %v", got.Materialized, ref.Materialized)
		}
	}
}

// TestSessionResumeFingerprintMismatch: a checkpoint must only resume
// against the search space it was taken from — a different batch, or the
// same batch under different operator flags, is rejected.
func TestSessionResumeFingerprintMismatch(t *testing.T) {
	sess := newTestSession(t)
	ref, err := sess.Optimize(context.Background(), tpcd.BQ(3))
	if err != nil {
		t.Fatal(err)
	}
	r, err := sess.Optimize(context.Background(), tpcd.BQ(3),
		WithOracleCallBudget(ref.Telemetry.OracleCalls/2))
	if err != nil {
		t.Fatal(err)
	}
	if r.Checkpoint == nil {
		t.Fatal("budget-stopped run has no checkpoint")
	}
	if _, err := sess.Optimize(context.Background(), tpcd.BQ(2), WithResume(r.Checkpoint)); !errors.Is(err, ErrResumeMismatch) {
		t.Errorf("different batch: err = %v, want ErrResumeMismatch", err)
	}
	if _, err := sess.Optimize(context.Background(), tpcd.BQ(3), WithResume(r.Checkpoint), WithExtendedOps(true)); !errors.Is(err, ErrResumeMismatch) {
		t.Errorf("different flags: err = %v, want ErrResumeMismatch", err)
	}
	if _, err := sess.Optimize(context.Background(), tpcd.BQ(3), WithResume(&Checkpoint{})); err == nil {
		t.Error("stateless checkpoint accepted")
	}
}
