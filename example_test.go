package repro_test

import (
	"context"
	"fmt"
	"strings"

	"repro"
	"repro/internal/cost"
	"repro/internal/tpcd"
	"repro/internal/workload"
)

// ExampleSession optimizes the paper's Example 1 batch through a
// long-lived Session: the normal call materializes the shared
// subexpressions, and a zero oracle-call budget degrades deterministically
// to the empty set with the stop reason in the telemetry.
func ExampleSession() {
	cat, batch := tpcd.ExampleOneInstance()
	sess, _ := repro.NewSession(cat, cost.Default())
	ctx := context.Background()

	res, _ := sess.Optimize(ctx, batch, repro.WithStrategy(repro.MarginalGreedy))
	fmt.Printf("MarginalGreedy: %.0f s, %d shared node(s), stopped: %v\n",
		res.Cost/1000, len(res.Plan.Steps), res.Telemetry.Stopped)

	zero, _ := sess.Optimize(ctx, batch, repro.WithOracleCallBudget(0))
	fmt.Printf("zero budget:    %.0f s, %d shared node(s), stopped: %v\n",
		zero.Cost/1000, len(zero.Plan.Steps), zero.Telemetry.Stopped)
	// Output:
	// MarginalGreedy: 28 s, 2 shared node(s), stopped: none
	// zero budget:    45 s, 0 shared node(s), stopped: call-budget
}

// ExampleOptimize optimizes the paper's Example 1 batch: two queries
// sharing the subexpression σ(B)⋈C, which the MQO strategies materialize
// once and reuse.
func ExampleOptimize() {
	cat, batch := tpcd.ExampleOneInstance()

	volcano, _, _ := repro.Optimize(cat, batch, repro.Volcano)
	marginal, plan, _ := repro.Optimize(cat, batch, repro.MarginalGreedy)

	fmt.Printf("stand-alone Volcano: %.0f s\n", volcano.Cost/1000)
	fmt.Printf("MarginalGreedy:      %.0f s, %d shared node(s) materialized\n",
		marginal.Cost/1000, len(plan.Steps))
	fmt.Printf("consolidated plan beats locally optimal plans: %v\n",
		marginal.Cost < volcano.Cost)
	// Output:
	// stand-alone Volcano: 45 s
	// MarginalGreedy:      28 s, 2 shared node(s) materialized
	// consolidated plan beats locally optimal plans: true
}

// Example_generateWorkload generates a synthetic batch with the seeded
// workload generator: the same Spec always produces a byte-identical batch,
// so stress workloads are reproducible across machines and runs.
func Example_generateWorkload() {
	spec := workload.Spec{
		Seed:       42,
		Queries:    8,
		Shape:      workload.Star,
		FanOut:     4,
		Sharing:    0.75,
		SelectFrac: 0.8,
		AggFrac:    0.5,
	}
	batch := workload.MustGenerate(spec)

	names := make([]string, len(batch.Queries))
	aggregated := 0
	for i, q := range batch.Queries {
		names[i] = q.Name
		if q.Root.Agg != nil {
			aggregated++
		}
	}
	fmt.Printf("queries: %s …\n", strings.Join(names[:3], ", "))
	fmt.Printf("relations per query: %d, aggregated queries: %d/%d\n",
		len(batch.Queries[0].Root.Sources), aggregated, len(batch.Queries))
	fmt.Printf("same seed, same batch: %v\n",
		workload.Fingerprint(batch) == workload.Fingerprint(workload.MustGenerate(spec)))
	// Output:
	// queries: W000-star, W001-star, W002-star …
	// relations per query: 4, aggregated queries: 3/8
	// same seed, same batch: true
}
