package repro_test

import (
	"fmt"

	"repro"
	"repro/internal/tpcd"
)

// ExampleOptimize optimizes the paper's Example 1 batch: two queries
// sharing the subexpression σ(B)⋈C, which the MQO strategies materialize
// once and reuse.
func ExampleOptimize() {
	cat, batch := tpcd.ExampleOneInstance()

	volcano, _, _ := repro.Optimize(cat, batch, repro.Volcano)
	marginal, plan, _ := repro.Optimize(cat, batch, repro.MarginalGreedy)

	fmt.Printf("stand-alone Volcano: %.0f s\n", volcano.Cost/1000)
	fmt.Printf("MarginalGreedy:      %.0f s, %d shared node(s) materialized\n",
		marginal.Cost/1000, len(plan.Steps))
	fmt.Printf("consolidated plan beats locally optimal plans: %v\n",
		marginal.Cost < volcano.Cost)
	// Output:
	// stand-alone Volcano: 45 s
	// MarginalGreedy:      28 s, 2 shared node(s) materialized
	// consolidated plan beats locally optimal plans: true
}
