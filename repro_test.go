package repro

import (
	"testing"

	"repro/internal/parser"
	"repro/internal/tpcd"
)

func TestOptimizeFacade(t *testing.T) {
	cat, batch := tpcd.ExampleOneInstance()
	v, vplan, err := Optimize(cat, batch, Volcano)
	if err != nil {
		t.Fatal(err)
	}
	m, mplan, err := Optimize(cat, batch, MarginalGreedy)
	if err != nil {
		t.Fatal(err)
	}
	if m.Cost > v.Cost {
		t.Errorf("MarginalGreedy %.1f worse than Volcano %.1f", m.Cost, v.Cost)
	}
	if len(vplan.Steps) != 0 {
		t.Errorf("Volcano plan has %d materialization steps", len(vplan.Steps))
	}
	if len(mplan.Queries) != 2 {
		t.Errorf("plan has %d queries", len(mplan.Queries))
	}
	if mplan.Total != m.Cost {
		t.Errorf("plan total %v != result cost %v", mplan.Total, m.Cost)
	}
}

func TestOptimizeRejectsInvalidBatch(t *testing.T) {
	cat := tpcd.Catalog(1)
	if _, _, err := Optimize(cat, nil, Greedy); err == nil {
		t.Error("nil batch accepted")
	}
}

func TestSQLToPlanEndToEnd(t *testing.T) {
	// The full pipeline: SQL text → parser → optimizer → consolidated plan.
	batch, err := parser.ParseBatch(`
		SELECT o.orderdate, SUM(l.extendedprice) FROM orders o, lineitem l
		WHERE o.orderkey = l.orderkey AND o.orderdate < 1100 GROUP BY o.orderdate;
		SELECT o.orderdate, SUM(l.extendedprice) FROM orders o, lineitem l
		WHERE o.orderkey = l.orderkey AND o.orderdate < 1400 GROUP BY o.orderdate;`)
	if err != nil {
		t.Fatal(err)
	}
	cat := tpcd.Catalog(1)
	v, _, err := Optimize(cat, batch, Volcano)
	if err != nil {
		t.Fatal(err)
	}
	g, plan, err := Optimize(cat, batch, MarginalGreedy)
	if err != nil {
		t.Fatal(err)
	}
	if g.Cost >= v.Cost {
		t.Errorf("subsumption pair found no sharing: %v vs %v", g.Cost, v.Cost)
	}
	if len(plan.Steps) == 0 {
		t.Error("expected at least one materialization (the looser selection)")
	}
}
