package repro

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/submod"
	"repro/internal/tpcd"
	"repro/internal/volcano"
	"repro/internal/workload"
)

// TestLazyWorkloadPropertyGrid is the property suite for the lazy/dirty-
// marked greedy drivers: across a seeded grid of generated workload shapes
// (star/chain/snowflake × σ ∈ {0.25, 0.75}) the batched-lazy
// MarginalGreedy, the sequential LazyMarginalGreedy and the batched-lazy
// Greedy must select bit-identical materialization sets — and price them
// to bit-identical costs — as the exhaustive-scan references
// (EagerMarginalGreedy / EagerGreedy), while actually exercising the lazy
// machinery (some run must report Stale re-evaluations, and the dirty-
// candidate tracking must report exact marginal reuse somewhere on the
// grid). Every driver runs on a fresh optimizer so no cache state leaks
// between the compared runs.
func TestLazyWorkloadPropertyGrid(t *testing.T) {
	cat := tpcd.Catalog(1)
	lazyEngaged, reuseEngaged := false, false
	for _, shape := range []workload.Shape{workload.Star, workload.Chain, workload.Snowflake} {
		for _, sharing := range []float64{0.25, 0.75} {
			t.Run(fmt.Sprintf("%s/sigma%g", shape, sharing), func(t *testing.T) {
				spec := workload.Spec{
					Seed:       11,
					Queries:    12,
					Shape:      shape,
					FanOut:     min(4, workload.MaxFanOut(shape)),
					Sharing:    sharing,
					SelectFrac: 0.8,
					AggFrac:    0.5,
				}
				batch := workload.MustGenerate(spec)

				type run struct {
					set  []string
					cost string
					res  submod.Result
				}
				exec := func(f func(*volcano.Optimizer) submod.Result) run {
					opt, err := volcano.NewOptimizer(cat, cost.Default(), batch)
					if err != nil {
						t.Fatal(err)
					}
					r := f(opt)
					bf := core.NewBenefitFunc(opt) // fresh base for pricing only
					var ids []string
					for _, id := range bf.ToNodes(r.Set) {
						ids = append(ids, fmt.Sprint(id))
					}
					c := fmt.Sprintf("%.6f", bf.Base()-r.Value)
					return run{set: ids, cost: c, res: r}
				}
				marginal := func(alg func(*submod.Decomposition) submod.Result) run {
					return exec(func(opt *volcano.Optimizer) submod.Result {
						return alg(submod.DecomposeStar(submod.NewOracle(core.NewBenefitFunc(opt))))
					})
				}
				plain := func(alg func(*submod.Oracle) submod.Result) run {
					return exec(func(opt *volcano.Optimizer) submod.Result {
						return alg(submod.NewOracle(core.NewBenefitFunc(opt)))
					})
				}

				eagerMG := marginal(submod.EagerMarginalGreedy)
				for name, got := range map[string]run{
					"MarginalGreedy":     marginal(submod.MarginalGreedy),
					"LazyMarginalGreedy": marginal(submod.LazyMarginalGreedy),
				} {
					if fmt.Sprint(got.set) != fmt.Sprint(eagerMG.set) {
						t.Errorf("%s set %v != eager %v", name, got.set, eagerMG.set)
					}
					if got.cost != eagerMG.cost {
						t.Errorf("%s cost %s != eager %s", name, got.cost, eagerMG.cost)
					}
					if got.res.Stale > 0 {
						lazyEngaged = true
					}
					if got.res.Reused > 0 {
						reuseEngaged = true
					}
				}

				eagerG := plain(submod.EagerGreedy)
				lazyG := plain(submod.Greedy)
				if fmt.Sprint(lazyG.set) != fmt.Sprint(eagerG.set) {
					t.Errorf("Greedy set %v != eager %v", lazyG.set, eagerG.set)
				}
				if lazyG.cost != eagerG.cost {
					t.Errorf("Greedy cost %s != eager %s", lazyG.cost, eagerG.cost)
				}
				if lazyG.res.Stale > 0 {
					lazyEngaged = true
				}
			})
		}
	}
	if !lazyEngaged {
		t.Error("no grid point performed a stale re-evaluation — the lazy path never engaged")
	}
	if !reuseEngaged {
		t.Error("no grid point reused an exact marginal — the dirty-candidate path never engaged")
	}
}

// TestLazyStrategyGridViaRun pins the same property at the core.Run level
// (the strategy dispatch the session uses) on the TPCD batch fixtures:
// lazy strategies agree with their golden-verified counterparts.
func TestLazyStrategyGridViaRun(t *testing.T) {
	cat := tpcd.Catalog(1)
	for bq := 1; bq <= 6; bq++ {
		batch := tpcd.BQ(bq)
		run := func(s core.Strategy) core.Result {
			opt, err := volcano.NewOptimizer(cat, cost.Default(), batch)
			if err != nil {
				t.Fatal(err)
			}
			return core.Run(opt, s)
		}
		mg, lmg := run(core.MarginalGreedy), run(core.LazyMarginalGreedy)
		if fmt.Sprint(mg.Materialized) != fmt.Sprint(lmg.Materialized) {
			t.Errorf("BQ%d: MarginalGreedy %v != LazyMarginalGreedy %v", bq, mg.Materialized, lmg.Materialized)
		}
		g, lg := run(core.Greedy), run(core.LazyGreedyStrategy)
		if fmt.Sprint(g.Materialized) != fmt.Sprint(lg.Materialized) {
			t.Errorf("BQ%d: Greedy %v != LazyGreedy %v", bq, g.Materialized, lg.Materialized)
		}
	}
}
