package repro

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/tpcd"
	"repro/internal/volcano"
)

// almostEqual absorbs last-ulp differences between a plan's Total (summed
// per subtree during extraction) and bc(S) (summed by the cost search).
func almostEqual(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	scale := 1.0
	if b > 1 || b < -1 {
		if b < 0 {
			scale = -b
		} else {
			scale = b
		}
	}
	return d <= 1e-9*scale
}

func newTestSession(t *testing.T, opts ...Option) *Session {
	t.Helper()
	sess, err := NewSession(tpcd.Catalog(1), cost.Default(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return sess
}

// TestSessionMatchesOneShotAllStrategies pins the sessionized path to the
// original facade: with no budget set, every strategy must choose the same
// materializations at the same cost as core.Run — and core.Run itself is
// pinned bit-for-bit to the seed-oracle goldens by TestOracleParityGolden.
func TestSessionMatchesOneShotAllStrategies(t *testing.T) {
	sess := newTestSession(t)
	batch := tpcd.BQ(2)
	for _, s := range []Strategy{
		core.Volcano, core.Greedy, core.LazyGreedyStrategy, core.MarginalGreedy,
		core.LazyMarginalGreedy, core.MaterializeAll, core.VolcanoSH,
	} {
		opt, err := volcano.NewOptimizer(tpcd.Catalog(1), cost.Default(), batch)
		if err != nil {
			t.Fatal(err)
		}
		want := core.Run(opt, s)
		got, err := sess.Optimize(context.Background(), batch, WithStrategy(s))
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if got.Cost != want.Cost {
			t.Errorf("%v: session cost %v != one-shot %v", s, got.Cost, want.Cost)
		}
		if len(got.Materialized) != len(want.Materialized) {
			t.Fatalf("%v: session set %v != one-shot %v", s, got.Materialized, want.Materialized)
		}
		for i := range got.Materialized {
			if got.Materialized[i] != want.Materialized[i] {
				t.Fatalf("%v: session set %v != one-shot %v", s, got.Materialized, want.Materialized)
			}
		}
		if got.Telemetry.Stopped != StopNone {
			t.Errorf("%v: unbudgeted session run reports Stopped=%v", s, got.Telemetry.Stopped)
		}
		if got.Plan == nil || !almostEqual(got.Plan.Total, got.Cost) {
			t.Errorf("%v: plan total %v != cost %v", s, got.Plan.Total, got.Cost)
		}
	}
}

func TestSessionPlanValidates(t *testing.T) {
	sess := newTestSession(t, WithParallelism(2))
	r, err := sess.Optimize(context.Background(), tpcd.BQ(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(); err != nil {
		t.Errorf("extracted plan failed validation: %v", err)
	}
	if len(r.Plan.QueryNames) != len(tpcd.BQ(3).Queries) {
		t.Errorf("plan covers %d queries, batch has %d", len(r.Plan.QueryNames), len(tpcd.BQ(3).Queries))
	}
	if r.BuildTime <= 0 || r.ExtractTime < 0 {
		t.Errorf("phase times: build %v extract %v", r.BuildTime, r.ExtractTime)
	}
}

// TestSessionCancelDeterministic cancels MarginalGreedy from the progress
// callback after its second round, twice; both runs must stop at the same
// round with the same best-so-far set (same seed ⇒ same set).
func TestSessionCancelDeterministic(t *testing.T) {
	run := func() *RunResult {
		sess := newTestSession(t)
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		r, err := sess.Optimize(ctx, tpcd.BQ(4),
			WithStrategy(core.MarginalGreedy),
			WithProgress(func(p Progress) {
				if p.Round == 2 {
					cancel()
				}
			}))
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.Telemetry.Stopped != StopCancelled {
		t.Fatalf("Stopped = %v, want %v", a.Telemetry.Stopped, StopCancelled)
	}
	if len(a.Materialized) != 2 {
		t.Errorf("cancelled after round 2 kept %d materializations", len(a.Materialized))
	}
	if len(a.Materialized) != len(b.Materialized) || a.Cost != b.Cost {
		t.Fatalf("cancellation nondeterministic: %v/%v vs %v/%v",
			a.Materialized, a.Cost, b.Materialized, b.Cost)
	}
	for i := range a.Materialized {
		if a.Materialized[i] != b.Materialized[i] {
			t.Fatalf("cancellation nondeterministic: %v vs %v", a.Materialized, b.Materialized)
		}
	}
	// The best-so-far prefix must be a subset of the full run's choices
	// and price below the no-MQO baseline.
	full, err := newTestSession(t).Optimize(context.Background(), tpcd.BQ(4))
	if err != nil {
		t.Fatal(err)
	}
	fullSet := map[int64]bool{}
	for _, id := range full.Materialized {
		fullSet[int64(id)] = true
	}
	for _, id := range a.Materialized {
		if !fullSet[int64(id)] {
			t.Errorf("prefix picked %d, which the full run never materializes", id)
		}
	}
	if a.Cost > a.VolcanoCost {
		t.Errorf("best-so-far cost %v above no-MQO %v", a.Cost, a.VolcanoCost)
	}
	if !almostEqual(a.Plan.Total, a.Cost) {
		t.Errorf("best-so-far plan total %v != cost %v", a.Plan.Total, a.Cost)
	}
}

// TestBudgetZeroOracleCallsViaSession: a zero oracle-call budget returns
// the empty set plus populated telemetry without any algorithm oracle
// spend.
func TestBudgetZeroOracleCallsViaSession(t *testing.T) {
	sess := newTestSession(t)
	r, err := sess.Optimize(context.Background(), tpcd.BQ(2), WithOracleCallBudget(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Materialized) != 0 || len(r.Plan.Steps) != 0 {
		t.Errorf("zero budget materialized %v (plan steps %d)", r.Materialized, len(r.Plan.Steps))
	}
	if r.Telemetry.Stopped != StopCallBudget || r.Telemetry.OracleCalls != 0 {
		t.Errorf("telemetry %+v, want StopCallBudget with 0 oracle calls", r.Telemetry)
	}
	if r.Cost != r.VolcanoCost || !almostEqual(r.Plan.Total, r.Cost) {
		t.Errorf("empty set must price at bc(∅): cost %v, bc(∅) %v, plan %v",
			r.Cost, r.VolcanoCost, r.Plan.Total)
	}
	if r.Telemetry.TotalTime <= 0 || r.Telemetry.BCCalls <= 0 {
		t.Errorf("telemetry not populated: %+v", r.Telemetry)
	}
}

// TestBudgetOracleCallsDeterministic: the same budget yields the same set
// on repeated runs, and a generous budget reproduces the unbudgeted
// answer.
func TestBudgetOracleCallsDeterministic(t *testing.T) {
	sess := newTestSession(t)
	batch := tpcd.BQ(3)
	full, err := sess.Optimize(context.Background(), batch)
	if err != nil {
		t.Fatal(err)
	}
	for _, budget := range []int{10, 50, 1 << 20} {
		var sets [][]int64
		for i := 0; i < 2; i++ {
			r, err := sess.Optimize(context.Background(), batch, WithOracleCallBudget(budget))
			if err != nil {
				t.Fatal(err)
			}
			ids := make([]int64, len(r.Materialized))
			for j, id := range r.Materialized {
				ids[j] = int64(id)
			}
			sets = append(sets, ids)
			if budget >= 1<<20 {
				if r.Telemetry.Stopped != StopNone || r.Cost != full.Cost {
					t.Errorf("budget %d truncated the run: %+v", budget, r.Telemetry)
				}
			}
		}
		if len(sets[0]) != len(sets[1]) {
			t.Fatalf("budget %d nondeterministic: %v vs %v", budget, sets[0], sets[1])
		}
		for j := range sets[0] {
			if sets[0][j] != sets[1][j] {
				t.Fatalf("budget %d nondeterministic: %v vs %v", budget, sets[0], sets[1])
			}
		}
	}
}

func TestSessionTimeBudgetStops(t *testing.T) {
	sess := newTestSession(t)
	r, err := sess.Optimize(context.Background(), tpcd.BQ(4), WithTimeBudget(time.Nanosecond))
	if err != nil {
		t.Fatal(err)
	}
	if r.Telemetry.Stopped != StopTimeBudget {
		t.Fatalf("Stopped = %v, want %v", r.Telemetry.Stopped, StopTimeBudget)
	}
	if r.Cost > r.VolcanoCost {
		t.Errorf("best-so-far cost %v above no-MQO %v", r.Cost, r.VolcanoCost)
	}
	if !almostEqual(r.Plan.Total, r.Cost) {
		t.Errorf("plan total %v != cost %v", r.Plan.Total, r.Cost)
	}
}

func TestSessionStatsAggregate(t *testing.T) {
	sess := newTestSession(t)
	if _, err := sess.Optimize(context.Background(), tpcd.BQ(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Optimize(context.Background(), tpcd.BQ(2), WithOracleCallBudget(0)); err != nil {
		t.Fatal(err)
	}
	st := sess.Stats()
	if st.Batches != 2 || st.Interrupted != 1 {
		t.Errorf("stats %+v, want 2 batches with 1 interrupted", st)
	}
	if st.OracleCalls <= 0 || st.BCCalls <= 0 || st.BuildTime <= 0 {
		t.Errorf("stats not aggregated: %+v", st)
	}
}

// TestSessionConcurrentOptimize exercises concurrent Optimize calls on one
// session (each call owns its DAG; the shared state is only the stats).
func TestSessionConcurrentOptimize(t *testing.T) {
	sess := newTestSession(t, WithParallelism(2))
	const n = 4
	costs := make([]float64, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := sess.Optimize(context.Background(), tpcd.BQ(2))
			if err != nil {
				t.Error(err)
				return
			}
			costs[i] = r.Cost
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if costs[i] != costs[0] {
			t.Fatalf("concurrent runs diverged: %v", costs)
		}
	}
	if st := sess.Stats(); st.Batches != n {
		t.Errorf("stats recorded %d batches, want %d", st.Batches, n)
	}
}

func TestSessionProgressReports(t *testing.T) {
	sess := newTestSession(t)
	var rounds []int
	_, err := sess.Optimize(context.Background(), tpcd.BQ(2),
		WithProgress(func(p Progress) { rounds = append(rounds, p.Round) }))
	if err != nil {
		t.Fatal(err)
	}
	if len(rounds) == 0 {
		t.Fatal("no progress reports")
	}
	for i := 1; i < len(rounds); i++ {
		if rounds[i] != rounds[i-1]+1 {
			t.Fatalf("rounds not consecutive: %v", rounds)
		}
	}
}

func TestSessionNilCatalogRejected(t *testing.T) {
	if _, err := NewSession(nil, cost.Default()); err == nil {
		t.Error("nil catalog accepted")
	}
}

func TestSessionInvalidBatchRejected(t *testing.T) {
	sess := newTestSession(t)
	if _, err := sess.Optimize(context.Background(), nil); err == nil {
		t.Error("nil batch accepted")
	}
}

// TestSessionSharedCacheWarmsAcrossBatches: the session-owned cost cache
// makes a repeat of an identical batch start warm — the second call
// reports SharedCache hits and recomputes fewer keys — while choosing the
// same set at the same cost. An unrelated batch in between must neither
// pollute nor benefit: its DAG fingerprint namespaces its entries.
func TestSessionSharedCacheWarmsAcrossBatches(t *testing.T) {
	sess := newTestSession(t, WithParallelism(1))
	ctx := context.Background()
	batch := tpcd.BQ(3)

	cold, err := sess.Optimize(ctx, batch)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Telemetry.SharedHits != 0 {
		t.Errorf("first call reported %d shared hits", cold.Telemetry.SharedHits)
	}

	if _, err := sess.Optimize(ctx, tpcd.BQ(1)); err != nil { // unrelated batch
		t.Fatal(err)
	}

	warm, err := sess.Optimize(ctx, batch)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Telemetry.SharedHits == 0 {
		t.Error("repeat of an identical batch never hit the session cache")
	}
	if warm.Telemetry.ComputedKeys >= cold.Telemetry.ComputedKeys {
		t.Errorf("warm call recomputed %d keys, cold %d — no amortization",
			warm.Telemetry.ComputedKeys, cold.Telemetry.ComputedKeys)
	}
	if fmt.Sprint(warm.Materialized) != fmt.Sprint(cold.Materialized) || warm.Cost != cold.Cost {
		t.Errorf("warm result diverged: %v/%v vs %v/%v",
			warm.Materialized, warm.Cost, cold.Materialized, cold.Cost)
	}
}

// TestSessionInvalidateCacheForcesColdStart: after InvalidateCache a
// repeated batch relearns from scratch, bit-identically.
func TestSessionInvalidateCacheForcesColdStart(t *testing.T) {
	sess := newTestSession(t, WithParallelism(1))
	ctx := context.Background()
	batch := tpcd.BQ(2)
	first, err := sess.Optimize(ctx, batch)
	if err != nil {
		t.Fatal(err)
	}
	sess.InvalidateCache()
	again, err := sess.Optimize(ctx, batch)
	if err != nil {
		t.Fatal(err)
	}
	if again.Telemetry.SharedHits != 0 {
		t.Errorf("invalidated cache still served %d hits", again.Telemetry.SharedHits)
	}
	if again.Cost != first.Cost {
		t.Errorf("cost changed across invalidation: %v vs %v", again.Cost, first.Cost)
	}
}
