package repro

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/logical"
	"repro/internal/physical"
	"repro/internal/submod"
	"repro/internal/tpcd"
	"repro/internal/volcano"
	"repro/internal/workload"
)

// The benchmarks regenerate the measured quantity of every table/figure in
// the paper's evaluation: estimated plan costs are reported as custom
// metrics (cost_s, materialized) so the Figure 4/5 series can be read off
// `go test -bench`, and wall time per op is the optimization time the
// paper plots in Figures 4c and 5c.

// runBench optimizes one workload with one strategy b.N times.
func runBench(b *testing.B, sf float64, batch *logical.Batch, strat core.Strategy) {
	b.Helper()
	cat := tpcd.Catalog(sf)
	var res core.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt, err := volcano.NewOptimizer(cat, cost.Default(), batch)
		if err != nil {
			b.Fatal(err)
		}
		res = core.Run(opt, strat)
	}
	b.StopTimer()
	b.ReportMetric(res.Cost/1000, "cost_s")
	b.ReportMetric(float64(len(res.Materialized)), "materialized")
}

// BenchmarkExample1 regenerates Example 1 / Figure 1.
func BenchmarkExample1(b *testing.B) {
	cat, batch := tpcd.ExampleOneInstance()
	for _, s := range []core.Strategy{core.Volcano, core.Greedy, core.MarginalGreedy} {
		b.Run(s.String(), func(b *testing.B) {
			var res core.Result
			for i := 0; i < b.N; i++ {
				opt, err := volcano.NewOptimizer(cat, cost.Default(), batch)
				if err != nil {
					b.Fatal(err)
				}
				res = core.Run(opt, s)
			}
			b.ReportMetric(res.Cost/1000, "cost_s")
		})
	}
}

// BenchmarkExp1 regenerates Figures 4a/4b (cost_s metric) and 4c
// (ns/op = optimization time) for the batched TPCD workloads.
func BenchmarkExp1(b *testing.B) {
	for _, sf := range []float64{1, 100} {
		b.Run(fmt.Sprintf("SF%d", int(sf)), func(b *testing.B) {
			for i := 1; i <= 6; i++ {
				batch := tpcd.BQ(i)
				for _, s := range []core.Strategy{core.Volcano, core.Greedy, core.MarginalGreedy} {
					b.Run(fmt.Sprintf("BQ%d/%s", i, s), func(b *testing.B) {
						runBench(b, sf, batch, s)
					})
				}
			}
		})
	}
}

// BenchmarkExp2 regenerates Figures 5a/5b/5c for the stand-alone queries.
func BenchmarkExp2(b *testing.B) {
	for _, sf := range []float64{1, 100} {
		b.Run(fmt.Sprintf("SF%d", int(sf)), func(b *testing.B) {
			for _, w := range tpcd.StandAlone() {
				for _, s := range []core.Strategy{core.Volcano, core.Greedy, core.MarginalGreedy} {
					b.Run(fmt.Sprintf("%s/%s", w.Name, s), func(b *testing.B) {
						runBench(b, sf, w.Batch, s)
					})
				}
			}
		})
	}
}

// BenchmarkBound regenerates the Theorem 1 bound validation: MarginalGreedy
// on Profitted Max Coverage (the Theorem 2 hardness family).
func BenchmarkBound(b *testing.B) {
	for _, gamma := range []float64{1, 4, 8} {
		b.Run(fmt.Sprintf("gamma%g", gamma), func(b *testing.B) {
			var val float64
			for i := 0; i < b.N; i++ {
				p := submod.PlantedInstance(42, 60, 4, 8, 20, gamma)
				o := submod.NewOracle(p)
				d := submod.NewDecomposition(o, p.ExplicitCosts())
				val = submod.MarginalGreedy(d).Value
			}
			b.ReportMetric(val, "f_value")
		})
	}
}

// BenchmarkLazyVsEager is the Section 5.2 ablation: the lazy drivers must
// produce the same answer as the exhaustive-scan reference with fewer
// oracle evaluations. Eager is the reference EagerMarginalGreedy;
// MarginalGreedy is the batched-lazy production driver and
// LazyMarginalGreedy its sequential (chunk 1) variant.
func BenchmarkLazyVsEager(b *testing.B) {
	batch := tpcd.BQ(5)
	cat := tpcd.Catalog(1)
	for name, alg := range map[string]func(*submod.Decomposition) submod.Result{
		"Eager":      submod.EagerMarginalGreedy,
		"Lazy":       submod.MarginalGreedy,
		"Sequential": submod.LazyMarginalGreedy,
	} {
		b.Run(name, func(b *testing.B) {
			var calls int
			for i := 0; i < b.N; i++ {
				opt, err := volcano.NewOptimizer(cat, cost.Default(), batch)
				if err != nil {
					b.Fatal(err)
				}
				o := submod.NewOracle(core.NewBenefitFunc(opt))
				alg(submod.DecomposeStar(o))
				calls = o.Calls
			}
			b.ReportMetric(float64(calls), "oracle_calls")
		})
	}
}

// BenchmarkIncrementalCache is the Section 5.1 ablation: the cross-call
// bestCost cache (incremental recomputation) against cold recomputation.
func BenchmarkIncrementalCache(b *testing.B) {
	cat := tpcd.Catalog(1)
	batch := tpcd.BQ(4)
	for _, inc := range []bool{true, false} {
		name := "incremental"
		if !inc {
			name = "cold"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opt, err := volcano.NewOptimizer(cat, cost.Default(), batch)
				if err != nil {
					b.Fatal(err)
				}
				opt.SetIncremental(inc)
				core.Run(opt, core.MarginalGreedy)
			}
		})
	}
}

// BenchmarkDAGBuild measures combined-DAG construction and expansion (the
// part of optimization that is common to every strategy).
func BenchmarkDAGBuild(b *testing.B) {
	cat := tpcd.Catalog(1)
	batch := tpcd.BQ(6)
	for i := 0; i < b.N; i++ {
		if _, err := volcano.NewOptimizer(cat, cost.Default(), batch); err != nil {
			b.Fatal(err)
		}
	}
}

// workloadSizes and workloadSharings define the BenchmarkWorkload grid:
// sub-benchmarks are named {size}x{sharing}. The 256-query points are the
// stress tier and are skipped under -short.
var (
	workloadSizes    = []int{16, 64, 256}
	workloadSharings = []float64{0.25, 0.75}
)

// BenchmarkWorkload stress-tests the full pipeline — DAG build plus
// MarginalGreedy — on generated batches far beyond BQ6, with allocation
// reporting, so BENCH_*.json charts where the next bottleneck appears as
// batches grow. (Measured on the probe run for this grid: DAG build stays
// sub-second at 256 queries while optimization grows superlinearly with the
// shareable universe — the greedy scan volume, not DAG build, dominates.)
func BenchmarkWorkload(b *testing.B) {
	cat := tpcd.Catalog(1)
	for _, size := range workloadSizes {
		for _, sharing := range workloadSharings {
			b.Run(fmt.Sprintf("%dx%g", size, sharing), func(b *testing.B) {
				if size > 64 && testing.Short() {
					b.Skipf("skipping the %d-query stress tier in -short mode", size)
				}
				batch := workload.MustGenerate(workload.DefaultSpec(size, sharing))
				var res core.Result
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					opt, err := volcano.NewOptimizer(cat, cost.Default(), batch)
					if err != nil {
						b.Fatal(err)
					}
					res = core.Run(opt, core.MarginalGreedy)
				}
				b.StopTimer()
				b.ReportMetric(res.Cost/1000, "cost_s")
				b.ReportMetric(float64(len(res.Materialized)), "materialized")
				b.ReportMetric(float64(res.OracleCalls), "bc_calls")
				b.ReportMetric(float64(res.Telemetry.Stale), "stale_reevals")
				b.ReportMetric(float64(res.Telemetry.Reused), "reused_marginals")
				b.ReportMetric(float64(res.Telemetry.Pruned), "pruned")
			})
		}
	}
}

// BenchmarkWorkloadSkew sweeps the generator's hot-group concentration
// knob at a fixed batch size: higher skew funnels the greedy scan into
// few combined-DAG groups and drives many distinct materialization masks
// through their L1 cost buckets — the adversarial access pattern for the
// flat open-addressed cache (eviction pressure concentrates instead of
// spreading). bc_calls stays deterministic per skew point, so the gate
// can track the cache under pressure exactly like the uniform grid.
func BenchmarkWorkloadSkew(b *testing.B) {
	cat := tpcd.Catalog(1)
	for _, skew := range []float64{0, 0.5, 0.9} {
		b.Run(fmt.Sprintf("64x%g", skew), func(b *testing.B) {
			spec := workload.DefaultSpec(64, 0.25)
			spec.Skew = skew
			batch := workload.MustGenerate(spec)
			var res core.Result
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				opt, err := volcano.NewOptimizer(cat, cost.Default(), batch)
				if err != nil {
					b.Fatal(err)
				}
				res = core.Run(opt, core.MarginalGreedy)
			}
			b.StopTimer()
			b.ReportMetric(res.Cost/1000, "cost_s")
			b.ReportMetric(float64(len(res.Materialized)), "materialized")
			b.ReportMetric(float64(res.OracleCalls), "bc_calls")
		})
	}
}

// BenchmarkWorkloadDAGBuild isolates combined-DAG construction and
// expansion for the generated batches — the component the stress grid
// tracks separately from optimization.
func BenchmarkWorkloadDAGBuild(b *testing.B) {
	cat := tpcd.Catalog(1)
	for _, size := range workloadSizes {
		for _, sharing := range workloadSharings {
			b.Run(fmt.Sprintf("%dx%g", size, sharing), func(b *testing.B) {
				if size > 64 && testing.Short() {
					b.Skipf("skipping the %d-query stress tier in -short mode", size)
				}
				batch := workload.MustGenerate(workload.DefaultSpec(size, sharing))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := volcano.NewOptimizer(cat, cost.Default(), batch); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkBestCostOracle measures one bc(S) evaluation on a warm searcher,
// the unit of work all MQO algorithms are built from.
func BenchmarkBestCostOracle(b *testing.B) {
	cat := tpcd.Catalog(1)
	opt, err := volcano.NewOptimizer(cat, cost.Default(), tpcd.BQ(4))
	if err != nil {
		b.Fatal(err)
	}
	sh := opt.Shareable()
	sets := make([]physical.NodeSet, len(sh))
	for i, id := range sh {
		sets[i] = opt.NewNodeSet(id)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt.BestCost(sets[i%len(sets)])
	}
}

// BenchmarkBestCost measures single bc(S) evaluations with allocation
// reporting: on a warm searcher the interned-order/bitset hot path must do
// near-zero allocation per call.
func BenchmarkBestCost(b *testing.B) {
	cat := tpcd.Catalog(1)
	opt, err := volcano.NewOptimizer(cat, cost.Default(), tpcd.BQ(4))
	if err != nil {
		b.Fatal(err)
	}
	sh := opt.Shareable()
	sets := make([]physical.NodeSet, len(sh))
	for i, id := range sh {
		sets[i] = opt.NewNodeSet(id)
	}
	opt.BestCost(sets[0]) // warm the cross-call cache and scratch tables
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt.BestCost(sets[i%len(sets)])
	}
}

// BenchmarkOracleParallel measures one batched oracle round — bc(S) for
// every single-node candidate set, evaluated concurrently on the worker
// pool — the unit of work of one parallel greedy ratio scan.
func BenchmarkOracleParallel(b *testing.B) {
	cat := tpcd.Catalog(1)
	opt, err := volcano.NewOptimizer(cat, cost.Default(), tpcd.BQ(4))
	if err != nil {
		b.Fatal(err)
	}
	sh := opt.Shareable()
	sets := make([]physical.NodeSet, len(sh))
	for i, id := range sh {
		sets[i] = opt.NewNodeSet(id)
	}
	opt.BestCostBatch(sets) // warm every worker's cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt.BestCostBatch(sets)
	}
}

// BenchmarkBestPlan measures consolidated-plan extraction with allocation
// reporting. Extraction now prices candidates directly over the compiled
// templates (the same bitset fast path the cost search uses), so the only
// allocations left are the PlanNodes of the returned tree — the
// ExtractCalls telemetry in Result counts the resolutions honestly.
func BenchmarkBestPlan(b *testing.B) {
	cat := tpcd.Catalog(1)
	opt, err := volcano.NewOptimizer(cat, cost.Default(), tpcd.BQ(4))
	if err != nil {
		b.Fatal(err)
	}
	res := core.Run(opt, core.MarginalGreedy)
	mat := res.MatSet()
	opt.Plan(mat) // warm the scratch tables and cross-call cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt.Plan(mat)
	}
}
