package repro

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/logical"
	"repro/internal/memo"
	"repro/internal/physical"
)

// Attribution is one batch member's exact slice of a shared run: which of
// the chosen materializations serve its queries, what the run cost it,
// and its conserving share of the run's telemetry. The continuous-batching
// serving layer turns each Attribution into one client response.
//
// The cost split is exact, not estimated: bc(S) decomposes as
//
//	Σ_{s∈S} (compute(s) + matWriteCost(s))  +  Σ_q useCost(root_q)
//
// and every use-cost term belongs to exactly one member. Each
// materialization's compute+write cost is divided evenly among the
// members whose query cones contain it (the last member absorbs the
// division remainder, so the shares re-sum to the node's cost exactly);
// SharedCredit is the part of those nodes' costs the other members paid.
// Summing Cost over all members therefore reproduces the run's bc(S) up
// to float addition reordering, and summing Telemetry reproduces the
// run's Telemetry field-for-field exactly.
type Attribution struct {
	// QueryOffset / QueryCount locate the member's queries inside the
	// combined batch (and the combined RunResult.Plan.Queries).
	QueryOffset int
	QueryCount  int
	// Materialized lists the chosen nodes reachable from this member's
	// queries, ascending; Set is the same slice as a NodeSet.
	Materialized []memo.GroupID
	Set          physical.NodeSet
	// Cost is the member's attributed share of bc(S): its queries' use
	// costs plus its share of its materializations' compute+write costs.
	// VolcanoCost is the member's share of bc(∅) (its queries' unshared
	// costs — no split needed), and Benefit = VolcanoCost − Cost.
	Cost        float64
	VolcanoCost float64
	Benefit     float64
	// SharedCredit is the compute+write cost of this member's attributed
	// materializations that other members' shares covered: the subsidy it
	// received from being batched. A member's attributed benefit can fall
	// below its solo benefit by at most this credit.
	SharedCredit float64
	// Telemetry is the member's conserving share of the run telemetry
	// (SplitTelemetry with query-count weights).
	Telemetry Telemetry
}

// SharedResult is the outcome of one OptimizeShared call: the combined
// run plus one Attribution per member group, in input order.
type SharedResult struct {
	*RunResult
	Attributions []Attribution
}

// OptimizeShared optimizes several members' batches as one combined DAG —
// cross-member common subexpressions unify and materializations are
// shared — and attributes the result back per member. It is the entry
// point the server's continuous-batching scheduler uses: one run, N
// exact per-request slices. Cancellation, budgets, faults and session
// stats behave exactly as in Optimize (the whole shared run counts as one
// batch); resume is not supported, because a checkpoint binds to the
// combined search space, not to any single member.
func (s *Session) OptimizeShared(ctx context.Context, groups []*logical.Batch, opts ...Option) (*SharedResult, error) {
	if len(groups) == 0 {
		return nil, errors.New("repro: OptimizeShared with no member groups")
	}
	cfg := s.mergeConfig(opts)
	if cfg.resume != nil {
		return nil, errors.New("repro: resume is not supported for shared runs")
	}
	combined := &logical.Batch{}
	counts := make([]int, len(groups))
	for i, g := range groups {
		if g == nil || len(g.Queries) == 0 {
			return nil, fmt.Errorf("repro: member group %d is empty", i)
		}
		counts[i] = len(g.Queries)
		combined.Queries = append(combined.Queries, g.Queries...)
	}
	rr, err := s.runBatch(ctx, combined, cfg)
	if err != nil {
		return nil, err
	}
	return &SharedResult{RunResult: rr, Attributions: attributeShared(rr, counts)}, nil
}

// attributeShared slices a completed shared run into per-member
// attributions. The single-member case short-circuits to the run's own
// numbers, bit-identical to a plain Optimize call.
func attributeShared(rr *RunResult, counts []int) []Attribution {
	offsets := make([]int, len(counts))
	total := 0
	for i, c := range counts {
		offsets[i] = total
		total += c
	}
	if len(counts) == 1 {
		return []Attribution{{
			QueryOffset:  0,
			QueryCount:   counts[0],
			Materialized: rr.Materialized,
			Set:          rr.Set,
			Cost:         rr.Cost,
			VolcanoCost:  rr.VolcanoCost,
			Benefit:      rr.Benefit,
			Telemetry:    rr.Telemetry,
		}}
	}

	sr := rr.opt.Searcher
	bdS := sr.CostBreakdown(rr.Set)
	bd0 := sr.CostBreakdown(physical.NodeSet{})
	owner := make([]int, total) // member index per combined query root
	for mi, off := range offsets {
		for q := 0; q < counts[mi]; q++ {
			owner[off+q] = mi
		}
	}

	attrs := make([]Attribution, len(counts))
	for mi := range attrs {
		attrs[mi].QueryOffset = offsets[mi]
		attrs[mi].QueryCount = counts[mi]
		attrs[mi].Set = sr.NewNodeSet()
	}
	for ri, u := range bdS.RootUse {
		attrs[owner[ri]].Cost += u
	}
	for ri, u := range bd0.RootUse {
		attrs[owner[ri]].VolcanoCost += u
	}
	members := make([]int, 0, len(counts)) // scratch: distinct owners per node
	for j, g := range bdS.MatGroups {
		nodeCost := bdS.MatCosts[j]
		members = members[:0]
		for _, ri := range sr.RootsReaching(g) {
			mi := owner[ri]
			if len(members) == 0 || members[len(members)-1] != mi {
				members = append(members, mi)
			}
		}
		if len(members) == 0 {
			// Unreachable: every shareable node lies in some query cone.
			members = append(members, 0)
		}
		q := nodeCost / float64(len(members))
		assigned := 0.0
		for k, mi := range members {
			share := q
			if k == len(members)-1 {
				share = nodeCost - assigned // exact conservation per node
			}
			assigned += share
			attrs[mi].Cost += share
			attrs[mi].SharedCredit += nodeCost - share
			attrs[mi].Materialized = append(attrs[mi].Materialized, g)
			attrs[mi].Set.Add(g)
		}
	}
	shares := SplitTelemetry(rr.Telemetry, counts)
	for mi := range attrs {
		attrs[mi].Benefit = attrs[mi].VolcanoCost - attrs[mi].Cost
		attrs[mi].Telemetry = shares[mi]
	}
	return attrs
}

// SplitTelemetry apportions one run's telemetry into len(weights) shares
// that conserve exactly: every integer counter and duration satisfies
// Σ shares == total, using largest-remainder apportionment (ties break to
// the lower index), so the split is deterministic and no count is ever
// lost or duplicated — the invariant the batched serving layer's
// conservation audits rely on. Stopped is copied to every share;
// CacheHitRate is recomputed per share from its own counters.
func SplitTelemetry(t Telemetry, weights []int) []Telemetry {
	n := len(weights)
	if n == 0 {
		return nil
	}
	out := make([]Telemetry, n)
	splitInt := func(total int, set func(i int, v int)) {
		vals := apportion(int64(total), weights)
		for i, v := range vals {
			set(i, int(v))
		}
	}
	splitInt(t.OracleCalls, func(i, v int) { out[i].OracleCalls = v })
	splitInt(t.BCCalls, func(i, v int) { out[i].BCCalls = v })
	splitInt(t.CacheHits, func(i, v int) { out[i].CacheHits = v })
	splitInt(t.SharedHits, func(i, v int) { out[i].SharedHits = v })
	splitInt(t.ComputedKeys, func(i, v int) { out[i].ComputedKeys = v })
	splitInt(t.SharedOracleHits, func(i, v int) { out[i].SharedOracleHits = v })
	splitInt(t.Rounds, func(i, v int) { out[i].Rounds = v })
	splitInt(t.Pruned, func(i, v int) { out[i].Pruned = v })
	splitInt(t.Stale, func(i, v int) { out[i].Stale = v })
	splitInt(t.Reused, func(i, v int) { out[i].Reused = v })
	setup := apportion(int64(t.SetupTime), weights)
	search := apportion(int64(t.SearchTime), weights)
	finalize := apportion(int64(t.FinalizeTime), weights)
	totalT := apportion(int64(t.TotalTime), weights)
	for i := range out {
		out[i].SetupTime = time.Duration(setup[i])
		out[i].SearchTime = time.Duration(search[i])
		out[i].FinalizeTime = time.Duration(finalize[i])
		out[i].TotalTime = time.Duration(totalT[i])
		out[i].Stopped = t.Stopped
		if denom := out[i].CacheHits + out[i].SharedHits + out[i].ComputedKeys; denom > 0 {
			out[i].CacheHitRate = float64(out[i].CacheHits+out[i].SharedHits) / float64(denom)
		}
	}
	return out
}

// apportion splits total into len(weights) integer parts proportional to
// the weights with Σ parts == total exactly (largest-remainder method,
// ties to the lower index). Non-positive weight sums degrade to "all to
// index 0"; negative totals split as the negated positive split.
func apportion(total int64, weights []int) []int64 {
	n := len(weights)
	out := make([]int64, n)
	if n == 0 || total == 0 {
		return out
	}
	if total < 0 {
		neg := apportion(-total, weights)
		for i, v := range neg {
			out[i] = -v
		}
		return out
	}
	var wsum int64
	for _, w := range weights {
		if w > 0 {
			wsum += int64(w)
		}
	}
	if wsum <= 0 {
		out[0] = total
		return out
	}
	type rem struct {
		idx int
		r   int64
	}
	rems := make([]rem, n)
	var given int64
	for i, w := range weights {
		if w < 0 {
			w = 0
		}
		q := total * int64(w) / wsum
		out[i] = q
		given += q
		rems[i] = rem{idx: i, r: total * int64(w) % wsum}
	}
	sort.Slice(rems, func(a, b int) bool {
		if rems[a].r != rems[b].r {
			return rems[a].r > rems[b].r
		}
		return rems[a].idx < rems[b].idx
	})
	for k := int64(0); k < total-given; k++ {
		out[rems[k%int64(n)].idx]++
	}
	return out
}
