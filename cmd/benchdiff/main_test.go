package main

import (
	"math"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkWorkload/64x0.25 	       1	 374795203 ns/op	      1716 bc_calls	     21291 cost_s
BenchmarkWorkload/64x0.25 	       1	 359985525 ns/op	      1716 bc_calls	     21291 cost_s
BenchmarkWorkload/64x0.75 	       1	 199543405 ns/op	      1483 bc_calls	     17488 cost_s
BenchmarkBestCost-8                         	       1	      1306 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	repro	1.906s
`

func TestParse(t *testing.T) {
	snap, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if snap.GOOS != "linux" || snap.GOARCH != "amd64" || !strings.Contains(snap.CPU, "Xeon") {
		t.Errorf("header not parsed: %+v", snap)
	}
	want := map[string]Bench{
		"BenchmarkWorkload/64x0.25": {NsPerOp: 359985525, BCCalls: 1716}, // minimum of the two counts
		"BenchmarkWorkload/64x0.75": {NsPerOp: 199543405, BCCalls: 1483},
		"BenchmarkBestCost":         {NsPerOp: 1306}, // -8 suffix stripped, no bc_calls metric
	}
	if len(snap.Benchmarks) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d: %v", len(snap.Benchmarks), len(want), snap.Benchmarks)
	}
	for name, b := range want {
		if got := snap.Benchmarks[name]; got != b {
			t.Errorf("%s = %+v, want %+v", name, got, b)
		}
	}
}

func TestParseIgnoresNonBenchLines(t *testing.T) {
	snap, err := Parse(strings.NewReader("FAIL\nBenchmarkBroken no fields\nBenchmark0 x 12 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Benchmarks) != 0 {
		t.Errorf("junk lines produced benchmarks: %v", snap.Benchmarks)
	}
}

func TestCompareGeomeanGate(t *testing.T) {
	base := &Snapshot{Benchmarks: map[string]Bench{"A": {NsPerOp: 100}, "B": {NsPerOp: 100}, "C": {NsPerOp: 100}}}
	// One benchmark 2x slower, two unchanged: geomean = 2^(1/3) ≈ 1.26.
	snap := &Snapshot{Benchmarks: map[string]Bench{"A": {NsPerOp: 200}, "B": {NsPerOp: 100}, "C": {NsPerOp: 100}}}
	rep := Compare(base, snap, 1.25, 1.05)
	if !rep.Fail {
		t.Errorf("geomean %.3f should fail the 1.25 gate", rep.Geomean)
	}
	if math.Abs(rep.Geomean-math.Cbrt(2)) > 1e-9 {
		t.Errorf("geomean = %v, want cbrt(2)", rep.Geomean)
	}
	// A uniform 20% improvement passes even with one 2x outlier removed.
	snap2 := &Snapshot{Benchmarks: map[string]Bench{"A": {NsPerOp: 80}, "B": {NsPerOp: 80}, "C": {NsPerOp: 80}}}
	if rep := Compare(base, snap2, 1.25, 1.05); rep.Fail {
		t.Errorf("uniform speedup failed the gate: geomean %.3f, %s", rep.Geomean, rep.Reason)
	}
}

func TestCompareOracleCallGate(t *testing.T) {
	base := &Snapshot{Benchmarks: map[string]Bench{"W": {NsPerOp: 100, BCCalls: 1000}, "B": {NsPerOp: 100}}}
	// Wall clock fine, but the deterministic call count grew 10%: fail.
	snap := &Snapshot{Benchmarks: map[string]Bench{"W": {NsPerOp: 100, BCCalls: 1100}, "B": {NsPerOp: 100}}}
	rep := Compare(base, snap, 1.25, 1.05)
	if !rep.Fail || !strings.Contains(rep.Reason, "oracle calls") {
		t.Errorf("call growth did not fail the gate: fail=%v reason=%q", rep.Fail, rep.Reason)
	}
	// Within the tolerance (and with fewer calls) it passes.
	snap2 := &Snapshot{Benchmarks: map[string]Bench{"W": {NsPerOp: 100, BCCalls: 900}, "B": {NsPerOp: 100}}}
	if rep := Compare(base, snap2, 1.25, 1.05); rep.Fail {
		t.Errorf("call reduction failed the gate: %s", rep.Reason)
	}
}

func TestCompareMissingFailsGate(t *testing.T) {
	base := &Snapshot{Benchmarks: map[string]Bench{"A": {NsPerOp: 100}, "Gone": {NsPerOp: 50}}}
	snap := &Snapshot{Benchmarks: map[string]Bench{"A": {NsPerOp: 100}, "New": {NsPerOp: 10}}}
	rep := Compare(base, snap, 1.25, 1.05)
	if !rep.Fail || !strings.Contains(rep.Reason, "missing") {
		t.Errorf("missing baseline benchmark must fail the gate: fail=%v reason=%q", rep.Fail, rep.Reason)
	}
	if len(rep.Missing) != 1 || rep.Missing[0] != "Gone" {
		t.Errorf("Missing = %v", rep.Missing)
	}
	if len(rep.Added) != 1 || rep.Added[0] != "New" {
		t.Errorf("Added = %v", rep.Added)
	}
	if !strings.Contains(rep.Table(), "Gone") {
		t.Error("table does not mention the missing benchmark")
	}
}

func TestCompareNoCommonFails(t *testing.T) {
	base := &Snapshot{Benchmarks: map[string]Bench{"A": {NsPerOp: 100}}}
	snap := &Snapshot{Benchmarks: map[string]Bench{"B": {NsPerOp: 100}}}
	if rep := Compare(base, snap, 1.25, 1.05); !rep.Fail {
		t.Error("disjoint benchmark sets must fail the gate")
	}
}
