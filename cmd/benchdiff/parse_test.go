package main

import (
	"math"
	"strings"
	"testing"
)

// TestParseEdgeCases is the table-driven sweep over the raw line formats
// `go test -bench` (and hand-edited files) can produce: lines with and
// without the allocs columns, duplicate benchmark names across -count
// runs, zero-iteration lines, sub-nanosecond results, and assorted noise
// that must parse to nothing rather than panic or misparse.
func TestParseEdgeCases(t *testing.T) {
	cases := []struct {
		name  string
		input string
		want  map[string]Bench
	}{
		{
			name:  "ns/op only, no allocs columns",
			input: "BenchmarkLean 	 100 	 2500 ns/op\n",
			want:  map[string]Bench{"BenchmarkLean": {NsPerOp: 2500}},
		},
		{
			name:  "full allocs columns",
			input: "BenchmarkFull-8 	 10 	 1200 ns/op 	 512 B/op 	 7 allocs/op\n",
			want:  map[string]Bench{"BenchmarkFull": {NsPerOp: 1200}},
		},
		{
			name: "duplicate names keep the minimum of each metric",
			input: "BenchmarkDup 	 1 	 300 ns/op 	 90 bc_calls\n" +
				"BenchmarkDup 	 1 	 200 ns/op 	 100 bc_calls\n" +
				"BenchmarkDup 	 1 	 250 ns/op 	 80 bc_calls\n",
			want: map[string]Bench{"BenchmarkDup": {NsPerOp: 200, BCCalls: 80}},
		},
		{
			name: "duplicate where one run lacks the bc_calls metric",
			input: "BenchmarkMixed 	 1 	 300 ns/op 	 50 bc_calls\n" +
				"BenchmarkMixed 	 1 	 200 ns/op\n",
			want: map[string]Bench{"BenchmarkMixed": {NsPerOp: 200, BCCalls: 50}},
		},
		{
			name:  "metric before ns/op is not mistaken for it",
			input: "BenchmarkOrder 	 1 	 42 widgets 	 900 ns/op\n",
			want:  map[string]Bench{"BenchmarkOrder": {NsPerOp: 900}},
		},
		{
			name:  "zero-count run still records its measurement",
			input: "BenchmarkZeroCount 	 0 	 1500 ns/op\n",
			want:  map[string]Bench{"BenchmarkZeroCount": {NsPerOp: 1500}},
		},
		{
			name:  "sub-nanosecond result survives",
			input: "BenchmarkFast-16 	 1000000000 	 0.2534 ns/op\n",
			want:  map[string]Bench{"BenchmarkFast": {NsPerOp: 0.2534}},
		},
		{
			name:  "zero ns/op is dropped, not recorded as a divide-by-zero trap",
			input: "BenchmarkBroken 	 1 	 0 ns/op\n",
			want:  map[string]Bench{},
		},
		{
			name:  "non-integer iteration count is not a benchmark line",
			input: "BenchmarkJunk 	 x 	 12 ns/op\n",
			want:  map[string]Bench{},
		},
		{
			name:  "missing value column",
			input: "BenchmarkShort 	 5 	 ns/op\n",
			want:  map[string]Bench{},
		},
		{
			name: "GOMAXPROCS suffix stripped only from the last element",
			input: "BenchmarkA/sub-8 	 1 	 10 ns/op\n" +
				"BenchmarkB-8/sub 	 1 	 20 ns/op\n",
			want: map[string]Bench{
				"BenchmarkA/sub":   {NsPerOp: 10},
				"BenchmarkB-8/sub": {NsPerOp: 20},
			},
		},
		{
			name: "noise lines are ignored",
			input: "goos: linux\nPASS\nok  	repro	1.2s\n--- FAIL: BenchmarkX\n" +
				"Benchmark\nBenchmarkOnlyName\n\n",
			want: map[string]Bench{},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			snap, err := Parse(strings.NewReader(tc.input))
			if err != nil {
				t.Fatal(err)
			}
			if len(snap.Benchmarks) != len(tc.want) {
				t.Fatalf("parsed %d benchmarks, want %d: %v", len(snap.Benchmarks), len(tc.want), snap.Benchmarks)
			}
			for name, b := range tc.want {
				if got := snap.Benchmarks[name]; got != b {
					t.Errorf("%s = %+v, want %+v", name, got, b)
				}
			}
		})
	}
}

// TestCompareNonPositiveBaseline: a corrupted baseline entry (ns/op ≤ 0)
// must not poison the geomean with Inf/NaN; the row is excluded from the
// ratio and the remaining benchmarks still gate normally.
func TestCompareNonPositiveBaseline(t *testing.T) {
	base := &Snapshot{Benchmarks: map[string]Bench{
		"Corrupt": {NsPerOp: 0},
		"A":       {NsPerOp: 100},
		"B":       {NsPerOp: 100},
	}}
	snap := &Snapshot{Benchmarks: map[string]Bench{
		"Corrupt": {NsPerOp: 500},
		"A":       {NsPerOp: 110},
		"B":       {NsPerOp: 110},
	}}
	rep := Compare(base, snap, 1.25, 1.05)
	if math.IsNaN(rep.Geomean) || math.IsInf(rep.Geomean, 0) {
		t.Fatalf("geomean = %v, corrupted entry poisoned the gate", rep.Geomean)
	}
	if math.Abs(rep.Geomean-1.1) > 1e-9 {
		t.Errorf("geomean = %v, want 1.1 over the two valid rows", rep.Geomean)
	}
	if rep.Fail {
		t.Errorf("gate failed on a passing run: %s", rep.Reason)
	}
	if !strings.Contains(rep.Table(), "Corrupt") {
		t.Error("corrupted row missing from the table")
	}
	// All rows non-comparable: the gate fails loudly instead of passing a
	// vacuous comparison.
	allBad := &Snapshot{Benchmarks: map[string]Bench{"Corrupt": {NsPerOp: 0}}}
	if rep := Compare(allBad, snap, 1.25, 1.05); !rep.Fail {
		t.Error("comparison with no comparable rows must fail the gate")
	}
}

// TestParseHeaderOnly: a run that produced headers but no benchmarks (all
// filtered out) parses cleanly to an empty snapshot — main turns that
// into an explicit error rather than recording an empty baseline.
func TestParseHeaderOnly(t *testing.T) {
	snap, err := Parse(strings.NewReader("goos: linux\ngoarch: amd64\ncpu: Fake CPU\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Benchmarks) != 0 || snap.GOOS != "linux" || snap.CPU != "Fake CPU" {
		t.Errorf("snapshot = %+v", snap)
	}
}
