// Command benchdiff records and compares `go test -bench` results, gating
// CI on performance regressions.
//
// Recording a baseline (commit the output):
//
//	go test -bench 'BenchmarkBestCost|BenchmarkWorkload/64x' -benchtime 1x -count 3 -run '^$' ./... |
//	  go run ./cmd/benchdiff -record BENCH_baseline.json
//
// Gating against it (exits non-zero on regression):
//
//	go test -bench ... | go run ./cmd/benchdiff -baseline BENCH_baseline.json
//
// Both flags together compare AND write the fresh snapshot (CI uploads it
// as an artifact, so the benchmark trajectory is preserved run over run).
// With -count N the minimum per benchmark is kept — the least-noise
// estimator of the true cost.
//
// Two gates run over the common benchmarks, each tuned to what it can
// trust:
//
//   - wall clock: fail when the geometric mean of the per-benchmark
//     new/old ns-per-op ratios exceeds -threshold (default 1.25). A single
//     noisy benchmark cannot fail the build unless the regression is
//     drastic, while a broad slowdown always does. This gate is hardware-
//     sensitive — a warning is printed when the recorded CPU differs from
//     the baseline's, and the baseline should be refreshed from a CI
//     artifact when the runner class shifts.
//   - oracle calls: fail when any benchmark's bc_calls metric (the
//     deterministic count of bestCost oracle evaluations the workload
//     benchmarks report) grows beyond -call-threshold (default 1.05).
//     Call counts are pure functions of the algorithm, identical on any
//     machine, so this gate catches scan-volume regressions that wall-
//     clock noise could hide.
//
// Baseline benchmarks missing from the new run fail the gate outright: a
// renamed benchmark or a drifted -bench regex must come with a deliberate
// baseline refresh, not a silently shrunken gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"time"
)

func main() {
	var (
		baseline      = flag.String("baseline", "", "baseline JSON to compare against")
		record        = flag.String("record", "", "write the parsed benchmarks as a new snapshot JSON")
		threshold     = flag.Float64("threshold", 1.25, "fail when the geomean new/old ns-per-op ratio exceeds this")
		callThreshold = flag.Float64("call-threshold", 1.05, "fail when any benchmark's bc_calls ratio exceeds this")
	)
	flag.Parse()
	if *baseline == "" && *record == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: need -baseline and/or -record")
		os.Exit(2)
	}
	snap, err := Parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	if len(snap.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no benchmark lines on stdin")
		os.Exit(2)
	}
	if *record != "" {
		if err := snap.Write(*record); err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		fmt.Printf("recorded %d benchmarks to %s\n", len(snap.Benchmarks), *record)
	}
	if *baseline == "" {
		return
	}
	base, err := Load(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	if base.CPU != "" && snap.CPU != "" && base.CPU != snap.CPU {
		fmt.Fprintf(os.Stderr, "benchdiff: warning: baseline CPU %q != current CPU %q — the ns/op gate compares across hardware; refresh the baseline from this runner's artifact if ratios look uniformly shifted\n", base.CPU, snap.CPU)
	}
	rep := Compare(base, snap, *threshold, *callThreshold)
	fmt.Print(rep.Table())
	if rep.Fail {
		fmt.Fprintf(os.Stderr, "benchdiff: FAIL — %s\n", rep.Reason)
		os.Exit(1)
	}
	fmt.Printf("benchdiff: ok — geomean ns/op ratio %.3f (threshold %.3f), oracle calls within %.2fx\n",
		rep.Geomean, *threshold, *callThreshold)
}

// Bench is one benchmark's recorded measurements: wall clock, plus the
// deterministic oracle-call metric when the benchmark reports one.
type Bench struct {
	NsPerOp float64 `json:"ns_per_op"`
	BCCalls float64 `json:"bc_calls,omitempty"`
}

// Snapshot is one recorded benchmark run: minimum measurements per
// benchmark name (GOMAXPROCS suffix stripped), plus the environment
// header go test printed, so a reader can judge whether two snapshots are
// comparable.
type Snapshot struct {
	Recorded   string           `json:"recorded,omitempty"`
	GOOS       string           `json:"goos,omitempty"`
	GOARCH     string           `json:"goarch,omitempty"`
	CPU        string           `json:"cpu,omitempty"`
	Benchmarks map[string]Bench `json:"benchmarks"`
}

// Load reads a snapshot JSON.
func Load(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &s, nil
}

// Write stores the snapshot as indented JSON with sorted keys.
func (s *Snapshot) Write(path string) error {
	s.Recorded = time.Now().UTC().Format(time.RFC3339)
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Report is the outcome of one comparison.
type Report struct {
	Rows    []Row
	Missing []string // in baseline, absent from the new run (fails the gate)
	Added   []string // in the new run, absent from baseline
	Geomean float64
	Fail    bool
	Reason  string
}

// Row is one common benchmark with its ratios.
type Row struct {
	Name      string
	Old, New  Bench
	Ratio     float64 // ns/op; 0 when either side's ns/op is non-positive
	CallRatio float64 // bc_calls; 0 when either side lacks the metric
}

// Compare gates snap against base; see the package comment for the gate
// rules.
func Compare(base, snap *Snapshot, threshold, callThreshold float64) *Report {
	rep := &Report{}
	sum, n := 0.0, 0
	worstCalls := ""
	for name, old := range base.Benchmarks {
		nv, ok := snap.Benchmarks[name]
		if !ok {
			rep.Missing = append(rep.Missing, name)
			continue
		}
		r := Row{Name: name, Old: old, New: nv}
		// A non-positive ns/op (a hand-edited or corrupted baseline entry)
		// would drive the geomean to Inf/NaN and poison the whole gate;
		// such rows are shown but excluded from the ratio.
		if old.NsPerOp > 0 && nv.NsPerOp > 0 {
			r.Ratio = nv.NsPerOp / old.NsPerOp
			sum += math.Log(r.Ratio)
			n++
		}
		if old.BCCalls > 0 && nv.BCCalls > 0 {
			r.CallRatio = nv.BCCalls / old.BCCalls
			if r.CallRatio > callThreshold && worstCalls == "" {
				worstCalls = fmt.Sprintf("%s oracle calls grew %.0f -> %.0f (%.2fx > %.2fx)",
					name, old.BCCalls, nv.BCCalls, r.CallRatio, callThreshold)
			}
		}
		rep.Rows = append(rep.Rows, r)
	}
	for name := range snap.Benchmarks {
		if _, ok := base.Benchmarks[name]; !ok {
			rep.Added = append(rep.Added, name)
		}
	}
	sort.Slice(rep.Rows, func(i, j int) bool { return rep.Rows[i].Name < rep.Rows[j].Name })
	sort.Strings(rep.Missing)
	sort.Strings(rep.Added)
	switch {
	case n == 0:
		rep.Fail = true
		rep.Geomean = math.NaN()
		rep.Reason = "no comparable benchmarks between baseline and new run"
		return rep
	case len(rep.Missing) > 0:
		rep.Fail = true
		rep.Reason = fmt.Sprintf("%d baseline benchmark(s) missing from the new run (refresh the baseline deliberately): %v", len(rep.Missing), rep.Missing)
	}
	rep.Geomean = math.Exp(sum / float64(n))
	if !rep.Fail && rep.Geomean > threshold {
		rep.Fail = true
		rep.Reason = fmt.Sprintf("geomean ns/op ratio %.3f exceeds threshold %.3f", rep.Geomean, threshold)
	}
	if !rep.Fail && worstCalls != "" {
		rep.Fail = true
		rep.Reason = worstCalls
	}
	return rep
}

// Table renders the comparison for the CI log.
func (r *Report) Table() string {
	out := fmt.Sprintf("%-52s %14s %14s %8s %10s\n", "benchmark", "old ns/op", "new ns/op", "ratio", "calls")
	for _, row := range r.Rows {
		ratio, calls := "-", "-"
		if row.Ratio > 0 {
			ratio = fmt.Sprintf("%.3f", row.Ratio)
		}
		if row.CallRatio > 0 {
			calls = fmt.Sprintf("%.3f", row.CallRatio)
		}
		out += fmt.Sprintf("%-52s %14.0f %14.0f %8s %10s\n", row.Name, row.Old.NsPerOp, row.New.NsPerOp, ratio, calls)
	}
	for _, name := range r.Missing {
		out += fmt.Sprintf("%-52s missing from the new run\n", name)
	}
	for _, name := range r.Added {
		out += fmt.Sprintf("%-52s new benchmark (not in baseline)\n", name)
	}
	return out
}
