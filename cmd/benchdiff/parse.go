package main

import (
	"bufio"
	"io"
	"strconv"
	"strings"
)

// Parse reads `go test -bench` output: benchmark result lines become
// (name → minimum measurements) entries — the GOMAXPROCS suffix is
// stripped so names are stable across machines — and the goos/goarch/cpu
// header lines are carried into the snapshot. Besides ns/op, the
// deterministic bc_calls metric is captured when a benchmark reports it.
// Unrelated lines (PASS, ok, metrics-only noise) are ignored.
func Parse(r io.Reader) (*Snapshot, error) {
	snap := &Snapshot{Benchmarks: map[string]Bench{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			snap.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			snap.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			snap.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		name, b, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		if old, seen := snap.Benchmarks[name]; seen {
			if old.NsPerOp < b.NsPerOp {
				b.NsPerOp = old.NsPerOp
			}
			if old.BCCalls > 0 && (b.BCCalls == 0 || old.BCCalls < b.BCCalls) {
				b.BCCalls = old.BCCalls
			}
		}
		snap.Benchmarks[name] = b
	}
	return snap, sc.Err()
}

// parseBenchLine extracts the measurements from one result line of the form
//
//	BenchmarkName[-8]  <iterations>  <value> ns/op  [<value> bc_calls ...]
func parseBenchLine(line string) (string, Bench, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return "", Bench{}, false
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix from the last path element only.
	if i := strings.LastIndex(name, "-"); i > 0 && !strings.Contains(name[i:], "/") {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	if _, err := strconv.Atoi(fields[1]); err != nil {
		return "", Bench{}, false // iteration count must be an integer
	}
	var b Bench
	for i := 2; i+1 < len(fields); i++ {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			b.NsPerOp = v
		case "bc_calls":
			b.BCCalls = v
		}
	}
	if b.NsPerOp == 0 {
		return "", Bench{}, false
	}
	return name, b, true
}
