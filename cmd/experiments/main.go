// Command experiments regenerates the paper's evaluation tables: Example 1
// (Figure 1), the batched TPCD workloads (Figures 4a–4c), the stand-alone
// TPCD queries (Figures 5a–5c), the Theorem 1 approximation-bound
// validation, and the Section 5 ablations. It also drives the synthetic
// workload generator (internal/workload) for stress runs beyond BQ6.
//
// Usage:
//
//	experiments [-run all|example1|exp1|exp2|bound|ablation|memory|operators|baselines|cardinality|workload|workload-sweep]
//
// The workload modes compare MQO strategies on generated batches; their
// shape is controlled by the -wl-* flags, and the session-style budgets by
// -wl-time-budget / -wl-call-budget (a budgeted run degrades to its
// best-so-far materialization set and reports why it stopped):
//
//	experiments -run workload -wl-queries 64 -wl-sharing 0.75 -wl-shape star
//	experiments -run workload -wl-queries 256 -wl-time-budget 2s
//	experiments -run workload-sweep -wl-call-budget 2000
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	run := flag.String("run", "all", "which experiment to run: all, example1, exp1, exp2, bound, ablation, memory, operators, baselines, cardinality, workload, workload-sweep")
	wlQueries := flag.Int("wl-queries", 32, "workload: number of generated queries per batch")
	wlSharing := flag.Float64("wl-sharing", 0.75, "workload: sharing coefficient in [0,1]")
	wlShape := flag.String("wl-shape", "mixed", "workload: join shape (star, chain, snowflake, mixed)")
	wlFanOut := flag.Int("wl-fanout", 4, "workload: relations joined per query")
	wlSeed := flag.Int64("wl-seed", 1, "workload: generator seed")
	wlSelect := flag.Float64("wl-select", 0.8, "workload: fraction of scans with a selection predicate")
	wlAgg := flag.Float64("wl-agg", 0.5, "workload: fraction of queries with an aggregation")
	wlSF := flag.Float64("wl-sf", 1, "workload: TPCD scale factor")
	wlTimeBudget := flag.Duration("wl-time-budget", 0, "workload: wall-clock budget per optimization run (0 = none)")
	wlCallBudget := flag.Int("wl-call-budget", -1, "workload: oracle-call budget per optimization run (-1 = none)")
	wlParallel := flag.Int("wl-parallel", 0, "workload: oracle worker-pool bound (0 = GOMAXPROCS)")
	flag.Parse()

	ctx := context.Background()
	wlConfig := func() core.Config {
		cfg := core.Config{TimeBudget: *wlTimeBudget, Parallelism: *wlParallel}
		if *wlCallBudget >= 0 {
			cfg = cfg.LimitOracleCalls(*wlCallBudget)
		}
		return cfg
	}

	want := func(name string) bool { return *run == "all" || *run == name }
	emit := func(t *experiments.Table, err error) {
		if err != nil {
			log.Fatalf("experiments: %v", err)
		}
		fmt.Println(t.String())
	}
	wlSpec := func() workload.Spec {
		shape, err := workload.ParseShape(*wlShape)
		if err != nil {
			log.Fatalf("experiments: %v", err)
		}
		return workload.Spec{
			Seed:       *wlSeed,
			Queries:    *wlQueries,
			Shape:      shape,
			FanOut:     *wlFanOut,
			Sharing:    *wlSharing,
			SelectFrac: *wlSelect,
			AggFrac:    *wlAgg,
		}
	}

	if want("example1") {
		emit(experiments.Example1())
	}
	if want("exp1") {
		for _, sf := range []float64{1, 100} {
			emit(experiments.Experiment1(sf))
		}
		emit(experiments.Experiment1Times(1))
	}
	if want("exp2") {
		for _, sf := range []float64{1, 100} {
			emit(experiments.Experiment2(sf))
		}
		emit(experiments.Experiment2Times(1))
	}
	if want("bound") {
		fmt.Println(experiments.BoundValidation().String())
	}
	if want("ablation") {
		emit(experiments.Ablation())
		emit(experiments.RuleAblation())
	}
	if want("memory") {
		emit(experiments.MemorySweep())
	}
	if want("operators") {
		emit(experiments.ExtendedOperators())
	}
	if want("baselines") {
		emit(experiments.Baselines())
	}
	if want("cardinality") {
		emit(experiments.CardinalityConstraint())
	}
	if want("workload") {
		emit(experiments.Workload(ctx, wlSpec(), *wlSF, wlConfig()))
	}
	// The sweep is not part of -run all: it optimizes a grid of batches and
	// takes minutes at the larger sizes (unless bounded by -wl-time-budget).
	if *run == "workload-sweep" {
		emit(experiments.WorkloadSweep(ctx, wlSpec(), *wlSF, []int{16, 32, 64}, []float64{0.25, 0.75}, wlConfig()))
	}
	if *run != "all" {
		switch *run {
		case "example1", "exp1", "exp2", "bound", "ablation", "memory", "operators", "baselines", "cardinality", "workload", "workload-sweep":
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *run)
			os.Exit(2)
		}
	}
}
