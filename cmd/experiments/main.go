// Command experiments regenerates the paper's evaluation tables: Example 1
// (Figure 1), the batched TPCD workloads (Figures 4a–4c), the stand-alone
// TPCD queries (Figures 5a–5c), the Theorem 1 approximation-bound
// validation, and the Section 5 ablations. It also drives the synthetic
// workload generator (internal/workload) for stress runs beyond BQ6.
//
// Usage:
//
//	experiments [-run all|example1|exp1|exp2|bound|ablation|memory|operators|baselines|cardinality|workload|workload-sweep|loadsim]
//
// The workload modes compare MQO strategies on generated batches; their
// shape is controlled by the -wl-* flags, and the session-style budgets by
// -wl-time-budget / -wl-call-budget (a budgeted run degrades to its
// best-so-far materialization set and reports why it stopped):
//
//	experiments -run workload -wl-queries 64 -wl-sharing 0.75 -wl-shape star
//	experiments -run workload -wl-queries 256 -wl-time-budget 2s
//	experiments -run workload-sweep -wl-call-budget 2000
//
// -run loadsim replays a seeded multi-tenant trace (internal/loadsim)
// against a live router or server named by -ls-url — or against a
// throwaway in-process server when the flag is empty — and reports
// latency percentiles, goodput and per-replica affinity:
//
//	experiments -run loadsim -ls-url http://router:8070 -ls-rate 20 -ls-duration 30s
//	experiments -run loadsim -ls-tenants 4 -ls-seed 11 -ls-timescale 10
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/loadsim"
	"repro/internal/server"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	run := flag.String("run", "all", "which experiment to run: all, example1, exp1, exp2, bound, ablation, memory, operators, baselines, cardinality, workload, workload-sweep")
	wlQueries := flag.Int("wl-queries", 32, "workload: number of generated queries per batch")
	wlSharing := flag.Float64("wl-sharing", 0.75, "workload: sharing coefficient in [0,1]")
	wlShape := flag.String("wl-shape", "mixed", "workload: join shape (star, chain, snowflake, mixed)")
	wlFanOut := flag.Int("wl-fanout", 4, "workload: relations joined per query")
	wlSeed := flag.Int64("wl-seed", 1, "workload: generator seed")
	wlSelect := flag.Float64("wl-select", 0.8, "workload: fraction of scans with a selection predicate")
	wlAgg := flag.Float64("wl-agg", 0.5, "workload: fraction of queries with an aggregation")
	wlSF := flag.Float64("wl-sf", 1, "workload: TPCD scale factor")
	wlTimeBudget := flag.Duration("wl-time-budget", 0, "workload: wall-clock budget per optimization run (0 = none)")
	wlCallBudget := flag.Int("wl-call-budget", -1, "workload: oracle-call budget per optimization run (-1 = none)")
	wlParallel := flag.Int("wl-parallel", 0, "workload: oracle worker-pool bound (0 = GOMAXPROCS)")
	lsURL := flag.String("ls-url", "", "loadsim: router or server base URL (empty = throwaway in-process server)")
	lsSeed := flag.Int64("ls-seed", 1, "loadsim: trace seed (same seed, byte-identical trace)")
	lsDuration := flag.Duration("ls-duration", 10*time.Second, "loadsim: virtual trace length")
	lsTenants := flag.Int("ls-tenants", 3, "loadsim: open-loop tenant count")
	lsRate := flag.Float64("ls-rate", 5, "loadsim: per-tenant mean arrival rate (requests/s)")
	lsDiurnal := flag.Float64("ls-diurnal", 0.5, "loadsim: diurnal rate-modulation amplitude in [0,1)")
	lsTimeScale := flag.Float64("ls-timescale", 0, "loadsim: virtual-to-real speedup (0 = replay flat out)")
	lsInFlight := flag.Int("ls-inflight", 8, "loadsim: max concurrent in-flight requests")
	flag.Parse()

	ctx := context.Background()
	wlConfig := func() core.Config {
		cfg := core.Config{TimeBudget: *wlTimeBudget, Parallelism: *wlParallel}
		if *wlCallBudget >= 0 {
			cfg = cfg.LimitOracleCalls(*wlCallBudget)
		}
		return cfg
	}

	want := func(name string) bool { return *run == "all" || *run == name }
	emit := func(t *experiments.Table, err error) {
		if err != nil {
			log.Fatalf("experiments: %v", err)
		}
		fmt.Println(t.String())
	}
	wlSpec := func() workload.Spec {
		shape, err := workload.ParseShape(*wlShape)
		if err != nil {
			log.Fatalf("experiments: %v", err)
		}
		return workload.Spec{
			Seed:       *wlSeed,
			Queries:    *wlQueries,
			Shape:      shape,
			FanOut:     *wlFanOut,
			Sharing:    *wlSharing,
			SelectFrac: *wlSelect,
			AggFrac:    *wlAgg,
		}
	}

	if want("example1") {
		emit(experiments.Example1())
	}
	if want("exp1") {
		for _, sf := range []float64{1, 100} {
			emit(experiments.Experiment1(sf))
		}
		emit(experiments.Experiment1Times(1))
	}
	if want("exp2") {
		for _, sf := range []float64{1, 100} {
			emit(experiments.Experiment2(sf))
		}
		emit(experiments.Experiment2Times(1))
	}
	if want("bound") {
		fmt.Println(experiments.BoundValidation().String())
	}
	if want("ablation") {
		emit(experiments.Ablation())
		emit(experiments.RuleAblation())
	}
	if want("memory") {
		emit(experiments.MemorySweep())
	}
	if want("operators") {
		emit(experiments.ExtendedOperators())
	}
	if want("baselines") {
		emit(experiments.Baselines())
	}
	if want("cardinality") {
		emit(experiments.CardinalityConstraint())
	}
	if want("workload") {
		emit(experiments.Workload(ctx, wlSpec(), *wlSF, wlConfig()))
	}
	// The sweep is not part of -run all: it optimizes a grid of batches and
	// takes minutes at the larger sizes (unless bounded by -wl-time-budget).
	if *run == "workload-sweep" {
		emit(experiments.WorkloadSweep(ctx, wlSpec(), *wlSF, []int{16, 32, 64}, []float64{0.25, 0.75}, wlConfig()))
	}
	// The load simulation is not part of -run all: it needs a serving
	// target (or stands one up) and measures wall-clock behavior, not
	// paper tables.
	if *run == "loadsim" {
		base := *lsURL
		if base == "" {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				log.Fatalf("experiments: loadsim: %v", err)
			}
			go func() { _ = http.Serve(ln, server.New(server.Config{}).Handler()) }()
			defer ln.Close()
			base = "http://" + ln.Addr().String()
			fmt.Printf("loadsim: no -ls-url, serving in-process at %s\n", base)
		}
		tenants := make([]loadsim.TenantLoad, *lsTenants)
		for i := range tenants {
			tenants[i] = loadsim.TenantLoad{
				Tenant:     fmt.Sprintf("tenant-%d", i),
				RatePerSec: *lsRate,
				DiurnalAmp: *lsDiurnal,
				Spec:       wlSpec(),
				SF:         *wlSF,
				VarySeeds:  true,
			}
		}
		tr, err := loadsim.GenTrace(loadsim.TraceConfig{
			Seed: *lsSeed, Duration: *lsDuration, Tenants: tenants,
		})
		if err != nil {
			log.Fatalf("experiments: loadsim: %v", err)
		}
		fmt.Print(tr.Summary())
		rep, err := loadsim.Run(ctx, tr, loadsim.RunConfig{
			BaseURL: base, TimeScale: *lsTimeScale, MaxInFlight: *lsInFlight, ScrapeStats: true,
		})
		if err != nil {
			log.Fatalf("experiments: loadsim: %v", err)
		}
		fmt.Print(rep.String())
	}
	if *run != "all" {
		switch *run {
		case "example1", "exp1", "exp2", "bound", "ablation", "memory", "operators", "baselines", "cardinality", "workload", "workload-sweep", "loadsim":
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *run)
			os.Exit(2)
		}
	}
}
