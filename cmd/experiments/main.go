// Command experiments regenerates the paper's evaluation tables: Example 1
// (Figure 1), the batched TPCD workloads (Figures 4a–4c), the stand-alone
// TPCD queries (Figures 5a–5c), the Theorem 1 approximation-bound
// validation, and the Section 5 ablations.
//
// Usage:
//
//	experiments [-run all|example1|exp1|exp2|bound|ablation|memory|cardinality]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	run := flag.String("run", "all", "which experiment to run: all, example1, exp1, exp2, bound, ablation")
	flag.Parse()

	want := func(name string) bool { return *run == "all" || *run == name }
	emit := func(t *experiments.Table, err error) {
		if err != nil {
			log.Fatalf("experiments: %v", err)
		}
		fmt.Println(t.String())
	}

	if want("example1") {
		emit(experiments.Example1())
	}
	if want("exp1") {
		for _, sf := range []float64{1, 100} {
			emit(experiments.Experiment1(sf))
		}
		emit(experiments.Experiment1Times(1))
	}
	if want("exp2") {
		for _, sf := range []float64{1, 100} {
			emit(experiments.Experiment2(sf))
		}
		emit(experiments.Experiment2Times(1))
	}
	if want("bound") {
		fmt.Println(experiments.BoundValidation().String())
	}
	if want("ablation") {
		emit(experiments.Ablation())
		emit(experiments.RuleAblation())
	}
	if want("memory") {
		emit(experiments.MemorySweep())
	}
	if want("operators") {
		emit(experiments.ExtendedOperators())
	}
	if want("baselines") {
		emit(experiments.Baselines())
	}
	if want("cardinality") {
		emit(experiments.CardinalityConstraint())
	}
	if *run != "all" {
		switch *run {
		case "example1", "exp1", "exp2", "bound", "ablation", "memory", "operators", "baselines", "cardinality":
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *run)
			os.Exit(2)
		}
	}
}
