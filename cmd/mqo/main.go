// Command mqo optimizes a batch of SQL-like queries against the TPCD
// catalog through a repro.Session and prints the consolidated plan chosen
// by the selected MQO strategy, plus the run telemetry.
//
// Usage:
//
//	mqo [-sf 1] [-algo marginal|greedy|volcano|all] [-file batch.sql]
//	    [-timeout 0] [-budget -1] [-parallel 0]
//
// Reads the batch from -file or stdin; statements are separated by
// semicolons. A -timeout or -budget bound degrades the run to its
// best-so-far materialization set (printed with the stop reason). Example:
//
//	echo "SELECT o.orderdate, SUM(l.extendedprice)
//	      FROM orders o, lineitem l
//	      WHERE o.orderkey = l.orderkey AND o.orderdate < 1100
//	      GROUP BY o.orderdate;
//	      SELECT o.orderdate, SUM(l.extendedprice)
//	      FROM orders o, lineitem l
//	      WHERE o.orderkey = l.orderkey AND o.orderdate < 1400
//	      GROUP BY o.orderdate;" | mqo -algo all
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"repro"
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/logical"
	"repro/internal/parser"
	"repro/internal/tpcd"
	"repro/internal/volcano"
)

func main() {
	log.SetFlags(0)
	sf := flag.Float64("sf", 1, "TPCD scale factor (1 ≈ 1GB, 100 ≈ 100GB)")
	algo := flag.String("algo", "marginal", "algorithm: marginal, lazymarginal, greedy, volcano, all")
	file := flag.String("file", "", "file with the SQL batch (default: stdin)")
	showPlan := flag.Bool("plan", true, "print the consolidated plan")
	dot := flag.Bool("dot", false, "emit the combined AND-OR DAG as Graphviz DOT and exit")
	k := flag.Int("k", 0, "cardinality constraint on materializations (0 = unconstrained)")
	ext := flag.Bool("hash", false, "enable the extended operator set (hash join, hash aggregation)")
	timeout := flag.Duration("timeout", 0, "wall-clock budget per optimization (0 = none)")
	budget := flag.Int("budget", -1, "oracle-call budget per optimization (-1 = none, 0 = empty set)")
	parallel := flag.Int("parallel", 0, "oracle worker-pool bound (0 = GOMAXPROCS)")
	flag.Parse()

	var src []byte
	var err error
	if *file != "" {
		src, err = os.ReadFile(*file)
	} else {
		src, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		log.Fatalf("mqo: reading input: %v", err)
	}
	batch, err := parser.ParseBatch(string(src))
	if err != nil {
		log.Fatalf("mqo: %v", err)
	}
	cat := tpcd.Catalog(*sf)
	ctx := context.Background()

	if *dot {
		opt, err := volcano.NewOptimizer(cat, cost.Default(), batch)
		if err != nil {
			log.Fatalf("mqo: %v", err)
		}
		if err := opt.Memo.WriteDOT(os.Stdout, opt.Shareable()); err != nil {
			log.Fatalf("mqo: %v", err)
		}
		return
	}

	strategies := map[string][]repro.Strategy{
		"volcano":      {core.Volcano},
		"greedy":       {core.Greedy},
		"marginal":     {core.MarginalGreedy},
		"lazymarginal": {core.LazyMarginalGreedy},
		"all":          {core.Volcano, core.Greedy, core.MarginalGreedy},
	}
	strats, ok := strategies[*algo]
	if !ok {
		log.Fatalf("mqo: unknown algorithm %q", *algo)
	}

	sess, err := repro.NewSession(cat, cost.Default(),
		repro.WithParallelism(*parallel),
		repro.WithExtendedOps(*ext))
	if err != nil {
		log.Fatalf("mqo: %v", err)
	}
	for _, s := range strats {
		if *k > 0 && s == core.MarginalGreedy {
			// The cardinality constraint applies to MarginalGreedy only
			// (Section 5.3) and stays on the core API: RunK is not a
			// streaming-session strategy.
			if *timeout > 0 || *budget >= 0 || *parallel > 0 {
				log.Printf("mqo: note: -timeout/-budget/-parallel do not apply to the -k mode")
			}
			runK(cat, batch, *k, *ext, *showPlan)
			continue
		}
		opts := []repro.Option{repro.WithStrategy(s)}
		if *timeout > 0 {
			opts = append(opts, repro.WithTimeBudget(*timeout))
		}
		if *budget >= 0 {
			opts = append(opts, repro.WithOracleCallBudget(*budget))
		}
		res, err := sess.Optimize(ctx, batch, opts...)
		if err != nil {
			log.Fatalf("mqo: %v", err)
		}
		fmt.Printf("== %s ==\n", s)
		fmt.Printf("queries: %d   materialized: %d\n", len(batch.Queries), len(res.Materialized))
		fmt.Printf("estimated cost: %.1f s (stand-alone Volcano: %.1f s, benefit %.1f s)\n",
			res.Cost/1000, res.VolcanoCost/1000, res.Benefit/1000)
		tl := res.Telemetry
		fmt.Printf("optimization: %v total (build %v, setup %v, search %v, extract %v)\n",
			res.OptTime, res.BuildTime, tl.SetupTime, tl.SearchTime, res.ExtractTime)
		fmt.Printf("oracle: %d calls over %d rounds, %d bc evaluations, cache hit rate %.0f%%\n",
			tl.OracleCalls, tl.Rounds, tl.BCCalls, 100*tl.CacheHitRate)
		if tl.Stopped != repro.StopNone {
			fmt.Printf("stopped early: %s (best-so-far set)\n", tl.Stopped)
		}
		if *showPlan {
			if err := res.Validate(); err != nil {
				log.Fatalf("mqo: extracted plan failed validation: %v", err)
			}
			fmt.Println(res.Plan.String())
		}
	}
}

// runK handles the -k mode through core.RunK (Section 5.3) with the
// Theorem 4 universe reduction.
func runK(cat *catalog.Catalog, batch *logical.Batch, k int, ext, showPlan bool) {
	opt, err := volcano.NewOptimizer(cat, cost.Default(), batch)
	if err != nil {
		log.Fatalf("mqo: %v", err)
	}
	if ext {
		opt.SetExtendedOps(true)
	}
	res := core.RunK(opt, k, true)
	fmt.Printf("== %s (k=%d) ==\n", res.Strategy, k)
	fmt.Printf("queries: %d   materialized: %d\n", len(batch.Queries), len(res.Materialized))
	fmt.Printf("estimated cost: %.1f s (stand-alone Volcano: %.1f s, benefit %.1f s)\n",
		res.Cost/1000, res.VolcanoCost/1000, res.Benefit/1000)
	fmt.Printf("optimization time: %v   oracle calls: %d\n", res.OptTime, res.OracleCalls)
	if showPlan {
		plan := opt.Plan(res.MatSet())
		if err := opt.Searcher.ValidatePlan(plan, res.MatSet()); err != nil {
			log.Fatalf("mqo: extracted plan failed validation: %v", err)
		}
		fmt.Println(plan.String())
	}
}
