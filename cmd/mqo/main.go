// Command mqo optimizes a batch of SQL-like queries against the TPCD
// catalog and prints the consolidated plan chosen by the selected MQO
// strategy.
//
// Usage:
//
//	mqo [-sf 1] [-algo marginal|greedy|volcano|all] [-file batch.sql]
//
// Reads the batch from -file or stdin; statements are separated by
// semicolons. Example:
//
//	echo "SELECT o.orderdate, SUM(l.extendedprice)
//	      FROM orders o, lineitem l
//	      WHERE o.orderkey = l.orderkey AND o.orderdate < 1100
//	      GROUP BY o.orderdate;
//	      SELECT o.orderdate, SUM(l.extendedprice)
//	      FROM orders o, lineitem l
//	      WHERE o.orderkey = l.orderkey AND o.orderdate < 1400
//	      GROUP BY o.orderdate;" | mqo -algo all
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/parser"
	"repro/internal/tpcd"
	"repro/internal/volcano"
)

func main() {
	log.SetFlags(0)
	sf := flag.Float64("sf", 1, "TPCD scale factor (1 ≈ 1GB, 100 ≈ 100GB)")
	algo := flag.String("algo", "marginal", "algorithm: marginal, lazymarginal, greedy, volcano, all")
	file := flag.String("file", "", "file with the SQL batch (default: stdin)")
	showPlan := flag.Bool("plan", true, "print the consolidated plan")
	dot := flag.Bool("dot", false, "emit the combined AND-OR DAG as Graphviz DOT and exit")
	k := flag.Int("k", 0, "cardinality constraint on materializations (0 = unconstrained)")
	ext := flag.Bool("hash", false, "enable the extended operator set (hash join, hash aggregation)")
	flag.Parse()

	var src []byte
	var err error
	if *file != "" {
		src, err = os.ReadFile(*file)
	} else {
		src, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		log.Fatalf("mqo: reading input: %v", err)
	}
	batch, err := parser.ParseBatch(string(src))
	if err != nil {
		log.Fatalf("mqo: %v", err)
	}
	cat := tpcd.Catalog(*sf)

	if *dot {
		opt, err := volcano.NewOptimizer(cat, cost.Default(), batch)
		if err != nil {
			log.Fatalf("mqo: %v", err)
		}
		if err := opt.Memo.WriteDOT(os.Stdout, opt.Shareable()); err != nil {
			log.Fatalf("mqo: %v", err)
		}
		return
	}

	strategies := map[string][]core.Strategy{
		"volcano":      {core.Volcano},
		"greedy":       {core.Greedy},
		"marginal":     {core.MarginalGreedy},
		"lazymarginal": {core.LazyMarginalGreedy},
		"all":          {core.Volcano, core.Greedy, core.MarginalGreedy},
	}
	strats, ok := strategies[*algo]
	if !ok {
		log.Fatalf("mqo: unknown algorithm %q", *algo)
	}

	for _, s := range strats {
		opt, err := volcano.NewOptimizer(cat, cost.Default(), batch)
		if err != nil {
			log.Fatalf("mqo: %v", err)
		}
		if *ext {
			opt.SetExtendedOps(true)
		}
		var res core.Result
		if *k > 0 && s == core.MarginalGreedy {
			res = core.RunK(opt, *k, true)
		} else {
			res = core.Run(opt, s)
		}
		fmt.Printf("== %s ==\n", s)
		fmt.Printf("queries: %d   shareable nodes: %d   materialized: %d\n",
			len(batch.Queries), len(opt.Shareable()), len(res.Materialized))
		fmt.Printf("estimated cost: %.1f s (stand-alone Volcano: %.1f s, benefit %.1f s)\n",
			res.Cost/1000, res.VolcanoCost/1000, res.Benefit/1000)
		fmt.Printf("optimization time: %v\n", res.OptTime)
		if *showPlan {
			plan := opt.Plan(res.MatSet())
			if err := opt.Searcher.ValidatePlan(plan, res.MatSet()); err != nil {
				log.Fatalf("mqo: extracted plan failed validation: %v", err)
			}
			fmt.Println(plan.String())
		}
	}
}
