// Command mqorouter fronts a set of mqoserver replicas with a
// bounded-load consistent-hash router (see internal/cluster for the
// placement, retry and health contracts).
//
// Usage:
//
//	mqorouter -replicas http://h1:8080,http://h2:8080,http://h3:8080
//	          [-listen :8070] [-vnodes 64] [-load-factor 1.25]
//	          [-retries 2] [-default-sf 1] [-health-interval 2s]
//
// Each request's placement key is tenant + catalog (scale factor +
// operator set), so one tenant's traffic for one catalog stays on one
// replica and keeps that replica's session pool and SharedCache warm.
// POST /v1/optimize forwards the body unchanged (resume tokens included)
// and stamps the serving replica into X-MQO-Replica; GET /v1/stats
// aggregates every replica's stats under router-level counters; GET
// /healthz reports ok/degraded/down for the cluster.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
)

func main() {
	log.SetFlags(0)
	var (
		listen         = flag.String("listen", ":8070", "listen address")
		replicas       = flag.String("replicas", "", "comma-separated replica base URLs (required)")
		vnodes         = flag.Int("vnodes", 64, "virtual nodes per replica on the hash ring")
		loadFactor     = flag.Float64("load-factor", 1.25, "bounded-load factor: max in-flight share per replica relative to fair share")
		retries        = flag.Int("retries", 2, "extra replicas to try after a provably-unexecuted failure")
		defaultSF      = flag.Float64("default-sf", 1, "scale factor assumed for requests naming none (must match the replicas' -sf)")
		healthInterval = flag.Duration("health-interval", 2*time.Second, "replica /healthz poll period")
	)
	flag.Parse()

	var reps []string
	for _, r := range strings.Split(*replicas, ",") {
		if r = strings.TrimSpace(r); r != "" {
			reps = append(reps, r)
		}
	}
	if len(reps) == 0 {
		log.Fatal("mqorouter: -replicas is required (comma-separated base URLs)")
	}

	rt, err := cluster.NewRouter(cluster.RouterConfig{
		Replicas:       reps,
		VNodes:         *vnodes,
		LoadFactor:     *loadFactor,
		Retries:        *retries,
		DefaultSF:      *defaultSF,
		HealthInterval: *healthInterval,
		Logger:         log.Default(),
	})
	if err != nil {
		log.Fatalf("mqorouter: %v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	go rt.Run(ctx)

	httpSrv := &http.Server{
		Addr:              *listen,
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	go func() {
		<-ctx.Done()
		log.Print("mqorouter: signal received, shutting down")
		sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(sctx); err != nil {
			log.Printf("mqorouter: shutdown incomplete: %v", err)
		}
	}()

	log.Printf("mqorouter: listening on %s, routing to %d replicas %v", *listen, len(reps), reps)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("mqorouter: %v", err)
	}
	log.Print("mqorouter: bye")
}
