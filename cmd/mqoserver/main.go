// Command mqoserver serves multi-query optimization over HTTP with
// per-tenant admission control (see internal/server for the API and the
// admission contract).
//
// Usage:
//
//	mqoserver [-listen :8080] [-tenants tenants.json] [-strict-tenants]
//	          [-pool-size 4] [-sf 1] [-sfs 1,10,100] [-max-queries 1024]
//	          [-max-concurrent 4] [-queue-depth 16] [-queue-wait 5s]
//	          [-time-budget 0] [-call-budget 0] [-call-quota 0]
//	          [-refill-per-sec 0] [-quota-burst 0] [-weight 1] [-deadline 0]
//	          [-sched-slots 0] [-sched-quantum 64] [-sched-policy drr]
//	          [-no-preempt] [-drain-grace 2s] [-drain-timeout 30s]
//	          [-breaker-off] [-breaker-failures 3] [-breaker-cooldown 10s]
//	          [-degraded-time-budget 2s] [-degraded-call-budget 50000]
//	          [-batch] [-batch-max 8] [-batch-delay 5ms] [-batch-queries 0]
//	          [-warm-from snapshot.json | -warm-from http://peer:8080/]
//
// -batch enables cross-request continuous batching: admitted requests
// with the same catalog and effective run options briefly wait for peers
// (-batch-delay), are optimized as one shared run, and each receives its
// exact attributed slice — plan, costs and a conserving telemetry share
// the tenant quota is charged with. See internal/server's package doc
// for the batching contract.
//
// -sched-slots gives all tenants a shared worker-slot pool scheduled by
// -sched-policy: "drr" (deficit-round-robin weighted-fair dispatch with
// earliest-deadline-first cut-ahead and — unless -no-preempt — deadline-
// aware preemption of checkpointable runs at round boundaries) or "fifo"
// (global arrival order). Tenants with a call_quota refill continuously
// at refill_per_sec tokens per second up to quota_burst (default: the
// quota itself); POST /v1/tenants/{name}/reset refills a bucket manually.
//
// The -tenants file is a JSON object mapping tenant name to its limits;
// the -max-concurrent/-queue-*/-*-budget/-weight/-deadline flags
// configure the default tenant applied to names missing from the table:
//
//	{
//	  "acme":  {"max_concurrent": 8, "queue_depth": 32, "queue_wait_ms": 2000,
//	            "time_budget_ms": 1000, "call_budget": 20000, "call_quota": 1000000,
//	            "refill_per_sec": 5000, "quota_burst": 2000000, "weight": 4},
//	  "guest": {"max_concurrent": 1, "queue_depth": 4, "call_quota": 50000,
//	            "deadline_ms": 500}
//	}
//
// Each catalog (scale factor + operator set) carries a circuit breaker:
// repeated recovered panics or deadline stops move it to degraded serving
// (clamped budgets, LazyGreedy fallback, "degraded":true in responses) and
// then to open (503 + Retry-After until -breaker-cooldown admits a probe).
// -breaker-off disables it entirely.
//
// On SIGTERM/SIGINT the server drains: for -drain-grace the listener
// stays open while /healthz answers 503 (so load balancers observe the
// drain and stop routing) and new optimize requests are rejected with
// 503 + Retry-After; then the listener closes and in-flight requests get
// up to -drain-timeout to finish.
package main

import (
	"context"
	"errors"
	"flag"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/server"
	"repro/internal/strictjson"
)

func main() {
	log.SetFlags(0)
	var (
		listen        = flag.String("listen", ":8080", "listen address")
		tenantsPath   = flag.String("tenants", "", "JSON file mapping tenant name to its admission config")
		strictTenants = flag.Bool("strict-tenants", false, "reject tenants missing from the -tenants table (403)")
		poolSize      = flag.Int("pool-size", 4, "max catalog-keyed sessions kept in the pool")
		sf            = flag.Float64("sf", 1, "default TPCD scale factor for requests naming none")
		sfs           = flag.String("sfs", "1,10,100", "comma-separated scale factors requests may name (the sf is a session-pool key, so this set is closed)")
		maxQueries    = flag.Int("max-queries", 1024, "max queries per request batch (-1 = unbounded)")
		maxConc       = flag.Int("max-concurrent", 4, "default tenant: concurrent requests")
		queueDepth    = flag.Int("queue-depth", 16, "default tenant: FIFO queue depth")
		queueWait     = flag.Duration("queue-wait", 5*time.Second, "default tenant: max queue wait")
		timeBudget    = flag.Duration("time-budget", 0, "default tenant: per-request optimization wall-clock cap (0 = none)")
		callBudget    = flag.Int("call-budget", 0, "default tenant: per-request oracle-call cap (0 = none)")
		callQuota     = flag.Int64("call-quota", 0, "default tenant: cumulative oracle-call quota (0 = unlimited)")
		refillPerSec  = flag.Float64("refill-per-sec", 0, "default tenant: quota token-bucket refill rate in oracle calls/sec (0 = manual reset only)")
		quotaBurst    = flag.Int64("quota-burst", 0, "default tenant: quota bucket capacity (0 = the quota itself)")
		weight        = flag.Int("weight", 1, "default tenant: weighted-fair (DRR) share of the scheduler slots")
		deadline      = flag.Duration("deadline", 0, "default tenant: relative SLO deadline applied to its requests (0 = none)")

		schedSlots   = flag.Int("sched-slots", 0, "shared worker-slot pool all tenants compete for (0 = per-tenant limits only)")
		schedQuantum = flag.Int("sched-quantum", 64, "DRR deficit quantum in query-count units, scaled by each tenant's weight")
		schedPolicy  = flag.String("sched-policy", server.PolicyDRR, `scheduling policy: "drr" or "fifo"`)
		noPreempt    = flag.Bool("no-preempt", false, "disable deadline-aware preemption while keeping DRR dispatch")
		drainGrace   = flag.Duration("drain-grace", 2*time.Second, "how long to keep answering (503) after SIGTERM so load balancers observe the drain before the listener closes")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long in-flight requests get after SIGTERM")

		batch        = flag.Bool("batch", false, "enable cross-request continuous batching (one shared run per flush, exact per-request attribution)")
		batchMax     = flag.Int("batch-max", 8, "batching: flush a lane once this many requests wait in it")
		batchDelay   = flag.Duration("batch-delay", 5*time.Millisecond, "batching: max time the first request of a lane waits for peers")
		batchQueries = flag.Int("batch-queries", 0, "batching: flush a lane once its combined query count reaches this (0 = size/deadline flushing only)")

		warmFrom = flag.String("warm-from", "", "cache snapshot to warm-start from: a file path, an http(s) URL, or a peer base URL ending in / (its /v1/cache/snapshot is fetched); the catalog it names starts with the donor's learned costs and memoized oracle values")

		breakerOff      = flag.Bool("breaker-off", false, "disable the per-catalog circuit breaker")
		breakerFailures = flag.Int("breaker-failures", 3, "consecutive faults that degrade a catalog, and again that open it; consecutive successes that close it")
		breakerCooldown = flag.Duration("breaker-cooldown", 10*time.Second, "how long an open catalog rejects before admitting a degraded probe")
		degradedTime    = flag.Duration("degraded-time-budget", 2*time.Second, "wall-clock clamp on requests served degraded")
		degradedCalls   = flag.Int("degraded-call-budget", 50000, "oracle-call clamp on requests served degraded")
	)
	flag.Parse()

	cfg := server.Config{
		DefaultTenant: server.TenantConfig{
			MaxConcurrent: *maxConc,
			QueueDepth:    *queueDepth,
			QueueWaitMS:   queueWait.Milliseconds(),
			TimeBudgetMS:  timeBudget.Milliseconds(),
			CallBudget:    *callBudget,
			CallQuota:     *callQuota,
			RefillPerSec:  *refillPerSec,
			QuotaBurst:    *quotaBurst,
			Weight:        *weight,
			DeadlineMS:    deadline.Milliseconds(),
		},
		StrictTenants: *strictTenants,
		PoolSize:      *poolSize,
		MaxQueries:    *maxQueries,
		DefaultSF:     *sf,
		Logger:        log.Default(),
		Batch: server.BatchConfig{
			Enabled:     *batch,
			MaxRequests: *batchMax,
			MaxDelayMS:  batchDelay.Milliseconds(),
			MaxQueries:  *batchQueries,
		},
		Sched: server.SchedConfig{
			Slots:     *schedSlots,
			Quantum:   *schedQuantum,
			Policy:    *schedPolicy,
			NoPreempt: *noPreempt,
		},
		Breaker: server.BreakerConfig{
			Disabled:             *breakerOff,
			FailureThreshold:     *breakerFailures,
			OpenThreshold:        *breakerFailures,
			RecoveryThreshold:    *breakerFailures,
			CooldownMS:           breakerCooldown.Milliseconds(),
			DegradedTimeBudgetMS: degradedTime.Milliseconds(),
			DegradedCallBudget:   *degradedCalls,
		},
	}
	if err := cfg.DefaultTenant.Validate(); err != nil {
		log.Fatalf("mqoserver: default tenant: %v", err)
	}
	if *schedPolicy != server.PolicyDRR && *schedPolicy != server.PolicyFIFO {
		log.Fatalf("mqoserver: -sched-policy: %q is not %q or %q", *schedPolicy, server.PolicyDRR, server.PolicyFIFO)
	}
	for _, part := range strings.Split(*sfs, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || v <= 0 {
			log.Fatalf("mqoserver: -sfs: %q is not a positive scale factor", part)
		}
		cfg.AllowedSFs = append(cfg.AllowedSFs, v)
	}
	if *tenantsPath != "" {
		table, err := loadTenants(*tenantsPath)
		if err != nil {
			log.Fatalf("mqoserver: %v", err)
		}
		cfg.Tenants = table
	}

	srv := server.New(cfg)
	if *warmFrom != "" {
		data, err := loadSnapshot(*warmFrom)
		if err != nil {
			log.Fatalf("mqoserver: -warm-from: %v", err)
		}
		res, err := srv.WarmFrom(data)
		if err != nil {
			log.Fatalf("mqoserver: -warm-from %s: %v", *warmFrom, err)
		}
		log.Printf("mqoserver: warm-started catalog %s with %d cache entries from %s",
			res.Catalog, res.Entries, *warmFrom)
	}
	httpSrv := &http.Server{
		Addr:              *listen,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	done := make(chan struct{})
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	go func() {
		sig := <-sigs
		log.Printf("mqoserver: %v — draining (%v grace, then up to %v for in-flight requests)",
			sig, *drainGrace, *drainTimeout)
		srv.Drain()
		// Keep the listener open through the grace window: new requests
		// and health probes get an orderly 503 + Retry-After (so load
		// balancers take the instance out of rotation) instead of a TCP
		// refusal. Only then does Shutdown close the listener and wait
		// for in-flight handlers.
		time.Sleep(*drainGrace)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("mqoserver: drain incomplete: %v", err)
		}
		close(done)
	}()

	log.Printf("mqoserver: listening on %s (pool %d, default sf %g, %d tenants preconfigured)",
		*listen, *poolSize, *sf, len(cfg.Tenants))
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("mqoserver: %v", err)
	}
	<-done
	log.Printf("mqoserver: drained, bye")
}

// loadSnapshot fetches the -warm-from source: an http(s) URL (a peer's
// /v1/cache/snapshot when the URL ends in /) or a local file.
func loadSnapshot(src string) ([]byte, error) {
	if strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://") {
		if strings.HasSuffix(src, "/") {
			src += "v1/cache/snapshot"
		}
		resp, err := http.Get(src)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(io.LimitReader(resp.Body, 256<<20))
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, errors.New(src + ": " + resp.Status + ": " + strings.TrimSpace(string(data)))
		}
		return data, nil
	}
	return os.ReadFile(src)
}

// loadTenants reads the tenant table, strictly: unknown fields and
// trailing data are config typos, not extensions.
func loadTenants(path string) (map[string]server.TenantConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var table map[string]server.TenantConfig
	if err := strictjson.Decode(data, &table); err != nil {
		return nil, errors.New(path + ": " + err.Error())
	}
	for name, tc := range table {
		if err := tc.Validate(); err != nil {
			return nil, errors.New(path + ": tenant " + name + ": " + err.Error())
		}
	}
	return table, nil
}
