// Package repro is a Go reproduction of "Efficient and Provable
// Multi-Query Optimization" (Kathuria & Sudarshan, PODS 2017): a
// Volcano-style multi-query optimizer whose materialization choices are
// made by the paper's MarginalGreedy algorithm for unconstrained,
// normalized submodular maximization, alongside the Greedy baseline of Roy
// et al. [SIGMOD 2000] and a stand-alone (no-MQO) Volcano mode.
//
// This root package is a thin facade over the implementation packages:
//
//	internal/catalog     schemas and statistics
//	internal/logical     query representation and builders
//	internal/memo        the combined AND-OR DAG (LQDAG) with unification
//	internal/physical    plan search, physical properties, bestCost(Q,S)
//	internal/volcano     the optimizer facade
//	internal/submod      generic UNSM: decomposition, MarginalGreedy, bounds
//	internal/core        the MQO strategies of the paper's experiments
//	internal/tpcd        the TPCD workload (schema, queries, batches)
//	internal/workload    seeded synthetic workload generator (stress batches)
//	internal/exec        iterator-model executor over synthetic data
//	internal/parser      a small SQL-like language for the CLI
//	internal/experiments the paper's tables and figures, workload stress modes
//
// Quick start:
//
//	cat := tpcd.Catalog(1)
//	opt, err := volcano.NewOptimizer(cat, cost.Default(), tpcd.BQ(3))
//	res := core.Run(opt, core.MarginalGreedy)
//	plan := opt.Plan(res.MatSet())
package repro

import (
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/logical"
	"repro/internal/physical"
	"repro/internal/volcano"
)

// Strategy selects the MQO algorithm; see internal/core for the full list.
type Strategy = core.Strategy

// Re-exported strategies.
const (
	Volcano        = core.Volcano
	Greedy         = core.Greedy
	MarginalGreedy = core.MarginalGreedy
)

// Result is an MQO outcome: the chosen materializations, the consolidated
// cost and the optimization time.
type Result = core.Result

// Plan is an extracted consolidated physical plan.
type Plan = physical.ConsolidatedPlan

// Optimize runs multi-query optimization over a batch with the paper's
// cost-model constants and returns the result together with the
// consolidated plan.
func Optimize(cat *catalog.Catalog, batch *logical.Batch, strategy Strategy) (Result, *Plan, error) {
	opt, err := volcano.NewOptimizer(cat, cost.Default(), batch)
	if err != nil {
		return Result{}, nil, err
	}
	res := core.Run(opt, strategy)
	return res, opt.Plan(res.MatSet()), nil
}
