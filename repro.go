// Package repro is a Go reproduction of "Efficient and Provable
// Multi-Query Optimization" (Kathuria & Sudarshan, PODS 2017): a
// Volcano-style multi-query optimizer whose materialization choices are
// made by the paper's MarginalGreedy algorithm for unconstrained,
// normalized submodular maximization, alongside the Greedy baseline of Roy
// et al. [SIGMOD 2000] and a stand-alone (no-MQO) Volcano mode.
//
// # Sessions
//
// The public surface is the long-lived Session: construct one per catalog
// (it fixes the schema statistics, the cost model and the tuning knobs),
// then call Optimize for every incoming batch. Optimize takes a
// context.Context and functional options, honors cancellation and budgets
// between greedy oracle rounds, and returns the chosen materializations,
// the consolidated physical plan, and run telemetry:
//
//	sess, err := repro.NewSession(tpcd.Catalog(1), cost.Default(),
//		repro.WithStrategy(repro.MarginalGreedy),
//		repro.WithParallelism(4))
//	...
//	res, err := sess.Optimize(ctx, tpcd.BQ(3),
//		repro.WithTimeBudget(200*time.Millisecond),
//		repro.WithOracleCallBudget(5000))
//	...
//	fmt.Println(res.Cost, res.Telemetry.OracleCalls, res.Telemetry.Stopped)
//	fmt.Println(res.Plan)
//
// A run cut off by its context or a budget returns the deterministic
// best-so-far materialization set of the completed rounds with
// Telemetry.Stopped saying why; with no budget set, every strategy is
// bit-identical to the original one-shot facade.
//
// # Migration from the one-shot facade
//
//	repro.Optimize(cat, batch, strat)      -> NewSession(cat, cost.Default()) +
//	                                          Session.Optimize(ctx, batch, WithStrategy(strat))
//	volcano.NewOptimizer + core.Run        -> core.RunWith(ctx, opt, strat, core.Config{...})
//	opt.Plan(res.MatSet())                 -> RunResult.Plan (already extracted, Validate() to audit)
//
// The old entry points remain as thin shims over the session path.
//
// # Implementation packages
//
//	internal/catalog     schemas and statistics
//	internal/logical     query representation and builders
//	internal/memo        the combined AND-OR DAG (LQDAG) with unification
//	internal/physical    plan search, physical properties, bestCost(Q,S)
//	internal/volcano     the optimizer facade
//	internal/submod      generic UNSM: decomposition, MarginalGreedy, bounds, budgets
//	internal/core        the MQO strategies, context/budget plumbing, telemetry
//	internal/tpcd        the TPCD workload (schema, queries, batches)
//	internal/workload    seeded synthetic workload generator (stress batches)
//	internal/exec        iterator-model executor, wavefront-parallel materialization
//	internal/parser      a small SQL-like language for the CLI
//	internal/experiments the paper's tables and figures, workload stress modes
package repro

import (
	"context"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/logical"
	"repro/internal/physical"
)

// Strategy selects the MQO algorithm; see internal/core for the full list.
type Strategy = core.Strategy

// Re-exported strategies.
const (
	Volcano        = core.Volcano
	Greedy         = core.Greedy
	MarginalGreedy = core.MarginalGreedy
)

// Result is an MQO outcome: the chosen materializations, the consolidated
// cost, the optimization time and the run telemetry.
type Result = core.Result

// Plan is an extracted consolidated physical plan.
type Plan = physical.ConsolidatedPlan

// Optimize runs multi-query optimization over a batch with the paper's
// cost-model constants and returns the result together with the
// consolidated plan.
//
// Deprecated: Optimize builds a throwaway session per call and cannot be
// cancelled or budgeted. Use NewSession and Session.Optimize.
func Optimize(cat *catalog.Catalog, batch *logical.Batch, strategy Strategy) (Result, *Plan, error) {
	sess, err := NewSession(cat, cost.Default(), WithStrategy(strategy))
	if err != nil {
		return Result{}, nil, err
	}
	r, err := sess.Optimize(context.Background(), batch)
	if err != nil {
		return Result{}, nil, err
	}
	return r.Result, r.Plan, nil
}
