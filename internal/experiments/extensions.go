package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/memo"
	"repro/internal/tpcd"
	"repro/internal/volcano"
)

// MemorySweep reproduces the paper's side note that experiments were also
// conducted with 128 MB of operator memory (Section 6): larger memory makes
// sorts and nested-loop joins cheaper, which shrinks — but does not erase —
// the benefit of sharing.
func MemorySweep() (*Table, error) {
	t := &Table{
		Title:   "Operator memory sweep (Section 6 note): BQ3 at SF 1",
		Columns: []string{"Memory", "Volcano (s)", "Greedy (s)", "MarginalGreedy (s)", "Greedy gain"},
	}
	cat := tpcd.Catalog(1)
	for _, memMB := range []int{6, 128} {
		model := cost.Default()
		model.MemBytes = memMB << 20
		res := map[core.Strategy]core.Result{}
		for _, s := range strategies {
			opt, err := volcano.NewOptimizer(cat, model, tpcd.BQ(3))
			if err != nil {
				return nil, err
			}
			res[s] = core.Run(opt, s)
		}
		v, g, m := res[core.Volcano], res[core.Greedy], res[core.MarginalGreedy]
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d MB", memMB),
			seconds(v.Cost), seconds(g.Cost), seconds(m.Cost),
			gain(v.Cost, g.Cost),
		})
	}
	return t, nil
}

// RuleAblation quantifies the design choices DESIGN.md calls out: how much
// of the MQO benefit on the batched workload comes from the select- and
// aggregate-subsumption rules versus plain identical-subexpression
// unification.
func RuleAblation() (*Table, error) {
	t := &Table{
		Title:   "Rule ablation: MarginalGreedy on BQ4 (SF 1) with subsumption rules toggled",
		Columns: []string{"Rules", "Cost (s)", "#mat", "Shareable nodes", "Benefit vs Volcano"},
	}
	cat := tpcd.Catalog(1)
	type variant struct {
		name string
		opts []memo.Option
	}
	for _, v := range []variant{
		{"all rules", nil},
		{"no select subsumption", []memo.Option{memo.WithoutSelectSubsumption()}},
		{"no aggregate subsumption", []memo.Option{memo.WithoutAggSubsumption()}},
		{"no subsumption at all", []memo.Option{memo.WithoutSelectSubsumption(), memo.WithoutAggSubsumption()}},
	} {
		opt, err := volcano.NewOptimizer(cat, cost.Default(), tpcd.BQ(4), v.opts...)
		if err != nil {
			return nil, err
		}
		r := core.Run(opt, core.MarginalGreedy)
		t.Rows = append(t.Rows, []string{
			v.name,
			seconds(r.Cost),
			fmt.Sprintf("%d", len(r.Materialized)),
			fmt.Sprintf("%d", len(opt.Shareable())),
			gain(r.VolcanoCost, r.Cost),
		})
	}
	t.Notes = append(t.Notes,
		"Subsumption strictly enriches the plan space — bc(S) never increases for any fixed S — "+
			"but the greedy trajectory over the richer DAG can land on a slightly different local optimum, "+
			"so per-variant end costs are not strictly ordered.")
	return t, nil
}

// Baselines compares the full lineage of MQO strategies on the batched
// workloads: stand-alone Volcano, the post-optimization Volcano-SH
// (Subramanian & Venkataraman; "can be highly suboptimal"), the
// materialize-everything heuristic the paper attributes to Silva et al.
// ("can be horribly inefficient"), the Greedy of Roy et al., the paper's
// MarginalGreedy, and — where the shareable universe is small enough —
// the exhaustive optimum.
func Baselines() (*Table, error) {
	t := &Table{
		Title: "MQO strategy lineage on batched workloads (SF 1, estimated cost in s)",
		Columns: []string{"Workload", "Volcano", "Volcano-SH", "MaterializeAll",
			"Greedy", "MarginalGreedy", "Exhaustive"},
	}
	cat := tpcd.Catalog(1)
	for i := 1; i <= 3; i++ {
		row := []string{fmt.Sprintf("BQ%d", i)}
		var shareableN int
		for _, s := range []core.Strategy{core.Volcano, core.VolcanoSH, core.MaterializeAll,
			core.Greedy, core.MarginalGreedy, core.Exhaustive} {
			opt, err := volcano.NewOptimizer(cat, cost.Default(), tpcd.BQ(i))
			if err != nil {
				return nil, err
			}
			shareableN = len(opt.Shareable())
			if s == core.Exhaustive && shareableN > 18 {
				row = append(row, "-")
				continue
			}
			row = append(row, seconds(core.Run(opt, s).Cost))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"Volcano-SH shares only subexpressions visible in the locally optimal plans; "+
			"MaterializeAll materializes every shareable node. Exhaustive is shown where the "+
			"shareable universe has at most 18 nodes.")
	return t, nil
}

// ExtendedOperators compares the paper's operator set (relation scan,
// indexed selection, NLJ, merge join, sort, sort-based aggregation)
// against an extended set with hash join and hash aggregation: plans get
// cheaper across the board, and the relative MQO benefit persists.
func ExtendedOperators() (*Table, error) {
	t := &Table{
		Title:   "Extended operator set: BQ3 at SF 1, paper rule set vs + hash join/agg",
		Columns: []string{"Operator set", "Volcano (s)", "Greedy (s)", "MarginalGreedy (s)", "Greedy gain"},
	}
	cat := tpcd.Catalog(1)
	for _, ext := range []bool{false, true} {
		name := "paper (sort/merge/NLJ)"
		if ext {
			name = "+ hash join & hash agg"
		}
		res := map[core.Strategy]core.Result{}
		for _, s := range strategies {
			opt, err := volcano.NewOptimizer(cat, cost.Default(), tpcd.BQ(3))
			if err != nil {
				return nil, err
			}
			opt.SetExtendedOps(ext)
			res[s] = core.Run(opt, s)
		}
		v, g, m := res[core.Volcano], res[core.Greedy], res[core.MarginalGreedy]
		t.Rows = append(t.Rows, []string{
			name, seconds(v.Cost), seconds(g.Cost), seconds(m.Cost), gain(v.Cost, g.Cost),
		})
	}
	return t, nil
}

// CardinalityConstraint exercises the Section 5.3 variant: MarginalGreedy
// limited to k materializations, with and without the Theorem 4 universe
// reduction (identical answers, fewer oracle calls when pruning fires).
func CardinalityConstraint() (*Table, error) {
	t := &Table{
		Title:   "Cardinality-constrained MQO (Section 5.3): BQ4 at SF 1",
		Columns: []string{"k", "Cost (s)", "#mat", "Same with Theorem 4 reduction"},
	}
	cat := tpcd.Catalog(1)
	for _, k := range []int{1, 2, 4, 8} {
		opt, err := volcano.NewOptimizer(cat, cost.Default(), tpcd.BQ(4))
		if err != nil {
			return nil, err
		}
		full := core.RunK(opt, k, false)
		reduced := core.RunK(opt, k, true)
		same := len(full.Materialized) == len(reduced.Materialized) && full.Cost == reduced.Cost
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", k),
			seconds(full.Cost),
			fmt.Sprintf("%d", len(full.Materialized)),
			fmt.Sprintf("%v", same),
		})
	}
	return t, nil
}
