// Package experiments regenerates every table and figure of the paper's
// evaluation section:
//
//   - Example 1 / Figure 1 — the two-query sharing example;
//   - Figure 4a/4b — estimated cost of Volcano vs Greedy vs MarginalGreedy
//     on the batched TPCD composites BQ1–BQ6 at 1 GB and 100 GB, with the
//     number of materialized nodes;
//   - Figure 4c — optimization times for the same workloads;
//   - Figure 5a/5b/5c — the same three series for the stand-alone queries
//     Q2, Q2-D, Q11 and Q15;
//   - the Theorem 1 approximation-bound validation on Profitted Max
//     Coverage instances (the hardness family of Theorem 2);
//   - Section 5 ablations: lazy vs eager MarginalGreedy and the
//     incremental bestCost cache.
//
// Past the paper's 12-query maximum (BQ6), the synthetic-workload modes
// (workload.go) run the strategy lineage over generated batches of
// dozens-to-hundreds of queries: Workload compares all seven strategies on
// one generated batch (DAG-build time, optimization time, and cost vs
// no-MQO), and WorkloadSweep charts MarginalGreedy's scaling over a
// {batch size} × {sharing coefficient} grid. The generator's knobs — seed,
// query count, join shape and fan-out, selection/aggregation mix, sharing
// coefficient — are documented on workload.Spec; cmd/experiments exposes
// them as the -wl-* flags.
//
// Each experiment returns a Table that renders in the same row/series
// structure the paper reports, so EXPERIMENTS.md can be regenerated
// mechanically.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/logical"
	"repro/internal/submod"
	"repro/internal/tpcd"
	"repro/internal/volcano"
)

// Table is a printable result table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// String renders the table as GitHub-flavored markdown.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s\n\n", t.Title)
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = "---"
	}
	b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, r := range t.Rows {
		b.WriteString("| " + strings.Join(r, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		b.WriteString("\n" + n + "\n")
	}
	return b.String()
}

// seconds renders a millisecond cost in seconds.
func seconds(ms float64) string { return fmt.Sprintf("%.0f", ms/1000) }

// strategies compared in the paper's figures.
var strategies = []core.Strategy{core.Volcano, core.Greedy, core.MarginalGreedy}

// runBatch executes the three strategies on one workload.
func runBatch(cat *catalog.Catalog, batch *logical.Batch) (map[core.Strategy]core.Result, error) {
	out := map[core.Strategy]core.Result{}
	for _, s := range strategies {
		// A fresh optimizer per strategy so optimization times are not
		// flattered by a warm incremental cache.
		opt, err := volcano.NewOptimizer(cat, cost.Default(), batch)
		if err != nil {
			return nil, err
		}
		out[s] = core.Run(opt, s)
	}
	return out, nil
}

// Experiment1 regenerates Figure 4a or 4b: batched TPCD queries at the
// given scale factor.
func Experiment1(sf float64) (*Table, error) {
	t := &Table{
		Title: fmt.Sprintf("Experiment 1 (Figure 4%s): batched TPCD queries, %s total size",
			figLetter(sf), sizeName(sf)),
		Columns: []string{"Workload", "Volcano (s)", "Greedy (s)", "#mat", "MarginalGreedy (s)", "#mat", "Greedy gain", "MG vs Greedy"},
	}
	cat := tpcd.Catalog(sf)
	for i := 1; i <= 6; i++ {
		res, err := runBatch(cat, tpcd.BQ(i))
		if err != nil {
			return nil, err
		}
		v, g, m := res[core.Volcano], res[core.Greedy], res[core.MarginalGreedy]
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("BQ%d", i),
			seconds(v.Cost),
			seconds(g.Cost), fmt.Sprintf("%d", len(g.Materialized)),
			seconds(m.Cost), fmt.Sprintf("%d", len(m.Materialized)),
			gain(v.Cost, g.Cost),
			gain(g.Cost, m.Cost),
		})
	}
	t.Notes = append(t.Notes,
		"Gain columns: percentage cost reduction relative to the previous column's algorithm.")
	return t, nil
}

// Experiment1Times regenerates Figure 4c: optimization times (CPU) for the
// batched workloads; the paper plots these on a log scale because Greedy
// and MarginalGreedy are very close.
func Experiment1Times(sf float64) (*Table, error) {
	t := &Table{
		Title:   "Experiment 1 (Figure 4c): optimization time (ms)",
		Columns: []string{"Workload", "Volcano", "Greedy", "MarginalGreedy", "Greedy bc-calls", "MG bc-calls"},
	}
	cat := tpcd.Catalog(sf)
	for i := 1; i <= 6; i++ {
		res, err := runBatch(cat, tpcd.BQ(i))
		if err != nil {
			return nil, err
		}
		v, g, m := res[core.Volcano], res[core.Greedy], res[core.MarginalGreedy]
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("BQ%d", i),
			fmt.Sprintf("%.2f", ms(v.OptTime)),
			fmt.Sprintf("%.2f", ms(g.OptTime)),
			fmt.Sprintf("%.2f", ms(m.OptTime)),
			fmt.Sprintf("%d", g.OracleCalls),
			fmt.Sprintf("%d", m.OracleCalls),
		})
	}
	return t, nil
}

// Experiment2 regenerates Figure 5a/5b: the stand-alone TPCD queries.
func Experiment2(sf float64) (*Table, error) {
	t := &Table{
		Title: fmt.Sprintf("Experiment 2 (Figure 5%s): stand-alone TPCD queries, %s total size",
			figLetter(sf), sizeName(sf)),
		Columns: []string{"Query", "Volcano (s)", "Greedy (s)", "#mat", "MarginalGreedy (s)", "#mat"},
	}
	cat := tpcd.Catalog(sf)
	for _, w := range tpcd.StandAlone() {
		res, err := runBatch(cat, w.Batch)
		if err != nil {
			return nil, err
		}
		v, g, m := res[core.Volcano], res[core.Greedy], res[core.MarginalGreedy]
		t.Rows = append(t.Rows, []string{
			w.Name,
			seconds(v.Cost),
			seconds(g.Cost), fmt.Sprintf("%d", len(g.Materialized)),
			seconds(m.Cost), fmt.Sprintf("%d", len(m.Materialized)),
		})
	}
	return t, nil
}

// Experiment2Times regenerates Figure 5c.
func Experiment2Times(sf float64) (*Table, error) {
	t := &Table{
		Title:   "Experiment 2 (Figure 5c): optimization time (ms)",
		Columns: []string{"Query", "Volcano", "Greedy", "MarginalGreedy"},
	}
	cat := tpcd.Catalog(sf)
	for _, w := range tpcd.StandAlone() {
		res, err := runBatch(cat, w.Batch)
		if err != nil {
			return nil, err
		}
		v, g, m := res[core.Volcano], res[core.Greedy], res[core.MarginalGreedy]
		t.Rows = append(t.Rows, []string{
			w.Name,
			fmt.Sprintf("%.2f", ms(v.OptTime)),
			fmt.Sprintf("%.2f", ms(g.OptTime)),
			fmt.Sprintf("%.2f", ms(m.OptTime)),
		})
	}
	return t, nil
}

// BoundValidation checks the Theorem 1 guarantee on Profitted Max Coverage
// instances with planted optima across a range of γ values: the
// MarginalGreedy value must be at least [1 − ln(1+γ)/γ]·f(Θ), and the
// exhaustive optimum confirms f(Θ) = 1.
func BoundValidation() *Table {
	t := &Table{
		Title:   "Theorem 1 bound on Profitted Max Coverage (planted optimum f(Θ)=1, γ = f(Θ)/c(Θ))",
		Columns: []string{"γ", "ground n", "sets", "MarginalGreedy f(X)", "bound [1−ln(1+γ)/γ]", "optimum", "bound holds", "DoubleGreedy (shifted)"},
	}
	for _, gamma := range []float64{0.5, 1, 2, 4, 8} {
		p := submod.PlantedInstance(42, 60, 4, 8, 20, gamma)
		o := submod.NewOracle(p)
		d := submod.NewDecomposition(o, p.ExplicitCosts())
		mg := submod.MarginalGreedy(d)
		dg := submod.DoubleGreedy(o, submod.ShiftToNonNegative(o))
		opt := submod.Exhaustive(o)
		bound := submod.TheoremOneBound(opt.Value, opt.Value/gamma)
		holds := mg.Value >= bound-1e-9
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%g", gamma),
			"60", fmt.Sprintf("%d", p.N()),
			fmt.Sprintf("%.4f", mg.Value),
			fmt.Sprintf("%.4f", bound),
			fmt.Sprintf("%.4f", opt.Value),
			fmt.Sprintf("%v", holds),
			fmt.Sprintf("%.4f", dg.Value),
		})
	}
	t.Notes = append(t.Notes,
		"DoubleGreedy [Buchbinder et al. 2012] requires a non-negative function; after the additive shift "+
			"its 1/2-guarantee is relative to the shifted function and says nothing about f — only "+
			"MarginalGreedy carries the Theorem 1 bound here.")
	return t
}

// Example1 runs the paper's introductory example (via the same instance
// the unit tests use, defined in internal/core) at a size where sharing
// pays, and reports the consolidated costs.
func Example1() (*Table, error) {
	cat, batch := tpcd.ExampleOneInstance()
	t := &Table{
		Title:   "Example 1 (Figure 1): (A⋈B⋈C, B⋈C⋈D) with shared B⋈C",
		Columns: []string{"Plan", "Estimated cost (s)", "Materialized"},
	}
	for _, s := range strategies {
		opt, err := volcano.NewOptimizer(cat, cost.Default(), batch)
		if err != nil {
			return nil, err
		}
		r := core.Run(opt, s)
		t.Rows = append(t.Rows, []string{
			s.String(), seconds(r.Cost), fmt.Sprintf("%d", len(r.Materialized)),
		})
	}
	t.Notes = append(t.Notes,
		"The paper's unit-cost instance (460 vs 370) is scaled to the cost model of Section 6; the qualitative relation (consolidated < locally-optimal) is what carries over.")
	return t, nil
}

// Ablation compares eager vs lazy MarginalGreedy and the effect of the
// incremental bestCost cache (Section 5 optimizations): identical answers,
// different work.
func Ablation() (*Table, error) {
	t := &Table{
		Title:   "Section 5 ablations (BQ4, SF 1): same answer, different work",
		Columns: []string{"Variant", "Cost (s)", "#mat", "Opt time (ms)", "bc-oracle calls", "fresh cost computations"},
	}
	cat := tpcd.Catalog(1)
	type variant struct {
		name        string
		strat       core.Strategy
		incremental bool
	}
	for _, v := range []variant{
		{"MarginalGreedy (incremental bc)", core.MarginalGreedy, true},
		{"LazyMarginalGreedy (incremental bc)", core.LazyMarginalGreedy, true},
		{"MarginalGreedy (no incremental cache)", core.MarginalGreedy, false},
		{"Greedy (incremental bc)", core.Greedy, true},
		{"LazyGreedy (incremental bc)", core.LazyGreedyStrategy, true},
	} {
		opt, err := volcano.NewOptimizer(cat, cost.Default(), tpcd.BQ(4))
		if err != nil {
			return nil, err
		}
		opt.SetIncremental(v.incremental)
		r := core.Run(opt, v.strat)
		t.Rows = append(t.Rows, []string{
			v.name,
			seconds(r.Cost),
			fmt.Sprintf("%d", len(r.Materialized)),
			fmt.Sprintf("%.2f", ms(r.OptTime)),
			fmt.Sprintf("%d", r.OracleCalls),
			fmt.Sprintf("%d", opt.Searcher.ComputedKey),
		})
	}
	return t, nil
}

func figLetter(sf float64) string {
	if sf >= 100 {
		return "b"
	}
	return "a"
}

func sizeName(sf float64) string {
	if sf >= 100 {
		return "100GB"
	}
	return "1GB"
}

func gain(before, after float64) string {
	if before <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f%%", (before-after)/before*100)
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
