package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/submod"
	"repro/internal/tpcd"
	"repro/internal/volcano"
	"repro/internal/workload"
)

// WorkloadStrategies are the seven MQO strategies the synthetic-workload
// mode compares (Exhaustive is excluded: generated universes are far beyond
// its ≤20-node limit).
var WorkloadStrategies = []core.Strategy{
	core.Volcano, core.VolcanoSH, core.MaterializeAll,
	core.Greedy, core.LazyGreedyStrategy,
	core.MarginalGreedy, core.LazyMarginalGreedy,
}

// Workload runs all seven strategies over one generated batch and reports,
// per strategy, the DAG-build time, the optimization time, the plan cost
// against the no-MQO (stand-alone Volcano) baseline, and the run
// telemetry. ctx and cfg plumb the session-style budgets through: a
// time or oracle-call budget degrades each strategy to its best-so-far
// set, visible in the "stopped" column.
func Workload(ctx context.Context, spec workload.Spec, sf float64, cfg core.Config) (*Table, error) {
	batch, err := workload.Generate(spec)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: fmt.Sprintf("Synthetic workload: %d %s queries, fan-out %d, sharing %.2f, SF %g (seed %d)",
			spec.Queries, spec.Shape, spec.FanOut, spec.Sharing, sf, spec.Seed),
		Columns: []string{"Strategy", "DAG build (ms)", "Opt time (ms)", "Cost (s)", "#mat", "Rounds", "Stopped", "Gain vs no-MQO"},
	}
	cat := tpcd.Catalog(sf)
	var groups, shareable int
	for _, s := range WorkloadStrategies {
		start := time.Now()
		// A fresh optimizer per strategy so DAG-build and optimization
		// times are measured cold, not flattered by warm caches.
		opt, err := volcano.NewOptimizer(cat, cost.Default(), batch)
		if err != nil {
			return nil, err
		}
		build := time.Since(start)
		r := core.RunWith(ctx, opt, s, cfg)
		groups, shareable = opt.Memo.NumGroups(), len(opt.Shareable())
		stopped := "-"
		if r.Telemetry.Stopped != submod.StopNone {
			stopped = r.Telemetry.Stopped.String()
		}
		t.Rows = append(t.Rows, []string{
			s.String(),
			fmt.Sprintf("%.1f", ms(build)),
			fmt.Sprintf("%.1f", ms(r.OptTime)),
			seconds(r.Cost),
			fmt.Sprintf("%d", len(r.Materialized)),
			fmt.Sprintf("%d", r.Telemetry.Rounds),
			stopped,
			// Every Result carries bc(∅), so the gain column does not
			// depend on Volcano's position in the strategy list.
			gain(r.VolcanoCost, r.Cost),
		})
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"Combined DAG: %d groups, %d shareable nodes. Gain is the cost reduction relative to the "+
			"stand-alone Volcano plans (no multi-query optimization). A budgeted run reports its stop "+
			"reason and keeps the best-so-far set.", groups, shareable))
	return t, nil
}

// WorkloadSweep charts the perf trajectory of MarginalGreedy over a grid of
// batch sizes and sharing coefficients — the scaling series the stress
// benchmarks (BenchmarkWorkload) track release over release. The same
// ctx/cfg budget plumbing as Workload applies to every cell.
func WorkloadSweep(ctx context.Context, base workload.Spec, sf float64, sizes []int, sharings []float64, cfg core.Config) (*Table, error) {
	t := &Table{
		Title: fmt.Sprintf("Workload sweep: MarginalGreedy over generated %s batches (fan-out %d, SF %g)",
			base.Shape, base.FanOut, sf),
		Columns: []string{"Batch", "Groups", "Shareable", "DAG build (ms)", "Opt time (ms)", "bc-calls", "hit %", "#mat", "Stopped", "Gain vs no-MQO"},
	}
	cat := tpcd.Catalog(sf)
	for _, n := range sizes {
		for _, sh := range sharings {
			spec := base
			spec.Queries = n
			spec.Sharing = sh
			batch, err := workload.Generate(spec)
			if err != nil {
				return nil, err
			}
			start := time.Now()
			opt, err := volcano.NewOptimizer(cat, cost.Default(), batch)
			if err != nil {
				return nil, err
			}
			build := time.Since(start)
			r := core.RunWith(ctx, opt, core.MarginalGreedy, cfg)
			stopped := "-"
			if r.Telemetry.Stopped != submod.StopNone {
				stopped = r.Telemetry.Stopped.String()
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%dx%g", n, sh),
				fmt.Sprintf("%d", opt.Memo.NumGroups()),
				fmt.Sprintf("%d", len(opt.Shareable())),
				fmt.Sprintf("%.1f", ms(build)),
				fmt.Sprintf("%.1f", ms(r.OptTime)),
				fmt.Sprintf("%d", r.OracleCalls),
				fmt.Sprintf("%.0f", 100*r.Telemetry.CacheHitRate),
				fmt.Sprintf("%d", len(r.Materialized)),
				stopped,
				gain(r.VolcanoCost, r.Cost),
			})
		}
	}
	t.Notes = append(t.Notes,
		"Rows are {queries}x{sharing coefficient}. Optimization time grows superlinearly with the "+
			"shareable universe (one greedy round scans every candidate), while DAG build stays near-linear "+
			"in the batch size — the optimizer-side scan volume, not DAG build, is the scaling bottleneck. "+
			"Time/oracle budgets (-wl-time-budget, -wl-call-budget) bound each cell and report the stop reason.")
	return t, nil
}
