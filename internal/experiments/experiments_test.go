package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestExperiment1Shape(t *testing.T) {
	tb, err := Experiment1(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 {
		t.Fatalf("expected 6 BQ rows, got %d", len(tb.Rows))
	}
	// Column 1 = Volcano, 2 = Greedy, 4 = MarginalGreedy (seconds).
	for _, row := range tb.Rows {
		v, g, m := atof(t, row[1]), atof(t, row[2]), atof(t, row[4])
		if g > v {
			t.Errorf("%s: Greedy %v worse than Volcano %v", row[0], g, v)
		}
		if m > v {
			t.Errorf("%s: MarginalGreedy %v worse than Volcano %v", row[0], m, v)
		}
		// The paper's headline: substantial gains from MQO.
		if g > 0.9*v {
			t.Errorf("%s: Greedy gain below 10%% (%v vs %v)", row[0], g, v)
		}
	}
	// Volcano cost grows with batch size.
	for i := 1; i < len(tb.Rows); i++ {
		if atof(t, tb.Rows[i][1]) <= atof(t, tb.Rows[i-1][1]) {
			t.Errorf("Volcano cost not increasing at %s", tb.Rows[i][0])
		}
	}
}

func TestExperiment1ScaleFactor(t *testing.T) {
	t1, err := Experiment1(1)
	if err != nil {
		t.Fatal(err)
	}
	t100, err := Experiment1(100)
	if err != nil {
		t.Fatal(err)
	}
	// At SF 100 the absolute gains are substantially larger (the paper's
	// observation about large data sizes).
	for i := range t1.Rows {
		g1 := atof(t, t1.Rows[i][1]) - atof(t, t1.Rows[i][2])
		g100 := atof(t, t100.Rows[i][1]) - atof(t, t100.Rows[i][2])
		if g100 < 10*g1 {
			t.Errorf("%s: SF100 absolute gain %v not ≫ SF1 gain %v", t1.Rows[i][0], g100, g1)
		}
	}
}

func TestExperiment2Shape(t *testing.T) {
	tb, err := Experiment2(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("expected 4 queries, got %d", len(tb.Rows))
	}
	names := map[string]bool{}
	for _, row := range tb.Rows {
		names[row[0]] = true
		v, g, m := atof(t, row[1]), atof(t, row[2]), atof(t, row[4])
		if g > v || m > v {
			t.Errorf("%s: MQO worse than Volcano (%v/%v vs %v)", row[0], g, m, v)
		}
		// Every stand-alone query has internal sharing worth exploiting.
		if g >= v {
			t.Errorf("%s: no gain from internal common subexpressions", row[0])
		}
	}
	for _, want := range []string{"Q2", "Q2-D", "Q11", "Q15"} {
		if !names[want] {
			t.Errorf("missing query %s", want)
		}
	}
}

func TestBoundValidationAllHold(t *testing.T) {
	tb := BoundValidation()
	holdsCol := -1
	for i, c := range tb.Columns {
		if c == "bound holds" {
			holdsCol = i
		}
	}
	if holdsCol < 0 {
		t.Fatal("bound table lost its 'bound holds' column")
	}
	for _, row := range tb.Rows {
		if row[holdsCol] != "true" {
			t.Errorf("Theorem 1 bound violated at γ=%s", row[0])
		}
	}
}

func TestExample1Table(t *testing.T) {
	tb, err := Example1()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows: %d", len(tb.Rows))
	}
	v := atof(t, tb.Rows[0][1])
	g := atof(t, tb.Rows[1][1])
	if g >= v {
		t.Errorf("Example 1: consolidated (%v) not cheaper than locally optimal (%v)", g, v)
	}
}

func TestAblationAgreement(t *testing.T) {
	tb, err := Ablation()
	if err != nil {
		t.Fatal(err)
	}
	// Rows 0–2 are MarginalGreedy variants: identical cost and #mat.
	c0, m0 := tb.Rows[0][1], tb.Rows[0][2]
	for i := 1; i <= 2; i++ {
		if tb.Rows[i][1] != c0 || tb.Rows[i][2] != m0 {
			t.Errorf("variant %q differs from eager: %v vs %v/%v",
				tb.Rows[i][0], tb.Rows[i][1:3], c0, m0)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{
		Title:   "T",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"1", "2"}},
		Notes:   []string{"note"},
	}
	s := tb.String()
	for _, want := range []string{"### T", "| a | b |", "| 1 | 2 |", "note"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q:\n%s", want, s)
		}
	}
}

func atof(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}
