package experiments

import "testing"

func TestExperimentTimesTables(t *testing.T) {
	t1, err := Experiment1Times(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(t1.Rows) != 6 {
		t.Errorf("Experiment1Times rows = %d", len(t1.Rows))
	}
	t2, err := Experiment2Times(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(t2.Rows) != 4 {
		t.Errorf("Experiment2Times rows = %d", len(t2.Rows))
	}
	// Optimization times: MQO algorithms cost more than plain Volcano.
	for _, row := range t1.Rows {
		v, g := atof(t, row[1]), atof(t, row[2])
		if g < v {
			t.Errorf("%s: Greedy optimization (%v ms) cheaper than Volcano (%v ms)?", row[0], g, v)
		}
	}
}

func TestMemorySweepTable(t *testing.T) {
	tb, err := MemorySweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows: %d", len(tb.Rows))
	}
	// More memory can only help: 128 MB Volcano ≤ 6 MB Volcano.
	if atof(t, tb.Rows[1][1]) > atof(t, tb.Rows[0][1]) {
		t.Errorf("128MB Volcano cost above 6MB: %v vs %v", tb.Rows[1][1], tb.Rows[0][1])
	}
	// Sharing still pays with 128 MB.
	if atof(t, tb.Rows[1][2]) >= atof(t, tb.Rows[1][1]) {
		t.Error("no MQO gain at 128MB")
	}
}

func TestExtendedOperatorsTable(t *testing.T) {
	tb, err := ExtendedOperators()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows: %d", len(tb.Rows))
	}
	// Extra operators can only reduce every column.
	for col := 1; col <= 3; col++ {
		if atof(t, tb.Rows[1][col]) > atof(t, tb.Rows[0][col]) {
			t.Errorf("extended ops increased column %d: %v vs %v",
				col, tb.Rows[1][col], tb.Rows[0][col])
		}
	}
}

func TestBaselinesTable(t *testing.T) {
	tb, err := Baselines()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows: %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		volcano := atof(t, row[1])
		volcanoSH := atof(t, row[2])
		matAll := atof(t, row[3])
		greedy := atof(t, row[4])
		// The lineage ordering: Volcano ≥ Volcano-SH ≥ Greedy, and
		// MaterializeAll is dramatically worse than Greedy on batches with
		// large shareable joins (BQ2, BQ3).
		if volcanoSH > volcano || greedy > volcanoSH {
			t.Errorf("%s: ordering broken: %v ≥ %v ≥ %v", row[0], volcano, volcanoSH, greedy)
		}
		if row[0] != "BQ1" && matAll < 10*greedy {
			t.Errorf("%s: MaterializeAll (%v) not dramatically worse than Greedy (%v)", row[0], matAll, greedy)
		}
	}
	// Exhaustive shown on BQ1 must match or beat Greedy.
	if ex := tb.Rows[0][6]; ex != "-" {
		if atof(t, ex) > atof(t, tb.Rows[0][4]) {
			t.Errorf("exhaustive %v worse than Greedy %v", ex, tb.Rows[0][4])
		}
	}
}

func TestCardinalityConstraintTable(t *testing.T) {
	tb, err := CardinalityConstraint()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows: %d", len(tb.Rows))
	}
	prev := 1e300
	for _, row := range tb.Rows {
		c := atof(t, row[1])
		if c > prev+1e-9 {
			t.Errorf("cost not non-increasing in k: %v after %v", c, prev)
		}
		prev = c
		if row[3] != "true" {
			t.Errorf("k=%s: Theorem 4 reduction changed the answer", row[0])
		}
	}
}

func TestRuleAblationTable(t *testing.T) {
	tb, err := RuleAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows: %d", len(tb.Rows))
	}
}
