package exec

import (
	"math"
	"testing"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/expr"
	"repro/internal/logical"
	"repro/internal/memo"
	"repro/internal/physical"
	"repro/internal/volcano"
)

// reaggBatch builds a fine aggregation and a coarse one over the same join
// so the aggregate-subsumption rule fires; with the fine aggregate
// materialized, the optimizer computes the coarse one by re-aggregation.
func reaggBatch(t *testing.T) (*catalog.Catalog, *logical.Batch) {
	t.Helper()
	cat := catalog.New()
	mk := func(name string, rows float64) {
		cat.MustAddTable(&catalog.Table{
			Name: name, Rows: rows,
			Columns: []catalog.Column{
				{Name: "id", Type: catalog.Int, Width: 8, Distinct: rows, Min: 0, Max: rows},
				{Name: "fk", Type: catalog.Int, Width: 8, Distinct: rows / 10, Min: 0, Max: rows},
				{Name: "g1", Type: catalog.Int, Width: 8, Distinct: 20, Min: 0, Max: 19},
				{Name: "g2", Type: catalog.Int, Width: 8, Distinct: 30, Min: 0, Max: 29},
				{Name: "val", Type: catalog.Int, Width: 8, Distinct: 100, Min: 0, Max: 99},
			},
		})
	}
	mk("f", 200000)
	mk("d", 20000)
	fine := logical.NewBlock().Scan("f", "a").Scan("d", "b").Join("a.fk", "b.id").
		GroupBy("a.g1", "a.g2").Sum("a.val").Count().Query("fine")
	coarse := logical.NewBlock().Scan("f", "a").Scan("d", "b").Join("a.fk", "b.id").
		GroupBy("a.g1").Sum("a.val").Count().Query("coarse")
	b := &logical.Batch{}
	b.Add(fine)
	b.Add(coarse)
	return cat, b
}

func TestReAggPlanAndExecution(t *testing.T) {
	cat, batch := reaggBatch(t)
	opt, err := volcano.NewOptimizer(cat, cost.Default(), batch)
	if err != nil {
		t.Fatal(err)
	}
	// Find the fine aggregate group (the ReAgg child) and materialize it.
	var fineAgg memo.GroupID = -1
	for _, g := range opt.Memo.Groups() {
		for _, e := range g.Exprs {
			if e.Kind == memo.OpReAgg {
				fineAgg = e.Children[0]
			}
		}
	}
	if fineAgg < 0 {
		t.Fatal("aggregate subsumption did not fire")
	}
	mat := opt.NewNodeSet(fineAgg)
	plan := opt.Plan(mat)
	hasReAgg := false
	var walk func(n *physical.PlanNode)
	walk = func(n *physical.PlanNode) {
		if n.Op == physical.OpNameReAgg {
			hasReAgg = true
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, q := range plan.Queries {
		walk(q)
	}
	if !hasReAgg {
		t.Fatal("plan does not re-aggregate from the materialized fine aggregate")
	}

	// Execute both the shared plan and the unshared one; the coarse query's
	// answers must agree exactly (sums of sums, sums of counts).
	gen := &Generator{Cat: cat, Seed: 13, Cap: 4000}
	engShared := NewEngine(gen, opt.Memo)
	shared, err := engShared.RunConsolidated(plan)
	if err != nil {
		t.Fatal(err)
	}
	engPlain := NewEngine(gen, opt.Memo)
	plain, err := engPlain.RunConsolidated(opt.Plan(physical.NodeSet{}))
	if err != nil {
		t.Fatal(err)
	}
	for i := range shared {
		if len(shared[i].Rows) != len(plain[i].Rows) {
			t.Fatalf("query %d: %d rows shared vs %d plain", i, len(shared[i].Rows), len(plain[i].Rows))
		}
		if s, p := checksum(shared[i].Rows), checksum(plain[i].Rows); math.Abs(s-p) > 1e-6 {
			t.Fatalf("query %d: checksum %v vs %v", i, s, p)
		}
	}
}

func TestReAggMatchesDirectAggregation(t *testing.T) {
	// Run just the coarse query both ways via core strategies and compare.
	cat, batch := reaggBatch(t)
	opt, err := volcano.NewOptimizer(cat, cost.Default(), batch)
	if err != nil {
		t.Fatal(err)
	}
	res := core.Run(opt, core.MarginalGreedy)
	gen := &Generator{Cat: cat, Seed: 21, Cap: 3000}
	eng := NewEngine(gen, opt.Memo)
	out, err := eng.RunConsolidated(opt.Plan(res.MatSet()))
	if err != nil {
		t.Fatal(err)
	}
	eng2 := NewEngine(gen, opt.Memo)
	base, err := eng2.RunConsolidated(opt.Plan(physical.NodeSet{}))
	if err != nil {
		t.Fatal(err)
	}
	for i := range out {
		if math.Abs(checksum(out[i].Rows)-checksum(base[i].Rows)) > 1e-6 {
			t.Fatalf("query %d differs between MQO and plain execution", i)
		}
	}
}

func TestIndexScanExecution(t *testing.T) {
	// A selective equality predicate on an indexed column should execute
	// through the indexscan path and charge less read I/O than a full scan.
	cat := Catalog1()
	q := logical.NewBlock().Scan("orders", "o").Scan("lineitem", "l").
		Cmp("o.orderkey", expr.LT, 100).
		Join("o.orderkey", "l.orderkey").
		Query("idx")
	b := &logical.Batch{}
	b.Add(q)
	opt, err := volcano.NewOptimizer(cat, cost.Default(), b)
	if err != nil {
		t.Fatal(err)
	}
	plan := opt.Plan(physical.NodeSet{})
	hasIndexScan := false
	var walk func(n *physical.PlanNode)
	walk = func(n *physical.PlanNode) {
		if n.Op == physical.OpNameIndexScan {
			hasIndexScan = true
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(plan.Queries[0])
	if !hasIndexScan {
		t.Skip("optimizer chose no index scan for this instance")
	}
	gen := &Generator{Cat: cat, Seed: 2, Cap: 2000}
	eng := NewEngine(gen, opt.Memo)
	out, err := eng.RunConsolidated(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("results: %d", len(out))
	}
}

// Catalog1 returns the TPCD catalog without importing internal/tpcd (which
// would create an import cycle in tests is fine, but keep exec
// self-contained with its own copy of the call).
func Catalog1() *catalog.Catalog {
	cat := catalog.New()
	cat.MustAddTable(&catalog.Table{
		Name: "orders", Rows: 100000,
		Columns: []catalog.Column{
			{Name: "orderkey", Type: catalog.Int, Width: 8, Distinct: 100000, Min: 0, Max: 100000},
			{Name: "orderdate", Type: catalog.Date, Width: 8, Distinct: 2406, Min: 0, Max: 2405},
		},
		Indexes: []catalog.Index{{Column: "orderkey", Clustered: true}},
	})
	cat.MustAddTable(&catalog.Table{
		Name: "lineitem", Rows: 400000,
		Columns: []catalog.Column{
			{Name: "orderkey", Type: catalog.Int, Width: 8, Distinct: 100000, Min: 0, Max: 100000},
			{Name: "extendedprice", Type: catalog.Float, Width: 8, Distinct: 400000, Min: 900, Max: 105000},
		},
		Indexes: []catalog.Index{{Column: "orderkey", Clustered: true}},
	})
	return cat
}

func checksum(rows []Row) float64 {
	var s float64
	for _, r := range rows {
		for _, v := range r {
			s += v
		}
	}
	return s
}
