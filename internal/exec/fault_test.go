package exec

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/faultinject"
	"repro/internal/tpcd"
	"repro/internal/volcano"
)

// TestFaultWavefrontPanicIsolated injects a panic into one wavefront task
// of the parallel executor: the run must fail with a typed PanicError —
// the panic recovered on the pool goroutine, not escaping to kill the
// process — and a fault-free re-run on a fresh engine must match the
// serial execution exactly.
func TestFaultWavefrontPanicIsolated(t *testing.T) {
	cat := tpcd.Catalog(1)
	batch := tpcd.BQ(3)
	opt, err := volcano.NewOptimizer(cat, cost.Default(), batch)
	if err != nil {
		t.Fatal(err)
	}
	res := core.Run(opt, core.MarginalGreedy)
	plan := opt.Plan(res.MatSet())
	gen := &Generator{Cat: cat, Seed: 7, Cap: 2000}

	serialEng := NewEngine(gen, opt.Memo)
	serial, err := serialEng.RunConsolidated(plan)
	if err != nil {
		t.Fatal(err)
	}

	restore := faultinject.Enable(faultinject.NewSchedule(1,
		faultinject.Rule{Point: faultinject.ExecTask, N: 2, Panic: true}))
	t.Cleanup(restore)
	eng := NewEngine(gen, opt.Memo)
	eng.Parallelism = 4
	if _, err := eng.RunConsolidated(plan); err == nil {
		t.Fatal("injected exec panic did not surface as an error")
	} else {
		var pe *faultinject.PanicError
		if !errors.As(err, &pe) || pe.Site != "exec.wavefront" {
			t.Fatalf("error = %v, want a PanicError from exec.wavefront", err)
		}
		var inj *faultinject.Injected
		if !errors.As(err, &inj) || inj.Point != faultinject.ExecTask {
			t.Fatalf("error = %v, want to unwrap to the injected fault", err)
		}
	}
	restore()

	// The fault left no residue: a fresh parallel run matches serial.
	eng2 := NewEngine(gen, opt.Memo)
	eng2.Parallelism = 4
	got, err := eng2.RunConsolidated(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(serial) {
		t.Fatalf("replay: %d results vs %d serial", len(got), len(serial))
	}
	for i := range got {
		if got[i].Name != serial[i].Name || len(got[i].Rows) != len(serial[i].Rows) {
			t.Fatalf("replay query %d: %s/%d rows vs %s/%d",
				i, got[i].Name, len(got[i].Rows), serial[i].Name, len(serial[i].Rows))
		}
	}
}
