package exec

import (
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/tpcd"
	"repro/internal/volcano"
)

// runExample1 executes the Example 1 batch under the given strategy with a
// capped synthetic data size and returns the results plus I/O accounting.
func runExample1(t *testing.T, strat core.Strategy) ([]QueryResult, Accounting) {
	t.Helper()
	cat, batch := tpcd.ExampleOneInstance()
	opt, err := volcano.NewOptimizer(cat, cost.Default(), batch)
	if err != nil {
		t.Fatalf("NewOptimizer: %v", err)
	}
	res := core.Run(opt, strat)
	plan := opt.Plan(res.MatSet())
	gen := &Generator{Cat: cat, Seed: 7, Cap: 2000}
	eng := NewEngine(gen, opt.Memo)
	out, err := eng.RunConsolidated(plan)
	if err != nil {
		t.Fatalf("RunConsolidated(%v): %v", strat, err)
	}
	return out, eng.IO
}

func TestConsolidatedPlansAgreeAcrossStrategies(t *testing.T) {
	// The same queries must return identical results regardless of which
	// nodes are materialized: materialization is a pure execution strategy.
	volcanoOut, _ := runExample1(t, core.Volcano)
	greedyOut, _ := runExample1(t, core.Greedy)
	marginalOut, _ := runExample1(t, core.MarginalGreedy)

	if len(volcanoOut) != 2 || len(greedyOut) != 2 || len(marginalOut) != 2 {
		t.Fatalf("expected 2 query results each, got %d/%d/%d",
			len(volcanoOut), len(greedyOut), len(marginalOut))
	}
	for i := range volcanoOut {
		a, b, c := volcanoOut[i], greedyOut[i], marginalOut[i]
		if len(a.Rows) != len(b.Rows) || len(a.Rows) != len(c.Rows) {
			t.Errorf("query %d row counts differ: volcano=%d greedy=%d marginal=%d",
				i, len(a.Rows), len(b.Rows), len(c.Rows))
		}
		if sumAll(a.Rows) != sumAll(b.Rows) || sumAll(a.Rows) != sumAll(c.Rows) {
			t.Errorf("query %d checksum differs across strategies", i)
		}
	}
}

func TestSharedPlanDoesLessIO(t *testing.T) {
	_, ioVolcano := runExample1(t, core.Volcano)
	_, ioGreedy := runExample1(t, core.Greedy)
	if ioGreedy.Total() >= ioVolcano.Total() {
		t.Errorf("greedy consolidated plan should do less simulated I/O: greedy=%.0f volcano=%.0f",
			ioGreedy.Total(), ioVolcano.Total())
	}
	t.Logf("simulated I/O: volcano=%.0f greedy=%.0f", ioVolcano.Total(), ioGreedy.Total())
}

func TestGeneratorDeterminism(t *testing.T) {
	cat := tpcd.Catalog(1)
	g1 := &Generator{Cat: cat, Seed: 11, Cap: 500}
	g2 := &Generator{Cat: cat, Seed: 11, Cap: 500}
	s1, r1, err := g1.Table("orders", []string{"orderkey", "custkey", "orderdate"})
	if err != nil {
		t.Fatal(err)
	}
	s2, r2, err := g2.Table("orders", []string{"orderkey", "custkey", "orderdate"})
	if err != nil {
		t.Fatal(err)
	}
	if len(r1) != len(r2) || len(r1) != 500 {
		t.Fatalf("row counts: %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		for j := range r1[i] {
			if r1[i][j] != r2[i][j] {
				t.Fatalf("row %d col %d differs: %v vs %v", i, j, r1[i][j], r2[i][j])
			}
		}
	}
	if s1.Pos("orderkey") != 0 || s2.Pos("orderdate") != 2 {
		t.Errorf("schema positions wrong: %v %v", s1.Names, s2.Names)
	}
}

func TestGeneratorKeyColumnsSequential(t *testing.T) {
	cat := tpcd.Catalog(1)
	g := &Generator{Cat: cat, Seed: 3, Cap: 100}
	_, rows, err := g.Table("customer", []string{"custkey"})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rows {
		if r[0] != float64(i) {
			t.Fatalf("custkey row %d = %v, want %d (keys must be sequential for FK joins)", i, r[0], i)
		}
	}
}

func TestGeneratorStatsRespected(t *testing.T) {
	cat := tpcd.Catalog(1)
	g := &Generator{Cat: cat, Seed: 3, Cap: 5000}
	_, rows, err := g.Table("lineitem", []string{"quantity", "returnflag"})
	if err != nil {
		t.Fatal(err)
	}
	distinctQ := map[float64]bool{}
	for _, r := range rows {
		if r[0] < 1 || r[0] > 50 {
			t.Fatalf("quantity %v outside [1,50]", r[0])
		}
		if r[1] < 0 || r[1] > 2 {
			t.Fatalf("returnflag %v outside [0,2]", r[1])
		}
		distinctQ[r[0]] = true
	}
	if len(distinctQ) > 50 {
		t.Errorf("quantity has %d distinct values, catalog says 50", len(distinctQ))
	}
}

func sumAll(rows []Row) float64 {
	var s float64
	for _, r := range rows {
		for _, v := range r {
			s += v
		}
	}
	return s
}
