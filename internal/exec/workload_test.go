package exec

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/physical"
	"repro/internal/tpcd"
	"repro/internal/volcano"
)

// TestStandAloneWorkloadsExecute runs every Experiment 2 workload end to
// end twice — unshared and with MarginalGreedy's materializations — and
// checks the answers agree. This exercises the derived-block plan shapes
// (aggregations feeding joins) of Q2, Q2-D, Q11 and Q15 through the
// executor.
func TestStandAloneWorkloadsExecute(t *testing.T) {
	cat := tpcd.Catalog(1)
	for _, w := range tpcd.StandAlone() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			opt, err := volcano.NewOptimizer(cat, cost.Default(), w.Batch)
			if err != nil {
				t.Fatal(err)
			}
			res := core.Run(opt, core.MarginalGreedy)
			gen := &Generator{Cat: cat, Seed: 5, Cap: 2500}

			engShared := NewEngine(gen, opt.Memo)
			shared, err := engShared.RunConsolidated(opt.Plan(res.MatSet()))
			if err != nil {
				t.Fatalf("shared execution: %v", err)
			}
			engPlain := NewEngine(gen, opt.Memo)
			plain, err := engPlain.RunConsolidated(opt.Plan(physical.NodeSet{}))
			if err != nil {
				t.Fatalf("plain execution: %v", err)
			}
			if len(shared) != len(plain) || len(shared) != len(w.Batch.Queries) {
				t.Fatalf("result counts: shared=%d plain=%d queries=%d",
					len(shared), len(plain), len(w.Batch.Queries))
			}
			for i := range shared {
				if len(shared[i].Rows) != len(plain[i].Rows) {
					t.Errorf("query %d: %d rows shared vs %d plain",
						i, len(shared[i].Rows), len(plain[i].Rows))
					continue
				}
				if s, p := checksum(shared[i].Rows), checksum(plain[i].Rows); math.Abs(s-p) > 1e-6*(1+math.Abs(p)) {
					t.Errorf("query %d: checksum %v vs %v", i, s, p)
				}
			}
			if len(res.Materialized) > 0 && engShared.IO.Total() >= engPlain.IO.Total() {
				t.Logf("note: shared I/O %.0f not below plain %.0f at this cap (cost model is estimated at full scale)",
					engShared.IO.Total(), engPlain.IO.Total())
			}
		})
	}
}

// TestBatchedWorkloadExecutes runs BQ2 end to end under all strategies and
// cross-checks every query's answer.
func TestBatchedWorkloadExecutes(t *testing.T) {
	cat := tpcd.Catalog(1)
	batch := tpcd.BQ(2)
	opt, err := volcano.NewOptimizer(cat, cost.Default(), batch)
	if err != nil {
		t.Fatal(err)
	}
	gen := &Generator{Cat: cat, Seed: 9, Cap: 2000}
	var baseline []QueryResult
	for _, s := range []core.Strategy{core.Volcano, core.Greedy, core.MarginalGreedy, core.VolcanoSH} {
		res := core.Run(opt, s)
		eng := NewEngine(gen, opt.Memo)
		out, err := eng.RunConsolidated(opt.Plan(res.MatSet()))
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if baseline == nil {
			baseline = out
			continue
		}
		for i := range out {
			if len(out[i].Rows) != len(baseline[i].Rows) {
				t.Errorf("%v query %d: %d rows vs baseline %d",
					s, i, len(out[i].Rows), len(baseline[i].Rows))
				continue
			}
			if math.Abs(checksum(out[i].Rows)-checksum(baseline[i].Rows)) > 1e-6 {
				t.Errorf("%v query %d: answers differ from Volcano baseline", s, i)
			}
		}
	}
}
