package exec

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/cardinality"
	"repro/internal/expr"
	"repro/internal/faultinject"
	"repro/internal/memo"
	"repro/internal/physical"
)

// Accounting tallies simulated block I/O so tests can compare plans by an
// estimator-independent measure.
type Accounting struct {
	ReadBlocks  float64 // blocks read from base tables and materializations
	WriteBlocks float64 // blocks written by materializations and spills
	Seeks       int
	RowsOut     int
}

// Total returns a single scalar in the cost model's spirit (reads weighted
// 1, writes 2, matching the 2 ms / 4 ms transfer times).
func (a Accounting) Total() float64 {
	return a.ReadBlocks + 2*a.WriteBlocks + float64(a.Seeks)*5
}

// add folds another tally in; the wavefront scheduler merges per-step
// tallies in step order so accounting stays deterministic.
func (a *Accounting) add(b Accounting) {
	a.ReadBlocks += b.ReadBlocks
	a.WriteBlocks += b.WriteBlocks
	a.Seeks += b.Seeks
	a.RowsOut += b.RowsOut
}

// memBlocks mirrors the cost model's 6 MB operator memory in 4 KB blocks;
// the executor uses it only for spill accounting.
const memBlocks = 1536

// stored is one materialized intermediate result.
type stored struct {
	schema *Schema
	rows   []Row
	blocks float64
}

// Engine executes consolidated plans against synthetic data.
type Engine struct {
	Gen *Generator
	M   *memo.Memo
	IO  Accounting

	// Parallelism bounds the workers that execute independent
	// materialization steps of a consolidated plan (and then the query
	// plans) concurrently — the same knob shape as the optimizer's
	// Searcher.Parallelism and repro.WithParallelism. Steps are scheduled
	// in topological wavefronts: a step whose plan reads another step's
	// materialization runs in a later wave, and queries run only after
	// every materialization. Values <= 1 keep the fully serial execution
	// (bit-identical accounting to earlier releases); at higher settings
	// rows are identical and I/O tallies are merged in deterministic step
	// order (float sums may differ in the last ulp from a serial run).
	Parallelism int

	store map[memo.GroupID]stored
}

// NewEngine returns an engine over the memo the plan was extracted from.
func NewEngine(gen *Generator, m *memo.Memo) *Engine {
	return &Engine{Gen: gen, M: m, store: map[memo.GroupID]stored{}}
}

// task is one execution context: shared read-only engine state plus a
// private I/O tally, so concurrent steps never contend on the accountant.
// The engine's store is read-only while a wave runs; the scheduler commits
// results between waves.
type task struct {
	e  *Engine
	io Accounting
}

// QueryResult is the output of one query of the batch.
type QueryResult struct {
	Name   string
	Schema *Schema
	Rows   []Row
}

// RunConsolidated executes a consolidated plan: materialization steps
// first (each computed once and written to the simulated disk), then every
// query plan (reading shared results where the plan says so). With
// Parallelism > 1 independent steps run concurrently in topological
// wavefronts; queries still execute only after their materializations.
func (e *Engine) RunConsolidated(cp *physical.ConsolidatedPlan) ([]QueryResult, error) {
	if e.Parallelism > 1 {
		return e.runConsolidatedParallel(cp)
	}
	t := &task{e: e, io: e.IO}
	defer func() { e.IO = t.io }()
	for _, st := range cp.Steps {
		schema, rows, err := t.run(st.Plan)
		if err != nil {
			return nil, fmt.Errorf("materializing group %d: %w", st.Group, err)
		}
		blocks := e.blocksFor(len(rows), len(schema.Names))
		t.io.WriteBlocks += blocks
		t.io.Seeks++
		e.store[st.Group] = stored{schema: schema, rows: rows, blocks: blocks}
	}
	var out []QueryResult
	for i, qp := range cp.Queries {
		schema, rows, err := t.run(qp)
		if err != nil {
			return nil, fmt.Errorf("query %d: %w", i, err)
		}
		t.io.RowsOut += len(rows)
		out = append(out, QueryResult{Name: queryName(cp, i), Schema: schema, Rows: rows})
	}
	return out, nil
}

func queryName(cp *physical.ConsolidatedPlan, i int) string {
	if i < len(cp.QueryNames) {
		return cp.QueryNames[i]
	}
	return fmt.Sprintf("query-%d", i)
}

// stepDeps returns, per materialization step, the indexes of the steps
// whose materializations its plan reads (matscan edges between steps).
func stepDeps(cp *physical.ConsolidatedPlan) [][]int {
	stepOf := make(map[memo.GroupID]int, len(cp.Steps))
	for i, st := range cp.Steps {
		stepOf[st.Group] = i
	}
	deps := make([][]int, len(cp.Steps))
	for i, st := range cp.Steps {
		seen := map[int]bool{}
		var walk func(n *physical.PlanNode)
		walk = func(n *physical.PlanNode) {
			if n.Op == physical.OpNameMatScan {
				if j, ok := stepOf[n.Group]; ok && j != i {
					seen[j] = true
				}
			}
			for _, c := range n.Children {
				walk(c)
			}
		}
		walk(st.Plan)
		for j := range seen {
			deps[i] = append(deps[i], j)
		}
	}
	return deps
}

// runConsolidatedParallel executes the plan's materialization steps in
// topological wavefronts — every step of a wave depends only on steps of
// earlier waves — and then the query plans, fanning each phase out to up
// to Parallelism workers. Each unit of work runs on its own task, and the
// scheduler commits rows, store entries and I/O tallies between waves in
// ascending step order, so results (and accounting, up to float summation
// order) are deterministic regardless of scheduling.
func (e *Engine) runConsolidatedParallel(cp *physical.ConsolidatedPlan) ([]QueryResult, error) {
	type unit struct {
		schema *Schema
		rows   []Row
		io     Accounting
		err    error
	}
	// runOne executes one plan with panic isolation: a panicking task —
	// these run on pool goroutines, where an escaped panic would kill the
	// whole process — is recovered into the unit's error and surfaces like
	// any other execution failure.
	runOne := func(plan *physical.PlanNode) (u unit) {
		defer func() {
			if r := recover(); r != nil {
				u = unit{err: faultinject.NewPanicError("exec.wavefront", r)}
			}
		}()
		faultinject.Hit(faultinject.ExecTask)
		t := &task{e: e}
		schema, rows, err := t.run(plan)
		return unit{schema: schema, rows: rows, io: t.io, err: err}
	}
	runAll := func(plans []*physical.PlanNode) []unit {
		outs := make([]unit, len(plans))
		par := e.Parallelism
		if par > len(plans) {
			par = len(plans)
		}
		var next int64 = -1
		var wg sync.WaitGroup
		for k := 0; k < par; k++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(atomic.AddInt64(&next, 1))
					if i >= len(plans) {
						return
					}
					outs[i] = runOne(plans[i])
				}
			}()
		}
		wg.Wait()
		return outs
	}

	deps := stepDeps(cp)
	done := make([]bool, len(cp.Steps))
	remaining := len(cp.Steps)
	for remaining > 0 {
		var wave []int
		for i := range cp.Steps {
			if done[i] {
				continue
			}
			ready := true
			for _, j := range deps[i] {
				if !done[j] {
					ready = false
					break
				}
			}
			if ready {
				wave = append(wave, i)
			}
		}
		if len(wave) == 0 {
			return nil, fmt.Errorf("exec: materialization steps form a dependency cycle")
		}
		plans := make([]*physical.PlanNode, len(wave))
		for p, i := range wave {
			plans[p] = cp.Steps[i].Plan
		}
		outs := runAll(plans)
		for p, i := range wave {
			o := outs[p]
			if o.err != nil {
				return nil, fmt.Errorf("materializing group %d: %w", cp.Steps[i].Group, o.err)
			}
			blocks := e.blocksFor(len(o.rows), len(o.schema.Names))
			e.IO.add(o.io)
			e.IO.WriteBlocks += blocks
			e.IO.Seeks++
			e.store[cp.Steps[i].Group] = stored{schema: o.schema, rows: o.rows, blocks: blocks}
			done[i] = true
			remaining--
		}
	}

	outs := runAll(cp.Queries)
	var out []QueryResult
	for i, o := range outs {
		if o.err != nil {
			return nil, fmt.Errorf("query %d: %w", i, o.err)
		}
		e.IO.add(o.io)
		e.IO.RowsOut += len(o.rows)
		out = append(out, QueryResult{Name: queryName(cp, i), Schema: o.schema, Rows: o.rows})
	}
	return out, nil
}

func (e *Engine) blocksFor(rows, cols int) float64 {
	bytes := float64(rows*cols) * 8
	return math.Max(1, math.Ceil(bytes/4096))
}

// run executes one plan node tree.
func (t *task) run(n *physical.PlanNode) (*Schema, []Row, error) {
	switch n.Op {
	case physical.OpNameScan, physical.OpNameIndexScan:
		return t.runScan(n)
	case physical.OpNameMatScan:
		st, ok := t.e.store[n.Group]
		if !ok {
			return nil, nil, fmt.Errorf("matscan of group %d before materialization", n.Group)
		}
		t.io.ReadBlocks += st.blocks
		t.io.Seeks++
		return st.schema, st.rows, nil
	case physical.OpNameFilter:
		schema, rows, err := t.run(n.Children[0])
		if err != nil {
			return nil, nil, err
		}
		out, err := filterRows(schema, rows, n.Pred)
		if err != nil {
			return nil, nil, err
		}
		// A subsumption filter derives one leaf group from another leaf
		// group over the same table: the data is the child's, but parents
		// address columns under this group's canonical alias.
		return renameAliases(schema, memo.CanonAlias(n.Group)), out, nil
	case physical.OpNameSort:
		schema, rows, err := t.run(n.Children[0])
		if err != nil {
			return nil, nil, err
		}
		// External-sort accounting: inputs beyond the 6 MB operator memory
		// spill run files once and read them back for the merge.
		if blocks := t.e.blocksFor(len(rows), len(schema.Names)); blocks > memBlocks {
			t.io.WriteBlocks += blocks
			t.io.ReadBlocks += blocks
			t.io.Seeks += 2
		}
		sorted, err := sortRows(schema, rows, n.Order)
		return schema, sorted, err
	case physical.OpNameMergeJoin, physical.OpNameHashJoin, physical.OpNameBNLJ:
		return t.runJoin(n)
	case physical.OpNameSortAgg, physical.OpNameHashAgg:
		return t.runAgg(n)
	case physical.OpNameReAgg:
		return t.runReAgg(n)
	default:
		return nil, nil, fmt.Errorf("exec: unknown operator %q", n.Op)
	}
}

// runScan generates the base table restricted to the group's projected
// columns, applies the pushed-down predicate, and charges I/O for the
// stored relation (index scans charge only the matching fraction).
func (t *task) runScan(n *physical.PlanNode) (*Schema, []Row, error) {
	grp := t.e.M.Group(n.Group)
	var cols []string
	var names []string
	for _, cc := range grp.Props.ColumnList() {
		cols = append(cols, cc.Column)
		names = append(names, cc.String())
	}
	_, rows, err := t.e.Gen.Table(n.Table, cols)
	if err != nil {
		return nil, nil, err
	}
	schema := NewSchema(names...)
	out, err := filterRows(schema, rows, n.Pred)
	if err != nil {
		return nil, nil, err
	}
	tbl, _ := t.e.Gen.Cat.Table(n.Table)
	genRows := len(rows)
	tableBlocks := math.Max(1, math.Ceil(float64(genRows)*float64(tbl.RowWidth())/4096))
	if n.Op == physical.OpNameIndexScan && genRows > 0 {
		frac := float64(len(out)) / float64(genRows)
		t.io.ReadBlocks += math.Max(1, tableBlocks*frac)
	} else {
		t.io.ReadBlocks += tableBlocks
	}
	t.io.Seeks++
	if !sortedByOrder(schema, out, n.Order) {
		// Clustered storage order: the generator emits key order already;
		// enforce explicitly for robustness.
		out, err = sortRows(schema, out, n.Order)
		if err != nil {
			return nil, nil, err
		}
	}
	return schema, out, nil
}

func (t *task) runJoin(n *physical.PlanNode) (*Schema, []Row, error) {
	ls, lrows, err := t.run(n.Children[0])
	if err != nil {
		return nil, nil, err
	}
	rs, rrows, err := t.run(n.Children[1])
	if err != nil {
		return nil, nil, err
	}
	type pair struct{ l, r int }
	var keys []pair
	for _, c := range n.Conds {
		lp, rp := ls.Pos(c.Left.String()), rs.Pos(c.Right.String())
		if lp < 0 || rp < 0 {
			lp, rp = ls.Pos(c.Right.String()), rs.Pos(c.Left.String())
		}
		if lp < 0 || rp < 0 {
			return nil, nil, fmt.Errorf("exec: join condition %s not resolvable", c)
		}
		keys = append(keys, pair{lp, rp})
	}
	schema := ls.Concat(rs)
	var lp, rp []int
	for _, k := range keys {
		lp = append(lp, k.l)
		rp = append(rp, k.r)
	}
	var out []Row
	switch {
	case n.Op == physical.OpNameMergeJoin && len(keys) > 0:
		out = mergeJoin(lrows, rrows, lp, rp)
	case n.Op == physical.OpNameHashJoin && len(keys) > 0:
		// Hash equi-join: build on the right, probe with the left.
		idx := map[string][]int{}
		keyOf := func(r Row, ps []int) string {
			k := ""
			for _, p := range ps {
				k += fmt.Sprintf("%v|", r[p])
			}
			return k
		}
		for i, r := range rrows {
			idx[keyOf(r, rp)] = append(idx[keyOf(r, rp)], i)
		}
		for _, l := range lrows {
			for _, ri := range idx[keyOf(l, lp)] {
				out = append(out, concatRows(l, rrows[ri]))
			}
		}
	default:
		// Block nested loops: account for inner re-reads when the outer
		// exceeds operator memory.
		outerBlocks := t.e.blocksFor(len(lrows), len(ls.Names))
		innerBlocks := t.e.blocksFor(len(rrows), len(rs.Names))
		passes := int(math.Ceil(outerBlocks / float64(memBlocks-2)))
		if passes > 1 {
			t.io.ReadBlocks += float64(passes-1) * innerBlocks
			t.io.Seeks += passes - 1
		}
		for _, l := range lrows {
			for _, r := range rrows {
				match := true
				for _, k := range keys {
					if l[k.l] != r[k.r] {
						match = false
						break
					}
				}
				if match {
					out = append(out, concatRows(l, r))
				}
			}
		}
	}
	return schema, out, nil
}

func (t *task) runAgg(n *physical.PlanNode) (*Schema, []Row, error) {
	cs, rows, err := t.run(n.Children[0])
	if err != nil {
		return nil, nil, err
	}
	return aggregate(cs, rows, *n.Spec, nil)
}

// runReAgg recomputes a coarse aggregation from a finer one: the input
// columns to aggregate are the finer aggregation's outputs, and sums
// re-sum, counts sum, mins re-min, maxes re-max.
func (t *task) runReAgg(n *physical.PlanNode) (*Schema, []Row, error) {
	cs, rows, err := t.run(n.Children[0])
	if err != nil {
		return nil, nil, err
	}
	fine := t.e.fineSpec(n.Children[0].Group)
	if fine == nil {
		return nil, nil, fmt.Errorf("exec: reagg child group %d has no aggregation", n.Children[0].Group)
	}
	return aggregate(cs, rows, *n.Spec, fine)
}

// fineSpec returns the aggregation spec of the group (the finer agg a
// ReAgg reads from).
func (e *Engine) fineSpec(g memo.GroupID) *expr.AggSpec {
	for _, ex := range e.M.Group(g).Exprs {
		if ex.Kind == memo.OpAgg {
			return ex.Spec
		}
	}
	return nil
}

// aggregate groups rows by spec.GroupBy and computes the aggregates. When
// fine is non-nil the input is the output of the finer aggregation fine,
// and each aggregate reads its counterpart column (sum of sums, sum of
// counts, min of mins, max of maxes).
func aggregate(s *Schema, rows []Row, spec expr.AggSpec, fine *expr.AggSpec) (*Schema, []Row, error) {
	gbPos := make([]int, len(spec.GroupBy))
	var names []string
	for i, c := range spec.GroupBy {
		p := s.Pos(c.String())
		if p < 0 {
			return nil, nil, fmt.Errorf("exec: group-by column %s missing", c)
		}
		gbPos[i] = p
		names = append(names, c.String())
	}
	type aggIn struct {
		pos   int
		merge expr.AggFunc
	}
	ins := make([]aggIn, len(spec.Aggs))
	for i, a := range spec.Aggs {
		var col string
		merge := a.Func
		if fine != nil {
			col = cardinality.AggOutputCol(*fine, a).String()
			if a.Func == expr.Count {
				merge = expr.Sum // sum of partial counts
			}
		} else if a.Func == expr.Count {
			col = "" // count(*) needs no input column
		} else {
			col = a.Col.String()
		}
		p := -1
		if col != "" {
			p = s.Pos(col)
			if p < 0 {
				return nil, nil, fmt.Errorf("exec: aggregate input column %s missing", col)
			}
		}
		ins[i] = aggIn{pos: p, merge: merge}
		names = append(names, cardinality.AggOutputCol(spec, a).String())
	}
	groups := map[string]Row{}
	var order []string
	for _, r := range rows {
		key := ""
		for _, p := range gbPos {
			key += fmt.Sprintf("%v|", r[p])
		}
		acc, ok := groups[key]
		if !ok {
			acc = make(Row, len(gbPos)+len(ins))
			for i, p := range gbPos {
				acc[i] = r[p]
			}
			for i, in := range ins {
				switch {
				case in.pos < 0:
					acc[len(gbPos)+i] = 1 // count(*)
				default:
					acc[len(gbPos)+i] = r[in.pos]
				}
			}
			groups[key] = acc
			order = append(order, key)
			continue
		}
		for i, in := range ins {
			v := 1.0
			if in.pos >= 0 {
				v = r[in.pos]
			}
			j := len(gbPos) + i
			switch in.merge {
			case expr.Sum, expr.Count:
				acc[j] += v
			case expr.Min:
				if v < acc[j] {
					acc[j] = v
				}
			case expr.Max:
				if v > acc[j] {
					acc[j] = v
				}
			}
		}
	}
	sort.Strings(order)
	out := make([]Row, 0, len(groups))
	for _, k := range order {
		out = append(out, groups[k])
	}
	return NewSchema(names...), out, nil
}

func filterRows(s *Schema, rows []Row, pred expr.Pred) ([]Row, error) {
	if pred.True() {
		return rows, nil
	}
	type cp struct {
		pos int
		op  expr.CmpOp
		val float64
	}
	cps := make([]cp, len(pred.Conj))
	for i, c := range pred.Conj {
		p := s.Pos(c.Col.String())
		if p < 0 {
			return nil, fmt.Errorf("exec: predicate column %s missing", c.Col)
		}
		cps[i] = cp{p, c.Op, c.Val}
	}
	var out []Row
	for _, r := range rows {
		ok := true
		for _, c := range cps {
			if !cmpEval(r[c.pos], c.op, c.val) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, r)
		}
	}
	return out, nil
}

func cmpEval(v float64, op expr.CmpOp, val float64) bool {
	switch op {
	case expr.EQ:
		return v == val
	case expr.LT:
		return v < val
	case expr.LE:
		return v <= val
	case expr.GT:
		return v > val
	case expr.GE:
		return v >= val
	default:
		return false
	}
}

func sortRows(s *Schema, rows []Row, ord physical.Order) ([]Row, error) {
	if len(ord) == 0 {
		return rows, nil
	}
	pos := make([]int, len(ord))
	for i, c := range ord {
		p := s.Pos(c.String())
		if p < 0 {
			return nil, fmt.Errorf("exec: sort column %s missing", c)
		}
		pos[i] = p
	}
	out := append([]Row(nil), rows...)
	sort.SliceStable(out, func(i, j int) bool {
		for _, p := range pos {
			if out[i][p] != out[j][p] {
				return out[i][p] < out[j][p]
			}
		}
		return false
	})
	return out, nil
}

func sortedByOrder(s *Schema, rows []Row, ord physical.Order) bool {
	if len(ord) == 0 {
		return true
	}
	for _, c := range ord {
		if s.Pos(c.String()) < 0 {
			return false
		}
	}
	for i := 1; i < len(rows); i++ {
		for _, c := range ord {
			p := s.Pos(c.String())
			if rows[i-1][p] < rows[i][p] {
				break
			}
			if rows[i-1][p] > rows[i][p] {
				return false
			}
		}
	}
	return true
}

// mergeJoin is a textbook sort-merge equi-join over inputs sorted on the
// key positions: two cursors advance in lockstep, and runs of equal keys
// produce their cross product. Inputs that are not actually sorted (which
// would indicate a plan bug) are defensively sorted first so the join is
// still correct.
func mergeJoin(l, r []Row, lp, rp []int) []Row {
	l = ensureSortedBy(l, lp)
	r = ensureSortedBy(r, rp)
	var out []Row
	i, j := 0, 0
	for i < len(l) && j < len(r) {
		c := compareKeys(l[i], r[j], lp, rp)
		switch {
		case c < 0:
			i++
		case c > 0:
			j++
		default:
			// Find the run of equal keys on both sides.
			i2 := i
			for i2 < len(l) && compareKeys(l[i2], r[j], lp, rp) == 0 {
				i2++
			}
			j2 := j
			for j2 < len(r) && compareKeys(l[i], r[j2], lp, rp) == 0 {
				j2++
			}
			for a := i; a < i2; a++ {
				for b := j; b < j2; b++ {
					out = append(out, concatRows(l[a], r[b]))
				}
			}
			i, j = i2, j2
		}
	}
	return out
}

func compareKeys(l, r Row, lp, rp []int) int {
	for k := range lp {
		lv, rv := l[lp[k]], r[rp[k]]
		if lv < rv {
			return -1
		}
		if lv > rv {
			return 1
		}
	}
	return 0
}

func ensureSortedBy(rows []Row, ps []int) []Row {
	for i := 1; i < len(rows); i++ {
		if compareKeys(rows[i-1], rows[i], ps, ps) > 0 {
			out := append([]Row(nil), rows...)
			sort.SliceStable(out, func(a, b int) bool {
				return compareKeys(out[a], out[b], ps, ps) < 0
			})
			return out
		}
	}
	return rows
}

// renameAliases requalifies every "alias.column" name under the given
// alias; used when a plan node re-labels another group's data as its own.
func renameAliases(s *Schema, alias string) *Schema {
	names := make([]string, len(s.Names))
	for i, n := range s.Names {
		if j := indexByte(n, '.'); j >= 0 {
			names[i] = alias + n[j:]
		} else {
			names[i] = n
		}
	}
	return NewSchema(names...)
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}

func concatRows(a, b Row) Row {
	out := make(Row, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	return out
}
