package exec

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/tpcd"
	"repro/internal/volcano"
)

// TestSessionWavefrontParallelExec runs the BQ3 consolidated plan (multiple
// materialization steps, some reading others) serially and with the
// wavefront scheduler at several parallelism settings: rows must be
// identical and the I/O accounting equal up to float merge order.
func TestSessionWavefrontParallelExec(t *testing.T) {
	cat := tpcd.Catalog(1)
	batch := tpcd.BQ(3)
	opt, err := volcano.NewOptimizer(cat, cost.Default(), batch)
	if err != nil {
		t.Fatal(err)
	}
	res := core.Run(opt, core.MarginalGreedy)
	plan := opt.Plan(res.MatSet())
	if len(plan.Steps) < 2 {
		t.Fatalf("want a plan with multiple materialization steps, got %d", len(plan.Steps))
	}
	gen := &Generator{Cat: cat, Seed: 7, Cap: 2000}

	serialEng := NewEngine(gen, opt.Memo)
	serial, err := serialEng.RunConsolidated(plan)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{2, 4, 8} {
		eng := NewEngine(gen, opt.Memo)
		eng.Parallelism = par
		got, err := eng.RunConsolidated(plan)
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		if len(got) != len(serial) {
			t.Fatalf("par=%d: %d results vs %d serial", par, len(got), len(serial))
		}
		for i := range got {
			if got[i].Name != serial[i].Name || len(got[i].Rows) != len(serial[i].Rows) {
				t.Fatalf("par=%d query %d: %s/%d rows vs %s/%d",
					par, i, got[i].Name, len(got[i].Rows), serial[i].Name, len(serial[i].Rows))
			}
			if a, b := checksum(got[i].Rows), checksum(serial[i].Rows); math.Abs(a-b) > 1e-9*(1+math.Abs(b)) {
				t.Errorf("par=%d query %d: checksum %v vs %v", par, i, a, b)
			}
		}
		if eng.IO.Seeks != serialEng.IO.Seeks || eng.IO.RowsOut != serialEng.IO.RowsOut {
			t.Errorf("par=%d: seeks/rows %d/%d vs serial %d/%d",
				par, eng.IO.Seeks, eng.IO.RowsOut, serialEng.IO.Seeks, serialEng.IO.RowsOut)
		}
		if a, b := eng.IO.Total(), serialEng.IO.Total(); math.Abs(a-b) > 1e-6*(1+math.Abs(b)) {
			t.Errorf("par=%d: I/O total %v vs serial %v", par, a, b)
		}
	}
}

// TestSessionWavefrontStepOrdering checks the dependency analysis: a step
// whose plan matscans another step must be scheduled in a later wave.
func TestSessionWavefrontStepOrdering(t *testing.T) {
	cat := tpcd.Catalog(1)
	opt, err := volcano.NewOptimizer(cat, cost.Default(), tpcd.BQ(6))
	if err != nil {
		t.Fatal(err)
	}
	res := core.Run(opt, core.MarginalGreedy)
	plan := opt.Plan(res.MatSet())
	deps := stepDeps(plan)
	for i, ds := range deps {
		for _, j := range ds {
			if j == i {
				t.Errorf("step %d depends on itself", i)
			}
			if j < 0 || j >= len(plan.Steps) {
				t.Errorf("step %d has out-of-range dep %d", i, j)
			}
		}
	}
	// BestPlan orders steps by depth, so dependencies always point to
	// earlier steps; the wavefront scheduler relies only on acyclicity,
	// which this pins down.
	for i, ds := range deps {
		for _, j := range ds {
			if j > i {
				t.Errorf("step %d depends on later step %d (depth ordering broken)", i, j)
			}
		}
	}
}
