// Package exec is an iterator-model execution engine for the consolidated
// plans produced by the optimizer: deterministic synthetic data generation
// from the catalog, the paper's physical operators (table scan, indexed
// selection, filter, external-style sort, merge join, block nested-loops
// join, sort-based aggregation), and a materialization runtime that
// computes each shared node once, "writes" it to a simulated disk and
// re-reads it for every consumer. A block-level I/O accountant lets tests
// confirm that plans the optimizer estimates as cheaper really do less
// simulated I/O.
//
// The paper itself never executes plans (its experiments compare estimated
// costs); the engine exists so that the reproduction's examples run end to
// end and the optimizer's cost ordering can be validated against an
// independent measure.
package exec

import (
	"fmt"
	"math"

	"repro/internal/catalog"
)

// Row is one tuple: values addressed by column position per Schema.
type Row []float64

// Schema maps qualified column names (canonical "gN.col" form) to
// positions in a Row.
type Schema struct {
	Names []string
	pos   map[string]int
}

// NewSchema builds a schema from column names.
func NewSchema(names ...string) *Schema {
	s := &Schema{Names: names, pos: make(map[string]int, len(names))}
	for i, n := range names {
		s.pos[n] = i
	}
	return s
}

// Pos returns the position of the named column, or -1.
func (s *Schema) Pos(name string) int {
	p, ok := s.pos[name]
	if !ok {
		return -1
	}
	return p
}

// Concat returns the schema of a join output.
func (s *Schema) Concat(o *Schema) *Schema {
	names := make([]string, 0, len(s.Names)+len(o.Names))
	names = append(names, s.Names...)
	names = append(names, o.Names...)
	return NewSchema(names...)
}

// Generator produces deterministic synthetic rows for catalog tables. The
// same (table, seed) always yields the same data, and column values track
// the catalog statistics: value range [Min, Max] with approximately
// Distinct distinct values, so optimizer estimates are meaningful for the
// generated data.
type Generator struct {
	Cat  *catalog.Catalog
	Seed uint64
	// Cap bounds the number of rows generated per table (0 = no cap);
	// examples use it to run giant catalogs at laptop scale while keeping
	// the optimizer's relative cost ordering.
	Cap int
}

// splitmix64 is a tiny deterministic PRNG step.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Table materializes the synthetic contents of a base table under the
// given column subset (all columns when cols is nil). Row i's value for a
// key-like column (Distinct ≈ Rows) is i itself, so primary keys are
// unique and foreign keys join consistently across tables.
func (g *Generator) Table(name string, cols []string) (*Schema, []Row, error) {
	t, ok := g.Cat.Table(name)
	if !ok {
		return nil, nil, fmt.Errorf("exec: unknown table %q", name)
	}
	n := int(t.Rows)
	if g.Cap > 0 && n > g.Cap {
		n = g.Cap
	}
	if cols == nil {
		for _, c := range t.Columns {
			cols = append(cols, c.Name)
		}
	}
	names := make([]string, len(cols))
	copy(names, cols)
	schema := NewSchema(names...)
	specs := make([]catalog.Column, len(cols))
	for i, cn := range cols {
		c, ok := t.Column(cn)
		if !ok {
			return nil, nil, fmt.Errorf("exec: unknown column %s.%s", name, cn)
		}
		specs[i] = c
	}
	rows := make([]Row, n)
	base := splitmix64(g.Seed ^ hashString(name))
	for i := 0; i < n; i++ {
		row := make(Row, len(cols))
		for j, c := range specs {
			row[j] = g.value(base, i, c, t.Rows)
		}
		rows[i] = row
	}
	return schema, rows, nil
}

// value generates row i's value for a column. Key columns (Distinct equal
// to the table's row count) are sequential so joins on keys behave like
// PK/FK joins; foreign-key-like columns (names ending in "key" or "_id")
// wrap into the capped parent domain so joins still match when Cap
// truncates tables; other columns cycle pseudo-randomly through their
// distinct values mapped onto [Min, Max].
func (g *Generator) value(base uint64, i int, c catalog.Column, tableRows float64) float64 {
	if c.Distinct >= tableRows {
		return float64(i)
	}
	h := splitmix64(base ^ uint64(i)*0x9e3779b97f4a7c15 ^ hashString(c.Name))
	if g.Cap > 0 && c.Distinct > float64(g.Cap) && keyLike(c.Name) {
		return float64(h % uint64(g.Cap))
	}
	d := c.Distinct
	if d < 1 {
		d = 1
	}
	k := float64(h % uint64(math.Max(1, d)))
	if c.Max <= c.Min {
		return c.Min
	}
	return c.Min + k*(c.Max-c.Min)/math.Max(1, d-1)
}

// keyLike reports whether a column name follows the key-column naming
// convention the generator's FK capping relies on.
func keyLike(name string) bool {
	return len(name) > 3 && (name[len(name)-3:] == "key" || name[len(name)-3:] == "_id")
}

func hashString(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
