// Package parser implements a small SQL-like language for driving the
// multi-query optimizer from the command line:
//
//	SELECT o.orderdate, SUM(l.extendedprice)
//	FROM customer c, orders o, lineitem l
//	WHERE c.custkey = o.custkey AND o.orderkey = l.orderkey
//	  AND c.mktsegment = 1 AND o.orderdate < 1100
//	GROUP BY o.orderdate;
//
// A batch is a sequence of such statements separated by semicolons;
// comments run from "--" to end of line. Constants are numeric (the
// workload layer maps categorical values to integers).
package parser

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokSymbol // ( ) , ; . * = < > <= >=
)

type token struct {
	kind tokenKind
	text string
	num  float64
	pos  int // byte offset for error messages
	line int
}

type lexer struct {
	src    string
	pos    int
	line   int
	tokens []token
}

// lex splits the source into tokens.
func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case isIdentStart(rune(c)):
			start := l.pos
			for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
				l.pos++
			}
			l.emit(token{kind: tokIdent, text: l.src[start:l.pos], pos: start})
		case c >= '0' && c <= '9' || c == '-' && l.nextIsDigit():
			start := l.pos
			l.pos++
			for l.pos < len(l.src) && (l.src[l.pos] >= '0' && l.src[l.pos] <= '9' || l.src[l.pos] == '.') {
				l.pos++
			}
			n, err := strconv.ParseFloat(l.src[start:l.pos], 64)
			if err != nil {
				return nil, fmt.Errorf("line %d: bad number %q", l.line, l.src[start:l.pos])
			}
			l.emit(token{kind: tokNumber, text: l.src[start:l.pos], num: n, pos: start})
		case c == '<' || c == '>':
			start := l.pos
			l.pos++
			if l.pos < len(l.src) && l.src[l.pos] == '=' {
				l.pos++
			}
			l.emit(token{kind: tokSymbol, text: l.src[start:l.pos], pos: start})
		case strings.ContainsRune("(),;.*=", rune(c)):
			l.emit(token{kind: tokSymbol, text: string(c), pos: l.pos})
			l.pos++
		default:
			return nil, fmt.Errorf("line %d: unexpected character %q", l.line, string(c))
		}
	}
	l.emit(token{kind: tokEOF, pos: l.pos})
	return l.tokens, nil
}

func (l *lexer) emit(t token) {
	t.line = l.line
	l.tokens = append(l.tokens, t)
}

func (l *lexer) nextIsDigit() bool {
	return l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9'
}

func isIdentStart(r rune) bool { return unicode.IsLetter(r) || r == '_' }
func isIdentPart(r rune) bool  { return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' }
