package parser

import (
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/tpcd"
)

func TestParseSimpleSPJ(t *testing.T) {
	q, err := ParseQuery(`
		SELECT *
		FROM orders o, lineitem l
		WHERE o.orderkey = l.orderkey AND o.orderdate < 1100`, "q")
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Validate(tpcd.Catalog(1)); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	b := q.Root
	if len(b.Sources) != 2 || len(b.Joins) != 1 || len(b.Selects) != 1 || b.Agg != nil {
		t.Fatalf("parsed %+v", b)
	}
	if b.Sources[0].Table != "orders" || b.Sources[0].Alias != "o" {
		t.Errorf("source %+v", b.Sources[0])
	}
	if b.Selects[0].Conj[0].Op != expr.LT || b.Selects[0].Conj[0].Val != 1100 {
		t.Errorf("selection %+v", b.Selects[0])
	}
}

func TestParseAggregation(t *testing.T) {
	q, err := ParseQuery(`
		SELECT o.orderdate, SUM(l.extendedprice), COUNT(*)
		FROM orders o, lineitem l
		WHERE o.orderkey = l.orderkey
		GROUP BY o.orderdate`, "q")
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Validate(tpcd.Catalog(1)); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	agg := q.Root.Agg
	if agg == nil {
		t.Fatal("no aggregation parsed")
	}
	if len(agg.GroupBy) != 1 || agg.GroupBy[0].Column != "orderdate" {
		t.Errorf("group by %v", agg.GroupBy)
	}
	if len(agg.Aggs) != 2 || agg.Aggs[0].Func != expr.Sum || agg.Aggs[1].Func != expr.Count {
		t.Errorf("aggs %v", agg.Aggs)
	}
}

func TestParseImplicitGroupBy(t *testing.T) {
	// A plain column next to an aggregate is added to GROUP BY.
	q, err := ParseQuery(`SELECT o.orderdate, SUM(o.totalprice) FROM orders o`, "q")
	if err != nil {
		t.Fatal(err)
	}
	agg := q.Root.Agg
	if agg == nil || len(agg.GroupBy) != 1 || agg.GroupBy[0].Column != "orderdate" {
		t.Fatalf("implicit group by missing: %+v", agg)
	}
}

func TestParseMinMax(t *testing.T) {
	q, err := ParseQuery(`SELECT ps.partkey, MIN(ps.supplycost), MAX(ps.availqty)
		FROM partsupp ps GROUP BY ps.partkey`, "q")
	if err != nil {
		t.Fatal(err)
	}
	aggs := q.Root.Agg.Aggs
	if aggs[0].Func != expr.Min || aggs[1].Func != expr.Max {
		t.Errorf("aggs %v", aggs)
	}
}

func TestParseBatchSplitsOnSemicolons(t *testing.T) {
	b, err := ParseBatch(`
		SELECT * FROM orders o, lineitem l WHERE o.orderkey = l.orderkey;
		-- a comment between statements
		SELECT * FROM orders o, customer c WHERE o.custkey = c.custkey;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Queries) != 2 {
		t.Fatalf("got %d queries", len(b.Queries))
	}
	if b.Queries[0].Name != "q1" || b.Queries[1].Name != "q2" {
		t.Errorf("names %q %q", b.Queries[0].Name, b.Queries[1].Name)
	}
}

func TestParseOperators(t *testing.T) {
	for opTxt, op := range map[string]expr.CmpOp{
		"=": expr.EQ, "<": expr.LT, "<=": expr.LE, ">": expr.GT, ">=": expr.GE,
	} {
		q, err := ParseQuery("SELECT * FROM orders o WHERE o.orderdate "+opTxt+" 5", "q")
		if err != nil {
			t.Fatalf("%s: %v", opTxt, err)
		}
		if got := q.Root.Selects[0].Conj[0].Op; got != op {
			t.Errorf("%s parsed as %v", opTxt, got)
		}
	}
}

func TestParseDefaultAlias(t *testing.T) {
	q, err := ParseQuery("SELECT * FROM orders WHERE orders.orderdate < 5", "q")
	if err != nil {
		t.Fatal(err)
	}
	if q.Root.Sources[0].Alias != "orders" {
		t.Errorf("alias %q", q.Root.Sources[0].Alias)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{"", "empty batch"},
		{"FROM x", "expected SELECT"},
		{"SELECT FROM x", `expected "."`}, // FROM is consumed as a column alias
		{"SELECT a.b", "expected FROM"},
		{"SELECT a.b FROM", "expected table name"},
		{"SELECT a.b FROM t WHERE", "expected column"},
		{"SELECT a.b FROM t WHERE a.b < t.c", "join conditions must use ="},
		{"SELECT a.b FROM t WHERE a.b ! 3", "unexpected character"},
		{"SELECT a.b FROM t WHERE a.b =", "expected number or column"},
		{"SELECT sum(a.b FROM t", `expected ")"`},
		{"SELECT a FROM t", `expected "."`},
	}
	for _, c := range cases {
		_, err := ParseBatch(c.src)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("ParseBatch(%q) error = %v, want containing %q", c.src, err, c.want)
		}
	}
}

func TestLexNumbersAndComments(t *testing.T) {
	toks, err := lex("x -- comment\n12.5 <= >= ; -3")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []tokenKind{tokIdent, tokNumber, tokSymbol, tokSymbol, tokSymbol, tokNumber, tokEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens: %+v", len(toks), toks)
	}
	for i, k := range kinds {
		if toks[i].kind != k {
			t.Errorf("token %d kind %v, want %v", i, toks[i].kind, k)
		}
	}
	if toks[1].num != 12.5 || toks[5].num != -3 {
		t.Errorf("numbers parsed as %v and %v", toks[1].num, toks[5].num)
	}
}

func TestParsedBatchOptimizes(t *testing.T) {
	// End to end: a parsed batch flows through validation; the paper's
	// subsumption case (same query, looser constant) parses cleanly.
	b, err := ParseBatch(`
		SELECT o.orderdate, SUM(l.extendedprice) FROM orders o, lineitem l
		WHERE o.orderkey = l.orderkey AND o.orderdate < 1100 GROUP BY o.orderdate;
		SELECT o.orderdate, SUM(l.extendedprice) FROM orders o, lineitem l
		WHERE o.orderkey = l.orderkey AND o.orderdate < 1400 GROUP BY o.orderdate;`)
	if err != nil {
		t.Fatal(err)
	}
	cat := tpcd.Catalog(1)
	for _, q := range b.Queries {
		if err := q.Validate(cat); err != nil {
			t.Errorf("%s: %v", q.Name, err)
		}
	}
}
