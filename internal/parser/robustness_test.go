package parser

import (
	"math/rand"
	"strings"
	"testing"
)

// TestParserNeverPanics feeds pseudo-random token soup to the parser: it
// must return an error or a batch, never panic.
func TestParserNeverPanics(t *testing.T) {
	vocab := []string{
		"SELECT", "FROM", "WHERE", "GROUP", "BY", "AND", "SUM", "COUNT",
		"MIN", "MAX", "o", "l", "orders", "lineitem", ".", ",", ";", "(",
		")", "*", "=", "<", "<=", ">", ">=", "orderkey", "orderdate",
		"extendedprice", "1100", "3.5", "-7", "--", "\n",
	}
	r := rand.New(rand.NewSource(2024))
	for i := 0; i < 3000; i++ {
		n := r.Intn(25)
		var sb strings.Builder
		for j := 0; j < n; j++ {
			sb.WriteString(vocab[r.Intn(len(vocab))])
			sb.WriteByte(' ')
		}
		src := sb.String()
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("panic on input %q: %v", src, p)
				}
			}()
			_, _ = ParseBatch(src)
		}()
	}
}

// TestParserNeverPanicsOnRandomBytes goes further: arbitrary characters.
func TestParserNeverPanicsOnRandomBytes(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		n := r.Intn(40)
		b := make([]byte, n)
		for j := range b {
			b[j] = byte(r.Intn(128))
		}
		src := string(b)
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("panic on input %q: %v", src, p)
				}
			}()
			_, _ = ParseBatch(src)
		}()
	}
}

// TestRoundTripThroughValidation parses every statement the CLI help text
// and README advertise.
func TestAdvertisedStatements(t *testing.T) {
	stmts := []string{
		`SELECT o.orderdate, SUM(l.extendedprice)
		 FROM orders o, lineitem l
		 WHERE o.orderkey = l.orderkey AND o.orderdate < 1100
		 GROUP BY o.orderdate`,
		`SELECT * FROM customer c, orders o WHERE c.custkey = o.custkey`,
		`SELECT COUNT(*) FROM lineitem l WHERE l.shipdate >= 2200`,
	}
	for _, s := range stmts {
		if _, err := ParseQuery(s, "q"); err != nil {
			t.Errorf("advertised statement rejected: %v\n%s", err, s)
		}
	}
}
