package parser

import (
	"fmt"
	"strings"

	"repro/internal/expr"
	"repro/internal/logical"
)

// ParseBatch parses a semicolon-separated sequence of SELECT statements
// into a batch; queries are named q1, q2, … in order.
func ParseBatch(src string) (*logical.Batch, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	batch := &logical.Batch{}
	for !p.at(tokEOF) {
		q, err := p.parseSelect(fmt.Sprintf("q%d", len(batch.Queries)+1))
		if err != nil {
			return nil, err
		}
		batch.Add(q)
		for p.acceptSym(";") {
		}
	}
	if len(batch.Queries) == 0 {
		return nil, fmt.Errorf("parser: empty batch")
	}
	return batch, nil
}

// ParseQuery parses a single SELECT statement.
func ParseQuery(src, name string) (*logical.Query, error) {
	b, err := ParseBatch(src)
	if err != nil {
		return nil, err
	}
	if len(b.Queries) != 1 {
		return nil, fmt.Errorf("parser: expected one statement, got %d", len(b.Queries))
	}
	b.Queries[0].Name = name
	return b.Queries[0], nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) at(k tokenKind) bool { return p.cur().kind == k }

func (p *parser) atKeyword(kw string) bool {
	return p.cur().kind == tokIdent && strings.EqualFold(p.cur().text, kw)
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.atKeyword(kw) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errf("expected %s", strings.ToUpper(kw))
	}
	return nil
}

func (p *parser) acceptSym(s string) bool {
	if p.cur().kind == tokSymbol && p.cur().text == s {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectSym(s string) error {
	if !p.acceptSym(s) {
		return p.errf("expected %q", s)
	}
	return nil
}

func (p *parser) errf(format string, args ...interface{}) error {
	t := p.cur()
	where := t.text
	if t.kind == tokEOF {
		where = "end of input"
	}
	return fmt.Errorf("parser: line %d at %q: %s", t.line, where, fmt.Sprintf(format, args...))
}

// selectItem is one entry of the SELECT list.
type selectItem struct {
	agg   *expr.Agg // nil for a plain column
	col   expr.Col  // plain column, or aggregate argument
	isAgg bool
}

func (p *parser) parseSelect(name string) (*logical.Query, error) {
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	var items []selectItem
	for {
		it, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		items = append(items, it)
		if !p.acceptSym(",") {
			break
		}
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	bb := logical.NewBlock()
	for {
		if !p.at(tokIdent) {
			return nil, p.errf("expected table name")
		}
		table := p.next().text
		alias := table
		if p.at(tokIdent) && !p.atKeyword("where") && !p.atKeyword("group") {
			alias = p.next().text
		}
		bb.Scan(table, alias)
		if !p.acceptSym(",") {
			break
		}
	}
	if p.acceptKeyword("where") {
		for {
			if err := p.parseCondition(bb); err != nil {
				return nil, err
			}
			if !p.acceptKeyword("and") {
				break
			}
		}
	}
	hasAgg := false
	for _, it := range items {
		if it.isAgg {
			hasAgg = true
		}
	}
	if p.acceptKeyword("group") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			c, err := p.parseColumn()
			if err != nil {
				return nil, err
			}
			bb.GroupBy(c.String())
			if !p.acceptSym(",") {
				break
			}
		}
		hasAgg = true
	}
	if hasAgg {
		for _, it := range items {
			switch {
			case it.isAgg && it.agg.Func == expr.Count:
				bb.Count()
			case it.isAgg:
				switch it.agg.Func {
				case expr.Sum:
					bb.Sum(it.col.String())
				case expr.Min:
					bb.Min(it.col.String())
				case expr.Max:
					bb.Max(it.col.String())
				}
			default:
				// A plain column in an aggregating query must be grouped;
				// add it to GROUP BY if the user did not (permissive mode).
				q := bb.Build()
				present := false
				if q.Agg != nil {
					for _, g := range q.Agg.GroupBy {
						if g == it.col {
							present = true
						}
					}
				}
				if !present {
					bb.GroupBy(it.col.String())
				}
			}
		}
	}
	return bb.Query(name), nil
}

func (p *parser) parseSelectItem() (selectItem, error) {
	if p.acceptSym("*") {
		return selectItem{}, nil // SELECT *: pure SPJ output
	}
	for _, kw := range []string{"sum", "count", "min", "max"} {
		if p.atKeyword(kw) && p.toks[p.i+1].kind == tokSymbol && p.toks[p.i+1].text == "(" {
			p.i++ // keyword
			p.i++ // (
			var it selectItem
			it.isAgg = true
			switch kw {
			case "sum":
				it.agg = &expr.Agg{Func: expr.Sum}
			case "count":
				it.agg = &expr.Agg{Func: expr.Count}
			case "min":
				it.agg = &expr.Agg{Func: expr.Min}
			case "max":
				it.agg = &expr.Agg{Func: expr.Max}
			}
			if kw == "count" && p.acceptSym("*") {
				// count(*)
			} else {
				c, err := p.parseColumn()
				if err != nil {
					return it, err
				}
				it.col = c
			}
			if err := p.expectSym(")"); err != nil {
				return it, err
			}
			return it, nil
		}
	}
	c, err := p.parseColumn()
	if err != nil {
		return selectItem{}, err
	}
	return selectItem{col: c}, nil
}

func (p *parser) parseColumn() (expr.Col, error) {
	if !p.at(tokIdent) {
		return expr.Col{}, p.errf("expected column reference")
	}
	alias := p.next().text
	if err := p.expectSym("."); err != nil {
		return expr.Col{}, err
	}
	if !p.at(tokIdent) {
		return expr.Col{}, p.errf("expected column name after %q.", alias)
	}
	return expr.Col{Alias: alias, Column: p.next().text}, nil
}

// parseCondition parses one WHERE conjunct: either a join condition
// (col = col) or a selection (col op number).
func (p *parser) parseCondition(bb *logical.BlockBuilder) error {
	left, err := p.parseColumn()
	if err != nil {
		return err
	}
	if p.cur().kind != tokSymbol {
		return p.errf("expected comparison operator")
	}
	op := p.next().text
	var cmpOp expr.CmpOp
	switch op {
	case "=":
		cmpOp = expr.EQ
	case "<":
		cmpOp = expr.LT
	case "<=":
		cmpOp = expr.LE
	case ">":
		cmpOp = expr.GT
	case ">=":
		cmpOp = expr.GE
	default:
		return p.errf("unsupported operator %q", op)
	}
	switch {
	case p.at(tokNumber):
		val := p.next().num
		bb.Cmp(left.String(), cmpOp, val)
		return nil
	case p.at(tokIdent):
		if cmpOp != expr.EQ {
			return p.errf("join conditions must use =")
		}
		right, err := p.parseColumn()
		if err != nil {
			return err
		}
		bb.Join(left.String(), right.String())
		return nil
	default:
		return p.errf("expected number or column after operator")
	}
}
