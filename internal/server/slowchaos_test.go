//go:build slowchaos

package server

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// slowChaosSeed fixes the long schedule so every CI run replays the same
// faults at the same places. Change it deliberately, never randomly.
const slowChaosSeed = 42

// TestSlowChaosLongSchedule drives many sequential optimizations through
// one server under a dense fixed-seed fault schedule that mixes injected
// oracle panics, pool-lookup delays and round-boundary delays. It is the
// endurance companion of the -short chaos suite: the process must survive
// every fault, each request must resolve to a clean 200 or a coded 500,
// and the telemetry conservation invariant must still balance across all
// the session churn the quarantines cause.
func TestSlowChaosLongSchedule(t *testing.T) {
	srv := New(Config{Breaker: BreakerConfig{Disabled: true}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	body := specBody(t, nil)

	// Reference result before any schedule is installed.
	resp, data := postOptimize(t, ts.URL, body, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reference = %d: %s", resp.StatusCode, data)
	}
	ref := decodeResponse(t, data)

	// Derive the panic positions from the fixed seed: ~1 in 3 requests
	// fault somewhere inside their batched-oracle scan. Delay rules fire on
	// every hit and keep the slow paths exercised without changing results.
	rng := rand.New(rand.NewSource(slowChaosSeed))
	perRequest := ref.Telemetry.OracleCalls
	if perRequest <= 0 {
		t.Fatalf("reference made no oracle calls; spec no longer reaches the batch path")
	}
	const requests = 36
	rules := []faultinject.Rule{
		{Point: faultinject.PoolGet, Delay: 200 * time.Microsecond},
		{Point: faultinject.Round, Delay: 100 * time.Microsecond},
	}
	wantFaults := 0
	for i := 0; i < requests; i++ {
		if rng.Intn(3) != 0 {
			continue
		}
		// A panic at a random eval of request i's scan. Faulted requests
		// abort their scan, so later offsets are computed from the running
		// hit count the schedule will actually reach, which we cannot know
		// exactly; rule Ns target the fault-free cumulative position and any
		// rule landing inside an aborted scan simply fires on a later
		// request — survival and conservation hold either way.
		n := int64(i)*int64(perRequest) + 1 + rng.Int63n(int64(perRequest))
		rules = append(rules, faultinject.Rule{Point: faultinject.OracleEval, N: n, Panic: true})
		wantFaults++
	}
	restore := withSchedule(t, faultinject.NewSchedule(slowChaosSeed, rules...))

	var ok, faulted int
	var respCalls, respRounds, respBatches int
	for i := 0; i < requests; i++ {
		resp, data := postOptimize(t, ts.URL, body, nil)
		switch resp.StatusCode {
		case http.StatusOK:
			ok++
			r := decodeResponse(t, data)
			respCalls += r.Telemetry.OracleCalls
			respRounds += r.Telemetry.Rounds
			respBatches++
			if r.CostMS != ref.CostMS || len(r.Materialized) != len(ref.Materialized) {
				t.Fatalf("request %d diverged under faults: cost %v vs %v", i, r.CostMS, ref.CostMS)
			}
		case http.StatusInternalServerError:
			faulted++
			var eb errorBody
			if err := json.Unmarshal(data, &eb); err != nil || eb.Code != codeInternalPanic || eb.Incident == "" {
				t.Fatalf("request %d: 500 body = %s, want code %s with incident", i, data, codeInternalPanic)
			}
		default:
			t.Fatalf("request %d = %d: %s", i, resp.StatusCode, data)
		}
	}
	restore()

	if ok+faulted != requests {
		t.Fatalf("accounted %d of %d requests", ok+faulted, requests)
	}
	if faulted == 0 || ok == 0 {
		t.Fatalf("schedule produced ok=%d faulted=%d; want a mix (planned %d faults)", ok, faulted, wantFaults)
	}
	if got := srv.PanicsRecovered(); got != int64(faulted) {
		t.Errorf("panics recovered = %d, want %d", got, faulted)
	}

	// Conservation: live pool + retired aggregate == what the 200s
	// reported, with every faulted run counted exactly once as a fault.
	waitFor(t, func() bool { return sumStats(t, srv).Faults == faulted })
	total := sumStats(t, srv)
	// The reference request ran before the loop.
	if total.Batches != respBatches+1 || total.OracleCalls != respCalls+ref.Telemetry.OracleCalls {
		t.Errorf("conservation: batches %d want %d, calls %d want %d",
			total.Batches, respBatches+1, total.OracleCalls, respCalls+ref.Telemetry.OracleCalls)
	}
	if total.Rounds != respRounds+ref.Telemetry.Rounds {
		t.Errorf("conservation: rounds %d want %d", total.Rounds, respRounds+ref.Telemetry.Rounds)
	}

	// With the schedule gone the replay is bit-identical to the reference.
	resp, data = postOptimize(t, ts.URL, body, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-chaos replay = %d: %s", resp.StatusCode, data)
	}
	got := decodeResponse(t, data)
	if got.CostMS != ref.CostMS || got.BenefitMS != ref.BenefitMS ||
		got.Telemetry.OracleCalls != ref.Telemetry.OracleCalls {
		t.Errorf("post-chaos replay diverged: %+v vs %+v", got.Telemetry, ref.Telemetry)
	}
	if faultinject.Enabled() {
		t.Fatal("schedule leaked past restore")
	}
}
