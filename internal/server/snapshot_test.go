package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

// getSnapshot fetches GET /v1/cache/snapshot with the given query string.
func getSnapshot(t *testing.T, url, query string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url + "/v1/cache/snapshot" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// putSnapshot PUTs snapshot bytes.
func putSnapshot(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, url+"/v1/cache/snapshot", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestSnapshotWarmJoin is the serving-tier warm-join gate: a donor server
// serves a workload cold, a joiner imports the donor's snapshot over HTTP,
// and the joiner then serves the same workload bit-identically while
// spending less than half the donor's oracle calls (in fact zero — every
// memoized value transfers).
func TestSnapshotWarmJoin(t *testing.T) {
	donor := New(Config{})
	dts := httptest.NewServer(donor.Handler())
	defer dts.Close()

	body := specBody(t, nil)
	resp, refData := postOptimize(t, dts.URL, body, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("donor run = %d: %s", resp.StatusCode, refData)
	}
	ref := decodeResponse(t, refData)
	if ref.Telemetry.OracleCalls == 0 {
		t.Fatal("donor spent no oracle calls; the gate needs a real search")
	}

	// A drain does not block the export: handing warmth to a replacement
	// is exactly what a draining replica is for.
	donor.Drain()
	resp, snap := getSnapshot(t, dts.URL, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot export = %d: %s", resp.StatusCode, snap)
	}

	joiner := New(Config{})
	jts := httptest.NewServer(joiner.Handler())
	defer jts.Close()
	resp, impData := putSnapshot(t, jts.URL, snap)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot import = %d: %s", resp.StatusCode, impData)
	}
	var imp SnapshotImportResponse
	if err := json.Unmarshal(impData, &imp); err != nil {
		t.Fatal(err)
	}
	if imp.Catalog != "sf=1" || imp.Entries == 0 {
		t.Fatalf("import = %+v, want catalog sf=1 with entries", imp)
	}

	resp, warmData := postOptimize(t, jts.URL, body, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm run = %d: %s", resp.StatusCode, warmData)
	}
	warm := decodeResponse(t, warmData)
	if warm.CostMS != ref.CostMS || warm.BenefitMS != ref.BenefitMS {
		t.Errorf("warm costs (%v, %v) != donor (%v, %v)", warm.CostMS, warm.BenefitMS, ref.CostMS, ref.BenefitMS)
	}
	if len(warm.Materialized) != len(ref.Materialized) {
		t.Fatalf("warm set %v != %v", warm.Materialized, ref.Materialized)
	}
	for i := range warm.Materialized {
		if warm.Materialized[i] != ref.Materialized[i] {
			t.Fatalf("warm set %v != %v", warm.Materialized, ref.Materialized)
		}
	}
	if warm.Telemetry.OracleCalls*2 > ref.Telemetry.OracleCalls {
		t.Errorf("warm join spent %d oracle calls, want ≤ half of cold %d",
			warm.Telemetry.OracleCalls, ref.Telemetry.OracleCalls)
	}
	if warm.Telemetry.SharedOracleHits == 0 {
		t.Error("warm run reports no SharedOracleHits")
	}

	// The warmth is visible in /v1/stats.
	sr, err := http.Get(jts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats StatsResponse
	err = json.NewDecoder(sr.Body).Decode(&stats)
	sr.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Pool) != 1 || stats.Pool[0].SharedCacheEntries == 0 {
		t.Errorf("joiner pool stats carry no warmth: %+v", stats.Pool)
	}
	if stats.Pool[0].Session.SharedOracleHits != warm.Telemetry.SharedOracleHits {
		t.Errorf("pool SharedOracleHits = %d, response says %d",
			stats.Pool[0].Session.SharedOracleHits, warm.Telemetry.SharedOracleHits)
	}
}

// TestSnapshotMissingAndMismatch covers the failure surface: exporting an
// unpooled catalog is 404 snapshot_missing; importing a snapshot for a
// catalog the server does not serve is 409 snapshot_mismatch; garbage is
// a 400; and a draining server refuses imports.
func TestSnapshotMissingAndMismatch(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, data := getSnapshot(t, ts.URL, "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cold export = %d: %s", resp.StatusCode, data)
	}
	var eb errorBody
	if err := json.Unmarshal(data, &eb); err != nil || eb.Code != codeSnapshotMissing {
		t.Errorf("cold export body = %s, want code %s", data, codeSnapshotMissing)
	}

	// Pool a session, export it, then doctor the scope to an unserved sf.
	if resp, d := postOptimize(t, ts.URL, specBody(t, nil), nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("warmup = %d: %s", resp.StatusCode, d)
	}
	resp, snap := getSnapshot(t, ts.URL, "?sf=1&extended=false")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("export = %d: %s", resp.StatusCode, snap)
	}
	resp, data = getSnapshot(t, ts.URL, "?sf=10")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unpooled sf export = %d: %s", resp.StatusCode, data)
	}

	other := New(Config{AllowedSFs: []float64{2}, DefaultSF: 2})
	ots := httptest.NewServer(other.Handler())
	defer ots.Close()
	resp, data = putSnapshot(t, ots.URL, snap)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("mismatched import = %d: %s", resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, &eb); err != nil || eb.Code != codeSnapshotMismatch {
		t.Errorf("mismatched import body = %s, want code %s", data, codeSnapshotMismatch)
	}

	// A tampered checksum and plain garbage are both 400s.
	resp, data = putSnapshot(t, ts.URL, bytes.Replace(snap, []byte(`"checksum": "`), []byte(`"checksum": "0`), 1))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("tampered import = %d: %s", resp.StatusCode, data)
	}
	resp, data = putSnapshot(t, ts.URL, []byte("not json"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage import = %d: %s", resp.StatusCode, data)
	}

	srv.Drain()
	resp, data = putSnapshot(t, ts.URL, snap)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining import = %d: %s", resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, &eb); err != nil || eb.Code != codeDraining {
		t.Errorf("draining import body = %s, want code %s", data, codeDraining)
	}
}

// TestParsePoolKey pins the key grammar both ways.
func TestParsePoolKey(t *testing.T) {
	for _, k := range []poolKey{
		{sf: 1}, {sf: 10}, {sf: 0.5}, {sf: 1, extended: true}, {sf: 100, extended: true},
	} {
		got, err := parsePoolKey(k.String())
		if err != nil || got != k {
			t.Errorf("parsePoolKey(%q) = (%+v, %v), want %+v", k.String(), got, err, k)
		}
	}
	for _, s := range []string{"", "sf=", "sf=x", "sf=-1", "sf=0", "sf=1+h", "1", "sf=NaN", "sf=+Inf"} {
		if _, err := parsePoolKey(s); err == nil {
			t.Errorf("parsePoolKey(%q) succeeded", s)
		}
	}
}

// TestSnapshotQueryParamValidation: bad sf/extended params are 400s.
func TestSnapshotQueryParamValidation(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for _, q := range []string{"?sf=bogus", "?sf=-1", "?extended=maybe"} {
		resp, data := getSnapshot(t, ts.URL, q)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET %s = %d: %s", q, resp.StatusCode, data)
		}
	}
}
