package server

import (
	"testing"
)

// FuzzOptimizeRequest fuzzes the optimize-request decoder end to end:
// arbitrary bytes must either produce a validated request or an error the
// handler maps to a 400 — never a panic. Accepted requests must satisfy
// the decoder's own invariants (exactly one payload, bounded knobs). The
// seed corpus under testdata/fuzz/FuzzOptimizeRequest pins both payload
// kinds and each rejection class.
func FuzzOptimizeRequest(f *testing.F) {
	seeds := []string{
		`{"sql": "SELECT l.tax FROM lineitem l"}`,
		`{"spec": {"queries": 4, "fan_out": 3, "shape": "star"}, "strategy": "marginal"}`,
		`{"spec": {"seed": 7, "queries": 8, "shape": "mixed", "fan_out": 4, "sharing": 0.5, "select_frac": 0.8, "agg_frac": 0.5}, "strategy": "lazymarginal", "parallelism": 4, "time_budget_ms": 100, "oracle_call_budget": 500}`,
		`{"tenant": "acme", "sf": 100, "extended_ops": true, "sql": "SELECT l.tax FROM lineitem l", "plan_text": true}`,
		`{"sql": "x", "spec": {"queries": 1, "fan_out": 2}}`, // both payloads
		`{}`,                                     // neither payload
		`{"sql": "x", "strategy": "exhaustive"}`, // unservable strategy
		`{"sql": "x", "sf": -1}`,                 // bad scale factor
		`{"sql": "x", "sf": 1e308}`,              // absurd scale factor
		`{"sql": "x", "parallelism": 100000}`,    // beyond the bound
		`{"sql": "x", "oracle_call_budget": 0}`,  // zero is meaningful
		`{"sql": "x", "unknown_field": 1}`,       // strict decode
		`{"sql": "x"} []`,                        // trailing data
		`{"spec": {"queries": 2, "fan_out": 2, "shape": "donut"}}`,
		`not json at all`,
		`[1,2,3]`,
		``,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := decodeOptimizeRequest(data, 1024)
		if err != nil {
			return // rejected: the handler answers 400
		}
		if (req.Spec == nil) == (req.SQL == "") {
			t.Fatalf("accepted request without exactly one payload: %+v", req)
		}
		if req.Spec != nil {
			if err := req.Spec.Validate(); err != nil {
				t.Fatalf("accepted request with invalid spec: %v", err)
			}
			if req.Spec.Queries > 1024 {
				t.Fatalf("accepted request above the query cap: %d", req.Spec.Queries)
			}
		}
		if _, err := parseStrategy(req.Strategy); err != nil {
			t.Fatalf("accepted request with unservable strategy %q", req.Strategy)
		}
		if req.Parallelism < 0 || req.Parallelism > maxParallelism {
			t.Fatalf("accepted request with parallelism %d", req.Parallelism)
		}
		if req.TimeBudgetMS < 0 || (req.OracleCallBudget != nil && *req.OracleCallBudget < 0) {
			t.Fatalf("accepted request with negative budget: %+v", req)
		}
	})
}
