package server

import (
	"math"
	"testing"

	"repro/internal/strictjson"
)

// FuzzOptimizeRequest fuzzes the optimize-request decoder end to end:
// arbitrary bytes must either produce a validated request or an error the
// handler maps to a 400 — never a panic. Accepted requests must satisfy
// the decoder's own invariants (exactly one payload, bounded knobs). The
// seed corpus under testdata/fuzz/FuzzOptimizeRequest pins both payload
// kinds and each rejection class.
func FuzzOptimizeRequest(f *testing.F) {
	seeds := []string{
		`{"sql": "SELECT l.tax FROM lineitem l"}`,
		`{"spec": {"queries": 4, "fan_out": 3, "shape": "star"}, "strategy": "marginal"}`,
		`{"spec": {"seed": 7, "queries": 8, "shape": "mixed", "fan_out": 4, "sharing": 0.5, "select_frac": 0.8, "agg_frac": 0.5}, "strategy": "lazymarginal", "parallelism": 4, "time_budget_ms": 100, "oracle_call_budget": 500}`,
		`{"tenant": "acme", "sf": 100, "extended_ops": true, "sql": "SELECT l.tax FROM lineitem l", "plan_text": true}`,
		`{"sql": "x", "spec": {"queries": 1, "fan_out": 2}}`, // both payloads
		`{}`,                                     // neither payload
		`{"sql": "x", "strategy": "exhaustive"}`, // unservable strategy
		`{"sql": "x", "sf": -1}`,                 // bad scale factor
		`{"sql": "x", "sf": 1e308}`,              // absurd scale factor
		`{"sql": "x", "parallelism": 100000}`,    // beyond the bound
		`{"sql": "x", "oracle_call_budget": 0}`,  // zero is meaningful
		`{"sql": "x", "unknown_field": 1}`,       // strict decode
		`{"sql": "x"} []`,                        // trailing data
		`{"spec": {"queries": 2, "fan_out": 2, "shape": "donut"}}`,
		`not json at all`,
		`[1,2,3]`,
		``,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := decodeOptimizeRequest(data, 1024)
		if err != nil {
			return // rejected: the handler answers 400
		}
		if (req.Spec == nil) == (req.SQL == "") {
			t.Fatalf("accepted request without exactly one payload: %+v", req)
		}
		if req.Spec != nil {
			if err := req.Spec.Validate(); err != nil {
				t.Fatalf("accepted request with invalid spec: %v", err)
			}
			if req.Spec.Queries > 1024 {
				t.Fatalf("accepted request above the query cap: %d", req.Spec.Queries)
			}
		}
		if _, err := parseStrategy(req.Strategy); err != nil {
			t.Fatalf("accepted request with unservable strategy %q", req.Strategy)
		}
		if req.Parallelism < 0 || req.Parallelism > maxParallelism {
			t.Fatalf("accepted request with parallelism %d", req.Parallelism)
		}
		if req.TimeBudgetMS < 0 || (req.OracleCallBudget != nil && *req.OracleCallBudget < 0) {
			t.Fatalf("accepted request with negative budget: %+v", req)
		}
	})
}

// FuzzTenantConfig fuzzes the tenant-table decode path the mqoserver
// -tenants flag feeds: arbitrary bytes must either produce a table whose
// every entry survives Validate, or an error — never a panic, and never a
// config the scheduler cannot run. Accepted entries must normalize into
// runnable scheduler parameters (positive concurrency, weight and queue
// wait; a finite non-negative quota bucket), and a controller built from
// the table must answer a stats snapshot without tripping on them. The
// seed corpus under testdata/fuzz/FuzzTenantConfig pins one exemplar per
// rejection class.
func FuzzTenantConfig(f *testing.F) {
	seeds := []string{
		`{"acme": {"max_concurrent": 8, "queue_depth": 32, "queue_wait_ms": 500}}`,
		`{"acme": {"call_quota": 100, "refill_per_sec": 2.5, "quota_burst": 400}}`,
		`{"bulk": {"weight": 3, "deadline_ms": 0}, "slo": {"weight": 1, "deadline_ms": 250}}`,
		`{"a": {"queue_depth": -1}}`,       // meaningful negative: no queueing
		`{"a": {"weight": -1}}`,            // invalid: negative weight
		`{"a": {"refill_per_sec": -0.5}}`,  // invalid: negative rate
		`{"a": {"refill_per_sec": 1e309}}`, // JSON overflow, decode error
		`{"a": {"quota_burst": -3}}`,       // invalid: negative burst
		`{"a": {"deadline_ms": -1}}`,       // invalid: negative deadline
		`{"a": {"call_quota": -9}}`,        // invalid: negative quota
		`{"a": {"refill_rate": 1}}`,        // unknown field, strict decode
		`{"a": {}} {"b": {}}`,              // trailing data
		`{"a": {"max_concurrent": 1e3}}`,   // float into int field
		`{"": {"weight": 2}}`,              // empty tenant name decodes; names are vetted elsewhere
		`{"a": {"call_quota": 9223372036854775807, "refill_per_sec": 1e300}}`,
		`{}`,
		`null`,
		`[1]`,
		`not json`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var table map[string]TenantConfig
		if err := strictjson.Decode(data, &table); err != nil {
			return // rejected: the loader reports the config error
		}
		ok := true
		for name, tc := range table {
			if err := tc.Validate(); err != nil {
				ok = false // the loader refuses the whole table
				continue
			}
			n := tc.normalize()
			if n.MaxConcurrent < 1 || n.Weight < 1 || n.weight() < 1 {
				t.Fatalf("tenant %q: validated config normalizes to unservable limits: %+v", name, n)
			}
			if n.QueueDepth < 0 || n.queueWait() <= 0 {
				t.Fatalf("tenant %q: validated config normalizes to a broken queue: %+v", name, n)
			}
			if cap := n.bucketCap(); cap < 0 || math.IsNaN(cap) || math.IsInf(cap, 0) {
				t.Fatalf("tenant %q: validated config has an unaccountable quota bucket %v", name, cap)
			}
		}
		if !ok {
			return
		}
		// A controller built over the accepted table must hold up: every
		// declared tenant answers a stats snapshot (exercising the lazy
		// bucket fill and next-admit math under extreme rates).
		a := NewScheduler(TenantConfig{}, table, true, SchedConfig{Slots: 1})
		st := a.Stats()
		for name := range table {
			s, found := st[name]
			if !found {
				t.Fatalf("declared tenant %q missing from stats", name)
			}
			if s.NextAdmitMS < 0 || math.IsNaN(s.QuotaRemaining) {
				t.Fatalf("tenant %q: stats snapshot broke on its config: %+v", name, s)
			}
		}
	})
}
