package server

import (
	"errors"
	"fmt"
	"math"

	"repro"
	"repro/internal/core"
	"repro/internal/physical"
	"repro/internal/strictjson"
	"repro/internal/workload"
)

// Wire limits. Body size is enforced by the HTTP layer (MaxBytesReader);
// these bound what a well-formed body may ask for.
const (
	// maxSQLBytes caps the SQL payload of one request.
	maxSQLBytes = 256 * 1024
	// maxScaleFactor caps the catalog scale factor a request may name.
	maxScaleFactor = 100000
	// maxParallelism caps the per-request worker-pool override.
	maxParallelism = 256
)

// OptimizeRequest is the body of POST /v1/optimize. Exactly one of Spec
// (a workload-generator spec) and SQL (a semicolon-separated SELECT batch)
// must be set.
type OptimizeRequest struct {
	// Tenant attributes the request for admission control; the X-Tenant
	// header takes precedence. Empty means "default".
	Tenant string `json:"tenant,omitempty"`
	// SF is the TPCD catalog scale factor the session pool keys on
	// (default 1).
	SF float64 `json:"sf,omitempty"`
	// ExtendedOps enables the extended operator set (hash join, hash
	// aggregation) for this request's catalog key.
	ExtendedOps bool `json:"extended_ops,omitempty"`
	// Strategy names the MQO algorithm: volcano, greedy, lazygreedy,
	// marginal, lazymarginal, materializeall or volcanosh (default
	// marginal). Exhaustive is not servable — its cost is exponential.
	Strategy string `json:"strategy,omitempty"`
	// Parallelism overrides the oracle worker-pool bound (0 = GOMAXPROCS).
	Parallelism int `json:"parallelism,omitempty"`
	// TimeBudgetMS caps the optimization wall clock; clamped to the
	// tenant's TimeBudgetMS when that is set.
	TimeBudgetMS int64 `json:"time_budget_ms,omitempty"`
	// DeadlineMS is the request's relative SLO deadline for scheduling:
	// deadline requests are served earliest-deadline-first, may cut ahead
	// of other tenants within their DRR deficit, and may preempt a running
	// preemptible request whose deadline is later or absent. 0 falls back
	// to the tenant's DeadlineMS (and to "no deadline" when that is 0 too).
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// OracleCallBudget caps the memoized-distinct oracle calls; 0 is
	// meaningful (forbid all calls — the strategies return the empty set),
	// hence the pointer. Clamped to the tenant's CallBudget when set.
	OracleCallBudget *int `json:"oracle_call_budget,omitempty"`
	// Spec generates the batch with the seeded workload generator.
	Spec *workload.Spec `json:"spec,omitempty"`
	// SQL is parsed by internal/parser into the batch.
	SQL string `json:"sql,omitempty"`
	// PlanText asks for the rendered consolidated plan in the response.
	PlanText bool `json:"plan_text,omitempty"`
	// Resume continues an interrupted optimization from the checkpoint an
	// earlier response (or fault body) carried. The batch, sf and
	// extended_ops must reproduce the original search space — the token's
	// fingerprint is verified — and the algorithm comes from the
	// checkpoint, so Strategy is ignored. Budgets apply to the
	// continuation, which can itself checkpoint again.
	Resume *repro.Checkpoint `json:"resume,omitempty"`
}

// decodeOptimizeRequest parses and validates one request body. It is
// strict — unknown fields, trailing data and out-of-range knobs are all
// errors — and never panics, so every failure maps to a 400. maxQueries
// bounds the batch size a spec may request (0 = no bound).
func decodeOptimizeRequest(data []byte, maxQueries int) (*OptimizeRequest, error) {
	var req OptimizeRequest
	if err := strictjson.Decode(data, &req); err != nil {
		return nil, fmt.Errorf("decoding request: %w", err)
	}
	if err := req.validate(maxQueries); err != nil {
		return nil, err
	}
	return &req, nil
}

func (r *OptimizeRequest) validate(maxQueries int) error {
	if (r.Spec == nil) == (r.SQL == "") {
		return errors.New(`exactly one of "spec" and "sql" must be set`)
	}
	if len(r.SQL) > maxSQLBytes {
		return fmt.Errorf("sql payload exceeds %d bytes", maxSQLBytes)
	}
	if math.IsNaN(r.SF) || r.SF < 0 || r.SF > maxScaleFactor {
		return fmt.Errorf("sf must be 0 (server default) or in (0, %d], got %v", maxScaleFactor, r.SF)
	}
	if _, err := parseStrategy(r.Strategy); err != nil {
		return err
	}
	if r.Parallelism < 0 || r.Parallelism > maxParallelism {
		return fmt.Errorf("parallelism must be in [0, %d], got %d", maxParallelism, r.Parallelism)
	}
	if r.TimeBudgetMS < 0 {
		return fmt.Errorf("time_budget_ms must be ≥ 0, got %d", r.TimeBudgetMS)
	}
	if r.DeadlineMS < 0 {
		return fmt.Errorf("deadline_ms must be ≥ 0, got %d", r.DeadlineMS)
	}
	if r.OracleCallBudget != nil && *r.OracleCallBudget < 0 {
		return fmt.Errorf("oracle_call_budget must be ≥ 0, got %d", *r.OracleCallBudget)
	}
	if r.Resume != nil && r.Resume.State == nil {
		return errors.New("resume checkpoint carries no state")
	}
	if r.Spec != nil {
		if err := r.Spec.Validate(); err != nil {
			return err
		}
		if maxQueries > 0 && r.Spec.Queries > maxQueries {
			return fmt.Errorf("spec asks for %d queries, server caps batches at %d", r.Spec.Queries, maxQueries)
		}
	}
	return nil
}

// parseStrategy maps the wire name onto a core.Strategy. Exhaustive is
// deliberately unreachable from the wire: it is exponential in the
// shareable-node count and panics beyond 25 nodes.
func parseStrategy(s string) (core.Strategy, error) {
	switch s {
	case "", "marginal":
		return core.MarginalGreedy, nil
	case "lazymarginal":
		return core.LazyMarginalGreedy, nil
	case "greedy":
		return core.Greedy, nil
	case "lazygreedy":
		return core.LazyGreedyStrategy, nil
	case "volcano":
		return core.Volcano, nil
	case "volcanosh":
		return core.VolcanoSH, nil
	case "materializeall":
		return core.MaterializeAll, nil
	}
	return 0, fmt.Errorf("unknown strategy %q (want volcano, greedy, lazygreedy, marginal, lazymarginal, materializeall or volcanosh)", s)
}

// OptimizeResponse is the body of a successful POST /v1/optimize. Costs
// are model milliseconds (the unit of bestCost); durations are
// nanoseconds, matching the Telemetry tags.
type OptimizeResponse struct {
	Tenant       string         `json:"tenant"`
	Strategy     string         `json:"strategy"`
	Queries      int            `json:"queries"`
	Materialized []int          `json:"materialized"`
	CostMS       float64        `json:"cost_ms"`
	VolcanoMS    float64        `json:"volcano_cost_ms"`
	BenefitMS    float64        `json:"benefit_ms"`
	Plan         PlanSummary    `json:"plan"`
	PlanText     string         `json:"plan_text,omitempty"`
	Telemetry    core.Telemetry `json:"telemetry"`
	BuildNS      int64          `json:"build_ns"`
	OptNS        int64          `json:"opt_ns"`
	ExtractNS    int64          `json:"extract_ns"`
	QueueWaitNS  int64          `json:"queue_wait_ns"`
	// Checkpoint is present when a budget or cancellation stopped the run
	// at a resumable point; POST it back as "resume" to continue.
	Checkpoint *repro.Checkpoint `json:"checkpoint,omitempty"`
	// Degraded marks a run served under the catalog's circuit breaker:
	// clamped budgets and the LazyGreedy fallback strategy.
	Degraded bool `json:"degraded,omitempty"`
	// Preemptions counts how many times this run was suspended at a round
	// boundary to serve nearer-deadline work, then transparently resumed;
	// Telemetry is the conserving merge of all its segments.
	Preemptions int `json:"preemptions,omitempty"`
	// Batched marks a response served by the continuous-batching
	// scheduler: the run was shared with BatchSize requests and this
	// response is the request's attributed slice of it. Telemetry is the
	// request's conserving share of the run's counters (summing the shares
	// across the batch reproduces the run exactly), while the costs
	// describe the request's own plan.
	Batched   bool `json:"batched,omitempty"`
	BatchSize int  `json:"batch_size,omitempty"`
	// SharedCreditMS is the compute+write cost of this request's
	// materializations that the other batch members' shares covered — the
	// subsidy it received from being batched.
	SharedCreditMS float64 `json:"shared_credit_ms,omitempty"`
}

// PlanSummary condenses the consolidated plan: one row per
// materialization step and per query, plus the audited total.
type PlanSummary struct {
	Steps   []StepSummary  `json:"steps"`
	Queries []QuerySummary `json:"queries"`
	TotalMS float64        `json:"total_ms"`
}

// StepSummary is one materialization of the consolidated plan.
type StepSummary struct {
	Group       int     `json:"group"`
	Op          string  `json:"op"`
	Rows        float64 `json:"rows"`
	CostMS      float64 `json:"cost_ms"`
	WriteCostMS float64 `json:"write_cost_ms"`
}

// QuerySummary is one query's plan under the chosen materializations.
type QuerySummary struct {
	Name      string  `json:"name"`
	Operators int     `json:"operators"`
	CostMS    float64 `json:"cost_ms"`
}

// summarizePlan flattens a ConsolidatedPlan into the wire summary.
func summarizePlan(cp *physical.ConsolidatedPlan) PlanSummary {
	ps := PlanSummary{
		Steps:   make([]StepSummary, 0, len(cp.Steps)),
		Queries: make([]QuerySummary, 0, len(cp.Queries)),
		TotalMS: cp.Total,
	}
	for _, st := range cp.Steps {
		ps.Steps = append(ps.Steps, StepSummary{
			Group:       int(st.Group),
			Op:          st.Plan.Op,
			Rows:        st.Plan.Rows,
			CostMS:      st.Plan.Cost,
			WriteCostMS: st.WriteCost,
		})
	}
	for i, q := range cp.Queries {
		name := ""
		if i < len(cp.QueryNames) {
			name = cp.QueryNames[i]
		}
		ps.Queries = append(ps.Queries, QuerySummary{
			Name:      name,
			Operators: countOps(q),
			CostMS:    q.Cost,
		})
	}
	return ps
}

func countOps(p *physical.PlanNode) int {
	if p == nil {
		return 0
	}
	n := 1
	for _, c := range p.Children {
		n += countOps(c)
	}
	return n
}

// Stable machine-readable reasons carried by errorBody.Code. Clients
// dispatch on these; the human-readable Error text is not contractual.
const (
	codeBadRequest     = "bad_request"
	codeBodyTooLarge   = "body_too_large"
	codeQueueFull      = "queue_full"
	codeQuotaExhausted = "quota_exhausted"
	codeTenantOverflow = "tenant_overflow"
	codeQueueTimeout   = "queue_timeout"
	codeUnknownTenant  = "unknown_tenant"
	// codeTenantNotFound: POST /v1/tenants/{name}/reset named a tenant the
	// admission controller holds no state for.
	codeTenantNotFound = "tenant_not_found"
	codeDraining       = "draining"
	codeBreakerOpen    = "breaker_open"
	codeResumeMismatch = "resume_mismatch"
	codeInternalPanic  = "internal_panic"
	codeInternalError  = "internal_error"
	// codeSnapshotMissing: GET /v1/cache/snapshot named a catalog key with
	// no pooled session — there is no warmth to export.
	codeSnapshotMissing = "snapshot_missing"
	// codeSnapshotMismatch: PUT /v1/cache/snapshot carried a snapshot whose
	// scope does not name a catalog key this server serves.
	codeSnapshotMismatch = "snapshot_mismatch"
)

// errorBody is the JSON body of every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
	// Code is the stable machine-readable reason (one of the code*
	// constants above).
	Code         string `json:"code"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
	// Incident correlates a recovered panic with the server log.
	Incident string `json:"incident,omitempty"`
	// Checkpoint carries the resumable state a faulted run had committed
	// before its panic; POST it back as "resume" to continue on a fresh
	// session.
	Checkpoint *repro.Checkpoint `json:"checkpoint,omitempty"`
}
