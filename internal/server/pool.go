package server

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro"
	"repro/internal/cost"
	"repro/internal/tpcd"
)

// poolKey identifies one catalog configuration: sessions are shared by
// every request naming the same scale factor and operator set, so their
// cross-call cost caches warm each other.
type poolKey struct {
	sf       float64
	extended bool
}

func (k poolKey) String() string {
	if k.extended {
		return fmt.Sprintf("sf=%g+hash", k.sf)
	}
	return fmt.Sprintf("sf=%g", k.sf)
}

// poolEntry is one pooled session with its recency stamp.
type poolEntry struct {
	sess    *repro.Session
	lastUse time.Time
}

// sessionPool lazily creates and caches repro.Sessions keyed by catalog.
// At most max sessions are kept: creating one past the bound evicts the
// least-recently-used entry and invalidates its shared cost cache, so the
// evicted cache memory is released promptly. Get never evicts a session
// out from under an in-flight request — sessions are self-contained, the
// pool only drops its reference.
type sessionPool struct {
	mu      sync.Mutex
	max     int
	entries map[poolKey]*poolEntry
	now     func() time.Time // test hook
}

func newSessionPool(max int) *sessionPool {
	if max <= 0 {
		max = 4
	}
	return &sessionPool{
		max:     max,
		entries: make(map[poolKey]*poolEntry),
		now:     time.Now,
	}
}

// get returns the session for the key, creating it on first use. The
// catalog and session are built outside the pool mutex so one request's
// cold-catalog construction never stalls requests on warm keys (two
// concurrent cold requests may both build; the loser's session is
// discarded before anything used it).
func (p *sessionPool) get(key poolKey) (*repro.Session, error) {
	p.mu.Lock()
	if e, ok := p.entries[key]; ok {
		e.lastUse = p.now()
		p.mu.Unlock()
		return e.sess, nil
	}
	p.mu.Unlock()

	sess, err := repro.NewSession(tpcd.Catalog(key.sf), cost.Default(),
		repro.WithExtendedOps(key.extended))
	if err != nil {
		return nil, err
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	if e, ok := p.entries[key]; ok { // a concurrent builder won the race
		e.lastUse = p.now()
		return e.sess, nil
	}
	if len(p.entries) >= p.max {
		p.evictLRULocked()
	}
	p.entries[key] = &poolEntry{sess: sess, lastUse: p.now()}
	return sess, nil
}

// evictLRULocked drops the least-recently-used entry and invalidates its
// cache (the pool's side of the session cache-invalidation hook).
func (p *sessionPool) evictLRULocked() {
	var (
		oldestKey poolKey
		oldest    *poolEntry
	)
	for k, e := range p.entries {
		if oldest == nil || e.lastUse.Before(oldest.lastUse) {
			oldestKey, oldest = k, e
		}
	}
	if oldest != nil {
		delete(p.entries, oldestKey)
		oldest.sess.InvalidateCache()
	}
}

// PoolEntryStats is one pooled session's view in /v1/stats.
type PoolEntryStats struct {
	Catalog     string             `json:"catalog"`
	IdleNS      int64              `json:"idle_ns"`
	Session     repro.SessionStats `json:"session"`
	ExtendedOps bool               `json:"extended_ops"`
	SF          float64            `json:"sf"`
}

// stats snapshots every pooled session.
func (p *sessionPool) stats() []PoolEntryStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := p.now()
	out := make([]PoolEntryStats, 0, len(p.entries))
	for k, e := range p.entries {
		out = append(out, PoolEntryStats{
			Catalog:     k.String(),
			IdleNS:      now.Sub(e.lastUse).Nanoseconds(),
			Session:     e.sess.Stats(),
			ExtendedOps: k.extended,
			SF:          k.sf,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Catalog < out[j].Catalog })
	return out
}
