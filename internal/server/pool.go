package server

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro"
	"repro/internal/cost"
	"repro/internal/faultinject"
	"repro/internal/tpcd"
)

// poolKey identifies one catalog configuration: sessions are shared by
// every request naming the same scale factor and operator set, so their
// cross-call cost caches warm each other.
type poolKey struct {
	sf       float64
	extended bool
}

func (k poolKey) String() string {
	if k.extended {
		return fmt.Sprintf("sf=%g+hash", k.sf)
	}
	return fmt.Sprintf("sf=%g", k.sf)
}

// poolEntry is one pooled session with its recency stamp and pin count.
type poolEntry struct {
	key     poolKey
	sess    *repro.Session
	lastUse time.Time
	// refs counts in-flight requests pinning the session. An entry evicted
	// or quarantined while pinned is doomed instead of retired on the spot:
	// it leaves the map immediately (new requests build a fresh session)
	// but its cache invalidation and stats fold wait for the last release,
	// so an in-flight Optimize never has its shared cache flushed from
	// under it.
	refs   int
	doomed bool
}

// sessionPool lazily creates and caches repro.Sessions keyed by catalog.
// At most max sessions are kept: creating one past the bound evicts the
// least-recently-used entry. Sessions handed out by acquire are
// refcount-pinned until their release is called; eviction and quarantine
// of a pinned session defer its retirement (cache invalidation + stats
// fold into the retired aggregate) to the last release.
type sessionPool struct {
	mu      sync.Mutex
	max     int
	entries map[poolKey]*poolEntry
	// retired aggregates the lifetime Session.Stats of every session the
	// pool has dropped (evicted or quarantined), so the telemetry
	// conservation audit — pooled stats + retired stats = sum over
	// responses — keeps balancing across session churn.
	retired      repro.SessionStats
	retiredCount int
	now          func() time.Time // test hook
}

func newSessionPool(max int) *sessionPool {
	if max <= 0 {
		max = 4
	}
	return &sessionPool{
		max:     max,
		entries: make(map[poolKey]*poolEntry),
		now:     time.Now,
	}
}

// acquire returns the session for the key pinned against retirement,
// creating it on first use, plus the release the caller MUST invoke
// exactly once when done with the session. The catalog and session are
// built outside the pool mutex so one request's cold-catalog construction
// never stalls requests on warm keys (two concurrent cold requests may
// both build; the loser's session is discarded before anything used it).
func (p *sessionPool) acquire(key poolKey) (*repro.Session, func(), error) {
	faultinject.Hit(faultinject.PoolGet)
	p.mu.Lock()
	if e, ok := p.entries[key]; ok {
		e.lastUse = p.now()
		e.refs++
		p.mu.Unlock()
		return e.sess, func() { p.release(e) }, nil
	}
	p.mu.Unlock()

	sess, err := repro.NewSession(tpcd.Catalog(key.sf), cost.Default(),
		repro.WithExtendedOps(key.extended))
	if err != nil {
		return nil, nil, err
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	if e, ok := p.entries[key]; ok { // a concurrent builder won the race
		e.lastUse = p.now()
		e.refs++
		return e.sess, func() { p.release(e) }, nil
	}
	if len(p.entries) >= p.max {
		p.evictLRULocked()
	}
	e := &poolEntry{key: key, sess: sess, lastUse: p.now(), refs: 1}
	p.entries[key] = e
	return e.sess, func() { p.release(e) }, nil
}

// peek returns the pooled session for key pinned against retirement —
// without creating one — plus the release the caller MUST invoke exactly
// once. It deliberately does not refresh the LRU stamp: a snapshot scrape
// is not serving traffic and must not keep a cold catalog resident.
func (p *sessionPool) peek(key poolKey) (*repro.Session, func(), bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	e, ok := p.entries[key]
	if !ok {
		return nil, nil, false
	}
	e.refs++
	return e.sess, func() { p.release(e) }, true
}

// release unpins one acquire; the last release of a doomed entry performs
// the deferred retirement.
func (p *sessionPool) release(e *poolEntry) {
	p.mu.Lock()
	defer p.mu.Unlock()
	e.refs--
	if e.doomed && e.refs == 0 {
		p.retireLocked(e)
	}
}

// retireLocked folds the dead session's lifetime counters into the
// retired aggregate and invalidates its shared cost cache so the memory
// is released promptly. Only called once per entry: from the dooming site
// when unpinned, else from the last release.
func (p *sessionPool) retireLocked(e *poolEntry) {
	addSessionStats(&p.retired, e.sess.Stats())
	p.retiredCount++
	e.sess.InvalidateCache()
}

// evictLRULocked drops the least-recently-used entry, preferring unpinned
// victims; when every entry is pinned the LRU one is doomed and retired
// at its last release.
func (p *sessionPool) evictLRULocked() {
	faultinject.Hit(faultinject.PoolEvict)
	var victim *poolEntry
	for _, e := range p.entries {
		if e.refs == 0 && (victim == nil || e.lastUse.Before(victim.lastUse)) {
			victim = e
		}
	}
	if victim == nil {
		for _, e := range p.entries {
			if victim == nil || e.lastUse.Before(victim.lastUse) {
				victim = e
			}
		}
	}
	if victim == nil {
		return
	}
	delete(p.entries, victim.key)
	if victim.refs > 0 {
		victim.doomed = true
		return
	}
	p.retireLocked(victim)
}

// quarantine removes the key's entry iff it still holds sess (a later
// rebuild must not be punished for its predecessor's fault) — used when a
// request's session recovered a panic and its internal caches are no
// longer trusted. Pinned sessions are doomed; the next request on the key
// builds a fresh session.
func (p *sessionPool) quarantine(key poolKey, sess *repro.Session) {
	p.mu.Lock()
	defer p.mu.Unlock()
	e, ok := p.entries[key]
	if !ok || e.sess != sess || e.doomed {
		return
	}
	delete(p.entries, key)
	if e.refs > 0 {
		e.doomed = true
		return
	}
	p.retireLocked(e)
}

// addSessionStats accumulates src into dst field by field.
func addSessionStats(dst *repro.SessionStats, src repro.SessionStats) {
	dst.Batches += src.Batches
	dst.Interrupted += src.Interrupted
	dst.OracleCalls += src.OracleCalls
	dst.BCCalls += src.BCCalls
	dst.CacheHits += src.CacheHits
	dst.SharedHits += src.SharedHits
	dst.ComputedKeys += src.ComputedKeys
	dst.SharedOracleHits += src.SharedOracleHits
	dst.Rounds += src.Rounds
	dst.Invalidations += src.Invalidations
	dst.Faults += src.Faults
	dst.BuildTime += src.BuildTime
	dst.OptTime += src.OptTime
	dst.ExtractTime += src.ExtractTime
}

// retiredStats snapshots the retirement aggregate.
func (p *sessionPool) retiredStats() (repro.SessionStats, int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.retired, p.retiredCount
}

// PoolEntryStats is one pooled session's view in /v1/stats.
type PoolEntryStats struct {
	Catalog     string             `json:"catalog"`
	IdleNS      int64              `json:"idle_ns"`
	Session     repro.SessionStats `json:"session"`
	ExtendedOps bool               `json:"extended_ops"`
	SF          float64            `json:"sf"`
	Pinned      int                `json:"pinned"`
	// SharedCacheEntries and CacheHitRate describe the session's warmth:
	// how many cross-call cache entries it holds, and what fraction of
	// the cost keys its runs needed were served from a cache instead of
	// recomputed. The router's load generator scrapes these to show how
	// warm each replica is per catalog key.
	SharedCacheEntries int     `json:"shared_cache_entries"`
	CacheHitRate       float64 `json:"cache_hit_rate"`
}

// stats snapshots every pooled session.
func (p *sessionPool) stats() []PoolEntryStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := p.now()
	out := make([]PoolEntryStats, 0, len(p.entries))
	for k, e := range p.entries {
		ss := e.sess.Stats()
		pe := PoolEntryStats{
			Catalog:            k.String(),
			IdleNS:             now.Sub(e.lastUse).Nanoseconds(),
			Session:            ss,
			ExtendedOps:        k.extended,
			SF:                 k.sf,
			Pinned:             e.refs,
			SharedCacheEntries: e.sess.CacheEntries(),
		}
		if denom := ss.CacheHits + ss.SharedHits + ss.ComputedKeys; denom > 0 {
			pe.CacheHitRate = float64(ss.CacheHits+ss.SharedHits) / float64(denom)
		}
		out = append(out, pe)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Catalog < out[j].Catalog })
	return out
}
