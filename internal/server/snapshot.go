package server

import (
	"errors"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/physical"
)

// Cache snapshot transfer: GET /v1/cache/snapshot exports a pooled
// session's shared cost cache (cost keys plus memoized oracle values) as a
// portable physical.CacheSnapshot; PUT imports one into the session for
// its catalog key, warm-starting it. The snapshot's Scope is the catalog
// pool key ("sf=1", "sf=10+hash"), so an export can only ever be imported
// for the same catalog configuration. GET is allowed while draining — a
// drain-time export to a joining replica is the warm-handoff use case —
// while PUT is rejected, like any other state-changing request.

// defaultMaxSnapshotBytes bounds a PUT /v1/cache/snapshot body. Snapshots
// are far larger than optimize requests (every cache entry is ~100 bytes
// of JSON), so they get their own cap instead of MaxBodyBytes.
const defaultMaxSnapshotBytes = 64 << 20

// parsePoolKey is the inverse of poolKey.String: "sf=<g>" with an
// optional "+hash" suffix for the extended operator set.
func parsePoolKey(s string) (poolKey, error) {
	var k poolKey
	rest, ok := strings.CutPrefix(s, "sf=")
	if !ok {
		return k, errors.New(`catalog key must start with "sf="`)
	}
	if r, hashed := strings.CutSuffix(rest, "+hash"); hashed {
		k.extended = true
		rest = r
	}
	sf, err := strconv.ParseFloat(rest, 64)
	if err != nil || math.IsNaN(sf) || math.IsInf(sf, 0) || sf <= 0 {
		return k, errors.New("catalog key carries no valid scale factor")
	}
	k.sf = sf
	return k, nil
}

// snapshotKeyOf resolves the catalog key of a snapshot request from its
// sf and extended query parameters (defaults: the server's DefaultSF,
// false).
func (s *Server) snapshotKeyOf(r *http.Request) (poolKey, error) {
	key := poolKey{sf: s.cfg.DefaultSF}
	if v := r.URL.Query().Get("sf"); v != "" {
		sf, err := strconv.ParseFloat(v, 64)
		if err != nil || math.IsNaN(sf) || math.IsInf(sf, 0) || sf <= 0 {
			return key, errors.New("sf must be a positive number")
		}
		key.sf = sf
	}
	if v := r.URL.Query().Get("extended"); v != "" {
		ext, err := strconv.ParseBool(v)
		if err != nil {
			return key, errors.New("extended must be a boolean")
		}
		key.extended = ext
	}
	return key, nil
}

// handleSnapshotGet exports the shared cache of the pooled session for the
// requested catalog key. 404 snapshot_missing when no session is pooled
// for it: a cold server has no warmth to hand out, and saying so lets a
// joining replica fall back to a cold start instead of importing an empty
// snapshot it would mistake for warmth.
func (s *Server) handleSnapshotGet(w http.ResponseWriter, r *http.Request) {
	key, err := s.snapshotKeyOf(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, err.Error(), 0)
		return
	}
	sess, release, ok := s.pool.peek(key)
	if !ok {
		writeError(w, http.StatusNotFound, codeSnapshotMissing,
			"no pooled session for catalog "+key.String(), 0)
		return
	}
	defer release()
	enc, err := sess.ExportCache(key.String()).Encode()
	if err != nil {
		writeError(w, http.StatusInternalServerError, codeInternalError, err.Error(), 0)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(enc)
}

// SnapshotImportResponse is the body of a successful PUT
// /v1/cache/snapshot (and what Server.WarmFrom reports).
type SnapshotImportResponse struct {
	// Catalog is the pool key the snapshot warmed.
	Catalog string `json:"catalog"`
	// Entries is how many cache entries the snapshot carried.
	Entries int `json:"entries"`
}

func (s *Server) handleSnapshotPut(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, codeDraining, "server is draining", 5*time.Second)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, defaultMaxSnapshotBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, codeBodyTooLarge, "snapshot too large", 0)
			return
		}
		writeError(w, http.StatusBadRequest, codeBadRequest, "reading snapshot: "+err.Error(), 0)
		return
	}
	res, err := s.warmFrom(body)
	if err != nil {
		s.writeSnapshotError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// writeSnapshotError maps a warm-start failure onto the wire: scope
// problems are 409 snapshot_mismatch (the snapshot is fine, just not for
// this server); everything else about the snapshot itself is a 400.
func (s *Server) writeSnapshotError(w http.ResponseWriter, err error) {
	var se *physical.SnapshotError
	if errors.As(err, &se) && se.Reason == "scope" {
		writeError(w, http.StatusConflict, codeSnapshotMismatch, err.Error(), 0)
		return
	}
	writeError(w, http.StatusBadRequest, codeBadRequest, err.Error(), 0)
}

// WarmFrom warm-starts the server from an encoded cache snapshot (the
// bytes GET /v1/cache/snapshot returns): the snapshot's scope names the
// catalog pool key, whose session is created if needed and fed the
// entries. Every later optimize on that catalog consumes the imported
// oracle values (Telemetry.SharedOracleHits) instead of re-evaluating
// them. It is the programmatic form of PUT /v1/cache/snapshot, used by
// mqoserver's -warm-from flag at startup.
func (s *Server) WarmFrom(data []byte) (*SnapshotImportResponse, error) {
	return s.warmFrom(data)
}

func (s *Server) warmFrom(data []byte) (*SnapshotImportResponse, error) {
	snap, err := physical.DecodeCacheSnapshot(data)
	if err != nil {
		return nil, err
	}
	key, err := parsePoolKey(snap.Scope)
	if err != nil {
		return nil, &physical.SnapshotError{Reason: "scope", Detail: snap.Scope + ": " + err.Error()}
	}
	served := false
	for _, sf := range s.cfg.AllowedSFs {
		if sf == key.sf {
			served = true
		}
	}
	if !served {
		return nil, &physical.SnapshotError{Reason: "scope",
			Detail: "snapshot is for catalog " + key.String() + ", which this server does not serve"}
	}
	sess, release, err := s.pool.acquire(key)
	if err != nil {
		return nil, err
	}
	defer release()
	n, err := sess.ImportCache(snap, key.String())
	if err != nil {
		return nil, err
	}
	return &SnapshotImportResponse{Catalog: key.String(), Entries: n}, nil
}
