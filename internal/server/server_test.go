package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/parser"
	"repro/internal/tpcd"
	"repro/internal/workload"
)

// testSpec is the small deterministic batch the e2e tests optimize.
func testSpec() workload.Spec {
	return workload.Spec{
		Seed:       7,
		Queries:    8,
		Shape:      workload.Mixed,
		FanOut:     4,
		Sharing:    0.5,
		SelectFrac: 0.8,
		AggFrac:    0.5,
	}
}

func postOptimize(t *testing.T, url string, body string, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/optimize", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func decodeResponse(t *testing.T, data []byte) *OptimizeResponse {
	t.Helper()
	var out OptimizeResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("decoding response: %v\n%s", err, data)
	}
	return &out
}

// TestServerOptimizeSpecBitIdentical pins the core serving contract: the
// HTTP round trip returns exactly what a direct Session.Optimize call
// returns for the same spec — same materialization set, bit-identical
// costs (float64s survive the JSON round trip unchanged), same
// deterministic telemetry counters.
func TestServerOptimizeSpecBitIdentical(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	spec := testSpec()
	body, err := json.Marshal(map[string]any{"spec": spec, "strategy": "marginal"})
	if err != nil {
		t.Fatal(err)
	}
	resp, data := postOptimize(t, ts.URL, string(body), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	got := decodeResponse(t, data)

	// The reference: a fresh direct session over the same catalog.
	sess, err := repro.NewSession(tpcd.Catalog(1), cost.Default())
	if err != nil {
		t.Fatal(err)
	}
	want, err := sess.Optimize(context.Background(), workload.MustGenerate(spec),
		repro.WithStrategy(core.MarginalGreedy))
	if err != nil {
		t.Fatal(err)
	}

	if got.Queries != 8 || got.Strategy != "MarginalGreedy" {
		t.Errorf("queries/strategy = %d/%s", got.Queries, got.Strategy)
	}
	if len(got.Materialized) != len(want.Materialized) {
		t.Fatalf("materialized %v, want %v", got.Materialized, want.Materialized)
	}
	for i, g := range want.Materialized {
		if got.Materialized[i] != int(g) {
			t.Fatalf("materialized %v, want %v", got.Materialized, want.Materialized)
		}
	}
	if got.CostMS != want.Cost || got.VolcanoMS != want.VolcanoCost || got.BenefitMS != want.Benefit {
		t.Errorf("costs = (%v, %v, %v), want (%v, %v, %v)",
			got.CostMS, got.VolcanoMS, got.BenefitMS, want.Cost, want.VolcanoCost, want.Benefit)
	}
	if got.Plan.TotalMS != want.Plan.Total {
		t.Errorf("plan total = %v, want %v", got.Plan.TotalMS, want.Plan.Total)
	}
	if len(got.Plan.Steps) != len(want.Plan.Steps) || len(got.Plan.Queries) != len(want.Plan.Queries) {
		t.Errorf("plan shape = %d steps/%d queries, want %d/%d",
			len(got.Plan.Steps), len(got.Plan.Queries), len(want.Plan.Steps), len(want.Plan.Queries))
	}
	tl, wtl := got.Telemetry, want.Telemetry
	if tl.OracleCalls != wtl.OracleCalls || tl.Rounds != wtl.Rounds || tl.Pruned != wtl.Pruned ||
		tl.Stopped != wtl.Stopped {
		t.Errorf("telemetry = %+v, want counters of %+v", tl, wtl)
	}
	if tl.Stopped != repro.StopNone {
		t.Errorf("unbudgeted run stopped: %v", tl.Stopped)
	}
}

// TestServerOptimizeSQL serves a parsed-SQL payload and checks it matches
// the direct parse+optimize path; malformed SQL is a 400, never a crash.
func TestServerOptimizeSQL(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	sql := `SELECT o.orderdate, SUM(l.extendedprice)
	        FROM orders o, lineitem l
	        WHERE o.orderkey = l.orderkey AND o.orderdate < 1100
	        GROUP BY o.orderdate;
	        SELECT o.orderdate, SUM(l.extendedprice)
	        FROM orders o, lineitem l
	        WHERE o.orderkey = l.orderkey AND o.orderdate < 1400
	        GROUP BY o.orderdate;`
	body, err := json.Marshal(map[string]any{"sql": sql, "strategy": "greedy", "plan_text": true})
	if err != nil {
		t.Fatal(err)
	}
	resp, data := postOptimize(t, ts.URL, string(body), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	got := decodeResponse(t, data)

	batch, err := parser.ParseBatch(sql)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := repro.NewSession(tpcd.Catalog(1), cost.Default())
	if err != nil {
		t.Fatal(err)
	}
	want, err := sess.Optimize(context.Background(), batch, repro.WithStrategy(core.Greedy))
	if err != nil {
		t.Fatal(err)
	}
	if got.Queries != 2 || got.CostMS != want.Cost || got.BenefitMS != want.Benefit {
		t.Errorf("sql round trip = %d queries cost %v benefit %v, want 2/%v/%v",
			got.Queries, got.CostMS, got.BenefitMS, want.Cost, want.Benefit)
	}
	if got.PlanText == "" || got.PlanText != want.Plan.String() {
		t.Errorf("plan_text does not match the direct plan rendering")
	}

	// Malformed SQL: 400 with an error body.
	resp, data = postOptimize(t, ts.URL, `{"sql": "SELEKT broken FROM"}`, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed sql status = %d: %s", resp.StatusCode, data)
	}
	// Valid SQL naming an unknown table: also the client's fault.
	resp, data = postOptimize(t, ts.URL, `{"sql": "SELECT x.a FROM nosuchtable x"}`, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown table status = %d: %s", resp.StatusCode, data)
	}
}

// TestServerBadRequests sweeps the 4xx decode/validation surface.
func TestServerBadRequests(t *testing.T) {
	srv := New(Config{MaxQueries: 64})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []struct {
		name string
		body string
	}{
		{"empty", ``},
		{"not json", `hello`},
		{"neither payload", `{}`},
		{"both payloads", `{"sql": "SELECT l.tax FROM lineitem l", "spec": {"queries": 1, "fan_out": 2}}`},
		{"unknown field", `{"sql": "SELECT l.tax FROM lineitem l", "turbo": true}`},
		{"trailing garbage", `{"sql": "SELECT l.tax FROM lineitem l"} {}`},
		{"unknown strategy", `{"sql": "SELECT l.tax FROM lineitem l", "strategy": "exhaustive"}`},
		{"negative parallelism", `{"sql": "SELECT l.tax FROM lineitem l", "parallelism": -1}`},
		{"negative time budget", `{"sql": "SELECT l.tax FROM lineitem l", "time_budget_ms": -5}`},
		{"negative call budget", `{"sql": "SELECT l.tax FROM lineitem l", "oracle_call_budget": -1}`},
		{"bad sf", `{"sql": "SELECT l.tax FROM lineitem l", "sf": -2}`},
		{"bad shape", `{"spec": {"queries": 2, "shape": "donut", "fan_out": 2}}`},
		{"spec unknown field", `{"spec": {"queries": 2, "fan_out": 2, "warp": 9}}`},
		{"spec out of range", `{"spec": {"queries": 0, "fan_out": 2}}`},
		{"spec too many queries", `{"spec": {"queries": 1000, "fan_out": 2}}`},
		{"tenant name with a space", `{"sql": "SELECT l.tax FROM lineitem l", "tenant": "a b"}`},
		{"tenant name too long", `{"sql": "SELECT l.tax FROM lineitem l", "tenant": "` + strings.Repeat("x", 200) + `"}`},
		{"sf outside the allowlist", `{"sql": "SELECT l.tax FROM lineitem l", "sf": 1.001}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, data := postOptimize(t, ts.URL, tc.body, nil)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400: %s", resp.StatusCode, data)
			}
			var eb errorBody
			if err := json.Unmarshal(data, &eb); err != nil || eb.Error == "" {
				t.Fatalf("error body not JSON with an error field: %s", data)
			}
			if eb.Code != codeBadRequest {
				t.Fatalf("error code = %q, want %q", eb.Code, codeBadRequest)
			}
		})
	}

	// Oversized body: 413 with its own stable code.
	big := fmt.Sprintf(`{"sql": %q}`, strings.Repeat("x", 2<<20))
	resp, data := postOptimize(t, ts.URL, big, nil)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body status = %d, want 413", resp.StatusCode)
	}
	var eb errorBody
	if err := json.Unmarshal(data, &eb); err != nil || eb.Code != codeBodyTooLarge {
		t.Fatalf("413 body = %s, want code %s", data, codeBodyTooLarge)
	}
}

// blockingServer wires the preOptimize test hook: admitted requests
// signal on started and then hold their admission slot until gate closes.
func blockingServer(cfg Config) (*Server, chan struct{}, chan struct{}) {
	srv := New(cfg)
	started := make(chan struct{}, 64)
	gate := make(chan struct{})
	srv.preOptimize = func(ctx context.Context, req *OptimizeRequest) {
		started <- struct{}{}
		select {
		case <-gate:
		case <-ctx.Done():
		}
	}
	return srv, started, gate
}

const tinySQL = `{"sql": "SELECT l.tax FROM lineitem l WHERE l.shipdate < 1200"}`

// TestServerQueueFull429: with one slot and a one-deep queue, the third
// concurrent request is rejected with 429 and a Retry-After header while
// the queued one completes once the blocker releases.
func TestServerQueueFull429(t *testing.T) {
	srv, started, gate := blockingServer(Config{
		DefaultTenant: TenantConfig{MaxConcurrent: 1, QueueDepth: 1, QueueWaitMS: 60000},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	type result struct {
		status int
		body   []byte
	}
	results := make(chan result, 2)
	do := func() {
		resp, data := postOptimize(t, ts.URL, tinySQL, nil)
		results <- result{resp.StatusCode, data}
	}
	go do() // occupies the slot, blocks in the hook
	<-started
	go do() // queues
	waitFor(t, func() bool { return srv.Admission().Stats()["default"].Queued == 1 })

	// Third request: queue full, immediate 429.
	resp, data := postOptimize(t, ts.URL, tinySQL, nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow status = %d: %s", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	var eb errorBody
	if err := json.Unmarshal(data, &eb); err != nil || eb.RetryAfterMS <= 0 || eb.Code != codeQueueFull {
		t.Errorf("429 body = %s, want code %s with retry_after_ms", data, codeQueueFull)
	}

	close(gate) // release the blocker; both held requests finish
	for i := 0; i < 2; i++ {
		r := <-results
		if r.status != http.StatusOK {
			t.Fatalf("held request status = %d: %s", r.status, r.body)
		}
	}
	st := srv.Admission().Stats()["default"]
	if st.Admitted != 2 || st.RejectedQueueFull != 1 {
		t.Errorf("tenant stats = %+v", st)
	}
}

// TestServerQueueWaitDeadline503: a queued request that cannot get a slot
// within the tenant's queue-wait deadline is rejected with 503.
func TestServerQueueWaitDeadline503(t *testing.T) {
	srv, started, gate := blockingServer(Config{
		DefaultTenant: TenantConfig{MaxConcurrent: 1, QueueDepth: 4, QueueWaitMS: 50},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	done := make(chan int, 1)
	go func() {
		resp, _ := postOptimize(t, ts.URL, tinySQL, nil)
		done <- resp.StatusCode
	}()
	<-started

	resp, data := postOptimize(t, ts.URL, tinySQL, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("queued status = %d, want 503: %s", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	var eb errorBody
	if err := json.Unmarshal(data, &eb); err != nil || eb.Code != codeQueueTimeout {
		t.Errorf("503 body = %s, want code %s", data, codeQueueTimeout)
	}
	close(gate)
	if st := <-done; st != http.StatusOK {
		t.Fatalf("blocking request status = %d", st)
	}
}

// TestServerQuotaExhaustion429: once a tenant's completed requests have
// spent its cumulative oracle-call quota, the next request is 429.
func TestServerQuotaExhaustion429(t *testing.T) {
	srv := New(Config{
		DefaultTenant: TenantConfig{CallQuota: 1}, // one oracle call, then cut off
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body, _ := json.Marshal(map[string]any{"spec": testSpec()})
	resp, data := postOptimize(t, ts.URL, string(body), map[string]string{"X-Tenant": "meter"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first request status = %d: %s", resp.StatusCode, data)
	}
	if got := decodeResponse(t, data); got.Telemetry.OracleCalls < 1 {
		t.Fatalf("first request spent %d oracle calls, cannot exercise the quota", got.Telemetry.OracleCalls)
	}
	resp, data = postOptimize(t, ts.URL, string(body), map[string]string{"X-Tenant": "meter"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("post-quota status = %d: %s", resp.StatusCode, data)
	}
	if !strings.Contains(string(data), "quota") {
		t.Errorf("rejection does not mention the quota: %s", data)
	}
	var eb errorBody
	if err := json.Unmarshal(data, &eb); err != nil || eb.Code != codeQuotaExhausted {
		t.Errorf("429 body = %s, want code %s", data, codeQuotaExhausted)
	}
	st := srv.Admission().Stats()["meter"]
	if st.RejectedQuota != 1 || st.QuotaSpent < 1 {
		t.Errorf("tenant stats = %+v", st)
	}
	// Other tenants are unaffected.
	resp, data = postOptimize(t, ts.URL, tinySQL, map[string]string{"X-Tenant": "other"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("other tenant status = %d: %s", resp.StatusCode, data)
	}
}

// TestServerCallBudgetZero: an explicit zero oracle-call budget is honored
// (empty materialization set, Stopped = call-budget) and still a 200 — a
// budgeted degradation, not an error.
func TestServerCallBudgetZero(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body, _ := json.Marshal(map[string]any{"spec": testSpec(), "oracle_call_budget": 0})
	resp, data := postOptimize(t, ts.URL, string(body), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, data)
	}
	got := decodeResponse(t, data)
	if len(got.Materialized) != 0 {
		t.Errorf("zero-budget run materialized %v", got.Materialized)
	}
	if got.Telemetry.Stopped.String() != "call-budget" {
		t.Errorf("stopped = %v, want call-budget", got.Telemetry.Stopped)
	}
}

// TestServerClientDisconnectCancels: when the client goes away, the
// request context cancels the optimization between rounds and the handler
// returns promptly, freeing the tenant slot; the interrupted call is
// visible in the session stats.
func TestServerClientDisconnectCancels(t *testing.T) {
	srv := New(Config{DefaultTenant: TenantConfig{MaxConcurrent: 1}})
	entered := make(chan struct{}, 1)
	firstReq := make(chan struct{}, 1)
	firstReq <- struct{}{}
	srv.preOptimize = func(ctx context.Context, req *OptimizeRequest) {
		select {
		case <-firstReq: // only the request under test is held
			entered <- struct{}{}
			<-ctx.Done() // hold until the client disconnect propagates
		default:
		}
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body, _ := json.Marshal(map[string]any{"spec": testSpec()})
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/optimize", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if resp != nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	<-entered // admitted and inside the handler
	cancel()  // client disconnects

	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("client error = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("client call did not return after cancel")
	}

	// The handler must finish promptly and release the slot: a fresh
	// request on the same single-slot tenant succeeds without queueing
	// anywhere near the 5s default deadline.
	waitFor(t, func() bool { return srv.Admission().Stats()["default"].Active == 0 })
	resp, data := postOptimize(t, ts.URL, tinySQL, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-cancel request status = %d: %s", resp.StatusCode, data)
	}
	// The cancelled run was admitted, ran against the session with a dead
	// context, and was recorded as interrupted (StopCancelled) — telemetry
	// is charged exactly once even when the client is gone.
	waitFor(t, func() bool {
		for _, p := range srv.pool.stats() {
			if p.Session.Interrupted >= 1 {
				return true
			}
		}
		return false
	})
}

// TestServerGracefulDrain: draining rejects new work with 503 (and flips
// /healthz) while admitted in-flight requests run to completion.
func TestServerGracefulDrain(t *testing.T) {
	srv, started, gate := blockingServer(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	inflight := make(chan int, 1)
	go func() {
		resp, _ := postOptimize(t, ts.URL, tinySQL, nil)
		inflight <- resp.StatusCode
	}()
	<-started

	srv.Drain()
	resp, data := postOptimize(t, ts.URL, tinySQL, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining optimize status = %d: %s", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("draining rejection without Retry-After")
	}
	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining healthz = %d, want 503", hz.StatusCode)
	}

	close(gate) // in-flight request finishes despite the drain
	if st := <-inflight; st != http.StatusOK {
		t.Fatalf("in-flight request during drain = %d, want 200", st)
	}
}

// TestServerHealthzAndStats: the health and stats surfaces report the
// serving state, tenant counters and pooled-session telemetry.
func TestServerHealthzAndStats(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", hz.StatusCode)
	}

	if resp, data := postOptimize(t, ts.URL, tinySQL, map[string]string{"X-Tenant": "acme"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("optimize = %d: %s", resp.StatusCode, data)
	}

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Draining {
		t.Error("stats report draining on a serving instance")
	}
	acme, ok := stats.Tenants["acme"]
	if !ok || acme.Admitted != 1 || acme.Completed != 1 {
		t.Errorf("tenant stats = %+v (present %v)", acme, ok)
	}
	if len(stats.Pool) != 1 || stats.Pool[0].Session.Batches != 1 || stats.Pool[0].SF != 1 {
		t.Errorf("pool stats = %+v", stats.Pool)
	}

	// GET on the optimize route is a 405 from the method-aware mux.
	r405, err := http.Get(ts.URL + "/v1/optimize")
	if err != nil {
		t.Fatal(err)
	}
	r405.Body.Close()
	if r405.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/optimize = %d, want 405", r405.StatusCode)
	}
}

// TestServerStrictTenants403: strict mode turns unknown tenants away at
// the door.
func TestServerStrictTenants403(t *testing.T) {
	srv := New(Config{
		Tenants:       map[string]TenantConfig{"known": {}},
		StrictTenants: true,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, data := postOptimize(t, ts.URL, tinySQL, map[string]string{"X-Tenant": "stranger"})
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("stranger status = %d: %s", resp.StatusCode, data)
	}
	var eb errorBody
	if err := json.Unmarshal(data, &eb); err != nil || eb.Code != codeUnknownTenant {
		t.Errorf("403 body = %s, want code %s", data, codeUnknownTenant)
	}
	resp, data = postOptimize(t, ts.URL, tinySQL, map[string]string{"X-Tenant": "known"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("known tenant status = %d: %s", resp.StatusCode, data)
	}
}

// TestServerSessionPoolSharing: requests naming the same catalog share one
// session (warm shared cache), different catalogs get their own.
func TestServerSessionPoolSharing(t *testing.T) {
	srv := New(Config{PoolSize: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for i := 0; i < 2; i++ {
		if resp, data := postOptimize(t, ts.URL, tinySQL, nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d = %d: %s", i, resp.StatusCode, data)
		}
	}
	if resp, data := postOptimize(t, ts.URL, `{"sql": "SELECT l.tax FROM lineitem l WHERE l.shipdate < 1200", "sf": 100}`, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("sf=100 request = %d: %s", resp.StatusCode, data)
	}
	ps := srv.pool.stats()
	if len(ps) != 2 {
		t.Fatalf("pool has %d entries, want 2: %+v", len(ps), ps)
	}
	var sf1Batches int
	for _, p := range ps {
		if p.SF == 1 {
			sf1Batches = p.Session.Batches
		}
	}
	if sf1Batches != 2 {
		t.Errorf("sf=1 session served %d batches, want 2 (pool sharing broken)", sf1Batches)
	}
}
