package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestServerRaceStress hammers one server with N tenants × M concurrent
// workers through deliberately small queues, then audits telemetry
// conservation: every 200 response carries its run's telemetry exactly
// once, rejected requests carry none, and the aggregate Session.Stats()
// of the pooled session equals the sum over the accepted responses —
// nothing lost, nothing double-counted. Run it under -race; it is the
// concurrency audit of the serving path.
func TestServerRaceStress(t *testing.T) {
	const (
		tenants   = 3
		workers   = 6 // concurrent workers per tenant — exceeds slots+queue
		perWorker = 4 // requests per worker
	)
	srv := New(Config{
		// Small slots and queues so contention queues (and may reject —
		// both outcomes are conserved below), with a queue wait long
		// enough that accepted work is not flaky under -race slowdowns.
		DefaultTenant: TenantConfig{MaxConcurrent: 2, QueueDepth: 2, QueueWaitMS: 30000},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// A tiny two-query sharing pair keeps each optimize cheap while still
	// exercising the full DAG-build → greedy → extract path.
	body := `{"sql": "SELECT l.tax FROM lineitem l WHERE l.shipdate < 1200; SELECT l.tax FROM lineitem l WHERE l.shipdate < 1300", "strategy": "greedy"}`

	type tally struct {
		ok, rejected          int
		oracleCalls, bcCalls  int
		cacheHits, sharedHits int
		rounds, interrupted   int
	}
	var (
		mu  sync.Mutex
		sum tally
	)
	var wg sync.WaitGroup
	for ti := 0; ti < tenants; ti++ {
		tenant := fmt.Sprintf("tenant-%d", ti)
		for wi := 0; wi < workers; wi++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				var local tally
				for i := 0; i < perWorker; i++ {
					req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/optimize", strings.NewReader(body))
					if err != nil {
						t.Error(err)
						return
					}
					req.Header.Set("X-Tenant", tenant)
					resp, err := http.DefaultClient.Do(req)
					if err != nil {
						t.Error(err)
						return
					}
					var or OptimizeResponse
					dec := json.NewDecoder(resp.Body)
					switch resp.StatusCode {
					case http.StatusOK:
						if err := dec.Decode(&or); err != nil {
							t.Errorf("decoding 200 body: %v", err)
							resp.Body.Close()
							return
						}
						local.ok++
						local.oracleCalls += or.Telemetry.OracleCalls
						local.bcCalls += or.Telemetry.BCCalls
						local.cacheHits += or.Telemetry.CacheHits
						local.sharedHits += or.Telemetry.SharedHits
						local.rounds += or.Telemetry.Rounds
						if or.Telemetry.Stopped.String() != "none" {
							local.interrupted++
						}
					case http.StatusTooManyRequests, http.StatusServiceUnavailable:
						local.rejected++
					default:
						t.Errorf("unexpected status %d", resp.StatusCode)
					}
					resp.Body.Close()
				}
				mu.Lock()
				sum.ok += local.ok
				sum.rejected += local.rejected
				sum.oracleCalls += local.oracleCalls
				sum.bcCalls += local.bcCalls
				sum.cacheHits += local.cacheHits
				sum.sharedHits += local.sharedHits
				sum.rounds += local.rounds
				sum.interrupted += local.interrupted
				mu.Unlock()
			}()
		}
	}
	wg.Wait()

	total := tenants * workers * perWorker
	if sum.ok+sum.rejected != total {
		t.Fatalf("accounted %d+%d responses, sent %d", sum.ok, sum.rejected, total)
	}
	if sum.ok == 0 {
		t.Fatal("every request was rejected; stress parameters are wrong")
	}
	t.Logf("stress: %d ok, %d rejected, %d oracle calls, %d shared hits",
		sum.ok, sum.rejected, sum.oracleCalls, sum.sharedHits)

	// Telemetry conservation: the pooled session's aggregate must equal
	// the sum over accepted responses, field by field.
	ps := srv.pool.stats()
	if len(ps) != 1 {
		t.Fatalf("pool has %d sessions, want 1", len(ps))
	}
	st := ps[0].Session
	if st.Batches != sum.ok {
		t.Errorf("session batches = %d, accepted responses = %d", st.Batches, sum.ok)
	}
	if st.OracleCalls != sum.oracleCalls {
		t.Errorf("session oracle calls = %d, response sum = %d", st.OracleCalls, sum.oracleCalls)
	}
	if st.BCCalls != sum.bcCalls {
		t.Errorf("session bc calls = %d, response sum = %d", st.BCCalls, sum.bcCalls)
	}
	if st.CacheHits != sum.cacheHits {
		t.Errorf("session cache hits = %d, response sum = %d", st.CacheHits, sum.cacheHits)
	}
	if st.SharedHits != sum.sharedHits {
		t.Errorf("session shared hits = %d, response sum = %d", st.SharedHits, sum.sharedHits)
	}
	if st.Rounds != sum.rounds {
		t.Errorf("session rounds = %d, response sum = %d", st.Rounds, sum.rounds)
	}
	if st.Interrupted != sum.interrupted {
		t.Errorf("session interrupted = %d, response sum = %d", st.Interrupted, sum.interrupted)
	}

	// Admission conservation per tenant: admitted = completed, and
	// admitted + rejections = requests sent for that tenant.
	adm := srv.Admission().Stats()
	for ti := 0; ti < tenants; ti++ {
		name := fmt.Sprintf("tenant-%d", ti)
		a := adm[name]
		if a.Active != 0 || a.Queued != 0 {
			t.Errorf("%s: %d active, %d queued after drain", name, a.Active, a.Queued)
		}
		if a.Admitted != a.Completed {
			t.Errorf("%s: admitted %d != completed %d", name, a.Admitted, a.Completed)
		}
		sent := int64(workers * perWorker)
		if got := a.Admitted + a.RejectedQueueFull + a.QueueTimeouts; got != sent {
			t.Errorf("%s: admitted+rejected = %d, sent %d (%+v)", name, got, sent, a)
		}
	}
}
