package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// benchPost fires one optimize request and returns the response's
// oracle-call count; any non-200 fails the benchmark.
func benchPost(b *testing.B, url, body string) int {
	req, err := http.NewRequest(http.MethodPost, url+"/v1/optimize", strings.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("status %d", resp.StatusCode)
	}
	var or OptimizeResponse
	if err := json.NewDecoder(resp.Body).Decode(&or); err != nil {
		b.Fatal(err)
	}
	return or.Telemetry.OracleCalls
}

// BenchmarkServerSolo is the unbatched reference: per iteration, 8
// identical requests each served by its own fresh server, so no session
// cache and no batching flatter the number. bc_calls is the deterministic
// total oracle-call spend of the 8 — the denominator of the batching
// gate.
func BenchmarkServerSolo(b *testing.B) {
	const clients = 8
	total := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for c := 0; c < clients; c++ {
			srv := New(Config{
				DefaultTenant: TenantConfig{MaxConcurrent: 2 * clients, QueueDepth: 32, QueueWaitMS: 60000},
			})
			ts := httptest.NewServer(srv.Handler())
			total += benchPost(b, ts.URL, batchSpecBody)
			ts.Close()
		}
	}
	b.ReportMetric(float64(total)/float64(b.N), "bc_calls")
}

// BenchmarkServerBatched serves n identical concurrent clients through
// the continuous-batching scheduler: the lane flushes on exactly n
// members (the deadline clock never fires), the members coalesce to one
// group, and one shared run answers everyone. bc_calls is the
// deterministic total oracle-call spend per flush — the committed
// baseline pins it at ≥2x below BenchmarkServerSolo's, the batching
// acceptance gate.
func BenchmarkServerBatched(b *testing.B) {
	for _, clients := range []int{2, 8} {
		b.Run(fmt.Sprintf("%dclients", clients), func(b *testing.B) {
			total := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				srv := New(Config{
					DefaultTenant: TenantConfig{MaxConcurrent: 2 * clients, QueueDepth: 32, QueueWaitMS: 60000},
					Batch:         BatchConfig{Enabled: true, MaxRequests: clients, MaxDelayMS: 60000},
				})
				srv.batcher.newTimer = func(time.Duration) (<-chan time.Time, func() bool) {
					return make(chan time.Time), func() bool { return true }
				}
				ts := httptest.NewServer(srv.Handler())
				var (
					mu    sync.Mutex
					calls int
				)
				var wg sync.WaitGroup
				for c := 0; c < clients; c++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						n := benchPost(b, ts.URL, batchSpecBody)
						mu.Lock()
						calls += n
						mu.Unlock()
					}()
				}
				wg.Wait()
				ts.Close()
				total += calls
			}
			b.ReportMetric(float64(total)/float64(b.N), "bc_calls")
		})
	}
}
