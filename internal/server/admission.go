package server

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// TenantConfig bounds one tenant's use of the service. The zero value
// means "all defaults"; normalize fills them in. Durations travel as
// milliseconds so the config is plain JSON (the mqoserver -tenants table
// is a map of these).
type TenantConfig struct {
	// MaxConcurrent is the number of requests the tenant may have running
	// at once (default 4).
	MaxConcurrent int `json:"max_concurrent,omitempty"`
	// QueueDepth bounds the tenant's wait queue; a request arriving with
	// the queue full is rejected with 429. Zero means the default (16); a
	// negative value disables queueing entirely, so a tenant with all
	// slots busy is rejected immediately.
	QueueDepth int `json:"queue_depth,omitempty"`
	// QueueWaitMS is the longest a request may wait for a slot before
	// being rejected with 503 (default 5000).
	QueueWaitMS int64 `json:"queue_wait_ms,omitempty"`
	// TimeBudgetMS caps each admitted request's optimization wall clock
	// (0 = none); requests asking for more are clamped to it.
	TimeBudgetMS int64 `json:"time_budget_ms,omitempty"`
	// CallBudget caps each admitted request's oracle calls (0 = none);
	// requests asking for more are clamped to it.
	CallBudget int `json:"call_budget,omitempty"`
	// CallQuota is the tenant's oracle-call allowance (0 = unlimited).
	// Completed requests are charged their actual Telemetry.OracleCalls
	// against a token bucket of this size (or QuotaBurst, when set); once
	// the bucket is empty new requests are rejected with 429 until tokens
	// refill (RefillPerSec) or an operator resets the bucket (ResetQuota
	// / POST /v1/tenants/{name}/reset).
	CallQuota int64 `json:"call_quota,omitempty"`
	// RefillPerSec refills the quota bucket continuously at this many
	// oracle-call tokens per second (0 = no refill: the legacy
	// manual-reset-only quota). 429 Retry-After reflects the actual time
	// until a token is available.
	RefillPerSec float64 `json:"refill_per_sec,omitempty"`
	// QuotaBurst caps the bucket (0 = CallQuota): how much unused quota a
	// tenant may accumulate and spend in a burst.
	QuotaBurst int64 `json:"quota_burst,omitempty"`
	// Weight is the tenant's deficit-round-robin share of the scheduler's
	// worker slots (default 1): with slots contended, tenants receive
	// service in proportion to their weights.
	Weight int `json:"weight,omitempty"`
	// DeadlineMS is the tenant's default relative deadline (0 = none).
	// A request with a deadline is scheduled earliest-deadline-first
	// within its tenant, may cut ahead of other tenants within its DRR
	// deficit, and may preempt a running preemptible request whose
	// deadline is later or absent.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// Defaults applied by normalize.
const (
	defaultMaxConcurrent = 4
	defaultQueueDepth    = 16
	defaultQueueWaitMS   = 5000
)

func (c TenantConfig) normalize() TenantConfig {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = defaultMaxConcurrent
	}
	if c.QueueDepth < 0 {
		c.QueueDepth = 0 // no queueing: reject as soon as slots are full
	} else if c.QueueDepth == 0 {
		c.QueueDepth = defaultQueueDepth
	}
	if c.QueueWaitMS <= 0 {
		c.QueueWaitMS = defaultQueueWaitMS
	}
	if c.Weight <= 0 {
		c.Weight = 1
	}
	return c
}

// Validate rejects scheduler fields no normalization can repair: negative
// weights or deadlines, and refill rates or bursts that are negative,
// NaN, or infinite. (QueueDepth's negative form is meaningful — "no
// queueing" — so the legacy fields stay normalize-only.)
func (c TenantConfig) Validate() error {
	if c.Weight < 0 {
		return fmt.Errorf("tenant config: negative weight %d", c.Weight)
	}
	if c.RefillPerSec < 0 || math.IsNaN(c.RefillPerSec) || math.IsInf(c.RefillPerSec, 0) {
		return fmt.Errorf("tenant config: refill_per_sec %v is not a finite non-negative rate", c.RefillPerSec)
	}
	if c.QuotaBurst < 0 {
		return fmt.Errorf("tenant config: negative quota_burst %d", c.QuotaBurst)
	}
	if c.DeadlineMS < 0 {
		return fmt.Errorf("tenant config: negative deadline_ms %d", c.DeadlineMS)
	}
	if c.CallQuota < 0 {
		return fmt.Errorf("tenant config: negative call_quota %d", c.CallQuota)
	}
	return nil
}

func (c TenantConfig) queueWait() time.Duration {
	return time.Duration(c.QueueWaitMS) * time.Millisecond
}

// weight is the normalized DRR weight.
func (c TenantConfig) weight() int {
	if c.Weight <= 0 {
		return 1
	}
	return c.Weight
}

// bucketCap is the quota bucket's capacity in oracle-call tokens.
func (c TenantConfig) bucketCap() float64 {
	if c.QuotaBurst > 0 {
		return float64(c.QuotaBurst)
	}
	return float64(c.CallQuota)
}

// TenantStats are one tenant's admission counters, served by /v1/stats.
// Admitted = Completed + Active once the tenant is idle; Rejected* and
// QueueTimeouts count requests that never reached a session.
type TenantStats struct {
	Admitted          int64 `json:"admitted"`
	Completed         int64 `json:"completed"`
	RejectedQueueFull int64 `json:"rejected_queue_full"`
	RejectedQuota     int64 `json:"rejected_quota"`
	QueueTimeouts     int64 `json:"queue_timeouts"`
	Cancelled         int64 `json:"cancelled_in_queue"`
	Active            int   `json:"active"`
	Queued            int   `json:"queued"`
	QuotaSpent        int64 `json:"quota_spent"`
	QuotaLimit        int64 `json:"quota_limit,omitempty"`
	// Preemptions counts this tenant's runs suspended at a round boundary
	// to serve a nearer-deadline request (each was transparently resumed
	// or returned its checkpoint).
	Preemptions int64 `json:"preemptions,omitempty"`
	// Weight is the tenant's effective DRR weight.
	Weight int `json:"weight,omitempty"`
	// QuotaRemaining is the token bucket's current level (refilled to the
	// snapshot instant); negative after an overspend.
	QuotaRemaining float64 `json:"quota_remaining,omitempty"`
	// RefillPerSec echoes the tenant's refill rate.
	RefillPerSec float64 `json:"refill_per_sec,omitempty"`
	// NextAdmitMS is the time until a whole token is available when the
	// bucket is empty and refilling (0 when admittable now or when only a
	// manual reset can help).
	NextAdmitMS int64 `json:"next_admit_ms,omitempty"`
}

// Admission reasons a request can be turned away with.
var (
	// ErrQueueFull: the tenant's wait queue is at QueueDepth (429).
	ErrQueueFull = errors.New("admission: queue full")
	// ErrQueueTimeout: the queue wait exceeded QueueWaitMS (503).
	ErrQueueTimeout = errors.New("admission: queue-wait deadline exceeded")
	// ErrQuotaExhausted: the tenant's oracle-call quota is spent (429).
	ErrQuotaExhausted = errors.New("admission: oracle-call quota exhausted")
	// ErrCancelled: the client went away while queued.
	ErrCancelled = errors.New("admission: cancelled while queued")
	// ErrUnknownTenant: strict mode and the tenant is not in the table (403).
	ErrUnknownTenant = errors.New("admission: unknown tenant")
	// ErrTenantOverflow: the controller is tracking its maximum number of
	// distinct tenants and refuses to allocate state for new names (429).
	ErrTenantOverflow = errors.New("admission: too many distinct tenants")
)

// waiter outcomes, guarded by the scheduler mutex.
const (
	waiterPending  = iota // still queued
	waiterGranted         // the dispatcher granted a slot
	waiterQuotaCut        // rejected in the queue: the tenant quota is spent
)

// waiter is one queued request (or one suspended run waiting to resume).
// outcome is guarded by the scheduler mutex: the dispatcher either grants
// a slot (waiterGranted) or, once a non-refilling quota is spent, cuts
// the whole queue (waiterQuotaCut), closing ch either way. A waiter whose
// timer or context fires concurrently re-checks the outcome under the
// mutex (settle) and, if it was granted in that same instant, is admitted
// — the grant wins the race, so the slot is used rather than leaked.
type waiter struct {
	ch           chan struct{}
	outcome      int
	t            *tenant
	g            *Grant
	seq          uint64    // global arrival order (a resumption keeps its original)
	cost         float64   // DRR charge, in query-count units
	deadline     time.Time // zero unless hasDeadline
	hasDeadline  bool
	resume       bool // a preempted run re-entering; not a new admission
	preemptAsked bool // this waiter already claimed its one preemption victim
}

// tenant is the runtime admission state of one tenant; all mutable fields
// are guarded by the controller's scheduler mutex.
type tenant struct {
	name string
	cfg  TenantConfig
	// retrySeq numbers this tenant's rejections, advancing its
	// deterministic Retry-After jitter sequence (see RetryAfter).
	retrySeq atomic.Uint64

	active  int
	queue   []*waiter // EDF-then-FIFO under DRR; pure arrival order under FIFO
	deficit float64   // DRR deficit counter, in cost units
	inRing  bool

	// Token-bucket quota state, lazily initialized to a full bucket on
	// first inspection so directly-constructed tenants (tests) work.
	bktInit    bool
	tokens     float64
	lastRefill time.Time

	quotaSpent int64
	stats      TenantStats
}

// maxDynamicTenants bounds how many distinct tenant names a non-strict
// controller will lazily allocate state for, so attacker-chosen tenant
// names cannot grow the map (and the /v1/stats payload) without bound.
// Pre-declared tenants don't count against it.
const maxDynamicTenants = 4096

// Admission is the scheduling admission controller: per-tenant
// concurrency limits and bounded wait queues as before, plus — when a
// SchedConfig gives it shared worker slots — deficit-round-robin
// weighted-fair dispatch, earliest-deadline-first cut-ahead, token-bucket
// quota refill, and deadline-aware preemption of running grants (see
// sched.go). All methods are safe for concurrent use; one mutex guards
// the whole scheduler state, so dispatch decisions are serialized.
type Admission struct {
	mu       sync.Mutex
	tenants  map[string]*tenant
	declared int // tenants pre-declared at construction
	defCfg   TenantConfig
	strict   bool
	sched    SchedConfig

	running  int       // grants currently holding a shared slot
	seq      uint64    // global arrival counter
	ring     []*tenant // tenants with queued waiters, DRR visit order
	ringIdx  int
	topped   bool     // ring[ringIdx] already got this visit's DRR replenish
	activeG  []*Grant // grants currently holding a slot (preemption victims)
	preempts int64    // total preemptions issued

	// newTimer is the queue-wait clock hook; tests swap it for a manual
	// trigger so timeout/handoff races are driven deterministically.
	newTimer func(time.Duration) (<-chan time.Time, func() bool)
	// rand64 is the Retry-After jitter RNG hook (splitmix64 by default);
	// tests swap it to pin or remove the jitter.
	rand64 func(uint64) uint64
	// now is the token-bucket clock hook; tests swap it for a manual
	// clock so refill accounting is deterministic.
	now func() time.Time
	// retrySeq numbers rejections of tenants with no allocated state, so
	// their jitter sequence advances without growing the tenant map.
	retrySeq atomic.Uint64
}

// NewAdmission builds a controller with no shared slots: only the
// per-tenant limits bind, which is the legacy per-tenant FIFO behavior.
// def is the config for tenants not in cfgs (unless strict, in which case
// they are rejected); cfgs pre-declares named tenants.
func NewAdmission(def TenantConfig, cfgs map[string]TenantConfig, strict bool) *Admission {
	return NewScheduler(def, cfgs, strict, SchedConfig{})
}

// NewScheduler builds a controller with a scheduling policy over a shared
// worker-slot pool (see SchedConfig).
func NewScheduler(def TenantConfig, cfgs map[string]TenantConfig, strict bool, sc SchedConfig) *Admission {
	a := &Admission{
		tenants:  make(map[string]*tenant, len(cfgs)),
		declared: len(cfgs),
		defCfg:   def.normalize(),
		strict:   strict,
		sched:    sc.normalize(),
		newTimer: func(d time.Duration) (<-chan time.Time, func() bool) {
			t := time.NewTimer(d)
			return t.C, t.Stop
		},
		rand64: splitmix64,
		now:    time.Now,
	}
	for name, c := range cfgs {
		a.tenants[name] = &tenant{name: name, cfg: c.normalize()}
	}
	return a
}

// tenantLocked resolves (or lazily creates) a tenant's state; the caller
// holds a.mu.
func (a *Admission) tenantLocked(name string) (*tenant, error) {
	t, ok := a.tenants[name]
	if !ok {
		if a.strict {
			return nil, ErrUnknownTenant
		}
		if len(a.tenants)-a.declared >= maxDynamicTenants {
			return nil, ErrTenantOverflow
		}
		t = &tenant{name: name, cfg: a.defCfg}
		a.tenants[name] = t
	}
	return t, nil
}

// Config reports the effective limits of a tenant: its declared (or
// lazily created) config, or the controller default for names it has
// never seen.
func (a *Admission) Config(name string) TenantConfig {
	a.mu.Lock()
	defer a.mu.Unlock()
	if t, ok := a.tenants[name]; ok {
		return t.cfg
	}
	return a.defCfg
}

// refillLocked brings a tenant's quota bucket current: lazily filled to
// capacity on first touch, then refilled at RefillPerSec up to capacity.
func (a *Admission) refillLocked(t *tenant) {
	now := a.now()
	if !t.bktInit {
		t.bktInit = true
		t.tokens = t.cfg.bucketCap()
		t.lastRefill = now
		return
	}
	if t.cfg.RefillPerSec > 0 {
		if dt := now.Sub(t.lastRefill); dt > 0 {
			t.tokens = math.Min(t.cfg.bucketCap(), t.tokens+t.cfg.RefillPerSec*dt.Seconds())
		}
	}
	t.lastRefill = now
}

// nextAdmitLocked is the time until the bucket holds a whole token (zero
// when it already does, or when only a manual reset can help).
func (a *Admission) nextAdmitLocked(t *tenant) time.Duration {
	if t.tokens >= 1 || t.cfg.RefillPerSec <= 0 {
		return 0
	}
	return time.Duration((1 - t.tokens) / t.cfg.RefillPerSec * float64(time.Second))
}

// Acquire admits one request for the named tenant, blocking in the
// tenant's queue when no slot is available. On success it returns a
// release function the caller MUST invoke exactly once with the request's
// oracle-call spend (0 for requests that never ran); on failure it
// returns one of the Err* reasons. ctx aborts the queue wait. It is the
// weight-1, cost-1, no-deadline form of AcquireGrant.
func (a *Admission) Acquire(ctx context.Context, name string) (release func(oracleCalls int), err error) {
	g, err := a.AcquireGrant(ctx, AdmitRequest{Tenant: name})
	if err != nil {
		return nil, err
	}
	return g.Release, nil
}

// AdmitRequest describes one request to the scheduler.
type AdmitRequest struct {
	// Tenant is the requesting tenant's name.
	Tenant string
	// Cost is the request's work estimate in query-count units (min 1):
	// the DRR deficit charge, so a 64-query bulk request draws 64× the
	// deficit of an interactive single query.
	Cost int
	// Deadline is the request's relative SLO deadline; 0 falls back to
	// the tenant's DeadlineMS (and to "none" when that is 0 too).
	Deadline time.Duration
}

// AcquireGrant admits one request under the scheduling policy, blocking
// in the tenant's queue when no slot is available. The returned Grant
// must be Released exactly once with the request's total oracle-call
// spend; preemptible grants additionally expose PreemptRequested/Yield
// (see sched.go). ctx aborts the queue wait.
func (a *Admission) AcquireGrant(ctx context.Context, req AdmitRequest) (*Grant, error) {
	a.mu.Lock()
	t, err := a.tenantLocked(req.Tenant)
	if err != nil {
		a.mu.Unlock()
		return nil, err
	}
	if t.cfg.CallQuota > 0 {
		a.refillLocked(t)
		if t.tokens <= 0 {
			t.stats.RejectedQuota++
			a.mu.Unlock()
			return nil, ErrQuotaExhausted
		}
	}
	g := &Grant{a: a, t: t, cost: math.Max(1, float64(req.Cost)), seq: a.nextSeqLocked()}
	rel := req.Deadline
	if rel == 0 && t.cfg.DeadlineMS > 0 {
		rel = time.Duration(t.cfg.DeadlineMS) * time.Millisecond
	}
	if rel > 0 {
		g.deadline = a.now().Add(rel)
		g.hasDeadline = true
	}
	w := g.newWaiter(false)
	a.enqueueLocked(w)
	a.dispatchLocked()
	if w.outcome == waiterGranted {
		t.stats.Admitted++
		a.mu.Unlock()
		return g, nil
	}
	if len(t.queue)-1 >= t.cfg.QueueDepth { // waiters besides w
		a.removeWaiterLocked(w)
		t.stats.RejectedQueueFull++
		a.mu.Unlock()
		return nil, ErrQueueFull
	}
	a.maybePreemptLocked(w)
	a.mu.Unlock()

	timerC, stopTimer := a.newTimer(t.cfg.queueWait())
	defer stopTimer()
	var serr error
	select {
	case <-w.ch:
		serr = a.settle(w, nil, nil)
	case <-timerC:
		serr = a.settle(w, &t.stats.QueueTimeouts, ErrQueueTimeout)
	case <-ctx.Done():
		serr = a.settle(w, &t.stats.Cancelled, ErrCancelled)
	}
	if serr != nil {
		return nil, serr
	}
	return g, nil
}

func (a *Admission) nextSeqLocked() uint64 {
	a.seq++
	return a.seq
}

// settle resolves a waiter that woke up (slot granted, queue cut on quota
// exhaustion, timeout, or cancellation — the races between them are
// decided here, under the scheduler mutex). A still-pending waiter is
// removed from the queue and rejected with reason; a granted one is
// admitted even if its timer fired in the same instant (the grant won the
// race); a quota-cut one reports ErrQuotaExhausted, already counted at
// the cut.
func (a *Admission) settle(w *waiter, counter *int64, reason error) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	switch w.outcome {
	case waiterGranted:
		if !w.resume {
			w.t.stats.Admitted++
		}
		return nil
	case waiterQuotaCut:
		return ErrQuotaExhausted
	default: // still queued: remove and reject with the caller's reason.
		// Unreachable from the ch-closed wakeup (an outcome is always set
		// before ch closes), so counter/reason are non-nil here.
		a.removeWaiterLocked(w)
		if counter != nil {
			*counter++
		}
		if reason == nil {
			reason = ErrCancelled
		}
		return reason
	}
}

// ResetQuota refills the named tenant's quota bucket to capacity and
// zeroes its recorded spend. It reports false for tenants the controller
// has never seen.
func (a *Admission) ResetQuota(name string) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	t, ok := a.tenants[name]
	if !ok {
		return false
	}
	t.quotaSpent = 0
	t.bktInit = true
	t.tokens = t.cfg.bucketCap()
	t.lastRefill = a.now()
	return true
}

// Preemptions reports the total preemptions the scheduler has issued.
func (a *Admission) Preemptions() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.preempts
}

// Stats snapshots every tenant's counters, keyed by tenant name.
func (a *Admission) Stats() map[string]TenantStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]TenantStats, len(a.tenants))
	for _, t := range a.tenants {
		s := t.stats
		s.Active = t.active
		s.Queued = len(t.queue)
		s.QuotaSpent = t.quotaSpent
		s.QuotaLimit = t.cfg.CallQuota
		s.Weight = t.cfg.weight()
		s.RefillPerSec = t.cfg.RefillPerSec
		if t.cfg.CallQuota > 0 {
			a.refillLocked(t)
			s.QuotaRemaining = t.tokens
			s.NextAdmitMS = int64(math.Ceil(float64(a.nextAdmitLocked(t)) / float64(time.Millisecond)))
		}
		out[t.name] = s
	}
	return out
}

// RetryAfter suggests how long a rejected request should back off. Quota
// exhaustion with a refill rate answers the exact time until a token is
// available — the bucket is deterministic, so the client returns exactly
// when it can be served. Otherwise: the tenant's queue-wait deadline for
// congestion, a minute for manual-reset quota — jittered
// deterministically into [base/2, base] per tenant. The jitter spreads
// one tenant's herd of simultaneous rejections over the window instead of
// re-admitting it as a thundering spike, and it is a pure function of
// (tenant, rejection ordinal): the k-th rejection of a tenant always
// backs off by the same amount, so tests — and the router's retry budget
// accounting — can predict the exact sequence.
func (a *Admission) RetryAfter(name string, reason error) time.Duration {
	cfg := a.defCfg
	var seq uint64
	a.mu.Lock()
	if t, ok := a.tenants[name]; ok {
		cfg = t.cfg
		if errors.Is(reason, ErrQuotaExhausted) && t.cfg.RefillPerSec > 0 {
			a.refillLocked(t)
			d := a.nextAdmitLocked(t)
			a.mu.Unlock()
			if d < time.Millisecond {
				d = time.Millisecond
			}
			return d
		}
		seq = t.retrySeq.Add(1)
	} else {
		seq = a.retrySeq.Add(1)
	}
	a.mu.Unlock()
	base := cfg.queueWait()
	if errors.Is(reason, ErrQuotaExhausted) {
		base = time.Minute
	}
	return jitterBackoff(a.rand64, name, seq, base)
}

// jitterBackoff maps (tenant, ordinal) onto [base/2, base] through the
// RNG: rand64 over an FNV-1a tenant seed mixed with the ordinal. rand64 is
// a hook (splitmix64 by default) so tests can pin the spread.
func jitterBackoff(rand64 func(uint64) uint64, name string, seq uint64, base time.Duration) time.Duration {
	if base <= 0 {
		return 0
	}
	seed := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		seed ^= uint64(name[i])
		seed *= 1099511628211
	}
	r := rand64(seed + seq*0x9e3779b97f4a7c15)
	off := time.Duration(r % (uint64(base)/2 + 1))
	return base - off
}

// splitmix64 is the default jitter RNG: a tiny, stateless, well-mixed
// permutation of uint64, so equal inputs give equal jitter on every
// replica.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
