package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// TenantConfig bounds one tenant's use of the service. The zero value
// means "all defaults"; normalize fills them in. Durations travel as
// milliseconds so the config is plain JSON (the mqoserver -tenants table
// is a map of these).
type TenantConfig struct {
	// MaxConcurrent is the number of requests the tenant may have running
	// at once (default 4).
	MaxConcurrent int `json:"max_concurrent,omitempty"`
	// QueueDepth bounds the tenant's FIFO wait queue; a request arriving
	// with the queue full is rejected with 429. Zero means the default
	// (16); a negative value disables queueing entirely, so a tenant with
	// all slots busy is rejected immediately.
	QueueDepth int `json:"queue_depth,omitempty"`
	// QueueWaitMS is the longest a request may wait for a slot before
	// being rejected with 503 (default 5000).
	QueueWaitMS int64 `json:"queue_wait_ms,omitempty"`
	// TimeBudgetMS caps each admitted request's optimization wall clock
	// (0 = none); requests asking for more are clamped to it.
	TimeBudgetMS int64 `json:"time_budget_ms,omitempty"`
	// CallBudget caps each admitted request's oracle calls (0 = none);
	// requests asking for more are clamped to it.
	CallBudget int `json:"call_budget,omitempty"`
	// CallQuota is the tenant's cumulative oracle-call allowance across
	// requests (0 = unlimited). Completed requests are charged their
	// actual Telemetry.OracleCalls; once spent ≥ quota, new requests are
	// rejected with 429 until ResetQuota.
	CallQuota int64 `json:"call_quota,omitempty"`
}

// Defaults applied by normalize.
const (
	defaultMaxConcurrent = 4
	defaultQueueDepth    = 16
	defaultQueueWaitMS   = 5000
)

func (c TenantConfig) normalize() TenantConfig {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = defaultMaxConcurrent
	}
	if c.QueueDepth < 0 {
		c.QueueDepth = 0 // no queueing: reject as soon as slots are full
	} else if c.QueueDepth == 0 {
		c.QueueDepth = defaultQueueDepth
	}
	if c.QueueWaitMS <= 0 {
		c.QueueWaitMS = defaultQueueWaitMS
	}
	return c
}

func (c TenantConfig) queueWait() time.Duration {
	return time.Duration(c.QueueWaitMS) * time.Millisecond
}

// TenantStats are one tenant's admission counters, served by /v1/stats.
// Admitted = Completed + Active once the tenant is idle; Rejected* and
// QueueTimeouts count requests that never reached a session.
type TenantStats struct {
	Admitted          int64 `json:"admitted"`
	Completed         int64 `json:"completed"`
	RejectedQueueFull int64 `json:"rejected_queue_full"`
	RejectedQuota     int64 `json:"rejected_quota"`
	QueueTimeouts     int64 `json:"queue_timeouts"`
	Cancelled         int64 `json:"cancelled_in_queue"`
	Active            int   `json:"active"`
	Queued            int   `json:"queued"`
	QuotaSpent        int64 `json:"quota_spent"`
	QuotaLimit        int64 `json:"quota_limit,omitempty"`
}

// Admission reasons a request can be turned away with.
var (
	// ErrQueueFull: the tenant's wait queue is at QueueDepth (429).
	ErrQueueFull = errors.New("admission: queue full")
	// ErrQueueTimeout: the queue wait exceeded QueueWaitMS (503).
	ErrQueueTimeout = errors.New("admission: queue-wait deadline exceeded")
	// ErrQuotaExhausted: the tenant's oracle-call quota is spent (429).
	ErrQuotaExhausted = errors.New("admission: oracle-call quota exhausted")
	// ErrCancelled: the client went away while queued.
	ErrCancelled = errors.New("admission: cancelled while queued")
	// ErrUnknownTenant: strict mode and the tenant is not in the table (403).
	ErrUnknownTenant = errors.New("admission: unknown tenant")
	// ErrTenantOverflow: the controller is tracking its maximum number of
	// distinct tenants and refuses to allocate state for new names (429).
	ErrTenantOverflow = errors.New("admission: too many distinct tenants")
)

// waiter outcomes, guarded by the tenant mutex.
const (
	waiterPending  = iota // still queued
	waiterGranted         // a releasing request handed its slot over
	waiterQuotaCut        // rejected in the queue: the tenant quota is spent
)

// waiter is one queued request. outcome is guarded by the tenant mutex:
// a releasing request either hands its slot over (waiterGranted) or, once
// the quota is spent, cuts the whole queue (waiterQuotaCut), closing ch
// either way. A waiter whose timer or context fires concurrently
// re-checks the outcome under the mutex (settle) and, if it was granted
// in that same instant, is admitted — the grant wins the race, so the
// slot is used rather than leaked.
type waiter struct {
	ch      chan struct{}
	outcome int
}

// tenant is the runtime admission state of one tenant.
type tenant struct {
	name string
	cfg  TenantConfig
	// retrySeq numbers this tenant's rejections, advancing its
	// deterministic Retry-After jitter sequence (see RetryAfter).
	retrySeq atomic.Uint64

	mu         sync.Mutex
	active     int
	queue      []*waiter
	quotaSpent int64
	stats      TenantStats
}

// maxDynamicTenants bounds how many distinct tenant names a non-strict
// controller will lazily allocate state for, so attacker-chosen tenant
// names cannot grow the map (and the /v1/stats payload) without bound.
// Pre-declared tenants don't count against it.
const maxDynamicTenants = 4096

// Admission is the per-tenant admission controller: a concurrency limit,
// a bounded FIFO queue with a wait deadline, and a cumulative oracle-call
// quota per tenant. All methods are safe for concurrent use.
type Admission struct {
	mu       sync.Mutex
	tenants  map[string]*tenant
	declared int // tenants pre-declared at construction
	defCfg   TenantConfig
	strict   bool
	// newTimer is the queue-wait clock hook; tests swap it for a manual
	// trigger so timeout/handoff races are driven deterministically.
	newTimer func(time.Duration) (<-chan time.Time, func() bool)
	// rand64 is the Retry-After jitter RNG hook (splitmix64 by default);
	// tests swap it to pin or remove the jitter.
	rand64 func(uint64) uint64
	// retrySeq numbers rejections of tenants with no allocated state, so
	// their jitter sequence advances without growing the tenant map.
	retrySeq atomic.Uint64
}

// NewAdmission builds a controller. def is the config for tenants not in
// cfgs (unless strict, in which case they are rejected); cfgs pre-declares
// named tenants.
func NewAdmission(def TenantConfig, cfgs map[string]TenantConfig, strict bool) *Admission {
	a := &Admission{
		tenants:  make(map[string]*tenant, len(cfgs)),
		declared: len(cfgs),
		defCfg:   def.normalize(),
		strict:   strict,
		newTimer: func(d time.Duration) (<-chan time.Time, func() bool) {
			t := time.NewTimer(d)
			return t.C, t.Stop
		},
		rand64: splitmix64,
	}
	for name, c := range cfgs {
		a.tenants[name] = &tenant{name: name, cfg: c.normalize()}
	}
	return a
}

// tenant resolves (or lazily creates) a tenant's state.
func (a *Admission) tenant(name string) (*tenant, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	t, ok := a.tenants[name]
	if !ok {
		if a.strict {
			return nil, ErrUnknownTenant
		}
		if len(a.tenants)-a.declared >= maxDynamicTenants {
			return nil, ErrTenantOverflow
		}
		t = &tenant{name: name, cfg: a.defCfg}
		a.tenants[name] = t
	}
	return t, nil
}

// Config reports the effective limits of a tenant: its declared (or
// lazily created) config, or the controller default for names it has
// never seen.
func (a *Admission) Config(name string) TenantConfig {
	a.mu.Lock()
	defer a.mu.Unlock()
	if t, ok := a.tenants[name]; ok {
		return t.cfg
	}
	return a.defCfg
}

// Acquire admits one request for the named tenant, blocking in the
// tenant's FIFO queue when its concurrency slots are taken. On success it
// returns a release function the caller MUST invoke exactly once with the
// request's oracle-call spend (0 for requests that never ran); on failure
// it returns one of the Err* reasons. ctx aborts the queue wait.
func (a *Admission) Acquire(ctx context.Context, name string) (release func(oracleCalls int), err error) {
	t, err := a.tenant(name)
	if err != nil {
		return nil, err
	}

	t.mu.Lock()
	if t.cfg.CallQuota > 0 && t.quotaSpent >= t.cfg.CallQuota {
		t.stats.RejectedQuota++
		t.mu.Unlock()
		return nil, ErrQuotaExhausted
	}
	if t.active < t.cfg.MaxConcurrent {
		t.active++
		t.stats.Admitted++
		t.mu.Unlock()
		return t.release, nil
	}
	if len(t.queue) >= t.cfg.QueueDepth {
		t.stats.RejectedQueueFull++
		t.mu.Unlock()
		return nil, ErrQueueFull
	}
	w := &waiter{ch: make(chan struct{}), outcome: waiterPending}
	t.queue = append(t.queue, w)
	t.mu.Unlock()

	timerC, stopTimer := a.newTimer(t.cfg.queueWait())
	defer stopTimer()
	select {
	case <-w.ch:
		return t.settle(w, nil, nil)
	case <-timerC:
		return t.settle(w, &t.stats.QueueTimeouts, ErrQueueTimeout)
	case <-ctx.Done():
		return t.settle(w, &t.stats.Cancelled, ErrCancelled)
	}
}

// settle resolves a waiter that woke up (slot handed over, queue cut on
// quota exhaustion, timeout, or cancellation — the races between them are
// decided here, under the tenant mutex). A still-pending waiter is
// removed from the queue and rejected with reason; a granted one is
// admitted even if its timer fired in the same instant (admission won the
// race); a quota-cut one reports ErrQuotaExhausted, already counted at
// the cut.
func (t *tenant) settle(w *waiter, counter *int64, reason error) (func(int), error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	switch w.outcome {
	case waiterGranted:
		t.stats.Admitted++
		return t.release, nil
	case waiterQuotaCut:
		return nil, ErrQuotaExhausted
	default: // still queued: remove and reject with the caller's reason.
		// Unreachable from the ch-closed wakeup (an outcome is always set
		// before ch closes), so counter/reason are non-nil here.
		for i, q := range t.queue {
			if q == w {
				t.queue = append(t.queue[:i], t.queue[i+1:]...)
				break
			}
		}
		if counter != nil {
			*counter++
		}
		if reason == nil {
			reason = ErrCancelled
		}
		return nil, reason
	}
}

// release frees one slot, charging the quota with the request's actual
// oracle-call spend. While quota remains, the slot is handed to the queue
// head (FIFO); once the spend reaches the quota, the whole queue is cut —
// waiting longer cannot help until an operator resets the quota, so the
// queued requests are rejected now instead of burning their wait
// deadline.
func (t *tenant) release(oracleCalls int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.quotaSpent += int64(oracleCalls)
	t.stats.Completed++
	if t.cfg.CallQuota > 0 && t.quotaSpent >= t.cfg.CallQuota {
		for _, w := range t.queue {
			w.outcome = waiterQuotaCut
			t.stats.RejectedQuota++
			close(w.ch)
		}
		t.queue = t.queue[:0]
		t.active--
		return
	}
	if len(t.queue) > 0 {
		w := t.queue[0]
		t.queue = t.queue[1:]
		w.outcome = waiterGranted
		close(w.ch)
		return // slot transferred; active count unchanged
	}
	t.active--
}

// ResetQuota zeroes the named tenant's cumulative oracle-call spend. It
// reports false for tenants the controller has never seen.
func (a *Admission) ResetQuota(name string) bool {
	a.mu.Lock()
	t, ok := a.tenants[name]
	a.mu.Unlock()
	if !ok {
		return false
	}
	t.mu.Lock()
	t.quotaSpent = 0
	t.mu.Unlock()
	return true
}

// Stats snapshots every tenant's counters, keyed by tenant name.
func (a *Admission) Stats() map[string]TenantStats {
	a.mu.Lock()
	ts := make([]*tenant, 0, len(a.tenants))
	for _, t := range a.tenants {
		ts = append(ts, t)
	}
	a.mu.Unlock()
	out := make(map[string]TenantStats, len(ts))
	for _, t := range ts {
		t.mu.Lock()
		s := t.stats
		s.Active = t.active
		s.Queued = len(t.queue)
		s.QuotaSpent = t.quotaSpent
		s.QuotaLimit = t.cfg.CallQuota
		t.mu.Unlock()
		out[t.name] = s
	}
	return out
}

// RetryAfter suggests how long a rejected request should back off: the
// tenant's queue-wait deadline for congestion, a minute for quota
// exhaustion — jittered deterministically into [base/2, base] per tenant.
// The jitter spreads one tenant's herd of simultaneous rejections over the
// window instead of re-admitting it as a thundering spike, and it is a
// pure function of (tenant, rejection ordinal): the k-th rejection of a
// tenant always backs off by the same amount, so tests — and the router's
// retry budget accounting — can predict the exact sequence.
func (a *Admission) RetryAfter(name string, reason error) time.Duration {
	cfg := a.defCfg
	var seq uint64
	a.mu.Lock()
	if t, ok := a.tenants[name]; ok {
		cfg = t.cfg
		seq = t.retrySeq.Add(1)
	} else {
		seq = a.retrySeq.Add(1)
	}
	a.mu.Unlock()
	base := cfg.queueWait()
	if errors.Is(reason, ErrQuotaExhausted) {
		base = time.Minute
	}
	return jitterBackoff(a.rand64, name, seq, base)
}

// jitterBackoff maps (tenant, ordinal) onto [base/2, base] through the
// RNG: rand64 over an FNV-1a tenant seed mixed with the ordinal. rand64 is
// a hook (splitmix64 by default) so tests can pin the spread.
func jitterBackoff(rand64 func(uint64) uint64, name string, seq uint64, base time.Duration) time.Duration {
	if base <= 0 {
		return 0
	}
	seed := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		seed ^= uint64(name[i])
		seed *= 1099511628211
	}
	r := rand64(seed + seq*0x9e3779b97f4a7c15)
	off := time.Duration(r % (uint64(base)/2 + 1))
	return base - off
}

// splitmix64 is the default jitter RNG: a tiny, stateless, well-mixed
// permutation of uint64, so equal inputs give equal jitter on every
// replica.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
