package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
)

// telemetrySum folds per-member telemetry shares into one aggregate over
// the apportioned numeric fields (CacheHitRate is a derived ratio and
// Stopped a copied tag; neither is additive).
func telemetrySum(shares []core.Telemetry) core.Telemetry {
	var s core.Telemetry
	for _, t := range shares {
		s.OracleCalls += t.OracleCalls
		s.BCCalls += t.BCCalls
		s.CacheHits += t.CacheHits
		s.SharedHits += t.SharedHits
		s.ComputedKeys += t.ComputedKeys
		s.Rounds += t.Rounds
		s.Pruned += t.Pruned
		s.Stale += t.Stale
		s.Reused += t.Reused
		s.SetupTime += t.SetupTime
		s.SearchTime += t.SearchTime
		s.FinalizeTime += t.FinalizeTime
		s.TotalTime += t.TotalTime
	}
	return s
}

// expectConserved fails the test when the summed shares do not reproduce
// the run total exactly, field by field.
func expectConserved(t *testing.T, what string, total core.Telemetry, shares []core.Telemetry) {
	t.Helper()
	s := telemetrySum(shares)
	type pair struct {
		name      string
		got, want int64
	}
	for _, p := range []pair{
		{"oracle_calls", int64(s.OracleCalls), int64(total.OracleCalls)},
		{"bc_calls", int64(s.BCCalls), int64(total.BCCalls)},
		{"cache_hits", int64(s.CacheHits), int64(total.CacheHits)},
		{"shared_hits", int64(s.SharedHits), int64(total.SharedHits)},
		{"computed_keys", int64(s.ComputedKeys), int64(total.ComputedKeys)},
		{"rounds", int64(s.Rounds), int64(total.Rounds)},
		{"pruned", int64(s.Pruned), int64(total.Pruned)},
		{"stale", int64(s.Stale), int64(total.Stale)},
		{"reused", int64(s.Reused), int64(total.Reused)},
		{"setup_ns", int64(s.SetupTime), int64(total.SetupTime)},
		{"search_ns", int64(s.SearchTime), int64(total.SearchTime)},
		{"finalize_ns", int64(s.FinalizeTime), int64(total.FinalizeTime)},
		{"total_ns", int64(s.TotalTime), int64(total.TotalTime)},
	} {
		if p.got != p.want {
			t.Errorf("%s: share sum %s = %d, run total %d", what, p.name, p.got, p.want)
		}
	}
}

// TestBatchRaceStress hammers a batching server with K tenants × M
// workers over a mix of coalescible and distinct bodies, real deadline
// flushes, mid-batch client disconnects and one injected oracle panic,
// then audits exact conservation at every layer: each shared run's
// telemetry equals the sum of the per-member shares it was split into
// (successful AND faulted runs), the pooled sessions' aggregate equals
// the sum of the successful run totals, and the tenants' quota charges
// account for every oracle call any run burned. Run it under -race; it
// is the concurrency audit of the batching path.
func TestBatchRaceStress(t *testing.T) {
	const (
		tenants   = 3
		workers   = 4 // concurrent workers per tenant
		perWorker = 3
	)
	srv := New(Config{
		// Slots below the worker count so the admission queue (and its
		// FIFO handoff) is exercised while lanes fill; the real 25ms
		// deadline timer bounds every lane wait, so slot-holding members
		// can never deadlock the lane against admission.
		DefaultTenant: TenantConfig{MaxConcurrent: 3, QueueDepth: 16, QueueWaitMS: 30000},
		Batch:         BatchConfig{Enabled: true, MaxRequests: 4, MaxDelayMS: 25},
	})

	// Server-side conservation hooks: every shared run — completed or
	// faulted — must split into shares that reproduce it exactly.
	var (
		hookMu        sync.Mutex
		successTotals core.Telemetry
		faultTotals   core.Telemetry
		successRuns   int
		faultRuns     int
	)
	srv.batcher.onBatchComplete = func(total core.Telemetry, shares []core.Telemetry) {
		expectConserved(t, "completed run", total, shares)
		hookMu.Lock()
		successTotals = telemetrySum([]core.Telemetry{successTotals, total})
		successRuns++
		hookMu.Unlock()
	}
	srv.batcher.onBatchFault = func(total core.Telemetry, shares []core.Telemetry) {
		expectConserved(t, "faulted run", total, shares)
		hookMu.Lock()
		faultTotals = telemetrySum([]core.Telemetry{faultTotals, total})
		faultRuns++
		hookMu.Unlock()
	}

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// One injected panic on the 40th oracle evaluation: it lands inside
	// whichever shared run happens to be holding the oracle then, which
	// must answer every member 500 with one incident and charge each its
	// exact share of the burned work.
	withSchedule(t, faultinject.NewSchedule(5,
		faultinject.Rule{Point: faultinject.OracleEval, N: 40, Panic: true}))

	// Two bodies per strategy lane: same-seed requests coalesce to one
	// group, different seeds batch as distinct groups in the same lane.
	bodies := []string{
		`{"spec": {"seed": 11, "queries": 6, "shape": "mixed", "fan_out": 4, "sharing": 0.6, "select_frac": 0.8, "agg_frac": 0.5}, "strategy": "greedy"}`,
		`{"spec": {"seed": 12, "queries": 6, "shape": "mixed", "fan_out": 4, "sharing": 0.6, "select_frac": 0.8, "agg_frac": 0.5}, "strategy": "greedy"}`,
	}

	type tally struct {
		ok, okMulti, rejected, faulted, disconnected int
	}
	var (
		mu           sync.Mutex
		sum          tally
		discByTenant = make(map[string]int64)
	)
	var wg sync.WaitGroup
	for ti := 0; ti < tenants; ti++ {
		tenant := fmt.Sprintf("tenant-%d", ti)
		for wi := 0; wi < workers; wi++ {
			wg.Add(1)
			go func(wi int) {
				defer wg.Done()
				var local tally
				for i := 0; i < perWorker; i++ {
					body := bodies[(wi+i)%len(bodies)]
					ctx := context.Background()
					var cancel context.CancelFunc = func() {}
					// Every fourth request disconnects mid-flight: if the
					// lane has not flushed yet the member is excised, if
					// the run already started it is still served and
					// charged — both must conserve.
					if (wi*perWorker+i)%4 == 3 {
						ctx, cancel = context.WithTimeout(ctx, 10*time.Millisecond)
					}
					req, err := http.NewRequestWithContext(ctx, http.MethodPost,
						ts.URL+"/v1/optimize", strings.NewReader(body))
					if err != nil {
						cancel()
						t.Error(err)
						return
					}
					req.Header.Set("X-Tenant", tenant)
					resp, err := http.DefaultClient.Do(req)
					cancel()
					if err != nil {
						local.disconnected++
						continue
					}
					switch resp.StatusCode {
					case http.StatusOK:
						var or OptimizeResponse
						if err := json.NewDecoder(resp.Body).Decode(&or); err != nil {
							t.Errorf("decoding 200 body: %v", err)
							resp.Body.Close()
							return
						}
						if !or.Batched || or.BatchSize < 1 {
							t.Errorf("200 response not batch-attributed: batched=%v size=%d", or.Batched, or.BatchSize)
						}
						local.ok++
						if or.BatchSize > 1 {
							local.okMulti++
						}
					case http.StatusTooManyRequests, http.StatusServiceUnavailable:
						local.rejected++
					case http.StatusInternalServerError:
						var eb errorBody
						if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
							t.Errorf("decoding 500 body: %v", err)
						} else if eb.Code != codeInternalPanic || eb.Incident == "" {
							t.Errorf("500 body = %+v, want code %q with incident", eb, codeInternalPanic)
						}
						local.faulted++
					default:
						t.Errorf("unexpected status %d", resp.StatusCode)
					}
					resp.Body.Close()
				}
				mu.Lock()
				sum.ok += local.ok
				sum.okMulti += local.okMulti
				sum.rejected += local.rejected
				sum.faulted += local.faulted
				sum.disconnected += local.disconnected
				discByTenant[tenant] += int64(local.disconnected)
				mu.Unlock()
			}(wi)
		}
	}
	wg.Wait()

	// A disconnected client's Do returns at its 10ms deadline while the
	// handler — and the shared run still serving the other members — drains
	// on its own schedule. Wait for the admission ledger to quiesce before
	// auditing it, or the reads below race the last releases.
	waitFor(t, func() bool {
		for _, a := range srv.Admission().Stats() {
			if a.Active != 0 || a.Queued != 0 || a.Admitted != a.Completed {
				return false
			}
		}
		return true
	})

	total := tenants * workers * perWorker
	if got := sum.ok + sum.rejected + sum.faulted + sum.disconnected; got != total {
		t.Fatalf("accounted %d responses (%+v), sent %d", got, sum, total)
	}
	if sum.ok == 0 {
		t.Fatal("no request succeeded; stress parameters are wrong")
	}
	if faultRuns != 1 {
		t.Errorf("observed %d faulted shared runs, the schedule fires exactly once", faultRuns)
	}
	if sum.faulted == 0 {
		t.Errorf("no client observed the injected fault (faulted run had %d members?)", faultRuns)
	}
	t.Logf("stress: %d ok (%d in multi-member batches), %d rejected, %d faulted, %d disconnected; %d runs (+%d faulted), %d members coalesced away",
		sum.ok, sum.okMulti, sum.rejected, sum.faulted, sum.disconnected,
		successRuns, faultRuns, srv.batcher.coalesced.Load())

	// Session-layer conservation: the pooled sessions' aggregate (live
	// plus the quarantined one) must equal the sum of the successful run
	// totals — a faulted run contributes only to Faults, per the session
	// contract.
	st := sumStats(t, srv)
	if st.Faults != faultRuns {
		t.Errorf("session faults = %d, observed %d faulted runs", st.Faults, faultRuns)
	}
	if st.OracleCalls != successTotals.OracleCalls {
		t.Errorf("session oracle calls = %d, run-total sum = %d", st.OracleCalls, successTotals.OracleCalls)
	}
	if st.BCCalls != successTotals.BCCalls {
		t.Errorf("session bc calls = %d, run-total sum = %d", st.BCCalls, successTotals.BCCalls)
	}
	if st.CacheHits != successTotals.CacheHits {
		t.Errorf("session cache hits = %d, run-total sum = %d", st.CacheHits, successTotals.CacheHits)
	}
	if st.SharedHits != successTotals.SharedHits {
		t.Errorf("session shared hits = %d, run-total sum = %d", st.SharedHits, successTotals.SharedHits)
	}
	if st.Rounds != successTotals.Rounds {
		t.Errorf("session rounds = %d, run-total sum = %d", st.Rounds, successTotals.Rounds)
	}

	// Quota conservation: every oracle call any run burned — completed or
	// faulted — was charged to exactly one tenant, and nothing else was.
	adm := srv.Admission().Stats()
	var spent int64
	for ti := 0; ti < tenants; ti++ {
		name := fmt.Sprintf("tenant-%d", ti)
		a := adm[name]
		spent += a.QuotaSpent
		if a.Active != 0 || a.Queued != 0 {
			t.Errorf("%s: %d active, %d queued after drain", name, a.Active, a.Queued)
		}
		if a.Admitted != a.Completed {
			t.Errorf("%s: admitted %d != completed %d", name, a.Admitted, a.Completed)
		}
		// A request whose client disconnected before the handler reached
		// admission never touches the ledger, so disconnects widen the
		// accounting into an interval: every request that got an HTTP
		// response is accounted exactly once, and nothing is double-counted.
		sent := int64(workers * perWorker)
		disc := discByTenant[name]
		if got := a.Admitted + a.RejectedQueueFull + a.QueueTimeouts + a.Cancelled; got > sent || got < sent-disc {
			t.Errorf("%s: admitted+rejected+cancelled = %d, want within [%d, %d] (%+v)", name, got, sent-disc, sent, a)
		}
	}
	if want := int64(successTotals.OracleCalls + faultTotals.OracleCalls); spent != want {
		t.Errorf("Σ tenant quota spent = %d, Σ run oracle calls = %d (success %d + fault %d)",
			spent, want, successTotals.OracleCalls, faultTotals.OracleCalls)
	}
}
