package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"slices"
	"strconv"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/logical"
	"repro/internal/parser"
	"repro/internal/workload"
)

// Config parameterizes a Server. The zero value serves with the default
// tenant config, a 4-session pool and a 1 MiB body limit.
type Config struct {
	// DefaultTenant is the admission config applied to tenants not listed
	// in Tenants (rejected instead when StrictTenants).
	DefaultTenant TenantConfig
	// Tenants pre-declares named tenants with their own limits.
	Tenants map[string]TenantConfig
	// StrictTenants rejects requests from tenants missing from Tenants
	// with 403 instead of admitting them under DefaultTenant.
	StrictTenants bool
	// PoolSize bounds the session pool (default 4 catalogs).
	PoolSize int
	// MaxBodyBytes bounds an optimize request body (default 1 MiB).
	MaxBodyBytes int64
	// MaxQueries bounds the batch size one request may carry, spec or SQL
	// (default 1024; < 0 disables the bound).
	MaxQueries int
	// DefaultSF is the catalog scale factor when a request names none
	// (default 1).
	DefaultSF float64
	// AllowedSFs lists the scale factors requests may name. The sf is a
	// session-pool key, so an open set would let one tenant flush every
	// pooled session (and its warm cost cache) just by cycling fresh
	// values. Default {1, 10, 100}; DefaultSF is always included.
	AllowedSFs []float64
	// Logger receives request-level diagnostics; nil discards them.
	Logger *log.Logger
}

func (c Config) normalize() Config {
	if c.PoolSize <= 0 {
		c.PoolSize = 4
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	switch {
	case c.MaxQueries < 0:
		c.MaxQueries = 0
	case c.MaxQueries == 0:
		c.MaxQueries = 1024
	}
	if c.DefaultSF <= 0 {
		c.DefaultSF = 1
	}
	if len(c.AllowedSFs) == 0 {
		c.AllowedSFs = []float64{1, 10, 100}
	}
	if !slices.Contains(c.AllowedSFs, c.DefaultSF) {
		c.AllowedSFs = append(c.AllowedSFs, c.DefaultSF)
	}
	return c
}

// Server is the HTTP front end; construct with New, mount Handler.
type Server struct {
	cfg      Config
	adm      *Admission
	pool     *sessionPool
	started  time.Time
	draining atomic.Bool

	// preOptimize, when non-nil, runs after admission and before the
	// optimizer is invoked. Tests use it to hold admitted requests at a
	// deterministic point (filling slots and queues) and to observe the
	// request context.
	preOptimize func(ctx context.Context, req *OptimizeRequest)
}

// New builds a Server over its config.
func New(cfg Config) *Server {
	cfg = cfg.normalize()
	return &Server{
		cfg:     cfg,
		adm:     NewAdmission(cfg.DefaultTenant, cfg.Tenants, cfg.StrictTenants),
		pool:    newSessionPool(cfg.PoolSize),
		started: time.Now(),
	}
}

// Admission exposes the admission controller (quota resets, stats).
func (s *Server) Admission() *Admission { return s.adm }

// Drain flips the server into draining mode: /healthz turns 503 and new
// optimize requests are rejected with 503 + Retry-After, while already
// admitted requests run to completion. Callers then use
// http.Server.Shutdown to wait for the in-flight handlers.
func (s *Server) Drain() { s.draining.Store(true) }

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Handler returns the server's routing table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/optimize", s.handleOptimize)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logger != nil {
		s.cfg.Logger.Printf(format, args...)
	}
}

// writeJSON writes one JSON response body.
func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(body) // the client may be gone; nothing to do about it
}

// writeError writes the error body, with a Retry-After header (whole
// seconds, rounded up, ≥ 1) when retryAfter > 0.
func writeError(w http.ResponseWriter, status int, msg string, retryAfter time.Duration) {
	body := errorBody{Error: msg}
	if retryAfter > 0 {
		secs := int64((retryAfter + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		body.RetryAfterMS = retryAfter.Milliseconds()
	}
	writeJSON(w, status, body)
}

// tenantOf resolves the request's tenant: X-Tenant header first, then the
// body field, then "default".
func tenantOf(r *http.Request, req *OptimizeRequest) string {
	if t := r.Header.Get("X-Tenant"); t != "" {
		return t
	}
	if req.Tenant != "" {
		return req.Tenant
	}
	return "default"
}

// maxTenantNameLen bounds tenant names: they become map keys, stats keys
// and log fields, so an attacker-sized header must not inflate them.
const maxTenantNameLen = 100

// validTenantName accepts short printable-ASCII names without spaces —
// safe as JSON keys, header echoes and log fields.
func validTenantName(s string) bool {
	if len(s) == 0 || len(s) > maxTenantNameLen {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] <= ' ' || s[i] >= 0x7f {
			return false
		}
	}
	return true
}

// buildBatch materializes the request's batch: the workload generator for
// spec payloads, the SQL parser for sql payloads.
func (s *Server) buildBatch(req *OptimizeRequest) (*logical.Batch, error) {
	if req.Spec != nil {
		return workload.Generate(*req.Spec)
	}
	batch, err := parser.ParseBatch(req.SQL)
	if err != nil {
		return nil, err
	}
	if s.cfg.MaxQueries > 0 && len(batch.Queries) > s.cfg.MaxQueries {
		return nil, errors.New("sql batch exceeds the server's query cap")
	}
	return batch, nil
}

// optimizeOptions maps the request and its tenant's caps onto Session
// options: the effective budget is the tighter of the request's ask and
// the tenant's cap.
func optimizeOptions(req *OptimizeRequest, cfg TenantConfig) []repro.Option {
	strat, _ := parseStrategy(req.Strategy) // validated at decode time
	opts := []repro.Option{
		repro.WithStrategy(strat),
		repro.WithParallelism(req.Parallelism),
	}
	timeMS := req.TimeBudgetMS
	if cfg.TimeBudgetMS > 0 && (timeMS == 0 || timeMS > cfg.TimeBudgetMS) {
		timeMS = cfg.TimeBudgetMS
	}
	if timeMS > 0 {
		opts = append(opts, repro.WithTimeBudget(time.Duration(timeMS)*time.Millisecond))
	}
	callBudget := -1
	if req.OracleCallBudget != nil {
		callBudget = *req.OracleCallBudget
	}
	if cfg.CallBudget > 0 && (callBudget < 0 || callBudget > cfg.CallBudget) {
		callBudget = cfg.CallBudget
	}
	if callBudget >= 0 {
		opts = append(opts, repro.WithOracleCallBudget(callBudget))
	}
	return opts
}

func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining", 5*time.Second)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body too large", 0)
			return
		}
		writeError(w, http.StatusBadRequest, "reading request body: "+err.Error(), 0)
		return
	}
	req, err := decodeOptimizeRequest(body, s.cfg.MaxQueries)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error(), 0)
		return
	}
	tenantName := tenantOf(r, req)
	if !validTenantName(tenantName) {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("tenant name must be 1..%d printable non-space ASCII characters", maxTenantNameLen), 0)
		return
	}
	ctx := r.Context()

	queuedAt := time.Now()
	release, err := s.adm.Acquire(ctx, tenantName)
	if err != nil {
		s.rejected(w, tenantName, err)
		return
	}
	queueWait := time.Since(queuedAt)
	// Charge the admission slot and the tenant quota exactly once, with
	// whatever the run actually spent.
	spent := 0
	defer func() { release(spent) }()

	if s.preOptimize != nil {
		s.preOptimize(ctx, req)
	}

	batch, err := s.buildBatch(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error(), 0)
		return
	}
	sf := req.SF
	if sf == 0 {
		sf = s.cfg.DefaultSF
	}
	if !slices.Contains(s.cfg.AllowedSFs, sf) {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("sf %v is not served; allowed scale factors: %v", sf, s.cfg.AllowedSFs), 0)
		return
	}
	sess, err := s.pool.get(poolKey{sf: sf, extended: req.ExtendedOps})
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error(), 0)
		return
	}
	cfg := s.adm.Config(tenantName)
	res, err := sess.Optimize(ctx, batch, optimizeOptions(req, cfg)...)
	if err != nil {
		// NewOptimizer rejects batches that are invalid against the
		// catalog (unknown tables/columns, malformed predicates): the
		// request's fault, not the server's.
		writeError(w, http.StatusBadRequest, err.Error(), 0)
		return
	}
	spent = res.Telemetry.OracleCalls

	strat, _ := parseStrategy(req.Strategy)
	resp := &OptimizeResponse{
		Tenant:       tenantName,
		Strategy:     strat.String(),
		Queries:      len(batch.Queries),
		Materialized: make([]int, 0, len(res.Materialized)),
		CostMS:       res.Cost,
		VolcanoMS:    res.VolcanoCost,
		BenefitMS:    res.Benefit,
		Plan:         summarizePlan(res.Plan),
		Telemetry:    res.Telemetry,
		BuildNS:      res.BuildTime.Nanoseconds(),
		OptNS:        res.OptTime.Nanoseconds(),
		ExtractNS:    res.ExtractTime.Nanoseconds(),
		QueueWaitNS:  queueWait.Nanoseconds(),
	}
	for _, g := range res.Materialized {
		resp.Materialized = append(resp.Materialized, int(g))
	}
	if req.PlanText {
		resp.PlanText = res.Plan.String()
	}
	writeJSON(w, http.StatusOK, resp)
}

// rejected maps an admission error onto its HTTP status.
func (s *Server) rejected(w http.ResponseWriter, tenant string, err error) {
	retry := s.adm.RetryAfter(tenant, err)
	switch {
	case errors.Is(err, ErrQueueFull):
		writeError(w, http.StatusTooManyRequests, err.Error(), retry)
	case errors.Is(err, ErrQuotaExhausted):
		writeError(w, http.StatusTooManyRequests, err.Error(), retry)
	case errors.Is(err, ErrTenantOverflow):
		writeError(w, http.StatusTooManyRequests, err.Error(), retry)
	case errors.Is(err, ErrQueueTimeout):
		writeError(w, http.StatusServiceUnavailable, err.Error(), retry)
	case errors.Is(err, ErrUnknownTenant):
		writeError(w, http.StatusForbidden, err.Error(), 0)
	case errors.Is(err, ErrCancelled):
		// The client is gone; the status is never seen. 499 is the
		// conventional nginx code for this.
		w.WriteHeader(499)
	default:
		writeError(w, http.StatusInternalServerError, err.Error(), 0)
	}
	s.logf("server: %s: rejected: %v", tenant, err)
}

// StatsResponse is the body of GET /v1/stats.
type StatsResponse struct {
	UptimeNS int64                  `json:"uptime_ns"`
	Draining bool                   `json:"draining"`
	Tenants  map[string]TenantStats `json:"tenants"`
	Pool     []PoolEntryStats       `json:"pool"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, &StatsResponse{
		UptimeNS: time.Since(s.started).Nanoseconds(),
		Draining: s.draining.Load(),
		Tenants:  s.adm.Stats(),
		Pool:     s.pool.stats(),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := http.StatusOK
	state := "ok"
	if s.draining.Load() {
		status = http.StatusServiceUnavailable
		state = "draining"
	}
	writeJSON(w, status, map[string]string{"status": state})
}
