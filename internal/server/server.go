package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"slices"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/logical"
	"repro/internal/parser"
	"repro/internal/workload"
)

// Config parameterizes a Server. The zero value serves with the default
// tenant config, a 4-session pool and a 1 MiB body limit.
type Config struct {
	// DefaultTenant is the admission config applied to tenants not listed
	// in Tenants (rejected instead when StrictTenants).
	DefaultTenant TenantConfig
	// Tenants pre-declares named tenants with their own limits.
	Tenants map[string]TenantConfig
	// StrictTenants rejects requests from tenants missing from Tenants
	// with 403 instead of admitting them under DefaultTenant.
	StrictTenants bool
	// PoolSize bounds the session pool (default 4 catalogs).
	PoolSize int
	// MaxBodyBytes bounds an optimize request body (default 1 MiB).
	MaxBodyBytes int64
	// MaxQueries bounds the batch size one request may carry, spec or SQL
	// (default 1024; < 0 disables the bound).
	MaxQueries int
	// DefaultSF is the catalog scale factor when a request names none
	// (default 1).
	DefaultSF float64
	// AllowedSFs lists the scale factors requests may name. The sf is a
	// session-pool key, so an open set would let one tenant flush every
	// pooled session (and its warm cost cache) just by cycling fresh
	// values. Default {1, 10, 100}; DefaultSF is always included.
	AllowedSFs []float64
	// Breaker parameterizes the per-catalog circuit breaker (degraded and
	// open serving after repeated faults).
	Breaker BreakerConfig
	// Batch parameterizes cross-request continuous batching; the zero
	// value disables it and every request is served solo.
	Batch BatchConfig
	// Sched parameterizes the scheduler policy layer over a shared
	// worker-slot pool: deficit-round-robin weighted-fair dispatch,
	// deadline-aware cut-ahead and preemption (see SchedConfig). The zero
	// value has no shared slots, which keeps the legacy behavior of
	// per-tenant limits alone.
	Sched SchedConfig
	// Logger receives request-level diagnostics; nil discards them.
	Logger *log.Logger
}

func (c Config) normalize() Config {
	if c.PoolSize <= 0 {
		c.PoolSize = 4
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	switch {
	case c.MaxQueries < 0:
		c.MaxQueries = 0
	case c.MaxQueries == 0:
		c.MaxQueries = 1024
	}
	if c.DefaultSF <= 0 {
		c.DefaultSF = 1
	}
	if len(c.AllowedSFs) == 0 {
		c.AllowedSFs = []float64{1, 10, 100}
	}
	if !slices.Contains(c.AllowedSFs, c.DefaultSF) {
		c.AllowedSFs = append(c.AllowedSFs, c.DefaultSF)
	}
	c.Breaker = c.Breaker.normalize()
	if c.Batch.Enabled {
		c.Batch = c.Batch.normalize()
	}
	c.Sched = c.Sched.normalize()
	return c
}

// Server is the HTTP front end; construct with New, mount Handler.
type Server struct {
	cfg      Config
	adm      *Admission
	pool     *sessionPool
	breaker  *breaker
	batcher  *batcher // nil unless Config.Batch.Enabled
	started  time.Time
	draining atomic.Bool
	// panics counts panics recovered anywhere on the serving path
	// (optimizer workers surfacing as FaultError, and handler panics
	// caught by the recoverPanics middleware).
	panics atomic.Int64
	// incidents numbers recovered panics so a 500's incident id can be
	// correlated with the server log.
	incidents atomic.Int64

	// preOptimize, when non-nil, runs after admission and before the
	// optimizer is invoked. Tests use it to hold admitted requests at a
	// deterministic point (filling slots and queues) and to observe the
	// request context.
	preOptimize func(ctx context.Context, req *OptimizeRequest)
}

// New builds a Server over its config.
func New(cfg Config) *Server {
	cfg = cfg.normalize()
	s := &Server{
		cfg:     cfg,
		adm:     NewScheduler(cfg.DefaultTenant, cfg.Tenants, cfg.StrictTenants, cfg.Sched),
		pool:    newSessionPool(cfg.PoolSize),
		breaker: newBreaker(cfg.Breaker),
		started: time.Now(),
	}
	if cfg.Batch.Enabled {
		s.batcher = newBatcher(s, cfg.Batch)
	}
	return s
}

// Admission exposes the admission controller (quota resets, stats).
func (s *Server) Admission() *Admission { return s.adm }

// PanicsRecovered reports how many panics the serving path has recovered
// since startup.
func (s *Server) PanicsRecovered() int64 { return s.panics.Load() }

// Drain flips the server into draining mode: /healthz turns 503 and new
// optimize requests are rejected with 503 + Retry-After, while already
// admitted requests run to completion. Callers then use
// http.Server.Shutdown to wait for the in-flight handlers.
func (s *Server) Drain() { s.draining.Store(true) }

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Handler returns the server's routing table, wrapped in the
// panic-isolation middleware: no request, however it fails, takes the
// process down.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/optimize", s.handleOptimize)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("POST /v1/tenants/{tenant}/reset", s.handleTenantReset)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/cache/snapshot", s.handleSnapshotGet)
	mux.HandleFunc("PUT /v1/cache/snapshot", s.handleSnapshotPut)
	return s.recoverPanics(mux)
}

// trackingWriter remembers whether the handler already wrote, so the
// panic middleware only writes its 500 on a still-virgin response.
type trackingWriter struct {
	http.ResponseWriter
	wrote bool
}

func (w *trackingWriter) WriteHeader(code int) {
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *trackingWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// incident mints a log-correlatable id for one recovered panic.
func (s *Server) incident() string {
	return fmt.Sprintf("inc-%x-%d", s.started.UnixNano()&0xffffff, s.incidents.Add(1))
}

// recoverPanics is the last line of the panic-isolation contract: a panic
// escaping any handler is logged with an incident id and turned into a
// 500 (when nothing was written yet) instead of killing the connection's
// serving goroutine with a blank reply.
func (s *Server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tw := &trackingWriter{ResponseWriter: w}
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if rec == http.ErrAbortHandler { // deliberate connection abort
				panic(rec)
			}
			id := s.incident()
			s.panics.Add(1)
			s.logf("server: %s %s: panic recovered (incident %s): %v", r.Method, r.URL.Path, id, rec)
			if !tw.wrote {
				writeJSON(tw, http.StatusInternalServerError, errorBody{
					Error:    "internal error (incident " + id + ")",
					Code:     codeInternalPanic,
					Incident: id,
				})
			}
		}()
		next.ServeHTTP(tw, r)
	})
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logger != nil {
		s.cfg.Logger.Printf(format, args...)
	}
}

// writeJSON writes one JSON response body.
func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(body) // the client may be gone; nothing to do about it
}

// writeError writes the error body, with a Retry-After header (whole
// seconds, rounded up, ≥ 1) when retryAfter > 0. code is the stable
// machine-readable reason clients dispatch on.
func writeError(w http.ResponseWriter, status int, code, msg string, retryAfter time.Duration) {
	body := errorBody{Error: msg, Code: code}
	if retryAfter > 0 {
		secs := int64((retryAfter + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		body.RetryAfterMS = retryAfter.Milliseconds()
	}
	writeJSON(w, status, body)
}

// tenantOf resolves the request's tenant: X-Tenant header first, then the
// body field, then "default".
func tenantOf(r *http.Request, req *OptimizeRequest) string {
	if t := r.Header.Get("X-Tenant"); t != "" {
		return t
	}
	if req.Tenant != "" {
		return req.Tenant
	}
	return "default"
}

// requestCost estimates a request's scheduling cost in query-count units
// before its batch is built: the spec's query count, or the statement
// count of the SQL payload. The DRR deficit charge scales with it, so a
// 64-query bulk request draws 64× the deficit of a single-query one.
func requestCost(req *OptimizeRequest) int {
	if req.Spec != nil {
		return req.Spec.Queries
	}
	return strings.Count(req.SQL, ";") + 1
}

// preemptibleStrategy reports whether a strategy checkpoints at round
// boundaries, which is what makes its solo runs safe to suspend and
// resume bit-identically.
func preemptibleStrategy(s core.Strategy) bool {
	switch s {
	case core.Greedy, core.LazyGreedyStrategy, core.MarginalGreedy, core.LazyMarginalGreedy:
		return true
	}
	return false
}

// maxTenantNameLen bounds tenant names: they become map keys, stats keys
// and log fields, so an attacker-sized header must not inflate them.
const maxTenantNameLen = 100

// validTenantName accepts short printable-ASCII names without spaces —
// safe as JSON keys, header echoes and log fields.
func validTenantName(s string) bool {
	if len(s) == 0 || len(s) > maxTenantNameLen {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] <= ' ' || s[i] >= 0x7f {
			return false
		}
	}
	return true
}

// buildBatch materializes the request's batch: the workload generator for
// spec payloads, the SQL parser for sql payloads.
func (s *Server) buildBatch(req *OptimizeRequest) (*logical.Batch, error) {
	if req.Spec != nil {
		return workload.Generate(*req.Spec)
	}
	batch, err := parser.ParseBatch(req.SQL)
	if err != nil {
		return nil, err
	}
	if s.cfg.MaxQueries > 0 && len(batch.Queries) > s.cfg.MaxQueries {
		return nil, errors.New("sql batch exceeds the server's query cap")
	}
	return batch, nil
}

// runSpec is the fully resolved execution shape of one request after
// every clamp: strategy, parallelism and budgets with the tenant's caps
// and (when degraded) the breaker's clamps already applied. It is
// comparable, so the batch scheduler keys lanes on it — requests coalesce
// only when the one shared run's options are exactly what each member
// would have run solo with.
type runSpec struct {
	strategy    core.Strategy
	parallelism int
	timeMS      int64
	callBudget  int // -1 = unbudgeted; 0 is meaningful (forbid all calls)
}

// effectiveSpec resolves a request against its tenant's caps and, when
// non-nil, the degraded clamps: the effective budget is the tightest of
// the request's ask, the tenant's cap and the degraded clamp, and
// degraded serving forces the cheap LazyGreedy fallback strategy.
func effectiveSpec(req *OptimizeRequest, cfg TenantConfig, deg *BreakerConfig) runSpec {
	strat, _ := parseStrategy(req.Strategy) // validated at decode time
	if deg != nil {
		strat = core.LazyGreedyStrategy
	}
	rs := runSpec{
		strategy:    strat,
		parallelism: req.Parallelism,
		timeMS:      req.TimeBudgetMS,
		callBudget:  -1,
	}
	clampTime := func(capMS int64) {
		if capMS > 0 && (rs.timeMS == 0 || rs.timeMS > capMS) {
			rs.timeMS = capMS
		}
	}
	clampTime(cfg.TimeBudgetMS)
	if deg != nil {
		clampTime(deg.DegradedTimeBudgetMS)
	}
	if req.OracleCallBudget != nil {
		rs.callBudget = *req.OracleCallBudget
	}
	clampCalls := func(cap int) {
		if cap > 0 && (rs.callBudget < 0 || rs.callBudget > cap) {
			rs.callBudget = cap
		}
	}
	clampCalls(cfg.CallBudget)
	if deg != nil {
		clampCalls(deg.DegradedCallBudget)
	}
	return rs
}

// options maps the resolved spec onto Session options.
func (rs runSpec) options() []repro.Option {
	opts := []repro.Option{
		repro.WithStrategy(rs.strategy),
		repro.WithParallelism(rs.parallelism),
	}
	if rs.timeMS > 0 {
		opts = append(opts, repro.WithTimeBudget(time.Duration(rs.timeMS)*time.Millisecond))
	}
	if rs.callBudget >= 0 {
		opts = append(opts, repro.WithOracleCallBudget(rs.callBudget))
	}
	return opts
}

func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, codeDraining, "server is draining", 5*time.Second)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, codeBodyTooLarge, "request body too large", 0)
			return
		}
		writeError(w, http.StatusBadRequest, codeBadRequest, "reading request body: "+err.Error(), 0)
		return
	}
	req, err := decodeOptimizeRequest(body, s.cfg.MaxQueries)
	if err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, err.Error(), 0)
		return
	}
	tenantName := tenantOf(r, req)
	if !validTenantName(tenantName) {
		writeError(w, http.StatusBadRequest, codeBadRequest,
			fmt.Sprintf("tenant name must be 1..%d printable non-space ASCII characters", maxTenantNameLen), 0)
		return
	}
	ctx := r.Context()

	queuedAt := time.Now()
	g, err := s.adm.AcquireGrant(ctx, AdmitRequest{
		Tenant:   tenantName,
		Cost:     requestCost(req),
		Deadline: time.Duration(req.DeadlineMS) * time.Millisecond,
	})
	if err != nil {
		s.rejected(w, tenantName, err)
		return
	}
	queueWait := time.Since(queuedAt)
	// Charge the admission slot and the tenant quota exactly once, with
	// whatever the run actually spent.
	spent := 0
	defer func() { g.Release(spent) }()

	if s.preOptimize != nil {
		s.preOptimize(ctx, req)
	}

	batch, err := s.buildBatch(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, err.Error(), 0)
		return
	}
	sf := req.SF
	if sf == 0 {
		sf = s.cfg.DefaultSF
	}
	if !slices.Contains(s.cfg.AllowedSFs, sf) {
		writeError(w, http.StatusBadRequest, codeBadRequest,
			fmt.Sprintf("sf %v is not served; allowed scale factors: %v", sf, s.cfg.AllowedSFs), 0)
		return
	}
	key := poolKey{sf: sf, extended: req.ExtendedOps}

	degraded, retry, admitted := s.breaker.admit(key)
	if !admitted {
		writeError(w, http.StatusServiceUnavailable, codeBreakerOpen,
			"catalog "+key.String()+" is temporarily unavailable after repeated faults", retry)
		return
	}
	var degCfg *BreakerConfig
	if degraded {
		degCfg = &s.cfg.Breaker
	}
	tenantCfg := s.adm.Config(tenantName)

	// Continuous batching: an admitted, breaker-cleared request without a
	// resume checkpoint enqueues into its lane and blocks for its
	// attributed slice of the shared run (checkpoints bind to a single
	// search space, so resume stays on the solo path). The outcome always
	// arrives — the run path is panic-isolated — and carries the member's
	// exact oracle-call share for the quota charge.
	if s.batcher != nil && req.Resume == nil {
		fp, _ := batchFingerprint(batch)
		out := s.batcher.submit(
			laneKey{pool: key, spec: effectiveSpec(req, tenantCfg, degCfg), degraded: degraded},
			&batchMember{
				ctx:      ctx,
				batch:    batch,
				fp:       fp,
				tenant:   tenantName,
				planText: req.PlanText,
				outcome:  make(chan batchOutcome, 1),
			})
		spent = out.spent
		switch {
		case out.cancelled:
			w.WriteHeader(499) // the client is gone; nginx's convention
		case out.resp != nil:
			out.resp.Tenant = tenantName
			out.resp.QueueWaitNS = queueWait.Nanoseconds()
			writeJSON(w, http.StatusOK, out.resp)
		default:
			writeJSON(w, out.status, out.body)
		}
		return
	}

	sess, poolRelease, err := s.pool.acquire(key)
	if err != nil {
		writeError(w, http.StatusInternalServerError, codeInternalError, err.Error(), 0)
		return
	}
	defer poolRelease()
	// A panic past this point may have corrupted the shared session: pull
	// it from the pool before letting the middleware answer the request.
	defer func() {
		if rec := recover(); rec != nil {
			s.pool.quarantine(key, sess)
			s.breaker.recordFailure(key)
			panic(rec)
		}
	}()

	rs := effectiveSpec(req, tenantCfg, degCfg)
	stratName := rs.strategy.String()
	resume := req.Resume
	if resume != nil {
		stratName = resume.State.Algorithm // non-nil State: decode-validated
	}
	// A solo run under a checkpoint-capable strategy is preemptible: the
	// scheduler may ask it to suspend at its next round boundary to serve a
	// nearer-deadline request, after which the handler yields the slot,
	// waits for a re-grant and resumes from the checkpoint. Segment
	// telemetry is merged so the response — and the quota charge — account
	// the run's work exactly once across the suspensions.
	preemptible := resume != nil || preemptibleStrategy(rs.strategy)
	var segs []repro.Telemetry
	var res *repro.RunResult
	for {
		runOpts := rs.options()
		if resume != nil {
			runOpts = append(runOpts, repro.WithResume(resume))
		}
		if preemptible {
			g.SetPreemptible(true)
			runOpts = append(runOpts, repro.WithPreemptSignal(g.PreemptRequested))
		}
		res, err = sess.Optimize(ctx, batch, runOpts...)
		if err != nil {
			g.SetPreemptible(false)
			for _, t := range segs {
				spent += t.OracleCalls
			}
			var fe *repro.FaultError
			switch {
			case errors.As(err, &fe):
				// A worker panic was recovered inside the optimizer: answer
				// with an incident id (plus any resumable state the run had
				// committed), quarantine the session, and charge the tenant
				// for the work the faulted run did burn.
				id := s.incident()
				s.panics.Add(1)
				s.pool.quarantine(key, sess)
				s.breaker.recordFailure(key)
				s.logf("server: %s: optimization faulted (incident %s): %v", tenantName, id, fe.Panic)
				spent += fe.Telemetry.OracleCalls
				writeJSON(w, http.StatusInternalServerError, errorBody{
					Error:      "optimization faulted (incident " + id + ")",
					Code:       codeInternalPanic,
					Incident:   id,
					Checkpoint: fe.Checkpoint,
				})
			case errors.Is(err, repro.ErrResumeMismatch):
				writeError(w, http.StatusConflict, codeResumeMismatch, err.Error(), 0)
			default:
				// NewOptimizer rejects batches that are invalid against the
				// catalog (unknown tables/columns, malformed predicates): the
				// request's fault, not the server's.
				writeError(w, http.StatusBadRequest, codeBadRequest, err.Error(), 0)
			}
			return
		}
		if res.Telemetry.Stopped != repro.StopPreempted {
			break
		}
		// Suspended at a round boundary. A nil checkpoint means the
		// strategy was in a non-checkpointable phase: it still yields, but
		// restarts from the original request afterwards and stops
		// volunteering as a victim (the burned segment stays charged).
		if res.Checkpoint == nil {
			preemptible = false
			g.SetPreemptible(false)
			resume = req.Resume
		} else {
			resume = res.Checkpoint
		}
		if yerr := g.Yield(ctx); yerr != nil {
			// No re-grant (queue-wait timeout or the client left): stop
			// here. The suspended segment's committed prefix plus its
			// checkpoint is exactly the shape of a budget stop, so it
			// falls through to the normal response.
			s.logf("server: %s: preempted run not resumed: %v", tenantName, yerr)
			break
		}
		segs = append(segs, res.Telemetry)
	}
	g.SetPreemptible(false)
	if len(segs) > 0 {
		res.Telemetry = repro.MergeSegments(append(segs, res.Telemetry))
	}
	spent = res.Telemetry.OracleCalls
	// A deadline stop is a breaker failure — a catalog that cannot finish
	// inside its budgets degrades before it monopolizes the pool.
	if res.Telemetry.Stopped == repro.StopTimeBudget {
		s.breaker.recordFailure(key)
	} else {
		s.breaker.recordSuccess(key)
	}

	resp := &OptimizeResponse{
		Tenant:       tenantName,
		Strategy:     stratName,
		Queries:      len(batch.Queries),
		Materialized: make([]int, 0, len(res.Materialized)),
		CostMS:       res.Cost,
		VolcanoMS:    res.VolcanoCost,
		BenefitMS:    res.Benefit,
		Plan:         summarizePlan(res.Plan),
		Telemetry:    res.Telemetry,
		BuildNS:      res.BuildTime.Nanoseconds(),
		OptNS:        res.OptTime.Nanoseconds(),
		ExtractNS:    res.ExtractTime.Nanoseconds(),
		QueueWaitNS:  queueWait.Nanoseconds(),
		Checkpoint:   res.Checkpoint,
		Degraded:     degraded,
		Preemptions:  g.Preemptions(),
	}
	for _, g := range res.Materialized {
		resp.Materialized = append(resp.Materialized, int(g))
	}
	if req.PlanText {
		resp.PlanText = res.Plan.String()
	}
	writeJSON(w, http.StatusOK, resp)
}

// rejected maps an admission error onto its HTTP status.
func (s *Server) rejected(w http.ResponseWriter, tenant string, err error) {
	retry := s.adm.RetryAfter(tenant, err)
	switch {
	case errors.Is(err, ErrQueueFull):
		writeError(w, http.StatusTooManyRequests, codeQueueFull, err.Error(), retry)
	case errors.Is(err, ErrQuotaExhausted):
		writeError(w, http.StatusTooManyRequests, codeQuotaExhausted, err.Error(), retry)
	case errors.Is(err, ErrTenantOverflow):
		writeError(w, http.StatusTooManyRequests, codeTenantOverflow, err.Error(), retry)
	case errors.Is(err, ErrQueueTimeout):
		writeError(w, http.StatusServiceUnavailable, codeQueueTimeout, err.Error(), retry)
	case errors.Is(err, ErrUnknownTenant):
		writeError(w, http.StatusForbidden, codeUnknownTenant, err.Error(), 0)
	case errors.Is(err, ErrCancelled):
		// The client is gone; the status is never seen. 499 is the
		// conventional nginx code for this.
		w.WriteHeader(499)
	default:
		writeError(w, http.StatusInternalServerError, codeInternalError, err.Error(), 0)
	}
	s.logf("server: %s: rejected: %v", tenant, err)
}

// StatsResponse is the body of GET /v1/stats.
type StatsResponse struct {
	UptimeNS int64                  `json:"uptime_ns"`
	Draining bool                   `json:"draining"`
	Tenants  map[string]TenantStats `json:"tenants"`
	Pool     []PoolEntryStats       `json:"pool"`
	// PanicsRecovered counts panics the serving path absorbed (optimizer
	// faults and handler panics) since startup.
	PanicsRecovered int64 `json:"panics_recovered"`
	// Retired aggregates the lifetime stats of sessions the pool dropped
	// (evicted or quarantined): Pool + Retired is the full serving
	// history, so telemetry conservation survives session churn.
	Retired      repro.SessionStats `json:"retired_sessions"`
	RetiredCount int                `json:"retired_session_count"`
	// Breakers reports catalogs with non-trivial breaker state.
	Breakers map[string]BreakerStats `json:"breakers,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	retired, retiredCount := s.pool.retiredStats()
	writeJSON(w, http.StatusOK, &StatsResponse{
		UptimeNS:        time.Since(s.started).Nanoseconds(),
		Draining:        s.draining.Load(),
		Tenants:         s.adm.Stats(),
		Pool:            s.pool.stats(),
		PanicsRecovered: s.panics.Load(),
		Retired:         retired,
		RetiredCount:    retiredCount,
		Breakers:        s.breaker.snapshot(),
	})
}

// TenantResetResponse is the body of POST /v1/tenants/{tenant}/reset.
type TenantResetResponse struct {
	Tenant string      `json:"tenant"`
	Stats  TenantStats `json:"stats"`
}

// handleTenantReset is the operator's quota reset: it refills the named
// tenant's token bucket to capacity and zeroes its recorded spend, then
// reports the tenant's post-reset counters.
func (s *Server) handleTenantReset(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("tenant")
	if !validTenantName(name) {
		writeError(w, http.StatusBadRequest, codeBadRequest,
			fmt.Sprintf("tenant name must be 1..%d printable non-space ASCII characters", maxTenantNameLen), 0)
		return
	}
	if !s.adm.ResetQuota(name) {
		writeError(w, http.StatusNotFound, codeTenantNotFound,
			"tenant "+name+" has no admission state to reset", 0)
		return
	}
	s.logf("server: %s: quota reset", name)
	writeJSON(w, http.StatusOK, &TenantResetResponse{Tenant: name, Stats: s.adm.Stats()[name]})
}

// healthzResponse is the body of GET /healthz.
type healthzResponse struct {
	Status   string                  `json:"status"`
	Breakers map[string]BreakerStats `json:"breakers,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := http.StatusOK
	state := "ok"
	breakers := s.breaker.snapshot()
	for _, b := range breakers {
		if b.State != "closed" {
			state = "degraded"
		}
	}
	if s.draining.Load() {
		status = http.StatusServiceUnavailable
		state = "draining"
	}
	writeJSON(w, status, healthzResponse{Status: state, Breakers: breakers})
}
