// Package server is the HTTP serving front end over repro.Session: a thin
// JSON API that turns the ctx-aware, concurrent-safe optimizer into a
// multi-tenant network service with explicit admission control.
//
// # Endpoints
//
//	POST /v1/optimize  optimize one batch (workload spec or SQL payload);
//	                   returns the materialization set, a plan summary and
//	                   the full core.Telemetry of the run
//	GET  /v1/stats     per-tenant admission counters incl. quota-bucket
//	                   refill state (quota_remaining, refill_per_sec,
//	                   next_admit_ms), session-pool stats (live + retired
//	                   aggregate), recovered-panic count, per-catalog
//	                   breaker states
//	POST /v1/tenants/{tenant}/reset  admin: refill the tenant's quota
//	                   bucket to capacity and return its fresh stats
//	GET  /healthz      200 while serving ("ok", or "degraded" with the
//	                   non-closed breakers listed), 503 while draining
//
// # Admission-control contract
//
// Every optimize request is attributed to a tenant (the X-Tenant header or
// the request's "tenant" field; "default" when absent) and passes the
// tenant's admission gate before any optimizer work happens:
//
//   - Concurrency: at most MaxConcurrent requests of a tenant run at once.
//   - Queueing: excess requests wait in a bounded per-tenant queue of
//     QueueDepth slots. A request whose queue wait exceeds QueueWait is
//     rejected with 503 and a Retry-After header; a request arriving at a
//     full queue is rejected immediately with 429 and Retry-After. Without
//     a shared slot pool (SchedConfig.Slots == 0) freed slots are handed
//     out in arrival order; with one, dispatch order is the scheduling
//     policy's (below).
//   - Quota: when CallQuota > 0, the tenant's completed requests are
//     charged their actual Telemetry.OracleCalls against a token bucket;
//     a tenant whose bucket is empty is rejected with 429 and a
//     Retry-After computed from the actual refill rate. With
//     RefillPerSec == 0 the bucket is manual-reset-only (ResetQuota or
//     the admin endpoint), and exhaustion also cuts the tenant's wait
//     queue — queued requests get the 429 immediately instead of burning
//     their deadline.
//   - Budgets: TimeBudget and CallBudget cap each admitted request via
//     repro.WithTimeBudget / WithOracleCallBudget. A request may ask for
//     tighter budgets than the tenant's; looser ones are clamped to the
//     tenant cap. A budgeted run that stops early still returns 200 — the
//     deterministic best-so-far result with Telemetry.Stopped saying why.
//   - Cancellation: the request context is the optimize context, so a
//     client disconnect stops the run between oracle rounds and frees the
//     tenant's slot promptly.
//
// Rejected requests never touch a session: they are not counted in
// SessionStats and spend no oracle calls. Admitted requests are charged
// exactly once, on completion, even when the client has gone away.
// Faulted requests (below) are charged the oracle calls their run made
// before the fault; in SessionStats they appear only as Faults.
//
// Every non-2xx body carries a stable machine-readable "code" field
// (bad_request, body_too_large, queue_full, quota_exhausted,
// queue_timeout, tenant_overflow, unknown_tenant, draining, breaker_open,
// resume_mismatch, internal_panic, internal_error) — clients dispatch on
// the code; the human-readable "error" text is not contractual.
//
// # Scheduling and SLO-aware preemption
//
// With SchedConfig.Slots > 0 every tenant additionally competes for a
// shared worker-slot pool, dispatched by SchedConfig.Policy:
//
//   - PolicyDRR (default) is deficit round-robin: a rotation pointer
//     parks on one tenant, replenishes its deficit by Quantum×Weight once
//     per visit, serves it while the deficit covers the head request's
//     cost (its query count), then advances. Over any backlogged window
//     each tenant's share of dispatched work is proportional to its
//     Weight; a request costing more than one quantum accumulates deficit
//     across rotations instead of starving or being starved.
//   - Earliest-deadline-first cut-ahead: a waiter with a deadline (the
//     request's deadline_ms, falling back to the tenant's DeadlineMS) may
//     jump the round-robin order, borrowing up to one Quantum×Weight of
//     deficit debt. The borrow bound keeps an SLO tenant from starving
//     bulk tenants: past it, the deadline waiter falls back to weighted
//     order until its deficit recovers. Deficits (debts and credits
//     alike) expire when a tenant's queue drains — fairness is over busy
//     periods, not eternity.
//   - PolicyFIFO dispatches strictly in global arrival order and ignores
//     weights and deadlines — the baseline the CI fairness gate measures
//     DRR against.
//
// Unless SchedConfig.NoPreempt is set, a deadline waiter that cannot be
// dispatched picks one running preemptible victim — the grant with the
// latest deadline, deadline-less bulk work first — and asks it to
// suspend. The victim's run stops at its next greedy round boundary with
// a checkpoint, yields its slot (the freed slot goes to the
// earliest-deadline waiter), re-enters its tenant's queue at its
// original arrival position — ahead of later arrivals — and resumes
// transparently via the checkpoint when re-granted. The client sees one
// ordinary 200 whose "preemptions" field counts the suspensions. If
// re-granting exceeds the tenant's queue wait, the client instead gets
// the completed-prefix response with Stopped "preempted" and a resumable
// checkpoint — the same contract as a budget stop.
//
// What preemption conserves, exactly and approximately:
//
//   - The result — materialization set, cost, volcano cost, benefit —
//     plus Rounds and Pruned are bit-identical to the unpreempted run,
//     however many times the run was suspended. The CI fairness gate and
//     the preemption suites pin this.
//   - Telemetry.OracleCalls grows by exactly one per resumed segment: the
//     continuation re-derives the committed selection's value against a
//     fresh per-run memo. A response's total spend is therefore the
//     unpreempted run's calls + its Preemptions count.
//   - The tenant's quota is charged the response's actual merged
//     OracleCalls — charge and report always agree.
//   - BCCalls and CacheHits are NOT conserved: segments re-enter the
//     session's shared cost cache with whatever warmth it has by then.
//
// # Continuous batching
//
// With Config.Batch.Enabled (strictly opt-in — the zero value serves
// every request solo, exactly as before), admitted optimize requests
// enter per-lane accumulators instead of running immediately. A lane is
// keyed by everything that must match for one shared run to stand in for
// each member's solo run: the catalog (pool key), the fully-clamped
// effective run spec (strategy, parallelism, time and call budgets after
// tenant caps and degradation clamps), and the degradation flag. Tenancy
// is deliberately NOT in the key — cross-tenant sharing is the point, and
// attribution keeps each tenant's accounting exact. Requests carrying a
// resume checkpoint bypass batching (a checkpoint binds to its original
// search space).
//
// A lane flushes when MaxRequests members wait in it, when their combined
// query count reaches MaxQueries (if set), or when the first member has
// waited MaxDelay. The flush first excises members whose clients already
// disconnected (answered 499, never part of the run), then coalesces the
// rest: members whose batches are structurally identical — equal per-query
// memo fingerprints and names — collapse into ONE group served by one
// sub-run (eight identical clients cost one solo run, the throughput
// lever), while distinct batches stay separate groups of one combined
// DAG. One Session.OptimizeShared call optimizes all groups together and
// returns per-group attributions.
//
// Attribution is exact, not estimated: each member receives its own
// materialization-set slice, its own plan summary (only its queries, only
// the steps its attribution owns a share of), its own cost/benefit plus a
// SharedCreditMS subsidy, and a conserving telemetry share — summing the
// members' Telemetry fields reproduces the shared run's exactly, which is
// what the tenant quota is charged with (one member of an n-way
// coalesced group pays ~1/n of that group's oracle calls). The same
// conservation holds for faulted runs: the telemetry the run burned
// before a panic is split across the members and charged, under one
// incident id and one session quarantine. Disconnection of SOME members
// never aborts a running shared optimization (the survivors are riding
// it); only when every member's client is gone is the run cancelled. A
// member whose batch is invalid against the catalog cannot poison its
// peers: the combined-build failure falls back to per-member solo runs,
// so the guilty request gets its own 400 and the others are served
// unbatched.
//
// Two sharp edges the contract pins down. Privacy/safety: PlanText and
// resumable checkpoints are only delivered when the batch has exactly one
// member — a combined run's rendered plan and checkpoints span every
// member's queries and search space. Sizing: members waiting in a lane
// hold their admission slots, so a tenant's MaxConcurrent should be at
// least Batch.MaxRequests (the default 5ms MaxDelay bounds the wait
// regardless, but an undersized tenant can never fill a lane and loses
// the coalescing win).
//
// # Fault tolerance
//
// A panic inside an optimization — in the batched-oracle workers, the
// executor's wavefront tasks, or the handler itself — never kills the
// process. Worker goroutines recover into a typed faultinject.PanicError;
// the handler answers 500 with code internal_panic, an incident id (also
// logged with the stack), and any round-boundary checkpoint the run had
// committed. The owning session is quarantined: removed from the pool at
// once (in-flight pins defer its retirement, so concurrent runs keep
// their shared cache) and rebuilt on the key's next request; its lifetime
// stats fold into the retired aggregate /v1/stats reports, so telemetry
// conservation — pooled + retired stats = sum over responses — survives
// the churn.
//
// Budget- or cancellation-stopped runs return a resumable checkpoint in
// the response; POST it back as "resume" to continue bit-identically on
// any server instance whose batch, sf and extended_ops reproduce the
// original search space (fingerprint-verified; mismatch is a 409 with
// code resume_mismatch).
//
// Each catalog (pool key) carries a circuit breaker. Repeated recovered
// panics or time-budget deadline stops move it closed → degraded —
// requests still answer 200 but under clamped budgets and the cheap
// LazyGreedy fallback, flagged "degraded":true — and, if failures
// continue, degraded → open: 503 + Retry-After with code breaker_open
// until a cooldown admits one degraded probe, whose outcome decides
// between reopening and recovery. /healthz reports any non-closed breaker
// under status "degraded" (still 200 — the instance serves).
//
// Tenant names are attacker-controlled input: they must be short
// printable ASCII (400 otherwise), and a non-strict controller allocates
// state for at most 4096 distinct lazily-created names (429 beyond that),
// so request-invented tenants cannot grow server memory without bound.
//
// # Draining
//
// Server.Drain flips the server into draining mode: new optimize requests
// are rejected with 503 + Retry-After and /healthz turns 503, while
// requests already admitted (running or queued) finish normally. The
// mqoserver binary calls Drain on SIGTERM/SIGINT and then http.Server.
// Shutdown, which waits for the in-flight handlers.
//
// # Determinism
//
// The front end adds no nondeterminism: for a given spec/SQL payload,
// strategy and parallelism, the response's materialization set, costs and
// oracle-call telemetry are bit-identical to a direct Session.Optimize
// call (the session's shared cost cache can only add SharedHits, never
// change a result). The e2e tests pin this byte-for-byte. Under
// preemption the result stays bit-identical and only OracleCalls moves,
// by exactly the response's Preemptions count (one re-derivation per
// resumed segment — see the scheduling section).
package server
