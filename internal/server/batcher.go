package server

import (
	"context"
	"errors"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/logical"
	"repro/internal/memo"
	"repro/internal/physical"
)

// BatchConfig parameterizes cross-request continuous batching. The zero
// value disables it: requests are served solo exactly as before, so
// batching is strictly opt-in per server.
type BatchConfig struct {
	// Enabled turns the batch scheduler on. Disabled, every request takes
	// the solo path.
	Enabled bool `json:"enabled,omitempty"`
	// MaxRequests flushes a lane as soon as this many requests wait in it
	// (default 8).
	MaxRequests int `json:"max_requests,omitempty"`
	// MaxDelayMS is the longest the first request of a lane waits for
	// peers before the lane flushes anyway (default 5).
	MaxDelayMS int64 `json:"max_delay_ms,omitempty"`
	// MaxQueries flushes a lane when its combined query count reaches this
	// bound (0 = requests-only flushing). It caps the size of the combined
	// DAG one shared run must carry.
	MaxQueries int `json:"max_queries,omitempty"`
}

func (c BatchConfig) normalize() BatchConfig {
	if c.MaxRequests <= 0 {
		c.MaxRequests = 8
	}
	if c.MaxDelayMS <= 0 {
		c.MaxDelayMS = 5
	}
	return c
}

func (c BatchConfig) maxDelay() time.Duration {
	return time.Duration(c.MaxDelayMS) * time.Millisecond
}

// laneKey identifies one batchable stream: requests coalesce only when
// they target the same catalog, resolve to the same effective run spec
// (strategy, parallelism, budgets after tenant and degradation clamps)
// and the same degradation state, so the single shared run's options are
// exactly what every member would have run solo with. Tenancy is NOT part
// of the key — cross-tenant sharing is the point, and the attribution
// split keeps each tenant's accounting exact.
type laneKey struct {
	pool     poolKey
	spec     runSpec
	degraded bool
}

// batchMember is one admitted request waiting in a lane. Its outcome
// channel (buffered, written exactly once) carries everything the handler
// needs to answer the client and charge the tenant quota.
type batchMember struct {
	ctx      context.Context
	batch    *logical.Batch
	fp       string // batch fingerprint; "" = not coalescible
	tenant   string
	planText bool
	outcome  chan batchOutcome
}

// batchOutcome is the terminal state of one member: a 200 response, an
// error response, or a pre-run cancellation. spent is the member's exact
// oracle-call share, charged against its tenant quota by the handler's
// admission release.
type batchOutcome struct {
	resp      *OptimizeResponse // non-nil: answer 200
	status    int               // else: answer status/body
	body      *errorBody
	spent     int
	cancelled bool // client gone before the run started: answer 499
}

// lane is the accumulating state of one laneKey: members joined since the
// last flush, their combined query count, and the deadline timer armed by
// the first member. A lane is detached (removed from the map, timer
// disarmed) exactly once — by the size/query trigger or by the deadline —
// and then owned by the goroutine running it.
type lane struct {
	key       laneKey
	members   []*batchMember
	queries   int
	flushed   bool
	detached  chan struct{}
	stopTimer func() bool
}

// batcher is the continuous-batching scheduler: admitted requests enqueue
// into per-laneKey lanes, and each flush coalesces the waiting members'
// batches into one combined DAG, runs one shared optimization, and
// attributes the result back per member — exact materialization slices,
// conserving telemetry shares, per-tenant quota charges.
type batcher struct {
	srv *Server
	cfg BatchConfig

	mu    sync.Mutex
	lanes map[laneKey]*lane

	// newTimer is the deadline-clock hook; tests swap it for a manual
	// trigger so flush timing is deterministic.
	newTimer func(time.Duration) (<-chan time.Time, func() bool)
	// onBatchComplete, when non-nil, observes every successful shared run:
	// the run's total telemetry and the per-member shares it was split
	// into. The race-stress conservation audit hangs off it.
	onBatchComplete func(total core.Telemetry, shares []core.Telemetry)
	// onBatchFault mirrors onBatchComplete for faulted shared runs: the
	// telemetry the run burned before its panic and the conserving
	// per-member shares it was charged out as.
	onBatchFault func(total core.Telemetry, shares []core.Telemetry)
	// batches and coalesced count flushed runs and members deduplicated
	// away by fingerprint coalescing.
	batches   atomic.Int64
	coalesced atomic.Int64
}

func newBatcher(srv *Server, cfg BatchConfig) *batcher {
	return &batcher{
		srv:   srv,
		cfg:   cfg.normalize(),
		lanes: make(map[laneKey]*lane),
		newTimer: func(d time.Duration) (<-chan time.Time, func() bool) {
			t := time.NewTimer(d)
			return t.C, t.Stop
		},
	}
}

// batchFingerprint renders the coalescing key of one member batch: the
// concatenated structural fingerprints and names of its queries. Members
// with equal fingerprints submitted structurally identical batches and
// are served from one shared sub-run. ok=false (some query is not
// fingerprintable) makes the member unique — it still batches, it just
// never deduplicates.
func batchFingerprint(b *logical.Batch) (string, bool) {
	if b == nil || len(b.Queries) == 0 {
		return "", false
	}
	key := ""
	for _, q := range b.Queries {
		fp, ok := memo.QueryFingerprint(q)
		if !ok {
			return "", false
		}
		key += strconv.Itoa(len(q.Name)) + ";" + q.Name + ";" + fp + "\x00"
	}
	return key, true
}

// coalesceBatches deduplicates member batches by fingerprint: the
// returned groups hold one batch per distinct fingerprint (first
// submitter wins, order preserved), and memberGroup maps each member to
// its group. Members without a fingerprint get their own group.
func coalesceBatches(members []*batchMember) (groups []*logical.Batch, memberGroup []int) {
	memberGroup = make([]int, len(members))
	index := make(map[string]int, len(members))
	for i, m := range members {
		if m.fp != "" {
			if gi, ok := index[m.fp]; ok {
				memberGroup[i] = gi
				continue
			}
			index[m.fp] = len(groups)
		}
		memberGroup[i] = len(groups)
		groups = append(groups, m.batch)
	}
	return groups, memberGroup
}

// submit enqueues one admitted request and blocks until its outcome is
// delivered. The outcome always arrives: flushes deliver to every member
// (including pre-run cancellations), and the run path is panic-isolated.
func (b *batcher) submit(key laneKey, m *batchMember) batchOutcome {
	b.mu.Lock()
	l := b.lanes[key]
	if l == nil {
		l = &lane{key: key, detached: make(chan struct{})}
		ch, stop := b.newTimer(b.cfg.maxDelay())
		l.stopTimer = stop
		b.lanes[key] = l
		go func() {
			select {
			case <-ch:
				b.flush(l)
			case <-l.detached:
			}
		}()
	}
	l.members = append(l.members, m)
	l.queries += len(m.batch.Queries)
	if len(l.members) >= b.cfg.MaxRequests || (b.cfg.MaxQueries > 0 && l.queries >= b.cfg.MaxQueries) {
		b.detachLocked(l)
		b.mu.Unlock()
		// The filling request's goroutine drives the shared run; its own
		// outcome is buffered, so running before receiving cannot deadlock.
		b.run(l)
	} else {
		b.mu.Unlock()
	}
	return <-m.outcome
}

// detachLocked removes the lane from the map and disarms its timer; the
// caller then owns the lane exclusively.
func (b *batcher) detachLocked(l *lane) {
	l.flushed = true
	delete(b.lanes, l.key)
	close(l.detached)
	l.stopTimer()
}

// flush is the deadline trigger: detach the lane unless the size trigger
// beat the timer, then run it.
func (b *batcher) flush(l *lane) {
	b.mu.Lock()
	if l.flushed {
		b.mu.Unlock()
		return
	}
	b.detachLocked(l)
	b.mu.Unlock()
	b.run(l)
}

// deliverer tracks which members already got their outcome, so the panic
// backstop can finish exactly the undelivered ones.
type deliverer struct {
	members []*batchMember
	sent    []bool
}

func (d *deliverer) deliver(i int, o batchOutcome) {
	if d.sent[i] {
		return
	}
	d.sent[i] = true
	d.members[i].outcome <- o
}

// run executes one detached lane: excise already-cancelled members,
// coalesce the rest by fingerprint, run one shared optimization on the
// lane's catalog session, and attribute the outcome per member. Every
// member receives exactly one outcome, whatever happens — including a
// panic anywhere in this function.
func (b *batcher) run(l *lane) {
	s := b.srv
	d := &deliverer{members: l.members, sent: make([]bool, len(l.members))}
	defer func() {
		rec := recover()
		if rec == nil {
			return
		}
		id := s.incident()
		s.panics.Add(1)
		s.logf("server: batch %s: panic recovered (incident %s): %v", l.key.pool, id, rec)
		for i := range l.members {
			d.deliver(i, batchOutcome{
				status: 500,
				body: &errorBody{
					Error:    "internal error (incident " + id + ")",
					Code:     codeInternalPanic,
					Incident: id,
				},
			})
		}
	}()

	// A member whose client disconnected while the lane filled is excised
	// here: answered 499, never part of the shared run.
	live := make([]int, 0, len(l.members))
	for i, m := range l.members {
		if m.ctx.Err() != nil {
			d.deliver(i, batchOutcome{cancelled: true})
			continue
		}
		live = append(live, i)
	}
	if len(live) == 0 {
		return
	}

	liveMembers := make([]*batchMember, len(live))
	for k, i := range live {
		liveMembers[k] = l.members[i]
	}
	groups, memberGroup := coalesceBatches(liveMembers)
	b.batches.Add(1)
	b.coalesced.Add(int64(len(live) - len(groups)))

	sess, release, err := s.pool.acquire(l.key.pool)
	if err != nil {
		for _, i := range live {
			d.deliver(i, batchOutcome{status: 500, body: &errorBody{Error: err.Error(), Code: codeInternalError}})
		}
		return
	}
	defer release()
	defer func() {
		if rec := recover(); rec != nil {
			s.pool.quarantine(l.key.pool, sess)
			s.breaker.recordFailure(l.key.pool)
			panic(rec) // the outer backstop answers the members
		}
	}()

	// The shared run is cancelled only when EVERY live member's client is
	// gone; one disconnect must not abort the run the others are riding.
	runCtx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var remaining atomic.Int32
	remaining.Store(int32(len(live)))
	stops := make([]func() bool, 0, len(live))
	for _, m := range liveMembers {
		stops = append(stops, context.AfterFunc(m.ctx, func() {
			if remaining.Add(-1) == 0 {
				cancel()
			}
		}))
	}
	defer func() {
		for _, stop := range stops {
			stop()
		}
	}()

	sres, err := sess.OptimizeShared(runCtx, groups, l.key.spec.options()...)
	if err != nil {
		var fe *repro.FaultError
		if errors.As(err, &fe) {
			b.faultBatch(l, live, sess, fe, d, len(groups))
			return
		}
		// The combined build failed — typically one member's batch is
		// invalid against the catalog. Fall back to per-member solo runs so
		// an innocent member is never 400'd for a peer's bad request.
		b.soloFallback(l, live, sess, d)
		return
	}
	if sres.Telemetry.Stopped == repro.StopTimeBudget {
		s.breaker.recordFailure(l.key.pool)
	} else {
		s.breaker.recordSuccess(l.key.pool)
	}

	// Split each group's attribution among the members it was coalesced
	// from. Group attributions conserve against the run exactly
	// (repro.OptimizeShared's contract) and SplitTelemetry conserves each
	// group's share exactly, so summing every member's telemetry
	// reproduces the run's — the invariant the quota charges and the
	// race-stress audit check.
	sharers := make([][]int, len(groups)) // group -> positions in live order
	for k, gi := range memberGroup {
		sharers[gi] = append(sharers[gi], k)
	}
	shares := make([]core.Telemetry, len(live))
	for gi, a := range sres.Attributions {
		ones := make([]int, len(sharers[gi]))
		for j := range ones {
			ones[j] = 1
		}
		split := repro.SplitTelemetry(a.Telemetry, ones)
		for j, k := range sharers[gi] {
			shares[k] = split[j]
		}
	}
	if b.onBatchComplete != nil {
		b.onBatchComplete(sres.Telemetry, shares)
	}

	for k, i := range live {
		m := liveMembers[k]
		a := sres.Attributions[memberGroup[k]]
		resp := &OptimizeResponse{
			Strategy:       l.key.spec.strategy.String(),
			Queries:        len(m.batch.Queries),
			Materialized:   make([]int, 0, len(a.Materialized)),
			CostMS:         a.Cost,
			VolcanoMS:      a.VolcanoCost,
			BenefitMS:      a.Benefit,
			SharedCreditMS: a.SharedCredit,
			Plan:           summarizeMemberPlan(sres.Plan, a),
			Telemetry:      shares[k],
			BuildNS:        sres.BuildTime.Nanoseconds(),
			OptNS:          sres.OptTime.Nanoseconds(),
			ExtractNS:      sres.ExtractTime.Nanoseconds(),
			Degraded:       l.key.degraded,
			Batched:        true,
			BatchSize:      len(live),
		}
		for _, g := range a.Materialized {
			resp.Materialized = append(resp.Materialized, int(g))
		}
		// Checkpoints bind to the combined search space and plan text spans
		// every member's queries: both are only safe to hand out when the
		// member IS the whole batch.
		if len(live) == 1 {
			resp.Checkpoint = sres.Checkpoint
			if m.planText {
				resp.PlanText = sres.Plan.String()
			}
		}
		d.deliver(i, batchOutcome{resp: resp, spent: shares[k].OracleCalls})
	}
}

// faultBatch answers every live member of a faulted shared run: one
// incident, one quarantine, one breaker failure — but each member is
// charged its exact telemetry share of the work the run burned before the
// panic, so the fault costs tenants what it actually cost the server.
func (b *batcher) faultBatch(l *lane, live []int, sess *repro.Session, fe *repro.FaultError, d *deliverer, nGroups int) {
	s := b.srv
	id := s.incident()
	s.panics.Add(1)
	s.pool.quarantine(l.key.pool, sess)
	s.breaker.recordFailure(l.key.pool)
	s.logf("server: batch %s: optimization faulted (incident %s): %v", l.key.pool, id, fe.Panic)
	ones := make([]int, len(live))
	for i := range ones {
		ones[i] = 1
	}
	shares := repro.SplitTelemetry(fe.Telemetry, ones)
	if b.onBatchFault != nil {
		b.onBatchFault(fe.Telemetry, shares)
	}
	for k, i := range live {
		body := &errorBody{
			Error:    "optimization faulted (incident " + id + ")",
			Code:     codeInternalPanic,
			Incident: id,
		}
		// A checkpoint from a combined run only resumes the combined
		// batch; hand it out only when this member is the whole run.
		if len(live) == 1 && nGroups == 1 {
			body.Checkpoint = fe.Checkpoint
		}
		d.deliver(i, batchOutcome{status: 500, body: body, spent: shares[k].OracleCalls})
	}
}

// soloFallback serves each live member with its own solo run on the
// lane's session after the combined build failed. Error handling mirrors
// the solo path: faults quarantine and answer 500 with an incident,
// anything else is the member's own 400.
func (b *batcher) soloFallback(l *lane, live []int, sess *repro.Session, d *deliverer) {
	s := b.srv
	for _, i := range live {
		m := l.members[i]
		res, err := sess.Optimize(m.ctx, m.batch, l.key.spec.options()...)
		if err != nil {
			var fe *repro.FaultError
			if errors.As(err, &fe) {
				id := s.incident()
				s.panics.Add(1)
				s.pool.quarantine(l.key.pool, sess)
				s.breaker.recordFailure(l.key.pool)
				s.logf("server: %s: optimization faulted (incident %s): %v", m.tenant, id, fe.Panic)
				d.deliver(i, batchOutcome{
					status: 500,
					body: &errorBody{
						Error:      "optimization faulted (incident " + id + ")",
						Code:       codeInternalPanic,
						Incident:   id,
						Checkpoint: fe.Checkpoint,
					},
					spent: fe.Telemetry.OracleCalls,
				})
				continue
			}
			d.deliver(i, batchOutcome{status: 400, body: &errorBody{Error: err.Error(), Code: codeBadRequest}})
			continue
		}
		if res.Telemetry.Stopped == repro.StopTimeBudget {
			s.breaker.recordFailure(l.key.pool)
		} else {
			s.breaker.recordSuccess(l.key.pool)
		}
		resp := &OptimizeResponse{
			Strategy:     l.key.spec.strategy.String(),
			Queries:      len(m.batch.Queries),
			Materialized: make([]int, 0, len(res.Materialized)),
			CostMS:       res.Cost,
			VolcanoMS:    res.VolcanoCost,
			BenefitMS:    res.Benefit,
			Plan:         summarizePlan(res.Plan),
			Telemetry:    res.Telemetry,
			BuildNS:      res.BuildTime.Nanoseconds(),
			OptNS:        res.OptTime.Nanoseconds(),
			ExtractNS:    res.ExtractTime.Nanoseconds(),
			Checkpoint:   res.Checkpoint,
			Degraded:     l.key.degraded,
		}
		for _, g := range res.Materialized {
			resp.Materialized = append(resp.Materialized, int(g))
		}
		if m.planText {
			resp.PlanText = res.Plan.String()
		}
		d.deliver(i, batchOutcome{resp: resp, spent: res.Telemetry.OracleCalls})
	}
}

// summarizeMemberPlan renders one member's slice of the combined plan:
// the materialization steps its attribution owns a share of, and exactly
// its queries' plans. TotalMS is the member's attributed cost, so a
// client summing its own responses reconstructs the batch totals.
func summarizeMemberPlan(cp *physical.ConsolidatedPlan, a repro.Attribution) PlanSummary {
	ps := PlanSummary{
		Steps:   make([]StepSummary, 0, len(a.Materialized)),
		Queries: make([]QuerySummary, 0, a.QueryCount),
		TotalMS: a.Cost,
	}
	for _, st := range cp.Steps {
		if !a.Set.Has(st.Group) {
			continue
		}
		ps.Steps = append(ps.Steps, StepSummary{
			Group:       int(st.Group),
			Op:          st.Plan.Op,
			Rows:        st.Plan.Rows,
			CostMS:      st.Plan.Cost,
			WriteCostMS: st.WriteCost,
		})
	}
	for i := a.QueryOffset; i < a.QueryOffset+a.QueryCount && i < len(cp.Queries); i++ {
		name := ""
		if i < len(cp.QueryNames) {
			name = cp.QueryNames[i]
		}
		ps.Queries = append(ps.Queries, QuerySummary{
			Name:      name,
			Operators: countOps(cp.Queries[i]),
			CostMS:    cp.Queries[i].Cost,
		})
	}
	return ps
}
