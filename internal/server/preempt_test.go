package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/tpcd"
	"repro/internal/workload"
)

// bulkSpec is a batch big enough that its greedy run spans many round
// boundaries — the preemption tests need the run still in flight when the
// interactive request arrives, even with the flat-L1 hot path making each
// round substantially cheaper.
func bulkSpec() workload.Spec {
	s := testSpec()
	s.Seed = 11
	s.Queries = 128
	return s
}

// soloReference runs a spec to completion on a fresh session — the
// bit-identity oracle every preempted-and-resumed run is compared against.
func soloReference(t *testing.T, spec workload.Spec, strat core.Strategy) *repro.RunResult {
	t.Helper()
	sess, err := repro.NewSession(tpcd.Catalog(1), cost.Default())
	if err != nil {
		t.Fatal(err)
	}
	ref, err := sess.Optimize(context.Background(), workload.MustGenerate(spec), repro.WithStrategy(strat))
	if err != nil {
		t.Fatal(err)
	}
	return ref
}

// waitPreemptibleActive polls until some running grant has declared itself
// preemptible — the deterministic signal that a bulk run is inside the
// optimizer with its preempt hook armed.
func waitPreemptibleActive(t *testing.T, a *Admission) {
	t.Helper()
	waitFor(t, func() bool {
		a.mu.Lock()
		defer a.mu.Unlock()
		for _, g := range a.activeG {
			if g.preemptible.Load() {
				return true
			}
		}
		return false
	})
}

// assertSameResult compares a served response's final result against the
// solo reference bit-for-bit: same materialization set, same cost floats.
func assertSameResult(t *testing.T, label string, got *OptimizeResponse, ref *repro.RunResult) {
	t.Helper()
	if len(got.Materialized) != len(ref.Materialized) {
		t.Fatalf("%s: materialized %v, want %v", label, got.Materialized, ref.Materialized)
	}
	for i, g := range ref.Materialized {
		if got.Materialized[i] != int(g) {
			t.Fatalf("%s: materialized %v, want %v", label, got.Materialized, ref.Materialized)
		}
	}
	if got.CostMS != ref.Cost || got.VolcanoMS != ref.VolcanoCost || got.BenefitMS != ref.Benefit {
		t.Fatalf("%s: costs = (%v, %v, %v), want (%v, %v, %v)",
			label, got.CostMS, got.VolcanoMS, got.BenefitMS, ref.Cost, ref.VolcanoCost, ref.Benefit)
	}
}

// TestPreemptRoundBoundaryBitIdentical is the tentpole's end-to-end
// contract: a deadline request arriving while a bulk greedy run holds the
// only slot suspends that run at its next round boundary, is served, and
// the bulk run transparently resumes — its response is bit-identical to an
// unpreempted run (same materialization, same costs, same oracle-call and
// round counts) and reports the suspensions it absorbed.
func TestPreemptRoundBoundaryBitIdentical(t *testing.T) {
	srv := New(Config{
		DefaultTenant: TenantConfig{MaxConcurrent: 8, QueueDepth: 32, QueueWaitMS: 60000},
		Sched:         SchedConfig{Slots: 1},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	spec := bulkSpec()
	ref := soloReference(t, spec, core.Greedy)

	bulkBody, _ := json.Marshal(map[string]any{"tenant": "bulk", "spec": spec, "strategy": "greedy"})
	type reply struct {
		status int
		resp   *OptimizeResponse
	}
	bulkDone := make(chan reply, 1)
	go func() {
		resp, data := postOptimize(t, ts.URL, string(bulkBody), nil)
		out := reply{status: resp.StatusCode}
		if resp.StatusCode == 200 {
			out.resp = decodeResponse(t, data)
		} else {
			t.Errorf("bulk run: status %d: %s", resp.StatusCode, data)
		}
		bulkDone <- out
	}()
	waitPreemptibleActive(t, srv.Admission())

	// The interactive request: a deadline, a small batch, a different
	// catalog (sf 10) so its run shares nothing with the bulk session.
	sloBody, _ := json.Marshal(map[string]any{
		"tenant": "slo", "spec": testSpec(), "sf": 10, "deadline_ms": 2000,
	})
	resp, data := postOptimize(t, ts.URL, string(sloBody), nil)
	if resp.StatusCode != 200 {
		t.Fatalf("interactive request: status %d: %s", resp.StatusCode, data)
	}

	bulk := <-bulkDone
	if bulk.status != 200 {
		t.Fatal("bulk run failed")
	}
	if bulk.resp.Preemptions < 1 {
		t.Fatalf("bulk run reports %d preemptions, want ≥ 1 (the deadline request must have suspended it)", bulk.resp.Preemptions)
	}
	assertSameResult(t, "preempted bulk run", bulk.resp, ref)
	tl, wtl := bulk.resp.Telemetry, ref.Telemetry
	if tl.Stopped != repro.StopNone {
		t.Fatalf("resumed run stopped with %v, want none", tl.Stopped)
	}
	// Rounds and pruning conserve exactly; oracle calls conserve up to one
	// re-derivation per resume (each resumed segment re-prices the
	// committed selection once against its fresh per-run memo).
	if want := wtl.OracleCalls + bulk.resp.Preemptions; tl.OracleCalls != want ||
		tl.Rounds != wtl.Rounds || tl.Pruned != wtl.Pruned {
		t.Fatalf("merged telemetry = calls %d rounds %d pruned %d, want %d/%d/%d (reference + %d resume re-derivations)",
			tl.OracleCalls, tl.Rounds, tl.Pruned, want, wtl.Rounds, wtl.Pruned, bulk.resp.Preemptions)
	}
	if n := srv.Admission().Preemptions(); n < 1 {
		t.Fatalf("scheduler preemption counter = %d, want ≥ 1", n)
	}
	st := srv.Admission().Stats()["bulk"]
	if st.Preemptions < 1 || st.QuotaSpent != int64(tl.OracleCalls) {
		t.Fatalf("bulk tenant stats = %+v, want ≥1 preemption and quota spend %d (charged exactly once)", st, tl.OracleCalls)
	}
}

// TestPreemptYieldTimeoutReturnsCheckpoint pins the degraded half of the
// preemption contract: when the suspended run cannot get its slot back
// inside its tenant's queue-wait budget, the request completes as a
// partial result — HTTP 200, Stopped "preempted", a resumable checkpoint —
// and a client-driven resume finishes the run bit-identically.
func TestPreemptYieldTimeoutReturnsCheckpoint(t *testing.T) {
	srv := New(Config{
		DefaultTenant: TenantConfig{MaxConcurrent: 8, QueueDepth: 32, QueueWaitMS: 60000},
		Tenants: map[string]TenantConfig{
			"bulk": {MaxConcurrent: 8, QueueDepth: 32, QueueWaitMS: 150},
		},
		Sched: SchedConfig{Slots: 1},
	})
	// The interactive tenant camps on the slot far past bulk's 150ms
	// queue-wait budget, so the suspended run's re-grant times out.
	srv.preOptimize = func(ctx context.Context, req *OptimizeRequest) {
		if req.Tenant == "slo" {
			select {
			case <-time.After(600 * time.Millisecond):
			case <-ctx.Done():
			}
		}
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	spec := bulkSpec()
	ref := soloReference(t, spec, core.Greedy)

	bulkBody, _ := json.Marshal(map[string]any{"tenant": "bulk", "spec": spec, "strategy": "greedy"})
	type reply struct {
		status int
		resp   *OptimizeResponse
	}
	bulkDone := make(chan reply, 1)
	go func() {
		resp, data := postOptimize(t, ts.URL, string(bulkBody), nil)
		out := reply{status: resp.StatusCode}
		if resp.StatusCode == 200 {
			out.resp = decodeResponse(t, data)
		} else {
			t.Errorf("bulk run: status %d: %s", resp.StatusCode, data)
		}
		bulkDone <- out
	}()
	waitPreemptibleActive(t, srv.Admission())

	sloDone := make(chan struct{})
	go func() {
		defer close(sloDone)
		sloBody, _ := json.Marshal(map[string]any{
			"tenant": "slo", "spec": testSpec(), "sf": 10, "deadline_ms": 2000,
		})
		resp, data := postOptimize(t, ts.URL, string(sloBody), nil)
		if resp.StatusCode != 200 {
			t.Errorf("interactive request: status %d: %s", resp.StatusCode, data)
		}
	}()

	bulk := <-bulkDone
	if bulk.status != 200 {
		t.Fatal("bulk run failed")
	}
	first := bulk.resp
	if first.Telemetry.Stopped != repro.StopPreempted {
		t.Fatalf("stranded run stopped with %v, want preempted", first.Telemetry.Stopped)
	}
	if first.Checkpoint == nil {
		t.Fatal("stranded preempted run returned no checkpoint")
	}
	if first.Preemptions < 1 {
		t.Fatalf("stranded run reports %d preemptions, want ≥ 1", first.Preemptions)
	}

	// Resume client-side once the interactive run has drained the slot:
	// the continuation must finish the run and land exactly on the solo
	// reference, with the two segments' oracle calls summing to it.
	<-sloDone
	resumeBody, _ := json.Marshal(map[string]any{"tenant": "bulk", "spec": spec, "resume": first.Checkpoint})
	resp, data := postOptimize(t, ts.URL, string(resumeBody), nil)
	if resp.StatusCode != 200 {
		t.Fatalf("resume request: status %d: %s", resp.StatusCode, data)
	}
	second := decodeResponse(t, data)
	if second.Telemetry.Stopped != repro.StopNone {
		t.Fatalf("resumed run stopped with %v, want none", second.Telemetry.Stopped)
	}
	assertSameResult(t, "client-resumed run", second, ref)
	// The two segments sum to the reference plus exactly one resume
	// re-derivation: the continuation re-prices the committed selection
	// once against its fresh per-run memo.
	if got := first.Telemetry.OracleCalls + second.Telemetry.OracleCalls; got != ref.Telemetry.OracleCalls+1 {
		t.Fatalf("segment oracle calls %d + %d = %d, want %d (reference + one resume re-derivation)",
			first.Telemetry.OracleCalls, second.Telemetry.OracleCalls, got, ref.Telemetry.OracleCalls+1)
	}
}

// TestPreemptConservationRaceStress is the scheduling conservation audit
// under real concurrency: interactive deadline traffic preempting bulk
// greedy runs across a 2-slot pool, with the race detector watching. After
// the storm drains, every admission must have completed, every tenant's
// quota charge must equal the oracle calls its responses reported (charged
// exactly once, across any number of suspensions), and every bulk response
// must be bit-identical to the unpreempted reference.
func TestPreemptConservationRaceStress(t *testing.T) {
	srv := New(Config{
		DefaultTenant: TenantConfig{MaxConcurrent: 8, QueueDepth: 64, QueueWaitMS: 60000},
		Sched:         SchedConfig{Slots: 2},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	spec := testSpec()
	spec.Queries = 12
	spec.Seed = 23
	ref := soloReference(t, spec, core.Greedy)

	bulkBody, _ := json.Marshal(map[string]any{"tenant": "bulk", "spec": spec, "strategy": "greedy"})
	sloBody, _ := json.Marshal(map[string]any{
		"tenant": "slo", "spec": testSpec(), "strategy": "marginal", "deadline_ms": 5000,
	})

	var mu sync.Mutex
	calls := map[string]int64{}
	sent := map[string]int{}
	var bulkResponses []*OptimizeResponse

	var wg sync.WaitGroup
	post := func(tenant, body string, n int) {
		defer wg.Done()
		for i := 0; i < n; i++ {
			resp, data := postOptimize(t, ts.URL, body, nil)
			if resp.StatusCode != 200 {
				t.Errorf("%s: status %d: %s", tenant, resp.StatusCode, data)
				continue
			}
			out := decodeResponse(t, data)
			mu.Lock()
			calls[tenant] += int64(out.Telemetry.OracleCalls)
			sent[tenant]++
			if tenant == "bulk" {
				bulkResponses = append(bulkResponses, out)
			}
			mu.Unlock()
		}
	}
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go post("bulk", string(bulkBody), 3)
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go post("slo", string(sloBody), 4)
	}
	wg.Wait()

	// Drain: the scheduler must end idle with no stranded waiter.
	waitFor(t, func() bool {
		for _, a := range srv.Admission().Stats() {
			if a.Active != 0 || a.Queued != 0 || a.Admitted != a.Completed {
				return false
			}
		}
		return true
	})
	stats := srv.Admission().Stats()
	for _, tenant := range []string{"bulk", "slo"} {
		st := stats[tenant]
		if int(st.Admitted) != sent[tenant] {
			t.Errorf("%s: admitted %d, want %d", tenant, st.Admitted, sent[tenant])
		}
		if st.QuotaSpent != calls[tenant] {
			t.Errorf("%s: quota charged %d, responses reported %d oracle calls — the charge must match exactly",
				tenant, st.QuotaSpent, calls[tenant])
		}
	}
	for i, out := range bulkResponses {
		if out.Telemetry.Stopped != repro.StopNone {
			t.Errorf("bulk response %d stopped with %v, want none (yield re-grants must not time out here)", i, out.Telemetry.Stopped)
			continue
		}
		assertSameResult(t, fmt.Sprintf("bulk response %d (preemptions=%d)", i, out.Preemptions), out, ref)
	}
	t.Logf("race stress: %d preemptions across %d bulk + %d slo requests",
		srv.Admission().Preemptions(), sent["bulk"], sent["slo"])
}
