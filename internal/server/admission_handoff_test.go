package server

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// neverFire installs a queue-wait clock that never expires, so a test's
// waiters sit in the queue until a release hands them a slot (or their
// context is cancelled) — queue timing is out of the picture entirely.
func neverFire(a *Admission) {
	a.newTimer = func(time.Duration) (<-chan time.Time, func() bool) {
		return nil, func() bool { return false }
	}
}

// TestAdmissionMultiReleaseHandoff is the queue-head handoff regression
// test: with every slot held and W waiters queued, releasing all M slots
// concurrently must hand exactly M queue heads their slots — and as those
// admitted waiters release in turn, the whole queue must drain. No waiter
// may be stranded (admitted twice, skipped, or left pending after a free
// slot existed), and the counters must conserve: every Acquire is
// admitted exactly once and every admission is completed.
func TestAdmissionMultiReleaseHandoff(t *testing.T) {
	const (
		slots   = 4 // M concurrent releases
		waiters = 9 // queued behind them, > 2×slots so the drain cascades
	)
	a := NewAdmission(TenantConfig{MaxConcurrent: slots, QueueDepth: waiters, QueueWaitMS: 60000}, nil, false)
	neverFire(a)

	// Fill every slot.
	releases := make([]func(int), slots)
	for i := range releases {
		rel, err := a.Acquire(context.Background(), "t")
		if err != nil {
			t.Fatalf("filling slot %d: %v", i, err)
		}
		releases[i] = rel
	}

	// Queue W waiters; each releases immediately on admission, so the
	// queue can only drain through repeated head handoffs.
	var wg sync.WaitGroup
	errs := make(chan error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rel, err := a.Acquire(context.Background(), "t")
			if err != nil {
				errs <- err
				return
			}
			rel(0)
		}()
	}
	waitForQueued(t, a, "t", waiters)

	// The M-way moment: all slot holders release at once.
	for _, rel := range releases {
		wg.Add(1)
		go func(rel func(int)) {
			defer wg.Done()
			rel(0)
		}(rel)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		s := a.Stats()["t"]
		t.Fatalf("queue did not drain: waiters stranded (%+v)", s)
	}
	close(errs)
	for err := range errs {
		t.Errorf("queued Acquire rejected: %v", err)
	}

	s := a.Stats()["t"]
	if s.Active != 0 || s.Queued != 0 {
		t.Errorf("after drain: %d active, %d queued", s.Active, s.Queued)
	}
	if want := int64(slots + waiters); s.Admitted != want || s.Completed != want {
		t.Errorf("admitted %d, completed %d, want both %d", s.Admitted, s.Completed, want)
	}
}

// TestAdmissionQueueTimeoutDeterministic drives the queue-wait deadline
// through the clock hook instead of real time: a queued waiter whose
// timer fires is rejected with ErrQueueTimeout and removed from the
// queue, so the later release finds nobody to hand its slot to and the
// slot simply frees.
func TestAdmissionQueueTimeoutDeterministic(t *testing.T) {
	a := NewAdmission(TenantConfig{MaxConcurrent: 1, QueueDepth: 4, QueueWaitMS: 60000}, nil, false)
	var (
		mu     sync.Mutex
		timers []chan time.Time
	)
	a.newTimer = func(time.Duration) (<-chan time.Time, func() bool) {
		ch := make(chan time.Time, 1)
		mu.Lock()
		timers = append(timers, ch)
		mu.Unlock()
		return ch, func() bool { return true }
	}

	rel, err := a.Acquire(context.Background(), "t")
	if err != nil {
		t.Fatalf("filling the slot: %v", err)
	}
	got := make(chan error, 1)
	go func() {
		_, err := a.Acquire(context.Background(), "t")
		got <- err
	}()
	waitForQueued(t, a, "t", 1)

	// Fire the waiter's clock: the only timer armed is its queue wait.
	mu.Lock()
	if len(timers) != 1 {
		mu.Unlock()
		t.Fatalf("%d timers armed, want 1 (the waiter's)", len(timers))
	}
	timers[0] <- time.Time{}
	mu.Unlock()

	select {
	case err := <-got:
		if !errors.Is(err, ErrQueueTimeout) {
			t.Fatalf("timed-out waiter got %v, want ErrQueueTimeout", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter did not observe its fired timer")
	}
	s := a.Stats()["t"]
	if s.QueueTimeouts != 1 || s.Queued != 0 {
		t.Fatalf("after timeout: %+v, want 1 queue timeout and an empty queue", s)
	}

	// The release must not hand the slot to the departed waiter: the next
	// Acquire takes it directly.
	rel(0)
	rel2, err := a.Acquire(context.Background(), "t")
	if err != nil {
		t.Fatalf("post-timeout Acquire: %v", err)
	}
	rel2(0)
	s = a.Stats()["t"]
	if s.Active != 0 || s.Admitted != 2 || s.Completed != 2 {
		t.Fatalf("final stats %+v, want 2 admitted/completed, 0 active", s)
	}
}

// waitForQueued polls until the tenant's queue length reaches n — the
// only nondeterminism these tests tolerate is waiting for goroutines to
// park, never for timing-dependent outcomes.
func waitForQueued(t *testing.T, a *Admission, tenant string, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if a.Stats()[tenant].Queued >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue never reached %d waiters (%+v)", n, a.Stats()[tenant])
		}
		time.Sleep(time.Millisecond)
	}
}
