package server

import (
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
)

// BenchmarkServerScheduled drives the weighted-fair scheduler end to end:
// six concurrent clients split across a weight-3 bulk tenant and a
// deadlined interactive tenant contend for one worker slot under DRR with
// EDF cut-ahead. Per-run oracle-call counts do not depend on session
// cache warmth, so bc_calls — the summed spend of the six runs — is
// deterministic regardless of dispatch interleaving; ns_per_op carries
// the admission and dispatch overhead the scheduler adds to the serving
// path. Preemption stays off: a suspend/resume cycle re-derives one
// oracle call per segment, which would make the count timing-dependent.
func BenchmarkServerScheduled(b *testing.B) {
	const clients = 6
	total := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv := New(Config{
			DefaultTenant: TenantConfig{MaxConcurrent: clients, QueueDepth: 32, QueueWaitMS: 60000},
			Tenants: map[string]TenantConfig{
				"bulk": {MaxConcurrent: clients, QueueDepth: 32, QueueWaitMS: 60000, Weight: 3},
				"slo":  {MaxConcurrent: clients, QueueDepth: 32, QueueWaitMS: 60000, DeadlineMS: 250},
			},
			Sched: SchedConfig{Slots: 1, NoPreempt: true},
		})
		ts := httptest.NewServer(srv.Handler())
		var (
			mu    sync.Mutex
			calls int
		)
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				tenant, strat := "bulk", "greedy"
				if c%2 == 1 {
					tenant, strat = "slo", "marginal"
				}
				sf := []int{1, 10, 100}[c%3]
				body := fmt.Sprintf(
					`{"tenant":%q, "sf": %d, "strategy": %q, "spec": {"seed": 7, "queries": 8, "shape": "mixed", "fan_out": 4, "sharing": 0.5, "select_frac": 0.8, "agg_frac": 0.5}}`,
					tenant, sf, strat)
				n := benchPost(b, ts.URL, body)
				mu.Lock()
				calls += n
				mu.Unlock()
			}(c)
		}
		wg.Wait()
		ts.Close()
		total += calls
	}
	b.ReportMetric(float64(total)/float64(b.N), "bc_calls")
}
