package server

import (
	"sync"
	"testing"

	"repro/internal/logical"
	"repro/internal/workload"
)

// fuzzPalette lazily builds the member-batch palette the fuzz input
// indexes into: four structurally distinct generated batches. Built once
// — generation is deterministic, so every fuzz iteration sees the same
// palette and the corpus stays meaningful across runs.
var fuzzPalette = sync.OnceValues(func() ([]*logical.Batch, []string) {
	batches := make([]*logical.Batch, 4)
	fps := make([]string, 4)
	for i := range batches {
		b, err := workload.Generate(workload.Spec{
			Seed: int64(i + 1), Queries: 3, Shape: workload.Mixed,
			FanOut: 3, Sharing: 0.5, SelectFrac: 0.8, AggFrac: 0.5,
		})
		if err != nil {
			panic(err)
		}
		batches[i] = b
		fp, ok := batchFingerprint(b)
		if !ok {
			panic("palette batch not fingerprintable")
		}
		fps[i] = fp
	}
	return batches, fps
})

// FuzzBatchCoalesce drives coalesceBatches with arbitrary member
// sequences — each input byte picks a palette batch and whether the
// member is fingerprintable — and checks the coalescing invariants the
// attribution split depends on: every member maps to a group serving a
// structurally identical batch, members share a group exactly when their
// nonempty fingerprints match, unfingerprintable members never share,
// and groups appear in first-submitter order holding the first
// submitter's batch.
func FuzzBatchCoalesce(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{0, 0, 0})
	f.Add([]byte{0, 1, 2, 3})
	f.Add([]byte{0, 4, 0, 4}) // same batch, alternating unfingerprintable
	f.Add([]byte{3, 2, 1, 0, 3, 2, 1, 0})
	f.Add([]byte{0, 0, 1, 4, 5, 1, 0, 7, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		palette, fps := fuzzPalette()
		if len(data) > 64 {
			data = data[:64]
		}
		members := make([]*batchMember, 0, len(data))
		for _, b := range data {
			m := &batchMember{batch: palette[int(b)&3]}
			if b&4 == 0 {
				m.fp = fps[int(b)&3]
			}
			members = append(members, m)
		}

		groups, memberGroup := coalesceBatches(members)

		if len(memberGroup) != len(members) {
			t.Fatalf("memberGroup has %d entries for %d members", len(memberGroup), len(members))
		}
		if len(groups) > len(members) {
			t.Fatalf("%d groups from %d members", len(groups), len(members))
		}
		first := make([]int, 0, len(groups)) // group -> first member mapped to it
		for i, gi := range memberGroup {
			if gi < 0 || gi >= len(groups) {
				t.Fatalf("member %d maps to group %d, have %d groups", i, gi, len(groups))
			}
			// Groups are numbered in first-appearance order and hold the
			// first submitter's batch verbatim.
			if gi == len(first) {
				first = append(first, i)
				if groups[gi] != members[i].batch {
					t.Fatalf("group %d is not its first submitter's batch (member %d)", gi, i)
				}
			} else if gi > len(first) {
				t.Fatalf("member %d maps to group %d before groups %d..%d appeared", i, gi, len(first), gi-1)
			}
			// The group's batch must be structurally identical to the
			// member's own — the shared sub-run serves its exact queries.
			if members[i].fp != "" {
				gfp, ok := batchFingerprint(groups[gi])
				if !ok || gfp != members[i].fp {
					t.Fatalf("member %d (fp %q) mapped to group %d with fingerprint %q (ok=%v)",
						i, members[i].fp, gi, gfp, ok)
				}
			} else if groups[gi] != members[i].batch {
				t.Fatalf("unfingerprintable member %d not served its own batch", i)
			}
		}
		if len(first) != len(groups) {
			t.Fatalf("%d groups, %d ever referenced", len(groups), len(first))
		}
		// Sharing is exact: same nonempty fingerprint ⇔ same group, and an
		// unfingerprintable member shares with nobody.
		for i := range members {
			for j := i + 1; j < len(members); j++ {
				same := memberGroup[i] == memberGroup[j]
				coalescible := members[i].fp != "" && members[i].fp == members[j].fp
				if same != coalescible {
					t.Fatalf("members %d (fp %q) and %d (fp %q): shared group = %v, want %v",
						i, members[i].fp, j, members[j].fp, same, coalescible)
				}
			}
		}
	})
}
