package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/faultinject"
)

// pairSQL is a cheap two-query sharing pair for load-shaped tests.
const pairSQL = `{"sql": "SELECT l.tax FROM lineitem l WHERE l.shipdate < 1200; SELECT l.tax FROM lineitem l WHERE l.shipdate < 1300"}`

// specBody marshals a testSpec request plus extras. The spec batch has
// enough shareable nodes that its greedy rounds evaluate real candidate
// batches — the path the OracleEval injection point lives on (tiny
// batches resolve through the singular bestCost path and never hit it).
func specBody(t *testing.T, extra map[string]any) string {
	t.Helper()
	m := map[string]any{"spec": testSpec()}
	for k, v := range extra {
		m[k] = v
	}
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// withSchedule installs a fault schedule and returns an idempotent
// restore, also registered as test cleanup so a mid-test Fatal never
// leaks the schedule into the next test.
func withSchedule(t *testing.T, s *faultinject.Schedule) (restore func()) {
	t.Helper()
	r := faultinject.Enable(s)
	var once sync.Once
	restore = func() { once.Do(r) }
	t.Cleanup(restore)
	return restore
}

// sumStats folds the pool's live and retired session stats into one
// aggregate — the full serving history across quarantine and eviction.
func sumStats(t *testing.T, srv *Server) repro.SessionStats {
	t.Helper()
	total, _ := srv.pool.retiredStats()
	for _, p := range srv.pool.stats() {
		addSessionStats(&total, p.Session)
	}
	return total
}

// TestChaosPanicIsolatedQuarantinesSession: an injected oracle panic must
// surface as a 500 with a stable code and an incident id — never kill the
// process — and the faulted session must leave the pool so the next
// request runs on a freshly built one.
func TestChaosPanicIsolatedQuarantinesSession(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Warm the pool so the quarantine is observable as a session swap.
	body := specBody(t, nil)
	if resp, data := postOptimize(t, ts.URL, body, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("warmup = %d: %s", resp.StatusCode, data)
	}

	restore := withSchedule(t, faultinject.NewSchedule(3,
		faultinject.Rule{Point: faultinject.OracleEval, N: 1, Panic: true}))
	resp, data := postOptimize(t, ts.URL, body, nil)
	restore()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("faulted request = %d: %s", resp.StatusCode, data)
	}
	var eb errorBody
	if err := json.Unmarshal(data, &eb); err != nil {
		t.Fatalf("500 body not JSON: %s", data)
	}
	if eb.Code != codeInternalPanic || eb.Incident == "" {
		t.Errorf("500 body = %+v, want code %s and an incident id", eb, codeInternalPanic)
	}
	if !strings.Contains(eb.Error, eb.Incident) {
		t.Errorf("error text %q does not carry the incident id %q", eb.Error, eb.Incident)
	}
	if got := srv.PanicsRecovered(); got != 1 {
		t.Errorf("panics recovered = %d, want 1", got)
	}

	// The poisoned session leaves the pool at once; its history lands in
	// the retired aggregate when its last pin releases.
	if ps := srv.pool.stats(); len(ps) != 0 {
		t.Fatalf("pool still holds %d sessions after quarantine: %+v", len(ps), ps)
	}
	waitFor(t, func() bool { _, n := srv.pool.retiredStats(); return n == 1 })
	retired, _ := srv.pool.retiredStats()
	if retired.Faults != 1 || retired.Batches != 1 {
		t.Errorf("retired = %+v, want 1 fault + 1 batch", retired)
	}

	// Service continues on a rebuilt session.
	resp, data2 := postOptimize(t, ts.URL, body, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-quarantine request = %d: %s", resp.StatusCode, data2)
	}

	// /v1/stats reports the recovered panic and the retired aggregate.
	sr, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Body.Close()
	var stats StatsResponse
	if err := json.NewDecoder(sr.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.PanicsRecovered != 1 || stats.RetiredCount != 1 || stats.Retired.Faults != 1 {
		t.Errorf("stats = panics %d retired %d faults %d, want 1/1/1",
			stats.PanicsRecovered, stats.RetiredCount, stats.Retired.Faults)
	}
}

// TestChaosFaultFreeReplayBitIdentical: enabling and disabling a fault
// schedule leaves no residue — the same request replayed fault-free is
// bit-identical to its pre-fault run, costs and counters included.
func TestChaosFaultFreeReplayBitIdentical(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body, _ := json.Marshal(map[string]any{"spec": testSpec()})
	resp, before := postOptimize(t, ts.URL, string(body), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reference = %d: %s", resp.StatusCode, before)
	}
	ref := decodeResponse(t, before)

	restore := withSchedule(t, faultinject.NewSchedule(11,
		faultinject.Rule{Point: faultinject.OracleEval, N: 5, Panic: true}))
	if resp, data := postOptimize(t, ts.URL, string(body), nil); resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("faulted run = %d: %s", resp.StatusCode, data)
	}
	restore()

	resp, after := postOptimize(t, ts.URL, string(body), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replay = %d: %s", resp.StatusCode, after)
	}
	got := decodeResponse(t, after)
	if got.CostMS != ref.CostMS || got.BenefitMS != ref.BenefitMS {
		t.Errorf("replay costs (%v, %v) != reference (%v, %v)", got.CostMS, got.BenefitMS, ref.CostMS, ref.BenefitMS)
	}
	if len(got.Materialized) != len(ref.Materialized) {
		t.Fatalf("replay set %v != %v", got.Materialized, ref.Materialized)
	}
	for i := range got.Materialized {
		if got.Materialized[i] != ref.Materialized[i] {
			t.Fatalf("replay set %v != %v", got.Materialized, ref.Materialized)
		}
	}
	if got.Telemetry.OracleCalls != ref.Telemetry.OracleCalls || got.Telemetry.Rounds != ref.Telemetry.Rounds {
		t.Errorf("replay telemetry (%d calls, %d rounds) != reference (%d, %d)",
			got.Telemetry.OracleCalls, got.Telemetry.Rounds, ref.Telemetry.OracleCalls, ref.Telemetry.Rounds)
	}
}

// TestChaosResumeOverHTTP: a call-budget-stopped response carries a
// checkpoint token; POSTing it back as "resume" — even to a different
// server instance — completes to the uninterrupted result, and a resume
// against the wrong search space is a 409 with a stable code.
func TestChaosResumeOverHTTP(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	spec := testSpec()
	full, _ := json.Marshal(map[string]any{"spec": spec})
	resp, data := postOptimize(t, ts.URL, string(full), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reference = %d: %s", resp.StatusCode, data)
	}
	ref := decodeResponse(t, data)

	budgeted, _ := json.Marshal(map[string]any{"spec": spec, "oracle_call_budget": ref.Telemetry.OracleCalls / 2})
	resp, data = postOptimize(t, ts.URL, string(budgeted), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("budgeted = %d: %s", resp.StatusCode, data)
	}
	stopped := decodeResponse(t, data)
	if stopped.Telemetry.Stopped.String() != "call-budget" || stopped.Checkpoint == nil {
		t.Fatalf("budgeted run stopped=%v checkpoint=%v, want a resumable call-budget stop",
			stopped.Telemetry.Stopped, stopped.Checkpoint != nil)
	}

	// Resume on a second server: checkpoints are portable state, not
	// handles into one process.
	srv2 := New(Config{})
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	resume, _ := json.Marshal(map[string]any{"spec": spec, "resume": stopped.Checkpoint})
	resp, data = postOptimize(t, ts2.URL, string(resume), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resume = %d: %s", resp.StatusCode, data)
	}
	got := decodeResponse(t, data)
	if got.CostMS != ref.CostMS || len(got.Materialized) != len(ref.Materialized) {
		t.Fatalf("resumed cost %v set %v != reference %v %v", got.CostMS, got.Materialized, ref.CostMS, ref.Materialized)
	}
	for i := range got.Materialized {
		if got.Materialized[i] != ref.Materialized[i] {
			t.Fatalf("resumed set %v != %v", got.Materialized, ref.Materialized)
		}
	}
	if got.Checkpoint != nil || got.Telemetry.Stopped.String() != "none" {
		t.Errorf("unbudgeted resume did not finish: stopped=%v", got.Telemetry.Stopped)
	}
	if got.Strategy != ref.Strategy {
		t.Errorf("resume reported strategy %q, checkpoint algorithm is %q", got.Strategy, ref.Strategy)
	}

	// The same checkpoint against a different search space: 409.
	mismatch, _ := json.Marshal(map[string]any{"sql": "SELECT l.tax FROM lineitem l", "resume": stopped.Checkpoint})
	resp, data = postOptimize(t, ts2.URL, string(mismatch), nil)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("mismatched resume = %d: %s", resp.StatusCode, data)
	}
	var eb errorBody
	if err := json.Unmarshal(data, &eb); err != nil || eb.Code != codeResumeMismatch {
		t.Errorf("mismatch body = %s, want code %s", data, codeResumeMismatch)
	}
}

// TestChaosBreakerLifecycle drives one catalog through the full breaker
// arc: repeated faults degrade it (clamped budgets, LazyGreedy fallback,
// degraded:true), continued faults open it (503 + Retry-After), the
// cooldown admits a probe, and consecutive successes close it again.
func TestChaosBreakerLifecycle(t *testing.T) {
	srv := New(Config{Breaker: BreakerConfig{
		FailureThreshold:  2,
		OpenThreshold:     2,
		RecoveryThreshold: 2,
		CooldownMS:        50,
	}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Every oracle eval panics while this schedule is installed.
	restore := withSchedule(t, faultinject.NewSchedule(1,
		faultinject.Rule{Point: faultinject.OracleEval, Panic: true}))
	for i := 0; i < 2; i++ { // closed → degraded
		if resp, data := postOptimize(t, ts.URL, specBody(t, nil), nil); resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("fault %d = %d: %s", i, resp.StatusCode, data)
		}
	}
	restore()

	// Degraded serving: still 200, but flagged and on the fallback.
	resp, data := postOptimize(t, ts.URL, specBody(t, map[string]any{"strategy": "marginal"}), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded request = %d: %s", resp.StatusCode, data)
	}
	deg := decodeResponse(t, data)
	if !deg.Degraded || deg.Strategy != "LazyGreedy" {
		t.Fatalf("degraded response = degraded:%v strategy:%s, want true/LazyGreedy", deg.Degraded, deg.Strategy)
	}

	// Two more faults while degraded: open.
	restore = withSchedule(t, faultinject.NewSchedule(2,
		faultinject.Rule{Point: faultinject.OracleEval, Panic: true}))
	for i := 0; i < 2; i++ {
		if resp, data := postOptimize(t, ts.URL, specBody(t, nil), nil); resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("degraded fault %d = %d: %s", i, resp.StatusCode, data)
		}
	}
	restore()

	resp, data = postOptimize(t, ts.URL, specBody(t, nil), nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("open breaker = %d: %s", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("open rejection without Retry-After")
	}
	var eb errorBody
	if err := json.Unmarshal(data, &eb); err != nil || eb.Code != codeBreakerOpen {
		t.Errorf("open body = %s, want code %s", data, codeBreakerOpen)
	}

	// /healthz reports the open catalog while still serving 200.
	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health healthzResponse
	if err := json.NewDecoder(hz.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK || health.Status != "degraded" {
		t.Errorf("healthz = %d %q, want 200 degraded", hz.StatusCode, health.Status)
	}
	if b, ok := health.Breakers["sf=1"]; !ok || b.State != "open" {
		t.Errorf("healthz breakers = %+v, want sf=1 open", health.Breakers)
	}

	// After the cooldown the probe is admitted (degraded) and succeeds;
	// one more success closes the breaker.
	time.Sleep(60 * time.Millisecond)
	for i := 0; i < 2; i++ {
		resp, data = postOptimize(t, ts.URL, specBody(t, nil), nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("recovery request %d = %d: %s", i, resp.StatusCode, data)
		}
		if got := decodeResponse(t, data); !got.Degraded {
			t.Fatalf("recovery request %d not flagged degraded", i)
		}
	}
	resp, data = postOptimize(t, ts.URL, specBody(t, nil), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recovered request = %d: %s", resp.StatusCode, data)
	}
	if got := decodeResponse(t, data); got.Degraded {
		t.Error("breaker did not close after the recovery threshold")
	}
	if snap := srv.breaker.snapshot(); len(snap) != 0 {
		t.Errorf("closed breaker still tracked: %+v", snap)
	}
}

// TestChaosCacheInvalidationMidRun: flushing the session's shared cost
// cache between greedy rounds (an operator action racing a request) must
// not change the result — cached costs are pure, so the run just re-pays
// them.
func TestChaosCacheInvalidationMidRun(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body, _ := json.Marshal(map[string]any{"spec": testSpec()})
	resp, data := postOptimize(t, ts.URL, string(body), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reference = %d: %s", resp.StatusCode, data)
	}
	ref := decodeResponse(t, data)

	sess, release, err := srv.pool.acquire(poolKey{sf: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	restore := withSchedule(t, faultinject.NewSchedule(5,
		faultinject.Rule{Point: faultinject.Round, N: 2, Fn: func() { sess.InvalidateCache() }}))
	resp, data = postOptimize(t, ts.URL, string(body), nil)
	restore()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("invalidated run = %d: %s", resp.StatusCode, data)
	}
	got := decodeResponse(t, data)
	if got.CostMS != ref.CostMS || len(got.Materialized) != len(ref.Materialized) {
		t.Fatalf("mid-run invalidation changed the result: %v (%v) != %v (%v)",
			got.Materialized, got.CostMS, ref.Materialized, ref.CostMS)
	}
	for i := range got.Materialized {
		if got.Materialized[i] != ref.Materialized[i] {
			t.Fatalf("mid-run invalidation changed the set: %v != %v", got.Materialized, ref.Materialized)
		}
	}
}

// TestChaosTelemetryConservationUnderFaults mixes faulting and healthy
// requests across concurrent workers and audits the books afterwards:
// every accepted response's telemetry is counted exactly once, faulted
// runs contribute exactly their fault count, sessions lost to quarantine
// keep their history in the retired aggregate, and every admission slot
// and quota charge is released. Run under -race.
func TestChaosTelemetryConservationUnderFaults(t *testing.T) {
	const workers = 4
	const perWorker = 6
	srv := New(Config{
		DefaultTenant: TenantConfig{MaxConcurrent: 2, QueueDepth: 8, QueueWaitMS: 30000},
		// Keep the breaker out of the way: this test audits accounting,
		// not degradation.
		Breaker: BreakerConfig{Disabled: true},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Panics at fixed points in the global oracle-eval sequence, across
	// all requests: some fault, most succeed, interleaving is
	// scheduler-chosen.
	withSchedule(t, faultinject.NewSchedule(23,
		faultinject.Rule{Point: faultinject.OracleEval, N: 7, Panic: true},
		faultinject.Rule{Point: faultinject.OracleEval, N: 29, Panic: true},
		faultinject.Rule{Point: faultinject.OracleEval, N: 53, Panic: true},
	))

	chaosBody := specBody(t, nil)

	type tally struct {
		ok, faulted, rejected int
		oracleCalls, bcCalls  int
		cacheHits, sharedHits int
		rounds, interrupted   int
	}
	var (
		mu  sync.Mutex
		sum tally
	)
	var wg sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			var local tally
			for i := 0; i < perWorker; i++ {
				req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/optimize", strings.NewReader(chaosBody))
				if err != nil {
					t.Error(err)
					return
				}
				req.Header.Set("X-Tenant", fmt.Sprintf("chaos-%d", wi%2))
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					t.Error(err)
					return
				}
				switch resp.StatusCode {
				case http.StatusOK:
					var or OptimizeResponse
					if err := json.NewDecoder(resp.Body).Decode(&or); err != nil {
						t.Errorf("decoding 200 body: %v", err)
						resp.Body.Close()
						return
					}
					local.ok++
					local.oracleCalls += or.Telemetry.OracleCalls
					local.bcCalls += or.Telemetry.BCCalls
					local.cacheHits += or.Telemetry.CacheHits
					local.sharedHits += or.Telemetry.SharedHits
					local.rounds += or.Telemetry.Rounds
					if or.Telemetry.Stopped.String() != "none" {
						local.interrupted++
					}
				case http.StatusInternalServerError:
					var eb errorBody
					if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil || eb.Code != codeInternalPanic {
						t.Errorf("500 without internal_panic code: %+v", eb)
					}
					local.faulted++
				case http.StatusTooManyRequests, http.StatusServiceUnavailable:
					local.rejected++
				default:
					t.Errorf("unexpected status %d", resp.StatusCode)
				}
				resp.Body.Close()
			}
			mu.Lock()
			sum.ok += local.ok
			sum.faulted += local.faulted
			sum.rejected += local.rejected
			sum.oracleCalls += local.oracleCalls
			sum.bcCalls += local.bcCalls
			sum.cacheHits += local.cacheHits
			sum.sharedHits += local.sharedHits
			sum.rounds += local.rounds
			sum.interrupted += local.interrupted
			mu.Unlock()
		}(wi)
	}
	wg.Wait()

	if got := sum.ok + sum.faulted + sum.rejected; got != workers*perWorker {
		t.Fatalf("accounted %d responses, sent %d", got, workers*perWorker)
	}
	if sum.ok == 0 {
		t.Fatal("every request faulted or was rejected; the schedule is too hot")
	}
	if sum.faulted == 0 {
		t.Fatal("no request faulted; the schedule never fired")
	}
	t.Logf("chaos: %d ok, %d faulted, %d rejected", sum.ok, sum.faulted, sum.rejected)

	// Conservation across live + retired sessions: 200-response telemetry
	// sums field by field; faulted runs appear only in Faults.
	total := sumStats(t, srv)
	if total.Batches != sum.ok {
		t.Errorf("batches = %d, accepted responses = %d", total.Batches, sum.ok)
	}
	if total.Faults != sum.faulted {
		t.Errorf("faults = %d, faulted responses = %d", total.Faults, sum.faulted)
	}
	if total.OracleCalls != sum.oracleCalls {
		t.Errorf("oracle calls = %d, response sum = %d", total.OracleCalls, sum.oracleCalls)
	}
	if total.BCCalls != sum.bcCalls {
		t.Errorf("bc calls = %d, response sum = %d", total.BCCalls, sum.bcCalls)
	}
	if total.CacheHits != sum.cacheHits {
		t.Errorf("cache hits = %d, response sum = %d", total.CacheHits, sum.cacheHits)
	}
	if total.SharedHits != sum.sharedHits {
		t.Errorf("shared hits = %d, response sum = %d", total.SharedHits, sum.sharedHits)
	}
	if total.Rounds != sum.rounds {
		t.Errorf("rounds = %d, response sum = %d", total.Rounds, sum.rounds)
	}
	if total.Interrupted != sum.interrupted {
		t.Errorf("interrupted = %d, response sum = %d", total.Interrupted, sum.interrupted)
	}
	if got := int(srv.PanicsRecovered()); got != sum.faulted {
		t.Errorf("panics recovered = %d, faulted responses = %d", got, sum.faulted)
	}

	// Admission books balance: every slot released, admitted = completed.
	for name, a := range srv.Admission().Stats() {
		if a.Active != 0 || a.Queued != 0 {
			t.Errorf("%s: %d active, %d queued after drain", name, a.Active, a.Queued)
		}
		if a.Admitted != a.Completed {
			t.Errorf("%s: admitted %d != completed %d", name, a.Admitted, a.Completed)
		}
	}
}

// TestChaosPoolEvictionUnderLoad: with a one-session pool and two hot
// catalogs, requests keep forcing evictions of possibly-pinned sessions.
// Refcount pinning must keep every in-flight run intact (all 200s) while
// retirement keeps the stats books balanced. Run under -race.
func TestChaosPoolEvictionUnderLoad(t *testing.T) {
	const workers = 4
	const perWorker = 5
	srv := New(Config{
		PoolSize:      1,
		DefaultTenant: TenantConfig{MaxConcurrent: workers, QueueDepth: 16, QueueWaitMS: 30000},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var (
		mu         sync.Mutex
		ok, failed int
	)
	var wg sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				body := pairSQL
				if (wi+i)%2 == 1 {
					body = `{"sql": "SELECT l.tax FROM lineitem l WHERE l.shipdate < 1200; SELECT l.tax FROM lineitem l WHERE l.shipdate < 1300", "sf": 100}`
				}
				resp, data := postOptimize(t, ts.URL, body, nil)
				mu.Lock()
				if resp.StatusCode == http.StatusOK {
					ok++
				} else {
					failed++
					t.Errorf("request = %d: %s", resp.StatusCode, data)
				}
				mu.Unlock()
			}
		}(wi)
	}
	wg.Wait()

	if failed != 0 || ok != workers*perWorker {
		t.Fatalf("%d ok, %d failed", ok, failed)
	}
	if ps := srv.pool.stats(); len(ps) > 1 {
		t.Errorf("pool exceeded its bound: %d entries", len(ps))
	}
	_, retiredCount := srv.pool.retiredStats()
	if retiredCount == 0 {
		t.Error("no session was evicted; the test exercised nothing")
	}
	// Every batch is accounted exactly once across live + retired.
	if total := sumStats(t, srv); total.Batches != workers*perWorker {
		t.Errorf("batches = %d, want %d", total.Batches, workers*perWorker)
	}
	for name, a := range srv.Admission().Stats() {
		if a.Active != 0 || a.Queued != 0 {
			t.Errorf("%s: %d active, %d queued after drain", name, a.Active, a.Queued)
		}
	}
}

// TestFaultDrainDuringPanickingRun: draining while a request is mid-fault
// must let the fault resolve normally (500 + incident, slot released)
// while new work is turned away with the draining code.
func TestFaultDrainDuringPanickingRun(t *testing.T) {
	srv, started, gate := blockingServer(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	withSchedule(t, faultinject.NewSchedule(9,
		faultinject.Rule{Point: faultinject.OracleEval, Panic: true}))

	type result struct {
		status int
		body   []byte
	}
	inflight := make(chan result, 1)
	body := specBody(t, nil)
	go func() {
		resp, data := postOptimize(t, ts.URL, body, nil)
		inflight <- result{resp.StatusCode, data}
	}()
	<-started

	srv.Drain()
	resp, data := postOptimize(t, ts.URL, body, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining request = %d: %s", resp.StatusCode, data)
	}
	var eb errorBody
	if err := json.Unmarshal(data, &eb); err != nil || eb.Code != codeDraining {
		t.Errorf("draining body = %s, want code %s", data, codeDraining)
	}

	close(gate) // the held request proceeds into its panic
	r := <-inflight
	if r.status != http.StatusInternalServerError {
		t.Fatalf("panicking in-flight request during drain = %d: %s", r.status, r.body)
	}
	if err := json.Unmarshal(r.body, &eb); err != nil || eb.Code != codeInternalPanic {
		t.Errorf("in-flight fault body = %s, want code %s", r.body, codeInternalPanic)
	}
	waitFor(t, func() bool { return srv.Admission().Stats()["default"].Active == 0 })
}

// TestFaultDrainWithResumableCheckpoint: a drain between a budget stop
// and its resume rejects the resume with the draining code, and the
// checkpoint stays valid for whatever server replaces the drained one.
func TestFaultDrainWithResumableCheckpoint(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	spec := testSpec()
	full, _ := json.Marshal(map[string]any{"spec": spec})
	resp, data := postOptimize(t, ts.URL, string(full), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reference = %d: %s", resp.StatusCode, data)
	}
	ref := decodeResponse(t, data)

	budgeted, _ := json.Marshal(map[string]any{"spec": spec, "oracle_call_budget": ref.Telemetry.OracleCalls / 2})
	resp, data = postOptimize(t, ts.URL, string(budgeted), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("budgeted = %d: %s", resp.StatusCode, data)
	}
	stopped := decodeResponse(t, data)
	if stopped.Checkpoint == nil {
		t.Fatal("budgeted run carried no checkpoint")
	}

	srv.Drain()
	resume, _ := json.Marshal(map[string]any{"spec": spec, "resume": stopped.Checkpoint})
	resp, data = postOptimize(t, ts.URL, string(resume), nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("resume during drain = %d: %s", resp.StatusCode, data)
	}
	var eb errorBody
	if err := json.Unmarshal(data, &eb); err != nil || eb.Code != codeDraining {
		t.Errorf("drain body = %s, want code %s", data, codeDraining)
	}

	// The replacement server picks the work up where it stopped.
	srv2 := New(Config{})
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	resp, data = postOptimize(t, ts2.URL, string(resume), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resume on replacement = %d: %s", resp.StatusCode, data)
	}
	if got := decodeResponse(t, data); got.CostMS != ref.CostMS {
		t.Errorf("resumed cost %v != reference %v", got.CostMS, ref.CostMS)
	}
}
