package server

import (
	"context"
	"sync/atomic"
	"time"
)

// Scheduling policies.
const (
	// PolicyDRR is deficit-round-robin weighted-fair dispatch with
	// earliest-deadline-first cut-ahead and deadline-aware preemption.
	PolicyDRR = "drr"
	// PolicyFIFO dispatches in pure global arrival order (the baseline
	// the fairness harness compares DRR against); no cut-ahead, no
	// preemption.
	PolicyFIFO = "fifo"
)

// SchedConfig parameterizes the scheduler policy layer over the shared
// worker-slot pool. The zero value has no shared slots, so only the
// per-tenant limits bind — the legacy per-tenant FIFO behavior.
type SchedConfig struct {
	// Slots is the shared worker-slot pool all tenants compete for
	// (0 = unbounded: per-tenant MaxConcurrent alone limits concurrency).
	Slots int `json:"slots,omitempty"`
	// Quantum is the DRR deficit replenished per round-robin visit, in
	// query-count cost units, multiplied by the tenant's Weight (default
	// 64). Smaller quanta interleave tenants more finely; larger ones
	// amortize bulk requests.
	Quantum int `json:"quantum,omitempty"`
	// Policy selects the dispatch order: PolicyDRR (default) or
	// PolicyFIFO.
	Policy string `json:"policy,omitempty"`
	// NoPreempt disables deadline-aware preemption while keeping DRR
	// dispatch.
	NoPreempt bool `json:"no_preempt,omitempty"`
}

func (c SchedConfig) normalize() SchedConfig {
	if c.Quantum <= 0 {
		c.Quantum = 64
	}
	if c.Policy == "" {
		c.Policy = PolicyDRR
	}
	return c
}

// Grant is an admitted request's hold on the scheduler: a slot, a quota
// charge pending, and — when the run is preemptible — the suspend/resume
// handshake. Release must be called exactly once; Yield only from the
// goroutine that owns the run, after its optimizer stopped with
// StopPreempted.
type Grant struct {
	a           *Admission
	t           *tenant
	cost        float64
	seq         uint64
	deadline    time.Time
	hasDeadline bool

	// preempt is the scheduler's suspend request; the run polls it at
	// round boundaries (repro.WithPreemptSignal).
	preempt atomic.Bool
	// preemptible marks the run suspendable: a solo run under a
	// resumable strategy. Only preemptible grants are chosen as victims.
	preemptible atomic.Bool

	// Guarded by a.mu.
	holding     bool // currently holds a slot
	released    bool
	preemptions int
}

// newWaiter builds the queue entry for this grant; a resumption keeps the
// grant's original seq so it re-enters ahead of later arrivals.
func (g *Grant) newWaiter(resume bool) *waiter {
	return &waiter{
		ch:          make(chan struct{}),
		t:           g.t,
		g:           g,
		seq:         g.seq,
		cost:        g.cost,
		deadline:    g.deadline,
		hasDeadline: g.hasDeadline,
		resume:      resume,
	}
}

// PreemptRequested reports whether the scheduler asked this run to
// suspend; it is the signal handed to repro.WithPreemptSignal, polled at
// round boundaries.
func (g *Grant) PreemptRequested() bool { return g.preempt.Load() }

// SetPreemptible marks the grant's run suspendable at round boundaries
// (set it only for solo runs under a checkpoint-capable strategy).
func (g *Grant) SetPreemptible(on bool) { g.preemptible.Store(on) }

// Preemptions reports how many times this grant's run was suspended.
func (g *Grant) Preemptions() int {
	g.a.mu.Lock()
	defer g.a.mu.Unlock()
	return g.preemptions
}

// Yield gives the grant's slot back after its run suspended at a round
// boundary, lets the scheduler serve the nearer-deadline work that asked
// for it, and blocks until the scheduler re-grants a slot for the resumed
// run (which re-enters its tenant's queue at its original arrival order).
// A nil return means the slot is held again and the caller should resume
// from its checkpoint; ErrQueueTimeout/ErrCancelled mean the caller keeps
// its checkpoint and must still Release the grant with the spend so far.
func (g *Grant) Yield(ctx context.Context) error {
	a := g.a
	a.mu.Lock()
	if !g.holding {
		a.mu.Unlock()
		return nil
	}
	g.holding = false
	g.preempt.Store(false)
	g.preemptions++
	g.t.stats.Preemptions++
	a.preempts++
	g.t.active--
	a.running--
	a.dropActiveLocked(g)
	w := g.newWaiter(true)
	a.enqueueLocked(w)
	a.dispatchLocked()
	if w.outcome == waiterGranted {
		a.mu.Unlock()
		return nil
	}
	a.mu.Unlock()

	timerC, stopTimer := a.newTimer(g.t.cfg.queueWait())
	defer stopTimer()
	select {
	case <-w.ch:
		return a.settle(w, nil, nil)
	case <-timerC:
		return a.settle(w, &g.t.stats.QueueTimeouts, ErrQueueTimeout)
	case <-ctx.Done():
		return a.settle(w, &g.t.stats.Cancelled, ErrCancelled)
	}
}

// Release frees the grant's slot (if still held), charges the tenant's
// quota bucket with the run's actual oracle-call spend, and dispatches
// queued work. Exactly-once: extra calls are no-ops. With a non-refilling
// quota that the charge just exhausted, the tenant's whole wait queue is
// cut — waiting cannot help until an operator resets the bucket, so the
// queued requests are rejected now instead of burning their wait
// deadline. (A refilling bucket keeps its queue: waiting does help.)
func (g *Grant) Release(oracleCalls int) {
	a := g.a
	a.mu.Lock()
	defer a.mu.Unlock()
	if g.released {
		return
	}
	g.released = true
	t := g.t
	t.quotaSpent += int64(oracleCalls)
	if t.cfg.CallQuota > 0 {
		a.refillLocked(t)
		t.tokens -= float64(oracleCalls)
	}
	t.stats.Completed++
	if g.holding {
		g.holding = false
		t.active--
		a.running--
		a.dropActiveLocked(g)
	}
	if t.cfg.CallQuota > 0 && t.cfg.RefillPerSec <= 0 && t.tokens <= 0 {
		for _, w := range t.queue {
			w.outcome = waiterQuotaCut
			t.stats.RejectedQuota++
			close(w.ch)
		}
		t.queue = t.queue[:0]
		a.dropRingLocked(t)
		t.deficit = 0
	}
	a.dispatchLocked()
}

// enqueueLocked inserts a waiter into its tenant's queue in policy order
// and registers the tenant in the DRR ring. Under DRR the queue is
// EDF-then-FIFO: deadline waiters first, earliest deadline first (ties by
// arrival), then deadline-less waiters in arrival order — a resumption's
// original seq puts it ahead of later arrivals. Under FIFO the queue is
// pure arrival order.
func (a *Admission) enqueueLocked(w *waiter) {
	t := w.t
	pos := len(t.queue)
	if a.sched.Policy == PolicyFIFO {
		for pos = 0; pos < len(t.queue); pos++ {
			if w.seq < t.queue[pos].seq {
				break
			}
		}
	} else if w.hasDeadline {
		for pos = 0; pos < len(t.queue); pos++ {
			q := t.queue[pos]
			if !q.hasDeadline || w.deadline.Before(q.deadline) ||
				(w.deadline.Equal(q.deadline) && w.seq < q.seq) {
				break
			}
		}
	} else {
		for pos = 0; pos < len(t.queue); pos++ {
			q := t.queue[pos]
			if q.hasDeadline {
				continue // the deadline prefix stays ahead
			}
			if w.seq < q.seq {
				break
			}
		}
	}
	t.queue = append(t.queue, nil)
	copy(t.queue[pos+1:], t.queue[pos:])
	t.queue[pos] = w
	if !t.inRing {
		t.inRing = true
		a.ring = append(a.ring, t)
	}
}

// removeWaiterLocked takes a waiter out of its tenant's queue (timeout,
// cancellation, or queue-full rejection).
func (a *Admission) removeWaiterLocked(w *waiter) {
	t := w.t
	for i, q := range t.queue {
		if q == w {
			t.queue = append(t.queue[:i], t.queue[i+1:]...)
			break
		}
	}
	if len(t.queue) == 0 {
		a.dropRingLocked(t)
		t.deficit = 0
	}
}

// dropRingLocked removes a tenant from the DRR ring, keeping the rotation
// pointer on the same neighbor. Removing the pointed-at tenant clears the
// visit's topped flag: the pointer now names a tenant that has not had
// this rotation's replenish yet.
func (a *Admission) dropRingLocked(t *tenant) {
	if !t.inRing {
		return
	}
	t.inRing = false
	for i, rt := range a.ring {
		if rt == t {
			a.ring = append(a.ring[:i], a.ring[i+1:]...)
			if i < a.ringIdx {
				a.ringIdx--
			} else if i == a.ringIdx {
				a.topped = false
			}
			break
		}
	}
	if len(a.ring) == 0 {
		a.ringIdx = 0
	} else if a.ringIdx >= len(a.ring) {
		a.ringIdx = 0
	}
}

// dropActiveLocked removes a grant from the running set.
func (a *Admission) dropActiveLocked(g *Grant) {
	for i, ag := range a.activeG {
		if ag == g {
			a.activeG = append(a.activeG[:i], a.activeG[i+1:]...)
			return
		}
	}
}

// dispatchLocked grants slots to queued waiters until the pool is
// saturated or nothing is eligible. Every path that frees capacity
// (Release, Yield) or adds demand (AcquireGrant) calls it under the
// scheduler mutex, so no waiter is ever stranded with a free slot.
func (a *Admission) dispatchLocked() {
	for {
		if a.sched.Slots > 0 && a.running >= a.sched.Slots {
			return
		}
		w := a.pickLocked()
		if w == nil {
			return
		}
		a.grantLocked(w)
	}
}

// pickLocked chooses the next waiter to grant, or nil.
func (a *Admission) pickLocked() *waiter {
	if a.sched.Slots <= 0 || a.sched.Policy == PolicyFIFO {
		return a.pickSeqLocked()
	}
	return a.pickDRRLocked()
}

// eligibleHead is a tenant's next dispatchable waiter: the queue head,
// when the tenant is under its own concurrency cap.
func eligibleHead(t *tenant) *waiter {
	if len(t.queue) == 0 || t.active >= t.cfg.MaxConcurrent {
		return nil
	}
	return t.queue[0]
}

// pickSeqLocked dispatches in global arrival order — the uncontended
// (Slots == 0) and FIFO-policy order. With per-tenant queues already
// sorted, the minimum head seq across tenants is the global minimum.
func (a *Admission) pickSeqLocked() *waiter {
	var best *waiter
	for _, t := range a.ring {
		h := eligibleHead(t)
		if h == nil {
			continue
		}
		if best == nil || h.seq < best.seq {
			best = h
		}
	}
	return best
}

// pickDRRLocked is the weighted-fair pick: first earliest-deadline-first
// cut-ahead across tenants — a deadline waiter may borrow up to one
// quantum×weight of deficit debt to jump the round-robin order — then
// classic deficit round-robin: the rotation pointer parks on one tenant,
// replenishes its deficit by quantum×weight ONCE per visit (the topped
// flag), serves it while the deficit covers its head's cost, and only
// then advances — so over any backlogged window each tenant's service is
// proportional to its weight, and a large request just accumulates
// deficit across rotations instead of starving or being starved.
func (a *Admission) pickDRRLocked() *waiter {
	var best *waiter
	for _, t := range a.ring {
		h := eligibleHead(t)
		if h == nil || !h.hasDeadline {
			continue
		}
		if t.deficit <= -float64(a.sched.Quantum*t.cfg.weight()) {
			continue // borrow exhausted: back to weighted order
		}
		if best == nil || h.deadline.Before(best.deadline) ||
			(h.deadline.Equal(best.deadline) && h.seq < best.seq) {
			best = h
		}
	}
	if best != nil {
		return best
	}
	for {
		n := len(a.ring)
		if n == 0 {
			return nil
		}
		progressed := false
		for i := 0; i < n; i++ {
			t := a.ring[a.ringIdx]
			h := eligibleHead(t)
			if h != nil {
				if !a.topped {
					a.topped = true
					t.deficit += float64(a.sched.Quantum * t.cfg.weight())
					progressed = true
				}
				if t.deficit >= h.cost {
					return h // sticky: the pointer stays until the deficit runs dry
				}
				// Leaving a topped tenant ends its visit — that is progress
				// too: the next pass may replenish it afresh. Without this a
				// lone tenant whose visit just drained would stall forever.
				if a.topped {
					progressed = true
				}
			}
			a.ringIdx = (a.ringIdx + 1) % n
			a.topped = false
		}
		if !progressed {
			return nil
		}
	}
}

// grantLocked hands a slot to a waiter: removes it from its queue,
// charges its cost against the tenant's deficit, and wakes it. The
// waiter's own goroutine does the admission bookkeeping (settle).
func (a *Admission) grantLocked(w *waiter) {
	t := w.t
	for i, q := range t.queue {
		if q == w {
			t.queue = append(t.queue[:i], t.queue[i+1:]...)
			break
		}
	}
	t.deficit -= w.cost
	if len(t.queue) == 0 {
		a.dropRingLocked(t)
		t.deficit = 0 // busy period over: debts and credits expire together
	}
	t.active++
	a.running++
	w.outcome = waiterGranted
	w.g.holding = true
	a.activeG = append(a.activeG, w.g)
	close(w.ch)
}

// maybePreemptLocked asks a running bulk grant to suspend when a
// nearer-deadline waiter cannot be dispatched: the victim is the
// preemptible running grant with the latest deadline (no deadline ranks
// last of all; ties go to the longest-running, which has the most
// checkpointed progress). One victim per waiter — the suspend lands at
// the victim's next round boundary, the victim Yields, and the freed slot
// dispatches to the earliest-deadline waiter.
func (a *Admission) maybePreemptLocked(w *waiter) {
	if a.sched.Slots <= 0 || a.sched.NoPreempt || a.sched.Policy != PolicyDRR {
		return
	}
	if !w.hasDeadline || w.preemptAsked || a.running < a.sched.Slots {
		return
	}
	var victim *Grant
	for _, g := range a.activeG {
		if !g.preemptible.Load() || g.preempt.Load() {
			continue
		}
		if g.hasDeadline && !g.deadline.After(w.deadline) {
			continue // running work is at least as urgent
		}
		if victim == nil || laterVictim(g, victim) {
			victim = g
		}
	}
	if victim != nil {
		victim.preempt.Store(true)
		w.preemptAsked = true
	}
}

// laterVictim reports whether g is a better preemption victim than cur:
// deadline-less beats deadlined, later deadline beats earlier, then the
// longest-running (smallest seq — the most checkpointed progress to
// preserve) breaks ties.
func laterVictim(g, cur *Grant) bool {
	switch {
	case !g.hasDeadline && cur.hasDeadline:
		return true
	case g.hasDeadline && !cur.hasDeadline:
		return false
	case g.hasDeadline && cur.hasDeadline && !g.deadline.Equal(cur.deadline):
		return g.deadline.After(cur.deadline)
	default:
		return g.seq < cur.seq
	}
}
