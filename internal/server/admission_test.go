package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestAdmissionConcurrencyAndQueueFull fills a tenant's slots and queue,
// then checks the overflow request is rejected immediately with
// ErrQueueFull while the queued one is admitted FIFO when a slot frees.
func TestAdmissionConcurrencyAndQueueFull(t *testing.T) {
	a := NewAdmission(TenantConfig{MaxConcurrent: 2, QueueDepth: 1, QueueWaitMS: 60000}, nil, false)
	ctx := context.Background()

	rel1, err := a.Acquire(ctx, "t")
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := a.Acquire(ctx, "t")
	if err != nil {
		t.Fatal(err)
	}

	// Third request queues; acquire it on a goroutine.
	admitted := make(chan func(int), 1)
	go func() {
		rel, err := a.Acquire(ctx, "t")
		if err != nil {
			t.Errorf("queued request rejected: %v", err)
			admitted <- nil
			return
		}
		admitted <- rel
	}()
	waitFor(t, func() bool { return a.Stats()["t"].Queued == 1 })

	// Fourth request sees a full queue: immediate 429-class rejection.
	if _, err := a.Acquire(ctx, "t"); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow acquire = %v, want ErrQueueFull", err)
	}

	rel1(10) // frees a slot -> the queued waiter is admitted
	rel3 := <-admitted
	if rel3 == nil {
		t.FailNow()
	}
	st := a.Stats()["t"]
	if st.Admitted != 3 || st.RejectedQueueFull != 1 || st.Active != 2 || st.Queued != 0 {
		t.Fatalf("stats = %+v, want 3 admitted, 1 queue-full, 2 active, 0 queued", st)
	}
	rel2(0)
	rel3(5)
	st = a.Stats()["t"]
	if st.Active != 0 || st.QuotaSpent != 15 {
		t.Fatalf("after release: %+v, want 0 active, 15 quota spent", st)
	}
}

// TestAdmissionFIFOOrder pins that freed slots go to waiters in arrival
// order.
func TestAdmissionFIFOOrder(t *testing.T) {
	a := NewAdmission(TenantConfig{MaxConcurrent: 1, QueueDepth: 4, QueueWaitMS: 60000}, nil, false)
	ctx := context.Background()
	rel, err := a.Acquire(ctx, "t")
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		i := i
		wg.Add(1)
		// Start waiters strictly one after another so queue order is known.
		started := make(chan struct{})
		go func() {
			close(started)
			r, err := a.Acquire(ctx, "t")
			if err != nil {
				t.Errorf("waiter %d rejected: %v", i, err)
				wg.Done()
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			r(0)
			wg.Done()
		}()
		<-started
		waitFor(t, func() bool { return a.Stats()["t"].Queued == i+1 })
	}

	rel(0) // cascade: each release hands the slot to the next waiter
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("admission order = %v, want [0 1 2]", order)
	}
}

// TestAdmissionQueueWaitDeadline: a queued request whose wait exceeds the
// tenant's deadline is rejected with ErrQueueTimeout and removed from the
// queue.
func TestAdmissionQueueWaitDeadline(t *testing.T) {
	a := NewAdmission(TenantConfig{MaxConcurrent: 1, QueueDepth: 4, QueueWaitMS: 30}, nil, false)
	ctx := context.Background()
	rel, err := a.Acquire(ctx, "t")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := a.Acquire(ctx, "t"); !errors.Is(err, ErrQueueTimeout) {
		t.Fatalf("queued acquire = %v, want ErrQueueTimeout", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("timeout took %v, deadline is 30ms", d)
	}
	st := a.Stats()["t"]
	if st.QueueTimeouts != 1 || st.Queued != 0 {
		t.Fatalf("stats = %+v, want 1 queue timeout, 0 queued", st)
	}
	rel(0)
	// The slot is free again: the next request is admitted directly.
	rel2, err := a.Acquire(ctx, "t")
	if err != nil {
		t.Fatalf("post-timeout acquire failed: %v", err)
	}
	rel2(0)
}

// TestAdmissionCancelWhileQueued: cancelling the context of a queued
// request removes it and reports ErrCancelled.
func TestAdmissionCancelWhileQueued(t *testing.T) {
	a := NewAdmission(TenantConfig{MaxConcurrent: 1, QueueDepth: 4, QueueWaitMS: 60000}, nil, false)
	rel, err := a.Acquire(context.Background(), "t")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := a.Acquire(ctx, "t")
		errc <- err
	}()
	waitFor(t, func() bool { return a.Stats()["t"].Queued == 1 })
	cancel()
	if err := <-errc; !errors.Is(err, ErrCancelled) {
		t.Fatalf("cancelled acquire = %v, want ErrCancelled", err)
	}
	st := a.Stats()["t"]
	if st.Cancelled != 1 || st.Queued != 0 {
		t.Fatalf("stats = %+v, want 1 cancelled, 0 queued", st)
	}
	rel(0)
}

// TestAdmissionQuota: once completed requests have spent the tenant's
// cumulative oracle-call quota, new requests are rejected until ResetQuota.
func TestAdmissionQuota(t *testing.T) {
	a := NewAdmission(TenantConfig{MaxConcurrent: 4, CallQuota: 100}, nil, false)
	ctx := context.Background()
	rel, err := a.Acquire(ctx, "t")
	if err != nil {
		t.Fatal(err)
	}
	rel(100) // spends the whole quota
	if _, err := a.Acquire(ctx, "t"); !errors.Is(err, ErrQuotaExhausted) {
		t.Fatalf("acquire after quota spend = %v, want ErrQuotaExhausted", err)
	}
	st := a.Stats()["t"]
	if st.RejectedQuota != 1 || st.QuotaSpent != 100 || st.QuotaLimit != 100 {
		t.Fatalf("stats = %+v", st)
	}
	if !a.ResetQuota("t") {
		t.Fatal("ResetQuota reported unknown tenant")
	}
	rel2, err := a.Acquire(ctx, "t")
	if err != nil {
		t.Fatalf("acquire after reset = %v", err)
	}
	rel2(1)
	if a.ResetQuota("never-seen") {
		t.Fatal("ResetQuota invented a tenant")
	}
}

// TestAdmissionQuotaCutsQueue: when a completing request spends the last
// of the tenant's quota, requests already waiting in the queue are
// rejected immediately with the quota reason instead of burning their
// wait deadline on a slot that could no longer help them.
func TestAdmissionQuotaCutsQueue(t *testing.T) {
	a := NewAdmission(TenantConfig{MaxConcurrent: 1, QueueDepth: 4, QueueWaitMS: 60000, CallQuota: 10}, nil, false)
	ctx := context.Background()
	rel, err := a.Acquire(ctx, "t")
	if err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, err := a.Acquire(ctx, "t")
			errs <- err
		}()
	}
	waitFor(t, func() bool { return a.Stats()["t"].Queued == 2 })
	rel(10) // spends the whole quota: the queue is cut, not handed the slot
	for i := 0; i < 2; i++ {
		if err := <-errs; !errors.Is(err, ErrQuotaExhausted) {
			t.Fatalf("queued acquire after quota spend = %v, want ErrQuotaExhausted", err)
		}
	}
	st := a.Stats()["t"]
	if st.RejectedQuota != 2 || st.Active != 0 || st.Queued != 0 {
		t.Fatalf("stats = %+v, want 2 quota rejections, idle tenant", st)
	}
}

// TestAdmissionDynamicTenantCap: a non-strict controller refuses to
// allocate state beyond maxDynamicTenants lazily-created names, so
// request-invented tenant names cannot grow it without bound.
func TestAdmissionDynamicTenantCap(t *testing.T) {
	a := NewAdmission(TenantConfig{}, map[string]TenantConfig{"declared": {}}, false)
	a.mu.Lock()
	for i := 0; i < maxDynamicTenants; i++ {
		name := fmt.Sprintf("dyn-%d", i)
		a.tenants[name] = &tenant{name: name, cfg: a.defCfg}
	}
	a.mu.Unlock()
	if _, err := a.Acquire(context.Background(), "one-too-many"); !errors.Is(err, ErrTenantOverflow) {
		t.Fatalf("acquire past the tenant cap = %v, want ErrTenantOverflow", err)
	}
	// Existing tenants — declared or dynamic — still work.
	for _, name := range []string{"declared", "dyn-0"} {
		rel, err := a.Acquire(context.Background(), name)
		if err != nil {
			t.Fatalf("existing tenant %q rejected: %v", name, err)
		}
		rel(0)
	}
}

// TestAdmissionStrictTenants: strict mode rejects tenants missing from the
// table and still serves the declared ones.
func TestAdmissionStrictTenants(t *testing.T) {
	a := NewAdmission(TenantConfig{}, map[string]TenantConfig{"known": {}}, true)
	if _, err := a.Acquire(context.Background(), "stranger"); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("stranger acquire = %v, want ErrUnknownTenant", err)
	}
	rel, err := a.Acquire(context.Background(), "known")
	if err != nil {
		t.Fatalf("known tenant rejected: %v", err)
	}
	rel(0)
}

// TestAdmissionTenantsIsolated: one tenant saturating its limits does not
// affect another's admission.
func TestAdmissionTenantsIsolated(t *testing.T) {
	// QueueDepth -1 normalizes to "no queueing": reject as soon as the
	// slots are full.
	a := NewAdmission(TenantConfig{MaxConcurrent: 1, QueueDepth: -1, QueueWaitMS: 30}, nil, false)
	ctx := context.Background()
	relA, err := a.Acquire(ctx, "a")
	if err != nil {
		t.Fatal(err)
	}
	// "a" is saturated (no queue slots) ...
	if _, err := a.Acquire(ctx, "a"); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("saturated tenant acquire = %v, want ErrQueueFull", err)
	}
	// ... but "b" sails through.
	relB, err := a.Acquire(ctx, "b")
	if err != nil {
		t.Fatalf("tenant b rejected: %v", err)
	}
	relA(0)
	relB(0)
}

// TestAdmissionRetryAfter: congestion backs off from the tenant's queue
// wait, quota exhaustion from a minute — each jittered deterministically
// into [base/2, base] per (tenant, rejection ordinal).
func TestAdmissionRetryAfter(t *testing.T) {
	inBounds := func(d, base time.Duration) bool { return base/2 <= d && d <= base }
	a := NewAdmission(TenantConfig{QueueWaitMS: 2500}, nil, false)
	if d := a.RetryAfter("t", ErrQueueFull); !inBounds(d, 2500*time.Millisecond) {
		t.Errorf("RetryAfter(queue full) = %v, want within [1.25s, 2.5s]", d)
	}
	if d := a.RetryAfter("t", ErrQuotaExhausted); !inBounds(d, time.Minute) {
		t.Errorf("RetryAfter(quota) = %v, want within [30s, 1m]", d)
	}

	// The sequence is a pure function of (tenant, ordinal): a second
	// controller replays it exactly, and distinct tenants de-correlate.
	b := NewAdmission(TenantConfig{QueueWaitMS: 2500}, nil, false)
	var seqA, seqB []time.Duration
	for i := 0; i < 8; i++ {
		seqA = append(seqA, a.RetryAfter("t", ErrQueueFull))
		seqB = append(seqB, b.RetryAfter("t", ErrQueueFull))
	}
	// a is two rejections ahead of b from the bounds checks above.
	for i := 0; i+2 < len(seqA); i++ {
		if seqA[i] != seqB[i+2] {
			t.Fatalf("jitter is not a pure function of (tenant, ordinal): %v vs %v", seqA[i], seqB[i+2])
		}
	}
	spread := map[time.Duration]bool{}
	for _, d := range seqB {
		spread[d] = true
	}
	if len(spread) < 4 {
		t.Errorf("8 rejections landed on only %d distinct backoffs: %v", len(spread), seqB)
	}

	// Pinning the RNG hook pins the jitter: rand64 ≡ 0 means no offset.
	c := NewAdmission(TenantConfig{QueueWaitMS: 2500}, nil, false)
	c.rand64 = func(uint64) uint64 { return 0 }
	if d := c.RetryAfter("t", ErrQueueFull); d != 2500*time.Millisecond {
		t.Errorf("RetryAfter with zero RNG = %v, want the full base 2.5s", d)
	}
	if d := c.RetryAfter("t", ErrQuotaExhausted); d != time.Minute {
		t.Errorf("RetryAfter(quota) with zero RNG = %v, want 1m", d)
	}
}

// waitFor polls a condition with a deadline; admission handoffs are
// asynchronous but fast.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 10s")
		}
		time.Sleep(time.Millisecond)
	}
}
