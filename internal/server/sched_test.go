package server

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// grantRecord is one dispatched grant observed by a collector goroutine.
type grantRecord struct {
	tenant string
	g      *Grant
}

// spawnWaiters starts n AcquireGrant calls for one tenant and reports each
// grant on the shared channel as the scheduler dispatches it.
func spawnWaiters(t *testing.T, a *Admission, tenant string, n, cost int, deadline time.Duration, grants chan<- grantRecord) {
	t.Helper()
	for i := 0; i < n; i++ {
		go func() {
			g, err := a.AcquireGrant(context.Background(), AdmitRequest{Tenant: tenant, Cost: cost, Deadline: deadline})
			if err != nil {
				t.Errorf("%s: %v", tenant, err)
				return
			}
			grants <- grantRecord{tenant: tenant, g: g}
		}()
	}
}

// holdSlot occupies the shared slot pool with grants from a dedicated
// tenant, so a test can queue its real waiters deterministically before
// any dispatch happens.
func holdSlot(t *testing.T, a *Admission, n int) []*Grant {
	t.Helper()
	held := make([]*Grant, n)
	for i := range held {
		g, err := a.AcquireGrant(context.Background(), AdmitRequest{Tenant: "holder"})
		if err != nil {
			t.Fatalf("filling slot %d: %v", i, err)
		}
		held[i] = g
	}
	return held
}

// TestSchedDRRWeightedShares drives one shared slot over two continuously
// backlogged tenants with weights 1 and 3: over any whole number of DRR
// rotations the grant counts must split exactly 1:3, regardless of which
// tenant enqueued first.
func TestSchedDRRWeightedShares(t *testing.T) {
	a := NewScheduler(
		TenantConfig{MaxConcurrent: 64, QueueDepth: 64, QueueWaitMS: 60000},
		map[string]TenantConfig{
			"light": {MaxConcurrent: 64, QueueDepth: 64, QueueWaitMS: 60000, Weight: 1},
			"heavy": {MaxConcurrent: 64, QueueDepth: 64, QueueWaitMS: 60000, Weight: 3},
		},
		false, SchedConfig{Slots: 1, Quantum: 1})
	neverFire(a)

	held := holdSlot(t, a, 1)
	grants := make(chan grantRecord, 64)
	spawnWaiters(t, a, "light", 20, 1, 0, grants)
	spawnWaiters(t, a, "heavy", 20, 1, 0, grants)
	waitFor(t, func() bool {
		st := a.Stats()
		return st["light"].Queued == 20 && st["heavy"].Queued == 20
	})
	held[0].Release(0)

	// 16 grants = 4 full rotations of (1 light + 3 heavy).
	counts := map[string]int{}
	for i := 0; i < 16; i++ {
		r := <-grants
		counts[r.tenant]++
		r.g.Release(0)
	}
	if counts["light"] != 4 || counts["heavy"] != 12 {
		t.Fatalf("grant shares = %+v, want light=4 heavy=12 (weights 1:3)", counts)
	}
	// Drain the rest so the scheduler ends idle.
	for i := 0; i < 24; i++ {
		r := <-grants
		r.g.Release(0)
	}
	waitFor(t, func() bool {
		st := a.Stats()
		return st["light"].Active == 0 && st["heavy"].Active == 0 &&
			st["light"].Queued == 0 && st["heavy"].Queued == 0
	})
}

// TestSchedDeficitAccounting pins the deficit mechanics for a request
// whose cost exceeds the quantum: the bulk tenant must accumulate deficit
// across rotations (quantum per visit) while the cheap tenant keeps being
// served, and the bulk request dispatches exactly when the accumulated
// deficit covers its cost — it is neither starved nor served early.
func TestSchedDeficitAccounting(t *testing.T) {
	a := NewScheduler(
		TenantConfig{MaxConcurrent: 64, QueueDepth: 64, QueueWaitMS: 60000},
		nil, false, SchedConfig{Slots: 1, Quantum: 2})
	neverFire(a)

	held := holdSlot(t, a, 1)
	grants := make(chan grantRecord, 64)
	// "bulk" queues one cost-5 request first, so it is first in the ring;
	// "cheap" queues 12 cost-1 requests behind it.
	spawnWaiters(t, a, "bulk", 1, 5, 0, grants)
	waitFor(t, func() bool { return a.Stats()["bulk"].Queued == 1 })
	spawnWaiters(t, a, "cheap", 12, 1, 0, grants)
	waitFor(t, func() bool { return a.Stats()["cheap"].Queued == 12 })
	held[0].Release(0)

	// Quantum 2, bulk cost 5: bulk needs three visits (deficit 2, 4, 6).
	// Each rotation serves cheap twice in between, so the order is
	// cheap ×2, cheap ×2 (bulk at 4 after two visits), then on the third
	// rotation bulk at 6 ≥ 5 dispatches.
	var order []string
	for i := 0; i < 7; i++ {
		r := <-grants
		order = append(order, r.tenant)
		r.g.Release(0)
	}
	bulkAt := -1
	for i, name := range order {
		if name == "bulk" {
			bulkAt = i
			break
		}
	}
	if bulkAt != 4 {
		t.Fatalf("bulk dispatched at position %d of %v, want 4 (after two quantum-2 rotations)", bulkAt, order)
	}
	for i := 0; i < 6; i++ {
		r := <-grants
		r.g.Release(0)
	}
}

// TestSchedEDFCutAhead checks the deadline fast path: with the slot pool
// saturated by bulk traffic from another tenant, a deadline-stamped
// request is dispatched next — ahead of the round-robin order — and
// nearer deadlines beat farther ones.
func TestSchedEDFCutAhead(t *testing.T) {
	a := NewScheduler(
		TenantConfig{MaxConcurrent: 64, QueueDepth: 64, QueueWaitMS: 60000},
		nil, false, SchedConfig{Slots: 1, Quantum: 64, NoPreempt: true})
	neverFire(a)

	held := holdSlot(t, a, 1)
	grants := make(chan grantRecord, 64)
	spawnWaiters(t, a, "bulk", 8, 1, 0, grants)
	waitFor(t, func() bool { return a.Stats()["bulk"].Queued == 8 })
	spawnWaiters(t, a, "slo-far", 1, 1, 5*time.Second, grants)
	waitFor(t, func() bool { return a.Stats()["slo-far"].Queued == 1 })
	spawnWaiters(t, a, "slo-near", 1, 1, time.Second, grants)
	waitFor(t, func() bool { return a.Stats()["slo-near"].Queued == 1 })
	held[0].Release(0)

	r1 := <-grants
	if r1.tenant != "slo-near" {
		t.Fatalf("first grant went to %s, want slo-near (earliest deadline)", r1.tenant)
	}
	r1.g.Release(0)
	r2 := <-grants
	if r2.tenant != "slo-far" {
		t.Fatalf("second grant went to %s, want slo-far", r2.tenant)
	}
	r2.g.Release(0)
	for i := 0; i < 8; i++ {
		r := <-grants
		if r.tenant != "bulk" {
			t.Fatalf("grant %d went to %s, want bulk", i+2, r.tenant)
		}
		r.g.Release(0)
	}
}

// TestSchedEDFBorrowBound checks that deadline cut-ahead is bounded by
// the tenant's DRR deficit: once a deadline tenant has borrowed a full
// quantum×weight beyond its share, its next deadline request stops
// jumping the ring until the deficit recovers through normal rotation.
func TestSchedEDFBorrowBound(t *testing.T) {
	a := NewScheduler(
		TenantConfig{MaxConcurrent: 64, QueueDepth: 64, QueueWaitMS: 60000},
		nil, false, SchedConfig{Slots: 1, Quantum: 1, NoPreempt: true})
	neverFire(a)

	held := holdSlot(t, a, 1)
	grants := make(chan grantRecord, 64)
	// "slo" queues two deadline requests (the backlog keeps its deficit
	// alive); with quantum 1 and cost 1 it may borrow one grant of debt
	// (deficit −1) via EDF, then hits the borrow bound.
	spawnWaiters(t, a, "slo", 2, 1, time.Second, grants)
	waitFor(t, func() bool { return a.Stats()["slo"].Queued == 2 })
	spawnWaiters(t, a, "bulk", 6, 1, 0, grants)
	waitFor(t, func() bool { return a.Stats()["bulk"].Queued == 6 })
	held[0].Release(0)

	// slo #1 cuts ahead via EDF, charging its deficit to −1 — exactly the
	// borrow bound. slo #2 therefore may NOT cut ahead: bulk's DRR turn
	// runs first, slo's deficit recovers to 0 on its next ring visit, and
	// only then does slo #2 jump via EDF again.
	var order []string
	for i := 0; i < 8; i++ {
		r := <-grants
		order = append(order, r.tenant)
		r.g.Release(0)
	}
	want := []string{"slo", "bulk", "slo", "bulk", "bulk", "bulk", "bulk", "bulk"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("grant order = %v, want %v (borrow bound must defer slo #2 by one bulk grant)", order, want)
		}
	}
}

// TestSchedFIFOBaseline pins the fifo policy: with shared slots, grants
// follow global arrival order across tenants — no deadline cut-ahead, no
// weighting — which is the baseline the fairness harness compares DRR
// against.
func TestSchedFIFOBaseline(t *testing.T) {
	a := NewScheduler(
		TenantConfig{MaxConcurrent: 64, QueueDepth: 64, QueueWaitMS: 60000},
		map[string]TenantConfig{
			"heavy": {MaxConcurrent: 64, QueueDepth: 64, QueueWaitMS: 60000, Weight: 8},
		},
		false, SchedConfig{Slots: 1, Policy: PolicyFIFO})
	neverFire(a)

	held := holdSlot(t, a, 1)
	grants := make(chan grantRecord, 64)
	// Interleave arrivals one at a time so the global order is pinned:
	// a, heavy, a-deadline — the deadline must NOT cut ahead under fifo,
	// and heavy's weight must not matter.
	spawnWaiters(t, a, "a", 1, 1, 0, grants)
	waitFor(t, func() bool { return a.Stats()["a"].Queued == 1 })
	spawnWaiters(t, a, "heavy", 1, 4, 0, grants)
	waitFor(t, func() bool { return a.Stats()["heavy"].Queued == 1 })
	spawnWaiters(t, a, "b", 1, 1, time.Millisecond, grants)
	waitFor(t, func() bool { return a.Stats()["b"].Queued == 1 })
	held[0].Release(0)

	want := []string{"a", "heavy", "b"}
	for i, name := range want {
		r := <-grants
		if r.tenant != name {
			t.Fatalf("fifo grant %d went to %s, want %s", i, r.tenant, name)
		}
		r.g.Release(0)
	}
}

// manualClock installs a settable token-bucket clock and returns its
// advance function.
func manualClock(a *Admission) func(time.Duration) {
	var mu sync.Mutex
	now := time.Unix(1_000_000, 0)
	a.now = func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	return func(d time.Duration) {
		mu.Lock()
		defer mu.Unlock()
		now = now.Add(d)
	}
}

// TestTokenBucketRefill pins the quota bucket against a manual clock:
// spend drains tokens, refill restores them at exactly RefillPerSec up to
// the burst cap, rejection happens at zero, and Retry-After reports the
// exact time until one whole token exists.
func TestTokenBucketRefill(t *testing.T) {
	a := NewAdmission(TenantConfig{
		MaxConcurrent: 4, QueueDepth: 8, QueueWaitMS: 60000,
		CallQuota: 100, RefillPerSec: 10, QuotaBurst: 100,
	}, nil, false)
	advance := manualClock(a)
	ctx := context.Background()

	// Spend the whole bucket in one run.
	rel, err := a.Acquire(ctx, "t")
	if err != nil {
		t.Fatal(err)
	}
	rel(100)
	st := a.Stats()["t"]
	if st.QuotaRemaining != 0 || st.QuotaSpent != 100 {
		t.Fatalf("after spend: remaining=%v spent=%d, want 0/100", st.QuotaRemaining, st.QuotaSpent)
	}
	// Empty bucket rejects, and Retry-After is the exact refill time:
	// 1 token at 10 tokens/sec = 100ms.
	if _, err := a.Acquire(ctx, "t"); !errors.Is(err, ErrQuotaExhausted) {
		t.Fatalf("acquire on empty bucket = %v, want ErrQuotaExhausted", err)
	}
	if d := a.RetryAfter("t", ErrQuotaExhausted); d != 100*time.Millisecond {
		t.Fatalf("RetryAfter = %v, want exactly 100ms", d)
	}
	if st := a.Stats()["t"]; st.NextAdmitMS != 100 {
		t.Fatalf("NextAdmitMS = %d, want 100", st.NextAdmitMS)
	}

	// Half a second refills 5 tokens.
	advance(500 * time.Millisecond)
	if st := a.Stats()["t"]; st.QuotaRemaining != 5 {
		t.Fatalf("after 500ms: remaining=%v, want 5", st.QuotaRemaining)
	}
	rel, err = a.Acquire(ctx, "t")
	if err != nil {
		t.Fatalf("acquire after refill: %v", err)
	}
	rel(5)
	// The bucket never exceeds its burst cap, however long it idles.
	advance(time.Hour)
	if st := a.Stats()["t"]; st.QuotaRemaining != 100 {
		t.Fatalf("after an idle hour: remaining=%v, want capped at 100", st.QuotaRemaining)
	}
}

// TestTokenBucketOverspendDebt checks that a run charging more than the
// bucket holds drives it negative (the run was already admitted; the debt
// is real) and that refill pays the debt before serving new requests.
func TestTokenBucketOverspendDebt(t *testing.T) {
	a := NewAdmission(TenantConfig{
		MaxConcurrent: 4, QueueDepth: 8, QueueWaitMS: 60000,
		CallQuota: 50, RefillPerSec: 100,
	}, nil, false)
	advance := manualClock(a)
	ctx := context.Background()

	rel, err := a.Acquire(ctx, "t")
	if err != nil {
		t.Fatal(err)
	}
	rel(80) // 30 over the bucket
	if st := a.Stats()["t"]; st.QuotaRemaining != -30 {
		t.Fatalf("after overspend: remaining=%v, want -30", st.QuotaRemaining)
	}
	if _, err := a.Acquire(ctx, "t"); !errors.Is(err, ErrQuotaExhausted) {
		t.Fatalf("acquire in debt = %v, want ErrQuotaExhausted", err)
	}
	// 31 tokens at 100/sec: the debt plus one whole token takes 310ms.
	if d := a.RetryAfter("t", ErrQuotaExhausted); d != 310*time.Millisecond {
		t.Fatalf("RetryAfter = %v, want exactly 310ms", d)
	}
	advance(310 * time.Millisecond)
	rel, err = a.Acquire(ctx, "t")
	if err != nil {
		t.Fatalf("acquire after debt repaid: %v", err)
	}
	rel(0)
}

// TestTokenBucketManualResetOnly pins the legacy regime (RefillPerSec 0):
// an exhausted bucket stays exhausted — NextAdmitMS answers 0 ("waiting
// will not help") — until ResetQuota refills it to capacity.
func TestTokenBucketManualResetOnly(t *testing.T) {
	a := NewAdmission(TenantConfig{
		MaxConcurrent: 4, QueueDepth: 8, QueueWaitMS: 60000, CallQuota: 10,
	}, nil, false)
	advance := manualClock(a)
	ctx := context.Background()

	rel, err := a.Acquire(ctx, "t")
	if err != nil {
		t.Fatal(err)
	}
	rel(10)
	advance(time.Hour) // no refill rate: time changes nothing
	st := a.Stats()["t"]
	if st.QuotaRemaining != 0 || st.NextAdmitMS != 0 {
		t.Fatalf("exhausted manual bucket: remaining=%v nextAdmit=%d, want 0/0", st.QuotaRemaining, st.NextAdmitMS)
	}
	if _, err := a.Acquire(ctx, "t"); !errors.Is(err, ErrQuotaExhausted) {
		t.Fatalf("acquire = %v, want ErrQuotaExhausted", err)
	}
	if !a.ResetQuota("t") {
		t.Fatal("ResetQuota reported an unknown tenant")
	}
	st = a.Stats()["t"]
	if st.QuotaRemaining != 10 || st.QuotaSpent != 0 {
		t.Fatalf("after reset: remaining=%v spent=%d, want 10/0", st.QuotaRemaining, st.QuotaSpent)
	}
	rel, err = a.Acquire(ctx, "t")
	if err != nil {
		t.Fatalf("acquire after reset: %v", err)
	}
	rel(0)
}

// TestSchedPreemptVictimSelection pins maybePreemptLocked's choice: a
// deadline waiter that cannot dispatch asks the preemptible running grant
// with the latest (or no) deadline to suspend — never one at least as
// urgent as itself — and asks exactly one victim per waiter.
func TestSchedPreemptVictimSelection(t *testing.T) {
	a := NewScheduler(
		TenantConfig{MaxConcurrent: 64, QueueDepth: 64, QueueWaitMS: 60000},
		nil, false, SchedConfig{Slots: 3, Quantum: 64})
	neverFire(a)
	ctx := context.Background()

	// Three running grants: no deadline (preemptible), far deadline
	// (preemptible), near deadline (preemptible).
	gNone, err := a.AcquireGrant(ctx, AdmitRequest{Tenant: "none"})
	if err != nil {
		t.Fatal(err)
	}
	gFar, err := a.AcquireGrant(ctx, AdmitRequest{Tenant: "far", Deadline: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	gNear, err := a.AcquireGrant(ctx, AdmitRequest{Tenant: "near", Deadline: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	gNone.SetPreemptible(true)
	gFar.SetPreemptible(true)
	gNear.SetPreemptible(true)

	// A 5s-deadline waiter arrives with every slot busy: the victim must
	// be the deadline-less grant, not the far one (later than 5s but
	// deadline-less ranks later still) and never the near one.
	grants := make(chan grantRecord, 4)
	spawnWaiters(t, a, "slo", 1, 1, 5*time.Second, grants)
	waitFor(t, func() bool { return gNone.PreemptRequested() })
	if gFar.PreemptRequested() || gNear.PreemptRequested() {
		t.Fatal("preemption asked a deadlined grant while a deadline-less one ran")
	}

	// A second deadline waiter may claim the next-latest victim: far's
	// 10s deadline is after its 2s, so far is asked; near never is.
	spawnWaiters(t, a, "slo2", 1, 1, 2*time.Second, grants)
	waitFor(t, func() bool { return gFar.PreemptRequested() })
	if gNear.PreemptRequested() {
		t.Fatal("preemption asked a grant more urgent than the waiter")
	}

	// The victims yield at their round boundaries (Yield blocks until the
	// resumed run is re-granted, so each runs on its own goroutine); the
	// freed slots go to the deadline waiters first.
	yields := make(chan error, 2)
	go func() { yields <- gNone.Yield(ctx) }()
	go func() { yields <- gFar.Yield(ctx) }()
	got := map[string]bool{}
	for i := 0; i < 2; i++ {
		r := <-grants
		got[r.tenant] = true
		r.g.Release(0)
	}
	if !got["slo"] || !got["slo2"] {
		t.Fatalf("deadline waiters not dispatched after yields: %v", got)
	}
	for i := 0; i < 2; i++ {
		if err := <-yields; err != nil {
			t.Fatalf("yield %d did not resume: %v", i, err)
		}
	}
	gNone.Release(0)
	gFar.Release(0)
	gNear.Release(0)
	if n := a.Preemptions(); n != 2 {
		t.Fatalf("Preemptions() = %d, want 2", n)
	}
}

// TestSchedYieldHandoffNoStrandedWaiter is the suspend/resume handoff
// audit: when a preempted grant yields its slot, the freed slot must go to
// the deadline waiter immediately, and the yielded run must re-enter the
// queue and eventually resume — nobody waits forever and every counter
// conserves.
func TestSchedYieldHandoffNoStrandedWaiter(t *testing.T) {
	a := NewScheduler(
		TenantConfig{MaxConcurrent: 64, QueueDepth: 64, QueueWaitMS: 60000},
		nil, false, SchedConfig{Slots: 1, Quantum: 4})
	neverFire(a)
	ctx := context.Background()

	bulk, err := a.AcquireGrant(ctx, AdmitRequest{Tenant: "bulk", Cost: 8})
	if err != nil {
		t.Fatal(err)
	}
	bulk.SetPreemptible(true)

	grants := make(chan grantRecord, 4)
	spawnWaiters(t, a, "slo", 1, 1, time.Second, grants)
	waitFor(t, func() bool { return bulk.PreemptRequested() })

	// The bulk run reaches its round boundary and yields; the slot must
	// hand off to the SLO waiter, and the yield must block (resume waits
	// behind it).
	resumed := make(chan error, 1)
	go func() { resumed <- bulk.Yield(ctx) }()
	r := <-grants
	if r.tenant != "slo" {
		t.Fatalf("slot after yield went to %s, want slo", r.tenant)
	}
	select {
	case err := <-resumed:
		t.Fatalf("yield returned (%v) while the slot was still held", err)
	case <-time.After(20 * time.Millisecond):
	}
	r.g.Release(0)
	if err := <-resumed; err != nil {
		t.Fatalf("resume after release: %v", err)
	}
	bulk.Release(0)

	st := a.Stats()
	for _, name := range []string{"bulk", "slo"} {
		s := st[name]
		if s.Active != 0 || s.Queued != 0 || s.Admitted != s.Completed {
			t.Fatalf("%s not conserved after handoff: %+v", name, s)
		}
	}
	if st["bulk"].Preemptions != 1 {
		t.Fatalf("bulk preemptions = %d, want 1", st["bulk"].Preemptions)
	}
}

// TestSchedResumeAheadOfLaterArrivals checks the resumption ordering
// contract: a preempted run re-enters its tenant's queue at its ORIGINAL
// arrival order, so requests that arrived after it do not overtake it
// while it is suspended.
func TestSchedResumeAheadOfLaterArrivals(t *testing.T) {
	a := NewScheduler(
		TenantConfig{MaxConcurrent: 64, QueueDepth: 64, QueueWaitMS: 60000},
		nil, false, SchedConfig{Slots: 1, Quantum: 64})
	neverFire(a)
	ctx := context.Background()

	bulk, err := a.AcquireGrant(ctx, AdmitRequest{Tenant: "bulk", Cost: 1})
	if err != nil {
		t.Fatal(err)
	}
	bulk.SetPreemptible(true)

	grants := make(chan grantRecord, 8)
	// Later arrivals from the same tenant queue behind the running bulk.
	spawnWaiters(t, a, "bulk", 3, 1, 0, grants)
	waitFor(t, func() bool { return a.Stats()["bulk"].Queued == 3 })
	spawnWaiters(t, a, "slo", 1, 1, time.Second, grants)
	waitFor(t, func() bool { return bulk.PreemptRequested() })

	resumed := make(chan error, 1)
	go func() { resumed <- bulk.Yield(ctx) }()
	r := <-grants
	if r.tenant != "slo" {
		t.Fatalf("slot after yield went to %s, want slo", r.tenant)
	}
	r.g.Release(0)
	// The resumed run — original seq 1 — must get the slot back before
	// the three later bulk arrivals.
	if err := <-resumed; err != nil {
		t.Fatalf("resume: %v", err)
	}
	select {
	case r := <-grants:
		t.Fatalf("later arrival (%s) overtook the suspended run", r.tenant)
	default:
	}
	bulk.Release(0)
	for i := 0; i < 3; i++ {
		r := <-grants
		r.g.Release(0)
	}
}

// TestSchedGrantReleaseIdempotent pins the exactly-once release contract:
// double Release must not double-charge quota or free a slot twice.
func TestSchedGrantReleaseIdempotent(t *testing.T) {
	a := NewAdmission(TenantConfig{MaxConcurrent: 2, QueueDepth: 8, QueueWaitMS: 60000, CallQuota: 100}, nil, false)
	g, err := a.AcquireGrant(context.Background(), AdmitRequest{Tenant: "t"})
	if err != nil {
		t.Fatal(err)
	}
	g.Release(30)
	g.Release(30)
	st := a.Stats()["t"]
	if st.QuotaSpent != 30 || st.Completed != 1 || st.Active != 0 {
		t.Fatalf("after double release: %+v, want spent=30 completed=1 active=0", st)
	}
}
