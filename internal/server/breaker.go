package server

import (
	"sync"
	"time"
)

// BreakerConfig parameterizes the per-catalog circuit breaker. Fields are
// plain JSON (milliseconds, counts) so the mqoserver flag surface can
// carry them. The zero value enables the breaker with generous defaults —
// a healthy server never notices it.
type BreakerConfig struct {
	// Disabled turns the breaker off: every catalog serves closed forever.
	Disabled bool `json:"disabled,omitempty"`
	// FailureThreshold is the consecutive-failure count (recovered panics
	// or time-budget deadline stops) that moves a closed catalog to
	// degraded serving (default 3).
	FailureThreshold int `json:"failure_threshold,omitempty"`
	// OpenThreshold is the consecutive-failure count that moves a degraded
	// catalog to open, where requests are rejected outright (default 3).
	OpenThreshold int `json:"open_threshold,omitempty"`
	// RecoveryThreshold is the consecutive-success count that closes a
	// degraded catalog again (default 3).
	RecoveryThreshold int `json:"recovery_threshold,omitempty"`
	// CooldownMS is how long an open catalog rejects before a single probe
	// request is let through in degraded mode (default 10000).
	CooldownMS int64 `json:"cooldown_ms,omitempty"`
	// DegradedTimeBudgetMS clamps each degraded request's wall clock, on
	// top of any tenant or request budget (default 2000).
	DegradedTimeBudgetMS int64 `json:"degraded_time_budget_ms,omitempty"`
	// DegradedCallBudget clamps each degraded request's oracle calls
	// (default 50000).
	DegradedCallBudget int `json:"degraded_call_budget,omitempty"`
}

func (c BreakerConfig) normalize() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 3
	}
	if c.OpenThreshold <= 0 {
		c.OpenThreshold = 3
	}
	if c.RecoveryThreshold <= 0 {
		c.RecoveryThreshold = 3
	}
	if c.CooldownMS <= 0 {
		c.CooldownMS = 10000
	}
	if c.DegradedTimeBudgetMS <= 0 {
		c.DegradedTimeBudgetMS = 2000
	}
	if c.DegradedCallBudget <= 0 {
		c.DegradedCallBudget = 50000
	}
	return c
}

func (c BreakerConfig) cooldown() time.Duration {
	return time.Duration(c.CooldownMS) * time.Millisecond
}

// breakerState is the per-catalog serving mode.
type breakerState int

const (
	// breakerClosed: healthy, serve normally.
	breakerClosed breakerState = iota
	// breakerDegraded: repeated faults; serve with clamped budgets and the
	// cheap LazyGreedy fallback, flagged degraded in the response.
	breakerDegraded
	// breakerOpen: still failing while degraded; reject with 503 +
	// Retry-After until the cooldown admits a probe.
	breakerOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerDegraded:
		return "degraded"
	case breakerOpen:
		return "open"
	}
	return "unknown"
}

// breakerEntry is one catalog's breaker state. failures and successes are
// consecutive counts within the current state; probing marks the single
// post-cooldown trial request of an open breaker.
type breakerEntry struct {
	state     breakerState
	failures  int
	successes int
	openedAt  time.Time
	probing   bool
}

// breaker is the per-poolKey circuit breaker. Failures are recovered
// panics and deadline stops; successes are completed runs. Entries are
// created lazily on the first recorded event, so an all-healthy server
// carries no breaker state at all.
type breaker struct {
	cfg     BreakerConfig
	mu      sync.Mutex
	entries map[poolKey]*breakerEntry
	now     func() time.Time // test hook
}

func newBreaker(cfg BreakerConfig) *breaker {
	return &breaker{
		cfg:     cfg.normalize(),
		entries: make(map[poolKey]*breakerEntry),
		now:     time.Now,
	}
}

// admit decides how a request on key may be served: normally
// (false,0,true), degraded (true,0,true), or not at all (_,retry,false —
// the breaker is open and the cooldown has retry left). After the
// cooldown one request is admitted as a degraded probe; its outcome
// decides between reopening and recovery.
func (b *breaker) admit(key poolKey) (degraded bool, retry time.Duration, ok bool) {
	if b.cfg.Disabled {
		return false, 0, true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.entries[key]
	if e == nil || e.state == breakerClosed {
		return false, 0, true
	}
	if e.state == breakerDegraded {
		return true, 0, true
	}
	cool := e.openedAt.Add(b.cfg.cooldown())
	if now := b.now(); !now.Before(cool) && !e.probing {
		e.probing = true
		return true, 0, true
	} else if remaining := cool.Sub(now); remaining > 0 {
		return false, remaining, false
	}
	// Cooldown elapsed but a probe is already in flight: hold the line
	// until it reports.
	return false, b.cfg.cooldown(), false
}

// entry lazily allocates the key's state.
func (b *breaker) entry(key poolKey) *breakerEntry {
	e := b.entries[key]
	if e == nil {
		e = &breakerEntry{}
		b.entries[key] = e
	}
	return e
}

// recordSuccess reports one completed run on key.
func (b *breaker) recordSuccess(key poolKey) {
	if b.cfg.Disabled {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.entries[key]
	if e == nil {
		return // closed with no history: nothing to track
	}
	e.probing = false
	switch e.state {
	case breakerClosed:
		e.failures = 0
	case breakerDegraded:
		e.failures = 0
		e.successes++
		if e.successes >= b.cfg.RecoveryThreshold {
			delete(b.entries, key) // fully healthy again
		}
	case breakerOpen:
		// A straggler admitted before the trip (or the probe) finished
		// cleanly: the catalog can work, so close down to degraded rather
		// than keep rejecting until the cooldown.
		e.state = breakerDegraded
		e.failures = 0
		e.successes = 1
	}
}

// recordFailure reports one recovered panic or deadline stop on key.
func (b *breaker) recordFailure(key poolKey) {
	if b.cfg.Disabled {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.entry(key)
	e.probing = false
	e.successes = 0
	switch e.state {
	case breakerClosed:
		e.failures++
		if e.failures >= b.cfg.FailureThreshold {
			e.state = breakerDegraded
			e.failures = 0
		}
	case breakerDegraded:
		e.failures++
		if e.failures >= b.cfg.OpenThreshold {
			e.state = breakerOpen
			e.failures = 0
			e.openedAt = b.now()
		}
	case breakerOpen:
		e.openedAt = b.now() // failed probe or straggler: extend the cooldown
	}
}

// BreakerStats is one catalog's breaker state in /v1/stats and /healthz.
type BreakerStats struct {
	State               string `json:"state"`
	ConsecutiveFailures int    `json:"consecutive_failures,omitempty"`
	CooldownRemainingMS int64  `json:"cooldown_remaining_ms,omitempty"`
}

// snapshot reports every catalog with non-trivial breaker state, keyed by
// the catalog's pool-key string. Healthy catalogs are omitted.
func (b *breaker) snapshot() map[string]BreakerStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.entries) == 0 {
		return nil
	}
	now := b.now()
	out := make(map[string]BreakerStats, len(b.entries))
	for k, e := range b.entries {
		st := BreakerStats{State: e.state.String(), ConsecutiveFailures: e.failures}
		if e.state == breakerOpen {
			if remaining := e.openedAt.Add(b.cfg.cooldown()).Sub(now); remaining > 0 {
				st.CooldownRemainingMS = remaining.Milliseconds()
			}
		}
		out[k.String()] = st
	}
	return out
}
