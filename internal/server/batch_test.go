package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/logical"
)

// batchSpecBody is the identical 12-query workload every batching test
// client submits; it matches workload.DefaultSpec(12, 0.75) with seed 7.
const batchSpecBody = `{"spec": {"seed": 7, "queries": 12, "shape": "mixed", "fan_out": 4, "sharing": 0.75, "select_frac": 0.8, "agg_frac": 0.5}}`

// postOptimize fires one optimize request and decodes the 200 body.
func postBatch(t *testing.T, url, tenant, body string) (*OptimizeResponse, int) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/optimize", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, resp.StatusCode
	}
	var or OptimizeResponse
	if err := json.NewDecoder(resp.Body).Decode(&or); err != nil {
		t.Fatalf("decoding 200 body: %v", err)
	}
	return &or, resp.StatusCode
}

// batchingServer builds a server whose lanes flush on exactly `size`
// requests; the deadline timer never fires, so flush composition is
// deterministic.
func batchingServer(t *testing.T, size int) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(Config{
		DefaultTenant: TenantConfig{MaxConcurrent: 2 * size, QueueDepth: 32, QueueWaitMS: 60000},
		Batch:         BatchConfig{Enabled: true, MaxRequests: size, MaxDelayMS: 60000},
	})
	srv.batcher.newTimer = func(time.Duration) (<-chan time.Time, func() bool) {
		return make(chan time.Time), func() bool { return true }
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// TestBatchCoalesceOracleSavings is the deterministic savings gate:
// eight identical concurrent requests served by the batching scheduler
// must spend at least 2x fewer total oracle calls than the same eight
// requests served independently (each on a fresh server, so no shared
// session cache flatters either side). Identical members coalesce to one
// group, so the shared run degenerates to a single solo-sized search.
func TestBatchCoalesceOracleSavings(t *testing.T) {
	const clients = 8
	srv, ts := batchingServer(t, clients)

	var (
		mu           sync.Mutex
		batchedCalls int
		batchSizes   []int
	)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			or, status := postBatch(t, ts.URL, "", batchSpecBody)
			if or == nil {
				t.Errorf("batched request: status %d", status)
				return
			}
			if !or.Batched {
				t.Errorf("response not served by the batch scheduler")
			}
			mu.Lock()
			batchedCalls += or.Telemetry.OracleCalls
			batchSizes = append(batchSizes, or.BatchSize)
			mu.Unlock()
		}()
	}
	wg.Wait()
	for _, bs := range batchSizes {
		if bs != clients {
			t.Fatalf("batch sizes %v: the size trigger should have coalesced all %d", batchSizes, clients)
		}
	}

	// Conservation: the responses' telemetry shares re-sum to exactly what
	// the pooled session spent.
	ps := srv.pool.stats()
	if len(ps) != 1 {
		t.Fatalf("pool has %d sessions, want 1", len(ps))
	}
	if got := ps[0].Session.OracleCalls; got != batchedCalls {
		t.Fatalf("session spent %d oracle calls, responses account for %d", got, batchedCalls)
	}

	soloCalls := 0
	for i := 0; i < clients; i++ {
		solo := New(Config{})
		tss := httptest.NewServer(solo.Handler())
		or, status := postBatch(t, tss.URL, "", batchSpecBody)
		tss.Close()
		if or == nil {
			t.Fatalf("solo request: status %d", status)
		}
		if or.Batched {
			t.Fatalf("solo server served a batched response")
		}
		soloCalls += or.Telemetry.OracleCalls
	}
	if batchedCalls*2 > soloCalls {
		t.Fatalf("batched total %d oracle calls, solo total %d: savings < 2x", batchedCalls, soloCalls)
	}
	t.Logf("oracle calls: batched %d vs solo %d (%.1fx)", batchedCalls, soloCalls, float64(soloCalls)/float64(batchedCalls))
}

// TestBatchDistinctMembersAttribution batches distinct (non-coalescible
// into one group) requests and checks each response carries a cost-valid
// slice: per-member materializations within the shared run, conserving
// telemetry, and a shared-credit field only batching can produce.
func TestBatchDistinctMembersAttribution(t *testing.T) {
	const clients = 3
	srv, ts := batchingServer(t, clients)

	bodies := make([]string, clients)
	for i := range bodies {
		// Same workload family, different seeds: members share structure
		// probabilistically but are not identical, so no deduplication.
		bodies[i] = fmt.Sprintf(`{"spec": {"seed": %d, "queries": 4, "shape": "star", "fan_out": 3, "sharing": 0.75, "select_frac": 0.8, "agg_frac": 0.5}}`, 100+i)
	}
	responses := make([]*OptimizeResponse, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			or, status := postBatch(t, ts.URL, fmt.Sprintf("tenant-%d", i), bodies[i])
			if or == nil {
				t.Errorf("request %d: status %d", i, status)
				return
			}
			responses[i] = or
		}(i)
	}
	wg.Wait()

	sumCalls := 0
	for i, or := range responses {
		if or == nil {
			t.Fatal("missing response")
		}
		if !or.Batched || or.BatchSize != clients {
			t.Fatalf("response %d: batched=%v size=%d, want a %d-member batch", i, or.Batched, or.BatchSize, clients)
		}
		if or.Queries != 4 {
			t.Fatalf("response %d reports %d queries, member sent 4", i, or.Queries)
		}
		if len(or.Plan.Queries) != 4 {
			t.Fatalf("response %d plan has %d query slices, want the member's 4", i, len(or.Plan.Queries))
		}
		if or.CostMS < 0 || or.VolcanoMS < 0 || or.SharedCreditMS < 0 {
			t.Fatalf("response %d: negative attributed numbers: %+v", i, or)
		}
		if or.PlanText != "" {
			t.Fatalf("response %d leaked the combined plan text in a multi-member batch", i)
		}
		if or.Checkpoint != nil {
			t.Fatalf("response %d leaked a combined-run checkpoint", i)
		}
		if len(or.Plan.Steps) != len(or.Materialized) {
			t.Fatalf("response %d: %d plan steps for %d attributed materializations", i, len(or.Plan.Steps), len(or.Materialized))
		}
		sumCalls += or.Telemetry.OracleCalls
	}
	ps := srv.pool.stats()
	if len(ps) != 1 || ps[0].Session.OracleCalls != sumCalls {
		t.Fatalf("telemetry shares (%d calls) do not conserve against the session", sumCalls)
	}
	// Tenancy: each member is attributed to its own tenant, and every
	// tenant's quota was charged exactly its share.
	adm := srv.Admission().Stats()
	for i, or := range responses {
		name := fmt.Sprintf("tenant-%d", i)
		if or.Tenant != name {
			t.Fatalf("response %d attributed to %q", i, or.Tenant)
		}
		if got := adm[name].QuotaSpent; got != int64(or.Telemetry.OracleCalls) {
			t.Fatalf("%s charged %d, response share is %d", name, got, or.Telemetry.OracleCalls)
		}
	}
}

// TestBatchSingletonMatchesSolo pins the singleton fast path end to end:
// with MaxRequests=1 every request rides the batch scheduler alone, and
// its response must carry exactly the numbers the solo path serves —
// same materializations, costs, telemetry counters, and even the
// checkpoint/plan-text surfaces that multi-member batches withhold.
func TestBatchSingletonMatchesSolo(t *testing.T) {
	_, bts := batchingServer(t, 1)
	body := `{"spec": {"seed": 3, "queries": 6, "shape": "chain", "fan_out": 3, "sharing": 0.5, "select_frac": 0.8, "agg_frac": 0.5}, "plan_text": true}`
	batched, status := postBatch(t, bts.URL, "", body)
	if batched == nil {
		t.Fatalf("batched: status %d", status)
	}
	solo := New(Config{})
	sts := httptest.NewServer(solo.Handler())
	defer sts.Close()
	want, status := postBatch(t, sts.URL, "", body)
	if want == nil {
		t.Fatalf("solo: status %d", status)
	}

	if !batched.Batched || batched.BatchSize != 1 {
		t.Fatalf("batched=%v size=%d, want a singleton batch", batched.Batched, batched.BatchSize)
	}
	if batched.CostMS != want.CostMS || batched.VolcanoMS != want.VolcanoMS || batched.BenefitMS != want.BenefitMS {
		t.Fatalf("singleton costs %v/%v/%v != solo %v/%v/%v",
			batched.CostMS, batched.VolcanoMS, batched.BenefitMS, want.CostMS, want.VolcanoMS, want.BenefitMS)
	}
	if batched.SharedCreditMS != 0 {
		t.Fatalf("singleton shared credit %v != 0", batched.SharedCreditMS)
	}
	if fmt.Sprint(batched.Materialized) != fmt.Sprint(want.Materialized) {
		t.Fatalf("singleton set %v != solo %v", batched.Materialized, want.Materialized)
	}
	if batched.PlanText == "" || batched.PlanText != want.PlanText {
		t.Fatalf("singleton plan text differs from solo")
	}
	bt, wt := batched.Telemetry, want.Telemetry
	bt.SetupTime, bt.SearchTime, bt.FinalizeTime, bt.TotalTime = 0, 0, 0, 0
	wt.SetupTime, wt.SearchTime, wt.FinalizeTime, wt.TotalTime = 0, 0, 0, 0
	if bt != wt {
		t.Fatalf("singleton telemetry counters differ:\n  %+v\n  %+v", bt, wt)
	}
}

// TestBatchMemberCancelledExcised pins the excision contract: a member
// whose client disconnected while the lane filled is answered as
// cancelled and removed before the shared run, without aborting the
// peers' run.
func TestBatchMemberCancelledExcised(t *testing.T) {
	srv, _ := batchingServer(t, 2)
	b := srv.batcher

	mkMember := func(ctx context.Context) *batchMember {
		batch := &logical.Batch{}
		batch.Add(logical.NewBlock().Scan("lineitem", "l").Cmp("l.tax", expr.LT, 40).Query("q"))
		fp, _ := batchFingerprint(batch)
		return &batchMember{ctx: ctx, batch: batch, fp: fp, tenant: "t", outcome: make(chan batchOutcome, 1)}
	}
	key := laneKey{pool: poolKey{sf: 1}, spec: runSpec{strategy: core.MarginalGreedy, callBudget: -1}}

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	dead := mkMember(cancelled)
	outcomes := make(chan batchOutcome, 1)
	go func() { outcomes <- b.submit(key, dead) }()

	// Wait until the dead member is enqueued so the flush composition is
	// deterministic, then fill the lane.
	for {
		b.mu.Lock()
		n := 0
		if l := b.lanes[key]; l != nil {
			n = len(l.members)
		}
		b.mu.Unlock()
		if n == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	liveOut := b.submit(key, mkMember(context.Background()))

	deadOut := <-outcomes
	if !deadOut.cancelled {
		t.Fatalf("cancelled member got %+v, want excision", deadOut)
	}
	if deadOut.spent != 0 {
		t.Fatalf("excised member charged %d oracle calls", deadOut.spent)
	}
	if liveOut.resp == nil {
		t.Fatalf("live member failed: %+v", liveOut)
	}
	if !liveOut.resp.Batched || liveOut.resp.BatchSize != 1 {
		t.Fatalf("live member saw batch size %d, want 1 after excision", liveOut.resp.BatchSize)
	}
}

// TestBatchDeadlineFlush drives the lane deadline with the manual clock:
// a lone request must be flushed by the timer, not wait for peers that
// never come.
func TestBatchDeadlineFlush(t *testing.T) {
	srv := New(Config{
		DefaultTenant: TenantConfig{MaxConcurrent: 8, QueueDepth: 32, QueueWaitMS: 60000},
		Batch:         BatchConfig{Enabled: true, MaxRequests: 8, MaxDelayMS: 60000},
	})
	fire := make(chan time.Time)
	srv.batcher.newTimer = func(time.Duration) (<-chan time.Time, func() bool) {
		return fire, func() bool { return true }
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	done := make(chan *OptimizeResponse, 1)
	go func() {
		or, _ := postBatch(t, ts.URL, "", `{"sql": "SELECT l.tax FROM lineitem l"}`)
		done <- or
	}()
	// The request must be parked in its lane until the deadline fires.
	for {
		srv.batcher.mu.Lock()
		parked := len(srv.batcher.lanes) == 1
		srv.batcher.mu.Unlock()
		if parked {
			break
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case <-done:
		t.Fatal("request completed before the lane deadline fired")
	default:
	}
	fire <- time.Time{}
	or := <-done
	if or == nil || !or.Batched || or.BatchSize != 1 {
		t.Fatalf("deadline flush served %+v", or)
	}
}

// TestBatchQueryCapFlush: the combined-query bound must flush the lane
// before MaxRequests is reached.
func TestBatchQueryCapFlush(t *testing.T) {
	srv := New(Config{
		DefaultTenant: TenantConfig{MaxConcurrent: 8, QueueDepth: 32, QueueWaitMS: 60000},
		Batch:         BatchConfig{Enabled: true, MaxRequests: 8, MaxDelayMS: 60000, MaxQueries: 4},
	})
	srv.batcher.newTimer = func(time.Duration) (<-chan time.Time, func() bool) {
		return make(chan time.Time), func() bool { return true }
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Two 2-query requests reach the 4-query cap; distinct SQL so they
	// stay two members.
	var wg sync.WaitGroup
	sizes := make([]int, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"sql": "SELECT l.tax FROM lineitem l WHERE l.shipdate < %d; SELECT l.tax FROM lineitem l WHERE l.shipdate < %d"}`, 1100+i, 1300+i)
			or, status := postBatch(t, ts.URL, "", body)
			if or == nil {
				t.Errorf("request %d: status %d", i, status)
				return
			}
			sizes[i] = or.BatchSize
		}(i)
	}
	wg.Wait()
	if sizes[0] != 2 || sizes[1] != 2 {
		t.Fatalf("batch sizes %v, want the query cap to flush both members together", sizes)
	}
}

// TestBatchLaneIsolation: requests whose effective run specs differ must
// not share a lane — their options would not be interchangeable.
func TestBatchLaneIsolation(t *testing.T) {
	srv, ts := batchingServer(t, 2)
	var wg sync.WaitGroup
	out := make([]*OptimizeResponse, 2)
	bodies := []string{
		`{"sql": "SELECT l.tax FROM lineitem l", "strategy": "greedy"}`,
		`{"sql": "SELECT l.tax FROM lineitem l", "strategy": "marginal"}`,
	}
	for i := range bodies {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			or, status := postBatch(t, ts.URL, "", bodies[i])
			if or == nil {
				t.Errorf("request %d: status %d", i, status)
				return
			}
			out[i] = or
		}(i)
	}
	// Neither lane can fill: distinct strategies park in distinct lanes.
	deadline := time.After(5 * time.Second)
	for {
		srv.batcher.mu.Lock()
		lanes := len(srv.batcher.lanes)
		srv.batcher.mu.Unlock()
		if lanes == 2 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("requests with distinct strategies did not park in distinct lanes")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	// Flush both by filling each lane with a matching second request.
	for i := range bodies {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			postBatch(t, ts.URL, "", bodies[i])
		}(i)
	}
	wg.Wait()
	for i, or := range out {
		if or == nil || or.BatchSize != 2 {
			t.Fatalf("request %d: %+v, want its own 2-member lane", i, or)
		}
		if or.Strategy != []string{"Greedy", "MarginalGreedy"}[i] {
			t.Fatalf("request %d served with strategy %q", i, or.Strategy)
		}
	}
}

// TestBatchSoloFallback: when the combined build fails because one
// member's batch is invalid against the catalog, the innocent member
// must still be served (solo, unbatched) and the guilty one must get its
// own 400.
func TestBatchSoloFallback(t *testing.T) {
	_, ts := batchingServer(t, 2)
	type result struct {
		or     *OptimizeResponse
		status int
	}
	results := make([]result, 2)
	bodies := []string{
		`{"sql": "SELECT l.tax FROM lineitem l"}`,
		`{"sql": "SELECT x.nope FROM nonexistent x"}`, // parses; invalid against the catalog
	}
	var wg sync.WaitGroup
	for i := range bodies {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			or, status := postBatch(t, ts.URL, "", bodies[i])
			results[i] = result{or, status}
		}(i)
	}
	wg.Wait()
	if results[0].or == nil {
		t.Fatalf("innocent member: status %d, want 200", results[0].status)
	}
	if results[0].or.Batched {
		t.Fatalf("fallback response still claims to be batched")
	}
	if results[1].status != http.StatusBadRequest {
		t.Fatalf("invalid member: status %d, want 400", results[1].status)
	}
}

// TestCoalesceBatchesUnit pins the coalescer's mapping directly.
func TestCoalesceBatchesUnit(t *testing.T) {
	q := func(pred float64, name string) *logical.Query {
		return logical.NewBlock().Scan("lineitem", "l").Cmp("l.tax", expr.LT, pred).Query(name)
	}
	mk := func(queries ...*logical.Query) *batchMember {
		b := &logical.Batch{Queries: queries}
		fp, _ := batchFingerprint(b)
		return &batchMember{batch: b, fp: fp}
	}
	a1 := mk(q(10, "a"))
	a2 := mk(q(10, "a"))  // identical -> same group
	b1 := mk(q(20, "a"))  // different predicate -> own group
	c1 := mk(q(10, "zz")) // different name -> own group (names are echoed)
	groups, mg := coalesceBatches([]*batchMember{a1, a2, b1, c1})
	if len(groups) != 3 {
		t.Fatalf("%d groups, want 3", len(groups))
	}
	if mg[0] != mg[1] {
		t.Fatalf("identical members mapped to groups %d and %d", mg[0], mg[1])
	}
	if mg[2] == mg[0] || mg[3] == mg[0] || mg[2] == mg[3] {
		t.Fatalf("distinct members shared a group: %v", mg)
	}
	if groups[mg[0]] != a1.batch {
		t.Fatalf("group does not preserve the first submitter's batch")
	}
}
