package catalog

import (
	"strings"
	"testing"
)

func validTable() *Table {
	return &Table{
		Name: "t",
		Rows: 100,
		Columns: []Column{
			{Name: "id", Type: Int, Width: 8, Distinct: 100, Min: 0, Max: 99},
			{Name: "v", Type: Float, Width: 8, Distinct: 10, Min: 0, Max: 1},
		},
		Indexes: []Index{{Column: "id", Clustered: true}},
	}
}

func TestAddAndLookup(t *testing.T) {
	c := New()
	if err := c.AddTable(validTable()); err != nil {
		t.Fatal(err)
	}
	tbl, ok := c.Table("t")
	if !ok {
		t.Fatal("table not found")
	}
	if col, ok := tbl.Column("v"); !ok || col.Width != 8 {
		t.Errorf("column lookup failed: %+v %v", col, ok)
	}
	if _, ok := tbl.Column("nope"); ok {
		t.Error("found nonexistent column")
	}
	if got := tbl.RowWidth(); got != 16 {
		t.Errorf("RowWidth = %d, want 16", got)
	}
	if ix, ok := tbl.ClusteredIndex(); !ok || ix.Column != "id" {
		t.Errorf("clustered index: %+v %v", ix, ok)
	}
	if _, ok := tbl.IndexOn("v"); ok {
		t.Error("found nonexistent index")
	}
}

func TestAddTableErrors(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Table)
		want string
	}{
		{"empty name", func(tb *Table) { tb.Name = "" }, "empty name"},
		{"zero rows", func(tb *Table) { tb.Rows = 0 }, "non-positive row count"},
		{"no columns", func(tb *Table) { tb.Columns = nil }, "no columns"},
		{"dup column", func(tb *Table) { tb.Columns = append(tb.Columns, Column{Name: "id", Width: 8}) }, "duplicate column"},
		{"empty column name", func(tb *Table) { tb.Columns[0].Name = "" }, "empty name"},
		{"zero width", func(tb *Table) { tb.Columns[0].Width = 0 }, "non-positive width"},
		{"max<min", func(tb *Table) { tb.Columns[0].Min, tb.Columns[0].Max = 5, 1 }, "max < min"},
		{"bad index", func(tb *Table) { tb.Indexes = []Index{{Column: "zzz"}} }, "unknown column"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			tb := validTable()
			c.mut(tb)
			err := New().AddTable(tb)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("error = %v, want containing %q", err, c.want)
			}
		})
	}
}

func TestDuplicateTable(t *testing.T) {
	c := New()
	if err := c.AddTable(validTable()); err != nil {
		t.Fatal(err)
	}
	if err := c.AddTable(validTable()); err == nil {
		t.Error("duplicate table accepted")
	}
}

func TestDistinctClamping(t *testing.T) {
	c := New()
	tb := validTable()
	tb.Columns[1].Distinct = 1e9 // more distinct than rows
	tb.Columns[0].Distinct = 0   // non-positive
	if err := c.AddTable(tb); err != nil {
		t.Fatal(err)
	}
	got, _ := c.Table("t")
	if d := got.Columns[1].Distinct; d != 100 {
		t.Errorf("distinct clamped to %v, want rows=100", d)
	}
	if d := got.Columns[0].Distinct; d != 1 {
		t.Errorf("zero distinct should become 1, got %v", d)
	}
}

func TestTablesSortedAndTotalBytes(t *testing.T) {
	c := New()
	b := validTable()
	b.Name = "b"
	a := validTable()
	a.Name = "a"
	c.MustAddTable(b)
	c.MustAddTable(a)
	names := []string{}
	for _, tb := range c.Tables() {
		names = append(names, tb.Name)
	}
	if names[0] != "a" || names[1] != "b" {
		t.Errorf("tables not sorted: %v", names)
	}
	if got := c.TotalBytes(); got != 2*100*16 {
		t.Errorf("TotalBytes = %v", got)
	}
}

func TestMustAddTablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAddTable should panic on invalid table")
		}
	}()
	tb := validTable()
	tb.Rows = -1
	New().MustAddTable(tb)
}

func TestColTypeString(t *testing.T) {
	for ct, want := range map[ColType]string{Int: "int", Float: "float", String: "string", Date: "date"} {
		if ct.String() != want {
			t.Errorf("%v", ct)
		}
	}
}
