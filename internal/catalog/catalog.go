// Package catalog defines schemas, table and column statistics, and index
// metadata used by the optimizer's cardinality and cost estimation.
//
// The optimizer is agnostic to how statistics are obtained; this package
// provides an in-memory catalog that workload generators (e.g. the TPCD
// catalog in internal/tpcd) populate and the estimator consumes.
package catalog

import (
	"fmt"
	"sort"
)

// ColType is the logical type of a column. It matters only for default
// widths and for synthetic data generation.
type ColType int

const (
	// Int is a 64-bit integer column.
	Int ColType = iota
	// Float is a 64-bit floating point column.
	Float
	// String is a fixed-width string column.
	String
	// Date is a date column stored as days since an epoch.
	Date
)

// String implements fmt.Stringer.
func (t ColType) String() string {
	switch t {
	case Int:
		return "int"
	case Float:
		return "float"
	case String:
		return "string"
	case Date:
		return "date"
	default:
		return fmt.Sprintf("ColType(%d)", int(t))
	}
}

// Column describes one column of a base table, including the statistics the
// estimator needs: the number of distinct values and the value range.
type Column struct {
	Name     string
	Type     ColType
	Width    int     // bytes per value
	Distinct float64 // number of distinct values
	Min, Max float64 // value range (for Int/Float/Date)
}

// Index describes an index on a single column of a table.
type Index struct {
	Column    string
	Clustered bool
}

// Table describes a base relation: its columns, row count and indexes.
type Table struct {
	Name    string
	Rows    float64
	Columns []Column
	Indexes []Index

	colByName map[string]int
}

// Column returns the named column, or false if it does not exist.
func (t *Table) Column(name string) (Column, bool) {
	i, ok := t.colByName[name]
	if !ok {
		return Column{}, false
	}
	return t.Columns[i], true
}

// RowWidth returns the width in bytes of one tuple of the table.
func (t *Table) RowWidth() int {
	w := 0
	for _, c := range t.Columns {
		w += c.Width
	}
	return w
}

// IndexOn returns the index on the given column, or false if none exists.
func (t *Table) IndexOn(column string) (Index, bool) {
	for _, ix := range t.Indexes {
		if ix.Column == column {
			return ix, true
		}
	}
	return Index{}, false
}

// ClusteredIndex returns the table's clustered index, or false if none.
func (t *Table) ClusteredIndex() (Index, bool) {
	for _, ix := range t.Indexes {
		if ix.Clustered {
			return ix, true
		}
	}
	return Index{}, false
}

// Catalog is a set of tables keyed by name.
type Catalog struct {
	tables map[string]*Table
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{tables: make(map[string]*Table)}
}

// AddTable registers a table. It returns an error if the name is already
// taken, a column name repeats, or statistics are inconsistent (e.g. more
// distinct values than rows, zero widths).
func (c *Catalog) AddTable(t *Table) error {
	if t.Name == "" {
		return fmt.Errorf("catalog: table with empty name")
	}
	if _, dup := c.tables[t.Name]; dup {
		return fmt.Errorf("catalog: duplicate table %q", t.Name)
	}
	if t.Rows <= 0 {
		return fmt.Errorf("catalog: table %q has non-positive row count %v", t.Name, t.Rows)
	}
	if len(t.Columns) == 0 {
		return fmt.Errorf("catalog: table %q has no columns", t.Name)
	}
	t.colByName = make(map[string]int, len(t.Columns))
	for i := range t.Columns {
		col := &t.Columns[i]
		if col.Name == "" {
			return fmt.Errorf("catalog: table %q has a column with empty name", t.Name)
		}
		if _, dup := t.colByName[col.Name]; dup {
			return fmt.Errorf("catalog: table %q has duplicate column %q", t.Name, col.Name)
		}
		if col.Width <= 0 {
			return fmt.Errorf("catalog: column %s.%s has non-positive width", t.Name, col.Name)
		}
		if col.Distinct <= 0 {
			col.Distinct = 1
		}
		if col.Distinct > t.Rows {
			col.Distinct = t.Rows
		}
		if col.Max < col.Min {
			return fmt.Errorf("catalog: column %s.%s has max < min", t.Name, col.Name)
		}
		t.colByName[col.Name] = i
	}
	for _, ix := range t.Indexes {
		if _, ok := t.colByName[ix.Column]; !ok {
			return fmt.Errorf("catalog: index on unknown column %s.%s", t.Name, ix.Column)
		}
	}
	c.tables[t.Name] = t
	return nil
}

// MustAddTable is AddTable but panics on error; intended for static
// workload definitions.
func (c *Catalog) MustAddTable(t *Table) {
	if err := c.AddTable(t); err != nil {
		panic(err)
	}
}

// Table returns the named table, or false if it is not in the catalog.
func (c *Catalog) Table(name string) (*Table, bool) {
	t, ok := c.tables[name]
	return t, ok
}

// Tables returns all tables sorted by name.
func (c *Catalog) Tables() []*Table {
	out := make([]*Table, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// TotalBytes returns the total data size of all tables in bytes.
func (c *Catalog) TotalBytes() float64 {
	var sum float64
	for _, t := range c.tables {
		sum += t.Rows * float64(t.RowWidth())
	}
	return sum
}
