package memo

import (
	"strconv"
	"strings"
)

// projectWidths applies the "project early" model: every leaf scan projects
// to the columns referenced anywhere in the batch (join conditions,
// predicates, aggregations), and intermediate widths are recomputed from
// the projected leaf widths. Without this, intermediate results would
// carry never-referenced payload columns (comments, addresses) and
// materialization costs would be wildly overestimated — real
// Volcano-style optimizers push projections to the scans.
//
// Widths only affect cost estimation (block counts); cardinalities and DAG
// structure are untouched, so this runs once after the DAG is complete.
func (m *Memo) projectWidths() {
	needed := map[GroupID]map[string]bool{}
	note := func(alias, column string) {
		if !strings.HasPrefix(alias, "g") {
			return
		}
		id, err := strconv.Atoi(alias[1:])
		if err != nil || id < 0 || id >= len(m.groups) {
			return
		}
		gid := GroupID(id)
		if !m.groups[gid].Leaf {
			return
		}
		if needed[gid] == nil {
			needed[gid] = map[string]bool{}
		}
		needed[gid][column] = true
	}
	for _, g := range m.groups {
		for _, e := range g.Exprs {
			for _, c := range e.Pred.Conj {
				note(c.Col.Alias, c.Col.Column)
			}
			for _, j := range e.Conds {
				note(j.Left.Alias, j.Left.Column)
				note(j.Right.Alias, j.Right.Column)
			}
			if e.Spec != nil {
				for _, c := range e.Spec.GroupBy {
					note(c.Alias, c.Column)
				}
				for _, a := range e.Spec.Aggs {
					note(a.Col.Alias, a.Col.Column)
				}
			}
		}
	}

	// Leaf widths: sum of the widths of the needed table columns (minimum
	// one 8-byte column so row counts still occupy space).
	for _, g := range m.groups {
		if !g.Leaf {
			continue
		}
		var table string
		for _, e := range g.Exprs {
			if e.Kind == OpScan {
				table = e.Table
				break
			}
		}
		if table == "" {
			continue // derived leaf (nested block root): handled below
		}
		t, ok := m.Cat.Table(table)
		if !ok {
			continue
		}
		w := 0
		for col := range needed[g.ID] {
			if c, ok := t.Column(col); ok {
				w += c.Width
			}
		}
		if w < 8 {
			w = 8
		}
		g.Props.Width = w
	}

	// Non-leaf widths in id order (children always precede parents; every
	// non-leaf group has a structural OpJoin or OpAgg derivation, and all
	// derivations of a group agree on width).
	for _, g := range m.groups {
		if g.Leaf {
			continue
		}
	derive:
		for _, e := range g.Exprs {
			switch e.Kind {
			case OpJoin:
				g.Props.Width = m.groups[e.Children[0]].Props.Width + m.groups[e.Children[1]].Props.Width
				break derive
			case OpAgg:
				g.Props.Width = 8 * (len(e.Spec.GroupBy) + len(e.Spec.Aggs))
				break derive
			}
		}
		if g.Props.Width < 8 {
			g.Props.Width = 8
		}
	}
}
