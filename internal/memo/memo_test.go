package memo

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/expr"
	"repro/internal/logical"
)

func testCatalog() *catalog.Catalog {
	c := catalog.New()
	mk := func(name string, rows float64) {
		c.MustAddTable(&catalog.Table{
			Name: name, Rows: rows,
			Columns: []catalog.Column{
				{Name: "id", Type: catalog.Int, Width: 8, Distinct: rows, Min: 0, Max: rows},
				{Name: "fk", Type: catalog.Int, Width: 8, Distinct: rows / 10, Min: 0, Max: rows},
				{Name: "v", Type: catalog.Int, Width: 8, Distinct: 100, Min: 0, Max: 100},
				{Name: "pay", Type: catalog.String, Width: 100, Distinct: rows, Min: 0, Max: rows},
			},
			Indexes: []catalog.Index{{Column: "id", Clustered: true}},
		})
	}
	mk("t1", 10000)
	mk("t2", 20000)
	mk("t3", 30000)
	mk("t4", 40000)
	return c
}

func build(t *testing.T, queries ...*logical.Query) *Memo {
	t.Helper()
	b := &logical.Batch{}
	for _, q := range queries {
		b.Add(q)
	}
	m, err := Build(testCatalog(), cost.Default(), b)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return m
}

func TestLeafUnificationAcrossQueries(t *testing.T) {
	// The same selection in two queries — even under different aliases —
	// must land in one group.
	q1 := logical.NewBlock().Scan("t1", "a").Scan("t2", "b").
		Cmp("a.v", expr.LT, 50).Join("a.fk", "b.id").Query("q1")
	q2 := logical.NewBlock().Scan("t1", "x").Scan("t3", "y").
		Cmp("x.v", expr.LT, 50).Join("x.fk", "y.id").Query("q2")
	m := build(t, q1, q2)
	var sel []*Group
	for _, g := range m.Groups() {
		if g.Leaf && g.BasePred {
			sel = append(sel, g)
		}
	}
	if len(sel) != 1 {
		t.Fatalf("expected one unified σ(t1) group, got %d", len(sel))
	}
	if len(sel[0].Consumers) != 2 {
		t.Errorf("σ(t1) consumers = %v, want both queries", sel[0].Consumers)
	}
}

func TestJoinSubsetUnification(t *testing.T) {
	// Example 1 shape: {B,C} appears in both queries and must be one group.
	q1 := logical.NewBlock().Scan("t1", "a").Scan("t2", "b").Scan("t3", "c").
		Join("a.fk", "b.id").Join("b.fk", "c.id").Query("q1")
	q2 := logical.NewBlock().Scan("t2", "b").Scan("t3", "c").Scan("t4", "d").
		Join("b.fk", "c.id").Join("c.fk", "d.id").Query("q2")
	m := build(t, q1, q2)
	shared := 0
	for _, g := range m.Groups() {
		if !g.Leaf && len(g.Consumers) >= 2 && strings.HasPrefix(g.Sig, "join|") {
			shared++
		}
	}
	if shared != 1 {
		t.Errorf("expected exactly the B⋈C group shared, got %d shared join groups", shared)
	}
}

func TestDifferentCondsDifferentGroups(t *testing.T) {
	// Joining the same leaves on different conditions is a different group.
	q1 := logical.NewBlock().Scan("t1", "a").Scan("t2", "b").Join("a.fk", "b.id").Query("q1")
	q2 := logical.NewBlock().Scan("t1", "a").Scan("t2", "b").Join("a.id", "b.fk").Query("q2")
	m := build(t, q1, q2)
	joins := 0
	for _, g := range m.Groups() {
		if strings.HasPrefix(g.Sig, "join|") {
			joins++
		}
	}
	if joins != 2 {
		t.Errorf("expected 2 distinct join groups, got %d", joins)
	}
}

func TestIdenticalQueriesShareRoot(t *testing.T) {
	mkq := func(name string) *logical.Query {
		return logical.NewBlock().Scan("t1", "a").Scan("t2", "b").
			Join("a.fk", "b.id").GroupBy("a.v").Count().Query(name)
	}
	m := build(t, mkq("q1"), mkq("q2"))
	if m.QueryRoots[0] != m.QueryRoots[1] {
		t.Errorf("identical queries should unify to the same root: %d vs %d",
			m.QueryRoots[0], m.QueryRoots[1])
	}
	root := m.Group(m.QueryRoots[0])
	if len(root.Consumers) != 2 {
		t.Errorf("shared root consumers = %d", len(root.Consumers))
	}
	sh := m.Shareable()
	found := false
	for _, id := range sh {
		if id == root.ID {
			found = true
		}
	}
	if !found {
		t.Error("shared root must be shareable")
	}
}

func TestBushyExpansionCounts(t *testing.T) {
	// A 4-clique join graph: all 2^4−1−4 = 11 multi-leaf subsets are
	// connected, so 11 join groups plus 4 leaves.
	q := logical.NewBlock().Scan("t1", "a").Scan("t2", "b").Scan("t3", "c").Scan("t4", "d").
		Join("a.fk", "b.id").Join("b.fk", "c.id").Join("c.fk", "d.id").
		Join("a.id", "c.v").Join("b.v", "d.fk").Join("a.v", "d.id").
		Query("clique")
	m := build(t, q)
	joins, leaves := 0, 0
	for _, g := range m.Groups() {
		if g.Leaf {
			leaves++
		} else if strings.HasPrefix(g.Sig, "join|") {
			joins++
		}
	}
	if leaves != 4 || joins != 11 {
		t.Errorf("got %d leaves, %d join groups; want 4, 11", leaves, joins)
	}
	// A chain graph a-b-c-d instead: connected subsets are the 6 contiguous
	// ranges of length ≥ 2.
	chain := logical.NewBlock().Scan("t1", "a").Scan("t2", "b").Scan("t3", "c").Scan("t4", "d").
		Join("a.fk", "b.id").Join("b.fk", "c.id").Join("c.fk", "d.id").
		Query("chain")
	m2 := build(t, chain)
	joins = 0
	for _, g := range m2.Groups() {
		if strings.HasPrefix(g.Sig, "join|") {
			joins++
		}
	}
	if joins != 6 {
		t.Errorf("chain expansion: %d join groups, want 6", joins)
	}
}

func TestCommutativityNotDuplicated(t *testing.T) {
	q := logical.NewBlock().Scan("t1", "a").Scan("t2", "b").Join("a.fk", "b.id").Query("q")
	m := build(t, q)
	for _, g := range m.Groups() {
		if strings.HasPrefix(g.Sig, "join|") {
			if len(g.Exprs) != 1 {
				t.Errorf("two-way join group has %d exprs, want 1 (commutativity is physical)", len(g.Exprs))
			}
		}
	}
}

func TestSelfJoinDistinctOccurrences(t *testing.T) {
	// Two occurrences of the same table+predicate must get distinct groups
	// (occurrence ordinals), or the subset model breaks.
	q := logical.NewBlock().Scan("t1", "n1").Scan("t1", "n2").Scan("t2", "b").
		Join("n1.id", "b.fk").Join("n2.id", "b.v").
		Query("self")
	m := build(t, q)
	leafT1 := 0
	for _, g := range m.Groups() {
		if g.Leaf {
			for _, e := range g.Exprs {
				if e.Kind == OpScan && e.Table == "t1" {
					leafT1++
				}
			}
		}
	}
	if leafT1 != 2 {
		t.Errorf("self-join produced %d t1 leaf groups, want 2", leafT1)
	}
}

func TestSelectSubsumptionEdge(t *testing.T) {
	q1 := logical.NewBlock().Scan("t1", "a").Scan("t2", "b").
		Cmp("a.v", expr.LT, 30).Join("a.fk", "b.id").Query("q1")
	q2 := logical.NewBlock().Scan("t1", "a").Scan("t2", "b").
		Cmp("a.v", expr.LT, 60).Join("a.fk", "b.id").Query("q2")
	m := build(t, q1, q2)
	var stricter, looser *Group
	for _, g := range m.Groups() {
		if g.Leaf && g.BasePred {
			for _, e := range g.Exprs {
				if e.Kind == OpScan {
					if strings.Contains(e.Pred.Fingerprint(), "<30") {
						stricter = g
					} else if strings.Contains(e.Pred.Fingerprint(), "<60") {
						looser = g
					}
				}
			}
		}
	}
	if stricter == nil || looser == nil {
		t.Fatal("selection groups missing")
	}
	hasFilter := false
	for _, e := range stricter.Exprs {
		if e.Kind == OpFilter && e.Children[0] == looser.ID {
			hasFilter = true
			// The filter predicate must be rewritten to the looser group's
			// canonical alias so it can evaluate against its output.
			for _, c := range e.Pred.Conj {
				if c.Col.Alias != CanonAlias(looser.ID) {
					t.Errorf("filter predicate alias %q, want %q", c.Col.Alias, CanonAlias(looser.ID))
				}
			}
		}
	}
	if !hasFilter {
		t.Error("no subsumption edge from σ<30 to σ<60")
	}
	for _, e := range looser.Exprs {
		if e.Kind == OpFilter {
			t.Error("looser selection must not derive from stricter")
		}
	}
	// The looser group inherits the stricter group's consumers and is
	// therefore shareable.
	if len(looser.Consumers) < 2 {
		t.Errorf("looser consumers = %v", looser.Consumers)
	}
}

func TestAggregateSubsumptionEdge(t *testing.T) {
	fine := logical.NewBlock().Scan("t1", "a").Scan("t2", "b").Join("a.fk", "b.id").
		GroupBy("a.v", "b.v").Sum("a.id").Query("fine")
	coarse := logical.NewBlock().Scan("t1", "a").Scan("t2", "b").Join("a.fk", "b.id").
		GroupBy("a.v").Sum("a.id").Query("coarse")
	m := build(t, fine, coarse)
	reagg := 0
	for _, g := range m.Groups() {
		for _, e := range g.Exprs {
			if e.Kind == OpReAgg {
				reagg++
				if len(e.Spec.GroupBy) != 1 {
					t.Errorf("reagg spec is not the coarse spec: %v", e.Spec.Fingerprint())
				}
			}
		}
	}
	if reagg != 1 {
		t.Errorf("expected 1 ReAgg derivation, got %d", reagg)
	}
}

func TestShareableExcludesPlainScans(t *testing.T) {
	mkq := func(name string) *logical.Query {
		return logical.NewBlock().Scan("t1", "a").Scan("t2", "b").Join("a.fk", "b.id").Query(name)
	}
	m := build(t, mkq("q1"), mkq("q2"))
	for _, id := range m.Shareable() {
		g := m.Group(id)
		if g.Leaf && !g.BasePred {
			t.Errorf("unfiltered base scan group %d is shareable", id)
		}
	}
}

func TestPropsConsistentAcrossDerivations(t *testing.T) {
	// Every derivation of a group must see the same estimated cardinality:
	// the group row count is split-independent by construction.
	q := logical.NewBlock().Scan("t1", "a").Scan("t2", "b").Scan("t3", "c").
		Join("a.fk", "b.id").Join("b.fk", "c.id").Join("a.v", "c.v").
		Query("tri")
	m := build(t, q)
	for _, g := range m.Groups() {
		if g.Props.Rows < 1 {
			t.Errorf("group %d rows %v < 1", g.ID, g.Props.Rows)
		}
		if g.Props.Width < 8 {
			t.Errorf("group %d width %d < 8", g.ID, g.Props.Width)
		}
	}
}

func TestWidthProjection(t *testing.T) {
	// The 100-byte payload column is never referenced, so no group's width
	// should include it.
	q := logical.NewBlock().Scan("t1", "a").Scan("t2", "b").Join("a.fk", "b.id").Query("q")
	m := build(t, q)
	for _, g := range m.Groups() {
		if g.Leaf && g.Props.Width > 24 {
			t.Errorf("leaf group %d width %d; payload column should be projected out", g.ID, g.Props.Width)
		}
	}
}

func TestEmptyBatchRejected(t *testing.T) {
	if _, err := Build(testCatalog(), cost.Default(), &logical.Batch{}); err == nil {
		t.Error("empty batch accepted")
	}
}

func TestInvalidQueryRejected(t *testing.T) {
	q := logical.NewBlock().Scan("nope", "a").Query("bad")
	b := &logical.Batch{}
	b.Add(q)
	if _, err := Build(testCatalog(), cost.Default(), b); err == nil {
		t.Error("invalid query accepted")
	}
}

func TestExprDeduplication(t *testing.T) {
	// Building the same query twice must not duplicate operator nodes.
	mkq := func(n string) *logical.Query {
		return logical.NewBlock().Scan("t1", "a").Scan("t2", "b").Join("a.fk", "b.id").Query(n)
	}
	m1 := build(t, mkq("q"))
	m2 := build(t, mkq("q1"), mkq("q2"))
	if m2.NumExprs() != m1.NumExprs() {
		t.Errorf("duplicate query added exprs: %d vs %d", m2.NumExprs(), m1.NumExprs())
	}
}

func TestShareIndexDescendants(t *testing.T) {
	q1 := logical.NewBlock().Scan("t1", "a").Scan("t2", "b").Scan("t3", "c").
		Cmp("a.v", expr.LT, 50).
		Join("a.fk", "b.id").Join("b.fk", "c.id").Query("q1")
	q2 := logical.NewBlock().Scan("t1", "a").Scan("t2", "b").
		Cmp("a.v", expr.LT, 50).
		Join("a.fk", "b.id").Query("q2")
	m := build(t, q1, q2)
	si := m.NewShareIndex()
	if si.Len() == 0 {
		t.Fatal("no shareable nodes")
	}
	// The root of q1 must see every shareable node below it; a leaf sees at
	// most itself.
	rootBits := si.Descendants(m.QueryRoots[0])
	nonzero := false
	for _, w := range rootBits {
		if w != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Error("root sees no shareable descendants")
	}
	// MaskHash must differ when a descendant's bit flips and stay equal
	// for bits outside the descendant set.
	mat := si.NewMatSet()
	h0 := si.MaskHash(m.QueryRoots[0], mat)
	for _, id := range m.Shareable() {
		si.Set(mat, id)
		break
	}
	h1 := si.MaskHash(m.QueryRoots[0], mat)
	if h0 == h1 {
		t.Error("MaskHash ignored a shareable descendant flip")
	}
}

func TestShareIndexSetOps(t *testing.T) {
	q1 := logical.NewBlock().Scan("t1", "a").Scan("t2", "b").
		Cmp("a.v", expr.LT, 50).Join("a.fk", "b.id").Query("q1")
	q2 := logical.NewBlock().Scan("t1", "a").Scan("t3", "c").
		Cmp("a.v", expr.LT, 50).Join("a.fk", "c.id").Query("q2")
	m := build(t, q1, q2)
	si := m.NewShareIndex()
	sh := m.Shareable()
	if len(sh) == 0 {
		t.Fatal("no shareable nodes")
	}
	mat := si.NewMatSet()
	if si.Has(mat, sh[0]) {
		t.Error("fresh set has a bit")
	}
	if !si.Set(mat, sh[0]) || !si.Has(mat, sh[0]) {
		t.Error("Set/Has broken")
	}
	si.Unset(mat, sh[0])
	if si.Has(mat, sh[0]) {
		t.Error("Unset broken")
	}
	if si.Pos(GroupID(99999)) != -1 {
		t.Error("Pos of non-shareable should be -1")
	}
	if si.Set(mat, GroupID(99999)) {
		t.Error("Set of non-shareable should report false")
	}
}
