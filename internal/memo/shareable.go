package memo

import "sort"

// Shareable returns the equivalence nodes worth considering for
// materialization: groups consumable from at least two distinct contexts
// (different queries, different blocks of one query, or via subsumption
// derivations), excluding unfiltered base-relation scans (materializing a
// verbatim copy of a stored table can never reduce cost). Restricting the
// search to shareable nodes is the first optimization of Section 5.1,
// carried over from Roy et al.
func (m *Memo) Shareable() []GroupID {
	var out []GroupID
	for _, g := range m.groups {
		if len(g.Consumers) < 2 {
			continue
		}
		if g.Leaf && !g.BasePred {
			continue
		}
		out = append(out, g.ID)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// bitset helpers for the incremental bestCost cache: every group knows
// which shareable nodes are reachable below it (including itself), so a
// cost computed for (group, order) can be reused across bestCost calls
// whenever the materialization set restricted to those nodes is unchanged.

// ShareIndex maps shareable group ids to dense bit positions.
type ShareIndex struct {
	pos   map[GroupID]int
	words int
	desc  map[GroupID][]uint64
	memo  *Memo
}

// NewShareIndex builds the index for the memo's shareable set.
func (m *Memo) NewShareIndex() *ShareIndex {
	sh := m.Shareable()
	si := &ShareIndex{
		pos:   make(map[GroupID]int, len(sh)),
		words: (len(sh) + 63) / 64,
		desc:  map[GroupID][]uint64{},
		memo:  m,
	}
	if si.words == 0 {
		si.words = 1
	}
	for i, id := range sh {
		si.pos[id] = i
	}
	return si
}

// Pos returns the bit position of a shareable group, or -1.
func (si *ShareIndex) Pos(id GroupID) int {
	p, ok := si.pos[id]
	if !ok {
		return -1
	}
	return p
}

// Len returns the number of shareable nodes.
func (si *ShareIndex) Len() int { return len(si.pos) }

// Descendants returns the bitset of shareable nodes reachable at or below
// the group (memoized; the DAG is acyclic).
func (si *ShareIndex) Descendants(id GroupID) []uint64 {
	if bs, ok := si.desc[id]; ok {
		return bs
	}
	bs := make([]uint64, si.words)
	si.desc[id] = bs // pre-insert: DAG is acyclic so no true cycles, but be safe
	if p, ok := si.pos[id]; ok {
		bs[p/64] |= 1 << uint(p%64)
	}
	for _, e := range si.memo.Group(id).Exprs {
		for _, c := range e.Children {
			for w, v := range si.Descendants(c) {
				bs[w] |= v
			}
		}
	}
	si.desc[id] = bs
	return bs
}

// MaskHash hashes the intersection of a materialization bitset with the
// group's shareable descendants (FNV-1a over the masked words).
func (si *ShareIndex) MaskHash(id GroupID, mat []uint64) uint64 {
	desc := si.Descendants(id)
	var h uint64 = 1469598103934665603
	for w := range desc {
		v := desc[w] & mat[w]
		for i := 0; i < 8; i++ {
			h ^= (v >> uint(8*i)) & 0xff
			h *= 1099511628211
		}
	}
	return h
}

// NewMatSet returns an empty materialization bitset sized for this index.
func (si *ShareIndex) NewMatSet() []uint64 { return make([]uint64, si.words) }

// Set marks a shareable group in the bitset; it reports whether the group
// was shareable.
func (si *ShareIndex) Set(mat []uint64, id GroupID) bool {
	p, ok := si.pos[id]
	if !ok {
		return false
	}
	mat[p/64] |= 1 << uint(p%64)
	return true
}

// Unset clears a shareable group's bit.
func (si *ShareIndex) Unset(mat []uint64, id GroupID) {
	if p, ok := si.pos[id]; ok {
		mat[p/64] &^= 1 << uint(p%64)
	}
}

// Has reports whether the group's bit is set.
func (si *ShareIndex) Has(mat []uint64, id GroupID) bool {
	p, ok := si.pos[id]
	if !ok {
		return false
	}
	return mat[p/64]&(1<<uint(p%64)) != 0
}
