package memo

import (
	"math/bits"
	"sort"
)

// Shareable returns the equivalence nodes worth considering for
// materialization: groups consumable from at least two distinct contexts
// (different queries, different blocks of one query, or via subsumption
// derivations), excluding unfiltered base-relation scans (materializing a
// verbatim copy of a stored table can never reduce cost). Restricting the
// search to shareable nodes is the first optimization of Section 5.1,
// carried over from Roy et al.
func (m *Memo) Shareable() []GroupID {
	var out []GroupID
	for _, g := range m.groups {
		if len(g.Consumers) < 2 {
			continue
		}
		if g.Leaf && !g.BasePred {
			continue
		}
		out = append(out, g.ID)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Bitset is a fixed-width bitset over the dense slots of a ShareIndex: bit
// i corresponds to the i-th shareable group in GroupID order. It is the
// uniform materialization-set representation of the oracle hot path — a
// short/nil Bitset is valid and reads as all-zero, so the zero value is
// the empty set.
type Bitset []uint64

// HasSlot reports whether slot i is set.
func (b Bitset) HasSlot(i int) bool {
	w := i / 64
	return w < len(b) && b[w]&(1<<uint(i%64)) != 0
}

// SetSlot sets slot i; the bitset must be wide enough.
func (b Bitset) SetSlot(i int) { b[i/64] |= 1 << uint(i%64) }

// ClearSlot clears slot i if in range.
func (b Bitset) ClearSlot(i int) {
	if w := i / 64; w < len(b) {
		b[w] &^= 1 << uint(i%64)
	}
}

// Count returns the number of set bits.
func (b Bitset) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// Clone returns a copy of the bitset.
func (b Bitset) Clone() Bitset {
	out := make(Bitset, len(b))
	copy(out, b)
	return out
}

// bitset helpers for the incremental bestCost cache: every group knows
// which shareable nodes are reachable below it (including itself), so a
// cost computed for (group, order) can be reused across bestCost calls
// whenever the materialization set restricted to those nodes is unchanged.

// ShareIndex maps shareable group ids to dense bit positions.
type ShareIndex struct {
	pos   map[GroupID]int
	ids   []GroupID // slot -> group id
	words int
	desc  map[GroupID]Bitset
	memo  *Memo
}

// NewShareIndex builds the index for the memo's shareable set.
func (m *Memo) NewShareIndex() *ShareIndex {
	sh := m.Shareable()
	si := &ShareIndex{
		pos:   make(map[GroupID]int, len(sh)),
		ids:   sh,
		words: (len(sh) + 63) / 64,
		desc:  map[GroupID]Bitset{},
		memo:  m,
	}
	if si.words == 0 {
		si.words = 1
	}
	for i, id := range sh {
		si.pos[id] = i
	}
	return si
}

// Pos returns the bit position of a shareable group, or -1.
func (si *ShareIndex) Pos(id GroupID) int {
	p, ok := si.pos[id]
	if !ok {
		return -1
	}
	return p
}

// GroupAt returns the group id occupying a slot.
func (si *ShareIndex) GroupAt(slot int) GroupID { return si.ids[slot] }

// Len returns the number of shareable nodes.
func (si *ShareIndex) Len() int { return len(si.pos) }

// Groups returns the group ids of the set slots, in ascending id order.
func (si *ShareIndex) Groups(mat Bitset) []GroupID {
	var out []GroupID
	for w, v := range mat {
		for v != 0 {
			b := bits.TrailingZeros64(v)
			out = append(out, si.ids[w*64+b])
			v &= v - 1
		}
	}
	return out
}

// Descendants returns the bitset of shareable nodes reachable at or below
// the group (memoized; the DAG is acyclic).
func (si *ShareIndex) Descendants(id GroupID) Bitset {
	if bs, ok := si.desc[id]; ok {
		return bs
	}
	bs := make(Bitset, si.words)
	si.desc[id] = bs // pre-insert: DAG is acyclic so no true cycles, but be safe
	if p, ok := si.pos[id]; ok {
		bs[p/64] |= 1 << uint(p%64)
	}
	for _, e := range si.memo.Group(id).Exprs {
		for _, c := range e.Children {
			for w, v := range si.Descendants(c) {
				bs[w] |= v
			}
		}
	}
	si.desc[id] = bs
	return bs
}

// MaskHash hashes the intersection of a materialization bitset with the
// group's shareable descendants (FNV-1a over the masked words).
func (si *ShareIndex) MaskHash(id GroupID, mat Bitset) uint64 {
	return HashMasked(si.Descendants(id), mat)
}

// HashMasked is MaskHash over an explicit descendants bitset; the oracle
// hot path precomputes descendants per group and calls this directly.
func HashMasked(desc, mat Bitset) uint64 {
	var h uint64 = 1469598103934665603
	for w := range desc {
		var mw uint64
		if w < len(mat) {
			mw = mat[w]
		}
		v := desc[w] & mw
		for i := 0; i < 8; i++ {
			h ^= (v >> uint(8*i)) & 0xff
			h *= 1099511628211
		}
	}
	return h
}

// NewMatSet returns an empty materialization bitset sized for this index.
func (si *ShareIndex) NewMatSet() Bitset { return make(Bitset, si.words) }

// Set marks a shareable group in the bitset; it reports whether the group
// was shareable.
func (si *ShareIndex) Set(mat Bitset, id GroupID) bool {
	p, ok := si.pos[id]
	if !ok {
		return false
	}
	mat.SetSlot(p)
	return true
}

// Unset clears a shareable group's bit.
func (si *ShareIndex) Unset(mat Bitset, id GroupID) {
	if p, ok := si.pos[id]; ok {
		mat.ClearSlot(p)
	}
}

// Has reports whether the group's bit is set.
func (si *ShareIndex) Has(mat Bitset, id GroupID) bool {
	p, ok := si.pos[id]
	if !ok {
		return false
	}
	return mat.HasSlot(p)
}
