// Package memo implements the Volcano "memo" structure: the AND-OR DAG
// (LQDAG) that compactly represents the combined plan space of a batch of
// queries. Equivalence nodes (Groups) hold alternative operator nodes
// (MExprs); hashing-based unification ensures that common subexpressions —
// within one query or across the batch — map to a single group, which is
// the mechanism Roy et al. [SIGMOD 2000] use to identify sharing
// opportunities.
//
// Column references inside the DAG are canonicalized: each leaf occurrence
// (a base relation with its pushed-down selection, or a derived table) gets
// a group, and all columns are re-qualified with the synthetic alias
// "g<leafGroupID>". Because leaves unify across queries, canonicalized
// predicates and join conditions compare equal exactly when the
// subexpressions are equal, regardless of the aliases the queries used.
package memo

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/cardinality"
	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/expr"
)

// GroupID identifies an equivalence node.
type GroupID int

// CanonAlias returns the synthetic alias under which a leaf group's columns
// are tracked throughout the DAG.
func CanonAlias(id GroupID) string { return "g" + strconv.Itoa(int(id)) }

// OpKind enumerates logical operator kinds.
type OpKind int

// Logical operator kinds.
const (
	// OpScan reads a base relation and applies a pushed-down selection.
	OpScan OpKind = iota
	// OpFilter derives a group from another group by re-applying a
	// predicate; produced by the select-subsumption rule.
	OpFilter
	// OpJoin is an inner equi-join of two groups.
	OpJoin
	// OpAgg is a group-by aggregation over one group.
	OpAgg
	// OpReAgg derives a coarser aggregation from a finer one; produced by
	// the aggregate-subsumption rule.
	OpReAgg
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case OpScan:
		return "scan"
	case OpFilter:
		return "filter"
	case OpJoin:
		return "join"
	case OpAgg:
		return "agg"
	case OpReAgg:
		return "reagg"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// MExpr is an operator node (AND-node): an operator plus its input groups.
type MExpr struct {
	Kind     OpKind
	Group    GroupID   // owning group
	Children []GroupID // input groups

	// OpScan fields.
	Table string
	Alias string // original alias of the first occurrence (diagnostics)

	// OpScan (pushed-down selection) and OpFilter predicate, canonicalized.
	Pred expr.Pred

	// OpJoin conditions, canonicalized.
	Conds []expr.EqJoin

	// OpAgg / OpReAgg specification, canonicalized.
	Spec *expr.AggSpec
}

// Group is an equivalence node (OR-node): a set of operator nodes that all
// produce the same result, plus estimated relational properties.
type Group struct {
	ID    GroupID
	Sig   string
	Exprs []*MExpr
	Props cardinality.Props

	// Leaf is true for scan/derived leaf groups.
	Leaf bool
	// BasePred is true for a leaf with a non-trivial selection.
	BasePred bool

	// Consumers is the set of distinct consumption contexts (query/block
	// instances) that can use this group; ≥ 2 makes the group shareable.
	Consumers map[string]bool

	// parents are the operator nodes that reference this group as a child.
	parents []*MExpr
}

// Parents returns the operator nodes referencing this group as input.
func (g *Group) Parents() []*MExpr { return g.parents }

// Memo is the combined AND-OR DAG for a batch of queries.
type Memo struct {
	Cat   *catalog.Catalog
	Model cost.Model

	groups  []*Group
	bySig   map[string]GroupID
	byExpr  map[string]*MExpr
	ordSeen map[string]int // occurrence ordinals per leaf signature per block

	// QueryRoots holds the root group of each query in batch order.
	QueryRoots []GroupID
	// QueryNames holds the query names in batch order.
	QueryNames []string
}

// New returns an empty memo over the given catalog and cost model.
func New(cat *catalog.Catalog, model cost.Model) *Memo {
	return &Memo{
		Cat:    cat,
		Model:  model,
		bySig:  map[string]GroupID{},
		byExpr: map[string]*MExpr{},
	}
}

// Group returns the group with the given id.
func (m *Memo) Group(id GroupID) *Group { return m.groups[id] }

// NumGroups returns the number of equivalence nodes in the DAG.
func (m *Memo) NumGroups() int { return len(m.groups) }

// NumExprs returns the number of operator nodes in the DAG.
func (m *Memo) NumExprs() int { return len(m.byExpr) }

// Groups returns all groups in creation order.
func (m *Memo) Groups() []*Group { return m.groups }

// internGroup returns the group with the given signature, creating an
// empty one if new; the caller fills Props on creation (properties may
// depend on the assigned GroupID via the canonical alias).
func (m *Memo) internGroup(sig string) (*Group, bool) {
	if id, ok := m.bySig[sig]; ok {
		return m.groups[id], false
	}
	g := &Group{
		ID:        GroupID(len(m.groups)),
		Sig:       sig,
		Consumers: map[string]bool{},
	}
	m.groups = append(m.groups, g)
	m.bySig[sig] = g.ID
	return g, true
}

// addExpr adds an operator node to a group unless an identical node is
// already present, and maintains parent links.
func (m *Memo) addExpr(e *MExpr) *MExpr {
	key := exprKey(e)
	if old, ok := m.byExpr[key]; ok {
		return old
	}
	m.byExpr[key] = e
	g := m.groups[e.Group]
	g.Exprs = append(g.Exprs, e)
	for _, c := range e.Children {
		m.groups[c].parents = append(m.groups[c].parents, e)
	}
	return e
}

// exprKey returns the deduplication key for an operator node. All
// predicates/conditions are already canonicalized, so equal keys mean
// identical operators.
func exprKey(e *MExpr) string {
	var b strings.Builder
	b.WriteString(e.Kind.String())
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(int(e.Group)))
	b.WriteByte('|')
	for _, c := range e.Children {
		b.WriteString(strconv.Itoa(int(c)))
		b.WriteByte(',')
	}
	b.WriteByte('|')
	switch e.Kind {
	case OpScan:
		b.WriteString(e.Table)
		b.WriteByte('|')
		b.WriteString(e.Pred.Fingerprint())
	case OpFilter:
		b.WriteString(e.Pred.Fingerprint())
	case OpJoin:
		b.WriteString(expr.JoinFingerprint(e.Conds))
	case OpAgg, OpReAgg:
		b.WriteString(e.Spec.Fingerprint())
	}
	return b.String()
}

// addConsumer records that the given context can consume the group.
func (m *Memo) addConsumer(id GroupID, ctx string) {
	m.groups[id].Consumers[ctx] = true
}

// sortedIDs renders a list of group ids canonically.
func sortedIDs(ids []GroupID) string {
	s := make([]int, len(ids))
	for i, id := range ids {
		s[i] = int(id)
	}
	sort.Ints(s)
	parts := make([]string, len(s))
	for i, v := range s {
		parts[i] = strconv.Itoa(v)
	}
	return strings.Join(parts, ",")
}
