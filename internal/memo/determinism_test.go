package memo

import (
	"fmt"
	"testing"

	"repro/internal/expr"
	"repro/internal/logical"
)

// TestBuildDeterministic verifies that building the same batch twice
// produces structurally identical DAGs: same group signatures in the same
// id order, same expression count, same properties. The MQO algorithms and
// the incremental cache rely on this.
func TestBuildDeterministic(t *testing.T) {
	mk := func() *Memo {
		q1 := logical.NewBlock().Scan("t1", "a").Scan("t2", "b").Scan("t3", "c").
			Cmp("a.v", expr.LT, 33).
			Join("a.fk", "b.id").Join("b.fk", "c.id").
			GroupBy("a.v").Sum("b.v").Query("q1")
		q2 := logical.NewBlock().Scan("t1", "x").Scan("t2", "y").
			Cmp("x.v", expr.LT, 33).
			Join("x.fk", "y.id").Query("q2")
		return build(t, q1, q2)
	}
	m1, m2 := mk(), mk()
	if m1.NumGroups() != m2.NumGroups() || m1.NumExprs() != m2.NumExprs() {
		t.Fatalf("sizes differ: %d/%d vs %d/%d",
			m1.NumGroups(), m1.NumExprs(), m2.NumGroups(), m2.NumExprs())
	}
	for i := 0; i < m1.NumGroups(); i++ {
		g1, g2 := m1.Group(GroupID(i)), m2.Group(GroupID(i))
		if g1.Sig != g2.Sig {
			t.Fatalf("group %d sig %q vs %q", i, g1.Sig, g2.Sig)
		}
		if g1.Props.Rows != g2.Props.Rows || g1.Props.Width != g2.Props.Width {
			t.Fatalf("group %d props differ", i)
		}
		if len(g1.Exprs) != len(g2.Exprs) {
			t.Fatalf("group %d expr count %d vs %d", i, len(g1.Exprs), len(g2.Exprs))
		}
	}
}

// TestAliasIndependence verifies that renaming every alias in a query does
// not change the DAG shape — the canonical-alias machinery at work.
func TestAliasIndependence(t *testing.T) {
	mk := func(a, b, c string) *Memo {
		q := logical.NewBlock().Scan("t1", a).Scan("t2", b).Scan("t3", c).
			Cmp(a+".v", expr.LT, 10).
			Join(a+".fk", b+".id").Join(b+".fk", c+".id").
			Query("q")
		return build(t, q)
	}
	m1 := mk("a", "b", "c")
	m2 := mk("zz", "q7", "xx")
	if m1.NumGroups() != m2.NumGroups() || m1.NumExprs() != m2.NumExprs() {
		t.Fatalf("alias renaming changed the DAG: %d/%d vs %d/%d",
			m1.NumGroups(), m1.NumExprs(), m2.NumGroups(), m2.NumExprs())
	}
	for i := 0; i < m1.NumGroups(); i++ {
		if m1.Group(GroupID(i)).Sig != m2.Group(GroupID(i)).Sig {
			t.Fatalf("group %d sig differs across alias renamings", i)
		}
	}
}

// TestCrossQuerySharingIsAliasIndependent puts the same subexpression in
// two queries under different aliases and checks it unifies.
func TestCrossQuerySharingIsAliasIndependent(t *testing.T) {
	for trial := 0; trial < 5; trial++ {
		a1 := fmt.Sprintf("u%d", trial)
		a2 := fmt.Sprintf("w%d", trial*7)
		q1 := logical.NewBlock().Scan("t1", a1).Scan("t2", "p").
			Cmp(a1+".v", expr.LT, 42).
			Join(a1+".fk", "p.id").Query("q1")
		q2 := logical.NewBlock().Scan("t1", a2).Scan("t2", "zz").
			Cmp(a2+".v", expr.LT, 42).
			Join(a2+".fk", "zz.id").Query("q2")
		m := build(t, q1, q2)
		if m.QueryRoots[0] != m.QueryRoots[1] {
			t.Fatalf("trial %d: identical queries under different aliases did not unify", trial)
		}
	}
}
