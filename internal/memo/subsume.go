package memo

import (
	"repro/internal/expr"
)

// subsumeSelections implements the select-subsumption rule: for two leaf
// selections over the same base table where the stricter predicate implies
// the looser one, the stricter result can alternatively be computed by
// filtering the looser result. This creates the sharing opportunities the
// paper's batched experiments rely on (the same query repeated with
// different selection constants).
func (m *Memo) subsumeSelections() {
	byTable := map[string][]*Group{}
	scanPred := map[GroupID]expr.Pred{}
	for _, g := range m.groups {
		if !g.Leaf {
			continue
		}
		for _, e := range g.Exprs {
			if e.Kind == OpScan {
				byTable[e.Table] = append(byTable[e.Table], g)
				scanPred[g.ID] = e.Pred
				break
			}
		}
	}
	for _, groups := range byTable {
		for _, a := range groups { // candidate stricter group
			pa := scanPred[a.ID]
			if pa.True() {
				continue
			}
			for _, b := range groups { // candidate looser group
				if a.ID == b.ID {
					continue
				}
				pb := scanPred[b.ID]
				paAnon := rewriteAlias(pa, CanonAlias(a.ID), "$")
				pbAnon := rewriteAlias(pb, CanonAlias(b.ID), "$")
				if paAnon.Fingerprint() == pbAnon.Fingerprint() {
					continue // distinct occurrences of the same selection
				}
				if !paAnon.Implies(pbAnon) || pbAnon.Implies(paAnon) {
					continue
				}
				// a = filter(b, pa) — re-apply the stricter predicate to
				// b's output, whose columns carry b's canonical alias.
				filterPred := rewriteAlias(pa, CanonAlias(a.ID), CanonAlias(b.ID))
				m.addExpr(&MExpr{
					Kind:     OpFilter,
					Group:    a.ID,
					Children: []GroupID{b.ID},
					Pred:     filterPred,
				})
				for ctx := range a.Consumers {
					m.addConsumer(b.ID, ctx)
				}
			}
		}
	}
}

// subsumeAggregates implements the aggregate-subsumption rule: an
// aggregation can alternatively be computed by re-aggregating a finer
// aggregation over the same input (its group-by being a strict superset),
// because all supported aggregate functions (sum/count/min/max) are
// decomposable.
func (m *Memo) subsumeAggregates() {
	type aggNode struct {
		g     *Group
		child GroupID
		spec  expr.AggSpec
	}
	byChild := map[GroupID][]aggNode{}
	for _, g := range m.groups {
		for _, e := range g.Exprs {
			if e.Kind == OpAgg {
				byChild[e.Children[0]] = append(byChild[e.Children[0]], aggNode{g: g, child: e.Children[0], spec: *e.Spec})
			}
		}
	}
	for _, nodes := range byChild {
		for _, coarse := range nodes {
			for _, fine := range nodes {
				if coarse.g.ID == fine.g.ID {
					continue
				}
				if !coarse.spec.SubsumedBy(fine.spec) {
					continue
				}
				sp := coarse.spec
				m.addExpr(&MExpr{
					Kind:     OpReAgg,
					Group:    coarse.g.ID,
					Children: []GroupID{fine.g.ID},
					Spec:     &sp,
				})
				for ctx := range coarse.g.Consumers {
					m.addConsumer(fine.g.ID, ctx)
				}
			}
		}
	}
}
