package memo

import (
	"fmt"
	"math/bits"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/cardinality"
	"repro/internal/expr"
	"repro/internal/logical"
)

// BuildCache is a cross-call sub-DAG interner: it memoizes, per structural
// query fingerprint, the symbolic expansion recipe of a single-block query
// — which connected join subsets exist, how each partitions into two
// connected halves, and which conditions apply — so that rebuilding the
// same (or a structurally identical) query in a later combined DAG skips
// the O(3^n) connectivity and partition enumeration and replays a flat
// node list instead. This is the memo-level sibling of the
// physical.SharedCache structHash namespace: recipes are keyed by the
// canonical structural rendering of the query, validation is skipped on a
// hit (an identical query against the same catalog validated before), and
// replay re-interns every node through the memo's signature map, so
// cross-query unification inside a combined DAG is unchanged. A batched
// serving layer coalescing streams of similar requests amortizes nearly
// the whole per-query build cost this way.
//
// A BuildCache must only be shared across builds against one catalog (the
// owner is repro.Session, which fixes the catalog); recipes are immutable
// once stored and the cache is safe for concurrent use.
type BuildCache struct {
	mu      sync.Mutex
	recipes map[string]*recipe
	order   []string // insertion ring for FIFO eviction
	next    int
	max     int

	hits   atomic.Int64
	misses atomic.Int64
}

// buildCacheCap bounds the recipe map; beyond it the oldest entries are
// evicted FIFO. Eviction affects only build speed, never results.
const buildCacheCap = 4096

// NewBuildCache returns an empty interner.
func NewBuildCache() *BuildCache {
	return &BuildCache{recipes: map[string]*recipe{}, max: buildCacheCap}
}

// Stats reports how many eligible per-query builds hit a stored recipe
// versus recorded a fresh one.
func (c *BuildCache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// WithBuildCache attaches a sub-DAG interner to the build: eligible
// queries (single-block, base sources only) are expanded by recipe replay,
// amortizing enumeration cost across structurally identical queries.
// Results are bit-identical with and without a cache.
func WithBuildCache(c *BuildCache) Option {
	return func(cfg *buildConfig) { cfg.cache = c }
}

func (c *BuildCache) lookup(key string) *recipe {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.recipes[key]
}

func (c *BuildCache) store(key string, r *recipe) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.recipes[key]; ok {
		return
	}
	if len(c.order) < c.max {
		c.order = append(c.order, key)
	} else {
		delete(c.recipes, c.order[c.next])
		c.order[c.next] = key
		c.next = (c.next + 1) % c.max
	}
	c.recipes[key] = r
}

// buildInterned expands one query through the interner, if there is one
// and the query is eligible. ok=false means the caller must take the
// legacy validate+buildBlock path; a returned error is final. On a recipe
// hit, validation is skipped: an equal structural key means an identical
// query that validated against the same catalog when the recipe was
// recorded.
func buildInterned(m *Memo, c *BuildCache, q *logical.Query, ctx string) (GroupID, bool, error) {
	if c == nil {
		return 0, false, nil
	}
	key, ok := blockKey(q.Root)
	if !ok {
		return 0, false, nil
	}
	rec := c.lookup(key)
	if rec == nil {
		if err := q.Validate(m.Cat); err != nil {
			return 0, true, err
		}
		rec, ok = newRecipe(q.Root)
		if !ok {
			return 0, false, nil
		}
		c.store(key, rec)
		c.misses.Add(1)
	} else {
		c.hits.Add(1)
	}
	root, err := rec.replay(m, ctx)
	if err != nil {
		return 0, true, fmt.Errorf("query %q: %w", q.Name, err)
	}
	return root, true, nil
}

// recipe is the symbolic, memo-independent expansion of one single-block
// query. Everything that depends on assigned group ids (canonical aliases,
// properties, signatures) is recomputed at replay; everything enumerative
// (connectivity, partitions, condition scoping) is stored.
type recipe struct {
	leaves []recipeLeaf
	conds  []recipeCond
	joins  []recipeJoin // connected subsets with ≥2 sources, ascending mask
	full   uint64       // mask of all sources
	agg    *recipeAgg
}

type recipeLeaf struct {
	table string
	alias string    // original alias (diagnostics on first creation)
	pred  expr.Pred // pushed-down selection in original-alias form
	key   string    // alias-independent signature prefix "scan|table|anonPred"
}

// recipeCond is one join condition by source index; the canonical EqJoin is
// rebuilt at replay from the leaf groups' canonical aliases.
type recipeCond struct {
	li, ri     int
	lcol, rcol string
}

type recipeJoin struct {
	mask  uint64
	inner []int // cond indices with both sides inside mask
	parts []recipePart
}

type recipePart struct {
	sub, rest uint64
	cross     []int // cond indices spanning the split
}

type recipeAgg struct {
	groupBy []recipeColRef
	aggs    []recipeAggRef
}

type recipeColRef struct {
	si  int
	col string
}

type recipeAggRef struct {
	fn    expr.AggFunc
	si    int    // resolved source index; -1 for Count (kept verbatim)
	col   string // column name; for Count the original Agg is reproduced
	count expr.Agg
}

// QueryFingerprint renders the canonical structural fingerprint of a
// query — the same collision-free key the build-recipe cache interns
// sub-DAGs under — or ok=false when the query is not fingerprintable
// (derived sources, >64 sources). Two queries with equal fingerprints
// build identical memo sub-DAGs against the same catalog; the serving
// layer's batch coalescer relies on exactly that to deduplicate
// structurally identical member requests before a shared run.
func QueryFingerprint(q *logical.Query) (string, bool) {
	if q == nil {
		return "", false
	}
	return blockKey(q.Root)
}

// blockKey renders the canonical structural fingerprint of a single-block
// query, or ok=false when the block is not eligible for interning (derived
// sources, >64 sources). Two blocks with equal keys produce identical
// recipes: the key covers sources (alias, table, pushed selection), join
// conditions in declaration order, and the aggregate spec.
func blockKey(b *logical.Block) (string, bool) {
	if b == nil || len(b.Sources) == 0 || len(b.Sources) > 64 {
		return "", false
	}
	var sb strings.Builder
	sb.WriteString("v1")
	for _, src := range b.Sources {
		if !src.Base() {
			return "", false
		}
		sb.WriteString("|s;")
		sb.WriteString(src.Alias)
		sb.WriteByte(';')
		sb.WriteString(src.Table)
		sb.WriteByte(';')
		sb.WriteString(b.SelectFor(src.Alias).Fingerprint())
	}
	for _, j := range b.Joins {
		sb.WriteString("|j;")
		sb.WriteString(j.Left.String())
		sb.WriteByte(';')
		sb.WriteString(j.Right.String())
	}
	if b.Agg != nil {
		sb.WriteString("|a;")
		sb.WriteString(b.Agg.Fingerprint())
	}
	return sb.String(), true
}

// newRecipe records the expansion of an eligible (validated) block: the
// same connectivity and partition enumeration buildBlock performs, but
// producing source-index masks and condition indices instead of memo
// nodes.
func newRecipe(b *logical.Block) (*recipe, bool) {
	n := len(b.Sources)
	rec := &recipe{full: uint64(1)<<uint(n) - 1}
	srcIdx := map[string]int{}
	for i, src := range b.Sources {
		if !src.Base() {
			return nil, false
		}
		srcIdx[src.Alias] = i
		pred := b.SelectFor(src.Alias)
		rec.leaves = append(rec.leaves, recipeLeaf{
			table: src.Table,
			alias: src.Alias,
			pred:  pred,
			key:   "scan|" + src.Table + "|" + anonPred(pred, src.Alias),
		})
	}
	for _, j := range b.Joins {
		li, lok := srcIdx[j.Left.Alias]
		ri, rok := srcIdx[j.Right.Alias]
		if !lok || !rok {
			return nil, false
		}
		rec.conds = append(rec.conds, recipeCond{li: li, ri: ri, lcol: j.Left.Column, rcol: j.Right.Column})
	}

	if n > 1 {
		adj := make([]uint64, n)
		for _, ci := range rec.conds {
			adj[ci.li] |= 1 << uint(ci.ri)
			adj[ci.ri] |= 1 << uint(ci.li)
		}
		connected := func(mask uint64) bool {
			start := uint64(1) << uint(bits.TrailingZeros64(mask))
			seen := start
			for {
				grow := seen
				for t := seen; t != 0; t &= t - 1 {
					grow |= adj[bits.TrailingZeros64(t)] & mask
				}
				if grow == seen {
					break
				}
				seen = grow
			}
			return seen == mask
		}
		condsIn := func(mask uint64) []int {
			var out []int
			for i, ci := range rec.conds {
				if mask&(1<<uint(ci.li)) != 0 && mask&(1<<uint(ci.ri)) != 0 {
					out = append(out, i)
				}
			}
			return out
		}
		condsAcross := func(a, bm uint64) []int {
			var out []int
			for i, ci := range rec.conds {
				lb, rb := uint64(1)<<uint(ci.li), uint64(1)<<uint(ci.ri)
				if (a&lb != 0 && bm&rb != 0) || (a&rb != 0 && bm&lb != 0) {
					out = append(out, i)
				}
			}
			return out
		}
		for mask := uint64(1); mask <= rec.full; mask++ {
			if bits.OnesCount64(mask) < 2 || !connected(mask) {
				continue
			}
			rj := recipeJoin{mask: mask, inner: condsIn(mask)}
			low := uint64(1) << uint(bits.TrailingZeros64(mask))
			for sub := (mask - 1) & mask; sub > 0; sub = (sub - 1) & mask {
				if sub&low == 0 {
					continue
				}
				rest := mask ^ sub
				if !connected(sub) || !connected(rest) {
					continue
				}
				cross := condsAcross(sub, rest)
				if len(cross) == 0 {
					continue
				}
				rj.parts = append(rj.parts, recipePart{sub: sub, rest: rest, cross: cross})
			}
			if len(rj.parts) == 0 {
				return nil, false // would be an internal error in buildBlock
			}
			rec.joins = append(rec.joins, rj)
		}
	}

	if b.Agg != nil {
		ra := &recipeAgg{}
		for _, c := range b.Agg.GroupBy {
			si, ok := srcIdx[c.Alias]
			if !ok {
				return nil, false
			}
			ra.groupBy = append(ra.groupBy, recipeColRef{si: si, col: c.Column})
		}
		for _, a := range b.Agg.Aggs {
			if a.Func == expr.Count {
				ra.aggs = append(ra.aggs, recipeAggRef{fn: a.Func, si: -1, count: a})
				continue
			}
			si, ok := srcIdx[a.Col.Alias]
			if !ok {
				return nil, false
			}
			ra.aggs = append(ra.aggs, recipeAggRef{fn: a.Func, si: si, col: a.Col.Column})
		}
		rec.agg = ra
	}
	return rec, true
}

// replay expands the recipe into the memo, producing exactly the groups,
// expressions, consumers and properties buildBlock would: leaf signatures
// get per-block occurrence ordinals, join signatures are rebuilt from the
// actual leaf group ids, and properties are computed only for groups new
// to this memo.
func (rec *recipe) replay(m *Memo, ctx string) (GroupID, error) {
	n := len(rec.leaves)
	leafGID := make([]GroupID, n)
	ordCount := map[string]int{}
	for i, lf := range rec.leaves {
		ord := ordCount[lf.key]
		ordCount[lf.key]++
		sig := lf.key + "|" + strconv.Itoa(ord)
		g, isNew := m.internGroup(sig)
		if isNew {
			t, ok := m.Cat.Table(lf.table)
			if !ok {
				return 0, fmt.Errorf("memo: recipe table %q not in catalog", lf.table)
			}
			canonPred := rewriteAlias(lf.pred, lf.alias, CanonAlias(g.ID))
			g.Props = cardinality.ApplySelect(cardinality.BaseProps(t, CanonAlias(g.ID)), canonPred)
			g.Leaf = true
			g.BasePred = !lf.pred.True()
			m.addExpr(&MExpr{Kind: OpScan, Group: g.ID, Table: lf.table, Alias: lf.alias, Pred: canonPred})
		}
		leafGID[i] = g.ID
		m.addConsumer(g.ID, ctx)
	}

	conds := make([]expr.EqJoin, len(rec.conds))
	for i, rc := range rec.conds {
		conds[i] = expr.EqJoin{
			Left:  expr.Col{Alias: CanonAlias(leafGID[rc.li]), Column: rc.lcol},
			Right: expr.Col{Alias: CanonAlias(leafGID[rc.ri]), Column: rc.rcol},
		}.Canonical()
	}
	pick := func(idx []int) []expr.EqJoin {
		if len(idx) == 0 {
			return nil
		}
		out := make([]expr.EqJoin, len(idx))
		for i, ci := range idx {
			out[i] = conds[ci]
		}
		return out
	}

	rootGID := leafGID[0]
	if n > 1 {
		groupOf := make(map[uint64]GroupID, len(rec.joins)+n)
		for i := 0; i < n; i++ {
			groupOf[1<<uint(i)] = leafGID[i]
		}
		for _, rj := range rec.joins {
			ids := make([]GroupID, 0, bits.OnesCount64(rj.mask))
			for t := rj.mask; t != 0; t &= t - 1 {
				ids = append(ids, leafGID[bits.TrailingZeros64(t)])
			}
			inner := pick(rj.inner)
			sig := "join|" + sortedIDs(ids) + "|" + expr.JoinFingerprint(inner)
			g, isNew := m.internGroup(sig)
			if isNew {
				g.Props = m.joinSubsetProps(ids, inner)
			}
			groupOf[rj.mask] = g.ID
			m.addConsumer(g.ID, ctx)
			for _, p := range rj.parts {
				m.addExpr(&MExpr{
					Kind:     OpJoin,
					Group:    g.ID,
					Children: []GroupID{groupOf[p.sub], groupOf[p.rest]},
					Conds:    pick(p.cross),
				})
			}
			if len(g.Exprs) == 0 {
				return 0, fmt.Errorf("memo: no join derivation for connected subset (internal error)")
			}
		}
		rootGID = groupOf[rec.full]
	}

	if rec.agg != nil {
		spec := expr.AggSpec{}
		for _, c := range rec.agg.groupBy {
			spec.GroupBy = append(spec.GroupBy, expr.Col{Alias: CanonAlias(leafGID[c.si]), Column: c.col})
		}
		for _, a := range rec.agg.aggs {
			if a.si < 0 {
				spec.Aggs = append(spec.Aggs, a.count)
				continue
			}
			spec.Aggs = append(spec.Aggs, expr.Agg{Func: a.fn, Col: expr.Col{Alias: CanonAlias(leafGID[a.si]), Column: a.col}})
		}
		sig := "agg|" + strconv.Itoa(int(rootGID)) + "|" + spec.Fingerprint()
		g, isNew := m.internGroup(sig)
		if isNew {
			g.Props = cardinality.AggProps(m.Group(rootGID).Props, spec)
			sp := spec
			m.addExpr(&MExpr{Kind: OpAgg, Group: g.ID, Children: []GroupID{rootGID}, Spec: &sp})
		}
		m.addConsumer(g.ID, ctx)
		rootGID = g.ID
	}
	return rootGID, nil
}
