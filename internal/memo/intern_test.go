package memo

import (
	"testing"

	"repro/internal/cost"
	"repro/internal/expr"
	"repro/internal/logical"
	"repro/internal/tpcd"
	"repro/internal/workload"
)

// equalMemos asserts two memos are structurally identical: same groups in
// the same id order (signature, flags, properties, expression keys,
// consumer sets) and the same query roots.
func equalMemos(t *testing.T, a, b *Memo) {
	t.Helper()
	if a.NumGroups() != b.NumGroups() || a.NumExprs() != b.NumExprs() {
		t.Fatalf("sizes differ: %d/%d vs %d/%d", a.NumGroups(), a.NumExprs(), b.NumGroups(), b.NumExprs())
	}
	for i := 0; i < a.NumGroups(); i++ {
		ga, gb := a.Group(GroupID(i)), b.Group(GroupID(i))
		if ga.Sig != gb.Sig {
			t.Fatalf("group %d sig %q vs %q", i, ga.Sig, gb.Sig)
		}
		if ga.Leaf != gb.Leaf || ga.BasePred != gb.BasePred {
			t.Fatalf("group %d flags differ", i)
		}
		if ga.Props.Rows != gb.Props.Rows || ga.Props.Width != gb.Props.Width {
			t.Fatalf("group %d props differ: %v/%d vs %v/%d", i, ga.Props.Rows, ga.Props.Width, gb.Props.Rows, gb.Props.Width)
		}
		if len(ga.Props.Cols) != len(gb.Props.Cols) {
			t.Fatalf("group %d column stats differ", i)
		}
		for k, v := range ga.Props.Cols {
			if gb.Props.Cols[k] != v {
				t.Fatalf("group %d column %v stats differ", i, k)
			}
		}
		if len(ga.Exprs) != len(gb.Exprs) {
			t.Fatalf("group %d expr count %d vs %d", i, len(ga.Exprs), len(gb.Exprs))
		}
		for j := range ga.Exprs {
			if exprKey(ga.Exprs[j]) != exprKey(gb.Exprs[j]) {
				t.Fatalf("group %d expr %d differs:\n  %s\n  %s", i, j, exprKey(ga.Exprs[j]), exprKey(gb.Exprs[j]))
			}
		}
		if len(ga.Consumers) != len(gb.Consumers) {
			t.Fatalf("group %d consumer count differs", i)
		}
		for c := range ga.Consumers {
			if !gb.Consumers[c] {
				t.Fatalf("group %d consumer %q missing", i, c)
			}
		}
	}
	if len(a.QueryRoots) != len(b.QueryRoots) {
		t.Fatalf("root count differs")
	}
	for i := range a.QueryRoots {
		if a.QueryRoots[i] != b.QueryRoots[i] || a.QueryNames[i] != b.QueryNames[i] {
			t.Fatalf("root %d differs: %d %q vs %d %q", i, a.QueryRoots[i], a.QueryNames[i], b.QueryRoots[i], b.QueryNames[i])
		}
	}
}

// Interned builds must be bit-identical to legacy builds across generated
// workload shapes and sharing regimes — including on a warm cache, where
// every query replays a stored recipe.
func TestInternedBuildMatchesLegacy(t *testing.T) {
	cat := tpcd.Catalog(1)
	for _, shape := range []workload.Shape{workload.Star, workload.Chain, workload.Snowflake, workload.Mixed} {
		for _, sharing := range []float64{0.25, 0.75} {
			spec := workload.DefaultSpec(12, sharing)
			spec.Shape = shape
			spec.Seed = int64(17 + int(shape)*100)
			batch, err := workload.Generate(spec)
			if err != nil {
				t.Fatalf("Generate: %v", err)
			}
			legacy, err := Build(cat, cost.Default(), batch)
			if err != nil {
				t.Fatalf("legacy Build: %v", err)
			}
			cache := NewBuildCache()
			cold, err := Build(cat, cost.Default(), batch, WithBuildCache(cache))
			if err != nil {
				t.Fatalf("cold interned Build: %v", err)
			}
			equalMemos(t, legacy, cold)
			warm, err := Build(cat, cost.Default(), batch, WithBuildCache(cache))
			if err != nil {
				t.Fatalf("warm interned Build: %v", err)
			}
			equalMemos(t, legacy, warm)
			hits, misses := cache.Stats()
			if hits < int64(len(batch.Queries)) {
				t.Fatalf("shape %v σ=%v: warm build hit %d recipes for %d queries (misses %d)",
					shape, sharing, hits, len(batch.Queries), misses)
			}
		}
	}
}

// Self-joins exercise the per-block occurrence ordinals in leaf
// signatures; duplicate queries exercise recipe reuse inside one batch.
func TestInternedBuildSelfJoinAndDuplicates(t *testing.T) {
	mk := func(alias1, alias2 string) *logical.Query {
		return logical.NewBlock().Scan("t1", alias1).Scan("t1", alias2).Scan("t2", "p").
			Cmp(alias1+".v", expr.LT, 40).
			Join(alias1+".fk", alias2+".id").Join(alias2+".fk", "p.id").
			GroupBy(alias1 + ".v").Sum("p.v").Query("q")
	}
	b := &logical.Batch{}
	b.Add(mk("a", "b"))
	b.Add(mk("a", "b")) // exact duplicate: must share a recipe and unify fully
	b.Add(mk("x", "y")) // alias-renamed: separate recipe, same groups
	legacy, err := Build(testCatalog(), cost.Default(), b)
	if err != nil {
		t.Fatalf("legacy Build: %v", err)
	}
	cache := NewBuildCache()
	interned, err := Build(testCatalog(), cost.Default(), b, WithBuildCache(cache))
	if err != nil {
		t.Fatalf("interned Build: %v", err)
	}
	equalMemos(t, legacy, interned)
	if interned.QueryRoots[0] != interned.QueryRoots[1] {
		t.Fatalf("duplicate queries did not unify to one root")
	}
	hits, misses := cache.Stats()
	if hits != 1 || misses != 2 {
		t.Fatalf("hits=%d misses=%d, want 1/2 (duplicate hits, rename records)", hits, misses)
	}
}

// Ineligible queries (derived sources) must fall back to the legacy path
// transparently.
func TestInternedBuildFallbackForDerived(t *testing.T) {
	inner := logical.NewBlock().Scan("t1", "a").Scan("t2", "b").
		Join("a.fk", "b.id").
		GroupBy("a.v").Sum("b.v")
	q := &logical.Query{Name: "outer", Root: &logical.Block{
		Sources: []logical.Source{
			{Alias: "d", Sub: inner.Build()},
			{Alias: "t", Table: "t3"},
		},
		Joins: []expr.EqJoin{{
			Left:  expr.Col{Alias: "d", Column: "v"},
			Right: expr.Col{Alias: "t", Column: "v"},
		}},
	}}
	b := &logical.Batch{}
	b.Add(q)
	legacy, err := Build(testCatalog(), cost.Default(), b)
	if err != nil {
		t.Fatalf("legacy Build: %v", err)
	}
	cache := NewBuildCache()
	interned, err := Build(testCatalog(), cost.Default(), b, WithBuildCache(cache))
	if err != nil {
		t.Fatalf("interned Build: %v", err)
	}
	equalMemos(t, legacy, interned)
	if hits, misses := cache.Stats(); hits != 0 || misses != 0 {
		t.Fatalf("derived-source query touched the recipe cache: hits=%d misses=%d", hits, misses)
	}
}

// Invalid queries must still be rejected with the cache attached, both on
// the record path and (structurally different key) never via a stale hit.
func TestInternedBuildStillValidates(t *testing.T) {
	bad := logical.NewBlock().Scan("nope", "a").Query("bad")
	b := &logical.Batch{}
	b.Add(bad)
	cache := NewBuildCache()
	if _, err := Build(testCatalog(), cost.Default(), b, WithBuildCache(cache)); err == nil {
		t.Fatalf("invalid query accepted with build cache attached")
	}
}

// The FIFO ring must bound the cache and keep serving correct results
// after evictions.
func TestBuildCacheEviction(t *testing.T) {
	cache := NewBuildCache()
	cache.max = 4
	for i := 0; i < 10; i++ {
		q := logical.NewBlock().Scan("t1", "a").Scan("t2", "b").
			Cmp("a.v", expr.LT, float64(i)).
			Join("a.fk", "b.id").Query("q")
		b := &logical.Batch{}
		b.Add(q)
		m, err := Build(testCatalog(), cost.Default(), b, WithBuildCache(cache))
		if err != nil {
			t.Fatalf("Build %d: %v", i, err)
		}
		if m.NumGroups() == 0 {
			t.Fatalf("Build %d: empty memo", i)
		}
	}
	cache.mu.Lock()
	n := len(cache.recipes)
	cache.mu.Unlock()
	if n > 4 {
		t.Fatalf("cache grew past cap: %d entries", n)
	}
}
