package memo

import (
	"fmt"
	"math"
	"math/bits"
	"strconv"

	"repro/internal/cardinality"
	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/expr"
	"repro/internal/logical"
)

// Option customizes DAG construction; used by the rule-ablation
// experiments.
type Option func(*buildConfig)

type buildConfig struct {
	noSelectSubsumption bool
	noAggSubsumption    bool
	cache               *BuildCache
}

// WithoutSelectSubsumption disables the select-subsumption rule.
func WithoutSelectSubsumption() Option {
	return func(c *buildConfig) { c.noSelectSubsumption = true }
}

// WithoutAggSubsumption disables the aggregate-subsumption rule.
func WithoutAggSubsumption() Option {
	return func(c *buildConfig) { c.noAggSubsumption = true }
}

// Build constructs and fully expands the combined LQDAG for a batch of
// queries: selections are pushed to the leaves, every connected subset of
// each block's join graph becomes a group with all bushy join derivations
// (the closure of join associativity and commutativity), aggregations are
// placed on top, common subexpressions unify across the batch, and
// select/aggregate subsumption derivations are added.
func Build(cat *catalog.Catalog, model cost.Model, batch *logical.Batch, opts ...Option) (*Memo, error) {
	if batch == nil || len(batch.Queries) == 0 {
		return nil, fmt.Errorf("memo: empty batch")
	}
	var cfg buildConfig
	for _, o := range opts {
		o(&cfg)
	}
	m := New(cat, model)
	for qi, q := range batch.Queries {
		ctx := "q" + strconv.Itoa(qi)
		root, ok, err := buildInterned(m, cfg.cache, q, ctx)
		if err != nil {
			return nil, err
		}
		if !ok {
			if err := q.Validate(cat); err != nil {
				return nil, err
			}
			root, err = m.buildBlock(q.Root, ctx)
			if err != nil {
				return nil, fmt.Errorf("query %q: %w", q.Name, err)
			}
		}
		m.QueryRoots = append(m.QueryRoots, root)
		m.QueryNames = append(m.QueryNames, q.Name)
	}
	if !cfg.noSelectSubsumption {
		m.subsumeSelections()
	}
	if !cfg.noAggSubsumption {
		m.subsumeAggregates()
	}
	m.projectWidths()
	return m, nil
}

// resolver maps a block's original column references to canonical ones.
type resolver struct {
	m *Memo
	// base maps a base-relation alias to its leaf group.
	base map[string]GroupID
	// derived maps a derived alias to the sub-block's root group.
	derived map[string]GroupID
}

// col canonicalizes one column reference.
func (r *resolver) col(c expr.Col) (expr.Col, error) {
	if gid, ok := r.base[c.Alias]; ok {
		return expr.Col{Alias: CanonAlias(gid), Column: c.Column}, nil
	}
	gid, ok := r.derived[c.Alias]
	if !ok {
		return expr.Col{}, fmt.Errorf("unresolved alias %q", c.Alias)
	}
	// Match the exposed column by name among the derived group's outputs.
	props := r.m.Group(gid).Props
	for _, cc := range props.ColumnList() {
		if cc.Column == c.Column {
			return cc, nil
		}
	}
	return expr.Col{}, fmt.Errorf("derived source %q does not expose column %q", c.Alias, c.Column)
}

func (r *resolver) pred(p expr.Pred) (expr.Pred, error) {
	out := expr.Pred{Conj: make([]expr.Cmp, len(p.Conj))}
	for i, c := range p.Conj {
		cc, err := r.col(c.Col)
		if err != nil {
			return expr.Pred{}, err
		}
		out.Conj[i] = expr.Cmp{Col: cc, Op: c.Op, Val: c.Val}
	}
	return out, nil
}

// buildBlock expands one block and returns its root group.
func (m *Memo) buildBlock(b *logical.Block, ctx string) (GroupID, error) {
	n := len(b.Sources)
	res := &resolver{m: m, base: map[string]GroupID{}, derived: map[string]GroupID{}}
	leafGID := make([]GroupID, n)
	ordCount := map[string]int{}

	for i, src := range b.Sources {
		if src.Base() {
			pred := b.SelectFor(src.Alias)
			key := "scan|" + src.Table + "|" + anonPred(pred, src.Alias)
			ord := ordCount[key]
			ordCount[key]++
			sig := key + "|" + strconv.Itoa(ord)
			g, isNew := m.internGroup(sig)
			if isNew {
				t, _ := m.Cat.Table(src.Table)
				canonPred := rewriteAlias(pred, src.Alias, CanonAlias(g.ID))
				g.Props = cardinality.ApplySelect(cardinality.BaseProps(t, CanonAlias(g.ID)), canonPred)
				g.Leaf = true
				g.BasePred = !pred.True()
				m.addExpr(&MExpr{Kind: OpScan, Group: g.ID, Table: src.Table, Alias: src.Alias, Pred: canonPred})
			}
			leafGID[i] = g.ID
			res.base[src.Alias] = g.ID
		} else {
			sub, err := m.buildBlock(src.Sub, ctx+"/"+src.Alias)
			if err != nil {
				return 0, err
			}
			leafGID[i] = sub
			res.derived[src.Alias] = sub
		}
		m.addConsumer(leafGID[i], ctx)
	}

	// Canonicalize the join conditions and record which source indexes each
	// condition touches.
	type condInfo struct {
		cond expr.EqJoin
		li   int // source index of the left column
		ri   int // source index of the right column
	}
	srcIdx := map[string]int{}
	for i, s := range b.Sources {
		srcIdx[s.Alias] = i
	}
	conds := make([]condInfo, 0, len(b.Joins))
	for _, j := range b.Joins {
		l, err := res.col(j.Left)
		if err != nil {
			return 0, err
		}
		r, err := res.col(j.Right)
		if err != nil {
			return 0, err
		}
		conds = append(conds, condInfo{
			cond: expr.EqJoin{Left: l, Right: r}.Canonical(),
			li:   srcIdx[j.Left.Alias],
			ri:   srcIdx[j.Right.Alias],
		})
	}

	var rootGID GroupID
	if n == 1 {
		rootGID = leafGID[0]
	} else {
		// Connectivity over source indexes.
		adj := make([]uint64, n)
		for _, ci := range conds {
			adj[ci.li] |= 1 << uint(ci.ri)
			adj[ci.ri] |= 1 << uint(ci.li)
		}
		connected := func(mask uint64) bool {
			start := uint64(1) << uint(bits.TrailingZeros64(mask))
			seen := start
			for {
				grow := seen
				for t := seen; t != 0; t &= t - 1 {
					grow |= adj[bits.TrailingZeros64(t)] & mask
				}
				if grow == seen {
					break
				}
				seen = grow
			}
			return seen == mask
		}
		condsIn := func(mask uint64) []expr.EqJoin {
			var out []expr.EqJoin
			for _, ci := range conds {
				if mask&(1<<uint(ci.li)) != 0 && mask&(1<<uint(ci.ri)) != 0 {
					out = append(out, ci.cond)
				}
			}
			return out
		}
		condsAcross := func(a, bm uint64) []expr.EqJoin {
			var out []expr.EqJoin
			for _, ci := range conds {
				lb, rb := uint64(1)<<uint(ci.li), uint64(1)<<uint(ci.ri)
				if (a&lb != 0 && bm&rb != 0) || (a&rb != 0 && bm&lb != 0) {
					out = append(out, ci.cond)
				}
			}
			return out
		}
		groupOf := make(map[uint64]GroupID, 1<<uint(n))
		for i := 0; i < n; i++ {
			groupOf[1<<uint(i)] = leafGID[i]
		}
		full := uint64(1)<<uint(n) - 1
		for mask := uint64(1); mask <= full; mask++ {
			if bits.OnesCount64(mask) < 2 || !connected(mask) {
				continue
			}
			ids := make([]GroupID, 0, bits.OnesCount64(mask))
			for t := mask; t != 0; t &= t - 1 {
				ids = append(ids, leafGID[bits.TrailingZeros64(t)])
			}
			inner := condsIn(mask)
			sig := "join|" + sortedIDs(ids) + "|" + expr.JoinFingerprint(inner)
			g, isNew := m.internGroup(sig)
			if isNew {
				g.Props = m.joinSubsetProps(ids, inner)
			}
			groupOf[mask] = g.ID
			m.addConsumer(g.ID, ctx)
			// All partitions into two connected halves; counting each
			// unordered partition once by keeping the lowest bit on the
			// left side (commutativity is handled physically).
			low := uint64(1) << uint(bits.TrailingZeros64(mask))
			for sub := (mask - 1) & mask; sub > 0; sub = (sub - 1) & mask {
				if sub&low == 0 {
					continue
				}
				rest := mask ^ sub
				if !connected(sub) || !connected(rest) {
					continue
				}
				cross := condsAcross(sub, rest)
				if len(cross) == 0 {
					continue
				}
				m.addExpr(&MExpr{
					Kind:     OpJoin,
					Group:    g.ID,
					Children: []GroupID{groupOf[sub], groupOf[rest]},
					Conds:    cross,
				})
			}
			if len(g.Exprs) == 0 {
				return 0, fmt.Errorf("memo: no join derivation for connected subset (internal error)")
			}
		}
		rootGID = groupOf[full]
	}

	if b.Agg != nil {
		spec := expr.AggSpec{}
		for _, c := range b.Agg.GroupBy {
			cc, err := res.col(c)
			if err != nil {
				return 0, err
			}
			spec.GroupBy = append(spec.GroupBy, cc)
		}
		for _, a := range b.Agg.Aggs {
			if a.Func == expr.Count {
				spec.Aggs = append(spec.Aggs, a)
				continue
			}
			cc, err := res.col(a.Col)
			if err != nil {
				return 0, err
			}
			spec.Aggs = append(spec.Aggs, expr.Agg{Func: a.Func, Col: cc})
		}
		sig := "agg|" + strconv.Itoa(int(rootGID)) + "|" + spec.Fingerprint()
		g, isNew := m.internGroup(sig)
		if isNew {
			g.Props = cardinality.AggProps(m.Group(rootGID).Props, spec)
			sp := spec
			m.addExpr(&MExpr{Kind: OpAgg, Group: g.ID, Children: []GroupID{rootGID}, Spec: &sp})
		}
		m.addConsumer(g.ID, ctx)
		rootGID = g.ID
	}
	return rootGID, nil
}

// joinSubsetProps computes split-independent properties for a join subset:
// the row count is the product of the leaf row counts times the product of
// the condition selectivities, so every derivation of the subset agrees.
func (m *Memo) joinSubsetProps(ids []GroupID, conds []expr.EqJoin) cardinality.Props {
	cols := map[expr.Col]cardinality.ColStats{}
	rows := 1.0
	width := 0
	for _, id := range ids {
		p := m.Group(id).Props
		rows *= p.Rows
		width += p.Width
		for k, v := range p.Cols {
			cols[k] = v
		}
	}
	for _, j := range conds {
		vl, okl := cols[j.Left]
		vr, okr := cols[j.Right]
		d := 10.0
		switch {
		case okl && okr:
			d = math.Max(vl.Distinct, vr.Distinct)
		case okl:
			d = vl.Distinct
		case okr:
			d = vr.Distinct
		}
		if d < 1 {
			d = 1
		}
		rows /= d
		if okl && okr {
			dd := math.Min(vl.Distinct, vr.Distinct)
			lo := math.Max(vl.Min, vr.Min)
			hi := math.Min(vl.Max, vr.Max)
			cols[j.Left] = cardinality.ColStats{Distinct: dd, Min: lo, Max: hi}
			cols[j.Right] = cardinality.ColStats{Distinct: dd, Min: lo, Max: hi}
		}
	}
	rows = math.Max(1, rows)
	p := cardinality.Props{Rows: rows, Width: width, Cols: cols}
	for k, v := range cols {
		if v.Distinct > rows {
			v.Distinct = rows
			cols[k] = v
		}
	}
	return p
}

// anonPred renders a single-alias predicate with the alias anonymized, for
// use in leaf signatures (so that unification is alias-independent).
func anonPred(p expr.Pred, alias string) string {
	return rewriteAlias(p, alias, "$").Fingerprint()
}

// rewriteAlias returns the predicate with every reference to `from`
// re-qualified as `to`.
func rewriteAlias(p expr.Pred, from, to string) expr.Pred {
	out := expr.Pred{Conj: make([]expr.Cmp, len(p.Conj))}
	for i, c := range p.Conj {
		col := c.Col
		if col.Alias == from {
			col.Alias = to
		}
		out.Conj[i] = expr.Cmp{Col: col, Op: c.Op, Val: c.Val}
	}
	return out
}
