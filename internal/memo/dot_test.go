package memo

import (
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/logical"
)

func TestWriteDOT(t *testing.T) {
	q1 := logical.NewBlock().Scan("t1", "a").Scan("t2", "b").
		Cmp("a.v", expr.LT, 50).Join("a.fk", "b.id").Query("alpha")
	q2 := logical.NewBlock().Scan("t1", "a").Scan("t2", "b").
		Cmp("a.v", expr.LT, 50).Join("a.fk", "b.id").Query("beta")
	m := build(t, q1, q2)

	var sb strings.Builder
	if err := m.WriteDOT(&sb, m.Shareable()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"digraph lqdag",
		"scan t1",
		"lightyellow", // shareable shading
		"alpha",
		"beta",
		"}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
	// Every group must be declared before it is referenced by edges; a
	// cheap sanity proxy: the output contains one box per group.
	if got := strings.Count(out, "shape=box"); got != m.NumGroups() {
		t.Errorf("DOT declares %d boxes for %d groups", got, m.NumGroups())
	}
}

func TestDotEscape(t *testing.T) {
	if dotEscape(`a"b\c`) != `a\"b\\c` {
		t.Errorf("escape: %q", dotEscape(`a"b\c`))
	}
	if shorten(strings.Repeat("x", 100)) != strings.Repeat("x", 57)+"..." {
		t.Error("shorten")
	}
	if shorten("short") != "short" {
		t.Error("shorten should not touch short strings")
	}
}
