package memo

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the AND-OR DAG in Graphviz DOT form: equivalence nodes
// as boxes (labelled with their signature, estimated rows and consumer
// count; shareable nodes shaded), operator nodes as ellipses. Useful for
// inspecting what the batch shares:
//
//	go run ./cmd/mqo -dot < batch.sql | dot -Tsvg > dag.svg
func (m *Memo) WriteDOT(w io.Writer, shareable []GroupID) error {
	share := make(map[GroupID]bool, len(shareable))
	for _, id := range shareable {
		share[id] = true
	}
	if _, err := fmt.Fprintln(w, "digraph lqdag {\n  rankdir=BT;\n  node [fontsize=10];"); err != nil {
		return err
	}
	for _, g := range m.groups {
		attrs := "shape=box"
		if share[g.ID] {
			attrs += ", style=filled, fillcolor=lightyellow"
		}
		label := fmt.Sprintf("g%d\\n%s\\nrows=%.0f uses=%d",
			g.ID, dotEscape(shorten(g.Sig)), g.Props.Rows, len(g.Consumers))
		if _, err := fmt.Fprintf(w, "  g%d [%s, label=\"%s\"];\n", g.ID, attrs, label); err != nil {
			return err
		}
		for ei, e := range g.Exprs {
			op := fmt.Sprintf("g%de%d", g.ID, ei)
			olabel := e.Kind.String()
			switch e.Kind {
			case OpScan:
				olabel = "scan " + e.Table
				if !e.Pred.True() {
					olabel += "\\nσ " + dotEscape(e.Pred.String())
				}
			case OpFilter:
				olabel = "σ " + dotEscape(e.Pred.String())
			case OpAgg, OpReAgg:
				olabel = e.Kind.String() + "\\n" + dotEscape(e.Spec.Fingerprint())
			}
			if _, err := fmt.Fprintf(w, "  %s [shape=ellipse, label=\"%s\"];\n  %s -> g%d;\n",
				op, olabel, op, g.ID); err != nil {
				return err
			}
			for _, ch := range e.Children {
				if _, err := fmt.Fprintf(w, "  g%d -> %s;\n", ch, op); err != nil {
					return err
				}
			}
		}
	}
	for qi, root := range m.QueryRoots {
		name := fmt.Sprintf("query %d", qi)
		if qi < len(m.QueryNames) {
			name = m.QueryNames[qi]
		}
		if _, err := fmt.Fprintf(w, "  q%d [shape=plaintext, label=\"%s\"];\n  g%d -> q%d [style=dashed];\n",
			qi, dotEscape(name), root, qi); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

func dotEscape(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func shorten(s string) string {
	if len(s) > 60 {
		return s[:57] + "..."
	}
	return s
}
