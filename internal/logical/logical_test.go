package logical

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/expr"
)

func testCatalog() *catalog.Catalog {
	c := catalog.New()
	mk := func(name string, cols ...string) {
		t := &catalog.Table{Name: name, Rows: 1000}
		for _, cn := range cols {
			t.Columns = append(t.Columns, catalog.Column{Name: cn, Type: catalog.Int, Width: 8, Distinct: 100, Min: 0, Max: 99})
		}
		c.MustAddTable(t)
	}
	mk("r", "id", "x", "fk")
	mk("s", "id", "y")
	return c
}

func TestBuilderAndValidate(t *testing.T) {
	q := NewBlock().
		Scan("r", "a").Scan("s", "b").
		Cmp("a.x", expr.LT, 5).
		Join("a.fk", "b.id").
		GroupBy("b.y").Sum("a.x").
		Query("q")
	if err := q.Validate(testCatalog()); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	b := q.Root
	if len(b.Sources) != 2 || len(b.Joins) != 1 || b.Agg == nil {
		t.Fatalf("builder produced %+v", b)
	}
	if p := b.SelectFor("a"); p.True() {
		t.Error("SelectFor(a) lost the predicate")
	}
	if p := b.SelectFor("b"); !p.True() {
		t.Error("SelectFor(b) should be trivial")
	}
}

func TestValidateErrors(t *testing.T) {
	cat := testCatalog()
	cases := []struct {
		name string
		q    *Query
		want string
	}{
		{"nil root", &Query{Name: "x"}, "nil root"},
		{"no sources", (&BlockBuilder{}).Query("x"), "no sources"},
		{"unknown table", NewBlock().Scan("zzz", "a").Query("x"), "unknown table"},
		{"dup alias", NewBlock().Scan("r", "a").Scan("s", "a").Join("a.id", "a.id").Query("x"), "duplicate alias"},
		{"unknown column", NewBlock().Scan("r", "a").Cmp("a.nope", expr.LT, 1).Query("x"), "unknown column"},
		{"unknown alias", NewBlock().Scan("r", "a").Cmp("z.x", expr.LT, 1).Query("x"), "unknown alias"},
		{"self join cond", NewBlock().Scan("r", "a").Scan("s", "b").Join("a.id", "a.x").Query("x"), "references one alias"},
		{"cross product", NewBlock().Scan("r", "a").Scan("s", "b").Query("x"), "not connected"},
		{"agg unknown col", NewBlock().Scan("r", "a").GroupBy("a.zz").Count().Query("x"), "unknown column"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.q.Validate(cat)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("error = %v, want containing %q", err, c.want)
			}
		})
	}
}

func TestMultiAliasPredicateRejected(t *testing.T) {
	p := expr.Pred{Conj: []expr.Cmp{
		{Col: expr.Col{Alias: "a", Column: "x"}, Op: expr.LT, Val: 1},
		{Col: expr.Col{Alias: "b", Column: "y"}, Op: expr.LT, Val: 1},
	}}
	q := NewBlock().Scan("r", "a").Scan("s", "b").Join("a.fk", "b.id").Where(p).Query("x")
	err := q.Validate(testCatalog())
	if err == nil || !strings.Contains(err.Error(), "spans aliases") {
		t.Errorf("error = %v", err)
	}
}

func TestDerivedSources(t *testing.T) {
	inner := NewBlock().
		Scan("r", "a").
		GroupBy("a.fk").Sum("a.x").
		Build()
	outer := NewBlock().
		Scan("s", "b").
		Derived(inner, "d").
		Join("b.id", "d.fk").
		Query("nested")
	if err := outer.Validate(testCatalog()); err != nil {
		t.Fatalf("Validate nested: %v", err)
	}
	// Referencing a column the derived block does not expose fails.
	bad := NewBlock().
		Scan("s", "b").
		Derived(inner, "d").
		Join("b.id", "d.x"). // x is aggregated away
		Query("bad")
	err := bad.Validate(testCatalog())
	if err == nil || !strings.Contains(err.Error(), "does not expose") {
		t.Errorf("error = %v", err)
	}
	// Aggregate outputs are exposed under their derived names.
	viaAgg := NewBlock().
		Scan("s", "b").
		Derived(inner, "d").
		Join("b.id", "d.sum_x").
		Query("viaAgg")
	if err := viaAgg.Validate(testCatalog()); err != nil {
		t.Errorf("agg output reference rejected: %v", err)
	}
}

func TestBlocksPostOrder(t *testing.T) {
	inner := NewBlock().Scan("r", "a").GroupBy("a.fk").Count().Build()
	outer := NewBlock().Scan("s", "b").Derived(inner, "d").Join("b.id", "d.fk").Query("q")
	blocks := outer.Blocks()
	if len(blocks) != 2 {
		t.Fatalf("got %d blocks", len(blocks))
	}
	if blocks[0] != inner || blocks[1] != outer.Root {
		t.Error("blocks not in post order")
	}
}

func TestBaseTables(t *testing.T) {
	inner := NewBlock().Scan("r", "a").GroupBy("a.fk").Count().Build()
	outer := NewBlock().Scan("s", "b").Derived(inner, "d").Join("b.id", "d.fk").Query("q")
	got := outer.BaseTables()
	if len(got) != 2 || got[0] != "r" || got[1] != "s" {
		t.Errorf("BaseTables = %v", got)
	}
}

func TestJoinGraph(t *testing.T) {
	b := NewBlock().
		Scan("r", "a").Scan("s", "b").
		Join("a.fk", "b.id").
		Build()
	g := b.JoinGraph()
	if !g["a"]["b"] || !g["b"]["a"] {
		t.Errorf("join graph %v", g)
	}
}

func TestParseColPanics(t *testing.T) {
	for _, bad := range []string{"noalias", ".x", "a."} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ParseCol(%q) should panic", bad)
				}
			}()
			ParseCol(bad)
		}()
	}
}

func TestAggOutputName(t *testing.T) {
	if AggOutputName(expr.Agg{Func: expr.Count}) != "count_all" {
		t.Error("count name")
	}
	if AggOutputName(expr.Agg{Func: expr.Max, Col: expr.Col{Alias: "a", Column: "v"}}) != "max_v" {
		t.Error("max name")
	}
}
