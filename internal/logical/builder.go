package logical

import (
	"strings"

	"repro/internal/expr"
)

// BlockBuilder is a fluent helper for constructing blocks in workload
// definitions and tests.
type BlockBuilder struct {
	b Block
}

// NewBlock returns an empty block builder.
func NewBlock() *BlockBuilder { return &BlockBuilder{} }

// Scan adds a base relation occurrence under the given alias.
func (bb *BlockBuilder) Scan(table, alias string) *BlockBuilder {
	bb.b.Sources = append(bb.b.Sources, Source{Alias: alias, Table: table})
	return bb
}

// Derived adds a nested block as a source under the given alias.
func (bb *BlockBuilder) Derived(sub *Block, alias string) *BlockBuilder {
	bb.b.Sources = append(bb.b.Sources, Source{Alias: alias, Sub: sub})
	return bb
}

// Where adds a selection predicate.
func (bb *BlockBuilder) Where(p expr.Pred) *BlockBuilder {
	bb.b.Selects = append(bb.b.Selects, p)
	return bb
}

// Cmp adds a single-comparison selection predicate, e.g.
// Cmp("o.orderdate", expr.LT, 9000).
func (bb *BlockBuilder) Cmp(col string, op expr.CmpOp, val float64) *BlockBuilder {
	return bb.Where(expr.Pred{Conj: []expr.Cmp{{Col: ParseCol(col), Op: op, Val: val}}})
}

// Join adds an equi-join condition between two qualified columns, e.g.
// Join("c.custkey", "o.custkey").
func (bb *BlockBuilder) Join(left, right string) *BlockBuilder {
	bb.b.Joins = append(bb.b.Joins, expr.EqJoin{Left: ParseCol(left), Right: ParseCol(right)})
	return bb
}

// GroupBy sets the group-by columns of the block's aggregation.
func (bb *BlockBuilder) GroupBy(cols ...string) *BlockBuilder {
	if bb.b.Agg == nil {
		bb.b.Agg = &expr.AggSpec{}
	}
	for _, c := range cols {
		bb.b.Agg.GroupBy = append(bb.b.Agg.GroupBy, ParseCol(c))
	}
	return bb
}

// Sum adds a sum aggregate.
func (bb *BlockBuilder) Sum(col string) *BlockBuilder { return bb.agg(expr.Sum, col) }

// Count adds a count(*) aggregate.
func (bb *BlockBuilder) Count() *BlockBuilder {
	if bb.b.Agg == nil {
		bb.b.Agg = &expr.AggSpec{}
	}
	bb.b.Agg.Aggs = append(bb.b.Agg.Aggs, expr.Agg{Func: expr.Count})
	return bb
}

// Min adds a min aggregate.
func (bb *BlockBuilder) Min(col string) *BlockBuilder { return bb.agg(expr.Min, col) }

// Max adds a max aggregate.
func (bb *BlockBuilder) Max(col string) *BlockBuilder { return bb.agg(expr.Max, col) }

func (bb *BlockBuilder) agg(f expr.AggFunc, col string) *BlockBuilder {
	if bb.b.Agg == nil {
		bb.b.Agg = &expr.AggSpec{}
	}
	bb.b.Agg.Aggs = append(bb.b.Agg.Aggs, expr.Agg{Func: f, Col: ParseCol(col)})
	return bb
}

// Build returns the constructed block.
func (bb *BlockBuilder) Build() *Block {
	b := bb.b
	return &b
}

// Query wraps the block in a named query.
func (bb *BlockBuilder) Query(name string) *Query {
	return &Query{Name: name, Root: bb.Build()}
}

// ParseCol parses "alias.column" into an expr.Col; it panics on malformed
// input (workload definitions are static).
func ParseCol(s string) expr.Col {
	i := strings.IndexByte(s, '.')
	if i <= 0 || i == len(s)-1 {
		panic("logical: malformed column reference " + s)
	}
	return expr.Col{Alias: s[:i], Column: s[i+1:]}
}
