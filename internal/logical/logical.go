// Package logical defines the input query representation consumed by the
// optimizer: queries are trees of SPJ blocks (select-project-join with an
// optional aggregation on top), where each block reads base relations
// and/or the results of nested blocks (derived tables). This is the
// representation the combined AND-OR DAG is built from.
package logical

import (
	"fmt"
	"sort"

	"repro/internal/catalog"
	"repro/internal/expr"
)

// Source is one input of a block: either a base relation occurrence or a
// derived table (a nested block), identified within the block by an alias.
type Source struct {
	Alias string
	Table string // base relation name; empty if Sub != nil
	Sub   *Block // nested block; nil for base relations
}

// Base reports whether the source is a base relation.
func (s Source) Base() bool { return s.Sub == nil }

// Block is one SPJ(+aggregate) block: a set of sources joined by equi-join
// conditions, filtered by per-alias selection predicates, with an optional
// group-by/aggregate on top.
type Block struct {
	Sources []Source
	Selects []expr.Pred // each predicate references columns of exactly one alias
	Joins   []expr.EqJoin
	Agg     *expr.AggSpec // nil for pure SPJ blocks
}

// Query is a named query: a single root block.
type Query struct {
	Name string
	Root *Block
}

// Batch is a set of queries to be optimized together.
type Batch struct {
	Queries []*Query
}

// Add appends a query to the batch.
func (b *Batch) Add(q *Query) { b.Queries = append(b.Queries, q) }

// Aliases returns the block's source aliases in declaration order.
func (b *Block) Aliases() []string {
	out := make([]string, len(b.Sources))
	for i, s := range b.Sources {
		out[i] = s.Alias
	}
	return out
}

// SourceByAlias returns the source with the given alias, or false.
func (b *Block) SourceByAlias(alias string) (Source, bool) {
	for _, s := range b.Sources {
		if s.Alias == alias {
			return s, true
		}
	}
	return Source{}, false
}

// SelectFor returns the conjunction of all selection predicates on the
// given alias.
func (b *Block) SelectFor(alias string) expr.Pred {
	var p expr.Pred
	for _, sp := range b.Selects {
		cols := sp.Columns()
		if len(cols) > 0 && cols[0].Alias == alias {
			p = p.And(sp)
		}
	}
	return p
}

// JoinGraph returns, for each alias, the set of aliases it is directly
// joined with.
func (b *Block) JoinGraph() map[string]map[string]bool {
	g := make(map[string]map[string]bool, len(b.Sources))
	for _, s := range b.Sources {
		g[s.Alias] = map[string]bool{}
	}
	for _, j := range b.Joins {
		la, ra := j.Left.Alias, j.Right.Alias
		if g[la] != nil && g[ra] != nil {
			g[la][ra] = true
			g[ra][la] = true
		}
	}
	return g
}

// Validate checks the query against the catalog: aliases are unique,
// base tables and columns exist, selection predicates are local to one
// alias, join conditions connect two distinct in-scope aliases, aggregates
// reference in-scope columns, and the join graph is connected (we do not
// plan cross products). Nested blocks are validated recursively.
func (q *Query) Validate(cat *catalog.Catalog) error {
	if q.Root == nil {
		return fmt.Errorf("query %q: nil root block", q.Name)
	}
	return validateBlock(q.Name, q.Root, cat)
}

func validateBlock(qname string, b *Block, cat *catalog.Catalog) error {
	if len(b.Sources) == 0 {
		return fmt.Errorf("query %q: block with no sources", qname)
	}
	seen := map[string]bool{}
	for _, s := range b.Sources {
		if s.Alias == "" {
			return fmt.Errorf("query %q: source with empty alias", qname)
		}
		if seen[s.Alias] {
			return fmt.Errorf("query %q: duplicate alias %q", qname, s.Alias)
		}
		seen[s.Alias] = true
		if s.Base() {
			if _, ok := cat.Table(s.Table); !ok {
				return fmt.Errorf("query %q: unknown table %q (alias %q)", qname, s.Table, s.Alias)
			}
		} else {
			if err := validateBlock(qname, s.Sub, cat); err != nil {
				return err
			}
		}
	}
	checkCol := func(c expr.Col) error {
		src, ok := b.SourceByAlias(c.Alias)
		if !ok {
			return fmt.Errorf("query %q: column %s references unknown alias", qname, c)
		}
		if src.Base() {
			t, _ := cat.Table(src.Table)
			if _, ok := t.Column(c.Column); !ok {
				return fmt.Errorf("query %q: unknown column %s (table %s)", qname, c, src.Table)
			}
		} else {
			if !derivedHasColumn(src.Sub, c.Column) {
				return fmt.Errorf("query %q: derived source %s does not expose column %s", qname, c.Alias, c.Column)
			}
		}
		return nil
	}
	for _, sp := range b.Selects {
		cols := sp.Columns()
		if len(cols) == 0 {
			return fmt.Errorf("query %q: empty selection predicate", qname)
		}
		alias := cols[0].Alias
		for _, c := range cols {
			if c.Alias != alias {
				return fmt.Errorf("query %q: selection predicate %s spans aliases; push-down requires single-alias predicates", qname, sp)
			}
			if err := checkCol(c); err != nil {
				return err
			}
		}
	}
	for _, j := range b.Joins {
		if j.Left.Alias == j.Right.Alias {
			return fmt.Errorf("query %q: join condition %s references one alias", qname, j)
		}
		if err := checkCol(j.Left); err != nil {
			return err
		}
		if err := checkCol(j.Right); err != nil {
			return err
		}
	}
	if b.Agg != nil {
		for _, c := range b.Agg.GroupBy {
			if err := checkCol(c); err != nil {
				return err
			}
		}
		for _, a := range b.Agg.Aggs {
			if a.Func != expr.Count {
				if err := checkCol(a.Col); err != nil {
					return err
				}
			}
		}
	}
	if len(b.Sources) > 1 && !joinConnected(b) {
		return fmt.Errorf("query %q: join graph is not connected (cross products are not planned)", qname)
	}
	return nil
}

// derivedHasColumn reports whether a nested block exposes a column under
// the given name: group-by columns are exposed by their column name, and
// aggregates by their output name (see AggOutputName).
func derivedHasColumn(sub *Block, name string) bool {
	if sub.Agg == nil {
		// A derived SPJ block exposes every column of its sources; we only
		// check alias-stripped names used by consumers.
		for _, s := range sub.Sources {
			_ = s
		}
		return true // full column tracking is deferred to the estimator
	}
	for _, c := range sub.Agg.GroupBy {
		if c.Column == name {
			return true
		}
	}
	for _, a := range sub.Agg.Aggs {
		if AggOutputName(a) == name {
			return true
		}
	}
	return false
}

// AggOutputName returns the column name under which an aggregate's result
// is exposed by a derived table, e.g. sum_extendedprice.
func AggOutputName(a expr.Agg) string {
	if a.Func == expr.Count {
		return "count_all"
	}
	return a.Func.String() + "_" + a.Col.Column
}

// joinConnected reports whether the block's join graph is connected.
func joinConnected(b *Block) bool {
	g := b.JoinGraph()
	if len(g) == 0 {
		return true
	}
	start := b.Sources[0].Alias
	seen := map[string]bool{start: true}
	stack := []string{start}
	for len(stack) > 0 {
		a := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for nb := range g[a] {
			if !seen[nb] {
				seen[nb] = true
				stack = append(stack, nb)
			}
		}
	}
	return len(seen) == len(b.Sources)
}

// Blocks returns the block and all nested blocks in post order (children
// before parents).
func (q *Query) Blocks() []*Block {
	var out []*Block
	var walk func(b *Block)
	walk = func(b *Block) {
		for _, s := range b.Sources {
			if !s.Base() {
				walk(s.Sub)
			}
		}
		out = append(out, b)
	}
	walk(q.Root)
	return out
}

// BaseTables returns the distinct base table names referenced anywhere in
// the query, sorted.
func (q *Query) BaseTables() []string {
	set := map[string]bool{}
	for _, b := range q.Blocks() {
		for _, s := range b.Sources {
			if s.Base() {
				set[s.Table] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}
