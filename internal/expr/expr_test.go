package expr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func col(a, c string) Col { return Col{Alias: a, Column: c} }

func TestColString(t *testing.T) {
	if got := col("o", "orderdate").String(); got != "o.orderdate" {
		t.Errorf("got %q", got)
	}
}

func TestColLess(t *testing.T) {
	cases := []struct {
		a, b Col
		want bool
	}{
		{col("a", "x"), col("b", "x"), true},
		{col("b", "x"), col("a", "x"), false},
		{col("a", "x"), col("a", "y"), true},
		{col("a", "x"), col("a", "x"), false},
	}
	for _, c := range cases {
		if got := c.a.Less(c.b); got != c.want {
			t.Errorf("%v.Less(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestCmpOpString(t *testing.T) {
	want := map[CmpOp]string{EQ: "=", LT: "<", LE: "<=", GT: ">", GE: ">="}
	for op, s := range want {
		if op.String() != s {
			t.Errorf("%d: got %q want %q", op, op.String(), s)
		}
	}
}

func TestPredFingerprintCanonical(t *testing.T) {
	p1 := Pred{Conj: []Cmp{
		{Col: col("a", "x"), Op: LT, Val: 5},
		{Col: col("a", "y"), Op: EQ, Val: 2},
	}}
	p2 := Pred{Conj: []Cmp{
		{Col: col("a", "y"), Op: EQ, Val: 2},
		{Col: col("a", "x"), Op: LT, Val: 5},
	}}
	if p1.Fingerprint() != p2.Fingerprint() {
		t.Errorf("fingerprints differ for reordered conjuncts: %q vs %q", p1.Fingerprint(), p2.Fingerprint())
	}
}

func TestPredTrueAndAnd(t *testing.T) {
	var p Pred
	if !p.True() {
		t.Error("zero predicate should be true")
	}
	q := p.And(Pred{Conj: []Cmp{{Col: col("a", "x"), Op: GT, Val: 1}}})
	if q.True() || len(q.Conj) != 1 {
		t.Errorf("And failed: %+v", q)
	}
	if p.True() != true {
		t.Error("And must not mutate the receiver")
	}
}

func TestPredColumns(t *testing.T) {
	p := Pred{Conj: []Cmp{
		{Col: col("a", "x"), Op: LT, Val: 5},
		{Col: col("a", "x"), Op: GT, Val: 1},
		{Col: col("a", "y"), Op: EQ, Val: 2},
	}}
	cols := p.Columns()
	if len(cols) != 2 {
		t.Fatalf("got %d columns, want 2", len(cols))
	}
	if cols[0] != col("a", "x") || cols[1] != col("a", "y") {
		t.Errorf("columns %v", cols)
	}
}

func TestImpliesRanges(t *testing.T) {
	mk := func(op CmpOp, v float64) Pred {
		return Pred{Conj: []Cmp{{Col: col("a", "x"), Op: op, Val: v}}}
	}
	cases := []struct {
		p, q Pred
		want bool
	}{
		{mk(LT, 5), mk(LT, 10), true},
		{mk(LT, 10), mk(LT, 5), false},
		{mk(LT, 5), mk(LT, 5), true},
		{mk(LT, 5), mk(LE, 5), true},
		{mk(LE, 5), mk(LT, 5), false}, // x<=5 does not imply x<5
		{mk(EQ, 3), mk(LT, 5), true},
		{mk(EQ, 7), mk(LT, 5), false},
		{mk(GT, 5), mk(GT, 2), true},
		{mk(GT, 2), mk(GT, 5), false},
		{mk(GE, 5), mk(GE, 5), true},
		{mk(GE, 5), mk(GT, 5), false}, // x>=5 does not imply x>5
		{mk(GT, 5), mk(GE, 5), true},
		{mk(EQ, 5), mk(GE, 5), true},
		{mk(EQ, 5), mk(EQ, 5), true},
		{mk(EQ, 5), mk(EQ, 6), false},
	}
	for _, c := range cases {
		if got := c.p.Implies(c.q); got != c.want {
			t.Errorf("(%s).Implies(%s) = %v, want %v", c.p, c.q, got, c.want)
		}
	}
}

func TestImpliesConjunction(t *testing.T) {
	strict := Pred{Conj: []Cmp{
		{Col: col("a", "x"), Op: LT, Val: 5},
		{Col: col("a", "y"), Op: EQ, Val: 1},
	}}
	loose := Pred{Conj: []Cmp{{Col: col("a", "x"), Op: LT, Val: 10}}}
	if !strict.Implies(loose) {
		t.Error("conjunction should imply its weakened conjunct")
	}
	if loose.Implies(strict) {
		t.Error("loose must not imply strict")
	}
	// Everything implies the empty (true) predicate.
	if !strict.Implies(Pred{}) {
		t.Error("must imply true")
	}
}

// TestImpliesSemanticsQuick cross-checks Implies against direct evaluation:
// if p.Implies(q), then every value satisfying p satisfies q.
func TestImpliesSemanticsQuick(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	eval := func(p Pred, v float64) bool {
		for _, c := range p.Conj {
			ok := false
			switch c.Op {
			case EQ:
				ok = v == c.Val
			case LT:
				ok = v < c.Val
			case LE:
				ok = v <= c.Val
			case GT:
				ok = v > c.Val
			case GE:
				ok = v >= c.Val
			}
			if !ok {
				return false
			}
		}
		return true
	}
	for i := 0; i < 2000; i++ {
		p := Pred{Conj: []Cmp{{Col: col("a", "x"), Op: CmpOp(r.Intn(5)), Val: float64(r.Intn(10))}}}
		q := Pred{Conj: []Cmp{{Col: col("a", "x"), Op: CmpOp(r.Intn(5)), Val: float64(r.Intn(10))}}}
		if p.Implies(q) {
			for v := -1.0; v <= 11; v += 0.5 {
				if eval(p, v) && !eval(q, v) {
					t.Fatalf("%s implies %s but v=%v satisfies p not q", p, q, v)
				}
			}
		}
	}
}

func TestEqJoinCanonicalSymmetric(t *testing.T) {
	j1 := EqJoin{Left: col("b", "y"), Right: col("a", "x")}
	j2 := EqJoin{Left: col("a", "x"), Right: col("b", "y")}
	if j1.String() != j2.String() {
		t.Errorf("canonical strings differ: %q vs %q", j1.String(), j2.String())
	}
	if quick.Check(func(a1, c1, a2, c2 string) bool {
		x := EqJoin{Left: Col{a1, c1}, Right: Col{a2, c2}}
		y := EqJoin{Left: Col{a2, c2}, Right: Col{a1, c1}}
		return x.String() == y.String()
	}, nil) != nil {
		t.Error("EqJoin canonicalization is not symmetric")
	}
}

func TestJoinFingerprintOrderIndependent(t *testing.T) {
	a := EqJoin{Left: col("a", "x"), Right: col("b", "y")}
	b := EqJoin{Left: col("c", "z"), Right: col("b", "w")}
	if JoinFingerprint([]EqJoin{a, b}) != JoinFingerprint([]EqJoin{b, a}) {
		t.Error("fingerprint depends on condition order")
	}
}

func TestAggSpecFingerprint(t *testing.T) {
	s1 := AggSpec{
		GroupBy: []Col{col("a", "x"), col("b", "y")},
		Aggs:    []Agg{{Func: Sum, Col: col("a", "v")}},
	}
	s2 := AggSpec{
		GroupBy: []Col{col("b", "y"), col("a", "x")},
		Aggs:    []Agg{{Func: Sum, Col: col("a", "v")}},
	}
	if s1.Fingerprint() != s2.Fingerprint() {
		t.Error("fingerprint depends on group-by order")
	}
}

func TestAggSubsumedBy(t *testing.T) {
	fine := AggSpec{
		GroupBy: []Col{col("a", "x"), col("a", "y")},
		Aggs:    []Agg{{Func: Sum, Col: col("a", "v")}, {Func: Count}},
	}
	coarse := AggSpec{
		GroupBy: []Col{col("a", "x")},
		Aggs:    []Agg{{Func: Sum, Col: col("a", "v")}},
	}
	if !coarse.SubsumedBy(fine) {
		t.Error("coarse should be derivable from fine")
	}
	if fine.SubsumedBy(coarse) {
		t.Error("fine must not be derivable from coarse")
	}
	if coarse.SubsumedBy(coarse) {
		t.Error("identical specs are not a subsumption edge")
	}
	missingAgg := AggSpec{
		GroupBy: []Col{col("a", "x")},
		Aggs:    []Agg{{Func: Min, Col: col("a", "w")}},
	}
	if missingAgg.SubsumedBy(fine) {
		t.Error("cannot derive an aggregate the finer spec lacks")
	}
}

func TestAggStrings(t *testing.T) {
	if (Agg{Func: Count}).String() != "count(*)" {
		t.Error("count(*) rendering")
	}
	if (Agg{Func: Sum, Col: col("l", "price")}).String() != "sum(l.price)" {
		t.Error("sum rendering")
	}
	for f, s := range map[AggFunc]string{Sum: "sum", Count: "count", Min: "min", Max: "max"} {
		if f.String() != s {
			t.Errorf("AggFunc %d renders %q", f, f.String())
		}
	}
}
