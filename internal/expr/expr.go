// Package expr defines the scalar expression vocabulary of the optimizer:
// column references, selection predicates on single relations, equi-join
// conditions, conjunctions, canonical fingerprints used for DAG
// unification, and predicate implication used for subsumption.
package expr

import (
	"fmt"
	"sort"
	"strings"
)

// Col is a qualified column reference: an alias of a relation occurrence in
// a query, plus a column name of the underlying table.
type Col struct {
	Alias  string
	Column string
}

// String implements fmt.Stringer.
func (c Col) String() string { return c.Alias + "." + c.Column }

// Less orders columns lexicographically; used for canonicalization.
func (c Col) Less(o Col) bool {
	if c.Alias != o.Alias {
		return c.Alias < o.Alias
	}
	return c.Column < o.Column
}

// CmpOp is a comparison operator in a selection predicate.
type CmpOp int

// Comparison operators.
const (
	EQ CmpOp = iota
	LT
	LE
	GT
	GE
)

// String implements fmt.Stringer.
func (op CmpOp) String() string {
	switch op {
	case EQ:
		return "="
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	default:
		return fmt.Sprintf("CmpOp(%d)", int(op))
	}
}

// Cmp is a single comparison of a column against a constant, e.g.
// "o.orderdate < 9000". All constants are normalized to float64; string
// constants are hashed to floats by the workload layer.
type Cmp struct {
	Col Col
	Op  CmpOp
	Val float64
}

// String implements fmt.Stringer.
func (p Cmp) String() string { return fmt.Sprintf("%s%s%g", p.Col, p.Op, p.Val) }

// Pred is a conjunction of comparisons over the columns of a single
// relation occurrence (after push-down every selection is local to one
// alias). The zero value is the always-true predicate.
type Pred struct {
	Conj []Cmp
}

// True reports whether the predicate is the trivial always-true predicate.
func (p Pred) True() bool { return len(p.Conj) == 0 }

// And returns the conjunction of p and q.
func (p Pred) And(q Pred) Pred {
	out := Pred{Conj: make([]Cmp, 0, len(p.Conj)+len(q.Conj))}
	out.Conj = append(out.Conj, p.Conj...)
	out.Conj = append(out.Conj, q.Conj...)
	return out.canonical()
}

// canonical returns the predicate with conjuncts sorted deterministically.
func (p Pred) canonical() Pred {
	sort.Slice(p.Conj, func(i, j int) bool {
		a, b := p.Conj[i], p.Conj[j]
		if a.Col != b.Col {
			return a.Col.Less(b.Col)
		}
		if a.Op != b.Op {
			return a.Op < b.Op
		}
		return a.Val < b.Val
	})
	return p
}

// Fingerprint returns a canonical string identifying the predicate up to
// conjunct order. Equal fingerprints mean semantically identical predicate
// syntax trees (not full logical equivalence).
func (p Pred) Fingerprint() string {
	q := p.canonical()
	parts := make([]string, len(q.Conj))
	for i, c := range q.Conj {
		parts[i] = c.String()
	}
	return strings.Join(parts, "&")
}

// String implements fmt.Stringer.
func (p Pred) String() string {
	if p.True() {
		return "true"
	}
	return p.Fingerprint()
}

// Columns returns the distinct columns referenced by the predicate.
func (p Pred) Columns() []Col {
	seen := map[Col]bool{}
	var out []Col
	for _, c := range p.Conj {
		if !seen[c.Col] {
			seen[c.Col] = true
			out = append(out, c.Col)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Implies reports whether p ⇒ q, i.e. every tuple satisfying p satisfies q.
// It is sound but not complete: it checks that every conjunct of q is
// implied by some conjunct of p on the same column. This is sufficient for
// the select-subsumption rule (deriving a stricter selection from a looser
// one).
func (p Pred) Implies(q Pred) bool {
	for _, qc := range q.Conj {
		implied := false
		for _, pc := range p.Conj {
			if pc.Col == qc.Col && cmpImplies(pc, qc) {
				implied = true
				break
			}
		}
		if !implied {
			return false
		}
	}
	return true
}

// cmpImplies reports whether comparison a (on the same column) implies b.
func cmpImplies(a, b Cmp) bool {
	switch b.Op {
	case EQ:
		return a.Op == EQ && a.Val == b.Val
	case LT:
		switch a.Op {
		case EQ:
			return a.Val < b.Val
		case LT:
			return a.Val <= b.Val
		case LE:
			return a.Val < b.Val
		}
	case LE:
		switch a.Op {
		case EQ:
			return a.Val <= b.Val
		case LT:
			return a.Val <= b.Val // x<v ⇒ x<=w when v<=w
		case LE:
			return a.Val <= b.Val
		}
	case GT:
		switch a.Op {
		case EQ:
			return a.Val > b.Val
		case GT:
			return a.Val >= b.Val
		case GE:
			return a.Val > b.Val
		}
	case GE:
		switch a.Op {
		case EQ:
			return a.Val >= b.Val
		case GT:
			return a.Val >= b.Val
		case GE:
			return a.Val >= b.Val
		}
	}
	return false
}

// EqJoin is an equi-join condition between columns of two relation
// occurrences.
type EqJoin struct {
	Left, Right Col
}

// Canonical returns the condition with sides ordered deterministically.
func (j EqJoin) Canonical() EqJoin {
	if j.Right.Less(j.Left) {
		return EqJoin{Left: j.Right, Right: j.Left}
	}
	return j
}

// String implements fmt.Stringer.
func (j EqJoin) String() string {
	c := j.Canonical()
	return c.Left.String() + "=" + c.Right.String()
}

// JoinFingerprint returns a canonical string for a set of join conditions.
func JoinFingerprint(conds []EqJoin) string {
	parts := make([]string, len(conds))
	for i, c := range conds {
		parts[i] = c.String()
	}
	sort.Strings(parts)
	return strings.Join(parts, "&")
}

// AggFunc is an aggregate function kind.
type AggFunc int

// Aggregate function kinds. All are decomposable (reaggregatable), which
// the aggregate-subsumption rule relies on.
const (
	Sum AggFunc = iota
	Count
	Min
	Max
)

// String implements fmt.Stringer.
func (f AggFunc) String() string {
	switch f {
	case Sum:
		return "sum"
	case Count:
		return "count"
	case Min:
		return "min"
	case Max:
		return "max"
	default:
		return fmt.Sprintf("AggFunc(%d)", int(f))
	}
}

// Agg is one aggregate expression, e.g. sum(l.extendedprice).
type Agg struct {
	Func AggFunc
	Col  Col // ignored for Count
}

// String implements fmt.Stringer.
func (a Agg) String() string {
	if a.Func == Count {
		return "count(*)"
	}
	return fmt.Sprintf("%s(%s)", a.Func, a.Col)
}

// AggSpec is a group-by plus a list of aggregates.
type AggSpec struct {
	GroupBy []Col
	Aggs    []Agg
}

// Fingerprint returns a canonical string for the aggregation spec.
func (s AggSpec) Fingerprint() string {
	g := make([]string, len(s.GroupBy))
	for i, c := range s.GroupBy {
		g[i] = c.String()
	}
	sort.Strings(g)
	a := make([]string, len(s.Aggs))
	for i, ag := range s.Aggs {
		a[i] = ag.String()
	}
	sort.Strings(a)
	return "gb[" + strings.Join(g, ",") + "]agg[" + strings.Join(a, ",") + "]"
}

// GroupBySet returns the group-by columns as a set.
func (s AggSpec) GroupBySet() map[Col]bool {
	m := make(map[Col]bool, len(s.GroupBy))
	for _, c := range s.GroupBy {
		m[c] = true
	}
	return m
}

// SubsumedBy reports whether this aggregation can be computed by
// re-aggregating the output of the finer aggregation fine: fine's group-by
// must be a superset of s's, both must aggregate the same columns with
// decomposable functions, and fine must retain s's group-by columns.
func (s AggSpec) SubsumedBy(fine AggSpec) bool {
	fineSet := fine.GroupBySet()
	for _, c := range s.GroupBy {
		if !fineSet[c] {
			return false
		}
	}
	if len(fine.GroupBy) <= len(s.GroupBy) {
		return false // identical or coarser: not a subsumption edge
	}
	// Every aggregate of s must appear in fine so it can be re-aggregated
	// (sum of sums, sum of counts, min of mins, max of maxes).
	fineAggs := map[string]bool{}
	for _, a := range fine.Aggs {
		fineAggs[a.String()] = true
	}
	for _, a := range s.Aggs {
		if !fineAggs[a.String()] {
			return false
		}
	}
	return true
}
