// Package cardinality implements the statistics-based estimation used to
// annotate every node of the AND-OR DAG with an output cardinality, tuple
// width and per-column statistics. The optimizer treats these estimates as
// correct, as the paper assumes ("one assumes that the cost estimates
// provided to us are correct for any guarantees to hold").
package cardinality

import (
	"math"
	"sort"

	"repro/internal/catalog"
	"repro/internal/expr"
)

// ColStats carries the per-column statistics propagated through operators.
type ColStats struct {
	Distinct float64
	Min, Max float64
}

// Props are the estimated relational properties of one equivalence node:
// output row count, tuple width in bytes and per-column statistics.
type Props struct {
	Rows  float64
	Width int
	Cols  map[expr.Col]ColStats
}

// Clone returns a deep copy of the properties.
func (p Props) Clone() Props {
	cols := make(map[expr.Col]ColStats, len(p.Cols))
	for k, v := range p.Cols {
		cols[k] = v
	}
	return Props{Rows: p.Rows, Width: p.Width, Cols: cols}
}

// ColumnList returns the columns in deterministic order.
func (p Props) ColumnList() []expr.Col {
	out := make([]expr.Col, 0, len(p.Cols))
	for c := range p.Cols {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// BaseProps returns the properties of a base relation occurrence under the
// given alias.
func BaseProps(t *catalog.Table, alias string) Props {
	cols := make(map[expr.Col]ColStats, len(t.Columns))
	for _, c := range t.Columns {
		cols[expr.Col{Alias: alias, Column: c.Name}] = ColStats{
			Distinct: c.Distinct,
			Min:      c.Min,
			Max:      c.Max,
		}
	}
	return Props{Rows: t.Rows, Width: t.RowWidth(), Cols: cols}
}

// Selectivity estimates the fraction of tuples of a relation with the given
// properties that satisfy the predicate. Conjuncts multiply
// (independence assumption); unknown columns default to a selectivity of
// 1/10 for equality and 1/3 for ranges, the classic System R defaults.
func Selectivity(p Props, pred expr.Pred) float64 {
	sel := 1.0
	for _, c := range pred.Conj {
		sel *= cmpSelectivity(p, c)
	}
	return clamp01(sel)
}

func cmpSelectivity(p Props, c expr.Cmp) float64 {
	st, ok := p.Cols[c.Col]
	switch c.Op {
	case expr.EQ:
		if !ok || st.Distinct <= 0 {
			return 0.1
		}
		return clamp01(1 / st.Distinct)
	case expr.LT, expr.LE:
		if !ok || st.Max <= st.Min {
			return 1.0 / 3.0
		}
		return clamp01((c.Val - st.Min) / (st.Max - st.Min))
	case expr.GT, expr.GE:
		if !ok || st.Max <= st.Min {
			return 1.0 / 3.0
		}
		return clamp01((st.Max - c.Val) / (st.Max - st.Min))
	default:
		return 1.0 / 3.0
	}
}

// ApplySelect returns the properties after filtering by pred: rows scale by
// the selectivity, distinct counts are capped by the new row count, and
// range bounds tighten for range predicates.
func ApplySelect(p Props, pred expr.Pred) Props {
	sel := Selectivity(p, pred)
	out := p.Clone()
	out.Rows = math.Max(1, p.Rows*sel)
	for _, c := range pred.Conj {
		st, ok := out.Cols[c.Col]
		if !ok {
			continue
		}
		switch c.Op {
		case expr.EQ:
			st.Distinct = 1
			st.Min, st.Max = c.Val, c.Val
		case expr.LT, expr.LE:
			if c.Val < st.Max {
				frac := rangeFrac(st, st.Min, c.Val)
				st.Distinct = math.Max(1, st.Distinct*frac)
				st.Max = c.Val
			}
		case expr.GT, expr.GE:
			if c.Val > st.Min {
				frac := rangeFrac(st, c.Val, st.Max)
				st.Distinct = math.Max(1, st.Distinct*frac)
				st.Min = c.Val
			}
		}
		out.Cols[c.Col] = st
	}
	capDistinct(&out)
	return out
}

func rangeFrac(st ColStats, lo, hi float64) float64 {
	if st.Max <= st.Min {
		return 1
	}
	return clamp01((hi - lo) / (st.Max - st.Min))
}

// JoinProps returns the properties of the equi-join of two inputs under the
// given conditions, using the standard |L||R| / Π max(V(l),V(r)) estimate.
func JoinProps(l, r Props, conds []expr.EqJoin) Props {
	rows := l.Rows * r.Rows
	for _, j := range conds {
		vl := distinctOrDefault(l, j.Left, r, j.Right)
		vr := distinctOrDefault(r, j.Right, l, j.Left)
		d := math.Max(vl, vr)
		if d < 1 {
			d = 1
		}
		rows /= d
	}
	rows = math.Max(1, rows)
	cols := make(map[expr.Col]ColStats, len(l.Cols)+len(r.Cols))
	for k, v := range l.Cols {
		cols[k] = v
	}
	for k, v := range r.Cols {
		cols[k] = v
	}
	out := Props{Rows: rows, Width: l.Width + r.Width, Cols: cols}
	// Join columns take the smaller distinct count (containment assumption).
	for _, j := range conds {
		if ls, ok := l.Cols[j.Left]; ok {
			if rs, ok2 := r.Cols[j.Right]; ok2 {
				d := math.Min(ls.Distinct, rs.Distinct)
				lo := math.Max(ls.Min, rs.Min)
				hi := math.Min(ls.Max, rs.Max)
				cols[j.Left] = ColStats{Distinct: d, Min: lo, Max: hi}
				cols[j.Right] = ColStats{Distinct: d, Min: lo, Max: hi}
			}
		}
	}
	capDistinct(&out)
	return out
}

// distinctOrDefault returns the distinct count of col in p, falling back to
// the other side's count, then to 10.
func distinctOrDefault(p Props, col expr.Col, other Props, otherCol expr.Col) float64 {
	if st, ok := p.Cols[col]; ok && st.Distinct > 0 {
		return st.Distinct
	}
	if st, ok := other.Cols[otherCol]; ok && st.Distinct > 0 {
		return st.Distinct
	}
	return 10
}

// AggProps returns the properties of an aggregation: output rows are the
// product of group-by distinct counts capped by input rows, and output
// columns are the group-by columns plus one 8-byte column per aggregate.
func AggProps(p Props, spec expr.AggSpec) Props {
	groups := 1.0
	for _, c := range spec.GroupBy {
		if st, ok := p.Cols[c]; ok {
			groups *= math.Max(1, st.Distinct)
		} else {
			groups *= 10
		}
		if groups > p.Rows {
			groups = p.Rows
			break
		}
	}
	groups = math.Min(math.Max(1, groups), p.Rows)
	cols := make(map[expr.Col]ColStats, len(spec.GroupBy)+len(spec.Aggs))
	width := 0
	for _, c := range spec.GroupBy {
		st := p.Cols[c]
		st.Distinct = math.Min(math.Max(1, st.Distinct), groups)
		cols[c] = st
		width += 8
	}
	for _, a := range spec.Aggs {
		out := AggOutputCol(spec, a)
		cols[out] = ColStats{Distinct: groups, Min: 0, Max: math.MaxFloat64 / 4}
		width += 8
	}
	return Props{Rows: groups, Width: width, Cols: cols}
}

// AggOutputCol returns the column under which an aggregate's result is
// exposed by the aggregation's output. Group-by columns keep their
// original identity; aggregate outputs use the aggregated column's alias
// (or the first group-by column's alias for count(*)) with a derived name
// such as sum_extendedprice or count_all.
func AggOutputCol(spec expr.AggSpec, a expr.Agg) expr.Col {
	return expr.Col{Alias: aggAlias(spec, a), Column: aggName(a)}
}

func aggAlias(spec expr.AggSpec, a expr.Agg) string {
	if a.Func != expr.Count && a.Col.Alias != "" {
		return a.Col.Alias
	}
	if len(spec.GroupBy) > 0 {
		return spec.GroupBy[0].Alias
	}
	return "_agg"
}

func aggName(a expr.Agg) string {
	if a.Func == expr.Count {
		return "count_all"
	}
	return a.Func.String() + "_" + a.Col.Column
}

// capDistinct caps every column's distinct count by the row count.
func capDistinct(p *Props) {
	for k, v := range p.Cols {
		if v.Distinct > p.Rows {
			v.Distinct = p.Rows
			p.Cols[k] = v
		}
		if v.Distinct < 1 {
			v.Distinct = 1
			p.Cols[k] = v
		}
	}
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
