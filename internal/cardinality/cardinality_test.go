package cardinality

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/catalog"
	"repro/internal/expr"
)

func testTable() *catalog.Table {
	t := &catalog.Table{
		Name: "t",
		Rows: 1000,
		Columns: []catalog.Column{
			{Name: "id", Type: catalog.Int, Width: 8, Distinct: 1000, Min: 0, Max: 999},
			{Name: "grp", Type: catalog.Int, Width: 8, Distinct: 10, Min: 0, Max: 9},
			{Name: "val", Type: catalog.Float, Width: 8, Distinct: 100, Min: 0, Max: 100},
		},
	}
	c := catalog.New()
	c.MustAddTable(t)
	tt, _ := c.Table("t")
	return tt
}

func col(a, c string) expr.Col { return expr.Col{Alias: a, Column: c} }

func pred(c expr.Col, op expr.CmpOp, v float64) expr.Pred {
	return expr.Pred{Conj: []expr.Cmp{{Col: c, Op: op, Val: v}}}
}

func TestBaseProps(t *testing.T) {
	p := BaseProps(testTable(), "a")
	if p.Rows != 1000 || p.Width != 24 {
		t.Errorf("rows=%v width=%v", p.Rows, p.Width)
	}
	st, ok := p.Cols[col("a", "grp")]
	if !ok || st.Distinct != 10 {
		t.Errorf("grp stats: %+v %v", st, ok)
	}
}

func TestSelectivityEquality(t *testing.T) {
	p := BaseProps(testTable(), "a")
	if got := Selectivity(p, pred(col("a", "grp"), expr.EQ, 3)); got != 0.1 {
		t.Errorf("eq selectivity = %v, want 1/10", got)
	}
	// Unknown column falls back to the System R default.
	if got := Selectivity(p, pred(col("z", "zzz"), expr.EQ, 3)); got != 0.1 {
		t.Errorf("unknown column eq = %v, want 0.1", got)
	}
}

func TestSelectivityRange(t *testing.T) {
	p := BaseProps(testTable(), "a")
	if got := Selectivity(p, pred(col("a", "val"), expr.LT, 50)); got != 0.5 {
		t.Errorf("val<50 = %v, want 0.5", got)
	}
	if got := Selectivity(p, pred(col("a", "val"), expr.GT, 75)); got != 0.25 {
		t.Errorf("val>75 = %v, want 0.25", got)
	}
	if got := Selectivity(p, pred(col("a", "val"), expr.LT, 500)); got != 1 {
		t.Errorf("val<500 = %v, want clamp to 1", got)
	}
	if got := Selectivity(p, pred(col("a", "val"), expr.LT, -5)); got != 0 {
		t.Errorf("val<-5 = %v, want clamp to 0", got)
	}
}

func TestSelectivityConjunctsMultiply(t *testing.T) {
	p := BaseProps(testTable(), "a")
	conj := pred(col("a", "val"), expr.LT, 50).And(pred(col("a", "grp"), expr.EQ, 1))
	if got := Selectivity(p, conj); math.Abs(got-0.05) > 1e-12 {
		t.Errorf("conjunction = %v, want 0.05", got)
	}
}

func TestApplySelect(t *testing.T) {
	p := BaseProps(testTable(), "a")
	q := ApplySelect(p, pred(col("a", "val"), expr.LT, 50))
	if q.Rows != 500 {
		t.Errorf("rows after val<50 = %v, want 500", q.Rows)
	}
	st := q.Cols[col("a", "val")]
	if st.Max != 50 {
		t.Errorf("max not tightened: %v", st.Max)
	}
	if st.Distinct >= 100 {
		t.Errorf("distinct not reduced: %v", st.Distinct)
	}
	// Original props untouched.
	if p.Rows != 1000 || p.Cols[col("a", "val")].Max != 100 {
		t.Error("ApplySelect mutated its input")
	}
	// Equality pins the column.
	e := ApplySelect(p, pred(col("a", "grp"), expr.EQ, 3))
	est := e.Cols[col("a", "grp")]
	if est.Distinct != 1 || est.Min != 3 || est.Max != 3 {
		t.Errorf("eq stats: %+v", est)
	}
}

func TestApplySelectFloor(t *testing.T) {
	p := BaseProps(testTable(), "a")
	q := ApplySelect(p, pred(col("a", "val"), expr.LT, -100))
	if q.Rows < 1 {
		t.Errorf("rows must be floored at 1, got %v", q.Rows)
	}
}

func TestJoinProps(t *testing.T) {
	l := BaseProps(testTable(), "a")
	r := BaseProps(testTable(), "b")
	j := JoinProps(l, r, []expr.EqJoin{{Left: col("a", "id"), Right: col("b", "id")}})
	// |L||R|/max(V,V) = 1000*1000/1000.
	if j.Rows != 1000 {
		t.Errorf("join rows = %v, want 1000", j.Rows)
	}
	if j.Width != 48 {
		t.Errorf("join width = %v, want 48", j.Width)
	}
	if _, ok := j.Cols[col("b", "grp")]; !ok {
		t.Error("join lost right-side columns")
	}
}

func TestJoinPropsLowDistinct(t *testing.T) {
	l := BaseProps(testTable(), "a")
	r := BaseProps(testTable(), "b")
	j := JoinProps(l, r, []expr.EqJoin{{Left: col("a", "grp"), Right: col("b", "grp")}})
	if j.Rows != 100000 { // 10^6 / 10
		t.Errorf("join rows = %v, want 100000", j.Rows)
	}
	st := j.Cols[col("a", "grp")]
	if st.Distinct != 10 {
		t.Errorf("join col distinct = %v", st.Distinct)
	}
}

func TestJoinRowsNeverBelowOne(t *testing.T) {
	l := ApplySelect(BaseProps(testTable(), "a"), pred(col("a", "id"), expr.EQ, 5))
	r := ApplySelect(BaseProps(testTable(), "b"), pred(col("b", "id"), expr.EQ, 7))
	j := JoinProps(l, r, []expr.EqJoin{{Left: col("a", "id"), Right: col("b", "id")}})
	if j.Rows < 1 {
		t.Errorf("join rows %v < 1", j.Rows)
	}
}

func TestAggProps(t *testing.T) {
	p := BaseProps(testTable(), "a")
	spec := expr.AggSpec{
		GroupBy: []expr.Col{col("a", "grp")},
		Aggs:    []expr.Agg{{Func: expr.Sum, Col: col("a", "val")}},
	}
	ap := AggProps(p, spec)
	if ap.Rows != 10 {
		t.Errorf("agg rows = %v, want 10 groups", ap.Rows)
	}
	if ap.Width != 16 {
		t.Errorf("agg width = %v, want 16 (one key + one agg)", ap.Width)
	}
	out := AggOutputCol(spec, spec.Aggs[0])
	if _, ok := ap.Cols[out]; !ok {
		t.Errorf("agg output column %v missing from props", out)
	}
}

func TestAggPropsCappedByRows(t *testing.T) {
	p := BaseProps(testTable(), "a")
	spec := expr.AggSpec{
		GroupBy: []expr.Col{col("a", "id"), col("a", "grp")},
		Aggs:    []expr.Agg{{Func: expr.Count}},
	}
	ap := AggProps(p, spec)
	if ap.Rows > p.Rows {
		t.Errorf("groups %v exceed input rows %v", ap.Rows, p.Rows)
	}
}

func TestAggOutputColNaming(t *testing.T) {
	spec := expr.AggSpec{GroupBy: []expr.Col{col("a", "grp")}}
	sum := AggOutputCol(spec, expr.Agg{Func: expr.Sum, Col: col("a", "val")})
	if sum.Column != "sum_val" || sum.Alias != "a" {
		t.Errorf("sum output %v", sum)
	}
	cnt := AggOutputCol(spec, expr.Agg{Func: expr.Count})
	if cnt.Column != "count_all" {
		t.Errorf("count output %v", cnt)
	}
}

// Property: selectivities are always in [0,1], and ApplySelect never
// increases rows or column distinct counts.
func TestEstimatorInvariantsRandom(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	tbl := testTable()
	for i := 0; i < 2000; i++ {
		p := BaseProps(tbl, "a")
		cn := tbl.Columns[r.Intn(len(tbl.Columns))].Name
		pr := pred(col("a", cn), expr.CmpOp(r.Intn(5)), float64(r.Intn(1200)-100))
		sel := Selectivity(p, pr)
		if sel < 0 || sel > 1 {
			t.Fatalf("selectivity %v outside [0,1] for %s", sel, pr)
		}
		q := ApplySelect(p, pr)
		if q.Rows > p.Rows {
			t.Fatalf("rows grew after select: %v > %v", q.Rows, p.Rows)
		}
		for c, st := range q.Cols {
			if st.Distinct > p.Cols[c].Distinct+1e-9 {
				t.Fatalf("distinct grew for %v: %v > %v", c, st.Distinct, p.Cols[c].Distinct)
			}
			if st.Distinct > q.Rows+1e-9 {
				t.Fatalf("distinct %v exceeds rows %v", st.Distinct, q.Rows)
			}
		}
	}
}

func TestPropsCloneIsDeep(t *testing.T) {
	p := BaseProps(testTable(), "a")
	q := p.Clone()
	q.Cols[col("a", "grp")] = ColStats{Distinct: 1}
	if p.Cols[col("a", "grp")].Distinct == 1 {
		t.Error("Clone shares the column map")
	}
}

func TestColumnListSorted(t *testing.T) {
	p := BaseProps(testTable(), "a")
	cols := p.ColumnList()
	for i := 1; i < len(cols); i++ {
		if !cols[i-1].Less(cols[i]) {
			t.Fatalf("ColumnList not sorted at %d: %v", i, cols)
		}
	}
}
