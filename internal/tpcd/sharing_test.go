package tpcd

import (
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/logical"
	"repro/internal/volcano"
)

func optimize(t *testing.T, b *logical.Batch) *volcano.Optimizer {
	t.Helper()
	opt, err := volcano.NewOptimizer(Catalog(1), cost.Default(), b)
	if err != nil {
		t.Fatal(err)
	}
	return opt
}

func single(q *logical.Query) *logical.Batch {
	b := &logical.Batch{}
	b.Add(q)
	return b
}

func TestQ15SharesLineitemSlice(t *testing.T) {
	opt := optimize(t, single(Q15()))
	found := false
	for _, id := range opt.Shareable() {
		g := opt.Memo.Group(id)
		if g.Leaf && g.BasePred {
			found = true
		}
	}
	if !found {
		t.Error("Q15's σ(lineitem) slice should be shareable (used by both view references)")
	}
	r := core.Run(opt, core.MarginalGreedy)
	if r.Benefit <= 0 {
		t.Error("Q15 internal sharing produced no benefit")
	}
}

func TestQ2InnerOuterShareJoin(t *testing.T) {
	opt := optimize(t, single(Q2()))
	// The partsupp⋈supplier⋈nation⋈σ(region) subset must be consumed by
	// both the outer block and the nested block.
	shared := 0
	for _, id := range opt.Shareable() {
		g := opt.Memo.Group(id)
		if !g.Leaf && len(g.Consumers) >= 2 {
			shared++
		}
	}
	if shared == 0 {
		t.Error("Q2 has no shared join groups between inner and outer blocks")
	}
	r := core.Run(opt, core.MarginalGreedy)
	if r.Benefit <= 0 {
		t.Error("Q2 correlated-subquery sharing produced no benefit")
	}
}

func TestQ2DBatchSharesMore(t *testing.T) {
	// Q2-D (the decorrelated batch) exposes the whole inner aggregate for
	// sharing, so its MQO benefit must be at least Q2's.
	q2 := core.Run(optimize(t, single(Q2())), core.MarginalGreedy)
	q2d := core.Run(optimize(t, Q2D()), core.MarginalGreedy)
	if q2d.Benefit < q2.Benefit {
		t.Errorf("Q2-D benefit %.0f below Q2 benefit %.0f", q2d.Benefit, q2.Benefit)
	}
}

func TestBQPairsShareAcrossVariants(t *testing.T) {
	// Within every repeated-query pair the expensive core join must unify:
	// at least one non-leaf shareable group per batch.
	for i := 1; i <= 6; i++ {
		opt := optimize(t, BQ(i))
		nonLeaf := 0
		for _, id := range opt.Shareable() {
			if !opt.Memo.Group(id).Leaf {
				nonLeaf++
			}
		}
		if nonLeaf == 0 {
			t.Errorf("BQ%d: no shareable join/aggregate groups", i)
		}
	}
}

func TestBQ6MonotoneVolcanoCost(t *testing.T) {
	// More queries cost more without sharing.
	prev := 0.0
	for i := 1; i <= 6; i++ {
		opt := optimize(t, BQ(i))
		c := opt.VolcanoCost()
		if c <= prev {
			t.Errorf("BQ%d Volcano cost %v not above BQ%d's %v", i, c, i-1, prev)
		}
		prev = c
	}
}

func TestSubsumptionPairQ10(t *testing.T) {
	// Q10's variants differ by an orderdate lower bound, so the stricter
	// selection must be derivable from the looser one.
	b := &logical.Batch{}
	b.Add(Q10(VariantA))
	b.Add(Q10(VariantB))
	opt := optimize(t, b)
	v := core.Run(opt, core.Volcano)
	g := core.Run(opt, core.Greedy)
	if g.Cost >= v.Cost {
		t.Errorf("Q10 pair: no benefit (%.0f vs %.0f)", g.Cost, v.Cost)
	}
}

func TestGreedyGainsInPaperRange(t *testing.T) {
	// The paper reports Greedy beating Volcano by up to 57%; our shape
	// check: every batch gains at least 20%, none gains more than 70%.
	for i := 1; i <= 6; i++ {
		opt := optimize(t, BQ(i))
		v := core.Run(opt, core.Volcano)
		g := core.Run(opt, core.Greedy)
		gain := (v.Cost - g.Cost) / v.Cost
		if gain < 0.20 || gain > 0.70 {
			t.Errorf("BQ%d Greedy gain %.0f%% outside the expected 20–70%% band", i, gain*100)
		}
	}
}

func TestMarginalGreedyMaterializesAtLeastAsMany(t *testing.T) {
	// The paper's qualitative observation: MarginalGreedy picks more,
	// moderate-benefit nodes.
	for i := 2; i <= 6; i++ {
		opt := optimize(t, BQ(i))
		g := core.Run(opt, core.Greedy)
		m := core.Run(opt, core.MarginalGreedy)
		if len(m.Materialized) < len(g.Materialized) {
			t.Errorf("BQ%d: MarginalGreedy materialized %d < Greedy's %d",
				i, len(m.Materialized), len(g.Materialized))
		}
	}
}
