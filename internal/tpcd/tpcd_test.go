package tpcd

import (
	"testing"

	"repro/internal/cost"
	"repro/internal/logical"
	"repro/internal/volcano"
)

func TestCatalogSizes(t *testing.T) {
	cat := Catalog(1)
	gb := cat.TotalBytes() / (1 << 30)
	if gb < 0.7 || gb > 1.5 {
		t.Errorf("SF1 total size = %.2f GB, want ≈ 1 GB", gb)
	}
	cat100 := Catalog(100)
	gb100 := cat100.TotalBytes() / (1 << 30)
	if gb100 < 70 || gb100 > 150 {
		t.Errorf("SF100 total size = %.2f GB, want ≈ 100 GB", gb100)
	}
	for _, tbl := range cat.Tables() {
		if _, ok := tbl.ClusteredIndex(); !ok {
			t.Errorf("table %s lacks a clustered index", tbl.Name)
		}
	}
}

func TestAllQueriesValidate(t *testing.T) {
	cat := Catalog(1)
	var all []*logical.Query
	for _, mk := range []func(Variant) *logical.Query{Q3, Q5, Q7, Q8, Q9, Q10} {
		all = append(all, mk(VariantA), mk(VariantB))
	}
	all = append(all, Q2(), Q11(), Q15())
	for _, q := range all {
		if err := q.Validate(cat); err != nil {
			t.Errorf("%s: %v", q.Name, err)
		}
	}
	for _, q := range Q2D().Queries {
		if err := q.Validate(cat); err != nil {
			t.Errorf("%s: %v", q.Name, err)
		}
	}
}

func TestBatchesBuild(t *testing.T) {
	cat := Catalog(1)
	model := cost.Default()
	for i := 1; i <= 6; i++ {
		opt, err := volcano.NewOptimizer(cat, model, BQ(i))
		if err != nil {
			t.Fatalf("BQ%d: %v", i, err)
		}
		sh := opt.Shareable()
		if len(sh) == 0 {
			t.Errorf("BQ%d: no shareable nodes", i)
		}
		t.Logf("BQ%d: %d groups, %d exprs, %d shareable",
			i, opt.Memo.NumGroups(), opt.Memo.NumExprs(), len(sh))
	}
	for _, w := range StandAlone() {
		opt, err := volcano.NewOptimizer(cat, model, w.Batch)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		t.Logf("%s: %d groups, %d exprs, %d shareable",
			w.Name, opt.Memo.NumGroups(), opt.Memo.NumExprs(), len(opt.Shareable()))
	}
}
