package tpcd

// Schema-shape helpers consumed by the synthetic workload generator
// (internal/workload): the foreign-key join graph of the TPCD schema and,
// per table, the columns that make sensible selection predicates together
// with their value ranges. Everything here is static metadata derived from
// the Catalog definition in schema.go; the slices returned are freshly
// allocated and safe to mutate.

// JoinEdge is one joinable foreign-key relationship between two tables.
// Cols lists the equated column pairs — one pair for simple keys, two for
// the composite lineitem↔partsupp (partkey, suppkey) relationship.
type JoinEdge struct {
	Left, Right string      // table names
	Cols        [][2]string // column pairs, Cols[i][0] on Left, Cols[i][1] on Right
}

// JoinEdges returns the foreign-key join graph of the TPCD schema in a
// fixed, deterministic order. Edges are undirected: generators may traverse
// them from either side.
func JoinEdges() []JoinEdge {
	return []JoinEdge{
		{Left: "lineitem", Right: "orders", Cols: [][2]string{{"orderkey", "orderkey"}}},
		{Left: "lineitem", Right: "part", Cols: [][2]string{{"partkey", "partkey"}}},
		{Left: "lineitem", Right: "supplier", Cols: [][2]string{{"suppkey", "suppkey"}}},
		{Left: "lineitem", Right: "partsupp", Cols: [][2]string{{"partkey", "partkey"}, {"suppkey", "suppkey"}}},
		{Left: "orders", Right: "customer", Cols: [][2]string{{"custkey", "custkey"}}},
		{Left: "customer", Right: "nation", Cols: [][2]string{{"nationkey", "nationkey"}}},
		{Left: "supplier", Right: "nation", Cols: [][2]string{{"nationkey", "nationkey"}}},
		{Left: "partsupp", Right: "part", Cols: [][2]string{{"partkey", "partkey"}}},
		{Left: "partsupp", Right: "supplier", Cols: [][2]string{{"suppkey", "suppkey"}}},
		{Left: "nation", Right: "region", Cols: [][2]string{{"regionkey", "regionkey"}}},
	}
}

// EdgeBetween returns the join edge connecting two tables (in either
// orientation), or false if the schema has none.
func EdgeBetween(a, b string) (JoinEdge, bool) {
	for _, e := range JoinEdges() {
		if (e.Left == a && e.Right == b) || (e.Left == b && e.Right == a) {
			return e, true
		}
	}
	return JoinEdge{}, false
}

// FilterKind says how a filter column is usually constrained.
type FilterKind int

// Filter kinds.
const (
	// FilterEq is an equality selection on a low-cardinality column
	// (mktsegment = 3).
	FilterEq FilterKind = iota
	// FilterRange is a half-open range selection on an ordered column
	// (orderdate < 1100).
	FilterRange
)

// FilterColumn is a column suitable for a selection predicate in generated
// workloads, with the value range selection constants should fall in.
type FilterColumn struct {
	Column   string
	Kind     FilterKind
	Min, Max float64
}

// FilterColumns returns, for each TPCD table, the columns the workload
// generator draws selection predicates from, in a fixed order (the first
// entry is the table's default filter). Tables absent from the map (none
// today) have no sensible filter column.
func FilterColumns() map[string][]FilterColumn {
	return map[string][]FilterColumn{
		"lineitem": {
			{Column: "shipdate", Kind: FilterRange, Min: ShipDateMin, Max: ShipDateMax},
			{Column: "quantity", Kind: FilterRange, Min: 1, Max: 50},
			{Column: "returnflag", Kind: FilterEq, Min: 0, Max: 2},
		},
		"orders": {
			{Column: "orderdate", Kind: FilterRange, Min: OrderDateMin, Max: OrderDateMax},
			{Column: "orderpriority", Kind: FilterEq, Min: 0, Max: 4},
		},
		"customer": {
			{Column: "mktsegment", Kind: FilterEq, Min: 0, Max: 4},
			{Column: "acctbal", Kind: FilterRange, Min: -1000, Max: 10000},
		},
		"part": {
			{Column: "size", Kind: FilterRange, Min: 1, Max: 50},
			{Column: "brand", Kind: FilterEq, Min: 0, Max: 24},
			{Column: "type", Kind: FilterEq, Min: 0, Max: 149},
		},
		"supplier": {
			{Column: "acctbal", Kind: FilterRange, Min: -1000, Max: 10000},
		},
		"partsupp": {
			{Column: "availqty", Kind: FilterRange, Min: 1, Max: 9999},
		},
		"nation": {
			{Column: "name", Kind: FilterEq, Min: 0, Max: 24},
		},
		"region": {
			{Column: "name", Kind: FilterEq, Min: 0, Max: 4},
		},
	}
}
