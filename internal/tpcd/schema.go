// Package tpcd defines the TPCD (TPC-D/TPC-H) workload used in the paper's
// experimental section: the eight-table schema with standard cardinalities
// scaled by a scale factor (SF 1 ≈ 1 GB total, SF 100 ≈ 100 GB), clustered
// primary-key indexes on every base relation, structurally faithful
// analogues of the queries the paper uses (Q2, Q2-D, Q3, Q5, Q7, Q8, Q9,
// Q10, Q11, Q15), and the batched composites BQ1–BQ6 (each of
// Q3/Q5/Q7/Q8/Q9/Q10 repeated twice with a different selection constant).
//
// Beyond the paper's fixed workloads, the package exports the schema-shape
// metadata that the synthetic workload generator (internal/workload) builds
// arbitrary-size batches from: the foreign-key join graph (JoinEdges,
// EdgeBetween) and per-table filterable columns with their value ranges
// (FilterColumns). See schemainfo.go.
package tpcd

import "repro/internal/catalog"

// Date constants: dates are days since 1992-01-01; the TPC-D order/ship
// date ranges span about 2 406 and 2 526 days respectively.
const (
	OrderDateMin = 0
	OrderDateMax = 2405
	ShipDateMin  = 0
	ShipDateMax  = 2525
)

// Catalog builds the TPCD catalog at the given scale factor with clustered
// primary-key indexes on all base relations, as in the paper's setup.
func Catalog(sf float64) *catalog.Catalog {
	if sf <= 0 {
		sf = 1
	}
	cat := catalog.New()
	ci := func(col string) []catalog.Index {
		return []catalog.Index{{Column: col, Clustered: true}}
	}

	cat.MustAddTable(&catalog.Table{
		Name: "region", Rows: 5,
		Columns: []catalog.Column{
			{Name: "regionkey", Type: catalog.Int, Width: 8, Distinct: 5, Min: 0, Max: 4},
			{Name: "name", Type: catalog.String, Width: 25, Distinct: 5, Min: 0, Max: 4},
			{Name: "comment", Type: catalog.String, Width: 152, Distinct: 5, Min: 0, Max: 4},
		},
		Indexes: ci("regionkey"),
	})

	cat.MustAddTable(&catalog.Table{
		Name: "nation", Rows: 25,
		Columns: []catalog.Column{
			{Name: "nationkey", Type: catalog.Int, Width: 8, Distinct: 25, Min: 0, Max: 24},
			{Name: "regionkey", Type: catalog.Int, Width: 8, Distinct: 5, Min: 0, Max: 4},
			{Name: "name", Type: catalog.String, Width: 25, Distinct: 25, Min: 0, Max: 24},
			{Name: "comment", Type: catalog.String, Width: 152, Distinct: 25, Min: 0, Max: 24},
		},
		Indexes: ci("nationkey"),
	})

	supRows := 10000 * sf
	cat.MustAddTable(&catalog.Table{
		Name: "supplier", Rows: supRows,
		Columns: []catalog.Column{
			{Name: "suppkey", Type: catalog.Int, Width: 8, Distinct: supRows, Min: 0, Max: supRows},
			{Name: "name", Type: catalog.String, Width: 25, Distinct: supRows, Min: 0, Max: supRows},
			{Name: "address", Type: catalog.String, Width: 40, Distinct: supRows, Min: 0, Max: supRows},
			{Name: "nationkey", Type: catalog.Int, Width: 8, Distinct: 25, Min: 0, Max: 24},
			{Name: "phone", Type: catalog.String, Width: 15, Distinct: supRows, Min: 0, Max: supRows},
			{Name: "acctbal", Type: catalog.Float, Width: 8, Distinct: supRows, Min: -1000, Max: 10000},
			{Name: "comment", Type: catalog.String, Width: 101, Distinct: supRows, Min: 0, Max: supRows},
		},
		Indexes: ci("suppkey"),
	})

	custRows := 150000 * sf
	cat.MustAddTable(&catalog.Table{
		Name: "customer", Rows: custRows,
		Columns: []catalog.Column{
			{Name: "custkey", Type: catalog.Int, Width: 8, Distinct: custRows, Min: 0, Max: custRows},
			{Name: "name", Type: catalog.String, Width: 25, Distinct: custRows, Min: 0, Max: custRows},
			{Name: "address", Type: catalog.String, Width: 40, Distinct: custRows, Min: 0, Max: custRows},
			{Name: "nationkey", Type: catalog.Int, Width: 8, Distinct: 25, Min: 0, Max: 24},
			{Name: "phone", Type: catalog.String, Width: 15, Distinct: custRows, Min: 0, Max: custRows},
			{Name: "acctbal", Type: catalog.Float, Width: 8, Distinct: custRows, Min: -1000, Max: 10000},
			{Name: "mktsegment", Type: catalog.Int, Width: 10, Distinct: 5, Min: 0, Max: 4},
			{Name: "comment", Type: catalog.String, Width: 117, Distinct: custRows, Min: 0, Max: custRows},
		},
		Indexes: ci("custkey"),
	})

	partRows := 200000 * sf
	cat.MustAddTable(&catalog.Table{
		Name: "part", Rows: partRows,
		Columns: []catalog.Column{
			{Name: "partkey", Type: catalog.Int, Width: 8, Distinct: partRows, Min: 0, Max: partRows},
			{Name: "name", Type: catalog.String, Width: 55, Distinct: partRows, Min: 0, Max: partRows},
			{Name: "mfgr", Type: catalog.Int, Width: 25, Distinct: 5, Min: 0, Max: 4},
			{Name: "brand", Type: catalog.Int, Width: 10, Distinct: 25, Min: 0, Max: 24},
			{Name: "type", Type: catalog.Int, Width: 25, Distinct: 150, Min: 0, Max: 149},
			{Name: "size", Type: catalog.Int, Width: 8, Distinct: 50, Min: 1, Max: 50},
			{Name: "container", Type: catalog.Int, Width: 10, Distinct: 40, Min: 0, Max: 39},
			{Name: "retailprice", Type: catalog.Float, Width: 8, Distinct: partRows, Min: 900, Max: 2100},
			{Name: "comment", Type: catalog.String, Width: 23, Distinct: partRows, Min: 0, Max: partRows},
		},
		Indexes: ci("partkey"),
	})

	psRows := 800000 * sf
	cat.MustAddTable(&catalog.Table{
		Name: "partsupp", Rows: psRows,
		Columns: []catalog.Column{
			{Name: "partkey", Type: catalog.Int, Width: 8, Distinct: partRows, Min: 0, Max: partRows},
			{Name: "suppkey", Type: catalog.Int, Width: 8, Distinct: supRows, Min: 0, Max: supRows},
			{Name: "availqty", Type: catalog.Int, Width: 8, Distinct: 9999, Min: 1, Max: 9999},
			{Name: "supplycost", Type: catalog.Float, Width: 8, Distinct: 100000, Min: 1, Max: 1000},
			{Name: "comment", Type: catalog.String, Width: 124, Distinct: psRows, Min: 0, Max: psRows},
		},
		Indexes: ci("partkey"),
	})

	ordRows := 1500000 * sf
	cat.MustAddTable(&catalog.Table{
		Name: "orders", Rows: ordRows,
		Columns: []catalog.Column{
			{Name: "orderkey", Type: catalog.Int, Width: 8, Distinct: ordRows, Min: 0, Max: ordRows * 4},
			{Name: "custkey", Type: catalog.Int, Width: 8, Distinct: custRows, Min: 0, Max: custRows},
			{Name: "orderstatus", Type: catalog.Int, Width: 1, Distinct: 3, Min: 0, Max: 2},
			{Name: "totalprice", Type: catalog.Float, Width: 8, Distinct: ordRows, Min: 800, Max: 560000},
			{Name: "orderdate", Type: catalog.Date, Width: 8, Distinct: OrderDateMax + 1, Min: OrderDateMin, Max: OrderDateMax},
			{Name: "orderpriority", Type: catalog.Int, Width: 15, Distinct: 5, Min: 0, Max: 4},
			{Name: "clerk", Type: catalog.Int, Width: 15, Distinct: 1000 * sf, Min: 0, Max: 1000 * sf},
			{Name: "shippriority", Type: catalog.Int, Width: 8, Distinct: 1, Min: 0, Max: 0},
			{Name: "comment", Type: catalog.String, Width: 49, Distinct: ordRows, Min: 0, Max: ordRows},
		},
		Indexes: ci("orderkey"),
	})

	liRows := 6000000 * sf
	cat.MustAddTable(&catalog.Table{
		Name: "lineitem", Rows: liRows,
		Columns: []catalog.Column{
			{Name: "orderkey", Type: catalog.Int, Width: 8, Distinct: ordRows, Min: 0, Max: ordRows * 4},
			{Name: "partkey", Type: catalog.Int, Width: 8, Distinct: partRows, Min: 0, Max: partRows},
			{Name: "suppkey", Type: catalog.Int, Width: 8, Distinct: supRows, Min: 0, Max: supRows},
			{Name: "linenumber", Type: catalog.Int, Width: 8, Distinct: 7, Min: 1, Max: 7},
			{Name: "quantity", Type: catalog.Int, Width: 8, Distinct: 50, Min: 1, Max: 50},
			{Name: "extendedprice", Type: catalog.Float, Width: 8, Distinct: liRows, Min: 900, Max: 105000},
			{Name: "discount", Type: catalog.Float, Width: 8, Distinct: 11, Min: 0, Max: 0.1},
			{Name: "tax", Type: catalog.Float, Width: 8, Distinct: 9, Min: 0, Max: 0.08},
			{Name: "returnflag", Type: catalog.Int, Width: 1, Distinct: 3, Min: 0, Max: 2},
			{Name: "linestatus", Type: catalog.Int, Width: 1, Distinct: 2, Min: 0, Max: 1},
			{Name: "shipdate", Type: catalog.Date, Width: 8, Distinct: ShipDateMax + 1, Min: ShipDateMin, Max: ShipDateMax},
			{Name: "commitdate", Type: catalog.Date, Width: 8, Distinct: ShipDateMax + 1, Min: ShipDateMin, Max: ShipDateMax},
			{Name: "receiptdate", Type: catalog.Date, Width: 8, Distinct: ShipDateMax + 1, Min: ShipDateMin, Max: ShipDateMax},
			{Name: "shipinstruct", Type: catalog.Int, Width: 25, Distinct: 4, Min: 0, Max: 3},
			{Name: "shipmode", Type: catalog.Int, Width: 10, Distinct: 7, Min: 0, Max: 6},
			{Name: "comment", Type: catalog.String, Width: 27, Distinct: liRows, Min: 0, Max: liRows},
		},
		Indexes: ci("orderkey"),
	})

	return cat
}
