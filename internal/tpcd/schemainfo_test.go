package tpcd

import "testing"

// TestJoinEdgesMatchCatalog: every edge of the exported foreign-key graph
// must reference existing tables and columns of the TPCD catalog.
func TestJoinEdgesMatchCatalog(t *testing.T) {
	cat := Catalog(1)
	for _, e := range JoinEdges() {
		lt, ok := cat.Table(e.Left)
		if !ok {
			t.Fatalf("edge %s–%s: unknown table %s", e.Left, e.Right, e.Left)
		}
		rt, ok := cat.Table(e.Right)
		if !ok {
			t.Fatalf("edge %s–%s: unknown table %s", e.Left, e.Right, e.Right)
		}
		if len(e.Cols) == 0 {
			t.Errorf("edge %s–%s has no column pairs", e.Left, e.Right)
		}
		for _, cols := range e.Cols {
			if _, ok := lt.Column(cols[0]); !ok {
				t.Errorf("edge %s–%s: %s has no column %s", e.Left, e.Right, e.Left, cols[0])
			}
			if _, ok := rt.Column(cols[1]); !ok {
				t.Errorf("edge %s–%s: %s has no column %s", e.Left, e.Right, e.Right, cols[1])
			}
		}
		for _, pair := range [][2]string{{e.Left, e.Right}, {e.Right, e.Left}} {
			if _, ok := EdgeBetween(pair[0], pair[1]); !ok {
				t.Errorf("EdgeBetween(%s, %s) lost the edge", pair[0], pair[1])
			}
		}
	}
	if _, ok := EdgeBetween("region", "lineitem"); ok {
		t.Error("EdgeBetween invented a region–lineitem edge")
	}
}

// TestFilterColumnsMatchCatalog: filter columns must exist and their
// advertised constant ranges must lie within the catalog statistics, so
// generated predicates are never trivially empty or always-true.
func TestFilterColumnsMatchCatalog(t *testing.T) {
	cat := Catalog(1)
	for table, fcs := range FilterColumns() {
		tab, ok := cat.Table(table)
		if !ok {
			t.Fatalf("filter columns for unknown table %s", table)
		}
		if len(fcs) == 0 {
			t.Errorf("table %s has an empty filter-column list", table)
		}
		for _, fc := range fcs {
			col, ok := tab.Column(fc.Column)
			if !ok {
				t.Errorf("table %s has no column %s", table, fc.Column)
				continue
			}
			if fc.Min > fc.Max {
				t.Errorf("%s.%s: min %v > max %v", table, fc.Column, fc.Min, fc.Max)
			}
			if fc.Min < col.Min || fc.Max > col.Max {
				t.Errorf("%s.%s: filter range [%v,%v] outside catalog range [%v,%v]",
					table, fc.Column, fc.Min, fc.Max, col.Min, col.Max)
			}
		}
	}
}
