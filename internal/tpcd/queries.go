package tpcd

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/logical"
)

// Variant selects the selection constants for a batched query; the paper
// repeats every batched query twice with different constants for one
// selection, which is what makes the select-subsumption sharing arise.
type Variant int

// Variants.
const (
	VariantA Variant = iota
	VariantB
)

// Q3 is the shipping-priority query: customer ⋈ orders ⋈ lineitem with a
// market-segment selection and date bounds, aggregating revenue by order
// date. The variant changes the market-segment constant, so the expensive
// σ(orders)⋈σ(lineitem) subexpression is identical across the pair.
func Q3(v Variant) *logical.Query {
	seg := 1.0
	if v == VariantB {
		seg = 2
	}
	return logical.NewBlock().
		Scan("customer", "c").Scan("orders", "o").Scan("lineitem", "l").
		Cmp("c.mktsegment", expr.EQ, seg).
		Cmp("o.orderdate", expr.LT, 1100).
		Cmp("l.shipdate", expr.GT, 1200).
		Join("c.custkey", "o.custkey").
		Join("o.orderkey", "l.orderkey").
		GroupBy("o.orderdate").Sum("l.extendedprice").
		Query(fmt.Sprintf("Q3%s", suffix(v)))
}

// Q5 is the local-supplier-volume query over six relations; the variant
// changes the region, leaving the customer⋈orders⋈lineitem⋈supplier core
// shared.
func Q5(v Variant) *logical.Query {
	region := 2.0
	if v == VariantB {
		region = 3
	}
	return logical.NewBlock().
		Scan("customer", "c").Scan("orders", "o").Scan("lineitem", "l").
		Scan("supplier", "s").Scan("nation", "n").Scan("region", "r").
		Cmp("r.name", expr.EQ, region).
		Cmp("o.orderdate", expr.GE, 300).
		Join("c.custkey", "o.custkey").
		Join("o.orderkey", "l.orderkey").
		Join("l.suppkey", "s.suppkey").
		Join("c.nationkey", "s.nationkey").
		Join("s.nationkey", "n.nationkey").
		Join("n.regionkey", "r.regionkey").
		GroupBy("n.name").Sum("l.extendedprice").
		Query(fmt.Sprintf("Q5%s", suffix(v)))
}

// Q7 is the volume-shipping query with two nation occurrences (a
// self-join); the variant changes the customer-side nation, leaving the
// supplier⋈lineitem⋈orders⋈customer core shared.
func Q7(v Variant) *logical.Query {
	cnation := 8.0
	if v == VariantB {
		cnation = 9
	}
	return logical.NewBlock().
		Scan("supplier", "s").Scan("lineitem", "l").Scan("orders", "o").
		Scan("customer", "c").Scan("nation", "n1").Scan("nation", "n2").
		Cmp("n1.name", expr.EQ, 7).
		Cmp("n2.name", expr.EQ, cnation).
		Cmp("l.shipdate", expr.LT, 1500).
		Join("s.suppkey", "l.suppkey").
		Join("o.orderkey", "l.orderkey").
		Join("c.custkey", "o.custkey").
		Join("s.nationkey", "n1.nationkey").
		Join("c.nationkey", "n2.nationkey").
		GroupBy("l.shipdate").Sum("l.extendedprice").
		Query(fmt.Sprintf("Q7%s", suffix(v)))
}

// Q8 is the national-market-share query over seven relations; the variant
// changes the part type selection.
func Q8(v Variant) *logical.Query {
	ptype := 10.0
	if v == VariantB {
		ptype = 20
	}
	return logical.NewBlock().
		Scan("part", "p").Scan("lineitem", "l").Scan("supplier", "s").
		Scan("orders", "o").Scan("customer", "c").Scan("nation", "n").Scan("region", "r").
		Cmp("p.type", expr.EQ, ptype).
		Cmp("r.name", expr.EQ, 2).
		Join("p.partkey", "l.partkey").
		Join("s.suppkey", "l.suppkey").
		Join("l.orderkey", "o.orderkey").
		Join("o.custkey", "c.custkey").
		Join("c.nationkey", "n.nationkey").
		Join("n.regionkey", "r.regionkey").
		GroupBy("o.orderdate").Sum("l.extendedprice").
		Query(fmt.Sprintf("Q8%s", suffix(v)))
}

// Q9 is the product-type-profit query; the variant changes the part brand.
func Q9(v Variant) *logical.Query {
	brand := 5.0
	if v == VariantB {
		brand = 6
	}
	return logical.NewBlock().
		Scan("part", "p").Scan("supplier", "s").Scan("lineitem", "l").
		Scan("partsupp", "ps").Scan("orders", "o").Scan("nation", "n").
		Cmp("p.brand", expr.EQ, brand).
		Join("p.partkey", "l.partkey").
		Join("s.suppkey", "l.suppkey").
		Join("ps.partkey", "l.partkey").
		Join("ps.suppkey", "l.suppkey").
		Join("o.orderkey", "l.orderkey").
		Join("s.nationkey", "n.nationkey").
		GroupBy("n.name").Sum("l.extendedprice").
		Query(fmt.Sprintf("Q9%s", suffix(v)))
}

// Q10 is the returned-item-reporting query; the variant changes the
// orderdate lower bound.
func Q10(v Variant) *logical.Query {
	lo := 700.0
	if v == VariantB {
		lo = 400
	}
	return logical.NewBlock().
		Scan("customer", "c").Scan("orders", "o").Scan("lineitem", "l").Scan("nation", "n").
		Cmp("o.orderdate", expr.GE, lo).
		Cmp("l.returnflag", expr.EQ, 2).
		Join("c.custkey", "o.custkey").
		Join("o.orderkey", "l.orderkey").
		Join("c.nationkey", "n.nationkey").
		GroupBy("n.name").Sum("l.extendedprice").
		Query(fmt.Sprintf("Q10%s", suffix(v)))
}

func suffix(v Variant) string {
	if v == VariantA {
		return "a"
	}
	return "b"
}

// minCostInner is the nested block of Q2: the minimum supply cost per part
// among suppliers of one region — the subexpression whose repeated
// (correlated) evaluation benefits from reuse.
func minCostInner() *logical.Block {
	return logical.NewBlock().
		Scan("partsupp", "ps").Scan("supplier", "s").Scan("nation", "n").Scan("region", "r").
		Cmp("r.name", expr.EQ, 2).
		Join("ps.suppkey", "s.suppkey").
		Join("s.nationkey", "n.nationkey").
		Join("n.regionkey", "r.regionkey").
		GroupBy("ps.partkey").Min("ps.supplycost").
		Build()
}

// Q2 is the minimum-cost-supplier query: a large nested query whose inner
// block (partsupp⋈supplier⋈nation⋈σregion aggregated per part) shares the
// partsupp⋈supplier⋈nation⋈σregion subexpression with the outer block —
// the internal common subexpression the paper exploits for a single
// complex query.
func Q2() *logical.Query {
	return logical.NewBlock().
		Scan("part", "p").Scan("partsupp", "ps").Scan("supplier", "s").
		Scan("nation", "n").Scan("region", "r").
		Derived(minCostInner(), "mc").
		Cmp("p.size", expr.EQ, 15).
		Cmp("r.name", expr.EQ, 2).
		Join("p.partkey", "ps.partkey").
		Join("ps.suppkey", "s.suppkey").
		Join("s.nationkey", "n.nationkey").
		Join("n.regionkey", "r.regionkey").
		Join("ps.partkey", "mc.partkey").
		Query("Q2")
}

// Q2D is the (manually) decorrelated version of Q2: per the paper it is a
// batch of queries — the decorrelated inner aggregate runs as its own
// query, and the outer query consumes the same inner block, so the whole
// inner result is shareable across the batch.
func Q2D() *logical.Batch {
	inner := &logical.Query{Name: "Q2D-inner", Root: minCostInner()}
	outer := Q2()
	outer.Name = "Q2D-outer"
	b := &logical.Batch{}
	b.Add(inner)
	b.Add(outer)
	return b
}

// Q11 is the important-stock-identification query: two aggregations over
// the same partsupp⋈supplier⋈σnation join (per-part value vs. the
// threshold), i.e. a single query whose two derived blocks share an
// expensive subexpression.
func Q11() *logical.Query {
	base := func() *logical.BlockBuilder {
		return logical.NewBlock().
			Scan("partsupp", "ps").Scan("supplier", "s").Scan("nation", "n").
			Cmp("n.name", expr.EQ, 7).
			Join("ps.suppkey", "s.suppkey").
			Join("s.nationkey", "n.nationkey")
	}
	value := base().GroupBy("ps.partkey").Sum("ps.supplycost").Build()
	qty := base().GroupBy("ps.partkey").Sum("ps.availqty").Build()
	return logical.NewBlock().
		Derived(value, "v").
		Derived(qty, "q").
		Join("v.partkey", "q.partkey").
		Query("Q11")
}

// Q15 is the top-supplier query: the revenue view (an aggregation over a
// shipdate slice of lineitem) is referenced twice, so the σ(lineitem)
// slice and the view computation are shareable within the single query.
func Q15() *logical.Query {
	revenue := func() *logical.BlockBuilder {
		return logical.NewBlock().
			Scan("lineitem", "l").
			Cmp("l.shipdate", expr.GE, 2200).
			GroupBy("l.suppkey")
	}
	rev := revenue().Sum("l.extendedprice").Build()
	cnt := revenue().Count().Build()
	return logical.NewBlock().
		Scan("supplier", "s").
		Derived(rev, "r").
		Derived(cnt, "x").
		Join("s.suppkey", "r.suppkey").
		Join("r.suppkey", "x.suppkey").
		Query("Q15")
}

// BQ returns the i-th batched composite (1 ≤ i ≤ 6): the first i of
// Q3, Q5, Q7, Q8, Q9, Q10, each repeated with its two variants.
func BQ(i int) *logical.Batch {
	if i < 1 {
		i = 1
	}
	if i > 6 {
		i = 6
	}
	makers := []func(Variant) *logical.Query{Q3, Q5, Q7, Q8, Q9, Q10}
	b := &logical.Batch{}
	for q := 0; q < i; q++ {
		b.Add(makers[q](VariantA))
		b.Add(makers[q](VariantB))
	}
	return b
}

// StandAlone returns the Experiment 2 workloads keyed by name.
func StandAlone() []struct {
	Name  string
	Batch *logical.Batch
} {
	single := func(q *logical.Query) *logical.Batch {
		b := &logical.Batch{}
		b.Add(q)
		return b
	}
	return []struct {
		Name  string
		Batch *logical.Batch
	}{
		{"Q2", single(Q2())},
		{"Q2-D", Q2D()},
		{"Q11", single(Q11())},
		{"Q15", single(Q15())},
	}
}
