package tpcd

import (
	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/logical"
)

// ExampleOneInstance reproduces Example 1 of the paper: a batch of two
// queries (A⋈B⋈C) and (B⋈C⋈D) whose locally optimal plans share nothing,
// while a consolidated plan that materializes the common subexpression
// σ(B)⋈C is globally cheaper. The paper's illustration uses unit costs
// (460 vs 370); this instance scales the same structure to the Section 6
// cost model: both queries select the same slice of B, so σ(B)⋈C is an
// expensive-to-compute, cheap-to-store shared node.
func ExampleOneInstance() (*catalog.Catalog, *logical.Batch) {
	cat := catalog.New()
	mk := func(name string, rows float64, joinCols ...string) {
		cols := []catalog.Column{{Name: "id", Type: catalog.Int, Width: 8, Distinct: rows, Min: 0, Max: rows}}
		for _, jc := range joinCols {
			cols = append(cols, catalog.Column{Name: jc, Type: catalog.Int, Width: 8, Distinct: rows / 10, Min: 0, Max: rows})
		}
		cols = append(cols,
			catalog.Column{Name: "val", Type: catalog.Int, Width: 8, Distinct: 1000, Min: 0, Max: 1000},
			catalog.Column{Name: "payload", Type: catalog.String, Width: 64, Distinct: rows, Min: 0, Max: rows})
		cat.MustAddTable(&catalog.Table{Name: name, Rows: rows, Columns: cols})
	}
	mk("A", 50000, "b_id")
	mk("B", 200000, "c_id")
	mk("C", 200000, "d_id")
	mk("D", 50000)

	q1 := logical.NewBlock().
		Scan("A", "a").Scan("B", "b").Scan("C", "c").
		Cmp("b.val", expr.LT, 100).
		Join("a.b_id", "b.id").
		Join("b.c_id", "c.id").
		Query("Q1(A⋈σB⋈C)")
	q2 := logical.NewBlock().
		Scan("B", "b").Scan("C", "c").Scan("D", "d").
		Cmp("b.val", expr.LT, 100).
		Join("b.c_id", "c.id").
		Join("c.d_id", "d.id").
		Query("Q2(σB⋈C⋈D)")
	batch := &logical.Batch{}
	batch.Add(q1)
	batch.Add(q2)
	return cat, batch
}
