// Package volcano is the optimizer facade: it builds and expands the
// combined AND-OR DAG for a batch of queries and exposes the black-box
// bestCost(Q, S) oracle and consolidated-plan extraction that the MQO
// algorithms (internal/core) are written against. The name follows the
// Volcano/Cascades framework the paper targets.
package volcano

import (
	"context"

	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/logical"
	"repro/internal/memo"
	"repro/internal/physical"
)

// Optimizer is the multi-query optimizer state for one batch.
type Optimizer struct {
	Memo     *memo.Memo
	Searcher *physical.Searcher
}

// NewOptimizer builds and fully expands the combined DAG for the batch.
// Options are forwarded to memo.Build (rule ablations).
func NewOptimizer(cat *catalog.Catalog, model cost.Model, batch *logical.Batch, opts ...memo.Option) (*Optimizer, error) {
	m, err := memo.Build(cat, model, batch, opts...)
	if err != nil {
		return nil, err
	}
	return &Optimizer{Memo: m, Searcher: physical.NewSearcher(m)}, nil
}

// NewNodeSet returns a materialization set over this optimizer's shareable
// nodes containing the given groups.
func (o *Optimizer) NewNodeSet(ids ...memo.GroupID) physical.NodeSet {
	return o.Searcher.NewNodeSet(ids...)
}

// BestCost is bc(S): the cost of the optimal consolidated plan given that
// exactly the nodes of S are materialized (including the cost of computing
// and writing them).
func (o *Optimizer) BestCost(s physical.NodeSet) float64 {
	return o.Searcher.BestCost(s)
}

// BestCostBatch evaluates bc(S) for many sets concurrently; results are
// bit-identical to sequential BestCost calls in input order.
func (o *Optimizer) BestCostBatch(sets []physical.NodeSet) []float64 {
	return o.Searcher.BestCostBatch(sets)
}

// BestCostBatchCtx is BestCostBatch under a context: once ctx is cancelled
// no further evaluation starts, ok is false and the completed prefix of
// the costs is returned — exact values a caller may commit (see
// physical.Searcher.BestCostBatchCtx). The session API routes its
// cancellation and time budgets through this path.
func (o *Optimizer) BestCostBatchCtx(ctx context.Context, sets []physical.NodeSet) ([]float64, bool) {
	return o.Searcher.BestCostBatchCtx(ctx, sets)
}

// BestUseCost is buc(S): the optimal plan cost when S is already
// materialized for free.
func (o *Optimizer) BestUseCost(s physical.NodeSet) float64 {
	return o.Searcher.BestUseCost(s)
}

// VolcanoCost is the stand-alone Volcano cost: every query optimized
// independently with no sharing, bc(∅).
func (o *Optimizer) VolcanoCost() float64 {
	return o.Searcher.BestCost(physical.NodeSet{})
}

// Shareable returns the candidate nodes for materialization.
func (o *Optimizer) Shareable() []memo.GroupID {
	return o.Memo.Shareable()
}

// Plan extracts the optimal consolidated plan for the materialization set.
func (o *Optimizer) Plan(s physical.NodeSet) *physical.ConsolidatedPlan {
	return o.Searcher.BestPlan(s)
}

// BCCalls returns the number of bestCost oracle invocations so far.
func (o *Optimizer) BCCalls() int { return o.Searcher.BCCalls }

// SetIncremental toggles the cross-call incremental cost cache
// (Section 5.1); used by ablation benchmarks.
func (o *Optimizer) SetIncremental(on bool) {
	o.Searcher.Incremental = on
	if !on {
		o.Searcher.ClearCache()
	}
}

// SetExtendedOps toggles the optional hash join / hash aggregation
// operators (outside the paper's rule set); the cost cache is cleared
// because cached costs depend on the operator set.
func (o *Optimizer) SetExtendedOps(on bool) {
	o.Searcher.ExtendedOps = on
	o.Searcher.ClearCache()
}
