package volcano

import (
	"testing"

	"repro/internal/cost"
	"repro/internal/physical"
	"repro/internal/tpcd"
)

func TestNewOptimizerRejectsBadBatch(t *testing.T) {
	cat := tpcd.Catalog(1)
	if _, err := NewOptimizer(cat, cost.Default(), nil); err == nil {
		t.Error("nil batch accepted")
	}
}

func TestVolcanoCostIsEmptySetCost(t *testing.T) {
	opt, err := NewOptimizer(tpcd.Catalog(1), cost.Default(), tpcd.BQ(1))
	if err != nil {
		t.Fatal(err)
	}
	if opt.VolcanoCost() != opt.BestCost(physical.NodeSet{}) {
		t.Error("VolcanoCost != bc(∅)")
	}
}

func TestBCCallsCount(t *testing.T) {
	opt, err := NewOptimizer(tpcd.Catalog(1), cost.Default(), tpcd.BQ(1))
	if err != nil {
		t.Fatal(err)
	}
	before := opt.BCCalls()
	opt.BestCost(physical.NodeSet{})
	opt.BestCost(physical.NodeSet{})
	if got := opt.BCCalls() - before; got != 2 {
		t.Errorf("BCCalls delta = %d, want 2", got)
	}
}

func TestSetIncrementalToggle(t *testing.T) {
	opt, err := NewOptimizer(tpcd.Catalog(1), cost.Default(), tpcd.BQ(2))
	if err != nil {
		t.Fatal(err)
	}
	sh := opt.Shareable()
	if len(sh) == 0 {
		t.Fatal("no shareable nodes")
	}
	warm := opt.BestCost(opt.NewNodeSet(sh[0]))
	opt.SetIncremental(false)
	cold := opt.BestCost(opt.NewNodeSet(sh[0]))
	if warm != cold {
		t.Errorf("incremental %v != cold %v", warm, cold)
	}
	opt.SetIncremental(true)
	again := opt.BestCost(opt.NewNodeSet(sh[0]))
	if again != warm {
		t.Errorf("re-enabled %v != warm %v", again, warm)
	}
}

func TestPlanForEveryWorkload(t *testing.T) {
	cat := tpcd.Catalog(1)
	for _, w := range tpcd.StandAlone() {
		opt, err := NewOptimizer(cat, cost.Default(), w.Batch)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		plan := opt.Plan(physical.NodeSet{})
		if len(plan.Queries) != len(w.Batch.Queries) {
			t.Errorf("%s: %d query plans for %d queries", w.Name, len(plan.Queries), len(w.Batch.Queries))
		}
		if plan.Total != opt.VolcanoCost() {
			t.Errorf("%s: plan total %v != volcano cost %v", w.Name, plan.Total, opt.VolcanoCost())
		}
		if plan.String() == "" {
			t.Errorf("%s: empty plan rendering", w.Name)
		}
	}
}
