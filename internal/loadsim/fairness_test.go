package loadsim

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/server"
)

// result is the slice of an optimize response the fairness gate audits:
// the final result (bit-identity) and the scheduling counters.
type result struct {
	Materialized []int   `json:"materialized"`
	CostMS       float64 `json:"cost_ms"`
	Preemptions  int     `json:"preemptions"`
	Telemetry    struct {
		Stopped string `json:"stopped"`
	} `json:"telemetry"`
}

func bulkLoad() TenantLoad {
	s := simSpec()
	s.Seed = 31
	s.Queries = 48
	return TenantLoad{Tenant: "bulk", Concurrency: 16, Spec: s, Strategy: "greedy"}
}

func interactiveLoad() TenantLoad {
	s := simSpec()
	s.Seed = 13
	s.Queries = 12
	return TenantLoad{Tenant: "slo", RatePerSec: 18, Spec: s, DeadlineMS: 1000}
}

// schedServer builds one serving target with the given policy over a
// single shared worker slot — the contended regime the gate measures.
func schedServer(policy string) *httptest.Server {
	return httptest.NewServer(server.New(server.Config{
		DefaultTenant: server.TenantConfig{MaxConcurrent: 8, QueueDepth: 64, QueueWaitMS: 60000},
		Sched:         server.SchedConfig{Slots: 1, Policy: policy},
	}).Handler())
}

// solo posts one tenant-load-shaped request to an idle server and returns
// the decoded result and the observed latency — the per-tenant solo
// reference the slowdown accounting normalizes against.
func solo(t *testing.T, url string, l TenantLoad) (*result, float64) {
	t.Helper()
	body, err := buildBody(l, l.Spec.Seed)
	if err != nil {
		t.Fatal(err)
	}
	var out result
	var latencyMS float64
	// Three rounds: the first pays the cold session cache, the last is
	// the steady-state latency the loaded runs are compared against.
	for i := 0; i < 3; i++ {
		t0 := time.Now()
		resp, err := http.Post(url+"/v1/optimize", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("solo %s: status %d: %s", l.Tenant, resp.StatusCode, data)
		}
		latencyMS = float64(time.Since(t0)) / float64(time.Millisecond)
		out = result{}
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatal(err)
		}
	}
	return &out, latencyMS
}

// sameResult is bit-identity over the audited slice: same materialization
// set, same cost float.
func sameResult(a, b *result) bool {
	if len(a.Materialized) != len(b.Materialized) || a.CostMS != b.CostMS {
		return false
	}
	for i := range a.Materialized {
		if a.Materialized[i] != b.Materialized[i] {
			return false
		}
	}
	return true
}

// replay runs the seeded contention trace against one policy's server and
// returns the report plus every bulk response body's decoded result.
func replay(t *testing.T, tr *Trace, url string) (*Report, []*result) {
	t.Helper()
	var bulkResults []*result
	rep, err := Run(context.Background(), tr, RunConfig{
		BaseURL: url, TimeScale: 1, MaxInFlight: 32,
		Observer: func(tenant string, status int, body []byte) {
			if tenant != "bulk" || status != 200 {
				return
			}
			var r result
			if json.Unmarshal(body, &r) == nil {
				bulkResults = append(bulkResults, &r)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep, bulkResults
}

// TestSchedFairnessGate is the CI fairness/latency gate: one seeded
// two-tenant contention trace — closed-loop bulk greedy runs saturating a
// single worker slot, open-loop interactive arrivals with an SLO deadline
// — replayed against a FIFO baseline and against the DRR scheduler with
// deadline-aware preemption. The gate holds the scheduler to the paper's
// serving claims:
//
//   - interactive p99 under DRR improves ≥ 3× over FIFO on the same trace
//     and stays under an absolute bound;
//   - preemptions actually happen (and FIFO reports none);
//   - Jain's index over inverse slowdowns (solo latency / observed median)
//     stays ≥ 0.9 — latency relief is not bought by starving bulk;
//   - every preempted-and-resumed bulk response is bit-identical to the
//     unloaded reference run.
func TestSchedFairnessGate(t *testing.T) {
	if testing.Short() {
		t.Skip("fairness gate measures wall-clock latency; skipped under -short")
	}
	tr, err := GenTrace(TraceConfig{
		Seed:     97,
		Duration: 2 * time.Second,
		Tenants:  []TenantLoad{bulkLoad(), interactiveLoad()},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Solo references on an idle DRR server: per-tenant unloaded latency
	// and the bulk result every loaded response must reproduce.
	refSrv := schedServer(server.PolicyDRR)
	bulkRef, bulkSoloMS := solo(t, refSrv.URL, bulkLoad())
	_, sloSoloMS := solo(t, refSrv.URL, interactiveLoad())
	refSrv.Close()

	fifoSrv := schedServer(server.PolicyFIFO)
	fifoRep, fifoBulk := replay(t, tr, fifoSrv.URL)
	fifoSrv.Close()

	drrSrv := schedServer(server.PolicyDRR)
	drrRep, drrBulk := replay(t, tr, drrSrv.URL)
	drrSrv.Close()

	for _, rep := range []*Report{fifoRep, drrRep} {
		if rep.Failed != 0 || rep.Rejected != 0 {
			t.Fatalf("replay lost requests: %+v", rep.StatusCounts)
		}
		if rep.ByTenant["slo"] == nil || rep.ByTenant["slo"].Requests == 0 {
			t.Fatal("trace produced no interactive arrivals")
		}
	}

	fifoP99 := fifoRep.ByTenant["slo"].P99MS
	drrP99 := drrRep.ByTenant["slo"].P99MS
	t.Logf("solo: bulk=%.1fms slo=%.1fms", bulkSoloMS, sloSoloMS)
	t.Logf("slo: n=%d/%d p50 fifo=%.1fms drr=%.1fms | p99 fifo=%.1fms drr=%.1fms (%.1fx); preemptions fifo=%d drr=%d",
		fifoRep.ByTenant["slo"].Requests, drrRep.ByTenant["slo"].Requests,
		fifoRep.ByTenant["slo"].P50MS, drrRep.ByTenant["slo"].P50MS,
		fifoP99, drrP99, fifoP99/drrP99, fifoRep.Preemptions, drrRep.Preemptions)
	t.Logf("bulk: n=%d/%d p50 fifo=%.1fms drr=%.1fms",
		fifoRep.ByTenant["bulk"].Requests, drrRep.ByTenant["bulk"].Requests,
		fifoRep.ByTenant["bulk"].P50MS, drrRep.ByTenant["bulk"].P50MS)

	// Latency: the pinned absolute bound and the ≥3× relief over FIFO.
	const p99BoundMS = 300
	if drrP99 > p99BoundMS {
		t.Errorf("interactive p99 under DRR = %.1fms, above the %dms bound", drrP99, p99BoundMS)
	}
	if drrP99*3 > fifoP99 {
		t.Errorf("interactive p99: drr=%.1fms fifo=%.1fms — want ≥ 3x improvement", drrP99, fifoP99)
	}

	// Preemption: the mechanism must actually fire under DRR, and must not
	// exist under the FIFO baseline.
	if drrRep.Preemptions == 0 {
		t.Error("DRR replay reports zero preemptions; the deadline traffic never suspended a bulk run")
	}
	if fifoRep.Preemptions != 0 {
		t.Errorf("FIFO replay reports %d preemptions, want 0", fifoRep.Preemptions)
	}

	// Fairness: inverse slowdowns (solo / observed median) across tenants.
	slowdowns := []float64{
		bulkSoloMS / drrRep.ByTenant["bulk"].P50MS,
		sloSoloMS / drrRep.ByTenant["slo"].P50MS,
	}
	if jain := JainIndex(slowdowns); jain < 0.9 {
		t.Errorf("Jain index over inverse slowdowns = %.3f (%v), want ≥ 0.9", jain, slowdowns)
	} else {
		t.Logf("jain=%.3f inverse slowdowns=%v", jain, slowdowns)
	}

	// Bit-identity: preemption must never change an answer. Every bulk
	// response from both replays reproduces the unloaded reference.
	for label, results := range map[string][]*result{"fifo": fifoBulk, "drr": drrBulk} {
		if len(results) == 0 {
			t.Fatalf("%s replay captured no bulk responses", label)
		}
		for i, r := range results {
			if r.Telemetry.Stopped != "none" {
				t.Errorf("%s bulk response %d stopped with %q, want a completed run", label, i, r.Telemetry.Stopped)
				continue
			}
			if !sameResult(r, bulkRef) {
				t.Errorf("%s bulk response %d (preemptions=%d) diverged from the solo reference", label, i, r.Preemptions)
			}
		}
	}
}
