package loadsim

import (
	"context"
	"net/http/httptest"
	"reflect"
	"sort"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/server"
	"repro/internal/workload"
)

func simSpec() workload.Spec {
	return workload.Spec{
		Seed:       7,
		Queries:    6,
		Shape:      workload.Mixed,
		FanOut:     4,
		Sharing:    0.5,
		SelectFrac: 0.8,
		AggFrac:    0.5,
	}
}

func openLoop(tenant string, rate, amp float64) TenantLoad {
	return TenantLoad{Tenant: tenant, RatePerSec: rate, DiurnalAmp: amp, Spec: simSpec()}
}

// TestGenTraceDeterministic: the trace is a pure function of its config —
// same seed, identical events and summary; different seed, a different
// trace. This is the property the CI determinism row replays.
func TestGenTraceDeterministic(t *testing.T) {
	cfg := TraceConfig{
		Seed:     42,
		Duration: 10 * time.Second,
		Tenants: []TenantLoad{
			openLoop("acme", 4, 0.5),
			openLoop("globex", 2, 0),
			{Tenant: "looper", Concurrency: 2, ThinkMS: 10, Spec: simSpec()},
		},
	}
	a, err := GenTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Events, b.Events) {
		t.Fatal("same seed generated different events")
	}
	if a.Summary() != b.Summary() {
		t.Fatalf("same seed, different summaries:\n%s\nvs\n%s", a.Summary(), b.Summary())
	}
	if len(a.Events) == 0 {
		t.Fatal("trace has no arrivals")
	}
	if !sort.SliceIsSorted(a.Events, func(i, j int) bool { return a.Events[i].At < a.Events[j].At }) {
		t.Error("events are not time-sorted")
	}
	for _, e := range a.Events {
		if e.At < 0 || e.At >= cfg.Duration {
			t.Fatalf("event at %v outside [0, %v)", e.At, cfg.Duration)
		}
		if len(e.Body) == 0 || e.Key == "" {
			t.Fatalf("event missing body or key: %+v", e)
		}
	}
	if len(a.Closed) != 1 || a.Closed[0].Key != "looper|sf=1" {
		t.Errorf("closed loops = %+v", a.Closed)
	}

	cfg.Seed = 43
	c, err := GenTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Error("different seeds generated identical traces")
	}

	// Varying seeds changes bodies request-to-request, deterministically.
	cfg.Seed = 42
	cfg.Tenants[0].VarySeeds = true
	d, err := GenTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bodies := make(map[string]bool)
	for _, e := range d.Events {
		if e.Tenant == "acme" {
			bodies[string(e.Body)] = true
		}
	}
	if len(bodies) < 2 {
		t.Errorf("VarySeeds produced %d distinct bodies", len(bodies))
	}
}

// TestGenTraceValidation: malformed configs are errors, not panics.
func TestGenTraceValidation(t *testing.T) {
	base := TraceConfig{Seed: 1, Duration: time.Second, Tenants: []TenantLoad{openLoop("t", 1, 0)}}
	for name, mutate := range map[string]func(*TraceConfig){
		"no duration":        func(c *TraceConfig) { c.Duration = 0 },
		"no tenants":         func(c *TraceConfig) { c.Tenants = nil },
		"unnamed tenant":     func(c *TraceConfig) { c.Tenants[0].Tenant = "" },
		"both loops":         func(c *TraceConfig) { c.Tenants[0].Concurrency = 2 },
		"neither loop":       func(c *TraceConfig) { c.Tenants[0].RatePerSec = 0 },
		"diurnal amp ≥ 1":    func(c *TraceConfig) { c.Tenants[0].DiurnalAmp = 1 },
		"negative amplitude": func(c *TraceConfig) { c.Tenants[0].DiurnalAmp = -0.1 },
	} {
		cfg := base
		cfg.Tenants = append([]TenantLoad(nil), base.Tenants...)
		mutate(&cfg)
		if _, err := GenTrace(cfg); err == nil {
			t.Errorf("%s: GenTrace accepted the config", name)
		}
	}
}

// TestRunAgainstSingleServer: a replay against a bare server (no router)
// completes every arrival, counts oracle calls, attributes everything to
// the "direct" pseudo-replica, and drives closed loops when paced.
func TestRunAgainstSingleServer(t *testing.T) {
	srv := server.New(server.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	tr, err := GenTrace(TraceConfig{
		Seed:     11,
		Duration: 2 * time.Second,
		Tenants: []TenantLoad{
			openLoop("acme", 10, 0.5),
			{Tenant: "looper", Concurrency: 2, Spec: simSpec()},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// TimeScale 40 compresses the 2s trace into ~50ms so the closed-loop
	// workers get real wall clock to run in.
	rep, err := Run(context.Background(), tr, RunConfig{
		BaseURL: ts.URL, TimeScale: 40, MaxInFlight: 8, ScrapeStats: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests < len(tr.Events) {
		t.Errorf("replayed %d requests, trace has %d arrivals", rep.Requests, len(tr.Events))
	}
	if rep.Failed != 0 || rep.Rejected != 0 {
		t.Errorf("failures against a healthy server: %+v", rep.StatusCounts)
	}
	if rep.Goodput != rep.Requests {
		t.Errorf("goodput %d != requests %d", rep.Goodput, rep.Requests)
	}
	if rep.OracleCalls == 0 {
		t.Error("no oracle calls counted")
	}
	aff, home := rep.Affinity("acme|sf=1")
	if aff != 1 || home != "direct" {
		t.Errorf("direct-server affinity = (%v, %s), want (1, direct)", aff, home)
	}
	if n := rep.ByKeyReplica["looper|sf=1"]["direct"]; n == 0 {
		t.Error("closed-loop workers sent nothing")
	}
	if len(rep.StatsBody) == 0 {
		t.Error("stats scrape came back empty")
	}
	if rep.P50MS <= 0 || rep.P99MS < rep.P50MS || rep.P999MS < rep.P99MS {
		t.Errorf("percentiles look wrong: p50=%v p99=%v p999=%v", rep.P50MS, rep.P99MS, rep.P999MS)
	}
}

// TestRunRouterChurnZeroFailures is the churn acceptance gate: a replica
// killed mid-trace loses zero requests — the router reroutes its keys to
// their deterministic fallback and the replay's goodput equals its
// request count.
func TestRunRouterChurnZeroFailures(t *testing.T) {
	var servers []*httptest.Server
	var urls []string
	for i := 0; i < 3; i++ {
		ts := httptest.NewServer(server.New(server.Config{}).Handler())
		defer ts.Close()
		servers = append(servers, ts)
		urls = append(urls, ts.URL)
	}
	rt, err := cluster.NewRouter(cluster.RouterConfig{Replicas: urls})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	tr, err := GenTrace(TraceConfig{
		Seed:     5,
		Duration: 2 * time.Second,
		Tenants:  []TenantLoad{openLoop("churn", 15, 0), openLoop("steady", 10, 0)},
	})
	if err != nil {
		t.Fatal(err)
	}
	home := rt.Ring().Owner("churn|sf=1")
	kill := func() {
		for i, u := range urls {
			if u == home {
				servers[i].Close()
			}
		}
	}
	// A sequential replay keeps every placement under the bounded-load
	// capacity, so any non-home replica in the result is a reroute caused
	// by the kill, not load shedding.
	rep, err := Run(context.Background(), tr, RunConfig{
		BaseURL:     front.URL,
		MaxInFlight: 1,
		Hooks:       []Hook{{At: tr.Cfg.Duration / 2, Fn: kill}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != len(tr.Events) {
		t.Errorf("replayed %d, trace has %d", rep.Requests, len(tr.Events))
	}
	if rep.Failed != 0 || rep.Rejected != 0 {
		t.Fatalf("replica kill lost requests: %+v", rep.StatusCounts)
	}
	if rep.Goodput != rep.Requests {
		t.Fatalf("goodput %d != requests %d after churn", rep.Goodput, rep.Requests)
	}
	// The churn key was served by its home and then its fallback — and by
	// nothing else.
	fallback := rt.Ring().Order("churn|sf=1")[1]
	for rep2 := range rep.ByKeyReplica["churn|sf=1"] {
		if rep2 != home && rep2 != fallback {
			t.Errorf("churn key served by %s, want only %s or %s", rep2, home, fallback)
		}
	}
	if rep.ByKeyReplica["churn|sf=1"][fallback] == 0 {
		t.Error("no churn-key requests reached the fallback after the kill")
	}
	// Unaffected keys keep perfect affinity unless they lived on the
	// killed replica too.
	if aff, h := rep.Affinity("steady|sf=1"); h != home && aff != 1 {
		t.Errorf("steady key affinity = (%v, %s) though its home survived", aff, h)
	}
}
