// Package loadsim is a discrete-event load generator for the serving
// tier: it turns a seeded multi-tenant traffic description into a
// replayable trace and drives that trace against a router or a single
// server over the public HTTP API.
//
// # Traces
//
// GenTrace expands a TraceConfig into arrivals. Open-loop tenants get a
// non-homogeneous Poisson process (rate modulated by a diurnal sinusoid,
// sampled by thinning) whose every arrival time and request body is a
// pure function of the config — same seed, byte-identical trace, which is
// what makes chaos runs reproducible and lets CI pin Trace.Summary
// output. Closed-loop tenants are carried as worker specs: Concurrency
// workers each send, wait, think, repeat, so their request count depends
// on observed latency (by design — that is what a closed loop measures).
//
// # Replay
//
// Run plays a trace at a configurable TimeScale (0 = as fast as the
// in-flight cap allows, preserving arrival order but not pacing) and
// reports: goodput and rejection/failure counts, latency percentiles
// (p50/p99/p999), summed oracle calls, and — per tenant-catalog key —
// which replica served each request, read from the router's
// X-MQO-Replica header. Hooks fire at chosen virtual times, which is how
// tests kill or drain a replica mid-trace at a reproducible point and
// then assert zero failed requests.
package loadsim
