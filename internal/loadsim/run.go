package loadsim

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// Hook runs Fn when the replay's virtual clock passes At — the mechanism
// chaos tests use to kill or drain a replica mid-trace at a reproducible
// point.
type Hook struct {
	At time.Duration
	Fn func()
}

// RunConfig parameterizes a replay.
type RunConfig struct {
	// BaseURL is the target — a router or a single server; the simulator
	// speaks only the public HTTP API, so it cannot tell which.
	BaseURL string
	// Client overrides the HTTP client (nil: a dedicated default client).
	Client *http.Client
	// TimeScale compresses virtual time: 2 plays a trace twice as fast
	// as real time, 0 plays it as fast as the in-flight cap allows
	// (arrival *order* is still the trace's, so replays stay comparable).
	TimeScale float64
	// MaxInFlight caps concurrent requests (default 16).
	MaxInFlight int
	// ScrapeStats fetches BaseURL/v1/stats after the replay into
	// Report.StatsBody, capturing per-replica warmth (cache entries, hit
	// rates) next to the load-side numbers.
	ScrapeStats bool
	// Observer, when non-nil, receives every response as it is folded into
	// the report: the tenant, the HTTP status (0 for a transport error) and
	// the raw body (nil on transport errors). It runs under the report
	// lock, so implementations must not call back into the runner. The
	// fairness harness uses it to capture bodies for bit-identity audits.
	Observer func(tenant string, status int, body []byte)
	Hooks    []Hook
}

// TenantReport is one tenant's slice of a replay measurement.
type TenantReport struct {
	Requests int
	Goodput  int
	Rejected int
	Failed   int
	// Latency percentiles over this tenant's requests, milliseconds.
	P50MS, P99MS float64
	// OracleCalls and Preemptions sum over this tenant's 200 responses.
	OracleCalls int
	Preemptions int

	latencies []float64
}

// Report is what a replay measured.
type Report struct {
	// Requests counts everything sent; Goodput the 200s; Rejected the
	// 4xx (admission doing its job); Failed the 5xx and transport errors.
	Requests int
	Goodput  int
	Rejected int
	Failed   int
	// StatusCounts maps HTTP status (0 = transport error) to count.
	StatusCounts map[int]int
	// Latency percentiles over all requests, milliseconds.
	P50MS, P99MS, P999MS float64
	// ElapsedMS is the replay wall clock; GoodputRPS = Goodput/elapsed.
	ElapsedMS  float64
	GoodputRPS float64
	// OracleCalls sums the oracle calls of every 200 response.
	OracleCalls int
	// Preemptions sums the preemption counts of every 200 response: how
	// often the server suspended-and-resumed runs to serve nearer-deadline
	// work during the replay.
	Preemptions int
	// ByTenant breaks the measurement down per X-Tenant attribution.
	ByTenant map[string]*TenantReport
	// ByKeyReplica counts, per tenant-catalog key, which replica served
	// each request (from X-MQO-Replica; "direct" when absent — a bare
	// server, no router).
	ByKeyReplica map[string]map[string]int
	// StatsBody is the target's /v1/stats document, when scraped.
	StatsBody json.RawMessage `json:"-"`
}

// Affinity returns the largest single-replica share of a key's requests
// (1 = perfect affinity), and the replica holding it.
func (r *Report) Affinity(key string) (float64, string) {
	reps := r.ByKeyReplica[key]
	total, best, bestRep := 0, 0, ""
	for rep, n := range reps {
		total += n
		if n > best {
			best, bestRep = n, rep
		}
	}
	if total == 0 {
		return 0, ""
	}
	return float64(best) / float64(total), bestRep
}

// String renders the report for the experiments command.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "requests=%d goodput=%d rejected=%d failed=%d\n", r.Requests, r.Goodput, r.Rejected, r.Failed)
	fmt.Fprintf(&b, "latency p50=%.2fms p99=%.2fms p999=%.2fms  goodput=%.1f req/s  oracle_calls=%d\n",
		r.P50MS, r.P99MS, r.P999MS, r.GoodputRPS, r.OracleCalls)
	keys := make([]string, 0, len(r.ByKeyReplica))
	for k := range r.ByKeyReplica {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		aff, rep := r.Affinity(k)
		fmt.Fprintf(&b, "  %-24s affinity=%.0f%% home=%s\n", k, 100*aff, rep)
	}
	return b.String()
}

// outcome is one request's result, folded into the report under a lock.
type outcome struct {
	key         string
	tenant      string
	status      int
	replica     string
	latencyMS   float64
	calls       int
	preemptions int
	body        []byte
}

// runner carries the shared replay state.
type runner struct {
	cfg    RunConfig
	client *http.Client
	sem    chan struct{}

	mu        sync.Mutex
	latencies []float64
	report    *Report
}

// Run replays a trace against cfg.BaseURL: open-loop events at their
// (time-scaled) arrival times, closed-loop workers for the trace's
// virtual duration. Cancelling ctx stops the replay early; what was
// measured so far is still reported.
func Run(ctx context.Context, tr *Trace, cfg RunConfig) (*Report, error) {
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 16
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	r := &runner{
		cfg:    cfg,
		client: client,
		sem:    make(chan struct{}, cfg.MaxInFlight),
		report: &Report{
			StatusCounts: make(map[int]int),
			ByKeyReplica: make(map[string]map[string]int),
			ByTenant:     make(map[string]*TenantReport),
		},
	}
	hooks := append([]Hook(nil), cfg.Hooks...)
	sort.SliceStable(hooks, func(a, b int) bool { return hooks[a].At < hooks[b].At })

	start := time.Now()
	virtual := func() time.Duration {
		if cfg.TimeScale <= 0 {
			return tr.Cfg.Duration // no pacing: hooks fire by event order
		}
		return time.Duration(float64(time.Since(start)) * cfg.TimeScale)
	}
	var wg sync.WaitGroup

	// Closed-loop workers run for the whole virtual duration.
	loopCtx, stopLoops := context.WithCancel(ctx)
	defer stopLoops()
	for li, cl := range tr.Closed {
		for w := 0; w < cl.Load.Concurrency; w++ {
			wg.Add(1)
			go func(li, w int, cl ClosedLoop) {
				defer wg.Done()
				seq := int64(0)
				for loopCtx.Err() == nil && virtual() < tr.Cfg.Duration {
					seed := cl.Load.Spec.Seed
					if cl.Load.VarySeeds {
						seed = tr.Cfg.Seed + int64(li)*1_000_003 + int64(w)*7919 + seq
					}
					body, err := buildBody(cl.Load, seed)
					if err != nil {
						return
					}
					r.send(loopCtx, cl.Load.Tenant, cl.Key, body)
					seq++
					if cl.Load.ThinkMS > 0 && cfg.TimeScale > 0 {
						think := time.Duration(float64(cl.Load.ThinkMS)*float64(time.Millisecond)) / time.Duration(cfg.TimeScale)
						select {
						case <-loopCtx.Done():
						case <-time.After(think):
						}
					}
				}
			}(li, w, cl)
		}
	}

	// Open-loop events fire at their scaled arrival times; hooks fire as
	// the virtual clock passes them (with TimeScale 0, before the first
	// event at or after their timestamp — order is preserved, pacing not).
	nextHook := 0
	for _, ev := range tr.Events {
		if ctx.Err() != nil {
			break
		}
		for nextHook < len(hooks) && hooks[nextHook].At <= ev.At {
			if cfg.TimeScale > 0 {
				r.sleepUntil(ctx, start, hooks[nextHook].At, cfg.TimeScale)
			}
			hooks[nextHook].Fn()
			nextHook++
		}
		if cfg.TimeScale > 0 {
			r.sleepUntil(ctx, start, ev.At, cfg.TimeScale)
		}
		wg.Add(1)
		go func(ev Event) {
			defer wg.Done()
			r.send(ctx, ev.Tenant, ev.Key, ev.Body)
		}(ev)
	}
	// Let in-flight work and closed loops finish, then any trailing
	// hooks. Closed-loop workers stop on their own once the virtual clock
	// passes the duration — cancelling them here would abort their last
	// in-flight request and miscount it as a transport failure.
	if cfg.TimeScale > 0 {
		r.sleepUntil(ctx, start, tr.Cfg.Duration, cfg.TimeScale)
	}
	wg.Wait()
	for ; nextHook < len(hooks); nextHook++ {
		hooks[nextHook].Fn()
	}

	rep := r.report
	rep.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
	if rep.ElapsedMS > 0 {
		rep.GoodputRPS = float64(rep.Goodput) / (rep.ElapsedMS / 1000)
	}
	sort.Float64s(r.latencies)
	rep.P50MS = percentile(r.latencies, 0.50)
	rep.P99MS = percentile(r.latencies, 0.99)
	rep.P999MS = percentile(r.latencies, 0.999)
	for _, tr := range rep.ByTenant {
		sort.Float64s(tr.latencies)
		tr.P50MS = percentile(tr.latencies, 0.50)
		tr.P99MS = percentile(tr.latencies, 0.99)
	}
	if cfg.ScrapeStats {
		if resp, err := client.Get(cfg.BaseURL + "/v1/stats"); err == nil {
			data, rerr := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
			resp.Body.Close()
			if rerr == nil && json.Valid(data) {
				rep.StatsBody = data
			}
		}
	}
	return rep, ctx.Err()
}

// sleepUntil waits until virtual time at (scaled) has passed.
func (r *runner) sleepUntil(ctx context.Context, start time.Time, at time.Duration, scale float64) {
	real := start.Add(time.Duration(float64(at) / scale))
	if d := time.Until(real); d > 0 {
		select {
		case <-ctx.Done():
		case <-time.After(d):
		}
	}
}

// send issues one request and folds its outcome into the report.
func (r *runner) send(ctx context.Context, tenant, key string, body []byte) {
	select {
	case r.sem <- struct{}{}:
		defer func() { <-r.sem }()
	case <-ctx.Done():
		return
	}
	t0 := time.Now()
	o := outcome{key: key, tenant: tenant, latencyMS: 0}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, r.cfg.BaseURL+"/v1/optimize", bytes.NewReader(body))
	if err == nil {
		req.Header.Set("X-Tenant", tenant)
		req.Header.Set("Content-Type", "application/json")
		var resp *http.Response
		if resp, err = r.client.Do(req); err == nil {
			data, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			o.status = resp.StatusCode
			o.replica = resp.Header.Get("X-MQO-Replica")
			o.body = data
			if o.status == http.StatusOK {
				var tele struct {
					Telemetry struct {
						OracleCalls int `json:"oracle_calls"`
					} `json:"telemetry"`
					Preemptions int `json:"preemptions"`
				}
				if json.Unmarshal(data, &tele) == nil {
					o.calls = tele.Telemetry.OracleCalls
					o.preemptions = tele.Preemptions
				}
			}
		}
	}
	if o.replica == "" {
		o.replica = "direct"
	}
	o.latencyMS = float64(time.Since(t0)) / float64(time.Millisecond)

	r.mu.Lock()
	defer r.mu.Unlock()
	rep := r.report
	tr := rep.ByTenant[o.tenant]
	if tr == nil {
		tr = &TenantReport{}
		rep.ByTenant[o.tenant] = tr
	}
	rep.Requests++
	tr.Requests++
	rep.StatusCounts[o.status]++
	switch {
	case o.status == http.StatusOK:
		rep.Goodput++
		rep.OracleCalls += o.calls
		rep.Preemptions += o.preemptions
		tr.Goodput++
		tr.OracleCalls += o.calls
		tr.Preemptions += o.preemptions
	case o.status >= 400 && o.status < 500:
		rep.Rejected++
		tr.Rejected++
	default:
		rep.Failed++
		tr.Failed++
	}
	if rep.ByKeyReplica[o.key] == nil {
		rep.ByKeyReplica[o.key] = make(map[string]int)
	}
	rep.ByKeyReplica[o.key][o.replica]++
	r.latencies = append(r.latencies, o.latencyMS)
	tr.latencies = append(tr.latencies, o.latencyMS)
	if r.cfg.Observer != nil {
		r.cfg.Observer(o.tenant, o.status, o.body)
	}
}

// JainIndex is Jain's fairness index over per-tenant allocations:
// (Σx)²/(n·Σx²) — 1 when every tenant gets an equal share, approaching
// 1/n as one tenant starves the rest. The fairness gate feeds it inverse
// slowdowns (solo reference latency over observed latency), so a policy
// that serves every tenant at the same multiple of its solo latency
// scores 1 regardless of how different the tenants' demands are.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// percentile reads the q-quantile from sorted values (nearest-rank).
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
