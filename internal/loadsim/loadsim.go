package loadsim

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"time"

	"repro/internal/workload"
)

// TenantLoad describes one tenant's traffic in a trace. A tenant is
// open-loop when RatePerSec > 0 (arrivals are a seeded Poisson process,
// independent of response times — the regime that exposes queueing) and
// closed-loop when Concurrency > 0 (each of Concurrency workers issues a
// request, waits for the response, thinks, repeats — the regime that
// exposes latency). A tenant may be one or the other, not both.
type TenantLoad struct {
	// Tenant names the traffic's X-Tenant attribution.
	Tenant string
	// RatePerSec is the open-loop mean arrival rate.
	RatePerSec float64
	// DiurnalAmp in [0, 1) modulates the open-loop rate sinusoidally:
	// rate(t) = RatePerSec · (1 + DiurnalAmp·sin(2πt/period)), the
	// classic day/night swing scaled down to the trace duration.
	DiurnalAmp float64
	// Concurrency is the closed-loop worker count.
	Concurrency int
	// ThinkMS is the closed-loop pause between a response and the
	// worker's next request, in virtual milliseconds.
	ThinkMS int64
	// Spec is the request template's workload spec.
	Spec workload.Spec
	// SF and ExtendedOps select the catalog pool key (SF 0 → 1).
	SF          float64
	ExtendedOps bool
	// Strategy optionally overrides the server's default algorithm.
	Strategy string
	// CallBudget > 0 caps each request's oracle calls.
	CallBudget int
	// DeadlineMS > 0 stamps each request with a relative SLO deadline: the
	// server schedules it earliest-deadline-first and may preempt running
	// bulk work for it (see the server's scheduling contract).
	DeadlineMS int64
	// VarySeeds gives every request a distinct spec seed (derived
	// deterministically from the trace seed), so requests stop being
	// replays of one batch and the session cache must generalize.
	VarySeeds bool
}

// key is the tenant-catalog routing key this load pins, in the router's
// spelling.
func (l TenantLoad) key() string {
	sf := l.SF
	if sf <= 0 {
		sf = 1
	}
	cat := fmt.Sprintf("sf=%g", sf)
	if l.ExtendedOps {
		cat += "+hash"
	}
	return l.Tenant + "|" + cat
}

// TraceConfig parameterizes trace generation.
type TraceConfig struct {
	// Seed fixes every random choice; equal configs generate
	// byte-identical traces.
	Seed int64
	// Duration is the trace's virtual length.
	Duration time.Duration
	// DiurnalPeriod is the modulation period (default: Duration, one
	// full day compressed into the trace).
	DiurnalPeriod time.Duration
	Tenants       []TenantLoad
}

// Event is one open-loop arrival: at virtual time At, tenant Tenant sends
// Body. Key is the tenant-catalog routing key, for affinity accounting.
type Event struct {
	At     time.Duration
	Tenant string
	Key    string
	Body   []byte
}

// ClosedLoop is one tenant's closed-loop spec, carried through to Run.
type ClosedLoop struct {
	Load TenantLoad
	Key  string
}

// Trace is a generated load trace: open-loop events sorted by arrival
// time plus closed-loop specs. It is replayable — Run does not mutate it.
type Trace struct {
	Cfg    TraceConfig
	Events []Event
	Closed []ClosedLoop
}

// buildBody renders one request body. Map marshaling sorts keys, so the
// bytes are deterministic.
func buildBody(l TenantLoad, seed int64) ([]byte, error) {
	spec := l.Spec
	spec.Seed = seed
	m := map[string]any{"tenant": l.Tenant, "spec": spec}
	if l.SF > 0 {
		m["sf"] = l.SF
	}
	if l.ExtendedOps {
		m["extended_ops"] = true
	}
	if l.Strategy != "" {
		m["strategy"] = l.Strategy
	}
	if l.CallBudget > 0 {
		m["oracle_call_budget"] = l.CallBudget
	}
	if l.DeadlineMS > 0 {
		m["deadline_ms"] = l.DeadlineMS
	}
	return json.Marshal(m)
}

// GenTrace generates a trace from its config, deterministically: every
// arrival time and every request body is a pure function of cfg. Each
// tenant draws from its own rand.Source (derived from Seed and the
// tenant's position), so adding a tenant never perturbs the others'
// arrivals.
func GenTrace(cfg TraceConfig) (*Trace, error) {
	if cfg.Duration <= 0 {
		return nil, errors.New("loadsim: trace duration must be positive")
	}
	if len(cfg.Tenants) == 0 {
		return nil, errors.New("loadsim: trace needs at least one tenant")
	}
	period := cfg.DiurnalPeriod
	if period <= 0 {
		period = cfg.Duration
	}
	tr := &Trace{Cfg: cfg}
	for i, l := range cfg.Tenants {
		if l.Tenant == "" {
			return nil, fmt.Errorf("loadsim: tenant %d has no name", i)
		}
		if (l.RatePerSec > 0) == (l.Concurrency > 0) {
			return nil, fmt.Errorf("loadsim: tenant %s must be exactly one of open-loop (rate) and closed-loop (concurrency)", l.Tenant)
		}
		if l.DiurnalAmp < 0 || l.DiurnalAmp >= 1 {
			return nil, fmt.Errorf("loadsim: tenant %s: diurnal amplitude must be in [0, 1), got %v", l.Tenant, l.DiurnalAmp)
		}
		if err := l.Spec.Validate(); err != nil {
			return nil, fmt.Errorf("loadsim: tenant %s: %v", l.Tenant, err)
		}
		if l.Concurrency > 0 {
			tr.Closed = append(tr.Closed, ClosedLoop{Load: l, Key: l.key()})
			continue
		}
		// Non-homogeneous Poisson by thinning: candidate arrivals at the
		// peak rate, each kept with probability rate(t)/rateMax.
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*0x9e3779b9))
		rateMax := l.RatePerSec * (1 + l.DiurnalAmp)
		seq := int64(0)
		for t := time.Duration(0); ; {
			gap := time.Duration(rng.ExpFloat64() / rateMax * float64(time.Second))
			t += gap
			if t >= cfg.Duration {
				break
			}
			phase := 2 * math.Pi * float64(t) / float64(period)
			rate := l.RatePerSec * (1 + l.DiurnalAmp*math.Sin(phase))
			if rng.Float64()*rateMax > rate {
				continue // thinned out
			}
			seed := l.Spec.Seed
			if l.VarySeeds {
				seed = cfg.Seed + int64(i)*1_000_003 + seq
			}
			body, err := buildBody(l, seed)
			if err != nil {
				return nil, err
			}
			tr.Events = append(tr.Events, Event{At: t, Tenant: l.Tenant, Key: l.key(), Body: body})
			seq++
		}
	}
	sort.SliceStable(tr.Events, func(a, b int) bool {
		ea, eb := tr.Events[a], tr.Events[b]
		if ea.At != eb.At {
			return ea.At < eb.At
		}
		return ea.Tenant < eb.Tenant
	})
	return tr, nil
}

// Summary renders the trace's deterministic shape — per-tenant arrival
// counts and the overall envelope. Equal seeds produce byte-identical
// summaries; the CI determinism check pins exactly that.
func (tr *Trace) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace seed=%d duration=%v events=%d\n", tr.Cfg.Seed, tr.Cfg.Duration, len(tr.Events))
	counts := make(map[string]int)
	for _, e := range tr.Events {
		counts[e.Tenant]++
	}
	for _, l := range tr.Cfg.Tenants {
		if l.Concurrency > 0 {
			fmt.Fprintf(&b, "  %s: closed-loop ×%d think=%dms key=%s\n", l.Tenant, l.Concurrency, l.ThinkMS, l.key())
			continue
		}
		fmt.Fprintf(&b, "  %s: %d arrivals (rate=%g/s diurnal=%g) key=%s\n",
			l.Tenant, counts[l.Tenant], l.RatePerSec, l.DiurnalAmp, l.key())
	}
	return b.String()
}
