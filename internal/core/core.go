// Package core applies the paper's algorithms to multi-query optimization:
// it exposes the materialization-benefit function mb(S) = bc(∅) − bc(S)
// over the shareable nodes of a combined AND-OR DAG as a normalized
// submodular function, and runs the strategies compared in the paper's
// experiments — stand-alone Volcano (no MQO), the benefit Greedy of Roy et
// al., the paper's MarginalGreedy (with its Lazy variant), plus a
// materialize-everything baseline and an exhaustive optimizer for small
// instances.
//
// RunWith is the context-aware entry point: it accepts a Config carrying a
// wall-clock budget, an oracle-call budget and a progress callback, checks
// them between greedy rounds, and reports per-phase telemetry in the
// Result. Run is the budget-free shim the original one-shot API used;
// both produce bit-identical materialization sets when no budget fires.
package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/memo"
	"repro/internal/physical"
	"repro/internal/submod"
	"repro/internal/volcano"
)

// Strategy selects an MQO algorithm.
type Strategy int

// Strategies.
const (
	// Volcano performs no multi-query optimization: every query gets its
	// locally optimal plan (S = ∅).
	Volcano Strategy = iota
	// Greedy is Algorithm 1 (Roy et al. 2000): repeatedly materialize the
	// node with the largest absolute benefit.
	Greedy
	// LazyGreedyStrategy is Greedy with the Minoux heap under the
	// monotonicity heuristic.
	LazyGreedyStrategy
	// MarginalGreedy is the paper's Algorithm 2 with the Proposition 1
	// decomposition.
	MarginalGreedy
	// LazyMarginalGreedy is MarginalGreedy with the Section 5.2 heap.
	LazyMarginalGreedy
	// MaterializeAll materializes every shareable node (the heuristic the
	// paper attributes to Silva et al., noted as potentially "horribly
	// inefficient").
	MaterializeAll
	// Exhaustive enumerates all materialization sets (≤ 20 shareable
	// nodes).
	Exhaustive
	// VolcanoSH shares only subexpressions that appear in the locally
	// optimal plans (the post-optimization baseline of Subramanian &
	// Venkataraman / Roy et al.'s Volcano-SH).
	VolcanoSH
)

// nowFunc indirects time.Now for the timing bookkeeping.
var nowFunc = time.Now

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case Volcano:
		return "Volcano"
	case Greedy:
		return "Greedy"
	case LazyGreedyStrategy:
		return "LazyGreedy"
	case MarginalGreedy:
		return "MarginalGreedy"
	case LazyMarginalGreedy:
		return "LazyMarginalGreedy"
	case MaterializeAll:
		return "MaterializeAll"
	case Exhaustive:
		return "Exhaustive"
	case VolcanoSH:
		return "Volcano-SH"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Config bounds and instruments one optimization run. The zero value means
// "no budgets, no callbacks" — exactly the behavior of the original
// one-shot API.
type Config struct {
	// TimeBudget caps the wall-clock time of the run (0 = none). It is
	// enforced as a context deadline: the greedy loop stops between oracle
	// rounds, and a concurrent bestCost batch already in flight stops
	// between individual evaluations.
	TimeBudget time.Duration
	// Progress, when non-nil, receives a report after every completed
	// greedy round. It runs on the optimizing goroutine, so cancelling the
	// run's context from inside it stops the run at a deterministic round.
	Progress func(submod.Progress)
	// Parallelism, when > 0, sets the searcher's worker-pool bound before
	// the run (see physical.Searcher.Parallelism).
	Parallelism int
	// WarmOracle lets the run consume memoized mb(S) values published to
	// the attached SharedCache by earlier runs, skipping those oracle
	// calls entirely (they surface as Telemetry.SharedOracleHits). Runs
	// always *publish* their memoized values; consuming is opt-in because
	// it changes the run's call accounting — budgets, quota charges and
	// fault-injection surfaces — which cold-replay determinism (and the
	// serving tier's bit-identical-replay contract) otherwise relies on.
	// The serving tier enables it only for sessions warm-started from an
	// imported cache snapshot.
	WarmOracle bool
	// PreemptSignal, when non-nil, is polled after every completed greedy
	// round (from the same between-rounds hook as Progress). When it
	// returns true the run's context is cancelled with submod.ErrPreempted
	// as the cause, so the run stops at the round boundary with
	// Telemetry.Stopped == submod.StopPreempted and — for a resumable lazy
	// strategy — a Checkpoint that continues it bit-identically. Polling
	// only at round boundaries is what keeps Σ segment telemetry equal to
	// an unpreempted run's: a mid-batch abort would re-price the
	// interrupted round's pops on resume.
	PreemptSignal func() bool

	maxCalls    int
	hasMaxCalls bool
}

// LimitOracleCalls returns a copy of the config with an oracle-call budget
// of n memoized-distinct mb(S) evaluations; n = 0 forbids the algorithm
// any oracle call, so the strategies return the empty set. The unexported
// carrier keeps the zero-value Config unlimited.
func (c Config) LimitOracleCalls(n int) Config {
	if n < 0 {
		n = 0
	}
	c.maxCalls, c.hasMaxCalls = n, true
	return c
}

// OracleCallLimit reports the configured budget (and whether one is set).
func (c Config) OracleCallLimit() (int, bool) { return c.maxCalls, c.hasMaxCalls }

// Telemetry reports how a run spent its budget, phase by phase. The JSON
// tags are the wire contract of the serving front end (internal/server):
// durations marshal as nanoseconds, Stopped as its String form.
type Telemetry struct {
	OracleCalls  int     `json:"oracle_calls"`   // memoized-distinct mb(S) evaluations
	BCCalls      int     `json:"bc_calls"`       // bestCost invocations during the run
	CacheHits    int     `json:"cache_hits"`     // worker-private (L1) cross-call cache hits
	SharedHits   int     `json:"shared_hits"`    // SharedCache (L2) hits during the run
	ComputedKeys int     `json:"computed_keys"`  // fresh (group, order, mask) computations
	CacheHitRate float64 `json:"cache_hit_rate"` // (CacheHits+SharedHits) / (hits + ComputedKeys)
	// SharedOracleHits counts distinct mb(S) evaluations served from the
	// session SharedCache's cross-run oracle memo instead of the bestCost
	// oracle: the warm-start savings of this run. OracleCalls counts only
	// the evaluations that actually ran, so OracleCalls+SharedOracleHits is
	// what the same run would have cost against a cold cache.
	SharedOracleHits int `json:"shared_oracle_hits"`
	Rounds           int `json:"rounds"` // completed greedy rounds (selections for lazy)
	Pruned           int `json:"pruned"` // Section 5.1 permanent prunes
	// Stale counts stale-bound re-evaluations the lazy scan performed;
	// Reused counts marginals carried exactly across a selection by the
	// dirty-candidate tracking (work the scan provably avoided). Both are
	// zero for eager strategies. See submod.Result.
	Stale  int `json:"stale"`
	Reused int `json:"reused"`
	// Stopped records why the run ended early; StopNone for a complete
	// run. A stopped run's materialization set is the deterministic
	// best-so-far selection of the completed rounds.
	Stopped submod.StopReason `json:"stopped"`
	// SetupTime covers bc(∅) and, for the marginal strategies, the
	// Proposition 1 decomposition; SearchTime the greedy rounds;
	// FinalizeTime the pricing of the chosen set. They sum to TotalTime up
	// to bookkeeping noise.
	SetupTime    time.Duration `json:"setup_ns"`
	SearchTime   time.Duration `json:"search_ns"`
	FinalizeTime time.Duration `json:"finalize_ns"`
	TotalTime    time.Duration `json:"total_ns"`
}

// Result is the outcome of one MQO run.
type Result struct {
	Strategy     Strategy
	Materialized []memo.GroupID
	Set          physical.NodeSet // the chosen materialization set
	Cost         float64          // bc(S), milliseconds
	VolcanoCost  float64          // bc(∅), milliseconds
	Benefit      float64          // mb(S)
	OptTime      time.Duration
	OracleCalls  int       // memoized-distinct bestCost evaluations
	Telemetry    Telemetry // per-phase accounting and stop reason
	// Checkpoint, set when a resumable lazy strategy stopped early, is the
	// round-boundary snapshot ResumeWith continues from bit-identically.
	Checkpoint *submod.Checkpoint
	// Fault is the panic a batch worker recovered when Telemetry.Stopped is
	// StopPanic (a *faultinject.PanicError). A faulted result carries the
	// committed greedy prefix and its checkpoint but no Cost/Benefit: the
	// searcher's caches may be inconsistent, so it is not consulted again.
	Fault error
}

// MatSet returns the chosen materialization set.
func (r Result) MatSet() physical.NodeSet { return r.Set }

// Stopped reports why the run ended early (submod.StopNone for a complete
// run).
func (r Result) Stopped() submod.StopReason { return r.Telemetry.Stopped }

// BenefitFunc adapts mb(S) over the optimizer's shareable nodes to the
// submod.Function interface; element i corresponds to Nodes[i]. It also
// implements submod.BatchFunction: a batch of candidate sets is evaluated
// concurrently on the searcher's worker pool, with results bit-identical
// to sequential evaluation. An attached context (NewBenefitFuncCtx) aborts
// in-flight batches between individual evaluations when cancelled.
type BenefitFunc struct {
	Opt   *volcano.Optimizer
	Nodes []memo.GroupID
	base  float64
	ctx   context.Context
}

// NewBenefitFunc builds the benefit function (one bc(∅) evaluation).
func NewBenefitFunc(opt *volcano.Optimizer) *BenefitFunc {
	return NewBenefitFuncCtx(nil, opt)
}

// NewBenefitFuncCtx is NewBenefitFunc with a context that cancels batched
// evaluations between individual bc(S) calls.
func NewBenefitFuncCtx(ctx context.Context, opt *volcano.Optimizer) *BenefitFunc {
	return &BenefitFunc{
		Opt:   opt,
		Nodes: opt.Shareable(),
		base:  opt.BestCost(physical.NodeSet{}),
		ctx:   ctx,
	}
}

// N returns the number of shareable nodes.
func (f *BenefitFunc) N() int { return len(f.Nodes) }

// Base returns bc(∅).
func (f *BenefitFunc) Base() float64 { return f.base }

// toNodeSet converts an element set to a materialization bitset.
func (f *BenefitFunc) toNodeSet(s submod.Set) physical.NodeSet {
	ns := f.Opt.NewNodeSet()
	s.ForEach(func(e int) { ns.Add(f.Nodes[e]) })
	return ns
}

// Eval returns mb(S) = bc(∅) − bc(S).
func (f *BenefitFunc) Eval(s submod.Set) float64 {
	return f.base - f.Opt.BestCost(f.toNodeSet(s))
}

// EvalBatch returns mb(S) for every set, evaluating the underlying
// bestCost oracle calls concurrently (one per worker context). When the
// attached context is cancelled mid-batch it reports ok=false together
// with the completed prefix of the benefits (possibly empty) — exact,
// deterministic values the caller may commit, per the
// submod.BatchFunction contract.
func (f *BenefitFunc) EvalBatch(sets []submod.Set) ([]float64, bool) {
	mats := make([]physical.NodeSet, len(sets))
	for i, s := range sets {
		mats[i] = f.toNodeSet(s)
	}
	costs, ok := f.Opt.Searcher.BestCostBatchCtx(f.ctx, mats)
	out := make([]float64, len(costs))
	for i, c := range costs {
		out[i] = f.base - c
	}
	return out, ok
}

// Fault drains the panic the searcher's most recent batch recovered, if
// any (submod.Faulter): the oracle classifies an aborted batch as
// StopPanic when this is non-nil.
func (f *BenefitFunc) Fault() error { return f.Opt.Searcher.TakeFault() }

// Interacts reports whether materializing node x can change node e's
// marginal benefit: true exactly when some query root's cone contains
// both nodes (physical.Searcher.SharesQueryRoot). It implements
// submod.InteractionFunction, letting the lazy greedy drivers carry
// marginals of provably untouched candidates across selections without
// re-evaluating them.
func (f *BenefitFunc) Interacts(e, x int) bool {
	return f.Opt.Searcher.SharesQueryRoot(f.Nodes[e], f.Nodes[x])
}

// ToNodes converts an element set to group ids (sorted by element index).
func (f *BenefitFunc) ToNodes(s submod.Set) []memo.GroupID {
	var out []memo.GroupID
	s.ForEach(func(e int) { out = append(out, f.Nodes[e]) })
	return out
}

// benefitL2 adapts a physical.SharedCache to the submod.MemoL2 contract:
// memoized mb(S) values live next to the (group, order, mask) cost entries
// under the searcher's fingerprint namespace, so they are invalidated,
// exported and imported together with the cost cache — a snapshot-warmed
// replica skips whole oracle calls, not just per-key cost lookups. Values
// always publish; reads are gated on warm so a run that has not opted in
// (Config.WarmOracle) keeps cold call accounting even over a populated
// cache.
type benefitL2 struct {
	c    *physical.SharedCache
	ns   uint64
	warm bool
}

func (b benefitL2) Get(k uint64) (float64, bool) {
	if !b.warm {
		return 0, false
	}
	return b.c.GetBenefit(b.ns, k)
}
func (b benefitL2) Put(k uint64, v float64) { b.c.PutBenefit(b.ns, k, v) }

// Run executes one strategy against a prepared optimizer and reports the
// chosen materializations, costs and optimization time. It is the
// budget-free shim over RunWith kept for the one-shot API.
func Run(opt *volcano.Optimizer, strat Strategy) Result {
	return RunWith(context.Background(), opt, strat, Config{})
}

// RunWith executes one strategy under a context and a Config. Cancellation
// and budgets are honored between oracle rounds (and between individual
// evaluations of an in-flight concurrent batch), so an interrupted run
// still returns a deterministic best-so-far Result with its Telemetry
// explaining where the time and oracle calls went. With no budget set the
// chosen sets and costs are bit-identical to Run.
func RunWith(ctx context.Context, opt *volcano.Optimizer, strat Strategy, cfg Config) Result {
	res, err := run(ctx, opt, strat, cfg, nil)
	if err != nil {
		// run only fails validating a resume checkpoint, and none was given.
		panic("core: " + err.Error())
	}
	return res
}

// StrategyOfAlgorithm maps a checkpoint's algorithm name back to its
// strategy; only the resumable lazy drivers have one.
func StrategyOfAlgorithm(name string) (Strategy, error) {
	switch name {
	case "Greedy":
		return Greedy, nil
	case "LazyGreedy":
		return LazyGreedyStrategy, nil
	case "MarginalGreedy":
		return MarginalGreedy, nil
	case "LazyMarginalGreedy":
		return LazyMarginalGreedy, nil
	}
	return 0, fmt.Errorf("core: %q is not a resumable strategy", name)
}

// ResumeWith continues a run from a round-boundary checkpoint instead of
// restarting it. The strategy is the checkpoint's; budgets, cancellation
// and telemetry work exactly as in RunWith, and the resumed run can itself
// stop and export a further checkpoint. Against the same search space the
// final materialization set is bit-identical to a run that was never
// interrupted; Telemetry counts only this continuation's oracle work,
// while Rounds/Pruned/Stale/Reused continue the interrupted run's counts.
func ResumeWith(ctx context.Context, opt *volcano.Optimizer, cp *submod.Checkpoint, cfg Config) (Result, error) {
	if cp == nil {
		return Result{}, fmt.Errorf("core: resume requires a checkpoint")
	}
	strat, err := StrategyOfAlgorithm(cp.Algorithm)
	if err != nil {
		return Result{}, err
	}
	return run(ctx, opt, strat, cfg, cp)
}

// run is the shared body of RunWith and ResumeWith.
func run(ctx context.Context, opt *volcano.Optimizer, strat Strategy, cfg Config, resume *submod.Checkpoint) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.Parallelism > 0 {
		opt.Searcher.Parallelism = cfg.Parallelism
	}
	if cfg.TimeBudget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.TimeBudget)
		defer cancel()
	}
	if cfg.PreemptSignal != nil {
		// Preemption cancels with a cause, checked only between completed
		// rounds (the Progress hook), so the stop lands exactly on a
		// checkpointable round boundary.
		var cancel context.CancelCauseFunc
		ctx, cancel = context.WithCancelCause(ctx)
		defer cancel(nil)
		signal, inner := cfg.PreemptSignal, cfg.Progress
		cfg.Progress = func(p submod.Progress) {
			if inner != nil {
				inner(p)
			}
			if signal() {
				cancel(submod.ErrPreempted)
			}
		}
	}
	if strat == VolcanoSH {
		return runVolcanoSH(ctx, opt, cfg), nil
	}
	start := nowFunc()
	bc0, hit0, sh0, key0 := opt.Searcher.BCCalls, opt.Searcher.CacheHits, opt.Searcher.SharedHits, opt.Searcher.ComputedKey
	f := NewBenefitFuncCtx(ctx, opt)
	oracle := submod.NewOracle(f)
	// With a session SharedCache attached, memoized oracle values from
	// earlier runs over the same search space (namespaced by the searcher
	// fingerprint, so a different batch, catalog or flag set can never
	// alias) are published for later runs — and, for a warm-started run
	// (cfg.WarmOracle), served without re-running bestCost, so it spends
	// oracle calls only on sets no prior run evaluated.
	if sc := opt.Searcher.Shared(); sc != nil {
		oracle.L2 = benefitL2{c: sc, ns: opt.Searcher.Fingerprint(), warm: cfg.WarmOracle}
	}
	oracle.SetControl(&submod.Control{
		Ctx:         ctx,
		MaxCalls:    cfg.maxCalls,
		HasMaxCalls: cfg.hasMaxCalls,
		OnProgress:  cfg.Progress,
	})
	var r submod.Result
	setupEnd := nowFunc()
	if resume != nil {
		var err error
		r, err = submod.ResumeLazy(oracle, resume)
		if err != nil {
			return Result{}, err
		}
	} else {
		switch strat {
		case Volcano:
			r = submod.Result{Set: submod.Set{}}
		case Greedy:
			r = submod.Greedy(oracle)
		case LazyGreedyStrategy:
			r = submod.LazyGreedy(oracle)
		case MarginalGreedy:
			d := submod.DecomposeStar(oracle)
			setupEnd = nowFunc()
			r = submod.MarginalGreedy(d)
		case LazyMarginalGreedy:
			d := submod.DecomposeStar(oracle)
			setupEnd = nowFunc()
			r = submod.LazyMarginalGreedy(d)
		case MaterializeAll:
			// No oracle rounds to bound, but the budget contract ("n = 0
			// forbids any materialization") and cancellation still apply.
			if oracle.Interrupted() {
				r = submod.Result{Stopped: oracle.StopReason()}
			} else {
				r = submod.Result{Set: oracle.Universe()}
			}
		case Exhaustive:
			r = submod.Exhaustive(oracle)
		default:
			panic("core: unknown strategy")
		}
	}
	searchEnd := nowFunc()
	nodes := f.ToNodes(r.Set)
	res := Result{
		Strategy:     strat,
		Materialized: nodes,
		Set:          opt.NewNodeSet(nodes...),
		VolcanoCost:  f.Base(),
		OracleCalls:  oracle.Calls,
		Checkpoint:   r.Checkpoint,
		Fault:        oracle.Fault(),
	}
	if res.Fault == nil {
		res.Cost = opt.BestCost(res.Set)
		res.Benefit = res.VolcanoCost - res.Cost
	}
	end := nowFunc()
	res.OptTime = end.Sub(start)
	res.Telemetry = Telemetry{
		OracleCalls:      oracle.Calls,
		BCCalls:          opt.Searcher.BCCalls - bc0,
		CacheHits:        opt.Searcher.CacheHits - hit0,
		SharedHits:       opt.Searcher.SharedHits - sh0,
		ComputedKeys:     opt.Searcher.ComputedKey - key0,
		SharedOracleHits: oracle.L2Hits,
		Rounds:           r.Iterations,
		Pruned:           r.Pruned,
		Stale:            r.Stale,
		Reused:           r.Reused,
		Stopped:          r.Stopped,
		SetupTime:        setupEnd.Sub(start),
		SearchTime:       searchEnd.Sub(setupEnd),
		FinalizeTime:     end.Sub(searchEnd),
		TotalTime:        end.Sub(start),
	}
	res.Telemetry.fillHitRate()
	return res, nil
}

func (t *Telemetry) fillHitRate() {
	if n := t.CacheHits + t.SharedHits + t.ComputedKeys; n > 0 {
		t.CacheHitRate = float64(t.CacheHits+t.SharedHits) / float64(n)
	}
}

// RunK executes the cardinality-constrained MarginalGreedy of Section 5.3:
// at most k nodes are materialized. With reduce=true the Theorem 4
// universe-reduction preprocessing runs first; Theorem 4 guarantees the
// same output either way.
func RunK(opt *volcano.Optimizer, k int, reduce bool) Result {
	start := nowFunc()
	f := NewBenefitFunc(opt)
	oracle := submod.NewOracle(f)
	d := submod.DecomposeStar(oracle)
	var r submod.Result
	if reduce {
		universe := submod.ReduceUniverse(d, k)
		r = submod.MarginalGreedyKOn(d, k, universe)
	} else {
		r = submod.MarginalGreedyK(d, k)
	}
	res := Result{
		Strategy:     MarginalGreedy,
		Materialized: f.ToNodes(r.Set),
		VolcanoCost:  f.Base(),
		OptTime:      nowFunc().Sub(start),
		OracleCalls:  oracle.Calls,
	}
	res.Set = opt.NewNodeSet(res.Materialized...)
	res.Cost = opt.BestCost(res.Set)
	res.Benefit = res.VolcanoCost - res.Cost
	res.Telemetry = Telemetry{
		OracleCalls: oracle.Calls,
		Rounds:      r.Iterations,
		Pruned:      r.Pruned,
		Stale:       r.Stale,
		Reused:      r.Reused,
		Stopped:     r.Stopped,
		TotalTime:   res.OptTime,
	}
	return res
}
