// Package core applies the paper's algorithms to multi-query optimization:
// it exposes the materialization-benefit function mb(S) = bc(∅) − bc(S)
// over the shareable nodes of a combined AND-OR DAG as a normalized
// submodular function, and runs the strategies compared in the paper's
// experiments — stand-alone Volcano (no MQO), the benefit Greedy of Roy et
// al., the paper's MarginalGreedy (with its Lazy variant), plus a
// materialize-everything baseline and an exhaustive optimizer for small
// instances.
package core

import (
	"fmt"
	"time"

	"repro/internal/memo"
	"repro/internal/physical"
	"repro/internal/submod"
	"repro/internal/volcano"
)

// Strategy selects an MQO algorithm.
type Strategy int

// Strategies.
const (
	// Volcano performs no multi-query optimization: every query gets its
	// locally optimal plan (S = ∅).
	Volcano Strategy = iota
	// Greedy is Algorithm 1 (Roy et al. 2000): repeatedly materialize the
	// node with the largest absolute benefit.
	Greedy
	// LazyGreedyStrategy is Greedy with the Minoux heap under the
	// monotonicity heuristic.
	LazyGreedyStrategy
	// MarginalGreedy is the paper's Algorithm 2 with the Proposition 1
	// decomposition.
	MarginalGreedy
	// LazyMarginalGreedy is MarginalGreedy with the Section 5.2 heap.
	LazyMarginalGreedy
	// MaterializeAll materializes every shareable node (the heuristic the
	// paper attributes to Silva et al., noted as potentially "horribly
	// inefficient").
	MaterializeAll
	// Exhaustive enumerates all materialization sets (≤ 20 shareable
	// nodes).
	Exhaustive
	// VolcanoSH shares only subexpressions that appear in the locally
	// optimal plans (the post-optimization baseline of Subramanian &
	// Venkataraman / Roy et al.'s Volcano-SH).
	VolcanoSH
)

// nowFunc indirects time.Now for the timing bookkeeping.
var nowFunc = time.Now

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case Volcano:
		return "Volcano"
	case Greedy:
		return "Greedy"
	case LazyGreedyStrategy:
		return "LazyGreedy"
	case MarginalGreedy:
		return "MarginalGreedy"
	case LazyMarginalGreedy:
		return "LazyMarginalGreedy"
	case MaterializeAll:
		return "MaterializeAll"
	case Exhaustive:
		return "Exhaustive"
	case VolcanoSH:
		return "Volcano-SH"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Result is the outcome of one MQO run.
type Result struct {
	Strategy     Strategy
	Materialized []memo.GroupID
	Set          physical.NodeSet // the chosen materialization set
	Cost         float64          // bc(S), milliseconds
	VolcanoCost  float64          // bc(∅), milliseconds
	Benefit      float64          // mb(S)
	OptTime      time.Duration
	OracleCalls  int // memoized-distinct bestCost evaluations
}

// MatSet returns the chosen materialization set.
func (r Result) MatSet() physical.NodeSet { return r.Set }

// BenefitFunc adapts mb(S) over the optimizer's shareable nodes to the
// submod.Function interface; element i corresponds to Nodes[i]. It also
// implements submod.BatchFunction: a batch of candidate sets is evaluated
// concurrently on the searcher's worker pool, with results bit-identical
// to sequential evaluation.
type BenefitFunc struct {
	Opt   *volcano.Optimizer
	Nodes []memo.GroupID
	base  float64
}

// NewBenefitFunc builds the benefit function (one bc(∅) evaluation).
func NewBenefitFunc(opt *volcano.Optimizer) *BenefitFunc {
	return &BenefitFunc{
		Opt:   opt,
		Nodes: opt.Shareable(),
		base:  opt.BestCost(physical.NodeSet{}),
	}
}

// N returns the number of shareable nodes.
func (f *BenefitFunc) N() int { return len(f.Nodes) }

// Base returns bc(∅).
func (f *BenefitFunc) Base() float64 { return f.base }

// toNodeSet converts an element set to a materialization bitset.
func (f *BenefitFunc) toNodeSet(s submod.Set) physical.NodeSet {
	ns := f.Opt.NewNodeSet()
	for e := range s {
		ns.Add(f.Nodes[e])
	}
	return ns
}

// Eval returns mb(S) = bc(∅) − bc(S).
func (f *BenefitFunc) Eval(s submod.Set) float64 {
	return f.base - f.Opt.BestCost(f.toNodeSet(s))
}

// EvalBatch returns mb(S) for every set, evaluating the underlying
// bestCost oracle calls concurrently (one per worker context).
func (f *BenefitFunc) EvalBatch(sets []submod.Set) []float64 {
	mats := make([]physical.NodeSet, len(sets))
	for i, s := range sets {
		mats[i] = f.toNodeSet(s)
	}
	costs := f.Opt.Searcher.BestCostBatch(mats)
	out := make([]float64, len(sets))
	for i, c := range costs {
		out[i] = f.base - c
	}
	return out
}

// ToNodes converts an element set to group ids (sorted by element index).
func (f *BenefitFunc) ToNodes(s submod.Set) []memo.GroupID {
	var out []memo.GroupID
	for _, e := range s.Sorted() {
		out = append(out, f.Nodes[e])
	}
	return out
}

// Run executes one strategy against a prepared optimizer and reports the
// chosen materializations, costs and optimization time.
func Run(opt *volcano.Optimizer, strat Strategy) Result {
	if strat == VolcanoSH {
		return RunVolcanoSH(opt)
	}
	start := time.Now()
	f := NewBenefitFunc(opt)
	oracle := submod.NewOracle(f)
	var picked submod.Set
	switch strat {
	case Volcano:
		picked = submod.Set{}
	case Greedy:
		picked = submod.Greedy(oracle).Set
	case LazyGreedyStrategy:
		picked = submod.LazyGreedy(oracle).Set
	case MarginalGreedy:
		d := submod.DecomposeStar(oracle)
		picked = submod.MarginalGreedy(d).Set
	case LazyMarginalGreedy:
		d := submod.DecomposeStar(oracle)
		picked = submod.LazyMarginalGreedy(d).Set
	case MaterializeAll:
		picked = oracle.Universe()
	case Exhaustive:
		picked = submod.Exhaustive(oracle).Set
	default:
		panic("core: unknown strategy")
	}
	nodes := f.ToNodes(picked)
	res := Result{
		Strategy:     strat,
		Materialized: nodes,
		Set:          opt.NewNodeSet(nodes...),
		VolcanoCost:  f.Base(),
		OptTime:      time.Since(start),
		OracleCalls:  oracle.Calls,
	}
	res.Cost = opt.BestCost(res.Set)
	res.Benefit = res.VolcanoCost - res.Cost
	return res
}

// RunK executes the cardinality-constrained MarginalGreedy of Section 5.3:
// at most k nodes are materialized. With reduce=true the Theorem 4
// universe-reduction preprocessing runs first; Theorem 4 guarantees the
// same output either way.
func RunK(opt *volcano.Optimizer, k int, reduce bool) Result {
	start := time.Now()
	f := NewBenefitFunc(opt)
	oracle := submod.NewOracle(f)
	d := submod.DecomposeStar(oracle)
	var r submod.Result
	if reduce {
		universe := submod.ReduceUniverse(d, k)
		r = submod.MarginalGreedyKOn(d, k, universe)
	} else {
		r = submod.MarginalGreedyK(d, k)
	}
	res := Result{
		Strategy:     MarginalGreedy,
		Materialized: f.ToNodes(r.Set),
		VolcanoCost:  f.Base(),
		OptTime:      time.Since(start),
		OracleCalls:  oracle.Calls,
	}
	res.Set = opt.NewNodeSet(res.Materialized...)
	res.Cost = opt.BestCost(res.Set)
	res.Benefit = res.VolcanoCost - res.Cost
	return res
}
