package core

import (
	"testing"

	"repro/internal/cost"
	"repro/internal/physical"
	"repro/internal/tpcd"
	"repro/internal/volcano"
)

// newExample1Optimizer builds the optimizer for the paper's Example 1
// batch: queries (A⋈σB⋈C) and (σB⋈C⋈D), where σ(B)⋈C is the common
// subexpression whose materialization makes the consolidated plan cheaper
// than the two locally optimal plans.
func newExample1Optimizer(t testing.TB) *volcano.Optimizer {
	t.Helper()
	cat, batch := tpcd.ExampleOneInstance()
	opt, err := volcano.NewOptimizer(cat, cost.Default(), batch)
	if err != nil {
		t.Fatalf("NewOptimizer: %v", err)
	}
	return opt
}

func TestExample1DAGSharesBC(t *testing.T) {
	opt := newExample1Optimizer(t)
	sh := opt.Shareable()
	if len(sh) == 0 {
		t.Fatalf("expected shareable nodes (B⋈C at least), got none")
	}
	// The B⋈C group must be among the shareable nodes: find a group with
	// exactly two base leaves below it that is consumed by both queries.
	found := false
	for _, id := range sh {
		g := opt.Memo.Group(id)
		if len(g.Consumers) >= 2 && !g.Leaf {
			found = true
		}
	}
	if !found {
		t.Fatalf("no non-leaf group consumed by both queries; sharing identification failed")
	}
}

func TestExample1MQOBeatsVolcano(t *testing.T) {
	opt := newExample1Optimizer(t)
	volcanoRes := Run(opt, Volcano)
	greedy := Run(opt, Greedy)
	marginal := Run(opt, MarginalGreedy)

	if greedy.Cost > volcanoRes.Cost {
		t.Errorf("Greedy cost %.1f worse than Volcano %.1f", greedy.Cost, volcanoRes.Cost)
	}
	if marginal.Cost > volcanoRes.Cost {
		t.Errorf("MarginalGreedy cost %.1f worse than Volcano %.1f", marginal.Cost, volcanoRes.Cost)
	}
	if greedy.Cost >= volcanoRes.Cost*0.999 {
		t.Errorf("expected Greedy to find sharing benefit: greedy=%.1f volcano=%.1f, materialized %d nodes",
			greedy.Cost, volcanoRes.Cost, len(greedy.Materialized))
	}
	if len(marginal.Materialized) == 0 {
		t.Errorf("MarginalGreedy materialized nothing")
	}
	t.Logf("volcano=%.1f greedy=%.1f (%d nodes) marginal=%.1f (%d nodes)",
		volcanoRes.Cost, greedy.Cost, len(greedy.Materialized), marginal.Cost, len(marginal.Materialized))
}

func TestExample1PlanConsistency(t *testing.T) {
	opt := newExample1Optimizer(t)
	res := Run(opt, MarginalGreedy)
	plan := opt.Plan(res.MatSet())
	if diff := plan.Total - res.Cost; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("extracted plan total %.4f != bestCost %.4f", plan.Total, res.Cost)
	}
	if len(plan.Queries) != 2 {
		t.Fatalf("expected 2 query plans, got %d", len(plan.Queries))
	}
	if len(plan.Steps) != len(res.Materialized) {
		t.Errorf("plan has %d materialization steps, result has %d nodes", len(plan.Steps), len(res.Materialized))
	}
}

func TestExample1EmptySetIsVolcano(t *testing.T) {
	opt := newExample1Optimizer(t)
	bcEmpty := opt.BestCost(physical.NodeSet{})
	if v := Run(opt, Volcano); v.Cost != bcEmpty {
		t.Errorf("Volcano strategy cost %.4f != bc(∅) %.4f", v.Cost, bcEmpty)
	}
	// buc(∅) == bc(∅): with nothing materialized there is nothing to pay for.
	if buc := opt.BestUseCost(physical.NodeSet{}); buc != bcEmpty {
		t.Errorf("buc(∅)=%.4f != bc(∅)=%.4f", buc, bcEmpty)
	}
}
