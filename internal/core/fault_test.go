package core

import (
	"context"
	"errors"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/memo"
	"repro/internal/submod"
)

// sameGroups compares materialization lists (both are emitted in ascending
// element order, so slice equality is set equality).
func sameGroups(a, b []memo.GroupID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestFaultInjectedPanicIsolated: an injected worker panic during a greedy
// run must not escape RunWith — the run stops with StopPanic, carries the
// typed fault, and does not price the set on the possibly poisoned
// searcher.
func TestFaultInjectedPanicIsolated(t *testing.T) {
	for _, hit := range []int64{1, 5, 40} {
		opt := bq2Optimizer(t)
		opt.Searcher.Parallelism = 4
		restore := faultinject.Enable(faultinject.NewSchedule(hit,
			faultinject.Rule{Point: faultinject.OracleEval, N: hit, Panic: true}))
		res := RunWith(context.Background(), opt, MarginalGreedy, Config{})
		restore()
		if res.Fault == nil {
			t.Fatalf("hit %d: no fault reported", hit)
		}
		if res.Telemetry.Stopped != submod.StopPanic {
			t.Fatalf("hit %d: stopped %v, want panic", hit, res.Telemetry.Stopped)
		}
		var pe *faultinject.PanicError
		if !errors.As(res.Fault, &pe) {
			t.Fatalf("hit %d: fault %#v is not a *PanicError", hit, res.Fault)
		}
		if res.Cost != 0 || res.Benefit != 0 {
			t.Errorf("hit %d: faulted run priced the set (cost %v)", hit, res.Cost)
		}
	}
}

// TestFaultResumeAfterPanicMatchesUninterrupted: when the faulted run had
// committed greedy state, its checkpoint — resumed on a FRESH optimizer,
// as a quarantining server would — must land on exactly the set an
// uninterrupted run selects.
func TestFaultResumeAfterPanicMatchesUninterrupted(t *testing.T) {
	ref := RunWith(context.Background(), bq2Optimizer(t), MarginalGreedy, Config{})
	resumed := 0
	for hit := int64(1); hit <= 60; hit += 7 {
		opt := bq2Optimizer(t)
		opt.Searcher.Parallelism = 4
		restore := faultinject.Enable(faultinject.NewSchedule(hit,
			faultinject.Rule{Point: faultinject.OracleEval, N: hit, Panic: true}))
		res := RunWith(context.Background(), opt, MarginalGreedy, Config{})
		restore()
		if res.Fault == nil {
			// The run finished before the scheduled hit.
			continue
		}
		if res.Checkpoint == nil {
			continue // faulted before the driver had state (e.g. decomposition)
		}
		got, err := ResumeWith(context.Background(), bq2Optimizer(t), res.Checkpoint, Config{})
		if err != nil {
			t.Fatalf("hit %d: resume: %v", hit, err)
		}
		resumed++
		if !sameGroups(got.Materialized, ref.Materialized) || got.Cost != ref.Cost {
			t.Fatalf("hit %d: resumed %v (%v) != uninterrupted %v (%v)",
				hit, got.Materialized, got.Cost, ref.Materialized, ref.Cost)
		}
	}
	if resumed == 0 {
		t.Error("no injection produced a resumable checkpoint")
	}
}

// TestFaultResumeAfterRoundCancel: a context cancelled at greedy round k
// (injected via a Round rule, the scheduler-preemption shape) stops with a
// checkpoint whose resume is bit-identical to the uninterrupted run.
func TestFaultResumeAfterRoundCancel(t *testing.T) {
	for _, strat := range []Strategy{MarginalGreedy, LazyGreedyStrategy} {
		ref := RunWith(context.Background(), bq2Optimizer(t), strat, Config{})
		resumed := 0
		for k := int64(1); k <= 9; k += 2 {
			ctx, cancel := context.WithCancel(context.Background())
			restore := faultinject.Enable(faultinject.NewSchedule(k,
				faultinject.Rule{Point: faultinject.Round, N: k, Fn: cancel}))
			res := RunWith(ctx, bq2Optimizer(t), strat, Config{})
			restore()
			cancel()
			if res.Telemetry.Stopped == submod.StopNone {
				continue
			}
			if res.Telemetry.Stopped != submod.StopCancelled {
				t.Fatalf("%v round %d: stopped %v", strat, k, res.Telemetry.Stopped)
			}
			if res.Checkpoint == nil {
				t.Fatalf("%v round %d: cancelled run has no checkpoint", strat, k)
			}
			got, err := ResumeWith(context.Background(), bq2Optimizer(t), res.Checkpoint, Config{})
			if err != nil {
				t.Fatalf("%v round %d: resume: %v", strat, k, err)
			}
			resumed++
			if !sameGroups(got.Materialized, ref.Materialized) || got.Cost != ref.Cost {
				t.Fatalf("%v round %d: resumed %v != uninterrupted %v",
					strat, k, got.Materialized, ref.Materialized)
			}
			if got.Fault != nil || got.Telemetry.Stopped != submod.StopNone {
				t.Fatalf("%v round %d: clean resume reported %v / %v", strat, k, got.Fault, got.Telemetry.Stopped)
			}
		}
		if resumed == 0 {
			t.Errorf("%v: no round cancellation produced a checkpoint", strat)
		}
	}
}

// TestResumeWithRejectsBadCheckpoints: nil and non-resumable snapshots are
// errors, not panics.
func TestResumeWithRejectsBadCheckpoints(t *testing.T) {
	if _, err := ResumeWith(context.Background(), bq2Optimizer(t), nil, Config{}); err == nil {
		t.Error("nil checkpoint accepted")
	}
	bad := &submod.Checkpoint{Algorithm: "EagerGreedy"}
	if _, err := ResumeWith(context.Background(), bq2Optimizer(t), bad, Config{}); err == nil {
		t.Error("non-resumable algorithm accepted")
	}
	if _, err := StrategyOfAlgorithm("Volcano"); err == nil {
		t.Error("StrategyOfAlgorithm accepted a non-lazy strategy")
	}
}
