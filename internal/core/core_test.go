package core

import (
	"context"
	"testing"

	"repro/internal/cost"
	"repro/internal/memo"
	"repro/internal/submod"
	"repro/internal/tpcd"
	"repro/internal/volcano"
)

func bq2Optimizer(t testing.TB) *volcano.Optimizer {
	t.Helper()
	opt, err := volcano.NewOptimizer(tpcd.Catalog(1), cost.Default(), tpcd.BQ(2))
	if err != nil {
		t.Fatalf("NewOptimizer: %v", err)
	}
	return opt
}

func TestStrategyStrings(t *testing.T) {
	want := map[Strategy]string{
		Volcano:            "Volcano",
		Greedy:             "Greedy",
		LazyGreedyStrategy: "LazyGreedy",
		MarginalGreedy:     "MarginalGreedy",
		LazyMarginalGreedy: "LazyMarginalGreedy",
		MaterializeAll:     "MaterializeAll",
		Exhaustive:         "Exhaustive",
	}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("%d renders %q, want %q", s, s.String(), w)
		}
	}
}

func TestAllStrategiesNeverWorseThanVolcano(t *testing.T) {
	opt := bq2Optimizer(t)
	v := Run(opt, Volcano)
	for _, s := range []Strategy{Greedy, LazyGreedyStrategy, MarginalGreedy, LazyMarginalGreedy} {
		r := Run(opt, s)
		if r.Cost > v.Cost+1e-6 {
			t.Errorf("%v cost %.1f worse than Volcano %.1f", s, r.Cost, v.Cost)
		}
		if r.Benefit != r.VolcanoCost-r.Cost {
			t.Errorf("%v benefit inconsistent", s)
		}
	}
}

func TestLazyVariantsMatchEager(t *testing.T) {
	opt := bq2Optimizer(t)
	g := Run(opt, Greedy)
	lg := Run(opt, LazyGreedyStrategy)
	if !equalIDs(g.Materialized, lg.Materialized) {
		t.Errorf("LazyGreedy picked %v, Greedy picked %v", lg.Materialized, g.Materialized)
	}
	m := Run(opt, MarginalGreedy)
	lm := Run(opt, LazyMarginalGreedy)
	if !equalIDs(m.Materialized, lm.Materialized) {
		t.Errorf("LazyMarginalGreedy picked %v, MarginalGreedy picked %v", lm.Materialized, m.Materialized)
	}
}

func TestVolcanoMaterializesNothing(t *testing.T) {
	opt := bq2Optimizer(t)
	v := Run(opt, Volcano)
	if len(v.Materialized) != 0 || v.Benefit != 0 {
		t.Errorf("Volcano result %+v", v)
	}
}

func TestMaterializeAllIsWorseHere(t *testing.T) {
	// The paper notes materializing everything "can be horribly
	// inefficient"; on BQ2 it must lose to MarginalGreedy.
	opt := bq2Optimizer(t)
	all := Run(opt, MaterializeAll)
	mg := Run(opt, MarginalGreedy)
	if all.Cost < mg.Cost {
		t.Errorf("MaterializeAll %.1f unexpectedly beats MarginalGreedy %.1f", all.Cost, mg.Cost)
	}
	if len(all.Materialized) != len(opt.Shareable()) {
		t.Errorf("MaterializeAll materialized %d of %d", len(all.Materialized), len(opt.Shareable()))
	}
}

func TestExhaustiveDominatesOnExample1(t *testing.T) {
	opt := newExample1Optimizer(t)
	if n := len(opt.Shareable()); n > 20 {
		t.Skipf("universe too large for exhaustive: %d", n)
	}
	ex := Run(opt, Exhaustive)
	for _, s := range []Strategy{Greedy, MarginalGreedy} {
		r := Run(opt, s)
		if r.Cost < ex.Cost-1e-6 {
			t.Errorf("%v cost %.1f beats exhaustive %.1f", s, r.Cost, ex.Cost)
		}
	}
}

func TestRunKRespectsBudgetAndReduction(t *testing.T) {
	opt := bq2Optimizer(t)
	for _, k := range []int{1, 2, 3} {
		full := RunK(opt, k, false)
		if len(full.Materialized) > k {
			t.Errorf("k=%d materialized %d", k, len(full.Materialized))
		}
		reduced := RunK(opt, k, true)
		if !equalIDs(full.Materialized, reduced.Materialized) {
			t.Errorf("k=%d: Theorem 4 violated: full %v != reduced %v",
				k, full.Materialized, reduced.Materialized)
		}
	}
}

func TestBenefitFuncIsNormalized(t *testing.T) {
	opt := bq2Optimizer(t)
	f := NewBenefitFunc(opt)
	if v := f.Eval(submod.Set{}); v != 0 {
		t.Errorf("mb(∅) = %v, want 0", v)
	}
	if f.N() != len(opt.Shareable()) {
		t.Errorf("universe size %d != shareable count %d", f.N(), len(opt.Shareable()))
	}
}

func TestBenefitEqualsCostDrop(t *testing.T) {
	opt := bq2Optimizer(t)
	f := NewBenefitFunc(opt)
	for e := 0; e < f.N(); e++ {
		mb := f.Eval(submod.NewSet(e))
		bc := opt.BestCost(opt.NewNodeSet(f.ToNodes(submod.NewSet(e))...))
		if diff := mb - (f.Base() - bc); diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("element %d: mb=%v but bc drop=%v", e, mb, f.Base()-bc)
		}
	}
}

func TestOracleCallsReported(t *testing.T) {
	opt := bq2Optimizer(t)
	r := Run(opt, MarginalGreedy)
	if r.OracleCalls <= 0 {
		t.Errorf("OracleCalls = %d", r.OracleCalls)
	}
	if r.OptTime <= 0 {
		t.Errorf("OptTime = %v", r.OptTime)
	}
}

func equalIDs(a, b []memo.GroupID) bool {
	if len(a) != len(b) {
		return false
	}
	seen := map[memo.GroupID]bool{}
	for _, id := range a {
		seen[id] = true
	}
	for _, id := range b {
		if !seen[id] {
			return false
		}
	}
	return true
}

func TestBudgetRunWithZeroOracleCalls(t *testing.T) {
	opt := bq2Optimizer(t)
	for _, s := range []Strategy{Greedy, MarginalGreedy, LazyMarginalGreedy, MaterializeAll, VolcanoSH} {
		r := RunWith(context.Background(), opt, s, Config{}.LimitOracleCalls(0))
		if len(r.Materialized) != 0 {
			t.Errorf("%v: zero budget materialized %v", s, r.Materialized)
		}
		if r.Telemetry.Stopped != submod.StopCallBudget {
			t.Errorf("%v: Stopped = %v, want %v", s, r.Telemetry.Stopped, submod.StopCallBudget)
		}
		if r.OracleCalls != 0 {
			t.Errorf("%v: spent %d oracle calls under zero budget", s, r.OracleCalls)
		}
		if r.Cost != r.VolcanoCost || r.Benefit != 0 {
			t.Errorf("%v: empty set must price at bc(∅): cost %v vs %v", s, r.Cost, r.VolcanoCost)
		}
	}
}

func TestBudgetRunWithMatchesRunWhenOff(t *testing.T) {
	opt := bq2Optimizer(t)
	for _, s := range []Strategy{Volcano, Greedy, LazyGreedyStrategy, MarginalGreedy, LazyMarginalGreedy, MaterializeAll, VolcanoSH} {
		plain := Run(opt, s)
		with := RunWith(context.Background(), opt, s, Config{})
		if !equalIDs(plain.Materialized, with.Materialized) || plain.Cost != with.Cost {
			t.Errorf("%v: RunWith diverged: %v/%v vs %v/%v",
				s, with.Materialized, with.Cost, plain.Materialized, plain.Cost)
		}
		if with.Telemetry.Stopped != submod.StopNone {
			t.Errorf("%v: unbudgeted run reports Stopped=%v", s, with.Telemetry.Stopped)
		}
		if s != Volcano && with.Telemetry.BCCalls <= 0 {
			t.Errorf("%v: telemetry BCCalls = %d", s, with.Telemetry.BCCalls)
		}
	}
}

func TestBudgetTelemetryPhases(t *testing.T) {
	opt := bq2Optimizer(t)
	r := RunWith(context.Background(), opt, MarginalGreedy, Config{})
	tl := r.Telemetry
	if tl.OracleCalls != r.OracleCalls || tl.Rounds <= 0 {
		t.Errorf("telemetry inconsistent: %+v (oracle calls %d)", tl, r.OracleCalls)
	}
	if tl.CacheHitRate < 0 || tl.CacheHitRate > 1 {
		t.Errorf("hit rate %v out of range", tl.CacheHitRate)
	}
	if tl.SetupTime < 0 || tl.SearchTime < 0 || tl.FinalizeTime < 0 || tl.TotalTime < tl.SearchTime {
		t.Errorf("phase times inconsistent: %+v", tl)
	}
}
