package core

import (
	"repro/internal/memo"
	"repro/internal/physical"
	"repro/internal/volcano"
)

// RunVolcanoSH implements the Volcano-SH baseline from the MQO lineage
// (Subramanian & Venkataraman's transient views, Roy et al.'s Volcano-SH):
// optimize every query independently first, then share only the
// subexpressions that happen to appear in those locally optimal plans —
// a cheap post-optimization phase that "can be highly suboptimal" because
// it never steers plan choice toward sharing. It provides the middle
// baseline between stand-alone Volcano and full cost-based MQO.
func RunVolcanoSH(opt *volcano.Optimizer) Result {
	res := runTimed(func() ([]memo.GroupID, float64) {
		base := opt.BestCost(physical.NodeSet{})
		plan := opt.Plan(physical.NodeSet{})

		// Count how many times each group is computed across the locally
		// optimal plan trees.
		uses := map[memo.GroupID]int{}
		var walk func(n *physical.PlanNode)
		walk = func(n *physical.PlanNode) {
			uses[n.Group]++
			for _, c := range n.Children {
				walk(c)
			}
		}
		for _, q := range plan.Queries {
			walk(q)
		}

		// Candidates: shareable groups computed at least twice in the
		// locally optimal plans. Greedily keep the ones that actually
		// reduce bestCost when materialized (cheapest check first by use
		// count, descending).
		var cands []memo.GroupID
		for _, id := range opt.Shareable() {
			if uses[id] >= 2 {
				cands = append(cands, id)
			}
		}
		sortByUsesDesc(cands, uses)
		chosen := opt.NewNodeSet()
		cur := base
		for _, id := range cands {
			if c := opt.BestCost(chosen.With(id)); c < cur {
				chosen.Add(id)
				cur = c
			}
		}
		return chosen.Groups(), base
	}, opt)
	return res
}

// runTimed wraps the common Result bookkeeping.
func runTimed(f func() ([]memo.GroupID, float64), opt *volcano.Optimizer) Result {
	start := nowFunc()
	nodes, base := f()
	res := Result{
		Strategy:     VolcanoSH,
		Materialized: nodes,
		Set:          opt.NewNodeSet(nodes...),
		VolcanoCost:  base,
		OptTime:      nowFunc().Sub(start),
	}
	res.Cost = opt.BestCost(res.Set)
	res.Benefit = res.VolcanoCost - res.Cost
	return res
}

func sortByUsesDesc(ids []memo.GroupID, uses map[memo.GroupID]int) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0; j-- {
			a, b := ids[j-1], ids[j]
			if uses[b] > uses[a] || (uses[b] == uses[a] && b < a) {
				ids[j-1], ids[j] = b, a
			} else {
				break
			}
		}
	}
}
