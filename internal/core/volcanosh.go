package core

import (
	"context"

	"repro/internal/memo"
	"repro/internal/physical"
	"repro/internal/submod"
	"repro/internal/volcano"
)

// RunVolcanoSH implements the Volcano-SH baseline from the MQO lineage
// (Subramanian & Venkataraman's transient views, Roy et al.'s Volcano-SH):
// optimize every query independently first, then share only the
// subexpressions that happen to appear in those locally optimal plans —
// a cheap post-optimization phase that "can be highly suboptimal" because
// it never steers plan choice toward sharing. It provides the middle
// baseline between stand-alone Volcano and full cost-based MQO.
func RunVolcanoSH(opt *volcano.Optimizer) Result {
	return runVolcanoSH(context.Background(), opt, Config{})
}

// runVolcanoSH is the budget-aware body: Volcano-SH has no submod oracle,
// so its bestCost probes are counted directly against the call budget and
// the candidate keep-loop checks the context between probes.
func runVolcanoSH(ctx context.Context, opt *volcano.Optimizer, cfg Config) Result {
	start := nowFunc()
	bc0, hit0, key0 := opt.Searcher.BCCalls, opt.Searcher.CacheHits, opt.Searcher.ComputedKey
	base := opt.BestCost(physical.NodeSet{})
	plan := opt.Plan(physical.NodeSet{})
	setupEnd := nowFunc()

	// Count how many times each group is computed across the locally
	// optimal plan trees.
	uses := map[memo.GroupID]int{}
	var walk func(n *physical.PlanNode)
	walk = func(n *physical.PlanNode) {
		uses[n.Group]++
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, q := range plan.Queries {
		walk(q)
	}

	// Candidates: shareable groups computed at least twice in the
	// locally optimal plans. Greedily keep the ones that actually
	// reduce bestCost when materialized (cheapest check first by use
	// count, descending).
	var cands []memo.GroupID
	for _, id := range opt.Shareable() {
		if uses[id] >= 2 {
			cands = append(cands, id)
		}
	}
	sortByUsesDesc(cands, uses)
	chosen := opt.NewNodeSet()
	cur := base
	calls, rounds := 0, 0
	stopped := submod.StopNone
	for _, id := range cands {
		if err := ctx.Err(); err != nil {
			stopped = submod.CtxStopReason(err)
			break
		}
		if cfg.hasMaxCalls && calls >= cfg.maxCalls {
			stopped = submod.StopCallBudget
			break
		}
		calls++
		rounds++
		if c := opt.BestCost(chosen.With(id)); c < cur {
			chosen.Add(id)
			cur = c
		}
		if cfg.Progress != nil {
			cfg.Progress(submod.Progress{
				Algorithm:   "Volcano-SH",
				Round:       rounds,
				Selected:    chosen.Len(),
				Remaining:   len(cands) - rounds,
				OracleCalls: calls,
				Best:        base - cur,
			})
		}
	}
	searchEnd := nowFunc()

	res := Result{
		Strategy:     VolcanoSH,
		Materialized: chosen.Groups(),
		Set:          chosen,
		VolcanoCost:  base,
		OracleCalls:  calls,
	}
	res.Cost = opt.BestCost(res.Set)
	res.Benefit = res.VolcanoCost - res.Cost
	end := nowFunc()
	res.OptTime = end.Sub(start)
	res.Telemetry = Telemetry{
		OracleCalls:  calls,
		BCCalls:      opt.Searcher.BCCalls - bc0,
		CacheHits:    opt.Searcher.CacheHits - hit0,
		ComputedKeys: opt.Searcher.ComputedKey - key0,
		Rounds:       rounds,
		Stopped:      stopped,
		SetupTime:    setupEnd.Sub(start),
		SearchTime:   searchEnd.Sub(setupEnd),
		FinalizeTime: end.Sub(searchEnd),
		TotalTime:    end.Sub(start),
	}
	res.Telemetry.fillHitRate()
	return res
}

func sortByUsesDesc(ids []memo.GroupID, uses map[memo.GroupID]int) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0; j-- {
			a, b := ids[j-1], ids[j]
			if uses[b] > uses[a] || (uses[b] == uses[a] && b < a) {
				ids[j-1], ids[j] = b, a
			} else {
				break
			}
		}
	}
}
