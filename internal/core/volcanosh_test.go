package core

import (
	"testing"

	"repro/internal/memo"
	"repro/internal/physical"
)

func TestVolcanoSHBetweenVolcanoAndMQO(t *testing.T) {
	// The lineage's ordering: Volcano ≥ Volcano-SH ≥ full MQO (Greedy /
	// MarginalGreedy), since Volcano-SH only shares what the locally
	// optimal plans already expose.
	opt := bq2Optimizer(t)
	v := Run(opt, Volcano)
	sh := Run(opt, VolcanoSH)
	g := Run(opt, Greedy)
	if sh.Cost > v.Cost+1e-6 {
		t.Errorf("Volcano-SH %.1f worse than Volcano %.1f", sh.Cost, v.Cost)
	}
	if g.Cost > sh.Cost+1e-6 {
		t.Errorf("full MQO Greedy %.1f worse than Volcano-SH %.1f", g.Cost, sh.Cost)
	}
	t.Logf("volcano=%.0f volcano-sh=%.0f (%d nodes) greedy=%.0f (%d nodes)",
		v.Cost, sh.Cost, len(sh.Materialized), g.Cost, len(g.Materialized))
}

func TestVolcanoSHOnlyPicksSharedNodes(t *testing.T) {
	// Everything Volcano-SH materializes must be computed at least twice
	// in the locally optimal plan trees.
	opt := newExample1Optimizer(t)
	sh := Run(opt, VolcanoSH)
	plan := opt.Plan(physical.NodeSet{})
	uses := map[memo.GroupID]int{}
	var walk func(n *physical.PlanNode)
	walk = func(n *physical.PlanNode) {
		uses[n.Group]++
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, q := range plan.Queries {
		walk(q)
	}
	for _, id := range sh.Materialized {
		if uses[id] < 2 {
			t.Errorf("Volcano-SH materialized group %d used %d times in the local plans", id, uses[id])
		}
	}
	if sh.Benefit <= 0 {
		t.Error("Volcano-SH found no benefit on Example 1 (σB⋈C appears in both local plans)")
	}
}

func TestVolcanoSHStrategyString(t *testing.T) {
	if VolcanoSH.String() != "Volcano-SH" {
		t.Errorf("got %q", VolcanoSH.String())
	}
}
