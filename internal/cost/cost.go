// Package cost implements the resource-consumption cost model of the
// paper's experimental section: 4 KB blocks, 10 ms seek, 2 ms/block read
// transfer, 4 ms/block write transfer, 0.2 ms/block CPU, and 6 MB of memory
// available to each operator. All costs are in milliseconds.
//
// Each cost function returns only the operator's *local* cost; the plan
// search adds the (use-)costs of the children separately, following the
// Volcano convention that intermediate results are pipelined unless
// explicitly materialized.
package cost

import "math"

// Model holds the cost-model constants.
type Model struct {
	BlockBytes int     // disk block size
	SeekMs     float64 // per random access
	ReadMs     float64 // per block read
	WriteMs    float64 // per block written
	CPUMs      float64 // per block of data processed
	MemBytes   int     // memory available per operator
}

// Default returns the constants used in the paper's experiments.
func Default() Model {
	return Model{
		BlockBytes: 4096,
		SeekMs:     10,
		ReadMs:     2,
		WriteMs:    4,
		CPUMs:      0.2,
		MemBytes:   6 << 20,
	}
}

// MemBlocks returns the operator memory in blocks.
func (m Model) MemBlocks() float64 {
	b := float64(m.MemBytes) / float64(m.BlockBytes)
	if b < 3 {
		b = 3
	}
	return math.Floor(b)
}

// Blocks returns the number of blocks occupied by rows tuples of the given
// width.
func (m Model) Blocks(rows float64, width int) float64 {
	if rows <= 0 {
		return 1
	}
	perBlock := math.Floor(float64(m.BlockBytes) / float64(width))
	if perBlock < 1 {
		perBlock = 1
	}
	return math.Max(1, math.Ceil(rows/perBlock))
}

// ScanCost is a sequential scan of a stored relation: one seek, a read
// transfer per block and CPU per block.
func (m Model) ScanCost(blocks float64) float64 {
	return m.SeekMs + blocks*(m.ReadMs+m.CPUMs)
}

// IndexScanCost is an indexed selection retrieving matchRows rows occupying
// matchBlocks blocks out of a relation of totalBlocks blocks. With a
// clustered index the matching tuples are contiguous; with a secondary
// index each matching row may require a random access (capped at reading
// the whole relation).
func (m Model) IndexScanCost(totalBlocks, matchBlocks, matchRows float64, clustered bool) float64 {
	if clustered {
		// A few index-node reads folded into one extra seek.
		return 2*m.SeekMs + matchBlocks*(m.ReadMs+m.CPUMs)
	}
	random := matchRows * (m.SeekMs + m.ReadMs + m.CPUMs)
	full := m.ScanCost(totalBlocks)
	return math.Min(random, full)
}

// FilterCost is the CPU cost of applying a predicate to a pipelined input.
func (m Model) FilterCost(inBlocks float64) float64 {
	return inBlocks * m.CPUMs
}

// SortCost is an external merge sort of a pipelined input of the given
// size, with the final merge pass pipelined to the consumer. An input that
// fits in memory costs CPU only.
func (m Model) SortCost(blocks float64) float64 {
	mem := m.MemBlocks()
	if blocks <= mem {
		return blocks * m.CPUMs * 2
	}
	runs := math.Ceil(blocks / mem)
	fanin := mem - 1
	mergePasses := math.Ceil(math.Log(runs) / math.Log(fanin))
	if mergePasses < 1 {
		mergePasses = 1
	}
	// Run generation writes all blocks once; every merge pass reads all
	// blocks, and all but the final pass write them back.
	io := blocks*m.WriteMs + // initial runs
		mergePasses*blocks*m.ReadMs + // reads per merge pass
		(mergePasses-1)*blocks*m.WriteMs // writes for non-final passes
	seeks := (runs + mergePasses*runs) * m.SeekMs / 4 // amortized seeks
	cpu := (1 + mergePasses) * blocks * m.CPUMs
	return io + seeks + cpu
}

// MergeJoinCost is the local cost of merging two sorted pipelined inputs:
// CPU over both inputs and the output.
func (m Model) MergeJoinCost(lBlocks, rBlocks, outBlocks float64) float64 {
	return (lBlocks + rBlocks + outBlocks) * m.CPUMs
}

// BNLJCost is the local cost of a block nested-loops join beyond the
// one-time production costs of both inputs (which the caller adds).
// rescannable indicates the inner can be re-read from storage (a base
// relation or a materialized result); otherwise the first pass writes the
// inner to a temporary file.
func (m Model) BNLJCost(outerBlocks, innerBlocks, outBlocks float64, rescannable bool) float64 {
	mem := m.MemBlocks() - 2
	if mem < 1 {
		mem = 1
	}
	passes := math.Max(1, math.Ceil(outerBlocks/mem))
	cpu := (outerBlocks + passes*innerBlocks + outBlocks) * m.CPUMs
	if passes == 1 {
		return cpu
	}
	rescan := (passes - 1) * (m.SeekMs + innerBlocks*m.ReadMs)
	if !rescannable {
		rescan += m.SeekMs + innerBlocks*m.WriteMs // temp spill of the inner
	}
	return cpu + rescan
}

// AggCost is the local cost of sort-based aggregation over a sorted
// pipelined input.
func (m Model) AggCost(inBlocks float64) float64 {
	return inBlocks * m.CPUMs
}

// HashJoinCost is the local cost of a Grace hash join (an optional
// operator outside the paper's rule set, used by the extended-operator
// ablation): when the build side fits in memory the join is CPU-only;
// otherwise both sides are partitioned to disk and re-read.
func (m Model) HashJoinCost(buildBlocks, probeBlocks, outBlocks float64) float64 {
	cpu := (buildBlocks + probeBlocks + outBlocks) * m.CPUMs
	if buildBlocks <= m.MemBlocks() {
		return cpu
	}
	spill := (buildBlocks + probeBlocks) * (m.WriteMs + m.ReadMs)
	seeks := 2 * m.SeekMs
	return cpu*2 + spill + seeks
}

// HashAggCost is the local cost of hash aggregation over an unsorted
// pipelined input (optional operator): CPU-only while the group table fits
// in memory, with a partition spill otherwise.
func (m Model) HashAggCost(inBlocks, outBlocks float64) float64 {
	cpu := inBlocks * m.CPUMs
	if outBlocks <= m.MemBlocks() {
		return cpu
	}
	return cpu + inBlocks*(m.WriteMs+m.ReadMs) + 2*m.SeekMs
}

// MaterializeWriteCost is the cost of writing a shared intermediate result
// to disk sequentially.
func (m Model) MaterializeWriteCost(blocks float64) float64 {
	return m.SeekMs + blocks*m.WriteMs
}

// MaterializeReadCost is the cost of one consumer scanning a materialized
// intermediate result.
func (m Model) MaterializeReadCost(blocks float64) float64 {
	return m.SeekMs + blocks*(m.ReadMs+m.CPUMs)
}
