package cost

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultMatchesPaperConstants(t *testing.T) {
	m := Default()
	if m.BlockBytes != 4096 {
		t.Errorf("block size %d, want 4KB", m.BlockBytes)
	}
	if m.SeekMs != 10 || m.ReadMs != 2 || m.WriteMs != 4 || m.CPUMs != 0.2 {
		t.Errorf("timing constants %+v do not match Section 6", m)
	}
	if m.MemBytes != 6<<20 {
		t.Errorf("memory %d, want 6MB", m.MemBytes)
	}
	if got := m.MemBlocks(); got != 1536 {
		t.Errorf("MemBlocks = %v, want 1536", got)
	}
}

func TestBlocks(t *testing.T) {
	m := Default()
	cases := []struct {
		rows  float64
		width int
		want  float64
	}{
		{0, 100, 1},
		{1, 100, 1},
		{40, 100, 1},     // 40 tuples of 100B fit one 4KB block
		{41, 100, 2},     // 41st spills
		{100, 8192, 100}, // tuple wider than a block: one per block
	}
	for _, c := range cases {
		if got := m.Blocks(c.rows, c.width); got != c.want {
			t.Errorf("Blocks(%v,%d) = %v, want %v", c.rows, c.width, got, c.want)
		}
	}
}

func TestScanCost(t *testing.T) {
	m := Default()
	// One seek + (read + cpu) per block.
	if got, want := m.ScanCost(100), 10+100*2.2; math.Abs(got-want) > 1e-9 {
		t.Errorf("ScanCost(100) = %v, want %v", got, want)
	}
}

func TestIndexScanClusteredVsSecondary(t *testing.T) {
	m := Default()
	clustered := m.IndexScanCost(1000, 10, 400, true)
	secondary := m.IndexScanCost(1000, 10, 400, false)
	if clustered >= secondary {
		t.Errorf("clustered (%v) should beat secondary (%v) for clustered ranges", clustered, secondary)
	}
	// A secondary index on a huge match set degrades to a full scan.
	full := m.ScanCost(1000)
	if got := m.IndexScanCost(1000, 900, 1e6, false); got != full {
		t.Errorf("secondary with huge match should cap at full scan: %v vs %v", got, full)
	}
}

func TestSortCostRegimes(t *testing.T) {
	m := Default()
	inMem := m.SortCost(1000) // < 1536 blocks: CPU only
	if inMem != 1000*0.2*2 {
		t.Errorf("in-memory sort = %v", inMem)
	}
	ext := m.SortCost(10000)
	if ext <= m.SortCost(1536) {
		t.Error("external sort must cost more than in-memory")
	}
	// Monotone in input size.
	if m.SortCost(20000) <= ext {
		t.Error("sort cost must grow with input")
	}
}

func TestBNLJRegimes(t *testing.T) {
	m := Default()
	onePass := m.BNLJCost(100, 1000, 50, true)
	if onePass != (100+1000+50)*0.2 {
		t.Errorf("one-pass BNLJ should be CPU only: %v", onePass)
	}
	multi := m.BNLJCost(5000, 1000, 50, true)
	if multi <= onePass {
		t.Error("multi-pass must cost more")
	}
	spill := m.BNLJCost(5000, 1000, 50, false)
	if spill <= multi {
		t.Error("non-rescannable inner must add spill cost")
	}
}

func TestMaterializeCosts(t *testing.T) {
	m := Default()
	if w := m.MaterializeWriteCost(100); w != 10+100*4 {
		t.Errorf("write cost %v", w)
	}
	if r := m.MaterializeReadCost(100); math.Abs(r-(10+100*2.2)) > 1e-9 {
		t.Errorf("read cost %v", r)
	}
	// Reading a materialized result must beat recomputing anything that
	// costs more than a scan of the same size.
	if m.MaterializeReadCost(100) >= m.ScanCost(100)+1 {
		t.Error("materialized read should cost like a scan")
	}
}

func TestCostsNonNegativeQuick(t *testing.T) {
	m := Default()
	f := func(rows uint32, width uint16) bool {
		w := int(width%2048) + 1
		b := m.Blocks(float64(rows), w)
		return b >= 1 &&
			m.ScanCost(b) > 0 &&
			m.SortCost(b) >= 0 &&
			m.MaterializeWriteCost(b) > 0 &&
			m.MaterializeReadCost(b) > 0 &&
			m.FilterCost(b) >= 0 &&
			m.AggCost(b) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMemBlocksFloor(t *testing.T) {
	m := Model{BlockBytes: 4096, MemBytes: 1} // degenerate memory
	if got := m.MemBlocks(); got != 3 {
		t.Errorf("MemBlocks floor = %v, want 3", got)
	}
}
