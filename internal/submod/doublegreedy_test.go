package submod

import (
	"testing"
)

func TestDoubleGreedyNonNegativeCase(t *testing.T) {
	// On genuinely non-negative instances (zero costs) double greedy must
	// achieve at least 1/3 of the optimum — the deterministic guarantee.
	for seed := int64(0); seed < 15; seed++ {
		c := RandomCoverage(seed, 10, 30, 3, 1.0, 0) // zero costs: f ≥ 0, monotone
		o := NewOracle(c)
		dg := DoubleGreedy(o, 0)
		opt := Exhaustive(o)
		if dg.Value < opt.Value/3-1e-9 {
			t.Errorf("seed %d: double greedy %v below opt/3 (%v)", seed, dg.Value, opt.Value/3)
		}
	}
}

func TestDoubleGreedyTerminatesWithConsistentSets(t *testing.T) {
	o := randomInstance(3, 12)
	shift := ShiftToNonNegative(o)
	r := DoubleGreedy(o, shift)
	if r.Iterations != o.N() {
		t.Errorf("iterations %d != n %d", r.Iterations, o.N())
	}
	if r.Value != o.Eval(r.Set) {
		t.Error("reported value is not f of the returned set")
	}
}

func TestShiftMakesSampledSetsNonNegative(t *testing.T) {
	o := randomInstance(5, 12)
	shift := ShiftToNonNegative(o)
	u := o.Universe()
	if o.Eval(u)+shift < -1e-9 {
		t.Error("universe still negative after shift")
	}
	for e := 0; e < o.N(); e++ {
		if o.Eval(NewSet(e))+shift < -1e-9 {
			t.Errorf("singleton %d still negative", e)
		}
	}
}

func TestNeitherGreedyDominatesButOnlyMarginalHasTheGuarantee(t *testing.T) {
	// The paper's point is about guarantees, not per-instance dominance:
	// additive shifting gives double greedy an approximation relative to
	// f+M, which is vacuous for the original f, while MarginalGreedy keeps
	// the Theorem 1 bound. Empirically neither heuristic dominates the
	// other on cost-heavy instances, and MarginalGreedy never goes
	// negative (it can always fall back to ∅ with f = 0).
	mgWins, dgWins := 0, 0
	for seed := int64(0); seed < 40; seed++ {
		c := RandomCoverage(seed, 12, 30, 3, 1.0, 2.5) // heavy costs: many bad elements
		o := NewOracle(c)
		mg := MarginalGreedy(DecomposeStar(o))
		dg := DoubleGreedy(o, ShiftToNonNegative(o))
		if mg.Value > dg.Value+1e-9 {
			mgWins++
		}
		if dg.Value > mg.Value+1e-9 {
			dgWins++
		}
		if mg.Value < -1e-9 {
			t.Fatalf("seed %d: MarginalGreedy returned negative value %v", seed, mg.Value)
		}
	}
	if mgWins == 0 || dgWins == 0 {
		t.Errorf("expected both algorithms to win somewhere: mg=%d dg=%d", mgWins, dgWins)
	}
}
