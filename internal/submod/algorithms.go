package submod

import (
	"math"
)

// epsCost is the threshold below which an element's additive cost is
// treated as non-positive ("free"): MarginalGreedy appends such elements at
// the end, which can only increase f (f_M is monotone and −c(e) ≥ 0).
const epsCost = 1e-12

// Result is the output of a maximization algorithm.
type Result struct {
	Set        Set
	Value      float64
	Iterations int
	// Pruned counts elements permanently removed by the ratio<1
	// optimization of Section 5.1.
	Pruned int
	// Stale counts stale-bound re-evaluations performed by the lazy
	// drivers: candidates whose upper bound topped the heap and had to be
	// re-priced against the current selection. The first pricing of each
	// candidate is not counted. An eager scan re-evaluates every surviving
	// candidate every round; Stale is the part of that work laziness could
	// not avoid.
	Stale int
	// Reused counts marginals carried exactly across a selection by the
	// dirty-candidate tracking: after adding x, every candidate whose cost
	// paths provably cannot interact with x (InteractionFunction) keeps
	// its marginal without re-evaluation, once per selection survived.
	Reused int
	// Stopped records why the run ended early (StopNone for a complete
	// run): budget exhaustion and cancellation are checked between oracle
	// rounds, so Set is the deterministic best-so-far selection of the
	// completed rounds.
	Stopped StopReason
	// Checkpoint, set when a lazy driver stopped early, is the resumable
	// round-boundary snapshot: ResumeLazy continues the run from it
	// bit-identically (see checkpoint.go). Nil on complete runs and for the
	// eager reference drivers.
	Checkpoint *Checkpoint
}

// finish fills the common tail of a Result: the chosen set and its value.
// For a run interrupted before anything was selected the value is f(∅) = 0
// by normalization, with no oracle call spent on it; otherwise f(X) is
// evaluated (a memo hit — every selected set was priced when it was
// chosen).
func (res *Result) finish(o *Oracle, x Set) {
	res.Set = x
	if res.Stopped != StopNone && x.Empty() {
		res.Value = 0
		return
	}
	res.Value = o.Eval(x)
}

// positiveCostSplit partitions the universe (or the given subset of it)
// into positive-cost candidates and free (non-positive-cost) elements.
func (d *Decomposition) positiveCostSplit() (cands, free []int) {
	for e := 0; e < d.o.N(); e++ {
		if d.C[e] > epsCost {
			cands = append(cands, e)
		} else {
			free = append(free, e)
		}
	}
	return cands, free
}

// MarginalGreedy is Algorithm 2 of the paper: while some element has
// marginal-benefit to cost ratio f'_M(x,X)/c(x) > 1, add the element with
// the maximum ratio; finally add every element with non-positive cost.
// Elements observed with ratio < 1 are permanently discarded
// (Section 5.1): by submodularity their ratio can only decrease.
//
// The scan is batched-lazy (see lazyMaximize): candidates are kept in a
// max-heap of stale upper bounds and re-evaluated — in oracle rounds of up
// to lazyChunkSize batched evaluations — only while their bound still tops
// the heap, and marginals of candidates provably untouched by the last
// selection (the oracle function's InteractionFunction, when available)
// are reused without re-evaluation. The selected set is identical to the
// exhaustive-scan reference EagerMarginalGreedy whenever diminishing
// returns hold; Result.{Pruned,Stale,Reused} report how the scan volume
// was spent.
//
// Between rounds the oracle's Control is consulted: a cancelled context or
// an exhausted call budget stops the scan and returns the best-so-far
// greedy prefix (Result.Stopped says why). A truncated decomposition —
// budget spent before the costs existed — yields the empty set.
func MarginalGreedy(d *Decomposition) Result {
	return marginalGreedyLazy("MarginalGreedy", d, lazyChunkSize)
}

// LazyMarginalGreedy is the Section 5.2 variant: the same lazy heap as
// MarginalGreedy but with sequential (chunk size 1) re-evaluation, which
// minimizes the number of oracle evaluations at the price of giving a
// concurrent oracle nothing to batch. It returns exactly the same set as
// MarginalGreedy and EagerMarginalGreedy under diminishing returns.
func LazyMarginalGreedy(d *Decomposition) Result {
	return marginalGreedyLazy("LazyMarginalGreedy", d, 1)
}

// marginalGreedyLazy is the shared body of the lazy marginal drivers.
func marginalGreedyLazy(name string, d *Decomposition, chunk int) Result {
	res := Result{}
	if d.truncated || d.o.Interrupted() {
		res.Stopped = d.o.StopReason()
		res.finish(d.o, Set{})
		return res
	}
	cands, free := d.positiveCostSplit()
	x := lazyMaximize(name, d.o, d, cands, chunk, &res)
	if res.Stopped == StopNone {
		x = addFree(name, d, x, free, &res)
	}
	res.finish(d.o, x)
	return res
}

// EagerMarginalGreedy is the exhaustive-scan reference implementation of
// Algorithm 2: every round re-evaluates the marginal ratio of every
// surviving candidate in one batched oracle call and picks the maximum
// with the strict-> first-maximum tie-break. It is the oracle-hungry
// baseline the lazy drivers are verified against (they must select
// bit-identical sets) and the ablation benchmarks measure.
func EagerMarginalGreedy(d *Decomposition) Result {
	res := Result{}
	if d.truncated || d.o.Interrupted() {
		res.Stopped = d.o.StopReason()
		res.finish(d.o, Set{})
		return res
	}
	x := Set{}
	y, free := d.positiveCostSplit()
	var sets []Set
	for len(y) > 0 {
		if d.o.Interrupted() {
			res.Stopped = d.o.StopReason()
			break
		}
		res.Iterations++
		// Evaluate the marginal ratio of every remaining element in one
		// batched (possibly concurrent) oracle call, then pick the winner
		// with the same strict-> tie-break as a sequential scan.
		sets = sets[:0]
		for _, e := range y {
			sets = append(sets, x.With(e))
		}
		vals, ok := d.o.EvalBatch(sets)
		if !ok {
			res.Stopped = d.o.StopReason()
			break
		}
		cur := d.o.Eval(x)
		bestE, bestR, bestV := -1, math.Inf(-1), 0.0
		keep := y[:0]
		for i, e := range y {
			r := d.RatioFrom(vals[i], cur, e)
			if r < 1 {
				res.Pruned++
				continue // permanently pruned
			}
			keep = append(keep, e)
			if r > bestR {
				bestR, bestE, bestV = r, e, vals[i]
			}
		}
		y = keep
		if bestE < 0 || bestR <= 1 {
			break
		}
		x = x.With(bestE)
		y = remove(y, bestE)
		d.o.progress("EagerMarginalGreedy", res.Iterations, x.Len(), len(y), bestV)
	}
	if res.Stopped == StopNone {
		x = addFree("EagerMarginalGreedy", d, x, free, &res)
	}
	res.finish(d.o, x)
	return res
}

// addFree appends the non-positive-cost elements. Under the paper's
// submodularity assumption each such element can only raise f (f_M is
// monotone and −c(e) ≥ 0), so the final set — and hence f — is the same in
// any insertion order. Because a real bestCost oracle may violate the
// assumption slightly, elements are added greedily by marginal gain and
// skipped once their marginal gain turns negative; both choices are no-ops
// whenever the assumption holds. Budget checks run between passes, like
// the main rounds; a stop records its reason on res and — for the lazy
// drivers — a MainDone checkpoint (the remaining free elements are
// recomputed on resume from the costs minus the selection, so the snapshot
// needs no extra state).
func addFree(name string, d *Decomposition, x Set, free []int, res *Result) Set {
	remaining := append([]int(nil), free...)
	var sets []Set
	for len(remaining) > 0 {
		if d.o.Interrupted() {
			res.Stopped = d.o.StopReason()
			res.Checkpoint = captureFree(name, x, d, res)
			return x
		}
		// f(X) is computed once per pass (not once per element) and the
		// candidate gains are evaluated in one batched oracle call.
		cur := d.o.Eval(x)
		sets = sets[:0]
		for _, e := range remaining {
			sets = append(sets, x.With(e))
		}
		vals, ok := d.o.EvalBatch(sets)
		if !ok {
			res.Stopped = d.o.StopReason()
			res.Checkpoint = captureFree(name, x, d, res)
			return x
		}
		bestE, bestGain := -1, math.Inf(-1)
		for i, e := range remaining {
			if gain := vals[i] - cur; gain > bestGain {
				bestGain, bestE = gain, e
			}
		}
		if bestGain < 0 {
			break
		}
		x = x.With(bestE)
		remaining = remove(remaining, bestE)
	}
	return x
}

// Greedy is the benefit-greedy of Roy et al. [Algorithm 1]: at each step
// add the element that maximizes f(X∪{x}) as long as f strictly improves.
// Like MarginalGreedy it runs on the batched-lazy heap (threshold 0,
// marginal gain instead of ratio) and selects exactly the set the
// exhaustive-scan EagerGreedy selects under diminishing returns. Budgets
// and cancellation are checked between oracle rounds.
func Greedy(o *Oracle) Result {
	return greedyLazy("Greedy", o, lazyChunkSize)
}

// LazyGreedy is Greedy accelerated with the Minoux heap under the
// supermodularity ("monotonicity heuristic") assumption on the cost, i.e.
// submodularity of the benefit f: the same lazy driver with sequential
// (chunk size 1) re-evaluation. It returns the same set as Greedy when the
// assumption holds. Budgets are checked before every oracle round.
func LazyGreedy(o *Oracle) Result {
	return greedyLazy("LazyGreedy", o, 1)
}

// greedyLazy is the shared body of the lazy benefit-greedy drivers.
func greedyLazy(name string, o *Oracle, chunk int) Result {
	res := Result{}
	if o.Interrupted() {
		res.Stopped = o.StopReason()
		res.finish(o, Set{})
		return res
	}
	cands := make([]int, o.N())
	for i := range cands {
		cands[i] = i
	}
	x := lazyMaximize(name, o, nil, cands, chunk, &res)
	res.finish(o, x)
	return res
}

// EagerGreedy is the exhaustive-scan reference implementation of the
// benefit greedy: every round re-evaluates f(X∪{e}) for every remaining
// element in one batched oracle call. The lazy drivers are verified to
// select bit-identical sets against it.
func EagerGreedy(o *Oracle) Result {
	res := Result{}
	if o.Interrupted() {
		res.Stopped = o.StopReason()
		res.finish(o, Set{})
		return res
	}
	x := Set{}
	cur := o.Eval(x)
	y := make([]int, o.N())
	for i := range y {
		y[i] = i
	}
	var sets []Set
	for len(y) > 0 {
		if o.Interrupted() {
			res.Stopped = o.StopReason()
			break
		}
		res.Iterations++
		sets = sets[:0]
		for _, e := range y {
			sets = append(sets, x.With(e))
		}
		vals, ok := o.EvalBatch(sets) // one batched (possibly concurrent) scan
		if !ok {
			res.Stopped = o.StopReason()
			break
		}
		bestE, bestV := -1, math.Inf(-1)
		for i, e := range y {
			if v := vals[i]; v > bestV {
				bestV, bestE = v, e
			}
		}
		if bestE < 0 || bestV <= cur {
			break
		}
		x = x.With(bestE)
		cur = bestV
		y = remove(y, bestE)
		o.progress("EagerGreedy", res.Iterations, x.Len(), len(y), cur)
	}
	res.Set = x
	res.Value = cur
	return res
}

// Exhaustive returns the exact optimum by enumerating all subsets; the
// universe must have at most 25 elements. An exhausted budget stops the
// enumeration at the best subset seen so far.
func Exhaustive(o *Oracle) Result {
	n := o.N()
	if n > 25 {
		panic("submod: exhaustive search limited to 25 elements")
	}
	res := Result{}
	if o.Interrupted() {
		res.Stopped = o.StopReason()
		res.finish(o, Set{})
		return res
	}
	best := Set{}
	bestV := o.Eval(best)
	for mask := uint64(1); mask < uint64(1)<<uint(n); mask++ {
		if o.Interrupted() {
			res.Stopped = o.StopReason()
			break
		}
		s := Set{}
		for e := 0; e < n; e++ {
			if mask&(1<<uint(e)) != 0 {
				s.Add(e)
			}
		}
		if v := o.Eval(s); v > bestV {
			bestV, best = v, s
		}
	}
	res.Set = best
	res.Value = bestV
	return res
}

// MarginalGreedyK is the cardinality-constrained variant of Section 5.3:
// MarginalGreedy that stops after at most k selections (free elements
// consume budget too, cheapest cost first). Oracle budgets are checked
// between rounds like the unconstrained variant.
func MarginalGreedyK(d *Decomposition, k int) Result {
	return marginalGreedyKOn(d, k, nil)
}

// MarginalGreedyKOn runs MarginalGreedyK considering only the elements of
// universe (original ids); used to verify the Theorem 4 universe
// reduction.
func MarginalGreedyKOn(d *Decomposition, k int, universe []int) Result {
	if universe == nil {
		universe = []int{}
	}
	return marginalGreedyKOn(d, k, universe)
}

// marginalGreedyKOn is the shared body: a nil universe means all elements.
func marginalGreedyKOn(d *Decomposition, k int, universe []int) Result {
	res := Result{}
	if d.truncated || d.o.Interrupted() {
		res.Stopped = d.o.StopReason()
		res.finish(d.o, Set{})
		return res
	}
	if universe == nil {
		universe = make([]int, d.o.N())
		for i := range universe {
			universe[i] = i
		}
	}
	x := Set{}
	var y, free []int
	for _, e := range universe {
		if d.C[e] > epsCost {
			y = append(y, e)
		} else {
			free = append(free, e)
		}
	}
	for len(y) > 0 && x.Len() < k {
		if d.o.Interrupted() {
			res.Stopped = d.o.StopReason()
			break
		}
		res.Iterations++
		bestE, bestR := -1, math.Inf(-1)
		keep := y[:0]
		for _, e := range y {
			r := d.Ratio(e, x)
			if r < 1 {
				res.Pruned++
				continue
			}
			keep = append(keep, e)
			if r > bestR {
				bestR, bestE = r, e
			}
		}
		y = keep
		if bestE < 0 || bestR <= 1 {
			break
		}
		x = x.With(bestE)
		y = remove(y, bestE)
		d.o.progress("MarginalGreedyK", res.Iterations, x.Len(), len(y), d.o.Eval(x))
	}
	if res.Stopped == StopNone {
		sortByCost(free, d.C)
		cur := d.o.Eval(x) // cached across the loop; updated only when x grows
		for _, e := range free {
			if x.Len() >= k {
				break
			}
			if d.o.Interrupted() {
				res.Stopped = d.o.StopReason()
				break
			}
			if v := d.o.Eval(x.With(e)); v >= cur {
				x = x.With(e)
				cur = v
			}
		}
	}
	res.finish(d.o, x)
	return res
}

// ReduceUniverse implements the Theorem 4 preprocessing for a cardinality
// constraint k: order the positive-cost elements by
// f'_M(e, U∖{e})/c(e) descending and keep those with
// f_M({e})/c(e) ≥ the k-th last-marginal ratio. Running MarginalGreedyK on
// the reduced universe yields the same output as on the full universe.
// Free (non-positive-cost) elements are always kept. When k ≥ n the full
// universe is returned without any oracle calls (the Case 1 observation of
// the proof: the check would be pure waste).
func ReduceUniverse(d *Decomposition, k int) []int {
	n := d.o.N()
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	if k >= n {
		return all
	}
	var pos, free []int
	for e := 0; e < n; e++ {
		if d.C[e] > epsCost {
			pos = append(pos, e)
		} else {
			free = append(free, e)
		}
	}
	if len(pos) <= k {
		return all
	}
	u := d.o.Universe()
	fu := d.o.Eval(u)
	lastRatio := make(map[int]float64, len(pos))
	for _, e := range pos {
		fm := fu - d.o.Eval(u.Without(e)) + d.C[e] // f'_M(e, U∖{e})
		lastRatio[e] = fm / d.C[e]
	}
	ordered := append([]int(nil), pos...)
	sortByRatioDesc(ordered, lastRatio)
	threshold := lastRatio[ordered[k-1]]
	var out []int
	for _, e := range pos {
		fmSingle := d.o.Eval(NewSet(e)) + d.C[e] // f_M({e})
		if fmSingle/d.C[e] >= threshold {
			out = append(out, e)
		}
	}
	out = append(out, free...)
	sortInts(out)
	return out
}

func remove(xs []int, v int) []int {
	out := xs[:0]
	for _, x := range xs {
		if x != v {
			out = append(out, x)
		}
	}
	return out
}

func sortByCost(xs []int, c []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && (c[xs[j]] < c[xs[j-1]] || (c[xs[j]] == c[xs[j-1]] && xs[j] < xs[j-1])); j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func sortByRatioDesc(xs []int, r map[int]float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && (r[xs[j]] > r[xs[j-1]] || (r[xs[j]] == r[xs[j-1]] && xs[j] < xs[j-1])); j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
