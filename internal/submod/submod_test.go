package submod

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSetOps(t *testing.T) {
	s := NewSet(3, 1, 2)
	if s.Len() != 3 {
		t.Fatalf("NewSet: %v", s)
	}
	w := s.With(5)
	if !w.Contains(5) || s.Contains(5) {
		t.Error("With must copy")
	}
	wo := s.Without(1)
	if wo.Contains(1) || !s.Contains(1) {
		t.Error("Without must copy")
	}
	sorted := s.Sorted()
	if sorted[0] != 1 || sorted[1] != 2 || sorted[2] != 3 {
		t.Errorf("Sorted: %v", sorted)
	}
	if !s.Equal(NewSet(1, 2, 3)) || s.Equal(NewSet(1, 2)) || s.Equal(NewSet(1, 2, 4)) {
		t.Error("Equal broken")
	}
}

func TestSetKeyDistinguishes(t *testing.T) {
	seen := map[uint64]string{}
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		s := Set{}
		for e := 0; e < 12; e++ {
			if r.Intn(2) == 0 {
				s.Add(e)
			}
		}
		k := s.Key()
		repr := ""
		for _, e := range s.Sorted() {
			repr += string(rune('a' + e))
		}
		if prev, ok := seen[k]; ok && prev != repr {
			t.Fatalf("key collision: %q vs %q", prev, repr)
		}
		seen[k] = repr
	}
}

func TestOracleMemoizes(t *testing.T) {
	c := RandomCoverage(1, 8, 30, 4, 1.0, 0.5)
	o := NewOracle(c)
	s := NewSet(1, 2, 3)
	v1 := o.Eval(s)
	v2 := o.Eval(s)
	if v1 != v2 {
		t.Error("oracle not deterministic")
	}
	if o.Calls != 1 {
		t.Errorf("oracle calls = %d, want 1 (memoized)", o.Calls)
	}
	if o.N() != 8 {
		t.Errorf("N = %d", o.N())
	}
	if o.Universe().Len() != 8 {
		t.Error("Universe size")
	}
}

// randomInstance builds a random normalized, non-monotone submodular
// function (weighted coverage minus modular costs).
func randomInstance(seed int64, n int) *Oracle {
	c := RandomCoverage(seed, n, 3*n, 3, 1.0, 1.2)
	return NewOracle(c)
}

func TestCoverageNormalized(t *testing.T) {
	o := randomInstance(3, 10)
	if o.Eval(Set{}) != 0 {
		t.Errorf("f(∅) = %v, want 0", o.Eval(Set{}))
	}
}

// TestCoverageSubmodularQuick verifies the defining inequality
// f(A∪{e}) − f(A) ≥ f(B∪{e}) − f(B) for random A ⊆ B, e ∉ B.
func TestCoverageSubmodularQuick(t *testing.T) {
	o := randomInstance(4, 12)
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 3000; i++ {
		a, b := Set{}, Set{}
		for e := 0; e < o.N(); e++ {
			switch r.Intn(3) {
			case 0:
				a.Add(e)
				b.Add(e)
			case 1:
				b.Add(e)
			}
		}
		var outside []int
		for e := 0; e < o.N(); e++ {
			if !b.Contains(e) {
				outside = append(outside, e)
			}
		}
		if len(outside) == 0 {
			continue
		}
		e := outside[r.Intn(len(outside))]
		dA := o.Eval(a.With(e)) - o.Eval(a)
		dB := o.Eval(b.With(e)) - o.Eval(b)
		if dA < dB-1e-9 {
			t.Fatalf("submodularity violated: f'(%d,A)=%v < f'(%d,B)=%v", e, dA, e, dB)
		}
	}
}

func TestDecomposeStarIdentity(t *testing.T) {
	// f(S) = f*_M(S) − c*(S) must hold exactly for every S.
	o := randomInstance(5, 10)
	d := DecomposeStar(o)
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		s := Set{}
		for e := 0; e < o.N(); e++ {
			if r.Intn(2) == 0 {
				s.Add(e)
			}
		}
		cS := 0.0
		s.ForEach(func(e int) { cS += d.C[e] })
		if math.Abs(d.FM(s)-cS-d.F(s)) > 1e-9 {
			t.Fatalf("decomposition identity broken at %v", s.Sorted())
		}
	}
}

func TestDecomposeStarMonotone(t *testing.T) {
	// Proposition 1: f*_M is monotone — adding any element never lowers it.
	o := randomInstance(6, 10)
	d := DecomposeStar(o)
	r := rand.New(rand.NewSource(8))
	for i := 0; i < 1000; i++ {
		s := Set{}
		for e := 0; e < o.N(); e++ {
			if r.Intn(2) == 0 {
				s.Add(e)
			}
		}
		e := r.Intn(o.N())
		if s.Contains(e) {
			continue
		}
		if d.FM(s.With(e)) < d.FM(s)-1e-9 {
			t.Fatalf("f*_M not monotone: adding %d to %v lowers it", e, s.Sorted())
		}
	}
}

func TestDecomposeStarUsesNPlusOneCalls(t *testing.T) {
	o := randomInstance(9, 15)
	DecomposeStar(o)
	if o.Calls != o.N()+1 {
		t.Errorf("DecomposeStar used %d oracle calls, want n+1=%d", o.Calls, o.N()+1)
	}
}

func TestMarginalFMAndRatio(t *testing.T) {
	o := randomInstance(10, 8)
	d := DecomposeStar(o)
	s := NewSet(0, 1)
	e := 3
	want := o.Eval(s.With(e)) - o.Eval(s) + d.C[e]
	if math.Abs(d.MarginalFM(e, s)-want) > 1e-12 {
		t.Error("MarginalFM formula")
	}
	if d.C[e] > 0 {
		if math.Abs(d.Ratio(e, s)-want/d.C[e]) > 1e-12 {
			t.Error("Ratio formula")
		}
	}
}

func TestLazyEqualsEagerMarginalGreedy(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		o1 := randomInstance(seed, 12)
		o2 := randomInstance(seed, 12)
		eager := MarginalGreedy(DecomposeStar(o1))
		lazy := LazyMarginalGreedy(DecomposeStar(o2))
		if !eager.Set.Equal(lazy.Set) {
			t.Fatalf("seed %d: eager %v != lazy %v", seed, eager.Set.Sorted(), lazy.Set.Sorted())
		}
		if math.Abs(eager.Value-lazy.Value) > 1e-9 {
			t.Fatalf("seed %d: values differ: %v vs %v", seed, eager.Value, lazy.Value)
		}
	}
}

func TestLazyEqualsEagerGreedy(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		g := Greedy(randomInstance(seed, 12))
		lg := LazyGreedy(randomInstance(seed, 12))
		if !g.Set.Equal(lg.Set) {
			t.Fatalf("seed %d: greedy %v != lazy %v", seed, g.Set.Sorted(), lg.Set.Sorted())
		}
	}
}

func TestGreedyNeverHurts(t *testing.T) {
	// Both greedy algorithms only take improving steps, so their value is
	// at least f(∅) = 0.
	for seed := int64(0); seed < 20; seed++ {
		if v := Greedy(randomInstance(seed, 10)).Value; v < 0 {
			t.Fatalf("seed %d: greedy value %v < 0", seed, v)
		}
		if v := MarginalGreedy(DecomposeStar(randomInstance(seed, 10))).Value; v < -1e-9 {
			t.Fatalf("seed %d: marginal greedy value %v < 0", seed, v)
		}
	}
}

func TestExhaustiveIsOptimal(t *testing.T) {
	// Exhaustive dominates both heuristics on every small instance.
	for seed := int64(0); seed < 15; seed++ {
		o := randomInstance(seed, 10)
		opt := Exhaustive(o)
		g := Greedy(o)
		mg := MarginalGreedy(DecomposeStar(o))
		if g.Value > opt.Value+1e-9 || mg.Value > opt.Value+1e-9 {
			t.Fatalf("seed %d: heuristic beats exhaustive: g=%v mg=%v opt=%v",
				seed, g.Value, mg.Value, opt.Value)
		}
	}
}

func TestExhaustivePanicsOnLargeUniverse(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Exhaustive should panic for n > 25")
		}
	}()
	Exhaustive(NewOracle(RandomCoverage(1, 26, 60, 3, 1, 1)))
}

func TestTheoremOneBoundOnPlantedInstances(t *testing.T) {
	// The Theorem 1 guarantee must hold on the hardness family whenever
	// the explicit decomposition is used.
	for _, gamma := range []float64{0.5, 1, 2, 4, 8} {
		for seed := int64(0); seed < 10; seed++ {
			p := PlantedInstance(seed, 60, 4, 8, 20, gamma)
			o := NewOracle(p)
			d := NewDecomposition(o, p.ExplicitCosts())
			mg := MarginalGreedy(d)
			opt := Exhaustive(o)
			bound := TheoremOneBound(opt.Value, opt.Value/gamma)
			if mg.Value < bound-1e-9 {
				t.Errorf("γ=%v seed=%d: MG %.4f below bound %.4f (opt %.4f)",
					gamma, seed, mg.Value, bound, opt.Value)
			}
		}
	}
}

func TestPlantedInstanceOptimumIsOne(t *testing.T) {
	p := PlantedInstance(3, 60, 4, 8, 20, 2)
	o := NewOracle(p)
	// The planted cover (the first l sets) achieves exactly f = 1.
	planted := NewSet(0, 1, 2, 3)
	if v := o.Eval(planted); math.Abs(v-1) > 1e-9 {
		t.Errorf("planted cover value %v, want 1", v)
	}
	if opt := Exhaustive(o); opt.Value < 1-1e-9 {
		t.Errorf("optimum %v below planted value", opt.Value)
	}
}

func TestTheoremOneBoundFormula(t *testing.T) {
	// Bound → f as γ → ∞ and → 0 as γ → 0; degenerate inputs give 0.
	if TheoremOneBound(0, 1) != 0 || TheoremOneBound(1, 0) != 0 {
		t.Error("degenerate bound should be 0")
	}
	prev := -1.0
	for _, gamma := range []float64{0.1, 1, 10, 100, 1000} {
		b := TheoremOneBound(1, 1/gamma)
		if b < prev {
			t.Errorf("bound not increasing in γ: %v after %v", b, prev)
		}
		prev = b
	}
	if prev < 0.99 {
		t.Errorf("bound should approach f(Θ)=1 for large γ, got %v", prev)
	}
}

func TestUniverseReductionPreservesAnswer(t *testing.T) {
	// Theorem 4: MarginalGreedyK on the reduced universe returns exactly
	// the same set as on the full universe.
	for seed := int64(0); seed < 30; seed++ {
		o := randomInstance(seed, 14)
		d := DecomposeStar(o)
		for _, k := range []int{1, 2, 4, 8} {
			full := MarginalGreedyK(d, k)
			reduced := ReduceUniverse(d, k)
			onReduced := MarginalGreedyKOn(d, k, reduced)
			if !full.Set.Equal(onReduced.Set) {
				t.Fatalf("seed %d k=%d: full %v != reduced %v (universe %v)",
					seed, k, full.Set.Sorted(), onReduced.Set.Sorted(), reduced)
			}
		}
	}
}

func TestUniverseReductionExplicitCosts(t *testing.T) {
	// With an explicit (non-star) decomposition the reduction can actually
	// prune; the answers must still agree.
	for seed := int64(0); seed < 30; seed++ {
		c := RandomCoverage(seed, 14, 40, 3, 1.0, 1.2)
		o := NewOracle(c)
		d := NewDecomposition(o, c.Costs)
		for _, k := range []int{2, 4} {
			full := MarginalGreedyK(d, k)
			reduced := ReduceUniverse(d, k)
			onReduced := MarginalGreedyKOn(d, k, reduced)
			if !full.Set.Equal(onReduced.Set) {
				t.Fatalf("seed %d k=%d: full %v != reduced %v",
					seed, k, full.Set.Sorted(), onReduced.Set.Sorted())
			}
		}
	}
}

func TestUniverseReductionKGreaterN(t *testing.T) {
	// Case 1 of Theorem 4's proof: k ≥ n must skip the check entirely.
	o := randomInstance(2, 8)
	d := DecomposeStar(o)
	before := o.Calls
	u := ReduceUniverse(d, 8)
	if len(u) != 8 {
		t.Errorf("k=n should keep everything, got %d", len(u))
	}
	if o.Calls != before {
		t.Errorf("k≥n made %d extra oracle calls; should make none", o.Calls-before)
	}
}

func TestCardinalityRespected(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		d := DecomposeStar(randomInstance(seed, 12))
		for _, k := range []int{0, 1, 3} {
			if got := MarginalGreedyK(d, k); got.Set.Len() > k {
				t.Fatalf("seed %d: |X|=%d exceeds k=%d", seed, got.Set.Len(), k)
			}
		}
	}
}

func TestMarginalGreedyKUnbounded(t *testing.T) {
	// With k = n the constrained variant matches the unconstrained one.
	for seed := int64(0); seed < 10; seed++ {
		o1 := randomInstance(seed, 10)
		o2 := randomInstance(seed, 10)
		a := MarginalGreedy(DecomposeStar(o1))
		b := MarginalGreedyK(DecomposeStar(o2), 10)
		if !a.Set.Equal(b.Set) {
			t.Fatalf("seed %d: unconstrained %v != k=n %v", seed, a.Set.Sorted(), b.Set.Sorted())
		}
	}
}

func TestPruningCountsReported(t *testing.T) {
	found := false
	for seed := int64(0); seed < 20 && !found; seed++ {
		o := randomInstance(seed, 12)
		if MarginalGreedy(DecomposeStar(o)).Pruned > 0 {
			found = true
		}
	}
	if !found {
		t.Skip("no instance triggered pruning; acceptable but unusual")
	}
}

func TestQuickCoverageEvalConsistency(t *testing.T) {
	// Eval must be order-independent in its set representation.
	c := RandomCoverage(11, 10, 30, 3, 1, 1)
	f := func(mask uint16) bool {
		s1, s2 := Set{}, Set{}
		for e := 0; e < 10; e++ {
			if mask&(1<<uint(e)) != 0 {
				s1.Add(e)
			}
		}
		for e := 9; e >= 0; e-- {
			if mask&(1<<uint(e)) != 0 {
				s2.Add(e)
			}
		}
		return c.Eval(s1) == c.Eval(s2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
