package submod

import (
	"context"
	"testing"
	"time"
)

func controlled(o *Oracle, ctx context.Context, maxCalls int, has bool, onProgress func(Progress)) *Oracle {
	o.SetControl(&Control{Ctx: ctx, MaxCalls: maxCalls, HasMaxCalls: has, OnProgress: onProgress})
	return o
}

func TestBudgetZeroCallsReturnsEmptySet(t *testing.T) {
	o := controlled(randomInstance(1, 12), nil, 0, true, nil)
	mg := MarginalGreedy(DecomposeStar(o))
	if !mg.Set.Empty() || mg.Value != 0 {
		t.Errorf("MarginalGreedy under zero budget: set %v value %v", mg.Set.Sorted(), mg.Value)
	}
	if mg.Stopped != StopCallBudget {
		t.Errorf("Stopped = %v, want %v", mg.Stopped, StopCallBudget)
	}
	if o.Calls != 0 {
		t.Errorf("zero budget spent %d oracle calls", o.Calls)
	}
	o2 := controlled(randomInstance(1, 12), nil, 0, true, nil)
	if g := Greedy(o2); !g.Set.Empty() || g.Stopped != StopCallBudget || o2.Calls != 0 {
		t.Errorf("Greedy under zero budget: set %v stopped %v calls %d", g.Set.Sorted(), g.Stopped, o2.Calls)
	}
}

func TestBudgetCallLimitIsDeterministic(t *testing.T) {
	unbounded := MarginalGreedy(DecomposeStar(randomInstance(2, 14)))
	for _, budget := range []int{20, 40, 80} {
		run := func() Result {
			o := controlled(randomInstance(2, 14), nil, budget, true, nil)
			return MarginalGreedy(DecomposeStar(o))
		}
		a, b := run(), run()
		if !a.Set.Equal(b.Set) || a.Stopped != b.Stopped {
			t.Fatalf("budget %d not deterministic: %v/%v vs %v/%v",
				budget, a.Set.Sorted(), a.Stopped, b.Set.Sorted(), b.Stopped)
		}
		// A budgeted run selects a prefix of the unbudgeted greedy order.
		a.Set.ForEach(func(e int) {
			if !unbounded.Set.Contains(e) {
				t.Errorf("budget %d selected %d, which the full run never picks", budget, e)
			}
		})
	}
	// A generous budget reproduces the unbudgeted answer exactly.
	o := controlled(randomInstance(2, 14), nil, 1<<20, true, nil)
	if full := MarginalGreedy(DecomposeStar(o)); !full.Set.Equal(unbounded.Set) || full.Stopped != StopNone {
		t.Errorf("large budget diverged: %v (%v) vs %v", full.Set.Sorted(), full.Stopped, unbounded.Set.Sorted())
	}
}

func TestBudgetCancelViaProgressIsDeterministic(t *testing.T) {
	run := func() (Result, int) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		rounds := 0
		o := randomInstance(3, 14)
		controlled(o, ctx, 0, false, func(p Progress) {
			rounds = p.Round
			if p.Round == 2 {
				cancel()
			}
		})
		return MarginalGreedy(DecomposeStar(o)), rounds
	}
	a, ra := run()
	b, rb := run()
	if !a.Set.Equal(b.Set) || ra != rb {
		t.Fatalf("cancellation not deterministic: %v (round %d) vs %v (round %d)",
			a.Set.Sorted(), ra, b.Set.Sorted(), rb)
	}
	if a.Stopped != StopCancelled {
		t.Errorf("Stopped = %v, want %v", a.Stopped, StopCancelled)
	}
	if got := a.Set.Len(); got != 2 {
		t.Errorf("cancelled after round 2 but kept %d selections", got)
	}
}

func TestBudgetExpiredDeadlineReportsTimeBudget(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	o := controlled(randomInstance(4, 12), ctx, 0, false, nil)
	mg := MarginalGreedy(DecomposeStar(o))
	if !mg.Set.Empty() || mg.Stopped != StopTimeBudget {
		t.Errorf("expired deadline: set %v stopped %v", mg.Set.Sorted(), mg.Stopped)
	}
	if o.Calls != 0 {
		t.Errorf("expired deadline still spent %d calls", o.Calls)
	}
}

// abortingBatch wraps a Function and fails the batch evaluation once the
// underlying context is cancelled — the shape of the bestCost batch path.
type abortingBatch struct {
	Function
	ctx context.Context
}

func (a *abortingBatch) EvalBatch(sets []Set) ([]float64, bool) {
	out := make([]float64, len(sets))
	for i, s := range sets {
		if a.ctx.Err() != nil {
			return out[:i], false
		}
		out[i] = a.Function.Eval(s)
	}
	return out, true
}

func TestBudgetMidBatchAbortKeepsCompletedRounds(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	inner := RandomCoverage(5, 12, 36, 3, 1.0, 1.2)
	o := NewOracle(&abortingBatch{Function: inner, ctx: ctx})
	controlled(o, ctx, 0, false, func(p Progress) {
		if p.Round == 1 {
			cancel() // next round's batch aborts mid-flight
		}
	})
	mg := MarginalGreedy(DecomposeStar(o))
	if mg.Stopped != StopCancelled {
		t.Errorf("Stopped = %v, want %v", mg.Stopped, StopCancelled)
	}
	if mg.Set.Len() != 1 {
		t.Errorf("kept %d selections, want the single completed round", mg.Set.Len())
	}
	// The reported value must be the real f of the returned set, not a
	// partial-batch artifact.
	if want := inner.Eval(mg.Set); mg.Value != want {
		t.Errorf("value %v != f(set) %v", mg.Value, want)
	}
}

func TestBudgetProgressReportsAdvance(t *testing.T) {
	var rounds []int
	var calls []int
	o := randomInstance(6, 12)
	controlled(o, nil, 0, false, func(p Progress) {
		if p.Algorithm != "MarginalGreedy" {
			t.Errorf("algorithm %q", p.Algorithm)
		}
		rounds = append(rounds, p.Round)
		calls = append(calls, p.OracleCalls)
	})
	mg := MarginalGreedy(DecomposeStar(o))
	if len(rounds) != mg.Set.Len() && len(rounds) != mg.Iterations {
		t.Logf("rounds reported: %v (iterations %d, selected %d)", rounds, mg.Iterations, mg.Set.Len())
	}
	for i := 1; i < len(rounds); i++ {
		if rounds[i] != rounds[i-1]+1 || calls[i] < calls[i-1] {
			t.Fatalf("progress not monotone: rounds %v calls %v", rounds, calls)
		}
	}
	if mg.Stopped != StopNone {
		t.Errorf("unbudgeted run reported Stopped = %v", mg.Stopped)
	}
}

func TestBudgetOffIsBitIdenticalToUncontrolled(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		plain := MarginalGreedy(DecomposeStar(randomInstance(seed, 12)))
		o := controlled(randomInstance(seed, 12), context.Background(), 0, false, nil)
		ctl := MarginalGreedy(DecomposeStar(o))
		if !plain.Set.Equal(ctl.Set) || plain.Value != ctl.Value || ctl.Stopped != StopNone {
			t.Fatalf("seed %d: controlled run diverged: %v/%v vs %v/%v",
				seed, plain.Set.Sorted(), plain.Value, ctl.Set.Sorted(), ctl.Value)
		}
	}
}
