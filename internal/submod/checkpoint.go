package submod

import (
	"fmt"
	"math"
)

// Checkpoint is a resumable round-boundary snapshot of a batched-lazy
// greedy run: everything the driver needs to continue exactly where a
// budget, cancellation, or recovered panic stopped it. It is pure data —
// no oracle or memo state — so a checkpoint taken on one session (even a
// quarantined one: the committed greedy prefix is exact regardless of what
// the panic poisoned) can be resumed on a fresh session over the same
// search space.
//
// Determinism contract: ResumeLazy over a checkpoint, against any oracle
// that prices sets identically, selects exactly the set an uninterrupted
// run would have selected, because the heap's (bound desc, element asc)
// order is total — the snapshot's contents, not its arrangement, determine
// every subsequent pop — and because chunked re-evaluation never affects
// which element wins a round.
//
// Float64 bounds and costs are stored as IEEE-754 bit patterns: the
// initial bounds are +Inf, which encoding/json cannot represent, and bit
// patterns survive JSON round-trips exactly where decimal rendering of
// extreme values might not.
type Checkpoint struct {
	// Algorithm names the lazy driver that produced the snapshot
	// ("MarginalGreedy", "LazyMarginalGreedy", "Greedy", "LazyGreedy");
	// resuming re-derives the chunk size and threshold from it.
	Algorithm string `json:"algorithm"`
	// Selected is the committed greedy prefix, ascending.
	Selected []int `json:"selected,omitempty"`
	// Heap is the surviving candidate queue in canonical (bound desc,
	// element asc) order, including any candidates that were popped for the
	// oracle round the stop interrupted (restored with their pre-round
	// stale bounds; the resumed run re-prices them).
	Heap []CheckpointItem `json:"heap,omitempty"`
	// CostBits carries the decomposition costs c(e) for the marginal
	// drivers (IEEE-754 bits, indexed by element), so a resume skips the
	// n+1 DecomposeStar oracle calls. Empty for the benefit-greedy drivers.
	CostBits []uint64 `json:"cost_bits,omitempty"`
	// MainDone marks a stop inside the free-element phase of the marginal
	// drivers: the heap phase is complete and the resume goes straight to
	// the remaining non-positive-cost elements (recomputed from CostBits
	// minus Selected).
	MainDone bool `json:"main_done,omitempty"`

	// Counter snapshots, so a resumed Result continues counting as if the
	// run had never stopped. Stale excludes pops of the interrupted round —
	// the resume performs and counts them itself.
	Iterations int `json:"iterations,omitempty"`
	Pruned     int `json:"pruned,omitempty"`
	Stale      int `json:"stale,omitempty"`
	Reused     int `json:"reused,omitempty"`
}

// CheckpointItem is one snapshotted heap entry.
type CheckpointItem struct {
	E         int    `json:"e"`
	BoundBits uint64 `json:"bound_bits"`
	State     uint8  `json:"state"`
}

// lazyParams maps a lazy driver name to its chunk size and whether it runs
// on a cost decomposition (marginal-ratio threshold 1 plus the free-element
// phase) rather than raw benefit.
func lazyParams(name string) (chunk int, marginal bool, err error) {
	switch name {
	case "MarginalGreedy":
		return lazyChunkSize, true, nil
	case "LazyMarginalGreedy":
		return 1, true, nil
	case "Greedy":
		return lazyChunkSize, false, nil
	case "LazyGreedy":
		return 1, false, nil
	}
	return 0, false, fmt.Errorf("submod: %q is not a resumable lazy driver", name)
}

// captureLazy snapshots an interrupted lazy run. popped holds the items of
// the oracle round the stop cut short (nil when the stop hit a round
// boundary); they rejoin the heap with their pre-round bounds. staleAt is
// the Stale counter before the interrupted round's pops.
func captureLazy(name string, x Set, q *lazyQueue, popped []lazyItem, staleAt int, d *Decomposition, res *Result) *Checkpoint {
	cp := &Checkpoint{
		Algorithm:  name,
		Selected:   x.Sorted(),
		Iterations: res.Iterations,
		Pruned:     res.Pruned,
		Stale:      staleAt,
		Reused:     res.Reused,
	}
	items := make([]lazyItem, 0, q.len()+len(popped))
	items = append(items, q.items...)
	items = append(items, popped...)
	sortLazyItems(items)
	for _, it := range items {
		cp.Heap = append(cp.Heap, CheckpointItem{
			E:         it.e,
			BoundBits: math.Float64bits(it.bound),
			State:     uint8(it.state),
		})
	}
	if d != nil {
		cp.CostBits = make([]uint64, len(d.C))
		for i, c := range d.C {
			cp.CostBits[i] = math.Float64bits(c)
		}
	}
	return cp
}

// captureFree snapshots a stop inside the free-element phase.
func captureFree(name string, x Set, d *Decomposition, res *Result) *Checkpoint {
	if _, _, err := lazyParams(name); err != nil {
		return nil // eager reference drivers do not checkpoint
	}
	cp := &Checkpoint{
		Algorithm:  name,
		Selected:   x.Sorted(),
		MainDone:   true,
		Iterations: res.Iterations,
		Pruned:     res.Pruned,
		Stale:      res.Stale,
		Reused:     res.Reused,
	}
	cp.CostBits = make([]uint64, len(d.C))
	for i, c := range d.C {
		cp.CostBits[i] = math.Float64bits(c)
	}
	return cp
}

// sortLazyItems orders items canonically: (bound desc, element asc) — the
// heap's total order, so rebuilding a heap from the sorted slice reproduces
// the exact pop sequence of the snapshotted one.
func sortLazyItems(items []lazyItem) {
	for i := 1; i < len(items); i++ {
		for j := i; j > 0; j-- {
			a, b := &items[j-1], &items[j]
			if b.bound > a.bound || (b.bound == a.bound && b.e < a.e) {
				items[j-1], items[j] = items[j], items[j-1]
			} else {
				break
			}
		}
	}
}

// Validate checks the snapshot's internal consistency against a universe of
// n elements: known algorithm, element indexes in range, no element both
// selected and queued, costs present exactly when the driver needs them.
func (cp *Checkpoint) Validate(n int) error {
	_, marginal, err := lazyParams(cp.Algorithm)
	if err != nil {
		return err
	}
	seen := make(map[int]bool, len(cp.Selected)+len(cp.Heap))
	for _, e := range cp.Selected {
		if e < 0 || e >= n {
			return fmt.Errorf("submod: checkpoint selects element %d outside universe [0,%d)", e, n)
		}
		if seen[e] {
			return fmt.Errorf("submod: checkpoint selects element %d twice", e)
		}
		seen[e] = true
	}
	for _, it := range cp.Heap {
		if it.E < 0 || it.E >= n {
			return fmt.Errorf("submod: checkpoint queues element %d outside universe [0,%d)", it.E, n)
		}
		if seen[it.E] {
			return fmt.Errorf("submod: checkpoint element %d both selected and queued", it.E)
		}
		seen[it.E] = true
		if it.State > uint8(lazyExact) {
			return fmt.Errorf("submod: checkpoint element %d has unknown lazy state %d", it.E, it.State)
		}
	}
	if marginal {
		if len(cp.CostBits) != n {
			return fmt.Errorf("submod: checkpoint carries %d costs for a universe of %d", len(cp.CostBits), n)
		}
	} else {
		if cp.MainDone {
			return fmt.Errorf("submod: %s checkpoint marks a free phase it does not have", cp.Algorithm)
		}
		if len(cp.CostBits) != 0 {
			return fmt.Errorf("submod: %s checkpoint carries costs it does not use", cp.Algorithm)
		}
	}
	return nil
}

// ResumeLazy continues a lazy-driver run from a checkpoint against a fresh
// oracle over the same universe. The final Result is bit-identical — same
// set, same value, same Iterations/Pruned/Stale/Reused counters — to the
// run the checkpoint interrupted had it never stopped, provided the oracle
// prices sets identically (same search space; validated upstream by the
// searcher fingerprint in repro.Checkpoint). The resumed run honors the
// oracle's own Control, so it can itself stop and produce a further
// checkpoint.
func ResumeLazy(o *Oracle, cp *Checkpoint) (Result, error) {
	if err := cp.Validate(o.N()); err != nil {
		return Result{}, err
	}
	chunk, marginal, _ := lazyParams(cp.Algorithm)
	var d *Decomposition
	if marginal {
		costs := make([]float64, len(cp.CostBits))
		for i, b := range cp.CostBits {
			costs[i] = math.Float64frombits(b)
		}
		d = NewDecomposition(o, costs)
	}
	res := Result{
		Iterations: cp.Iterations,
		Pruned:     cp.Pruned,
		Stale:      cp.Stale,
		Reused:     cp.Reused,
	}
	x := NewSet(cp.Selected...)
	if !cp.MainDone {
		q := lazyQueue{items: make([]lazyItem, 0, len(cp.Heap))}
		for _, it := range cp.Heap {
			q.push(lazyItem{e: it.E, bound: math.Float64frombits(it.BoundBits), state: lazyState(it.State)})
		}
		x = lazyRun(cp.Algorithm, o, d, &q, x, chunk, &res)
	}
	if marginal && res.Stopped == StopNone {
		var free []int
		for e := 0; e < o.N(); e++ {
			if d.C[e] <= epsCost && !x.Contains(e) {
				free = append(free, e)
			}
		}
		x = addFree(cp.Algorithm, d, x, free, &res)
	}
	res.finish(o, x)
	return res, nil
}
