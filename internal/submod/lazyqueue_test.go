package submod

import (
	"context"
	"math"
	"math/rand"
	"testing"
)

// blockFunc is a separable test function over a universe partitioned into
// fixed-size blocks: f(S) = Σ_b w_b·√|S∩b| − Σ_{e∈S} c_e. Marginals
// depend only on an element's own block, so Interacts is exact — the
// fixture for the dirty-candidate reuse path.
type blockFunc struct {
	n, blockSize int
	weights      []float64 // one per block
	costs        []float64 // one per element
}

func newBlockFunc(seed int64, n, blockSize int) *blockFunc {
	rng := rand.New(rand.NewSource(seed))
	f := &blockFunc{n: n, blockSize: blockSize}
	for b := 0; b < (n+blockSize-1)/blockSize; b++ {
		f.weights = append(f.weights, 1+3*rng.Float64())
	}
	for e := 0; e < n; e++ {
		f.costs = append(f.costs, 0.1+rng.Float64())
	}
	return f
}

func (f *blockFunc) N() int { return f.n }

func (f *blockFunc) Eval(s Set) float64 {
	counts := make([]int, len(f.weights))
	total := 0.0
	s.ForEach(func(e int) {
		counts[e/f.blockSize]++
		total -= f.costs[e]
	})
	for b, c := range counts {
		total += f.weights[b] * math.Sqrt(float64(c))
	}
	return total
}

func (f *blockFunc) Interacts(e, x int) bool { return e/f.blockSize == x/f.blockSize }

func TestLazyDriversMatchEagerReference(t *testing.T) {
	// Every lazy driver must select the set the exhaustive-scan reference
	// selects, on random coverage instances (Minoux bounds only) and on
	// block functions (bounds plus exact interaction reuse).
	for seed := int64(0); seed < 25; seed++ {
		eager := EagerMarginalGreedy(DecomposeStar(randomInstance(seed, 12)))
		for name, run := range map[string]func() Result{
			"MarginalGreedy":     func() Result { return MarginalGreedy(DecomposeStar(randomInstance(seed, 12))) },
			"LazyMarginalGreedy": func() Result { return LazyMarginalGreedy(DecomposeStar(randomInstance(seed, 12))) },
		} {
			if got := run(); !eager.Set.Equal(got.Set) {
				t.Fatalf("seed %d: %s %v != eager %v", seed, name, got.Set.Sorted(), eager.Set.Sorted())
			}
		}
		eg := EagerGreedy(randomInstance(seed, 12))
		if got := Greedy(randomInstance(seed, 12)); !eg.Set.Equal(got.Set) {
			t.Fatalf("seed %d: Greedy %v != eager %v", seed, got.Set.Sorted(), eg.Set.Sorted())
		}
		if got := LazyGreedy(randomInstance(seed, 12)); !eg.Set.Equal(got.Set) {
			t.Fatalf("seed %d: LazyGreedy %v != eager %v", seed, got.Set.Sorted(), eg.Set.Sorted())
		}
	}
}

func TestInteractionReuseMatchesEagerAndReports(t *testing.T) {
	sawReuse := false
	for seed := int64(0); seed < 20; seed++ {
		f := newBlockFunc(seed, 18, 3)
		mk := func() *Decomposition {
			return NewDecomposition(NewOracle(f), f.costs)
		}
		eager := EagerMarginalGreedy(mk())
		lazy := MarginalGreedy(mk())
		if !eager.Set.Equal(lazy.Set) {
			t.Fatalf("seed %d: lazy %v != eager %v", seed, lazy.Set.Sorted(), eager.Set.Sorted())
		}
		if math.Abs(eager.Value-lazy.Value) > 1e-9 {
			t.Fatalf("seed %d: values differ: %v vs %v", seed, eager.Value, lazy.Value)
		}
		if lazy.Reused > 0 {
			sawReuse = true
		}
		if eager.Reused != 0 || eager.Stale != 0 {
			t.Fatalf("seed %d: eager reference reported lazy telemetry %+v", seed, eager)
		}
	}
	if !sawReuse {
		t.Error("no block instance exercised the exact-reuse path (Reused always 0)")
	}
}

func TestLazySpendsFewerOracleCalls(t *testing.T) {
	// The point of laziness: the sequential lazy driver never spends more
	// memoized-distinct oracle calls than the exhaustive scan and spends
	// strictly fewer in aggregate. (The chunked MarginalGreedy driver
	// speculatively refreshes up to lazyChunkSize candidates per round, so
	// on toy universes no larger than the chunk it can tie the eager scan;
	// its savings show on real universes — see the workload benchmarks.)
	eagerTotal, lazyTotal := 0, 0
	for seed := int64(0); seed < 20; seed++ {
		o1, o2 := randomInstance(seed, 14), randomInstance(seed, 14)
		EagerMarginalGreedy(DecomposeStar(o1))
		LazyMarginalGreedy(DecomposeStar(o2))
		if o2.Calls > o1.Calls {
			t.Errorf("seed %d: lazy spent %d calls, eager %d", seed, o2.Calls, o1.Calls)
		}
		eagerTotal += o1.Calls
		lazyTotal += o2.Calls
	}
	if lazyTotal >= eagerTotal {
		t.Errorf("lazy aggregate %d calls, eager %d — no saving", lazyTotal, eagerTotal)
	}
}

func TestLazyChunkSizeDoesNotChangeSelection(t *testing.T) {
	// The chunk width is a pure batching knob: any chunk must produce the
	// selection of the sequential (chunk 1) driver.
	for seed := int64(0); seed < 15; seed++ {
		ref := LazyMarginalGreedy(DecomposeStar(randomInstance(seed, 14)))
		for _, chunk := range []int{2, 5, 64} {
			res := Result{}
			d := DecomposeStar(randomInstance(seed, 14))
			cands, free := d.positiveCostSplit()
			x := lazyMaximize("test", d.o, d, cands, chunk, &res)
			x = addFree("test", d, x, free, &res)
			if !ref.Set.Equal(x) {
				t.Fatalf("seed %d chunk %d: %v != chunk-1 %v", seed, chunk, x.Sorted(), ref.Set.Sorted())
			}
		}
	}
}

// cancelAfterFunc cancels its context after a fixed number of Eval calls.
type cancelAfterFunc struct {
	inner  Function
	left   int
	cancel context.CancelFunc
}

func (f *cancelAfterFunc) N() int { return f.inner.N() }

func (f *cancelAfterFunc) Eval(s Set) float64 {
	f.left--
	if f.left == 0 {
		f.cancel()
	}
	return f.inner.Eval(s)
}

func TestEvalBatchCommitsCompletedPrefix(t *testing.T) {
	// A mid-batch cancellation must report failure but keep the values it
	// already paid for: the completed prefix lands in the memo and the
	// call counter.
	ctx, cancel := context.WithCancel(context.Background())
	f := &cancelAfterFunc{inner: randomInstance(3, 10).F, left: 2, cancel: cancel}
	o := NewOracle(f)
	o.SetControl(&Control{Ctx: ctx})
	sets := []Set{NewSet(0), NewSet(1), NewSet(2), NewSet(3)}
	vals, ok := o.EvalBatch(sets)
	if ok || vals != nil {
		t.Fatalf("cancelled batch returned ok=%v vals=%v", ok, vals)
	}
	if o.Calls != 2 {
		t.Fatalf("committed %d calls, want the 2 completed before cancellation", o.Calls)
	}
	// The committed prefix is memo-hot: re-evaluating costs nothing.
	for i := 0; i < 2; i++ {
		if got, want := o.Eval(sets[i]), f.inner.Eval(sets[i]); got != want {
			t.Errorf("memoized prefix value %d: %v != %v", i, got, want)
		}
	}
	if o.Calls != 2 {
		t.Errorf("prefix re-reads spent oracle calls: %d", o.Calls)
	}
	if o.StopReason() != StopCancelled {
		t.Errorf("stop reason = %v", o.StopReason())
	}
}

// prefixBatchFunc is a BatchFunction that completes only a prefix of each
// batch, exercising the partial-commit path of Oracle.EvalBatch.
type prefixBatchFunc struct {
	inner Function
	keep  int
}

func (f *prefixBatchFunc) N() int             { return f.inner.N() }
func (f *prefixBatchFunc) Eval(s Set) float64 { return f.inner.Eval(s) }

func (f *prefixBatchFunc) EvalBatch(sets []Set) ([]float64, bool) {
	n := f.keep
	if n > len(sets) {
		n = len(sets)
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = f.inner.Eval(sets[i])
	}
	return out, n == len(sets)
}

func TestEvalBatchCommitsBatchFunctionPrefix(t *testing.T) {
	f := &prefixBatchFunc{inner: randomInstance(7, 10).F, keep: 3}
	o := NewOracle(f)
	o.SetControl(&Control{}) // so the abort is classified into a stop reason
	sets := []Set{NewSet(0), NewSet(1), NewSet(2), NewSet(3), NewSet(4)}
	if _, ok := o.EvalBatch(sets); ok {
		t.Fatal("prefix batch reported ok")
	}
	if o.Calls != 3 {
		t.Fatalf("committed %d calls, want 3", o.Calls)
	}
	for i := 0; i < 3; i++ {
		if got, want := o.Eval(sets[i]), f.inner.Eval(sets[i]); got != want {
			t.Errorf("prefix value %d: %v != %v", i, got, want)
		}
	}
	if o.Calls != 3 {
		t.Errorf("prefix re-reads spent oracle calls: %d", o.Calls)
	}
	if o.StopReason() != StopCancelled {
		t.Errorf("stop reason = %v", o.StopReason())
	}
}
