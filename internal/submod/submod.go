// Package submod is a generic library for unconstrained, normalized
// submodular maximization (UNSM) — the abstract problem the paper reduces
// MQO to. The function f : 2^U → R is normalized (f(∅)=0) and may take
// negative values. The central pieces are:
//
//   - the Proposition 1 decomposition f = f*_M − c* with
//     c*(e) = f(U∖{e}) − f(U), shown by the paper to be the best possible
//     decomposition;
//   - the MarginalGreedy algorithm (Algorithm 2) with the Theorem 1
//     guarantee f(X) ≥ [1 − (c(Θ)/f(Θ))·ln(1 + f(Θ)/c(Θ))]·f(Θ);
//   - LazyMarginalGreedy (Section 5.2), the ratio<1 permanent pruning
//     (Section 5.1), the cardinality-constrained variant with Theorem 4
//     universe reduction (Section 5.3);
//   - the classic benefit Greedy of Roy et al. for comparison, and an
//     exhaustive optimizer for small universes;
//   - coverage functions and the Profitted Max Coverage instances used in
//     the Theorem 2 hardness construction, which we reuse to validate the
//     approximation bound empirically.
package submod

import (
	"math"
	"sort"
)

// Set is a subset of the universe, represented by element indexes.
type Set map[int]bool

// NewSet builds a set from element indexes.
func NewSet(elems ...int) Set {
	s := make(Set, len(elems))
	for _, e := range elems {
		s[e] = true
	}
	return s
}

// Clone returns a copy of the set.
func (s Set) Clone() Set {
	out := make(Set, len(s)+1)
	for e := range s {
		out[e] = true
	}
	return out
}

// With returns a copy with e added.
func (s Set) With(e int) Set {
	out := s.Clone()
	out[e] = true
	return out
}

// Without returns a copy with e removed.
func (s Set) Without(e int) Set {
	out := s.Clone()
	delete(out, e)
	return out
}

// Sorted returns the elements in increasing order.
func (s Set) Sorted() []int {
	out := make([]int, 0, len(s))
	for e := range s {
		out = append(out, e)
	}
	sort.Ints(out)
	return out
}

// Equal reports set equality.
func (s Set) Equal(o Set) bool {
	if len(s) != len(o) {
		return false
	}
	for e := range s {
		if !o[e] {
			return false
		}
	}
	return true
}

// Key renders the set canonically for memoization.
func (s Set) Key() uint64 {
	// FNV-1a over the sorted elements.
	var h uint64 = 1469598103934665603
	for _, e := range s.Sorted() {
		v := uint64(e)
		for i := 0; i < 8; i++ {
			h ^= (v >> uint(8*i)) & 0xff
			h *= 1099511628211
		}
	}
	return h
}

// Function is a set function over a universe {0, …, N()-1}.
type Function interface {
	// N returns the universe size.
	N() int
	// Eval returns f(S).
	Eval(s Set) float64
}

// BatchFunction is an optional Function extension: EvalBatch returns
// f(S) for every set, and may evaluate them concurrently. Results must be
// bit-identical to calling Eval on each set — implementations achieve this
// by keeping every single evaluation sequential and only running distinct
// evaluations in parallel.
type BatchFunction interface {
	Function
	EvalBatch(sets []Set) []float64
}

// Oracle wraps a Function with memoization and an evaluation counter, so
// algorithms can be compared by the number of (potentially expensive)
// oracle calls — in MQO each call is one bestCost optimization.
type Oracle struct {
	F     Function
	Calls int

	memo map[uint64]float64
}

// NewOracle wraps f.
func NewOracle(f Function) *Oracle {
	return &Oracle{F: f, memo: map[uint64]float64{}}
}

// Eval returns f(S), memoized.
func (o *Oracle) Eval(s Set) float64 {
	k := s.Key()
	if v, ok := o.memo[k]; ok {
		return v
	}
	o.Calls++
	v := o.F.Eval(s)
	o.memo[k] = v
	return v
}

// EvalBatch returns f(S) for every set, memoized. Sets not in the memo are
// evaluated together — concurrently when the underlying function supports
// it — so one greedy round costs one batched oracle call. The results (and
// the memo and call counter afterwards) are identical to evaluating each
// set with Eval in order.
func (o *Oracle) EvalBatch(sets []Set) []float64 {
	out := make([]float64, len(sets))
	keys := make([]uint64, len(sets))
	var missIdx []int
	seen := map[uint64]bool{}
	for i, s := range sets {
		k := s.Key()
		keys[i] = k
		if v, ok := o.memo[k]; ok {
			out[i] = v
		} else if !seen[k] {
			seen[k] = true
			missIdx = append(missIdx, i)
		}
	}
	if len(missIdx) > 0 {
		if bf, ok := o.F.(BatchFunction); ok && len(missIdx) > 1 {
			miss := make([]Set, len(missIdx))
			for j, i := range missIdx {
				miss[j] = sets[i]
			}
			vals := bf.EvalBatch(miss)
			for j, i := range missIdx {
				o.Calls++
				o.memo[keys[i]] = vals[j]
			}
		} else {
			for _, i := range missIdx {
				o.Calls++
				o.memo[keys[i]] = o.F.Eval(sets[i])
			}
		}
		// Fill every position (duplicates included) from the memo.
		for i := range sets {
			out[i] = o.memo[keys[i]]
		}
	}
	return out
}

// N returns the universe size.
func (o *Oracle) N() int { return o.F.N() }

// Universe returns the full set.
func (o *Oracle) Universe() Set {
	s := make(Set, o.N())
	for i := 0; i < o.N(); i++ {
		s[i] = true
	}
	return s
}

// Decomposition is a split f = FM − C with FM monotone submodular and C
// additive (C given by per-element costs).
type Decomposition struct {
	o *Oracle
	// C holds the additive costs c({e}).
	C []float64
}

// DecomposeStar computes the Proposition 1 decomposition:
// c*(e) = f(U∖{e}) − f(U). It uses exactly n+1 oracle calls (for U and
// each U∖{e}); the n leave-one-out evaluations run as one batched —
// possibly concurrent — oracle call.
func DecomposeStar(o *Oracle) *Decomposition {
	u := o.Universe()
	fu := o.Eval(u)
	sets := make([]Set, o.N())
	for e := range sets {
		sets[e] = u.Without(e)
	}
	vals := o.EvalBatch(sets)
	c := make([]float64, o.N())
	for e := range c {
		c[e] = vals[e] - fu
	}
	return &Decomposition{o: o, C: c}
}

// NewDecomposition builds a decomposition with explicit additive costs;
// the caller asserts that f + Σ_{e∈S} cost(e) is monotone submodular.
func NewDecomposition(o *Oracle, costs []float64) *Decomposition {
	c := make([]float64, len(costs))
	copy(c, costs)
	return &Decomposition{o: o, C: c}
}

// F returns f(S).
func (d *Decomposition) F(s Set) float64 { return d.o.Eval(s) }

// FM returns the monotone part f_M(S) = f(S) + Σ_{e∈S} c(e).
func (d *Decomposition) FM(s Set) float64 {
	v := d.o.Eval(s)
	for e := range s {
		v += d.C[e]
	}
	return v
}

// MarginalFM returns f'_M(e, S) = f(S∪{e}) − f(S) + c(e) for e ∉ S.
func (d *Decomposition) MarginalFM(e int, s Set) float64 {
	return d.o.Eval(s.With(e)) - d.o.Eval(s) + d.C[e]
}

// Ratio returns f'_M(e, S) / c(e); callers must ensure c(e) > 0.
func (d *Decomposition) Ratio(e int, s Set) float64 {
	return d.RatioFrom(d.o.Eval(s.With(e)), d.o.Eval(s), e)
}

// RatioFrom is Ratio computed from already-evaluated f(S∪{e}) and f(S);
// the batched greedy rounds use it so the sequential and batched paths
// share one definition of the ratio.
func (d *Decomposition) RatioFrom(fxe, fx float64, e int) float64 {
	return (fxe - fx + d.C[e]) / d.C[e]
}

// Oracle returns the underlying oracle.
func (d *Decomposition) Oracle() *Oracle { return d.o }

// TheoremOneBound returns the Theorem 1 guarantee
// [1 − (c/f)·ln(1 + f/c)]·f for the optimum value f = f(Θ) and its cost
// c = c(Θ). For c ≤ 0 or f ≤ 0 the bound degenerates and 0 is returned.
func TheoremOneBound(fTheta, cTheta float64) float64 {
	if fTheta <= 0 || cTheta <= 0 {
		return 0
	}
	gamma := fTheta / cTheta
	return (1 - math.Log(1+gamma)/gamma) * fTheta
}
