// Package submod is a generic library for unconstrained, normalized
// submodular maximization (UNSM) — the abstract problem the paper reduces
// MQO to. The function f : 2^U → R is normalized (f(∅)=0) and may take
// negative values. The central pieces are:
//
//   - the Proposition 1 decomposition f = f*_M − c* with
//     c*(e) = f(U∖{e}) − f(U), shown by the paper to be the best possible
//     decomposition;
//   - the MarginalGreedy algorithm (Algorithm 2) with the Theorem 1
//     guarantee f(X) ≥ [1 − (c(Θ)/f(Θ))·ln(1 + f(Θ)/c(Θ))]·f(Θ);
//   - LazyMarginalGreedy (Section 5.2), the ratio<1 permanent pruning
//     (Section 5.1), the cardinality-constrained variant with Theorem 4
//     universe reduction (Section 5.3);
//   - the classic benefit Greedy of Roy et al. for comparison, and an
//     exhaustive optimizer for small universes;
//   - coverage functions and the Profitted Max Coverage instances used in
//     the Theorem 2 hardness construction, which we reuse to validate the
//     approximation bound empirically.
//
// # Lazy evaluation and incremental marginal maintenance
//
// All four greedy drivers (Greedy, LazyGreedy, MarginalGreedy,
// LazyMarginalGreedy) share one batched-lazy engine (lazyMaximize): a
// max-heap of per-candidate upper bounds, ordered (bound desc, element
// asc) to mirror the eager scan's first-maximum tie-break. A candidate is
// re-evaluated only while its stale bound still tops the heap — in oracle
// rounds of up to lazyChunkSize batched (possibly concurrent) evaluations
// for Greedy/MarginalGreedy, or one at a time for the sequential Lazy*
// variants. By diminishing returns a bound never understates the true
// marginal, so the element selected when the top is exact is precisely the
// element the exhaustive scan would pick; stale bounds at or below the
// selection threshold are still re-priced before the scan concludes, so a
// mild submodularity violation surfaces exactly as it would eagerly.
//
// On top of the bounds, the drivers maintain marginals incrementally
// across rounds: when the oracle's function also implements
// InteractionFunction, each selection marks only the candidates whose
// cost paths can see the selected node as dirty, and the rest keep their
// marginals as exact — selectable without any re-evaluation. For the MQO
// benefit function this is the share-index test "no query root contains
// both nodes" (physical.Searcher.SharesQueryRoot). Result.{Pruned, Stale,
// Reused} split the scan volume into permanently discarded candidates,
// stale re-evaluations performed, and exact marginals carried across
// selections; the exhaustive-scan references (EagerGreedy,
// EagerMarginalGreedy) remain as the verification baseline the lazy
// drivers are pinned bit-identical against.
package submod

import (
	"math"
	"math/bits"
)

// Set is a subset of the universe, represented as a bitset over element
// indexes. The zero value is the empty set. With/Without return modified
// copies (the functional style the algorithms use); Add mutates in place.
// Unlike the earlier map representation, a Set never allocates per element
// on membership tests and copies in O(universe/64) words, which removes the
// remaining per-round allocations in the greedy drivers.
type Set struct {
	words []uint64
}

// NewSet builds a set from element indexes.
func NewSet(elems ...int) Set {
	var s Set
	for _, e := range elems {
		s.Add(e)
	}
	return s
}

// Add inserts e, growing the bitset as needed.
func (s *Set) Add(e int) {
	w := e >> 6
	for len(s.words) <= w {
		s.words = append(s.words, 0)
	}
	s.words[w] |= 1 << uint(e&63)
}

// Remove deletes e in place.
func (s *Set) Remove(e int) {
	if w := e >> 6; w < len(s.words) {
		s.words[w] &^= 1 << uint(e&63)
	}
}

// Contains reports membership.
func (s Set) Contains(e int) bool {
	w := e >> 6
	return w < len(s.words) && s.words[w]&(1<<uint(e&63)) != 0
}

// Len returns the number of elements.
func (s Set) Len() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether the set has no elements.
func (s Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns a copy of the set.
func (s Set) Clone() Set {
	if len(s.words) == 0 {
		return Set{}
	}
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	return Set{words: w}
}

// With returns a copy with e added.
func (s Set) With(e int) Set {
	n := len(s.words)
	if w := e>>6 + 1; w > n {
		n = w
	}
	words := make([]uint64, n)
	copy(words, s.words)
	words[e>>6] |= 1 << uint(e&63)
	return Set{words: words}
}

// Without returns a copy with e removed.
func (s Set) Without(e int) Set {
	out := s.Clone()
	out.Remove(e)
	return out
}

// ForEach calls fn for every element in increasing order.
func (s Set) ForEach(fn func(e int)) {
	for wi, w := range s.words {
		for w != 0 {
			fn(wi<<6 + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// Sorted returns the elements in increasing order.
func (s Set) Sorted() []int {
	out := make([]int, 0, s.Len())
	for wi, w := range s.words {
		for w != 0 {
			out = append(out, wi<<6+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	return out
}

// Equal reports set equality (trailing zero words are insignificant).
func (s Set) Equal(o Set) bool {
	a, b := s.words, o.words
	if len(a) > len(b) {
		a, b = b, a
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	for _, w := range b[len(a):] {
		if w != 0 {
			return false
		}
	}
	return true
}

// Key renders the set canonically for memoization: FNV-1a over the elements
// in increasing order (the exact hash the map representation used, so
// memoization behavior is unchanged).
func (s Set) Key() uint64 {
	var h uint64 = 1469598103934665603
	for wi, w := range s.words {
		for w != 0 {
			v := uint64(wi<<6 + bits.TrailingZeros64(w))
			w &= w - 1
			for i := 0; i < 8; i++ {
				h ^= (v >> uint(8*i)) & 0xff
				h *= 1099511628211
			}
		}
	}
	return h
}

// Function is a set function over a universe {0, …, N()-1}.
type Function interface {
	// N returns the universe size.
	N() int
	// Eval returns f(S).
	Eval(s Set) float64
}

// BatchFunction is an optional Function extension: EvalBatch returns
// f(S) for every set and true, and may evaluate the sets concurrently.
// Results must be bit-identical to calling Eval on each set —
// implementations achieve this by keeping every single evaluation
// sequential and only running distinct evaluations in parallel. When the
// evaluation context is cancelled mid-batch, implementations return
// (prefix, false) where prefix holds the completed leading results in
// input order (possibly empty): every value present is exact and may be
// committed; positions past the prefix were not evaluated.
type BatchFunction interface {
	Function
	EvalBatch(sets []Set) ([]float64, bool)
}

// InteractionFunction is an optional Function extension carrying the
// structural independence the dirty-candidate lazy drivers exploit:
// Interacts(e, x) reports whether adding x to the current set can change
// e's marginal. The contract is exact: when Interacts(e, x) is false, then
// for every set S with e, x ∉ S,
//
//	f(S∪{e}) − f(S) = f(S∪{x}∪{e}) − f(S∪{x})
//
// as real numbers. (Floating-point evaluation of the two sides may differ
// in the last units of precision; callers that reuse marginals accept
// that rounding, and the parity suites pin that it never changes a
// selection on the covered workloads.) For the MQO benefit function the
// test is "no query root has both nodes in its cone": cost changes
// propagate only upward from a materialized node, so candidates in
// disjoint root cones can never see each other (see
// physical.Searcher.SharesQueryRoot). Implementations must be safe for
// concurrent readers.
type InteractionFunction interface {
	Function
	Interacts(e, x int) bool
}

// MemoL2 is an optional cross-run store of memoized f(S) values, keyed by
// Set.Key. Because f is a pure function of the search space it was built
// over, a value computed by any earlier run over the same space is exactly
// the value this run would compute — so an L2 hit skips the oracle call
// entirely without changing any result. The owner is responsible for
// namespacing: an L2 handed to an Oracle must only ever serve values
// computed for the same function (repro wires it to the session's
// SharedCache under the search-space fingerprint). Implementations must be
// safe for concurrent use by multiple oracles.
type MemoL2 interface {
	Get(key uint64) (float64, bool)
	Put(key uint64, v float64)
}

// Oracle wraps a Function with memoization and an evaluation counter, so
// algorithms can be compared by the number of (potentially expensive)
// oracle calls — in MQO each call is one bestCost optimization. An
// optional Control (SetControl) bounds a run by context cancellation and
// an oracle-call budget; the algorithms check Interrupted between rounds
// and stop with a deterministic best-so-far set.
//
// An optional L2 (set before the run starts) serves values memoized by
// earlier runs over the same function: a hit fills the run memo without
// counting an oracle call (L2Hits counts them instead), and every freshly
// evaluated value is published back. Values are pure, so an L2 changes
// only the Calls accounting — never a selected set or a cost.
type Oracle struct {
	F     Function
	Calls int
	// L2 is the optional cross-run value store; nil means every distinct
	// set costs a real oracle call.
	L2 MemoL2
	// L2Hits counts distinct sets served from the L2 instead of the
	// function — the warm-start savings of this run.
	L2Hits int

	ctrl *Control
	memo map[uint64]float64
}

// NewOracle wraps f.
func NewOracle(f Function) *Oracle {
	return &Oracle{F: f, memo: map[uint64]float64{}}
}

// Eval returns f(S), memoized.
func (o *Oracle) Eval(s Set) float64 {
	k := s.Key()
	if v, ok := o.memo[k]; ok {
		return v
	}
	if o.L2 != nil {
		if v, ok := o.L2.Get(k); ok {
			o.L2Hits++
			o.memo[k] = v
			return v
		}
	}
	o.Calls++
	v := o.F.Eval(s)
	o.memo[k] = v
	if o.L2 != nil {
		o.L2.Put(k, v)
	}
	return v
}

// EvalBatch returns f(S) for every set, memoized, and true. Sets not in
// the memo are evaluated together — concurrently when the underlying
// function supports it — so one greedy round costs one batched oracle
// call. The results (and the memo and call counter afterwards) are
// identical to evaluating each set with Eval in order. When the run's
// context is cancelled mid-batch, EvalBatch returns (nil, false) but the
// completed prefix of the interrupted batch is committed to the memo (and
// the call counter) first: every such value is an exact, deterministic
// f(S), so committing it can never change a later result — it only spares
// a budget-interrupted round from discarding work it already paid for.
func (o *Oracle) EvalBatch(sets []Set) ([]float64, bool) {
	out := make([]float64, len(sets))
	keys := make([]uint64, len(sets))
	var missIdx []int
	seen := map[uint64]bool{}
	for i, s := range sets {
		k := s.Key()
		keys[i] = k
		if v, ok := o.memo[k]; ok {
			out[i] = v
			continue
		}
		if seen[k] {
			continue
		}
		if o.L2 != nil {
			if v, ok := o.L2.Get(k); ok {
				o.L2Hits++
				o.memo[k] = v
				out[i] = v
				continue
			}
		}
		seen[k] = true
		missIdx = append(missIdx, i)
	}
	if len(missIdx) > 0 {
		if bf, ok := o.F.(BatchFunction); ok && len(missIdx) > 1 {
			miss := make([]Set, len(missIdx))
			for j, i := range missIdx {
				miss[j] = sets[i]
			}
			vals, ok := bf.EvalBatch(miss)
			// Commit whatever completed — the whole batch, or the leading
			// prefix of an interrupted one.
			for j := 0; j < len(vals) && j < len(missIdx); j++ {
				o.Calls++
				o.memo[keys[missIdx[j]]] = vals[j]
				if o.L2 != nil {
					o.L2.Put(keys[missIdx[j]], vals[j])
				}
			}
			if !ok {
				o.markCancelled()
				return nil, false
			}
		} else {
			for _, i := range missIdx {
				if o.ctxCancelled() {
					return nil, false
				}
				v := o.F.Eval(sets[i])
				o.Calls++
				o.memo[keys[i]] = v
				if o.L2 != nil {
					o.L2.Put(keys[i], v)
				}
			}
		}
		// Fill every position (duplicates included) from the memo.
		for i := range sets {
			out[i] = o.memo[keys[i]]
		}
	}
	return out, true
}

// N returns the universe size.
func (o *Oracle) N() int { return o.F.N() }

// Universe returns the full set.
func (o *Oracle) Universe() Set {
	n := o.N()
	if n == 0 {
		return Set{}
	}
	words := make([]uint64, (n+63)/64)
	for i := range words {
		words[i] = ^uint64(0)
	}
	if r := n & 63; r != 0 {
		words[len(words)-1] = 1<<uint(r) - 1
	}
	return Set{words: words}
}

// Decomposition is a split f = FM − C with FM monotone submodular and C
// additive (C given by per-element costs).
type Decomposition struct {
	o *Oracle
	// C holds the additive costs c({e}).
	C []float64
	// truncated marks a decomposition whose cost computation was cut off
	// by the oracle's budget or context; the marginal-greedy algorithms
	// return an empty best-so-far result instead of consuming it.
	truncated bool
}

// Truncated reports whether the decomposition was interrupted before its
// costs were computed (its C is unusable).
func (d *Decomposition) Truncated() bool { return d.truncated }

// DecomposeStar computes the Proposition 1 decomposition:
// c*(e) = f(U∖{e}) − f(U). It uses exactly n+1 oracle calls (for U and
// each U∖{e}); the n leave-one-out evaluations run as one batched —
// possibly concurrent — oracle call. When the oracle's budget is already
// exhausted (or is cut off mid-batch) the returned decomposition is marked
// Truncated and carries no costs.
func DecomposeStar(o *Oracle) *Decomposition {
	if o.Interrupted() {
		return &Decomposition{o: o, truncated: true}
	}
	u := o.Universe()
	fu := o.Eval(u)
	sets := make([]Set, o.N())
	for e := range sets {
		sets[e] = u.Without(e)
	}
	vals, ok := o.EvalBatch(sets)
	if !ok {
		return &Decomposition{o: o, truncated: true}
	}
	c := make([]float64, o.N())
	for e := range c {
		c[e] = vals[e] - fu
	}
	return &Decomposition{o: o, C: c}
}

// NewDecomposition builds a decomposition with explicit additive costs;
// the caller asserts that f + Σ_{e∈S} cost(e) is monotone submodular.
func NewDecomposition(o *Oracle, costs []float64) *Decomposition {
	c := make([]float64, len(costs))
	copy(c, costs)
	return &Decomposition{o: o, C: c}
}

// F returns f(S).
func (d *Decomposition) F(s Set) float64 { return d.o.Eval(s) }

// FM returns the monotone part f_M(S) = f(S) + Σ_{e∈S} c(e).
func (d *Decomposition) FM(s Set) float64 {
	v := d.o.Eval(s)
	s.ForEach(func(e int) { v += d.C[e] })
	return v
}

// MarginalFM returns f'_M(e, S) = f(S∪{e}) − f(S) + c(e) for e ∉ S.
func (d *Decomposition) MarginalFM(e int, s Set) float64 {
	return d.o.Eval(s.With(e)) - d.o.Eval(s) + d.C[e]
}

// Ratio returns f'_M(e, S) / c(e); callers must ensure c(e) > 0.
func (d *Decomposition) Ratio(e int, s Set) float64 {
	return d.RatioFrom(d.o.Eval(s.With(e)), d.o.Eval(s), e)
}

// RatioFrom is Ratio computed from already-evaluated f(S∪{e}) and f(S);
// the batched greedy rounds use it so the sequential and batched paths
// share one definition of the ratio.
func (d *Decomposition) RatioFrom(fxe, fx float64, e int) float64 {
	return (fxe - fx + d.C[e]) / d.C[e]
}

// Oracle returns the underlying oracle.
func (d *Decomposition) Oracle() *Oracle { return d.o }

// TheoremOneBound returns the Theorem 1 guarantee
// [1 − (c/f)·ln(1 + f/c)]·f for the optimum value f = f(Θ) and its cost
// c = c(Θ). For c ≤ 0 or f ≤ 0 the bound degenerates and 0 is returned.
func TheoremOneBound(fTheta, cTheta float64) float64 {
	if fTheta <= 0 || cTheta <= 0 {
		return 0
	}
	gamma := fTheta / cTheta
	return (1 - math.Log(1+gamma)/gamma) * fTheta
}
