package submod

import "math/rand"

// Coverage is a weighted coverage function with additive element costs:
// f(A) = w·|∪_{i∈A} S_i| − Σ_{i∈A} cost_i. It is normalized, submodular
// and generally non-monotone — the standard test family for UNSM, and the
// shape of the MQO materialization-benefit function (shared work covered
// minus materialization cost).
type Coverage struct {
	Sets    [][]int // Sets[i] lists the ground elements covered by set i
	GroundN int
	Weight  float64
	Costs   []float64
}

// N returns the number of sets.
func (c *Coverage) N() int { return len(c.Sets) }

// Eval returns f(A). Costs are summed in sorted element order so equal
// sets evaluate bit-identically regardless of how they were built.
func (c *Coverage) Eval(a Set) float64 {
	covered := make(map[int]bool)
	total := 0.0
	for _, i := range a.Sorted() {
		for _, g := range c.Sets[i] {
			covered[g] = true
		}
		total -= c.Costs[i]
	}
	return total + c.Weight*float64(len(covered))
}

// RandomCoverage generates a deterministic random coverage instance:
// n sets over a ground set of groundN elements, each set covering
// setSize random elements, with costs uniform in [0, maxCost).
func RandomCoverage(seed int64, n, groundN, setSize int, weight, maxCost float64) *Coverage {
	r := rand.New(rand.NewSource(seed))
	c := &Coverage{GroundN: groundN, Weight: weight}
	for i := 0; i < n; i++ {
		seen := map[int]bool{}
		var s []int
		for len(s) < setSize {
			g := r.Intn(groundN)
			if !seen[g] {
				seen[g] = true
				s = append(s, g)
			}
		}
		c.Sets = append(c.Sets, s)
		c.Costs = append(c.Costs, r.Float64()*maxCost)
	}
	return c
}

// ProfittedMaxCoverage is Problem 1 of the paper — the instance family used
// in the Theorem 2 hardness construction:
//
//	f_M(A) = ((γ+1)/γ)·|∪A|/n,   c(A) = (1/γ)·|A|/l,   f = f_M − c.
//
// When l sets cover the ground set exactly, the optimum value is 1 with
// f(Θ)/c(Θ) = γ, so instances with known planted covers let us check the
// Theorem 1 guarantee empirically.
type ProfittedMaxCoverage struct {
	Sets    [][]int
	GroundN int
	Gamma   float64
	L       int
}

// N returns the number of sets.
func (p *ProfittedMaxCoverage) N() int { return len(p.Sets) }

// Eval returns f(A).
func (p *ProfittedMaxCoverage) Eval(a Set) float64 {
	covered := map[int]bool{}
	a.ForEach(func(i int) {
		for _, g := range p.Sets[i] {
			covered[g] = true
		}
	})
	fm := (p.Gamma + 1) / p.Gamma * float64(len(covered)) / float64(p.GroundN)
	c := float64(a.Len()) / (p.Gamma * float64(p.L))
	return fm - c
}

// ExplicitCosts returns the additive costs c({e}) = 1/(γ·l) of the
// problem's own decomposition (every set costs the same).
func (p *ProfittedMaxCoverage) ExplicitCosts() []float64 {
	out := make([]float64, p.N())
	for i := range out {
		out[i] = 1 / (p.Gamma * float64(p.L))
	}
	return out
}

// PlantedInstance builds a Profitted Max Coverage instance with a planted
// optimal cover: the ground set of size groundN is partitioned into l
// planted sets (so optimal value 1 is achievable), plus extra random
// overlapping sets that a greedy algorithm may be tempted by.
func PlantedInstance(seed int64, groundN, l, extraSets, extraSize int, gamma float64) *ProfittedMaxCoverage {
	r := rand.New(rand.NewSource(seed))
	p := &ProfittedMaxCoverage{GroundN: groundN, Gamma: gamma, L: l}
	perm := r.Perm(groundN)
	per := groundN / l
	for i := 0; i < l; i++ {
		lo := i * per
		hi := lo + per
		if i == l-1 {
			hi = groundN
		}
		p.Sets = append(p.Sets, append([]int(nil), perm[lo:hi]...))
	}
	for i := 0; i < extraSets; i++ {
		seen := map[int]bool{}
		var s []int
		for len(s) < extraSize {
			g := r.Intn(groundN)
			if !seen[g] {
				seen[g] = true
				s = append(s, g)
			}
		}
		p.Sets = append(p.Sets, s)
	}
	return p
}
