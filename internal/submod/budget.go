package submod

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
)

// StopReason says why a maximization run ended before its natural
// termination; StopNone marks a complete run.
type StopReason int

// Stop reasons.
const (
	// StopNone: the algorithm ran to its own stopping condition.
	StopNone StopReason = iota
	// StopCancelled: the run's context was cancelled.
	StopCancelled
	// StopTimeBudget: the run's context deadline (the time budget) passed.
	StopTimeBudget
	// StopCallBudget: the oracle-call budget was exhausted.
	StopCallBudget
	// StopPanic: the oracle recovered a panic mid-batch; the run stopped on
	// the committed prefix and the fault is available via Oracle.Fault.
	StopPanic
	// StopPreempted: a scheduler suspended the run at a round boundary by
	// cancelling its context with ErrPreempted as the cause. The run's
	// checkpoint resumes it bit-identically; preemption is a yield, not a
	// failure.
	StopPreempted
)

// ErrPreempted is the cancellation cause a scheduler uses to suspend a run
// at its next round boundary. Cancelling a run's context via
// context.WithCancelCause(...) with this cause makes the stop classify as
// StopPreempted instead of StopCancelled.
var ErrPreempted = errors.New("submod: run preempted")

// String implements fmt.Stringer.
func (r StopReason) String() string {
	switch r {
	case StopNone:
		return "none"
	case StopCancelled:
		return "cancelled"
	case StopTimeBudget:
		return "time-budget"
	case StopCallBudget:
		return "call-budget"
	case StopPanic:
		return "panic"
	case StopPreempted:
		return "preempted"
	default:
		return "unknown"
	}
}

// ParseStopReason is the inverse of String for the defined reasons.
func ParseStopReason(s string) (StopReason, error) {
	switch s {
	case "none":
		return StopNone, nil
	case "cancelled":
		return StopCancelled, nil
	case "time-budget":
		return StopTimeBudget, nil
	case "call-budget":
		return StopCallBudget, nil
	case "panic":
		return StopPanic, nil
	case "preempted":
		return StopPreempted, nil
	}
	return 0, fmt.Errorf("submod: unknown stop reason %q", s)
}

// MarshalJSON renders the reason as its String form, so telemetry on the
// wire says "time-budget" rather than an opaque integer.
func (r StopReason) MarshalJSON() ([]byte, error) {
	return json.Marshal(r.String())
}

// UnmarshalJSON parses the String form written by MarshalJSON.
func (r *StopReason) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	v, err := ParseStopReason(s)
	if err != nil {
		return err
	}
	*r = v
	return nil
}

// Progress is a per-round report delivered to a Control's OnProgress
// callback after every completed algorithm round. Callbacks run on the
// algorithm's goroutine between oracle rounds, so cancelling the run's
// context from inside one stops the algorithm at a deterministic round.
type Progress struct {
	Algorithm   string  // e.g. "MarginalGreedy"
	Round       int     // 1-based completed round
	Selected    int     // |X| so far
	Remaining   int     // candidates still in play
	OracleCalls int     // memoized-distinct oracle calls so far
	Best        float64 // f(X) of the current selection
}

// Control bounds one maximization run. All checks happen between oracle
// rounds (a round's batch runs to completion unless the context itself is
// cancelled mid-batch), so a stopped run returns a deterministic
// best-so-far set: the greedy prefix selected by the completed rounds.
type Control struct {
	// Ctx cancels the run; nil means never. Time budgets are expressed as
	// context deadlines and reported as StopTimeBudget.
	Ctx context.Context
	// MaxCalls caps the memoized-distinct oracle calls when HasMaxCalls is
	// set. Zero with HasMaxCalls set forbids any oracle call: algorithms
	// return the empty set.
	MaxCalls    int
	HasMaxCalls bool
	// OnProgress, when non-nil, receives a report after every completed
	// round.
	OnProgress func(Progress)

	reason StopReason // sticky once a stop condition has been observed
	fault  error      // the recovered panic behind a StopPanic reason
}

// Reason returns the recorded stop reason (StopNone while running).
func (c *Control) Reason() StopReason {
	if c == nil {
		return StopNone
	}
	return c.reason
}

// Fault returns the recovered panic that stopped the run (nil unless the
// reason is StopPanic).
func (c *Control) Fault() error {
	if c == nil {
		return nil
	}
	return c.fault
}

// Faulter is the optional interface a BatchFunction implements to surface
// a panic it recovered during an aborted batch: Fault returns — and clears
// — the error behind the most recent ok=false result.
// physical.Searcher-backed oracles implement it via TakeFault.
type Faulter interface {
	Fault() error
}

// Fault returns the recovered panic that stopped this oracle's run, if
// any. It is sticky on the control, not the underlying function, so it
// survives after the function's own fault slot is drained.
func (o *Oracle) Fault() error { return o.ctrl.Fault() }

// SetControl attaches a control to the oracle; nil detaches it.
func (o *Oracle) SetControl(c *Control) { o.ctrl = c }

// Control returns the attached control (nil when unbounded).
func (o *Oracle) Control() *Control { return o.ctrl }

// Interrupted reports — stickily — whether the run must stop: the context
// is done, or the oracle-call budget is spent. Algorithms check it between
// rounds.
func (o *Oracle) Interrupted() bool { return o.stopReason() != StopNone }

// StopReason returns why the run stopped (StopNone while unbounded or
// still running).
func (o *Oracle) StopReason() StopReason { return o.stopReason() }

func (o *Oracle) stopReason() StopReason {
	c := o.ctrl
	if c == nil {
		return StopNone
	}
	if c.reason != StopNone {
		return c.reason
	}
	if c.Ctx != nil {
		c.reason = ctxStopReason(c.Ctx)
	}
	if c.reason == StopNone && c.HasMaxCalls && o.Calls >= c.MaxCalls {
		c.reason = StopCallBudget
	}
	return c.reason
}

// CtxStopReason classifies a context error as a stop reason: nil maps to
// StopNone, a deadline to StopTimeBudget, ErrPreempted (a cancellation
// cause, surfaced via context.Cause) to StopPreempted, anything else to
// StopCancelled. It is the single classification rule for every budget
// check.
func CtxStopReason(err error) StopReason {
	switch {
	case err == nil:
		return StopNone
	case errors.Is(err, context.DeadlineExceeded):
		return StopTimeBudget
	case errors.Is(err, ErrPreempted):
		return StopPreempted
	default:
		return StopCancelled
	}
}

// ctxStopReason classifies a done context, preferring its cancellation
// cause (which carries ErrPreempted for scheduler preemption) over the
// bare Err.
func ctxStopReason(ctx context.Context) StopReason {
	if ctx.Err() == nil {
		return StopNone
	}
	if cause := context.Cause(ctx); cause != nil {
		return CtxStopReason(cause)
	}
	return CtxStopReason(ctx.Err())
}

// ctxCancelled reports whether the context alone is done (the mid-batch
// abort condition: call budgets never cut a round short), recording the
// reason when it is.
func (o *Oracle) ctxCancelled() bool {
	c := o.ctrl
	if c == nil || c.Ctx == nil || c.Ctx.Err() == nil {
		return false
	}
	if c.reason == StopNone {
		c.reason = ctxStopReason(c.Ctx)
	}
	return true
}

// markCancelled records a mid-batch abort reported by a BatchFunction: a
// recovered panic (surfaced through the optional Faulter interface) wins
// over budget classification, otherwise the context's error decides.
func (o *Oracle) markCancelled() {
	if o.ctrl == nil {
		return
	}
	if f, ok := o.F.(Faulter); ok {
		if err := f.Fault(); err != nil {
			if o.ctrl.reason == StopNone || o.ctrl.reason == StopCancelled {
				o.ctrl.reason = StopPanic
				o.ctrl.fault = err
			}
			return
		}
	}
	if !o.ctxCancelled() && o.ctrl.reason == StopNone {
		o.ctrl.reason = StopCancelled
	}
}

// progress emits a per-round report to the control's callback, if any.
func (o *Oracle) progress(alg string, round, selected, remaining int, best float64) {
	if o.ctrl == nil || o.ctrl.OnProgress == nil {
		return
	}
	o.ctrl.OnProgress(Progress{
		Algorithm:   alg,
		Round:       round,
		Selected:    selected,
		Remaining:   remaining,
		OracleCalls: o.Calls,
		Best:        best,
	})
}
