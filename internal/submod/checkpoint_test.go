package submod

import (
	"context"
	"encoding/json"
	"testing"
)

// resumableDrivers enumerates every lazy driver with its entry point; the
// checkpoint tests sweep all of them.
var resumableDrivers = []struct {
	name string
	run  func(o *Oracle) Result
}{
	{"MarginalGreedy", func(o *Oracle) Result { return MarginalGreedy(DecomposeStar(o)) }},
	{"LazyMarginalGreedy", func(o *Oracle) Result { return LazyMarginalGreedy(DecomposeStar(o)) }},
	{"Greedy", func(o *Oracle) Result { return Greedy(o) }},
	{"LazyGreedy", func(o *Oracle) Result { return LazyGreedy(o) }},
}

// roundTripCheckpoint pushes a checkpoint through its JSON wire form — the
// shape repro.Session hands to HTTP clients — so the tests prove the
// serialized token, not the in-memory struct, is what resumes.
func roundTripCheckpoint(t *testing.T, cp *Checkpoint) *Checkpoint {
	t.Helper()
	b, err := json.Marshal(cp)
	if err != nil {
		t.Fatalf("marshal checkpoint: %v", err)
	}
	out := &Checkpoint{}
	if err := json.Unmarshal(b, out); err != nil {
		t.Fatalf("unmarshal checkpoint: %v", err)
	}
	return out
}

func assertResumeMatches(t *testing.T, label string, ref, got Result) {
	t.Helper()
	if !got.Set.Equal(ref.Set) {
		t.Fatalf("%s: resumed set %v != uninterrupted %v", label, got.Set.Sorted(), ref.Set.Sorted())
	}
	if got.Value != ref.Value {
		t.Fatalf("%s: resumed value %v != uninterrupted %v", label, got.Value, ref.Value)
	}
	if got.Iterations != ref.Iterations || got.Pruned != ref.Pruned ||
		got.Stale != ref.Stale || got.Reused != ref.Reused {
		t.Fatalf("%s: resumed counters %+v != uninterrupted %+v", label, got, ref)
	}
	if got.Stopped != StopNone || got.Checkpoint != nil {
		t.Fatalf("%s: resumed run did not complete: stopped=%v checkpoint=%v", label, got.Stopped, got.Checkpoint)
	}
}

func TestCheckpointResumeBitIdenticalEveryCutPoint(t *testing.T) {
	// For every lazy driver and every possible call-budget cut point, a
	// budget-stopped run plus a resume from its (JSON round-tripped)
	// checkpoint must reproduce the uninterrupted run exactly: same set,
	// same value, same Iterations/Pruned/Stale/Reused.
	for _, dc := range resumableDrivers {
		for seed := int64(0); seed < 3; seed++ {
			refO := randomInstance(seed, 12)
			ref := dc.run(refO)
			total := refO.Calls
			sawCheckpoint := false
			for k := 0; k <= total; k++ {
				o := randomInstance(seed, 12)
				o.SetControl(&Control{MaxCalls: k, HasMaxCalls: true})
				partial := dc.run(o)
				if partial.Stopped == StopNone {
					if !partial.Set.Equal(ref.Set) {
						t.Fatalf("%s seed %d budget %d: unstopped run diverged", dc.name, seed, k)
					}
					continue
				}
				if partial.Stopped != StopCallBudget {
					t.Fatalf("%s seed %d budget %d: stopped %v", dc.name, seed, k, partial.Stopped)
				}
				if partial.Checkpoint == nil {
					// Stopped before the driver had any state to snapshot
					// (e.g. the decomposition itself was truncated).
					if !partial.Set.Empty() {
						t.Fatalf("%s seed %d budget %d: non-empty stop without checkpoint", dc.name, seed, k)
					}
					continue
				}
				sawCheckpoint = true
				cp := roundTripCheckpoint(t, partial.Checkpoint)
				got, err := ResumeLazy(randomInstance(seed, 12), cp)
				if err != nil {
					t.Fatalf("%s seed %d budget %d: resume: %v", dc.name, seed, k, err)
				}
				assertResumeMatches(t, dc.name, ref, got)
			}
			if !sawCheckpoint {
				t.Errorf("%s seed %d: no budget produced a checkpoint", dc.name, seed)
			}
		}
	}
}

func TestCheckpointMidBatchCancelRestoresRound(t *testing.T) {
	// A context cancellation lands mid-batch (unlike call budgets, which
	// stop at round boundaries): the popped candidates of the cut round
	// must rejoin the checkpoint with their pre-round bounds so the resume
	// re-prices them, reproducing the uninterrupted run exactly.
	const seed, n = 5, 12
	refO := randomInstance(seed, n)
	ref := Greedy(refO)
	sawCheckpoint := false
	for cut := 1; cut <= refO.Calls; cut++ {
		ctx, cancel := context.WithCancel(context.Background())
		f := &cancelAfterFunc{inner: randomInstance(seed, n).F, left: cut, cancel: cancel}
		o := NewOracle(f)
		o.SetControl(&Control{Ctx: ctx})
		partial := Greedy(o)
		cancel()
		if partial.Stopped == StopNone {
			continue
		}
		if partial.Checkpoint == nil {
			t.Fatalf("cut %d: stopped (%v) without checkpoint", cut, partial.Stopped)
		}
		sawCheckpoint = true
		got, err := ResumeLazy(randomInstance(seed, n), roundTripCheckpoint(t, partial.Checkpoint))
		if err != nil {
			t.Fatalf("cut %d: resume: %v", cut, err)
		}
		assertResumeMatches(t, "Greedy/midbatch", ref, got)
	}
	if !sawCheckpoint {
		t.Error("no cancellation point produced a checkpoint")
	}
}

func TestCheckpointResumesFreePhase(t *testing.T) {
	// Zero-cost elements force the marginal drivers into the free-element
	// phase; budgets landing inside it must yield MainDone checkpoints that
	// resume to the uninterrupted result.
	for seed := int64(0); seed < 3; seed++ {
		f := newBlockFunc(seed, 12, 3)
		costs := append([]float64(nil), f.costs...)
		costs[2], costs[7], costs[11] = 0, 0, 0
		ref := MarginalGreedy(NewDecomposition(NewOracle(f), costs))
		refCalls := 0
		{
			o := NewOracle(f)
			MarginalGreedy(NewDecomposition(o, costs))
			refCalls = o.Calls
		}
		sawFree := false
		for k := 0; k <= refCalls; k++ {
			o := NewOracle(f)
			o.SetControl(&Control{MaxCalls: k, HasMaxCalls: true})
			partial := MarginalGreedy(NewDecomposition(o, costs))
			if partial.Checkpoint == nil {
				continue
			}
			if partial.Checkpoint.MainDone {
				sawFree = true
			}
			got, err := ResumeLazy(NewOracle(f), roundTripCheckpoint(t, partial.Checkpoint))
			if err != nil {
				t.Fatalf("seed %d budget %d: resume: %v", seed, k, err)
			}
			assertResumeMatches(t, "MarginalGreedy/free", ref, got)
		}
		if !sawFree {
			t.Errorf("seed %d: no budget cut inside the free phase", seed)
		}
	}
}

func TestCheckpointChainedResume(t *testing.T) {
	// A resumed run under a budget produces a further checkpoint; chaining
	// tiny-budget resumes to completion must still reproduce the
	// uninterrupted run. This is the preemption loop a scheduler would
	// drive.
	const seed, n = 1, 12
	refO := randomInstance(seed, n)
	ref := LazyMarginalGreedy(DecomposeStar(refO))
	o := randomInstance(seed, n)
	o.SetControl(&Control{MaxCalls: n + 3, HasMaxCalls: true})
	partial := LazyMarginalGreedy(DecomposeStar(o))
	if partial.Checkpoint == nil {
		t.Fatalf("budget %d produced no checkpoint (stopped %v)", n+3, partial.Stopped)
	}
	cp := partial.Checkpoint
	hops := 0
	var got Result
	for {
		if hops++; hops > 500 {
			t.Fatal("chained resume made no progress")
		}
		o := randomInstance(seed, n)
		o.SetControl(&Control{MaxCalls: 3, HasMaxCalls: true})
		r, err := ResumeLazy(o, roundTripCheckpoint(t, cp))
		if err != nil {
			t.Fatalf("hop %d: %v", hops, err)
		}
		if r.Stopped == StopNone {
			got = r
			break
		}
		if r.Checkpoint == nil {
			t.Fatalf("hop %d: stopped (%v) without checkpoint", hops, r.Stopped)
		}
		cp = r.Checkpoint
	}
	if !got.Set.Equal(ref.Set) || got.Value != ref.Value {
		t.Fatalf("chained resume diverged: %v (%v) != %v (%v)",
			got.Set.Sorted(), got.Value, ref.Set.Sorted(), ref.Value)
	}
}

func TestCheckpointValidateRejectsMalformed(t *testing.T) {
	good := func() *Checkpoint {
		return &Checkpoint{
			Algorithm: "Greedy",
			Selected:  []int{1},
			Heap:      []CheckpointItem{{E: 2}, {E: 3}},
		}
	}
	cases := []struct {
		label  string
		mutate func(cp *Checkpoint)
	}{
		{"unknown algorithm", func(cp *Checkpoint) { cp.Algorithm = "EagerGreedy" }},
		{"element out of range", func(cp *Checkpoint) { cp.Selected = []int{99} }},
		{"selected twice", func(cp *Checkpoint) { cp.Selected = []int{1, 1} }},
		{"selected and queued", func(cp *Checkpoint) { cp.Heap[0].E = 1 }},
		{"bad lazy state", func(cp *Checkpoint) { cp.Heap[0].State = 9 }},
		{"costs on benefit driver", func(cp *Checkpoint) { cp.CostBits = make([]uint64, 10) }},
		{"free phase on benefit driver", func(cp *Checkpoint) { cp.MainDone = true }},
		{"missing costs", func(cp *Checkpoint) { cp.Algorithm = "MarginalGreedy" }},
	}
	for _, c := range cases {
		cp := good()
		c.mutate(cp)
		if err := cp.Validate(10); err == nil {
			t.Errorf("%s: Validate accepted the checkpoint", c.label)
		}
	}
	if err := good().Validate(10); err != nil {
		t.Errorf("well-formed checkpoint rejected: %v", err)
	}
}
