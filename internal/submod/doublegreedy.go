package submod

// DoubleGreedy is the deterministic double-greedy of Buchbinder et al.
// [FOCS 2012]: a 1/3-approximation (1/2 randomized) for unconstrained
// maximization of NON-NEGATIVE submodular functions. The paper contrasts
// it with MarginalGreedy: mb can be negative, and the obvious repair —
// additively shifting f by a large constant M — both breaks the
// multiplicative guarantee (it becomes relative to f+M, not f) and, as the
// experiments in internal/experiments show, steers the algorithm badly.
// It is included as the baseline the paper argues against.
//
// shift is added to f before running (pass 0 for already non-negative f);
// the returned Result reports the value of the ORIGINAL f on the chosen
// set.
func DoubleGreedy(o *Oracle, shift float64) Result {
	n := o.N()
	x := Set{}        // grows from ∅
	y := o.Universe() // shrinks from U
	res := Result{}
	for e := 0; e < n; e++ {
		if o.Interrupted() {
			res.Stopped = o.StopReason()
			break
		}
		res.Iterations++
		a := (o.Eval(x.With(e)) + shift) - (o.Eval(x) + shift)
		b := (o.Eval(y.Without(e)) + shift) - (o.Eval(y) + shift)
		if a >= b {
			x = x.With(e)
		} else {
			y = y.Without(e)
		}
	}
	// x == y at termination (on an interrupted run x holds the decided
	// prefix).
	res.finish(o, x)
	return res
}

// ShiftToNonNegative returns a shift that makes f(S)+shift ≥ 0 over a
// sampled family of sets (all singletons, the universe, and each
// U∖{e}); for the coverage-style functions used here the minimum is
// attained on such sets. It is deliberately the naive repair the paper
// says is insufficient.
func ShiftToNonNegative(o *Oracle) float64 {
	min := 0.0 // f(∅) = 0
	consider := func(v float64) {
		if v < min {
			min = v
		}
	}
	u := o.Universe()
	consider(o.Eval(u))
	for e := 0; e < o.N(); e++ {
		consider(o.Eval(NewSet(e)))
		consider(o.Eval(u.Without(e)))
	}
	return -min
}
