package submod

import (
	"math"

	"repro/internal/faultinject"
)

// lazyChunkSize is the number of stale candidates a batched-lazy driver
// refreshes per oracle round once every candidate has been priced at least
// once. It is a fixed constant — deliberately independent of the oracle's
// evaluation parallelism — so the sequence of evaluated sets, and therefore
// every call-budget stop point, is identical at every Parallelism setting.
const lazyChunkSize = 16

// lazyState classifies the cached bound of one candidate in a lazyQueue.
type lazyState uint8

const (
	// lazyStale: the bound is an upper bound on the candidate's current
	// marginal (its value at the last evaluation; valid by diminishing
	// returns). The candidate must be re-evaluated before it can be
	// selected.
	lazyStale lazyState = iota
	// lazyFresh: the bound is the candidate's exact marginal against the
	// current selection, evaluated since the last selection was made.
	lazyFresh
	// lazyExact: the bound was evaluated before one or more selections,
	// but every node selected since is provably non-interacting
	// (InteractionFunction), so the marginal is unchanged and the
	// candidate may be selected without re-evaluation.
	lazyExact
)

// lazyItem is one candidate in the queue.
type lazyItem struct {
	e     int
	bound float64
	state lazyState
}

// lazyQueue is a max-heap of candidates ordered by (bound desc, element
// asc). The tie-break mirrors the eager scan's first-maximum rule: among
// equal bounds the smallest element index surfaces first, so a lazy driver
// selects exactly the element an exhaustive scan would.
type lazyQueue struct {
	items []lazyItem
}

func (q *lazyQueue) len() int { return len(q.items) }

func (q *lazyQueue) less(i, j int) bool {
	if q.items[i].bound != q.items[j].bound {
		return q.items[i].bound > q.items[j].bound
	}
	return q.items[i].e < q.items[j].e
}

func (q *lazyQueue) swap(i, j int) { q.items[i], q.items[j] = q.items[j], q.items[i] }

func (q *lazyQueue) push(it lazyItem) {
	q.items = append(q.items, it)
	q.up(len(q.items) - 1)
}

// popTop removes and returns the maximum item.
func (q *lazyQueue) popTop() lazyItem {
	top := q.items[0]
	n := len(q.items) - 1
	q.swap(0, n)
	q.items = q.items[:n]
	if n > 0 {
		q.down(0)
	}
	return top
}

func (q *lazyQueue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q *lazyQueue) down(i int) {
	n := len(q.items)
	for {
		l, r := 2*i+1, 2*i+2
		if l >= n {
			return
		}
		c := l
		if r < n && q.less(r, l) {
			c = r
		}
		if !q.less(c, i) {
			return
		}
		q.swap(i, c)
		i = c
	}
}

// demote reclassifies every non-stale candidate after x was selected:
// candidates that provably cannot interact with x (per inter, when the
// oracle's function advertises interaction structure) keep their exact
// marginals; everything else falls back to a stale upper bound. It returns
// the number of exact marginals carried over.
func (q *lazyQueue) demote(inter InteractionFunction, x int) int {
	reused := 0
	for i := range q.items {
		it := &q.items[i]
		if it.state == lazyStale {
			continue
		}
		if inter != nil && !inter.Interacts(it.e, x) {
			it.state = lazyExact
			reused++
		} else {
			it.state = lazyStale
		}
	}
	return reused
}

// lazyMaximize is the shared batched-lazy greedy driver behind Greedy,
// LazyGreedy, MarginalGreedy and LazyMarginalGreedy. It maintains the
// Minoux max-heap of upper bounds over cands and repeatedly:
//
//   - selects the top candidate outright when its bound is exact (freshly
//     evaluated this round, or provably unchanged via the oracle's
//     InteractionFunction) and above the threshold;
//   - otherwise refreshes up to chunk stale candidates from the top of the
//     heap in one batched — possibly concurrent — oracle round. The first
//     pass (infinite initial bounds) always refreshes every candidate in a
//     single batch, exactly like an eager scan's first round.
//
// With d == nil it maximizes raw marginal gain f(X∪{e})−f(X) with
// threshold 0 (benefit greedy); with a decomposition it maximizes the
// marginal-ratio f'_M/c with threshold 1 and permanently prunes candidates
// observed below ratio 1 (Section 5.1). The selected set is identical to
// the exhaustive-scan drivers whenever the diminishing-returns assumption
// holds (and, for exact reuse, the InteractionFunction contract); chunk
// only trades oracle-round size against wall-clock parallelism and never
// affects which element is selected.
//
// Budgets and cancellation are checked before every oracle round; a
// stopped run keeps the deterministic greedy prefix selected so far and
// exports a Checkpoint (see checkpoint.go) from which ResumeLazy continues
// bit-identically.
func lazyMaximize(name string, o *Oracle, d *Decomposition, cands []int, chunk int, res *Result) Set {
	q := lazyQueue{items: make([]lazyItem, 0, len(cands))}
	for _, e := range cands {
		q.push(lazyItem{e: e, bound: math.Inf(1), state: lazyStale})
	}
	return lazyRun(name, o, d, &q, Set{}, chunk, res)
}

// lazyRun is the driver loop behind lazyMaximize and ResumeLazy: it takes
// over an existing heap and selection, so a resumed run enters exactly the
// state the interrupted one left.
func lazyRun(name string, o *Oracle, d *Decomposition, q *lazyQueue, x Set, chunk int, res *Result) Set {
	inter, _ := o.F.(InteractionFunction)
	threshold := 0.0
	if d != nil {
		threshold = 1
	}
	var sets []Set
	var elems []int
	var popped []lazyItem
	for q.len() > 0 {
		faultinject.Hit(faultinject.Round)
		if o.Interrupted() {
			res.Stopped = o.StopReason()
			res.Checkpoint = captureLazy(name, x, q, nil, res.Stale, d, res)
			break
		}
		top := q.items[0]
		if top.state != lazyStale {
			if top.bound <= threshold {
				// The top bound is exact and at or below the threshold;
				// every other bound lies below it, so no candidate can be
				// selected: the greedy run is complete.
				break
			}
			// The top bound is exact and above threshold: it is the true
			// maximum (every other bound is an upper bound below or equal
			// to it), so this is exactly the element an exhaustive scan
			// would select.
			q.popTop()
			x = x.With(top.e)
			res.Iterations++
			cur := o.Eval(x)
			res.Reused += q.demote(inter, top.e)
			o.progress(name, res.Iterations, x.Len(), q.len(), cur)
			continue
		}
		// Refresh a chunk of stale candidates from the top of the heap in
		// one batched oracle round. Stale bounds at or below the threshold
		// are still re-priced (not skipped): a real oracle may violate
		// diminishing returns slightly, and re-evaluation lets a recovered
		// candidate surface exactly as it would under an exhaustive scan.
		// Never-evaluated candidates (infinite bound) are refreshed
		// together regardless of chunk, so the first round prices the
		// whole universe in a single batch.
		staleAt := res.Stale
		elems = elems[:0]
		popped = popped[:0]
		for q.len() > 0 && q.items[0].state == lazyStale &&
			(len(elems) < chunk || math.IsInf(q.items[0].bound, 1)) {
			it := q.popTop()
			if !math.IsInf(it.bound, 1) {
				res.Stale++
			}
			popped = append(popped, it)
			elems = append(elems, it.e)
		}
		sets = sets[:0]
		for _, e := range elems {
			sets = append(sets, x.With(e))
		}
		vals, ok := o.EvalBatch(sets)
		if !ok {
			// The round was cut short. The popped candidates rejoin the
			// checkpoint heap with their pre-round stale bounds (its Stale
			// snapshot rolls back likewise), so the resumed run re-prices
			// them exactly as this round would have.
			res.Stopped = o.StopReason()
			res.Checkpoint = captureLazy(name, x, q, popped, staleAt, d, res)
			break
		}
		cur := o.Eval(x)
		for i, e := range elems {
			if d != nil {
				r := d.RatioFrom(vals[i], cur, e)
				if r < 1 {
					res.Pruned++ // permanently pruned (Section 5.1)
					continue
				}
				q.push(lazyItem{e: e, bound: r, state: lazyFresh})
			} else {
				q.push(lazyItem{e: e, bound: vals[i] - cur, state: lazyFresh})
			}
		}
	}
	return x
}
