package physical

import (
	"context"
	"testing"
)

// TestBestCostBatchCtxComplete: with a live context the ctx-aware batch is
// bit-identical to the sequential oracle and reports ok.
func TestBestCostBatchCtxComplete(t *testing.T) {
	s := buildSearcher(t, sharedPairQueries()...)
	sh := s.M.Shareable()
	var mats []NodeSet
	mats = append(mats, NodeSet{})
	for _, id := range sh {
		mats = append(mats, s.NewNodeSet(id))
	}
	s.Parallelism = 4
	got, ok := s.BestCostBatchCtx(context.Background(), mats)
	if !ok {
		t.Fatal("live context reported cancelled")
	}
	for i, m := range mats {
		if want := s.BestCost(m); got[i] != want {
			t.Errorf("set %d: batch %v != sequential %v", i, got[i], want)
		}
	}
}

// TestBestCostBatchCtxCancelled: a cancelled context stops the batch before
// any further evaluation and reports ok=false, for both the sequential and
// the concurrent dispatch paths.
func TestBestCostBatchCtxCancelled(t *testing.T) {
	s := buildSearcher(t, sharedPairQueries()...)
	sh := s.M.Shareable()
	mats := make([]NodeSet, 0, len(sh))
	for _, id := range sh {
		mats = append(mats, s.NewNodeSet(id))
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, par := range []int{1, 4} {
		s.Parallelism = par
		before := s.BCCalls
		if _, ok := s.BestCostBatchCtx(ctx, mats); ok {
			t.Errorf("par=%d: cancelled context reported ok", par)
		}
		if s.BCCalls != before {
			t.Errorf("par=%d: cancelled batch still ran %d evaluations", par, s.BCCalls-before)
		}
	}
}

// TestExtractCallsCounted: BestPlan reports its extraction resolutions.
func TestExtractCallsCounted(t *testing.T) {
	s := buildSearcher(t, sharedPairQueries()...)
	s.ResetStats()
	plan := s.BestPlan(NodeSet{})
	if plan == nil || len(plan.Queries) != 2 {
		t.Fatalf("plan: %+v", plan)
	}
	if s.ExtractCalls == 0 {
		t.Error("ExtractCalls not counted during BestPlan")
	}
	n := s.ExtractCalls
	s.ResetStats()
	if s.ExtractCalls != 0 {
		t.Error("ResetStats left ExtractCalls")
	}
	s.BestPlan(NodeSet{})
	if s.ExtractCalls != n {
		t.Errorf("extraction not deterministic: %d then %d resolutions", n, s.ExtractCalls)
	}
}
