package physical

import (
	"sort"

	"repro/internal/cardinality"
	"repro/internal/expr"
	"repro/internal/memo"
)

// Physical operator names.
const (
	OpNameScan      = "tablescan"
	OpNameIndexScan = "indexscan"
	OpNameFilter    = "filter"
	OpNameBNLJ      = "nlj"
	OpNameMergeJoin = "mergejoin"
	OpNameHashJoin  = "hashjoin"
	OpNameSortAgg   = "sortagg"
	OpNameHashAgg   = "hashagg"
	OpNameReAgg     = "reagg"
	OpNameSort      = "sort"
	OpNameMatScan   = "matscan"
)

// tmpl is one compiled physical implementation choice for a group: its
// precomputed local cost, child requirements as interned order ids and the
// order it delivers. Templates are enumerated in exactly the order the
// candidate rules define, so strict-< minima (and the first-within-epsilon
// pick of plan extraction) resolve identically to direct enumeration.
type tmpl struct {
	op    string
	e     *memo.MExpr
	local float64 // local cost when matGate is satisfied (or always)
	// localSpill is the BNLJ local cost when the inner input must be
	// spilled to a temporary file first; equal to local for other ops.
	localSpill float64
	// matGate selects between local (group materialized under the current
	// set, inner re-readable) and localSpill; -1 when the choice is static.
	matGate memo.GroupID
	out     ordID
	child   [2]childReq
	nchild  uint8
	// passthrough marks the order-preserving filter: it delivers whatever
	// order is required and forwards the requirement to its only child.
	passthrough bool
	// extended marks hash join / hash aggregation, enumerated only when
	// the searcher's ExtendedOps is on.
	extended bool
	swap     bool
	indexCol string
}

type childReq struct {
	g   memo.GroupID
	ord ordID
}

// buildTemplates compiles the candidate templates of one group, in the
// exact order candidate generation enumerates implementations: per
// operator node — scans (full scan, then one indexed selection per indexed
// conjunct), order-preserving filters, joins (BNLJ both operand orders,
// hash join both orders, merge join both column orders), aggregations
// (sort-based, then hash).
func (s *Searcher) buildTemplates(g memo.GroupID) []tmpl {
	var out []tmpl
	for _, e := range s.M.Group(g).Exprs {
		switch e.Kind {
		case memo.OpScan:
			out = append(out, s.scanTemplates(g, e)...)
		case memo.OpFilter:
			child := e.Children[0]
			out = append(out, tmpl{
				op:          OpNameFilter,
				e:           e,
				local:       s.M.Model.FilterCost(s.blocksArr[child]),
				localSpill:  s.M.Model.FilterCost(s.blocksArr[child]),
				matGate:     -1,
				child:       [2]childReq{{g: child}},
				nchild:      1,
				passthrough: true,
			})
		case memo.OpJoin:
			out = append(out, s.joinTemplates(g, e)...)
		case memo.OpAgg, memo.OpReAgg:
			out = append(out, s.aggTemplates(g, e)...)
		}
	}
	return out
}

func (s *Searcher) scanTemplates(g memo.GroupID, e *memo.MExpr) []tmpl {
	m := s.M.Model
	t, _ := s.M.Cat.Table(e.Table)
	tableBlocks := m.Blocks(t.Rows, t.RowWidth())
	var out []tmpl

	// Full sequential scan (+ filter). A clustered table is stored in
	// clustered-key order, so the scan delivers that order.
	var scanOrd Order
	if cix, ok := t.ClusteredIndex(); ok {
		scanOrd = Order{{Alias: memo.CanonAlias(g), Column: cix.Column}}
	}
	cost := m.ScanCost(tableBlocks)
	if !e.Pred.True() {
		cost += m.FilterCost(tableBlocks)
	}
	out = append(out, tmpl{
		op: OpNameScan, e: e, local: cost, localSpill: cost, matGate: -1,
		out: s.intern(scanOrd),
	})

	// Indexed selection per indexed conjunct; delivers index-column order.
	alias := memo.CanonAlias(e.Group)
	base := cardinality.BaseProps(t, alias)
	for _, cmp := range e.Pred.Conj {
		ix, ok := t.IndexOn(cmp.Col.Column)
		if !ok {
			continue
		}
		sel := cardinality.Selectivity(base, expr.Pred{Conj: []expr.Cmp{cmp}})
		rows := t.Rows * sel
		matchBlk := m.Blocks(rows, t.RowWidth())
		cost := m.IndexScanCost(tableBlocks, matchBlk, rows, ix.Clustered)
		if len(e.Pred.Conj) > 1 {
			cost += m.FilterCost(matchBlk) // residual predicate
		}
		out = append(out, tmpl{
			op: OpNameIndexScan, e: e, local: cost, localSpill: cost, matGate: -1,
			out: s.intern(Order{cmp.Col}), indexCol: cmp.Col.Column,
		})
	}
	return out
}

func (s *Searcher) joinTemplates(g memo.GroupID, e *memo.MExpr) []tmpl {
	m := s.M.Model
	outBlocks := s.blocksArr[g]
	var out []tmpl
	a, b := e.Children[0], e.Children[1]
	aBlocks, bBlocks := s.blocksArr[a], s.blocksArr[b]

	// Block nested-loops join, both operand orders. Delivers no order;
	// when an order is required the enforcer path in compute() covers it.
	// Re-reading the inner costs only I/O when it is an unfiltered base
	// relation, or when it is materialized under the current set — the
	// latter decided per evaluation via matGate.
	for swap := 0; swap < 2; swap++ {
		outer, inner := a, b
		if swap == 1 {
			outer, inner = b, a
		}
		oB, iB := s.blocksArr[outer], s.blocksArr[inner]
		ig := s.M.Group(inner)
		t := tmpl{
			op: OpNameBNLJ, e: e,
			local:   m.BNLJCost(oB, iB, outBlocks, true),
			matGate: -1,
			child:   [2]childReq{{g: outer}, {g: inner}},
			nchild:  2, swap: swap == 1,
		}
		if ig.Leaf && !ig.BasePred {
			t.localSpill = t.local
		} else {
			t.localSpill = m.BNLJCost(oB, iB, outBlocks, false)
			if s.slot[inner] >= 0 {
				t.matGate = inner
			} else {
				t.local = t.localSpill // never re-readable
			}
		}
		out = append(out, t)
	}

	// Hash join (extended operator set only): builds on the smaller side,
	// delivers no order.
	for swap := 0; swap < 2; swap++ {
		build, probe := a, b
		if swap == 1 {
			build, probe = b, a
		}
		local := m.HashJoinCost(s.blocksArr[build], s.blocksArr[probe], outBlocks)
		out = append(out, tmpl{
			op: OpNameHashJoin, e: e, local: local, localSpill: local, matGate: -1,
			child:  [2]childReq{{g: build}, {g: probe}},
			nchild: 2, swap: swap == 1, extended: true,
		})
	}

	// Merge join: children sorted on the join columns; delivers the outer
	// (left) column order.
	ordA, ordB, ok := s.mergeOrders(a, e.Conds)
	if ok {
		ia, ib := s.intern(ordA), s.intern(ordB)
		mjAB := m.MergeJoinCost(aBlocks, bBlocks, outBlocks)
		mjBA := m.MergeJoinCost(bBlocks, aBlocks, outBlocks)
		out = append(out, tmpl{
			op: OpNameMergeJoin, e: e, local: mjAB, localSpill: mjAB, matGate: -1,
			out:    ia,
			child:  [2]childReq{{g: a, ord: ia}, {g: b, ord: ib}},
			nchild: 2,
		})
		out = append(out, tmpl{
			op: OpNameMergeJoin, e: e, local: mjBA, localSpill: mjBA, matGate: -1,
			out:    ib,
			child:  [2]childReq{{g: b, ord: ib}, {g: a, ord: ia}},
			nchild: 2, swap: true,
		})
	}
	return out
}

// mergeOrders splits the join conditions into the column sequences each
// child must be sorted on, in a deterministic condition order.
func (s *Searcher) mergeOrders(a memo.GroupID, conds []expr.EqJoin) (Order, Order, bool) {
	ap := s.M.Group(a).Props
	type pair struct{ ca, cb expr.Col }
	pairs := make([]pair, 0, len(conds))
	for _, j := range conds {
		if _, inA := ap.Cols[j.Left]; inA {
			pairs = append(pairs, pair{j.Left, j.Right})
		} else {
			pairs = append(pairs, pair{j.Right, j.Left})
		}
	}
	sort.Slice(pairs, func(i, k int) bool { return pairs[i].ca.String() < pairs[k].ca.String() })
	var ordA, ordB Order
	seenA := map[expr.Col]bool{}
	for _, p := range pairs {
		if seenA[p.ca] {
			continue
		}
		seenA[p.ca] = true
		ordA = append(ordA, p.ca)
		ordB = append(ordB, p.cb)
	}
	return ordA, ordB, len(ordA) > 0
}

func (s *Searcher) aggTemplates(g memo.GroupID, e *memo.MExpr) []tmpl {
	m := s.M.Model
	child := e.Children[0]
	childBlocks := s.blocksArr[child]
	spec := e.Spec
	op := OpNameSortAgg
	if e.Kind == memo.OpReAgg {
		op = OpNameReAgg
	}
	if len(spec.GroupBy) == 0 {
		// Scalar aggregation over any input order.
		local := m.AggCost(childBlocks)
		return []tmpl{{
			op: op, e: e, local: local, localSpill: local, matGate: -1,
			child: [2]childReq{{g: child}}, nchild: 1,
		}}
	}
	gb := append(Order(nil), spec.GroupBy...)
	sort.Slice(gb, func(i, j int) bool { return gb[i].String() < gb[j].String() })
	gid := s.intern(gb)
	local := m.AggCost(childBlocks)
	out := []tmpl{{
		op: op, e: e, local: local, localSpill: local, matGate: -1,
		out: gid, child: [2]childReq{{g: child, ord: gid}}, nchild: 1,
	}}
	// Hash aggregation (extended operator set only): unsorted input,
	// unordered output.
	if e.Kind == memo.OpAgg {
		ha := m.HashAggCost(childBlocks, s.blocksArr[g])
		out = append(out, tmpl{
			op: OpNameHashAgg, e: e, local: ha, localSpill: ha, matGate: -1,
			child: [2]childReq{{g: child}}, nchild: 1, extended: true,
		})
	}
	return out
}
