package physical

import (
	"sort"

	"repro/internal/cardinality"
	"repro/internal/expr"
	"repro/internal/memo"
)

// candidate is one physical implementation choice for a group: its total
// use-cost (children included) and the order it delivers.
type candidate struct {
	cost float64
	out  Order
	e    *memo.MExpr
	op   string
	// children requirements, used by plan extraction; for joins the
	// sequence is (outer, inner) and swap records whether that sequence is
	// the reverse of the mexpr's child order.
	childOrds []Order
	swap      bool
	indexCol  string
}

// Physical operator names.
const (
	OpNameScan      = "tablescan"
	OpNameIndexScan = "indexscan"
	OpNameFilter    = "filter"
	OpNameBNLJ      = "nlj"
	OpNameMergeJoin = "mergejoin"
	OpNameHashJoin  = "hashjoin"
	OpNameSortAgg   = "sortagg"
	OpNameHashAgg   = "hashagg"
	OpNameReAgg     = "reagg"
	OpNameSort      = "sort"
	OpNameMatScan   = "matscan"
)

// candidates enumerates the implementations of a group that deliver the
// required order natively (the sort enforcer is handled by the caller).
// The required order also prunes: implementations whose delivered order
// cannot satisfy it are skipped, except order-preserving filters which
// forward the requirement to their input.
func (c *sctx) candidates(g memo.GroupID, ord Order) []candidate {
	grp := c.s.M.Group(g)
	var out []candidate
	for _, e := range grp.Exprs {
		switch e.Kind {
		case memo.OpScan:
			out = append(out, c.scanCandidates(g, e, ord)...)
		case memo.OpFilter:
			// Order-preserving: request ord from the input directly.
			child := e.Children[0]
			cost := c.useCost(child, ord) + c.s.M.Model.FilterCost(c.s.blocks(child))
			out = append(out, candidate{cost: cost, out: ord, e: e, op: OpNameFilter, childOrds: []Order{ord}})
		case memo.OpJoin:
			out = append(out, c.joinCandidates(g, e, ord)...)
		case memo.OpAgg, memo.OpReAgg:
			out = append(out, c.aggCandidates(g, e, ord)...)
		}
	}
	return out
}

// scanInfo caches per-scan-mexpr constants.
type scanInfo struct {
	tableBlocks  float64
	clusteredCol string // "" if none
	indexes      []idxCand
}

type idxCand struct {
	col        expr.Col
	clustered  bool
	matchRows  float64
	matchBlk   float64
	totalBlock float64
}

func (s *Searcher) scanInfoFor(e *memo.MExpr) *scanInfo {
	if s.scanCache == nil {
		s.scanCache = map[*memo.MExpr]*scanInfo{}
	}
	if si, ok := s.scanCache[e]; ok {
		return si
	}
	t, _ := s.M.Cat.Table(e.Table)
	si := &scanInfo{tableBlocks: s.M.Model.Blocks(t.Rows, t.RowWidth())}
	if cix, ok := t.ClusteredIndex(); ok {
		si.clusteredCol = cix.Column
	}
	alias := memo.CanonAlias(e.Group)
	base := cardinality.BaseProps(t, alias)
	for _, cmp := range e.Pred.Conj {
		ix, ok := t.IndexOn(cmp.Col.Column)
		if !ok {
			continue
		}
		sel := cardinality.Selectivity(base, expr.Pred{Conj: []expr.Cmp{cmp}})
		rows := t.Rows * sel
		si.indexes = append(si.indexes, idxCand{
			col:        cmp.Col,
			clustered:  ix.Clustered,
			matchRows:  rows,
			matchBlk:   s.M.Model.Blocks(rows, t.RowWidth()),
			totalBlock: si.tableBlocks,
		})
	}
	s.scanCache[e] = si
	return si
}

func (c *sctx) scanCandidates(g memo.GroupID, e *memo.MExpr, ord Order) []candidate {
	m := c.s.M.Model
	si := c.s.scanInfoFor(e)
	var out []candidate

	// Full sequential scan (+ filter). A clustered table is stored in
	// clustered-key order, so the scan delivers that order.
	var scanOrd Order
	if si.clusteredCol != "" {
		scanOrd = Order{{Alias: memo.CanonAlias(g), Column: si.clusteredCol}}
	}
	cost := m.ScanCost(si.tableBlocks)
	if !e.Pred.True() {
		cost += m.FilterCost(si.tableBlocks)
	}
	if scanOrd.Satisfies(ord) {
		out = append(out, candidate{cost: cost, out: scanOrd, e: e, op: OpNameScan})
	}

	// Indexed selection per indexed conjunct; delivers index-column order.
	for _, ix := range si.indexes {
		ixOrd := Order{ix.col}
		if !ixOrd.Satisfies(ord) {
			continue
		}
		cost := m.IndexScanCost(ix.totalBlock, ix.matchBlk, ix.matchRows, ix.clustered)
		if len(e.Pred.Conj) > 1 {
			cost += m.FilterCost(ix.matchBlk) // residual predicate
		}
		out = append(out, candidate{cost: cost, out: ixOrd, e: e, op: OpNameIndexScan, indexCol: ix.col.Column})
	}
	return out
}

func (c *sctx) joinCandidates(g memo.GroupID, e *memo.MExpr, ord Order) []candidate {
	m := c.s.M.Model
	outBlocks := c.s.blocks(g)
	var out []candidate
	a, b := e.Children[0], e.Children[1]
	aBlocks, bBlocks := c.s.blocks(a), c.s.blocks(b)

	// Block nested-loops join, both operand orders. Delivers no order;
	// when an order is required the enforcer path in compute() covers it.
	if ord.Empty() {
		for swap := 0; swap < 2; swap++ {
			outer, inner := a, b
			if swap == 1 {
				outer, inner = b, a
			}
			oB, iB := c.s.blocks(outer), c.s.blocks(inner)
			local := m.BNLJCost(oB, iB, outBlocks, c.rescannable(inner))
			cost := c.useCost(outer, nil) + c.useCost(inner, nil) + local
			out = append(out, candidate{
				cost: cost, out: nil, e: e, op: OpNameBNLJ,
				childOrds: []Order{nil, nil}, swap: swap == 1,
			})
		}
	}

	// Hash join (extended operator set only): builds on the smaller side,
	// delivers no order.
	if c.s.ExtendedOps && ord.Empty() {
		for swap := 0; swap < 2; swap++ {
			build, probe := a, b
			if swap == 1 {
				build, probe = b, a
			}
			local := m.HashJoinCost(c.s.blocks(build), c.s.blocks(probe), outBlocks)
			cost := c.useCost(build, nil) + c.useCost(probe, nil) + local
			out = append(out, candidate{
				cost: cost, out: nil, e: e, op: OpNameHashJoin,
				childOrds: []Order{nil, nil}, swap: swap == 1,
			})
		}
	}

	// Merge join: children sorted on the join columns; delivers the outer
	// (left) column order.
	ordA, ordB, ok := c.mergeOrders(a, b, e.Conds)
	if ok {
		if ordA.Satisfies(ord) {
			cost := c.useCost(a, ordA) + c.useCost(b, ordB) + m.MergeJoinCost(aBlocks, bBlocks, outBlocks)
			out = append(out, candidate{cost: cost, out: ordA, e: e, op: OpNameMergeJoin, childOrds: []Order{ordA, ordB}})
		}
		if ordB.Satisfies(ord) {
			cost := c.useCost(b, ordB) + c.useCost(a, ordA) + m.MergeJoinCost(bBlocks, aBlocks, outBlocks)
			out = append(out, candidate{cost: cost, out: ordB, e: e, op: OpNameMergeJoin, childOrds: []Order{ordB, ordA}, swap: true})
		}
	}
	return out
}

// mergeOrders splits the join conditions into the column sequences each
// child must be sorted on, in a deterministic condition order.
func (c *sctx) mergeOrders(a, b memo.GroupID, conds []expr.EqJoin) (Order, Order, bool) {
	ap := c.s.M.Group(a).Props
	type pair struct{ ca, cb expr.Col }
	pairs := make([]pair, 0, len(conds))
	for _, j := range conds {
		if _, inA := ap.Cols[j.Left]; inA {
			pairs = append(pairs, pair{j.Left, j.Right})
		} else {
			pairs = append(pairs, pair{j.Right, j.Left})
		}
	}
	sort.Slice(pairs, func(i, k int) bool { return pairs[i].ca.String() < pairs[k].ca.String() })
	var ordA, ordB Order
	seenA := map[expr.Col]bool{}
	for _, p := range pairs {
		if seenA[p.ca] {
			continue
		}
		seenA[p.ca] = true
		ordA = append(ordA, p.ca)
		ordB = append(ordB, p.cb)
	}
	return ordA, ordB, len(ordA) > 0
}

func (c *sctx) aggCandidates(g memo.GroupID, e *memo.MExpr, ord Order) []candidate {
	m := c.s.M.Model
	child := e.Children[0]
	childBlocks := c.s.blocks(child)
	spec := e.Spec
	op := OpNameSortAgg
	if e.Kind == memo.OpReAgg {
		op = OpNameReAgg
	}
	if len(spec.GroupBy) == 0 {
		// Scalar aggregation over any input order.
		if !ord.Empty() {
			return nil
		}
		cost := c.useCost(child, nil) + m.AggCost(childBlocks)
		return []candidate{{cost: cost, out: nil, e: e, op: op, childOrds: []Order{nil}}}
	}
	gb := append(Order(nil), spec.GroupBy...)
	sort.Slice(gb, func(i, j int) bool { return gb[i].String() < gb[j].String() })
	var out []candidate
	if gb.Satisfies(ord) {
		cost := c.useCost(child, gb) + m.AggCost(childBlocks)
		out = append(out, candidate{cost: cost, out: gb, e: e, op: op, childOrds: []Order{gb}})
	}
	// Hash aggregation (extended operator set only): unsorted input,
	// unordered output.
	if c.s.ExtendedOps && ord.Empty() && e.Kind == memo.OpAgg {
		cost := c.useCost(child, nil) + m.HashAggCost(childBlocks, c.s.blocks(g))
		out = append(out, candidate{cost: cost, out: nil, e: e, op: OpNameHashAgg, childOrds: []Order{nil}})
	}
	return out
}

// rescannable reports whether re-reading the group costs only I/O: an
// unfiltered base relation (re-scan the table) or a result materialized
// under the current set. Filtered leaves and intermediate results must be
// spilled to a temporary file first, which BNLJCost charges.
func (c *sctx) rescannable(g memo.GroupID) bool {
	grp := c.s.M.Group(g)
	return (grp.Leaf && !grp.BasePred) || c.mat[g]
}
