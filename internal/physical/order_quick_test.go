package physical

import (
	"testing"
	"testing/quick"

	"repro/internal/expr"
)

// mkOrder builds an order of up to 4 columns from a seed.
func mkOrder(seed uint32) Order {
	cols := []expr.Col{
		{Alias: "g1", Column: "a"},
		{Alias: "g1", Column: "b"},
		{Alias: "g2", Column: "c"},
		{Alias: "g2", Column: "d"},
	}
	n := int(seed % 5)
	var o Order
	for i := 0; i < n; i++ {
		o = append(o, cols[int(seed>>(2*uint(i)))%len(cols)])
	}
	return o
}

func TestOrderSatisfiesReflexive(t *testing.T) {
	f := func(seed uint32) bool {
		o := mkOrder(seed)
		return o.Satisfies(o)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestOrderSatisfiesPrefixTransitive(t *testing.T) {
	// If o satisfies p and p satisfies q then o satisfies q.
	f := func(seed uint32, cut1, cut2 uint8) bool {
		o := mkOrder(seed)
		p := o[:int(cut1)%(len(o)+1)]
		q := p[:int(cut2)%(len(p)+1)]
		return o.Satisfies(p) && p.Satisfies(q) && o.Satisfies(q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestOrderEverySatisfiesNil(t *testing.T) {
	f := func(seed uint32) bool { return mkOrder(seed).Satisfies(nil) }
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestOrderKeyInjectiveOnSamples(t *testing.T) {
	seen := map[string]string{}
	for seed := uint32(0); seed < 4000; seed++ {
		o := mkOrder(seed)
		repr := ""
		for _, c := range o {
			repr += c.String() + ";"
		}
		if prev, ok := seen[o.Key()]; ok && prev != repr {
			t.Fatalf("Order.Key collision: %q vs %q", prev, repr)
		}
		seen[o.Key()] = repr
	}
}
