package physical

import (
	"math/rand"
	"testing"
)

func TestMatOrdersNeverIncreaseCost(t *testing.T) {
	// Storing materializations in their delivered order only lets
	// consumers skip sorts: bc(S) with MatOrders ≤ bc(S) without, for
	// every S.
	with := buildSearcher(t, sharedPairQueries()...)
	without := buildSearcher(t, sharedPairQueries()...)
	without.MatOrders = false
	sh := with.M.Shareable()
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 30; trial++ {
		set := with.NewNodeSet()
		for _, id := range sh {
			if r.Intn(2) == 0 {
				set.Add(id)
			}
		}
		w, wo := with.BestCost(set), without.BestCost(set)
		if w > wo+1e-6 {
			t.Fatalf("MatOrders increased cost: %v > %v for S=%v", w, wo, set)
		}
	}
}

func TestMatOrdersPlanStillValidates(t *testing.T) {
	s := buildSearcher(t, sharedPairQueries()...)
	sh := s.M.Shareable()
	r := rand.New(rand.NewSource(29))
	for trial := 0; trial < 15; trial++ {
		set := s.NewNodeSet()
		for _, id := range sh {
			if r.Intn(2) == 0 {
				set.Add(id)
			}
		}
		plan := s.BestPlan(set)
		if err := s.ValidatePlan(plan, set); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if diff := plan.Total - s.BestCost(set); diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("trial %d: plan total %v != bestCost %v", trial, plan.Total, s.BestCost(set))
		}
	}
}

func TestMatOrdersEmptySetUnaffected(t *testing.T) {
	with := buildSearcher(t, sharedPairQueries()...)
	without := buildSearcher(t, sharedPairQueries()...)
	without.MatOrders = false
	if a, b := with.BestCost(NodeSet{}), without.BestCost(NodeSet{}); a != b {
		t.Errorf("bc(∅) differs with MatOrders: %v vs %v", a, b)
	}
}
