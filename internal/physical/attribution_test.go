package physical

import (
	"math/rand"
	"testing"

	"repro/internal/memo"
)

// The breakdown's components must reassemble to exactly BestCost, for the
// empty set and for arbitrary materialization sets.
func TestCostBreakdownMatchesBestCost(t *testing.T) {
	s := buildSearcher(t, sharedPairQueries()...)
	sh := s.M.Shareable()
	r := rand.New(rand.NewSource(11))
	sets := []NodeSet{{}, s.NewNodeSet()}
	for trial := 0; trial < 20; trial++ {
		set := s.NewNodeSet()
		for _, id := range sh {
			if r.Intn(2) == 0 {
				set.Add(id)
			}
		}
		sets = append(sets, set)
	}
	for i, set := range sets {
		want := s.BestCost(set)
		bd := s.CostBreakdown(set)
		if bd.Total != want {
			t.Fatalf("set %d: breakdown Total=%v, BestCost=%v", i, bd.Total, want)
		}
		sum := 0.0
		for _, c := range bd.MatCosts {
			sum += c
		}
		for _, u := range bd.RootUse {
			sum += u
		}
		if diff := sum - want; diff > 1e-9*want || diff < -1e-9*want {
			t.Fatalf("set %d: component sum %v != BestCost %v", i, sum, want)
		}
		if len(bd.MatGroups) != set.Len() || len(bd.MatCosts) != set.Len() {
			t.Fatalf("set %d: %d mat entries for a set of %d", i, len(bd.MatGroups), set.Len())
		}
		if len(bd.RootUse) != len(s.M.QueryRoots) {
			t.Fatalf("set %d: %d root entries for %d roots", i, len(bd.RootUse), len(s.M.QueryRoots))
		}
	}
}

// RootsReaching must agree with SharesQueryRoot's rootMask semantics and
// cover every shareable node with at least one root.
func TestRootsReachingCoversShareables(t *testing.T) {
	s := buildSearcher(t, sharedPairQueries()...)
	for _, id := range s.M.Shareable() {
		roots := s.RootsReaching(id)
		if len(roots) == 0 {
			t.Fatalf("shareable group %d reaches no query root", id)
		}
		for _, ri := range roots {
			if ri < 0 || ri >= len(s.M.QueryRoots) {
				t.Fatalf("group %d: root index %d out of range", id, ri)
			}
			// The root's descendant cone must actually contain the group.
			root := s.M.QueryRoots[ri]
			if !s.desc[root].HasSlot(int(s.slot[id])) {
				t.Fatalf("group %d attributed to root %d but not in its cone", id, ri)
			}
		}
	}
	// Non-shareable groups have no slot and report nil.
	for gi := 0; gi < s.M.NumGroups(); gi++ {
		id := s.M.Group(memo.GroupID(gi)).ID
		if s.slot[id] < 0 && s.RootsReaching(id) != nil {
			t.Fatalf("non-shareable group %d reports roots", id)
		}
	}
}
