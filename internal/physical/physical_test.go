package physical

import (
	"math/rand"
	"testing"

	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/expr"
	"repro/internal/logical"
	"repro/internal/memo"
)

func testCatalog() *catalog.Catalog {
	c := catalog.New()
	mk := func(name string, rows float64) {
		c.MustAddTable(&catalog.Table{
			Name: name, Rows: rows,
			Columns: []catalog.Column{
				{Name: "id", Type: catalog.Int, Width: 8, Distinct: rows, Min: 0, Max: rows},
				{Name: "fk", Type: catalog.Int, Width: 8, Distinct: rows / 10, Min: 0, Max: rows},
				{Name: "v", Type: catalog.Int, Width: 8, Distinct: 100, Min: 0, Max: 100},
			},
			Indexes: []catalog.Index{{Column: "id", Clustered: true}},
		})
	}
	mk("t1", 50000)
	mk("t2", 100000)
	mk("t3", 80000)
	return c
}

func buildSearcher(t testing.TB, queries ...*logical.Query) *Searcher {
	t.Helper()
	b := &logical.Batch{}
	for _, q := range queries {
		b.Add(q)
	}
	m, err := memo.Build(testCatalog(), cost.Default(), b)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return NewSearcher(m)
}

func sharedPairQueries() []*logical.Query {
	q1 := logical.NewBlock().Scan("t1", "a").Scan("t2", "b").
		Cmp("a.v", expr.LT, 40).
		Join("a.fk", "b.id").
		GroupBy("a.v").Sum("b.v").Query("q1")
	q2 := logical.NewBlock().Scan("t1", "a").Scan("t2", "b").Scan("t3", "c").
		Cmp("a.v", expr.LT, 40).
		Join("a.fk", "b.id").Join("b.fk", "c.id").Query("q2")
	return []*logical.Query{q1, q2}
}

func TestOrderSatisfies(t *testing.T) {
	x := expr.Col{Alias: "g1", Column: "a"}
	y := expr.Col{Alias: "g1", Column: "b"}
	cases := []struct {
		have, want Order
		ok         bool
	}{
		{nil, nil, true},
		{Order{x}, nil, true},
		{nil, Order{x}, false},
		{Order{x, y}, Order{x}, true},
		{Order{x}, Order{x, y}, false},
		{Order{y, x}, Order{x}, false},
	}
	for _, c := range cases {
		if got := c.have.Satisfies(c.want); got != c.ok {
			t.Errorf("%v.Satisfies(%v) = %v, want %v", c.have.Key(), c.want.Key(), got, c.ok)
		}
	}
	if (Order{x, y}).Key() != "g1.a,g1.b" {
		t.Errorf("Key = %q", (Order{x, y}).Key())
	}
}

func TestBestCostEmptyEqualsUseCost(t *testing.T) {
	s := buildSearcher(t, sharedPairQueries()...)
	if bc, buc := s.BestCost(NodeSet{}), s.BestUseCost(NodeSet{}); bc != buc {
		t.Errorf("bc(∅)=%v != buc(∅)=%v", bc, buc)
	}
}

func TestBestUseCostMonotone(t *testing.T) {
	// buc is monotonically decreasing: materializing more nodes for free
	// can never hurt (Section 2.4).
	s := buildSearcher(t, sharedPairQueries()...)
	sh := s.M.Shareable()
	if len(sh) == 0 {
		t.Skip("no shareable nodes")
	}
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		set := s.NewNodeSet()
		for _, id := range sh {
			if r.Intn(2) == 0 {
				set.Add(id)
			}
		}
		base := s.BestUseCost(set)
		for _, id := range sh {
			if !set.Has(id) {
				bigger := set.With(id)
				if got := s.BestUseCost(bigger); got > base+1e-6 {
					t.Fatalf("buc increased when adding node %d: %v -> %v", id, base, got)
				}
			}
		}
	}
}

func TestBestCostGEBestUseCost(t *testing.T) {
	// bc(S) = buc(S) + cost of computing and writing S ≥ buc(S).
	s := buildSearcher(t, sharedPairQueries()...)
	sh := s.M.Shareable()
	r := rand.New(rand.NewSource(6))
	for trial := 0; trial < 30; trial++ {
		set := s.NewNodeSet()
		for _, id := range sh {
			if r.Intn(2) == 0 {
				set.Add(id)
			}
		}
		if bc, buc := s.BestCost(set), s.BestUseCost(set); bc < buc-1e-6 {
			t.Fatalf("bc(S)=%v < buc(S)=%v for S=%v", bc, buc, set)
		}
	}
}

func TestPlanTotalMatchesBestCost(t *testing.T) {
	s := buildSearcher(t, sharedPairQueries()...)
	sh := s.M.Shareable()
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		set := s.NewNodeSet()
		for _, id := range sh {
			if r.Intn(3) == 0 {
				set.Add(id)
			}
		}
		want := s.BestCost(set)
		plan := s.BestPlan(set)
		if diff := plan.Total - want; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("plan total %v != bestCost %v for S=%v", plan.Total, want, set)
		}
		if len(plan.Steps) != set.Len() {
			t.Fatalf("plan has %d steps for |S|=%d", len(plan.Steps), set.Len())
		}
	}
}

func TestIncrementalCacheMatchesCold(t *testing.T) {
	// The Section 5.1 incremental cache must be a pure optimization.
	sWarm := buildSearcher(t, sharedPairQueries()...)
	sCold := buildSearcher(t, sharedPairQueries()...)
	sCold.Incremental = false
	sh := sWarm.M.Shareable()
	r := rand.New(rand.NewSource(8))
	for trial := 0; trial < 40; trial++ {
		set := sWarm.NewNodeSet()
		for _, id := range sh {
			if r.Intn(2) == 0 {
				set.Add(id)
			}
		}
		w, c := sWarm.BestCost(set), sCold.BestCost(set)
		if w != c {
			t.Fatalf("incremental %v != cold %v for S=%v", w, c, set)
		}
	}
	if sWarm.CacheHits == 0 {
		t.Error("incremental cache never hit across 40 calls")
	}
}

func TestMaterializingSharedNodeHelps(t *testing.T) {
	s := buildSearcher(t, sharedPairQueries()...)
	base := s.BestCost(NodeSet{})
	best := base
	for _, id := range s.M.Shareable() {
		if c := s.BestCost(s.NewNodeSet(id)); c < best {
			best = c
		}
	}
	if best >= base {
		t.Errorf("no single shared node helps: base=%v best=%v", base, best)
	}
}

func TestSortEnforcerUsed(t *testing.T) {
	// Requesting a plan for a query whose aggregation needs an order on a
	// non-indexed column must still succeed (enforcer path).
	q := logical.NewBlock().Scan("t1", "a").Scan("t2", "b").
		Join("a.fk", "b.id").
		GroupBy("a.v").Count().Query("q")
	s := buildSearcher(t, q)
	plan := s.BestPlan(NodeSet{})
	found := false
	var walk func(n *PlanNode)
	walk = func(n *PlanNode) {
		if n.Op == OpNameSort {
			found = true
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, qp := range plan.Queries {
		walk(qp)
	}
	if !found {
		t.Error("expected a sort enforcer somewhere in the plan")
	}
}

func TestClusteredIndexAvoidsSortOnPK(t *testing.T) {
	// Merge join on the clustered key should not need a sort on the base
	// scan side.
	q := logical.NewBlock().Scan("t1", "a").Scan("t2", "b").
		Join("a.id", "b.id").Query("pkjoin")
	s := buildSearcher(t, q)
	plan := s.BestPlan(NodeSet{})
	var hasMerge, sortOverScan bool
	var walk func(n *PlanNode)
	walk = func(n *PlanNode) {
		if n.Op == OpNameMergeJoin {
			hasMerge = true
			for _, c := range n.Children {
				if c.Op == OpNameSort && c.Children[0].Op == OpNameScan {
					sortOverScan = true
				}
			}
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(plan.Queries[0])
	if hasMerge && sortOverScan {
		t.Error("merge join on clustered PKs should use scan order, not sort")
	}
}

func TestMatScanAppearsInSharedPlan(t *testing.T) {
	s := buildSearcher(t, sharedPairQueries()...)
	sh := s.M.Shareable()
	// Pick the best single node and check the plan reads it at least twice.
	bestID, bestCost := memo.GroupID(-1), s.BestCost(NodeSet{})
	for _, id := range sh {
		if c := s.BestCost(s.NewNodeSet(id)); c < bestCost {
			bestCost, bestID = c, id
		}
	}
	if bestID < 0 {
		t.Skip("no beneficial node in this instance")
	}
	plan := s.BestPlan(s.NewNodeSet(bestID))
	uses := 0
	var walk func(n *PlanNode)
	walk = func(n *PlanNode) {
		if n.Op == OpNameMatScan && n.Group == bestID {
			uses++
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, qp := range plan.Queries {
		walk(qp)
	}
	for _, st := range plan.Steps {
		walk(st.Plan)
	}
	if uses < 2 {
		t.Errorf("materialized node read %d times; expected ≥ 2 for it to be beneficial", uses)
	}
}

func TestNodeSetOps(t *testing.T) {
	srch := buildSearcher(t, sharedPairQueries()...)
	sh := srch.M.Shareable()
	if len(sh) < 3 {
		t.Skip("need at least 3 shareable nodes")
	}
	s := srch.NewNodeSet(sh[0])
	w := s.With(sh[1])
	if !w.Has(sh[0]) || !w.Has(sh[1]) || w.Len() != 2 {
		t.Errorf("With: %v", w.Groups())
	}
	if s.Len() != 1 {
		t.Error("With mutated the receiver")
	}
	c := s.Clone()
	c.Add(sh[2])
	if s.Has(sh[2]) {
		t.Error("Clone shares storage")
	}
	if got := w.Groups(); len(got) != 2 || got[0] != sh[0] || got[1] != sh[1] {
		t.Errorf("Groups: %v", got)
	}
	var empty NodeSet
	if empty.Len() != 0 || empty.Has(sh[0]) || empty.Groups() != nil {
		t.Error("zero NodeSet is not the empty set")
	}
	shared := map[memo.GroupID]bool{}
	for _, id := range sh {
		shared[id] = true
	}
	nonShareable := memo.GroupID(-1)
	for i := 0; i < srch.M.NumGroups(); i++ {
		if !shared[memo.GroupID(i)] {
			nonShareable = memo.GroupID(i)
			break
		}
	}
	if nonShareable < 0 {
		t.Skip("every group is shareable on this instance")
	}
	defer func() {
		if recover() == nil {
			t.Error("Add of non-shareable group did not panic")
		}
	}()
	srch.NewNodeSet().Add(nonShareable)
}

func TestDeterministicCosts(t *testing.T) {
	// Two independently built searchers must agree exactly.
	a := buildSearcher(t, sharedPairQueries()...)
	b := buildSearcher(t, sharedPairQueries()...)
	sh := a.M.Shareable()
	set := a.NewNodeSet()
	for i, id := range sh {
		if i%2 == 0 {
			set.Add(id)
		}
	}
	if x, y := a.BestCost(set), b.BestCost(set); x != y {
		t.Errorf("nondeterministic costs: %v vs %v", x, y)
	}
}
