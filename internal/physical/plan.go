package physical

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/expr"
	"repro/internal/memo"
)

// PlanNode is one operator of an extracted physical plan.
type PlanNode struct {
	Op       string
	Group    memo.GroupID
	Table    string // tablescan/indexscan
	IndexCol string // indexscan
	Pred     expr.Pred
	Conds    []expr.EqJoin
	Spec     *expr.AggSpec
	Order    Order // delivered order
	Children []*PlanNode

	Rows float64 // estimated output rows
	Cost float64 // cumulative use-cost of the subtree
}

// MatStep is one materialization of the consolidated plan: the plan that
// computes a shared node plus the cost of writing it out.
type MatStep struct {
	Group     memo.GroupID
	Plan      *PlanNode
	WriteCost float64
}

// ConsolidatedPlan is the full MQO result: materialization steps in
// dependency order followed by one plan per query.
type ConsolidatedPlan struct {
	Steps      []MatStep
	Queries    []*PlanNode
	QueryNames []string
	Total      float64
}

// BestPlan extracts the optimal consolidated plan for the given
// materialization set. Its Total equals BestCost(mat).
func (s *Searcher) BestPlan(mat NodeSet) *ConsolidatedPlan {
	c := s.newCtx(mat)
	cp := &ConsolidatedPlan{QueryNames: append([]string(nil), s.M.QueryNames...)}
	ids := sortedSet(mat)
	sort.Slice(ids, func(i, j int) bool {
		di, dj := s.depth(ids[i]), s.depth(ids[j])
		if di != dj {
			return di < dj
		}
		return ids[i] < ids[j]
	})
	for _, id := range ids {
		p := c.extractCompute(id, nil)
		w := s.matWriteCost(id)
		cp.Steps = append(cp.Steps, MatStep{Group: id, Plan: p, WriteCost: w})
		cp.Total += p.Cost + w
	}
	for _, root := range s.M.QueryRoots {
		p := c.extractUse(root, nil)
		cp.Queries = append(cp.Queries, p)
		cp.Total += p.Cost
	}
	return cp
}

// depth returns the height of a group in the DAG (leaves are 0), used to
// order materialization steps so dependencies are computed first.
func (s *Searcher) depth(g memo.GroupID) int {
	if s.depthCache == nil {
		s.depthCache = map[memo.GroupID]int{}
	}
	if d, ok := s.depthCache[g]; ok {
		return d
	}
	s.depthCache[g] = 0
	d := 0
	for _, e := range s.M.Group(g).Exprs {
		for _, ch := range e.Children {
			if cd := s.depth(ch) + 1; cd > d {
				d = cd
			}
		}
	}
	s.depthCache[g] = d
	return d
}

// extractUse mirrors useCost, returning the chosen plan.
func (c *sctx) extractUse(g memo.GroupID, ord Order) *PlanNode {
	compCost := c.compute(g, ord)
	if c.mat[g] {
		alt, needSort := c.matUseCost(g, ord)
		if alt < compCost {
			node := &PlanNode{
				Op:    OpNameMatScan,
				Group: g,
				Order: c.stored[g],
				Rows:  c.s.M.Group(g).Props.Rows,
				Cost:  c.s.matReadCost(g),
			}
			if needSort {
				node = &PlanNode{
					Op:       OpNameSort,
					Group:    g,
					Order:    ord,
					Children: []*PlanNode{node},
					Rows:     node.Rows,
					Cost:     alt,
				}
			}
			return node
		}
	}
	return c.extractCompute(g, ord)
}

// extractCompute mirrors compute, returning the chosen plan.
func (c *sctx) extractCompute(g memo.GroupID, ord Order) *PlanNode {
	best := c.compute(g, ord)
	for _, cand := range c.candidates(g, ord) {
		if cand.cost <= best+1e-9 {
			return c.buildPlan(g, cand)
		}
	}
	// Enforcer: compute unordered, then sort.
	if !ord.Empty() {
		child := c.extractCompute(g, nil)
		return &PlanNode{
			Op:       OpNameSort,
			Group:    g,
			Order:    ord,
			Children: []*PlanNode{child},
			Rows:     child.Rows,
			Cost:     child.Cost + c.s.sortCost(g),
		}
	}
	panic(fmt.Sprintf("physical: no plan for group %d (internal error)", g))
}

func (c *sctx) buildPlan(g memo.GroupID, cand candidate) *PlanNode {
	grp := c.s.M.Group(g)
	node := &PlanNode{
		Op:       cand.op,
		Group:    g,
		Order:    cand.out,
		Rows:     grp.Props.Rows,
		Cost:     cand.cost,
		IndexCol: cand.indexCol,
	}
	e := cand.e
	switch e.Kind {
	case memo.OpScan:
		node.Table = e.Table
		node.Pred = e.Pred
	case memo.OpFilter:
		node.Pred = e.Pred
		node.Children = []*PlanNode{c.extractUse(e.Children[0], cand.childOrds[0])}
	case memo.OpJoin:
		node.Conds = e.Conds
		first, second := e.Children[0], e.Children[1]
		if cand.swap {
			first, second = second, first
		}
		node.Children = []*PlanNode{
			c.extractUse(first, cand.childOrds[0]),
			c.extractUse(second, cand.childOrds[1]),
		}
	case memo.OpAgg, memo.OpReAgg:
		node.Spec = e.Spec
		node.Children = []*PlanNode{c.extractUse(e.Children[0], cand.childOrds[0])}
	}
	return node
}

// String renders the consolidated plan for humans.
func (cp *ConsolidatedPlan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "consolidated plan: total estimated cost %.1f ms\n", cp.Total)
	for i, st := range cp.Steps {
		fmt.Fprintf(&b, "materialize[%d] group %d (write %.1f ms):\n", i, st.Group, st.WriteCost)
		writePlan(&b, st.Plan, 1)
	}
	for i, q := range cp.Queries {
		name := fmt.Sprintf("query %d", i)
		if i < len(cp.QueryNames) {
			name = cp.QueryNames[i]
		}
		fmt.Fprintf(&b, "%s:\n", name)
		writePlan(&b, q, 1)
	}
	return b.String()
}

func writePlan(b *strings.Builder, n *PlanNode, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	fmt.Fprintf(b, "%s", n.Op)
	switch n.Op {
	case OpNameScan:
		fmt.Fprintf(b, "(%s)", n.Table)
		if !n.Pred.True() {
			fmt.Fprintf(b, " σ[%s]", n.Pred)
		}
	case OpNameIndexScan:
		fmt.Fprintf(b, "(%s on %s)", n.Table, n.IndexCol)
		if !n.Pred.True() {
			fmt.Fprintf(b, " σ[%s]", n.Pred)
		}
	case OpNameFilter:
		fmt.Fprintf(b, " σ[%s]", n.Pred)
	case OpNameMergeJoin, OpNameHashJoin, OpNameBNLJ:
		fmt.Fprintf(b, " [%s]", expr.JoinFingerprint(n.Conds))
	case OpNameSortAgg, OpNameHashAgg, OpNameReAgg:
		if n.Spec != nil {
			fmt.Fprintf(b, " [%s]", n.Spec.Fingerprint())
		}
	case OpNameSort:
		fmt.Fprintf(b, " [%s]", n.Order.Key())
	case OpNameMatScan:
		fmt.Fprintf(b, "(group %d)", n.Group)
	}
	fmt.Fprintf(b, "  rows=%.0f cost=%.1f\n", n.Rows, n.Cost)
	for _, c := range n.Children {
		writePlan(b, c, depth+1)
	}
}
