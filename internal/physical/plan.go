package physical

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/expr"
	"repro/internal/memo"
)

// PlanNode is one operator of an extracted physical plan.
type PlanNode struct {
	Op       string
	Group    memo.GroupID
	Table    string // tablescan/indexscan
	IndexCol string // indexscan
	Pred     expr.Pred
	Conds    []expr.EqJoin
	Spec     *expr.AggSpec
	Order    Order // delivered order
	Children []*PlanNode

	Rows float64 // estimated output rows
	Cost float64 // cumulative use-cost of the subtree
}

// MatStep is one materialization of the consolidated plan: the plan that
// computes a shared node plus the cost of writing it out.
type MatStep struct {
	Group     memo.GroupID
	Plan      *PlanNode
	WriteCost float64
}

// ConsolidatedPlan is the full MQO result: materialization steps in
// dependency order followed by one plan per query.
type ConsolidatedPlan struct {
	Steps      []MatStep
	Queries    []*PlanNode
	QueryNames []string
	Total      float64
}

// BestPlan extracts the optimal consolidated plan for the given
// materialization set. Its Total equals BestCost(mat). It shares worker 0
// with the other sequential entry points and is not safe for concurrent
// use.
func (s *Searcher) BestPlan(mat NodeSet) *ConsolidatedPlan {
	w := s.worker(0)
	w.initCall(mat.bits)
	cp := &ConsolidatedPlan{QueryNames: append([]string(nil), s.M.QueryNames...)}
	ids := append([]memo.GroupID(nil), w.matGroups()...)
	sort.Slice(ids, func(i, j int) bool {
		di, dj := s.depth(ids[i]), s.depth(ids[j])
		if di != dj {
			return di < dj
		}
		return ids[i] < ids[j]
	})
	for _, id := range ids {
		w.extractCalls++
		p := w.extractCompute(id, 0)
		wc := s.writeArr[id]
		cp.Steps = append(cp.Steps, MatStep{Group: id, Plan: p, WriteCost: wc})
		cp.Total += p.Cost + wc
	}
	for _, root := range s.M.QueryRoots {
		p := w.extractUse(root, 0)
		cp.Queries = append(cp.Queries, p)
		cp.Total += p.Cost
	}
	w.flushStats()
	return cp
}

// extractUse mirrors useCost, returning the chosen plan.
func (w *worker) extractUse(g memo.GroupID, ord ordID) *PlanNode {
	s := w.s
	w.extractCalls++
	compCost := w.compute(g, ord)
	if w.matHas(g) {
		alt, needSort := w.matUseCost(g, ord)
		if alt < compCost {
			node := &PlanNode{
				Op:    OpNameMatScan,
				Group: g,
				Order: s.orders[w.stored(g)],
				Rows:  s.M.Group(g).Props.Rows,
				Cost:  s.readArr[g],
			}
			if needSort {
				node = &PlanNode{
					Op:       OpNameSort,
					Group:    g,
					Order:    s.orders[ord],
					Children: []*PlanNode{node},
					Rows:     node.Rows,
					Cost:     alt,
				}
			}
			return node
		}
	}
	return w.extractCompute(g, ord)
}

// extractCompute mirrors compute, returning the chosen plan. It prices the
// group's templates directly — the same bitset/template fast path the cost
// search runs on — and materializes a PlanNode only for the winner, so
// extraction allocates nothing per considered implementation. ExtractCalls
// is counted at the resolution entry points (extractUse and BestPlan's
// step loop), once per resolved node.
func (w *worker) extractCompute(g memo.GroupID, ord ordID) *PlanNode {
	s := w.s
	best := w.compute(g, ord)
	for i := range s.tmpls[g] {
		t := &s.tmpls[g][i]
		cost, out, ok := w.price(t, ord)
		if !ok || cost > best+1e-9 {
			continue
		}
		return w.buildPlan(g, t, ord, cost, out)
	}
	// Enforcer: compute unordered, then sort.
	if ord != 0 {
		child := w.extractCompute(g, 0)
		return &PlanNode{
			Op:       OpNameSort,
			Group:    g,
			Order:    s.orders[ord],
			Children: []*PlanNode{child},
			Rows:     child.Rows,
			Cost:     child.Cost + s.sortArr[g],
		}
	}
	panic(fmt.Sprintf("physical: no plan for group %d (internal error)", g))
}

// buildPlan materializes the plan node of one priced template. req is the
// order required of the group (forwarded to the child by the passthrough
// filter); out is the order the template delivers.
func (w *worker) buildPlan(g memo.GroupID, t *tmpl, req ordID, cost float64, out ordID) *PlanNode {
	s := w.s
	grp := s.M.Group(g)
	node := &PlanNode{
		Op:       t.op,
		Group:    g,
		Order:    s.orders[out],
		Rows:     grp.Props.Rows,
		Cost:     cost,
		IndexCol: t.indexCol,
	}
	childOrd := [2]ordID{t.child[0].ord, t.child[1].ord}
	if t.passthrough {
		childOrd[0] = req
	}
	e := t.e
	switch e.Kind {
	case memo.OpScan:
		node.Table = e.Table
		node.Pred = e.Pred
	case memo.OpFilter:
		node.Pred = e.Pred
		node.Children = []*PlanNode{w.extractUse(e.Children[0], childOrd[0])}
	case memo.OpJoin:
		node.Conds = e.Conds
		first, second := e.Children[0], e.Children[1]
		if t.swap {
			first, second = second, first
		}
		node.Children = []*PlanNode{
			w.extractUse(first, childOrd[0]),
			w.extractUse(second, childOrd[1]),
		}
	case memo.OpAgg, memo.OpReAgg:
		node.Spec = e.Spec
		node.Children = []*PlanNode{w.extractUse(e.Children[0], childOrd[0])}
	}
	return node
}

// String renders the consolidated plan for humans.
func (cp *ConsolidatedPlan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "consolidated plan: total estimated cost %.1f ms\n", cp.Total)
	for i, st := range cp.Steps {
		fmt.Fprintf(&b, "materialize[%d] group %d (write %.1f ms):\n", i, st.Group, st.WriteCost)
		writePlan(&b, st.Plan, 1)
	}
	for i, q := range cp.Queries {
		name := fmt.Sprintf("query %d", i)
		if i < len(cp.QueryNames) {
			name = cp.QueryNames[i]
		}
		fmt.Fprintf(&b, "%s:\n", name)
		writePlan(&b, q, 1)
	}
	return b.String()
}

func writePlan(b *strings.Builder, n *PlanNode, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	fmt.Fprintf(b, "%s", n.Op)
	switch n.Op {
	case OpNameScan:
		fmt.Fprintf(b, "(%s)", n.Table)
		if !n.Pred.True() {
			fmt.Fprintf(b, " σ[%s]", n.Pred)
		}
	case OpNameIndexScan:
		fmt.Fprintf(b, "(%s on %s)", n.Table, n.IndexCol)
		if !n.Pred.True() {
			fmt.Fprintf(b, " σ[%s]", n.Pred)
		}
	case OpNameFilter:
		fmt.Fprintf(b, " σ[%s]", n.Pred)
	case OpNameMergeJoin, OpNameHashJoin, OpNameBNLJ:
		fmt.Fprintf(b, " [%s]", expr.JoinFingerprint(n.Conds))
	case OpNameSortAgg, OpNameHashAgg, OpNameReAgg:
		if n.Spec != nil {
			fmt.Fprintf(b, " [%s]", n.Spec.Fingerprint())
		}
	case OpNameSort:
		fmt.Fprintf(b, " [%s]", n.Order.Key())
	case OpNameMatScan:
		fmt.Fprintf(b, "(group %d)", n.Group)
	}
	fmt.Fprintf(b, "  rows=%.0f cost=%.1f\n", n.Rows, n.Cost)
	for _, c := range n.Children {
		writePlan(b, c, depth+1)
	}
}
