package physical

import (
	"math/rand"
	"testing"
)

func TestExtendedOpsNeverIncreaseCost(t *testing.T) {
	// Hash operators only add alternatives: bc(S) with the extended set is
	// ≤ bc(S) with the paper set, for every S.
	base := buildSearcher(t, sharedPairQueries()...)
	ext := buildSearcher(t, sharedPairQueries()...)
	ext.ExtendedOps = true
	sh := base.M.Shareable()
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 25; trial++ {
		set := base.NewNodeSet()
		for _, id := range sh {
			if r.Intn(2) == 0 {
				set.Add(id)
			}
		}
		b, e := base.BestCost(set), ext.BestCost(set)
		if e > b+1e-6 {
			t.Fatalf("extended ops increased cost: %v > %v for S=%v", e, b, set)
		}
	}
}

func TestExtendedPlanTotalsConsistent(t *testing.T) {
	ext := buildSearcher(t, sharedPairQueries()...)
	ext.ExtendedOps = true
	set := ext.NewNodeSet()
	for _, id := range ext.M.Shareable() {
		set.Add(id)
		break
	}
	want := ext.BestCost(set)
	plan := ext.BestPlan(set)
	if diff := plan.Total - want; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("extended plan total %v != bestCost %v", plan.Total, want)
	}
}

func TestHashAggChosenWhenSortExpensive(t *testing.T) {
	// With extended ops on, at least one plan in the workload should use a
	// hash operator (the point of having them).
	ext := buildSearcher(t, sharedPairQueries()...)
	ext.ExtendedOps = true
	plan := ext.BestPlan(NodeSet{})
	found := false
	var walk func(n *PlanNode)
	walk = func(n *PlanNode) {
		if n.Op == OpNameHashAgg || n.Op == OpNameHashJoin {
			found = true
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, q := range plan.Queries {
		walk(q)
	}
	if !found {
		t.Skip("no hash operator chosen on this instance; cost surface may legitimately prefer sort/merge")
	}
}
