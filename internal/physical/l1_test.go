package physical

import (
	"math/bits"
	"math/rand"
	"testing"

	"repro/internal/memo"
)

// l1TestMask derives the i-th distinct test mask. The multiplier is odd,
// so masks never repeat within any 2^64 window.
func l1TestMask(i int) uint64 {
	return uint64(i)*0x9e3779b97f4a7c15 + 0x1234_5678_9abc_def0
}

// findMaskWithHome brute-forces a mask whose probe home is the given
// bucket position, distinct from every mask in taken.
func findMaskWithHome(t *testing.T, home int, taken map[uint64]bool) uint64 {
	t.Helper()
	for i := 0; i < 1<<20; i++ {
		m := l1TestMask(i)
		if l1Home(m) == home && !taken[m] {
			taken[m] = true
			return m
		}
	}
	t.Fatalf("no unseen mask homed at %d in 2^20 candidates", home)
	return 0
}

// TestL1AllOnesMaskRoundTrips pins the retired-sentinel bug: the old
// front cache marked empty slots with ^uint64(0), so a real all-ones
// mask hash queried before any store read the zeroed value array as a
// hit. With explicit occupancy a fresh slot must miss, and the stored
// value must round-trip exactly.
func TestL1AllOnesMaskRoundTrips(t *testing.T) {
	s := buildSearcher(t, sharedPairQueries()...)
	w := s.worker(0)
	const mask = ^uint64(0)
	if v, ok := w.cachedUse(0, 0, 0, mask); ok {
		t.Fatalf("all-ones mask hit an empty L1 with value %v (sentinel collision)", v)
	}
	if v, ok := w.cachedComp(0, 0, 0, mask); ok {
		t.Fatalf("all-ones mask hit an empty comp L1 with value %v (sentinel collision)", v)
	}
	w.storeUse(0, mask, 42.5)
	if v, ok := w.cachedUse(0, 0, 0, mask); !ok || v != 42.5 {
		t.Fatalf("all-ones mask after store: got (%v, %v), want (42.5, true)", v, ok)
	}
	// The bucket probe path must agree once the front cache points at a
	// different mask.
	w.storeUse(0, 7, 9.25)
	if v, ok := w.cachedUse(0, 0, 0, mask); !ok || v != 42.5 {
		t.Fatalf("all-ones mask via bucket probe: got (%v, %v), want (42.5, true)", v, ok)
	}
}

// TestL1ProbeWraparound stores keys homed at the last probe position, so
// collision resolution must wrap around to position 0, and verifies every
// key stays retrievable.
func TestL1ProbeWraparound(t *testing.T) {
	s := buildSearcher(t, sharedPairQueries()...)
	w := s.worker(0)
	taken := map[uint64]bool{}
	masks := make([]uint64, 4)
	for i := range masks {
		masks[i] = findMaskWithHome(t, l1BucketCap-1, taken)
		w.storeUse(0, masks[i], float64(100+i))
	}
	b := w.useL1[0]
	if b == nil {
		t.Fatal("no bucket allocated")
	}
	for i, m := range masks {
		if v, ok := b.lookup(m); !ok || v != float64(100+i) {
			t.Fatalf("wrapped key %d: got (%v, %v), want (%v, true)", i, v, ok, float64(100+i))
		}
	}
	// The first key sits at its home, the rest wrapped past the end.
	if b.occ&(1<<uint(l1BucketCap-1)) == 0 {
		t.Fatal("home position of the colliding keys is unoccupied")
	}
	for i := 0; i < len(masks)-1; i++ {
		if b.occ&(1<<uint(i)) == 0 {
			t.Fatalf("wrapped position %d is unoccupied", i)
		}
	}
}

// TestL1OverflowFallsBackToShared drives one (group, order) bucket past
// its fill bound, so a store must evict the occupant of its home
// position, and verifies the evicted key is then served from the
// SharedCache L2 — the prescribed overflow path — while the newly stored
// key stays in the L1.
func TestL1OverflowFallsBackToShared(t *testing.T) {
	s := buildSearcher(t, sharedPairQueries()...)
	cache := NewSharedCache()
	s.AttachSharedCache(cache)
	w := s.worker(0)
	w.syncShared()

	taken := map[uint64]bool{}
	for i := 0; i < l1MaxFill; i++ {
		m := l1TestMask(i)
		taken[m] = true
		w.storeUse(0, m, float64(i))
	}
	b := w.useL1[0]
	if got := bits.OnesCount64(b.occ); got != l1MaxFill {
		t.Fatalf("bucket fill %d after %d distinct stores, want the fill bound", got, l1MaxFill)
	}

	// One more store must evict the current occupant of its home position.
	extra := findMaskWithHome(t, 0, taken)
	home := l1Home(extra)
	if b.occ&(1<<uint(home)) == 0 {
		// An empty home is claimed instead of evicting; force the probe to
		// land on an occupied home so the eviction path is exercised.
		for p := 0; p < l1BucketCap; p++ {
			if b.occ&(1<<uint(p)) != 0 {
				extra = findMaskWithHome(t, p, taken)
				home = p
				break
			}
		}
	}
	victim := b.entries[home].mask
	var victimVal float64
	var ok bool
	if victimVal, ok = b.lookup(victim); !ok {
		t.Fatal("home position occupant not retrievable before eviction")
	}
	w.storeUse(0, extra, 999.5)
	if v, ok := b.lookup(extra); !ok || v != 999.5 {
		t.Fatalf("overflow store lost the new key: got (%v, %v)", v, ok)
	}
	if _, ok := b.lookup(victim); ok {
		t.Fatal("evicted key still present in the L1 bucket")
	}

	// The evicted key falls back to the L2: seed it there (as an earlier
	// PublishCache would have) and the cache read must hit, counted as a
	// shared hit and re-promoted into the L1.
	cache.merge(w.ns, []sharedKV{{k: cacheKey{g: 0, ord: 0, compute: false, mask: victim}, v: victimVal}})
	w.sharedHits = 0
	if v, ok := w.cachedUse(0, 0, 0, victim); !ok || v != victimVal {
		t.Fatalf("evicted key via L2 fallback: got (%v, %v), want (%v, true)", v, ok, victimVal)
	}
	if w.sharedHits != 1 {
		t.Fatalf("L2 fallback counted %d shared hits, want 1", w.sharedHits)
	}
}

// TestL1ResetReusesBackingArrays pins the epoch-stamped reset: resetL1
// must empty the cache without reallocating the front arrays or the
// bucket probe arrays, and the emptied buckets must be reusable.
func TestL1ResetReusesBackingArrays(t *testing.T) {
	s := buildSearcher(t, sharedPairQueries()...)
	w := s.worker(0)
	w.storeUse(0, 11, 1.5)
	w.storeComp(0, 12, 2.5)
	frontBefore := &w.useFront[0]
	bucketBefore := w.useL1[0]
	if bucketBefore == nil {
		t.Fatal("no bucket allocated")
	}

	w.resetL1()
	if &w.useFront[0] != frontBefore {
		t.Fatal("resetL1 reallocated the front-cache arrays")
	}
	if w.useL1[0] != bucketBefore {
		t.Fatal("resetL1 dropped the bucket backing array")
	}
	if _, ok := w.cachedUse(0, 0, 0, 11); ok {
		t.Fatal("use entry survived resetL1")
	}
	if _, ok := w.cachedComp(0, 0, 0, 12); ok {
		t.Fatal("comp entry survived resetL1")
	}

	// The stale bucket self-clears on its next store and serves again.
	w.storeUse(0, 13, 3.5)
	if w.useL1[0] != bucketBefore {
		t.Fatal("post-reset store allocated a fresh bucket")
	}
	if v, ok := w.cachedUse(0, 0, 0, 13); !ok || v != 3.5 {
		t.Fatalf("post-reset store: got (%v, %v), want (3.5, true)", v, ok)
	}
	if _, ok := w.useL1[0].lookup(11); ok {
		t.Fatal("pre-reset entry resurfaced after the bucket self-cleared")
	}
}

// TestL1EpochWrapHardResets forces the uint32 L1 epoch to wrap and
// verifies the ambiguous stamps are hard-cleared instead of resurrecting
// entries stamped with a recycled epoch.
func TestL1EpochWrapHardResets(t *testing.T) {
	s := buildSearcher(t, sharedPairQueries()...)
	w := s.worker(0)
	w.storeUse(0, 21, 4.5)
	w.l1Epoch = ^uint32(0) // next reset wraps
	w.useFront[0].ep = ^uint32(0)
	w.useL1[0].ep = ^uint32(0)
	w.resetL1()
	if w.l1Epoch != 1 {
		t.Fatalf("wrapped epoch is %d, want 1", w.l1Epoch)
	}
	if _, ok := w.cachedUse(0, 0, 0, 21); ok {
		t.Fatal("entry resurrected across an epoch wrap")
	}
}

// TestBestCostBatchCtxL1Stress hammers the flat L1 through the real
// batched oracle: hundreds of random candidate sets, evaluated on a
// 4-worker pool under the race detector, must price bit-identically to
// sequential evaluation on a fresh searcher.
func TestBestCostBatchCtxL1Stress(t *testing.T) {
	sPar := buildSearcher(t, sharedPairQueries()...)
	sSeq := buildSearcher(t, sharedPairQueries()...)
	sh := sPar.M.Shareable()
	if len(sh) < 2 {
		t.Fatalf("need ≥ 2 shareable nodes, have %d", len(sh))
	}
	rng := rand.New(rand.NewSource(7))
	mats := make([]NodeSet, 300)
	seqMats := make([]NodeSet, len(mats))
	for i := range mats {
		ids := make([]memo.GroupID, 0, len(sh))
		for _, id := range sh {
			if rng.Intn(2) == 0 {
				ids = append(ids, id)
			}
		}
		mats[i] = sPar.NewNodeSet(ids...)
		seqMats[i] = sSeq.NewNodeSet(ids...)
	}
	sPar.Parallelism = 4
	got, ok := sPar.BestCostBatchCtx(nil, mats)
	if !ok {
		t.Fatal("stress batch aborted")
	}
	for i := range mats {
		if want := sSeq.BestCost(seqMats[i]); got[i] != want {
			t.Fatalf("set %d: batched %v != sequential %v", i, got[i], want)
		}
	}
}

// BenchmarkL1Probe compares the flat open-addressed bucket against the
// retired map[uint64]float64 bucket layout on the L1's real access mix —
// a warm bucket probed at a hit-heavy ratio with periodic fresh stores —
// with allocations reported. The flat path must be allocation-free.
func BenchmarkL1Probe(b *testing.B) {
	masks := make([]uint64, l1MaxFill)
	for i := range masks {
		masks[i] = l1TestMask(i)
	}
	b.Run("flat", func(b *testing.B) {
		bucket := new(l1Bucket)
		for i, m := range masks {
			bucket.store(1, m, float64(i))
		}
		b.ReportAllocs()
		b.ResetTimer()
		var sink float64
		for i := 0; i < b.N; i++ {
			m := masks[i%len(masks)]
			if i%16 == 15 {
				bucket.store(1, m, float64(i))
				continue
			}
			if v, ok := bucket.lookup(m); ok {
				sink += v
			}
		}
		benchSink = sink
	})
	b.Run("map", func(b *testing.B) {
		bucket := make(map[uint64]float64, 4) // the old lazy bucket's size hint
		for i, m := range masks {
			bucket[m] = float64(i)
		}
		b.ReportAllocs()
		b.ResetTimer()
		var sink float64
		for i := 0; i < b.N; i++ {
			m := masks[i%len(masks)]
			if i%16 == 15 {
				bucket[m] = float64(i)
				continue
			}
			if v, ok := bucket[m]; ok {
				sink += v
			}
		}
		benchSink = sink
	})
}

var benchSink float64
