// Package physical implements the physical plan search over the logical
// AND-OR DAG (the PQDAG of the Volcano framework): physical properties
// (sort orders), operator implementations (relation scan, indexed
// selection, nested-loop join, merge join, sort enforcer, sort-based
// aggregation — the paper's operator set), and the central
// bestCost(Q, S) oracle that the MQO algorithms treat as a black box.
//
// bestCost(Q, S) is the cost of the optimal consolidated plan in which
// every equivalence node of S is computed once, written to disk, and read
// back by any consumer for which that is cheaper than recomputation:
//
//	bc(S) = Σ_{s∈S} (computeCost(s) + matWriteCost(s)) + Σ_q useCost(root_q)
//	useCost(g) = min(computeCost(g), matReadCost(g) [+ sort enforcement])  if g ∈ S
//
// The search memoizes on (group, required order) per call and keeps a
// cross-call cache keyed by the materialization set restricted to the
// shareable nodes below each group — the incremental recomputation
// optimization of Section 5.1: adding one node to S invalidates only the
// costs of its ancestors.
//
// # Hot-path representation
//
// The oracle is allocation-free. At construction the Searcher compiles the
// memo into immutable lookup structures:
//
//   - an order registry interning every sort order that can ever be
//     required or delivered (clustered-scan orders, index orders, merge-join
//     orders, group-by orders) into small integer ids, with a precomputed
//     "satisfies" matrix, so order handling is integer indexing instead of
//     string keys;
//   - per-group candidate templates: each physical implementation choice is
//     flattened into {precomputed local cost, child group ids, child order
//     ids, delivered order id}, enumerated in exactly the order the
//     candidate generator defines (ties in the strict-< minimum therefore
//     resolve identically to a naive enumeration);
//   - per-group cost-model constants (blocks, sort/read/write costs), DAG
//     depths and shareable-descendant bitsets.
//
// Materialization sets are Bitsets indexed by shareable-node slot (see
// memo.ShareIndex); NodeSet wraps one with the index needed to translate
// group ids. Per-call memo tables are flat epoch-stamped arrays indexed by
// (group, order id) that are reset in O(1) by bumping the epoch.
//
// # Cross-call caching
//
// The Section 5.1 incremental cache is keyed by the pure value
// {group, order id, compute, mask hash}. Every cached cost is a pure
// function of that key, which is the load-bearing invariant of the whole
// hierarchy: a hit, a miss, an eviction or a lost publish can only ever
// change how often a value is recomputed, never what it is — so results
// are bit-identical under any cache behavior, and the oracle-call count
// (bc_calls) is deterministic because it is counted at the oracle entry
// point, above every cache level.
//
// The hierarchy a lookup walks, fastest first:
//
//  1. Front cache: one direct-mapped l1Front cell per (group, order)
//     slot holding the last (mask, cost) the slot served — consecutive
//     greedy candidates mostly re-ask the same mask. Liveness is an
//     explicit epoch stamp (live iff ep == the worker's l1Epoch); no
//     mask value is reserved as an "empty" sentinel, so a real all-ones
//     mask hash round-trips (the retired sentinel scheme mis-served the
//     zero value for it on a cold slot).
//  2. Flat L1: per-slot open-addressed probe arrays (l1Bucket, lazily
//     allocated) of inline (mask, value) pairs — fixed power-of-two
//     capacity, linear probing from a Fibonacci home position, a 1-byte
//     tag per position so a probe compares bytes in one cache line and
//     touches a 16-byte entry only on a tag match. Occupancy is an
//     explicit bitmap word; the probe length is derived from it up
//     front. At the fill bound (3/4 load) a store evicts the occupant
//     of its home position instead of growing — bounded memory, and the
//     probing invariant survives because the new key rests at its exact
//     home. resetL1 clears every bucket and front cell in O(1) by
//     bumping the worker's l1Epoch; backing arrays are reused, and a
//     stale bucket self-clears on its next store.
//  3. SharedCache L2: the optionally attached, lock-striped cross-worker
//     tier. The hot path never locks it on store — fresh values go only
//     to the L1 and PublishCache drains them into the L2 in bulk; an L2
//     hit (including a key the L1 evicted after an earlier publish) is
//     promoted back into the L1 and front, paying its read lock at most
//     once per worker. Shard capacity is enforced per merge: a shard
//     over cap is reset at most once, before the batch's writes, so one
//     publish can never evict its own entries (the old per-entry reset
//     kept only the tail of a batch at or over cap).
//
// repro.Session owns one SharedCache per session, so identical batches
// start warm; entries are namespaced by the searcher's structural
// fingerprint and operator flags, which is why ClearCache only resets the
// private L1s — a flag toggle moves to a disjoint namespace on its own.
//
// # Concurrency contract
//
// After construction all compiled structures are immutable. Mutable
// per-evaluation state (scratch tables, the private L1 cache, stat
// counters) lives in per-worker contexts: sequential entry points
// (BestCost, BestUseCost, BestPlan, ValidatePlan) share worker 0 and are
// not safe for concurrent use, while BestCostBatch evaluates many
// materialization sets concurrently on up to Parallelism workers. Costs
// are pure functions of (memo, set), so batch results are bit-identical
// to sequential evaluation regardless of scheduling — and SharedCache
// reads/merges never change a value, only how often it is recomputed. The
// flags may only be toggled between evaluations, never during a
// concurrent batch, and a toggle requires a ClearCache call (the
// volcano.Optimizer setters do this).
package physical

import (
	"context"
	"math/bits"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/expr"
	"repro/internal/faultinject"
	"repro/internal/memo"
)

// Order is a required or delivered sort order: a sequence of columns.
// nil/empty means "any order".
type Order []expr.Col

// Key renders the order canonically for map keys.
func (o Order) Key() string {
	if len(o) == 0 {
		return ""
	}
	parts := make([]string, len(o))
	for i, c := range o {
		parts[i] = c.String()
	}
	return strings.Join(parts, ",")
}

// Satisfies reports whether a stream sorted by o satisfies requirement
// req, i.e. req is a prefix of o.
func (o Order) Satisfies(req Order) bool {
	if len(req) > len(o) {
		return false
	}
	for i := range req {
		if o[i] != req[i] {
			return false
		}
	}
	return true
}

// Empty reports whether the order imposes no requirement.
func (o Order) Empty() bool { return len(o) == 0 }

// ordID is an interned order: an index into the searcher's order registry.
// ordID 0 is the empty ("any") order.
type ordID int32

// NodeSet is a materialization set: a bitset over the shareable-node slots
// of the searcher's ShareIndex. The zero value is the empty set; non-empty
// sets are created with Searcher.NewNodeSet / Optimizer.NewNodeSet.
type NodeSet struct {
	si   *memo.ShareIndex
	bits memo.Bitset
}

// NewNodeSet returns a materialization set over this searcher's shareable
// nodes containing the given groups.
func (s *Searcher) NewNodeSet(ids ...memo.GroupID) NodeSet {
	ns := NodeSet{si: s.SI, bits: s.SI.NewMatSet()}
	for _, id := range ids {
		ns.Add(id)
	}
	return ns
}

// Add inserts a shareable group into the set; it panics if the group is
// not shareable (non-shareable nodes are never worth materializing and
// have no bitset slot). The zero-value NodeSet carries no share index and
// cannot grow — build growable sets with NewNodeSet.
func (ns NodeSet) Add(id memo.GroupID) {
	if ns.si == nil {
		panic("physical: Add on a zero-value NodeSet; create sets with NewNodeSet")
	}
	if !ns.si.Set(ns.bits, id) {
		panic("physical: NodeSet.Add of non-shareable group")
	}
}

// With returns a copy of the set with the extra node added.
func (ns NodeSet) With(id memo.GroupID) NodeSet {
	out := NodeSet{si: ns.si, bits: ns.bits.Clone()}
	out.Add(id)
	return out
}

// Clone returns a copy of the set.
func (ns NodeSet) Clone() NodeSet {
	return NodeSet{si: ns.si, bits: ns.bits.Clone()}
}

// Has reports membership.
func (ns NodeSet) Has(id memo.GroupID) bool {
	if ns.si == nil {
		return false
	}
	return ns.si.Has(ns.bits, id)
}

// Len returns the set size.
func (ns NodeSet) Len() int { return ns.bits.Count() }

// Empty reports whether the set is empty.
func (ns NodeSet) Empty() bool { return ns.bits.Count() == 0 }

// Groups returns the member group ids in ascending order.
func (ns NodeSet) Groups() []memo.GroupID {
	if ns.si == nil {
		return nil
	}
	return ns.si.Groups(ns.bits)
}

// Bits exposes the underlying bitset (shared storage, do not mutate).
func (ns NodeSet) Bits() memo.Bitset { return ns.bits }

// Searcher owns the compiled search structures and cross-call caches for
// one combined DAG. See the package comment for the concurrency contract.
type Searcher struct {
	M  *memo.Memo
	SI *memo.ShareIndex

	// Incremental reports whether the cross-call cache is enabled
	// (Section 5.1 optimization). Disabled only for ablation benchmarks.
	Incremental bool

	// ExtendedOps adds hash join and hash aggregation to the paper's
	// operator set (relation scan, indexed selection, NLJ, merge join,
	// sort, sort-based aggregation). Off by default: the experiments use
	// the paper's rule set; the extended-operator ablation turns it on.
	// Toggling it invalidates previously cached costs — call ClearCache
	// (volcano.Optimizer.SetExtendedOps does).
	ExtendedOps bool

	// MatOrders stores each materialized result in the sort order its
	// cheapest compute plan delivers, so consumers whose requirement that
	// order satisfies skip the re-sort — the physical-property handling on
	// intermediate relations the paper's Section 6 implementation
	// includes. On by default; disabling it models order-less spools.
	// Like ExtendedOps, toggling it requires a ClearCache call.
	MatOrders bool

	// Parallelism bounds the number of workers BestCostBatch fans a batch
	// of candidate sets out to; 0 (the default) means GOMAXPROCS and 1
	// forces sequential evaluation on worker 0. Each worker carries its
	// own scratch tables and cross-call cache, and every individual bc(S)
	// evaluation stays sequential, so results are bit-identical for every
	// setting — the knob trades memory (one scratch context per worker)
	// and warm-up (per-worker caches learn separately) against wall-clock
	// time on the batched greedy rounds. Set it before optimization
	// starts; it must not change during a concurrent batch.
	Parallelism int

	// Compiled structures, immutable after NewSearcher.
	orders    []Order  // order registry; orders[0] = nil
	sat       [][]bool // sat[have][want] = orders[have].Satisfies(orders[want])
	tmpls     [][]tmpl // candidate templates per group
	slot      []int32  // shareable slot per group, -1 if none
	depths    []int32  // DAG height per group
	desc      []memo.Bitset
	blocksArr []float64 // output blocks per group
	sortArr   []float64 // SortCost per group
	readArr   []float64 // MaterializeReadCost per group
	writeArr  []float64 // MaterializeWriteCost per group
	numOrds   int
	// rootMask[slot] is the bitset of query roots whose cone contains the
	// shareable node at slot; words are ceil(len(QueryRoots)/64).
	rootMask  [][]uint64
	rootWords int
	structSum uint64 // structural fingerprint of the compiled search space

	workers []*worker
	ordIdx  map[string]ordID // construction only
	shared  *SharedCache     // cross-worker / cross-searcher L2 cache

	// fault is the first panic a batch worker recovered, kept until the
	// owning run collects it with TakeFault. Batches run one at a time per
	// searcher (the oracle is sequential between rounds), so a plain field
	// read after the batch's WaitGroup is race-free.
	fault *faultinject.PanicError

	// Stats.
	BCCalls      int // bestCost invocations
	CacheHits    int // worker-private (L1) cross-call cache hits
	SharedHits   int // SharedCache (L2) hits promoted into a worker L1
	ComputedKey  int // fresh (group, order, mask) computations
	ExtractCalls int // plan-extraction node resolutions (BestPlan)
}

// NewSearcher returns a searcher over the given memo with the incremental
// cache and materialized-order handling enabled, and no SharedCache
// attached: workers keep purely private caches (zero synchronization on
// the hot path). A longer-lived owner attaches its cache with
// AttachSharedCache (repro.Session does).
func NewSearcher(m *memo.Memo) *Searcher {
	s := &Searcher{
		M:           m,
		SI:          m.NewShareIndex(),
		Incremental: true,
		MatOrders:   true,
	}
	s.prepare()
	return s
}

// ResetStats clears the counters (not the cache).
func (s *Searcher) ResetStats() {
	s.BCCalls, s.CacheHits, s.SharedHits, s.ComputedKey, s.ExtractCalls = 0, 0, 0, 0, 0
}

// ClearCache drops the worker-private cross-call caches. An attached
// SharedCache is left alone: its entries are namespaced by the structural
// fingerprint and the operator flags (cacheNS), so a flag toggle moves to
// a disjoint namespace and stale values can never be observed. Call
// SharedCache.Invalidate for an explicit full flush.
func (s *Searcher) ClearCache() {
	for _, w := range s.workers {
		w.resetL1()
	}
}

type cacheKey struct {
	g       memo.GroupID
	ord     ordID
	compute bool
	mask    uint64
}

// prepare compiles the memo into the immutable hot-path structures.
func (s *Searcher) prepare() {
	n := s.M.NumGroups()
	s.slot = make([]int32, n)
	s.depths = make([]int32, n)
	s.desc = make([]memo.Bitset, n)
	s.blocksArr = make([]float64, n)
	s.sortArr = make([]float64, n)
	s.readArr = make([]float64, n)
	s.writeArr = make([]float64, n)
	s.ordIdx = map[string]ordID{"": 0}
	s.orders = []Order{nil}
	for i := 0; i < n; i++ {
		id := memo.GroupID(i)
		s.slot[i] = int32(s.SI.Pos(id))
		s.depths[i] = -1
		s.desc[i] = s.SI.Descendants(id)
		p := s.M.Group(id).Props
		b := s.M.Model.Blocks(p.Rows, p.Width)
		s.blocksArr[i] = b
		s.sortArr[i] = s.M.Model.SortCost(b)
		s.readArr[i] = s.M.Model.MaterializeReadCost(b)
		s.writeArr[i] = s.M.Model.MaterializeWriteCost(b)
	}
	for i := 0; i < n; i++ {
		s.fillDepth(memo.GroupID(i))
	}
	s.tmpls = make([][]tmpl, n)
	for i := 0; i < n; i++ {
		s.tmpls[i] = s.buildTemplates(memo.GroupID(i))
	}
	s.numOrds = len(s.orders)
	s.sat = make([][]bool, s.numOrds)
	for i := range s.sat {
		row := make([]bool, s.numOrds)
		for j := range row {
			row[j] = s.orders[i].Satisfies(s.orders[j])
		}
		s.sat[i] = row
	}
	s.fillRootMasks()
	s.structSum = s.structHash()
	s.ordIdx = nil // registry is sealed
	s.workers = []*worker{s.newWorker()}
}

// fillRootMasks computes, for every shareable slot, the bitset of query
// roots whose cone contains it — the structural reach the dirty-candidate
// pruning tests against (SharesQueryRoot).
func (s *Searcher) fillRootMasks() {
	s.rootWords = (len(s.M.QueryRoots) + 63) / 64
	s.rootMask = make([][]uint64, s.SI.Len())
	words := make([]uint64, s.SI.Len()*s.rootWords) // one backing array
	for i := range s.rootMask {
		s.rootMask[i] = words[i*s.rootWords : (i+1)*s.rootWords]
	}
	for ri, r := range s.M.QueryRoots {
		for wi, wv := range s.desc[r] {
			for wv != 0 {
				slot := wi*64 + bits.TrailingZeros64(wv)
				wv &= wv - 1
				s.rootMask[slot][ri>>6] |= 1 << uint(ri&63)
			}
		}
	}
}

// SharesQueryRoot reports whether some query root's cone contains both
// groups. When it does not, no consumer's cost path can ever see both
// nodes, so materializing one provably cannot change the other's marginal
// benefit — the exactness test behind the dirty-candidate lazy greedy
// (submod.InteractionFunction). Non-shareable groups conservatively report
// true. Safe for concurrent use after construction.
func (s *Searcher) SharesQueryRoot(a, b memo.GroupID) bool {
	sa, sb := s.slot[a], s.slot[b]
	if sa < 0 || sb < 0 {
		return true
	}
	ma, mb := s.rootMask[sa], s.rootMask[sb]
	for i := range ma {
		if ma[i]&mb[i] != 0 {
			return true
		}
	}
	return false
}

// intern registers an order and returns its id; construction-time only.
func (s *Searcher) intern(o Order) ordID {
	k := o.Key()
	if id, ok := s.ordIdx[k]; ok {
		return id
	}
	id := ordID(len(s.orders))
	s.orders = append(s.orders, o)
	s.ordIdx[k] = id
	return id
}

func (s *Searcher) fillDepth(g memo.GroupID) int32 {
	if s.depths[g] >= 0 {
		return s.depths[g]
	}
	s.depths[g] = 0
	var d int32
	for _, e := range s.M.Group(g).Exprs {
		for _, ch := range e.Children {
			if cd := s.fillDepth(ch) + 1; cd > d {
				d = cd
			}
		}
	}
	s.depths[g] = d
	return d
}

// depth returns the height of a group in the DAG (leaves are 0), used to
// order materialization steps so dependencies are computed first.
func (s *Searcher) depth(g memo.GroupID) int { return int(s.depths[g]) }

// l1BucketBits sizes the per-(group,order) flat L1 buckets: each bucket
// is a fixed-capacity power-of-two probe array of 1<<l1BucketBits
// (mask, value) pairs stored inline, so its occupancy fits one uint64
// bitmap word.
const l1BucketBits = 6

// l1BucketCap is the bucket capacity (entries per probe array).
const l1BucketCap = 1 << l1BucketBits

// l1MaxFill bounds the distinct masks a bucket holds (3/4 load): linear
// probes therefore always terminate at an empty position, and lookup
// chains stay short even in the hottest buckets. A store into a bucket
// at the fill bound evicts deterministically instead of claiming a new
// position; the evicted key falls back to the SharedCache L2 (or a
// recomputation) — see l1Bucket.store.
const l1MaxFill = l1BucketCap * 3 / 4

// epVal is one per-call scratch memo cell: a cost stamped with the call
// epoch that wrote it, adjacent in memory so a memo hit touches one
// cache line.
type epVal struct {
	ep  uint32
	val float64
}

// l1Front is one direct-mapped front-cache cell: the last (mask hash,
// cost) pair its slot served, live iff ep matches the worker's L1 epoch.
// One struct load replaces the three parallel-array touches the front
// check used to cost.
type l1Front struct {
	mask uint64
	val  float64
	ep   uint32
}

// l1Entry is one inline (mask hash, cost) pair of a flat L1 bucket.
type l1Entry struct {
	mask uint64
	val  float64
}

// l1Bucket is the flat open-addressed cross-call cache of one (group,
// order) slot. Occupancy is explicit — bit j of occ marks entries[j]
// live — so every 64-bit mask hash, including ^uint64(0), round-trips
// exactly (the previous map layout's companion front cache used an
// all-ones sentinel for "empty", which silently mis-cached a real
// all-ones mask hash). ep stamps the occupancy with the worker's L1
// epoch: resetL1 bumps the epoch in O(1) and a stale bucket lazily
// self-clears on its next store, reusing its backing array.
type l1Bucket struct {
	ep      uint32
	occ     uint64
	tags    [l1BucketCap]uint8
	entries [l1BucketCap]l1Entry
}

// l1Home is the probe start position for a mask hash: the top bucket
// bits of a Fibonacci remix (the mask is itself a hash, but its top
// bits must be independent of the SharedCache's shard choice).
func l1Home(mask uint64) int {
	return int((mask * 0x9e3779b97f4a7c15) >> (64 - l1BucketBits))
}

// l1Tag is the 1-byte probe filter for a mask hash: the next 8 bits of
// the same remix below the home bits. During a probe the tag bytes —
// all of them in one cache line — are compared first, so the 16-byte
// entries are only loaded on a tag match (false positive rate 2^-8 per
// occupied position). Tags carry no occupancy information: occ alone
// decides liveness, so a stale tag after an epoch clear is never read.
func l1Tag(mask uint64) uint8 {
	return uint8((mask * 0x9e3779b97f4a7c15) >> (56 - l1BucketBits))
}

// lookup probes for a mask with linear probing from its home position,
// stopping at the first empty position. The probe-run length is taken
// from the occupancy word up front (rotate the free bitmap so the home
// lands on bit 0; the first set bit is the first empty position), so
// the loop itself tests only tag bytes. The caller has checked that the
// bucket's epoch is current.
func (b *l1Bucket) lookup(mask uint64) (float64, bool) {
	h := l1Home(mask)
	d := bits.TrailingZeros64(bits.RotateLeft64(^b.occ, -h))
	tag := l1Tag(mask)
	for i := 0; i < d; i++ {
		j := (h + i) & (l1BucketCap - 1)
		if b.tags[j] == tag && b.entries[j].mask == mask {
			return b.entries[j].val, true
		}
	}
	return 0, false
}

// store inserts or overwrites a (mask, value) pair. A bucket whose epoch
// is stale self-clears first (O(1): drop the occupancy bitmap). At the
// fill bound the probe array is "full": the pair deterministically
// replaces the entry at its home position — the linear-probing invariant
// survives because the new key rests exactly at its own home, and the
// evicted key simply misses from then on, falling back to the
// SharedCache L2 (if it was published) or to recomputation. Values are
// pure functions of their key, so eviction can never change a cost.
func (b *l1Bucket) store(epoch uint32, mask uint64, v float64) {
	if b.ep != epoch {
		b.ep = epoch
		b.occ = 0
	}
	h := l1Home(mask)
	tag := l1Tag(mask)
	full := bits.OnesCount64(b.occ) >= l1MaxFill
	for i := 0; i < l1BucketCap; i++ {
		j := (h + i) & (l1BucketCap - 1)
		if b.occ&(1<<uint(j)) == 0 {
			if full {
				break
			}
			b.occ |= 1 << uint(j)
			b.tags[j] = tag
			b.entries[j] = l1Entry{mask: mask, val: v}
			return
		}
		if b.tags[j] == tag && b.entries[j].mask == mask {
			b.entries[j].val = v
			return
		}
	}
	// Eviction at the home position. The occupancy bit is set explicitly:
	// past the fill bound the home may itself be empty (evictions land
	// only on home positions), and a claimed-but-unmarked entry would be
	// a lost store.
	b.occ |= 1 << uint(h)
	b.tags[h] = tag
	b.entries[h] = l1Entry{mask: mask, val: v}
}

// worker is one evaluation context: per-call scratch tables plus a private
// cross-call cache. Sequential entry points use worker 0; BestCostBatch
// uses one worker per goroutine.
type worker struct {
	s *Searcher

	// Private L1 cross-call cache. Entries are bucketed by the (group,
	// order) slot — the same int(g)*numOrds+ord index the scratch tables
	// use — and keyed inside the bucket by the 8-byte mask hash alone.
	// Each bucket is a flat open-addressed probe array (l1Bucket), lazily
	// allocated on first store and cleared in place by epoch stamping, so
	// a probe is a few adjacent inline loads instead of a runtime map
	// access. A 1-entry direct-mapped front cache per slot (mask1/val1,
	// live iff its epoch stamp ep1 is current) exploits the scan locality
	// of greedy rounds: consecutive candidate sets leave most groups'
	// mask restrictions untouched, so the common case is two loads and a
	// compare before any probe. Misses fall through to s.shared. (A
	// single flat map[cacheKey]float64 was profiled at ~70% of
	// optimization wall time on the 256-query workloads, and the
	// per-slot map[uint64]float64 buckets that replaced it still at ~25%
	// — mapaccess2_fast64 hashing and probing — which this layout
	// eliminates.)
	l1Epoch   uint32    // current L1 generation; entries with other stamps are dead
	useFront  []l1Front // front cache: last-seen (mask, cost) per slot
	compFront []l1Front
	useL1     []*l1Bucket // per-slot flat probe arrays (lazily allocated)
	compL1    []*l1Bucket

	ns          uint64 // SharedCache namespace for the current call's flags
	sharedEpoch uint64 // SharedCache epoch the L1 was filled under

	epoch     uint32
	bits      memo.Bitset // current materialization set
	useMemo   []epVal     // (group, ord) -> use cost, epoch-stamped
	compMemo  []epVal     // (group, ord) -> compute cost, epoch-stamped
	storedOrd []ordID     // delivered order of each materialization
	storedEp  []uint32
	mhVal     []uint64 // mask-hash per group
	mhEp      []uint32
	matIDs    []memo.GroupID // scratch for stored-order initialization

	bcCalls, cacheHits, sharedHits, computedKey, extractCalls int
}

func (s *Searcher) newWorker() *worker {
	n := s.M.NumGroups()
	slots := n * s.numOrds
	w := &worker{
		s:         s,
		l1Epoch:   1,
		useFront:  make([]l1Front, slots),
		compFront: make([]l1Front, slots),
		useL1:     make([]*l1Bucket, slots),
		compL1:    make([]*l1Bucket, slots),
		bits:      s.SI.NewMatSet(),
		useMemo:   make([]epVal, slots),
		compMemo:  make([]epVal, slots),
		storedOrd: make([]ordID, n),
		storedEp:  make([]uint32, n),
		mhVal:     make([]uint64, n),
		mhEp:      make([]uint32, n),
		matIDs:    make([]memo.GroupID, 0, 64),
	}
	return w
}

// resetL1 drops the worker's private cross-call cache in O(1) by bumping
// the L1 epoch: front-cache slots and buckets stamped with an older
// generation read as empty, and every backing array is reused in place —
// no reallocation, however often a SharedCache epoch bump or an explicit
// ClearCache lands.
func (w *worker) resetL1() {
	w.l1Epoch++
	if w.l1Epoch == 0 { // wrapped: stamps are ambiguous, hard-reset
		for i := range w.useFront {
			w.useFront[i].ep = 0
			w.compFront[i].ep = 0
		}
		for _, b := range w.useL1 {
			if b != nil {
				b.ep = 0
				b.occ = 0
			}
		}
		for _, b := range w.compL1 {
			if b != nil {
				b.ep = 0
				b.occ = 0
			}
		}
		w.l1Epoch = 1
	}
}

// syncShared refreshes the worker's view of the attached SharedCache: the
// flag namespace, and — after an Invalidate — the private L1, which may
// hold entries the invalidation was meant to flush.
func (w *worker) syncShared() {
	s := w.s
	if s.shared == nil {
		return
	}
	w.ns = s.cacheNS()
	if ep := s.shared.epoch.Load(); ep != w.sharedEpoch {
		w.sharedEpoch = ep
		w.resetL1()
	}
}

// cachedUse consults the cache levels for a use-cost key: front cache,
// bucket map, then the SharedCache (whose hits are promoted so each
// shared key pays its read lock at most once per worker). Fresh values go
// only to the L1 — PublishCache merges them into the SharedCache in bulk,
// keeping the hot path free of per-key locking.
func (w *worker) cachedUse(g memo.GroupID, ord ordID, idx int, mask uint64) (float64, bool) {
	f := &w.useFront[idx]
	if f.ep == w.l1Epoch && f.mask == mask {
		w.cacheHits++
		return f.val, true
	}
	if b := w.useL1[idx]; b != nil && b.ep == w.l1Epoch {
		if v, ok := b.lookup(mask); ok {
			w.cacheHits++
			*f = l1Front{mask: mask, val: v, ep: w.l1Epoch}
			return v, true
		}
	}
	if sh := w.s.shared; sh != nil {
		if v, ok := sh.get(w.ns, cacheKey{g: g, ord: ord, compute: false, mask: mask}); ok {
			w.sharedHits++
			w.storeUse(idx, mask, v)
			return v, true
		}
	}
	return 0, false
}

func (w *worker) storeUse(idx int, mask uint64, v float64) {
	w.useFront[idx] = l1Front{mask: mask, val: v, ep: w.l1Epoch}
	b := w.useL1[idx]
	if b == nil {
		b = new(l1Bucket)
		b.ep = w.l1Epoch
		w.useL1[idx] = b
	}
	b.store(w.l1Epoch, mask, v)
}

// cachedComp is cachedUse for compute-cost keys.
func (w *worker) cachedComp(g memo.GroupID, ord ordID, idx int, mask uint64) (float64, bool) {
	f := &w.compFront[idx]
	if f.ep == w.l1Epoch && f.mask == mask {
		w.cacheHits++
		return f.val, true
	}
	if b := w.compL1[idx]; b != nil && b.ep == w.l1Epoch {
		if v, ok := b.lookup(mask); ok {
			w.cacheHits++
			*f = l1Front{mask: mask, val: v, ep: w.l1Epoch}
			return v, true
		}
	}
	if sh := w.s.shared; sh != nil {
		if v, ok := sh.get(w.ns, cacheKey{g: g, ord: ord, compute: true, mask: mask}); ok {
			w.sharedHits++
			w.storeComp(idx, mask, v)
			return v, true
		}
	}
	return 0, false
}

func (w *worker) storeComp(idx int, mask uint64, v float64) {
	w.compFront[idx] = l1Front{mask: mask, val: v, ep: w.l1Epoch}
	b := w.compL1[idx]
	if b == nil {
		b = new(l1Bucket)
		b.ep = w.l1Epoch
		w.compL1[idx] = b
	}
	b.store(w.l1Epoch, mask, v)
}

// worker returns the i-th worker, growing the pool on demand.
func (s *Searcher) worker(i int) *worker {
	for len(s.workers) <= i {
		s.workers = append(s.workers, s.newWorker())
	}
	return s.workers[i]
}

// flushStats folds worker-local counters into the searcher totals; called
// only from single-goroutine contexts.
func (w *worker) flushStats() {
	w.s.BCCalls += w.bcCalls
	w.s.CacheHits += w.cacheHits
	w.s.SharedHits += w.sharedHits
	w.s.ComputedKey += w.computedKey
	w.s.ExtractCalls += w.extractCalls
	w.bcCalls, w.cacheHits, w.sharedHits, w.computedKey, w.extractCalls = 0, 0, 0, 0, 0
}

// initCall resets the per-call scratch state for a new materialization set
// and, with MatOrders on, fixes each materialization's stored order in
// dependency (depth) order, so a node's compute plan can already exploit
// the materializations below it.
func (w *worker) initCall(mat memo.Bitset) {
	w.syncShared()
	w.epoch++
	if w.epoch == 0 { // wrapped: stamps are ambiguous, hard-reset
		for i := range w.useMemo {
			w.useMemo[i].ep = 0
			w.compMemo[i].ep = 0
		}
		for i := range w.storedEp {
			w.storedEp[i] = 0
			w.mhEp[i] = 0
		}
		w.epoch = 1
	}
	for i := range w.bits {
		w.bits[i] = 0
	}
	copy(w.bits, mat)
	if w.s.MatOrders {
		ids := w.matGroups()
		sortByDepth(w.s, ids)
		for _, id := range ids {
			w.storedOrd[id] = w.bestDeliveredOrder(id)
			w.storedEp[id] = w.epoch
		}
	}
}

// matGroups gathers the current set's group ids (ascending) into the
// worker's scratch slice.
func (w *worker) matGroups() []memo.GroupID {
	ids := w.matIDs[:0]
	for wi, v := range w.bits {
		for v != 0 {
			b := bits.TrailingZeros64(v)
			ids = append(ids, w.s.SI.GroupAt(wi*64+b))
			v &= v - 1
		}
	}
	w.matIDs = ids
	return ids
}

// matHas reports whether the group is in the current materialization set.
func (w *worker) matHas(g memo.GroupID) bool {
	sl := w.s.slot[g]
	return sl >= 0 && w.bits.HasSlot(int(sl))
}

// stored returns the delivered order of a materialized group this call.
func (w *worker) stored(g memo.GroupID) ordID {
	if w.storedEp[g] != w.epoch {
		return 0
	}
	return w.storedOrd[g]
}

// maskHash returns the Section 5.1 cache mask for the group under the
// current set, memoized per call.
func (w *worker) maskHash(g memo.GroupID) uint64 {
	if w.mhEp[g] == w.epoch {
		return w.mhVal[g]
	}
	v := memo.HashMasked(w.s.desc[g], w.bits)
	w.mhVal[g] = v
	w.mhEp[g] = w.epoch
	return v
}

func sortByDepth(s *Searcher, ids []memo.GroupID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0; j-- {
			di, dj := s.depth(ids[j-1]), s.depth(ids[j])
			if dj < di || (dj == di && ids[j] < ids[j-1]) {
				ids[j-1], ids[j] = ids[j], ids[j-1]
			} else {
				break
			}
		}
	}
}

// BestCost is bc(S): see the package comment.
func (s *Searcher) BestCost(mat NodeSet) float64 {
	w := s.worker(0)
	v := s.bestCostOn(w, mat.bits)
	w.flushStats()
	return v
}

func (s *Searcher) bestCostOn(w *worker, mat memo.Bitset) float64 {
	w.bcCalls++
	w.initCall(mat)
	total := 0.0
	for _, id := range w.matGroups() {
		total += w.compute(id, 0) + s.writeArr[id]
	}
	for _, root := range s.M.QueryRoots {
		total += w.useCost(root, 0)
	}
	return total
}

// BestCostBatch evaluates bc(S) for every set concurrently on up to
// Parallelism workers and returns the costs in input order. Results are
// bit-identical to calling BestCost sequentially.
func (s *Searcher) BestCostBatch(mats []NodeSet) []float64 {
	out, _ := s.BestCostBatchCtx(nil, mats)
	return out
}

// BestCostBatchCtx is BestCostBatch under a context: once ctx is cancelled
// no further evaluation starts (a bc(S) evaluation already underway runs
// to completion — cancellation granularity is one oracle call). On abort
// it returns ok=false together with the completed prefix of the results —
// costs[:k] such that every evaluation before the first unevaluated set
// finished. Each value in the prefix is the exact, deterministic bc(S) of
// its set, so a budget-interrupted round can commit them (e.g. memoize
// best-so-far candidates) without any risk to determinism; only how much
// of the batch survives depends on timing. With a nil or undone context
// results are complete, in input order, and bit-identical to sequential
// BestCost calls.
func (s *Searcher) BestCostBatchCtx(ctx context.Context, mats []NodeSet) (costs []float64, ok bool) {
	s.fault = nil
	out := make([]float64, len(mats))
	par := s.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > len(mats) {
		par = len(mats)
	}
	var aborted int32
	var fault atomic.Pointer[faultinject.PanicError]
	cancelled := func() bool {
		if atomic.LoadInt32(&aborted) != 0 {
			return true
		}
		if ctx != nil && ctx.Err() != nil {
			atomic.StoreInt32(&aborted, 1)
			return true
		}
		return false
	}
	// evalOne runs one bc(S) evaluation with panic isolation: a panic —
	// injected or genuine — is recovered into a PanicError (first one wins)
	// and aborts the batch, so a poisoned worker can never kill the process
	// or publish a half-computed cost. On a recovered panic ok is false and
	// out[i] is left untouched, so the committed prefix stops before i.
	evalOne := func(w *worker, i int) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				fault.CompareAndSwap(nil, faultinject.NewPanicError("physical.BestCostBatch", r))
				atomic.StoreInt32(&aborted, 1)
			}
		}()
		faultinject.Hit(faultinject.OracleEval)
		out[i] = s.bestCostOn(w, mats[i].bits)
		return true
	}
	if par <= 1 {
		w := s.worker(0)
		done := 0
		for i := range mats {
			if cancelled() || !evalOne(w, i) {
				break
			}
			done = i + 1
		}
		w.flushStats()
		s.fault = fault.Load()
		if aborted != 0 {
			return out[:done], false
		}
		return out, true
	}
	workers := make([]*worker, par)
	for k := range workers {
		workers[k] = s.worker(k)
	}
	completed := make([]uint32, len(mats))
	var next int64 = -1
	var wg sync.WaitGroup
	for k := 0; k < par; k++ {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			for {
				if cancelled() {
					return
				}
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(mats) {
					return
				}
				if !evalOne(w, i) {
					return
				}
				atomic.StoreUint32(&completed[i], 1)
			}
		}(workers[k])
	}
	wg.Wait()
	for _, w := range workers {
		w.flushStats()
	}
	s.fault = fault.Load()
	if atomic.LoadInt32(&aborted) != 0 {
		done := 0
		for done < len(completed) && completed[done] == 1 {
			done++
		}
		return out[:done], false
	}
	return out, true
}

// TakeFault returns the panic recovered during the most recent batch, if
// any, and clears it. A non-nil fault means that batch aborted with
// ok=false and its committed prefix is still exact; the memo and caches of
// this searcher may however be inconsistent, so callers must not reuse the
// searcher for further evaluation (repro.Session quarantines it).
func (s *Searcher) TakeFault() error {
	f := s.fault
	s.fault = nil
	if f == nil {
		return nil
	}
	return f
}

// BestUseCost is buc(S): the cost of the optimal plan that may exploit S
// but does not pay for computing or materializing it.
func (s *Searcher) BestUseCost(mat NodeSet) float64 {
	w := s.worker(0)
	w.initCall(mat.bits)
	total := 0.0
	for _, root := range s.M.QueryRoots {
		total += w.useCost(root, 0)
	}
	w.flushStats()
	return total
}

// useCost returns the cheapest way for a consumer to obtain the group's
// result in the required order. The per-call memo check lives in this
// tiny wrapper so it inlines into the pricing loops — the oracle resolves
// the overwhelming majority of useCost calls from the scratch table, and
// a full call frame per memo hit is measurable at workload scale.
func (w *worker) useCost(g memo.GroupID, ord ordID) float64 {
	m := &w.useMemo[int(g)*w.s.numOrds+int(ord)]
	if m.ep == w.epoch {
		return m.val
	}
	return w.useCostMiss(g, ord, m)
}

// useCostMiss is useCost's slow path: consult the cross-call cache, else
// price the group fresh under the current materialization set.
func (w *worker) useCostMiss(g memo.GroupID, ord ordID, m *epVal) float64 {
	s := w.s
	idx := int(g)*s.numOrds + int(ord)
	var mask uint64
	if s.Incremental {
		mask = w.maskHash(g)
		if v, ok := w.cachedUse(g, ord, idx, mask); ok {
			m.val = v
			m.ep = w.epoch
			return v
		}
	}
	v := w.compute(g, ord)
	if w.matHas(g) {
		if alt, _ := w.matUseCost(g, ord); alt < v {
			v = alt
		}
	}
	m.val = v
	m.ep = w.epoch
	if s.Incremental {
		w.storeUse(idx, mask, v)
	}
	return v
}

// matUseCost prices reading the group's materialized copy under the
// required order: the materialize-read cost plus, when the stored order
// does not satisfy the requirement, a re-sort. It is the single pricing
// rule shared by the cost search (useCost) and plan extraction
// (extractUse); callers must have checked matHas(g).
func (w *worker) matUseCost(g memo.GroupID, ord ordID) (cost float64, needSort bool) {
	s := w.s
	cost = s.readArr[g]
	needSort = !s.sat[w.stored(g)][ord]
	if needSort {
		cost += s.sortArr[g] // re-sort the materialized copy
	}
	return cost, needSort
}

// compute returns the cheapest plan that computes the group from its
// inputs (ignoring a materialized copy of the group itself) in the
// required order. Like useCost, the memo check inlines at call sites.
func (w *worker) compute(g memo.GroupID, ord ordID) float64 {
	m := &w.compMemo[int(g)*w.s.numOrds+int(ord)]
	if m.ep == w.epoch {
		return m.val
	}
	return w.computeMiss(g, ord, m)
}

// computeMiss is compute's slow path: cross-call cache, then a fresh
// pass over the group's implementation templates.
func (w *worker) computeMiss(g memo.GroupID, ord ordID, m *epVal) float64 {
	s := w.s
	idx := int(g)*s.numOrds + int(ord)
	m.val = inf // guard against accidental cycles
	m.ep = w.epoch
	var mask uint64
	if s.Incremental {
		mask = w.maskHash(g)
		if v, ok := w.cachedComp(g, ord, idx, mask); ok {
			m.val = v
			return v
		}
	}
	w.computedKey++
	best := inf
	for i := range s.tmpls[g] {
		if cost, _, ok := w.price(&s.tmpls[g][i], ord); ok && cost < best {
			best = cost
		}
	}
	// Sort enforcer: compute in any order, then sort.
	if ord != 0 {
		if v := w.compute(g, 0) + s.sortArr[g]; v < best {
			best = v
		}
	}
	m.val = best
	if s.Incremental {
		w.storeComp(idx, mask, best)
	}
	return best
}

// price returns one template's total use-cost (children included) and
// delivered order under the current materialization set; ok is false when
// the template is gated off or cannot deliver the required order. It is
// the single pricing rule shared by the cost search (compute), the
// stored-order pass (bestDeliveredOrder) and plan extraction
// (extractCompute).
func (w *worker) price(t *tmpl, ord ordID) (cost float64, out ordID, ok bool) {
	s := w.s
	if t.extended && !s.ExtendedOps {
		return 0, 0, false
	}
	// The child lookups are the oracle's innermost edge: the per-call memo
	// check is written out by hand because useCost's call frame exceeds
	// the inlining budget, and the overwhelming majority of child lookups
	// are memo hits.
	if t.passthrough {
		// Order-preserving filter: forward the requirement.
		g := t.child[0].g
		m := &w.useMemo[int(g)*s.numOrds+int(ord)]
		if m.ep == w.epoch {
			return m.val + t.local, ord, true
		}
		return w.useCostMiss(g, ord, m) + t.local, ord, true
	}
	if !s.sat[t.out][ord] {
		return 0, 0, false
	}
	ep := w.epoch
	for ci := uint8(0); ci < t.nchild; ci++ {
		c := &t.child[ci]
		m := &w.useMemo[int(c.g)*s.numOrds+int(c.ord)]
		if m.ep == ep {
			cost += m.val
		} else {
			cost += w.useCostMiss(c.g, c.ord, m)
		}
	}
	lc := t.local
	if t.matGate >= 0 && !w.matHas(t.matGate) {
		lc = t.localSpill
	}
	return cost + lc, t.out, true
}

// bestDeliveredOrder returns the order delivered by the cheapest
// unconstrained compute plan of the group.
func (w *worker) bestDeliveredOrder(g memo.GroupID) ordID {
	s := w.s
	best := inf
	var out ordID
	for i := range s.tmpls[g] {
		if cost, o, ok := w.price(&s.tmpls[g][i], 0); ok && cost < best {
			best = cost
			out = o
		}
	}
	return out
}

const inf = 1e300

func (s *Searcher) blocks(g memo.GroupID) float64       { return s.blocksArr[g] }
func (s *Searcher) sortCost(g memo.GroupID) float64     { return s.sortArr[g] }
func (s *Searcher) matReadCost(g memo.GroupID) float64  { return s.readArr[g] }
func (s *Searcher) matWriteCost(g memo.GroupID) float64 { return s.writeArr[g] }
