// Package physical implements the physical plan search over the logical
// AND-OR DAG (the PQDAG of the Volcano framework): physical properties
// (sort orders), operator implementations (relation scan, indexed
// selection, nested-loop join, merge join, sort enforcer, sort-based
// aggregation — the paper's operator set), and the central
// bestCost(Q, S) oracle that the MQO algorithms treat as a black box.
//
// bestCost(Q, S) is the cost of the optimal consolidated plan in which
// every equivalence node of S is computed once, written to disk, and read
// back by any consumer for which that is cheaper than recomputation:
//
//	bc(S) = Σ_{s∈S} (computeCost(s) + matWriteCost(s)) + Σ_q useCost(root_q)
//	useCost(g) = min(computeCost(g), matReadCost(g) [+ sort enforcement])  if g ∈ S
//
// The search memoizes on (group, required order) per call and keeps a
// cross-call cache keyed by the materialization set restricted to the
// shareable nodes below each group — the incremental recomputation
// optimization of Section 5.1: adding one node to S invalidates only the
// costs of its ancestors.
package physical

import (
	"strings"

	"repro/internal/expr"
	"repro/internal/memo"
)

// Order is a required or delivered sort order: a sequence of columns.
// nil/empty means "any order".
type Order []expr.Col

// Key renders the order canonically for map keys.
func (o Order) Key() string {
	if len(o) == 0 {
		return ""
	}
	parts := make([]string, len(o))
	for i, c := range o {
		parts[i] = c.String()
	}
	return strings.Join(parts, ",")
}

// Satisfies reports whether a stream sorted by o satisfies requirement
// req, i.e. req is a prefix of o.
func (o Order) Satisfies(req Order) bool {
	if len(req) > len(o) {
		return false
	}
	for i := range req {
		if o[i] != req[i] {
			return false
		}
	}
	return true
}

// Empty reports whether the order imposes no requirement.
func (o Order) Empty() bool { return len(o) == 0 }

// Searcher owns the cross-call caches for one combined DAG. It is not safe
// for concurrent use.
type Searcher struct {
	M  *memo.Memo
	SI *memo.ShareIndex

	// Incremental reports whether the cross-call cache is enabled
	// (Section 5.1 optimization). Disabled only for ablation benchmarks.
	Incremental bool

	// ExtendedOps adds hash join and hash aggregation to the paper's
	// operator set (relation scan, indexed selection, NLJ, merge join,
	// sort, sort-based aggregation). Off by default: the experiments use
	// the paper's rule set; the extended-operator ablation turns it on.
	ExtendedOps bool

	// MatOrders stores each materialized result in the sort order its
	// cheapest compute plan delivers, so consumers whose requirement that
	// order satisfies skip the re-sort — the physical-property handling on
	// intermediate relations the paper's Section 6 implementation
	// includes. On by default; disabling it models order-less spools.
	MatOrders bool

	cache      map[cacheKey]float64
	scanCache  map[*memo.MExpr]*scanInfo
	depthCache map[memo.GroupID]int

	// Stats.
	BCCalls     int // bestCost invocations
	CacheHits   int
	ComputedKey int // fresh (group, order, mask) computations
}

type cacheKey struct {
	g       memo.GroupID
	ord     string
	compute bool
	mask    uint64
}

// NewSearcher returns a searcher over the given memo with the incremental
// cache and materialized-order handling enabled.
func NewSearcher(m *memo.Memo) *Searcher {
	return &Searcher{
		M:           m,
		SI:          m.NewShareIndex(),
		Incremental: true,
		MatOrders:   true,
		cache:       map[cacheKey]float64{},
	}
}

// ResetStats clears the counters (not the cache).
func (s *Searcher) ResetStats() { s.BCCalls, s.CacheHits, s.ComputedKey = 0, 0, 0 }

// ClearCache drops the cross-call cache.
func (s *Searcher) ClearCache() { s.cache = map[cacheKey]float64{} }

// NodeSet is a materialization set.
type NodeSet map[memo.GroupID]bool

// Clone returns a copy of the set.
func (ns NodeSet) Clone() NodeSet {
	out := make(NodeSet, len(ns)+1)
	for k := range ns {
		out[k] = true
	}
	return out
}

// With returns a copy of the set with the extra node added.
func (ns NodeSet) With(id memo.GroupID) NodeSet {
	out := ns.Clone()
	out[id] = true
	return out
}

// sctx is the per-bestCost-call state.
type sctx struct {
	s      *Searcher
	mat    NodeSet
	bits   []uint64
	use    map[localKey]float64
	comp   map[localKey]float64
	stored map[memo.GroupID]Order // delivered order of each materialization
}

type localKey struct {
	g   memo.GroupID
	ord string
}

func (s *Searcher) newCtx(mat NodeSet) *sctx {
	bits := s.SI.NewMatSet()
	for id := range mat {
		s.SI.Set(bits, id)
	}
	c := &sctx{
		s:      s,
		mat:    mat,
		bits:   bits,
		use:    map[localKey]float64{},
		comp:   map[localKey]float64{},
		stored: map[memo.GroupID]Order{},
	}
	if s.MatOrders {
		// Determine each materialization's stored order in dependency
		// (depth) order, so a node's compute plan can already exploit the
		// materializations below it.
		ids := sortedSet(mat)
		sortByDepth(s, ids)
		for _, id := range ids {
			c.stored[id] = c.bestDeliveredOrder(id)
		}
	}
	return c
}

// bestDeliveredOrder returns the order delivered by the cheapest
// unconstrained compute plan of the group.
func (c *sctx) bestDeliveredOrder(g memo.GroupID) Order {
	best := inf
	var out Order
	for _, cand := range c.candidates(g, nil) {
		if cand.cost < best {
			best = cand.cost
			out = cand.out
		}
	}
	return out
}

// matUseCost returns the cost of reading a materialized group in the
// required order, plus whether a re-sort is needed.
func (c *sctx) matUseCost(g memo.GroupID, ord Order) (float64, bool) {
	cost := c.s.matReadCost(g)
	if ord.Empty() || c.stored[g].Satisfies(ord) {
		return cost, false
	}
	return cost + c.s.sortCost(g), true
}

func sortByDepth(s *Searcher, ids []memo.GroupID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0; j-- {
			di, dj := s.depth(ids[j-1]), s.depth(ids[j])
			if dj < di || (dj == di && ids[j] < ids[j-1]) {
				ids[j-1], ids[j] = ids[j], ids[j-1]
			} else {
				break
			}
		}
	}
}

// BestCost is bc(S): see the package comment.
func (s *Searcher) BestCost(mat NodeSet) float64 {
	s.BCCalls++
	c := s.newCtx(mat)
	total := 0.0
	for _, id := range sortedSet(mat) {
		total += c.compute(id, nil) + s.matWriteCost(id)
	}
	for _, root := range s.M.QueryRoots {
		total += c.useCost(root, nil)
	}
	return total
}

// BestUseCost is buc(S): the cost of the optimal plan that may exploit S
// but does not pay for computing or materializing it.
func (s *Searcher) BestUseCost(mat NodeSet) float64 {
	c := s.newCtx(mat)
	total := 0.0
	for _, root := range s.M.QueryRoots {
		total += c.useCost(root, nil)
	}
	return total
}

// useCost returns the cheapest way for a consumer to obtain the group's
// result in the required order.
func (c *sctx) useCost(g memo.GroupID, ord Order) float64 {
	lk := localKey{g, ord.Key()}
	if v, ok := c.use[lk]; ok {
		return v
	}
	var ck cacheKey
	if c.s.Incremental {
		ck = cacheKey{g: g, ord: lk.ord, compute: false, mask: c.s.SI.MaskHash(g, c.bits)}
		if v, ok := c.s.cache[ck]; ok {
			c.s.CacheHits++
			c.use[lk] = v
			return v
		}
	}
	v := c.compute(g, ord)
	if c.mat[g] {
		alt, _ := c.matUseCost(g, ord)
		if alt < v {
			v = alt
		}
	}
	c.use[lk] = v
	if c.s.Incremental {
		c.s.cache[ck] = v
	}
	return v
}

// compute returns the cheapest plan that computes the group from its
// inputs (ignoring a materialized copy of the group itself) in the
// required order.
func (c *sctx) compute(g memo.GroupID, ord Order) float64 {
	lk := localKey{g, ord.Key()}
	if v, ok := c.comp[lk]; ok {
		return v
	}
	c.comp[lk] = inf // guard against accidental cycles
	var ck cacheKey
	if c.s.Incremental {
		ck = cacheKey{g: g, ord: lk.ord, compute: true, mask: c.s.SI.MaskHash(g, c.bits)}
		if v, ok := c.s.cache[ck]; ok {
			c.s.CacheHits++
			c.comp[lk] = v
			return v
		}
	}
	c.s.ComputedKey++
	best := inf
	for _, cand := range c.candidates(g, ord) {
		if cand.cost < best {
			best = cand.cost
		}
	}
	// Sort enforcer: compute in any order, then sort.
	if !ord.Empty() {
		if v := c.compute(g, nil) + c.s.sortCost(g); v < best {
			best = v
		}
	}
	c.comp[lk] = best
	if c.s.Incremental {
		c.s.cache[ck] = best
	}
	return best
}

const inf = 1e300

func sortedSet(ns NodeSet) []memo.GroupID {
	out := make([]memo.GroupID, 0, len(ns))
	for id := range ns {
		out = append(out, id)
	}
	for i := 1; i < len(out); i++ { // insertion sort; sets are small
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func (s *Searcher) blocks(g memo.GroupID) float64 {
	p := s.M.Group(g).Props
	return s.M.Model.Blocks(p.Rows, p.Width)
}

func (s *Searcher) sortCost(g memo.GroupID) float64 {
	return s.M.Model.SortCost(s.blocks(g))
}

func (s *Searcher) matReadCost(g memo.GroupID) float64 {
	return s.M.Model.MaterializeReadCost(s.blocks(g))
}

func (s *Searcher) matWriteCost(g memo.GroupID) float64 {
	return s.M.Model.MaterializeWriteCost(s.blocks(g))
}
